package multirail_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/multirail"
)

// The cross-fabric conformance suite: every byte-moving backend — the
// modeled simulator, live TCP, shared-memory rings, and the mixed
// shm+TCP heterogeneous rail set — must satisfy the same engine-visible
// contract. Each test below runs over every backend, under -race in CI,
// so a future fabric only has to join this table to inherit the suite.
//
// The mixed entry is the acceptance shape of the shm-rail work: a
// three-node hosted cluster with 1 shm rail and 2 TCP rails.
var conformanceFabrics = []struct {
	name string
	cfg  func() multirail.Config
}{
	{"sim", func() multirail.Config {
		return multirail.Config{}
	}},
	{"tcp", func() multirail.Config {
		return multirail.Config{Live: true, TCPRails: 2, SamplingMax: 256 << 10}
	}},
	{"shm", func() multirail.Config {
		return multirail.Config{Fabric: multirail.FabricShm, ShmRails: 2, SamplingMax: 256 << 10}
	}},
	{"shm+tcp", func() multirail.Config {
		return multirail.Config{Live: true, Nodes: 3, ShmRails: 1, TCPRails: 2, SamplingMax: 256 << 10}
	}},
}

// forEachFabric runs fn once per backend as a subtest.
func forEachFabric(t *testing.T, fn func(t *testing.T, c *multirail.Cluster)) {
	for _, fab := range conformanceFabrics {
		t.Run(fab.name, func(t *testing.T) {
			c, err := multirail.New(fab.cfg())
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			fn(t, c)
			if err := c.Err(); err != nil {
				t.Fatalf("fabric error after suite: %v", err)
			}
		})
	}
}

// exchange moves one random n-byte message src -> dst under tag and
// verifies the bytes, waiting for remote completion so every transfer
// unit is accounted before the caller proceeds.
func exchange(t *testing.T, c *multirail.Cluster, src, dst int, tag uint32, n int, seed int64) {
	t.Helper()
	payload := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(payload)
	buf := make([]byte, n)
	fail := make(chan string, 1)
	c.Go("conf-exchange", func(ctx multirail.Ctx) {
		rr := c.Node(dst).Irecv(src, tag, buf)
		sr := c.Node(src).Isend(dst, tag, payload)
		if got, err := rr.Wait(ctx); err != nil || got != n {
			fail <- fmt.Sprintf("recv: n=%d err=%v", got, err)
			return
		}
		sr.RemoteDone().Wait(ctx)
		fail <- ""
	})
	c.Run()
	if msg := <-fail; msg != "" {
		t.Fatal(msg)
	}
	if !bytes.Equal(buf, payload) {
		t.Fatalf("%d-byte payload %d->%d corrupted", n, src, dst)
	}
}

// Send/recv integrity across the eager and rendezvous regimes, between
// every hosted pair the cluster has.
func TestConformanceSendRecvIntegrity(t *testing.T) {
	forEachFabric(t, func(t *testing.T, c *multirail.Cluster) {
		sizes := []int{1, 1 << 10, 64 << 10, 1 << 20}
		for i, n := range sizes {
			exchange(t, c, 0, 1, uint32(0x6100+i), n, int64(i+1))
		}
		if c.Nodes() > 2 {
			// The 3-node mixed shape: pairs beyond (0,1) use the same
			// heterogeneous rail set.
			exchange(t, c, 0, 2, 0x6180, 128<<10, 91)
			exchange(t, c, 2, 1, 0x6181, 128<<10, 92)
		}
	})
}

// Sequential request/wait traffic on one (source, tag) flow matches in
// FIFO order on every backend.
func TestConformanceSequentialOrdering(t *testing.T) {
	forEachFabric(t, func(t *testing.T, c *multirail.Cluster) {
		const msgs = 16
		fail := make(chan string, 1)
		c.Go("conf-seq", func(ctx multirail.Ctx) {
			buf := make([]byte, 8)
			for i := 0; i < msgs; i++ {
				rr := c.Node(1).Irecv(0, 7, buf)
				sr := c.Node(0).Isend(1, 7, []byte(fmt.Sprintf("msg-%03d", i)))
				if _, err := rr.Wait(ctx); err != nil {
					fail <- err.Error()
					return
				}
				if got, want := string(buf[:7]), fmt.Sprintf("msg-%03d", i)[:7]; got != want {
					fail <- fmt.Sprintf("message %d arrived as %q", i, got)
					return
				}
				sr.Wait(ctx)
			}
			fail <- ""
		})
		c.Run()
		if msg := <-fail; msg != "" {
			t.Fatal(msg)
		}
	})
}

// Failover and replay idempotence: a rail hot-unplugged mid-transfer
// loses its unacknowledged units to the replan machinery; the message
// still arrives exactly once, intact, and the revived rail carries
// traffic again. Any duplicates the replay produces must be invisible.
func TestConformanceFailoverMidTransfer(t *testing.T) {
	forEachFabric(t, func(t *testing.T, c *multirail.Cluster) {
		const n = 8 << 20
		payload := make([]byte, n)
		rand.New(rand.NewSource(77)).Read(payload)
		buf := make([]byte, n)
		fail := make(chan string, 1)
		c.Go("conf-fail-app", func(ctx multirail.Ctx) {
			rr := c.Node(1).Irecv(0, 0x6200, buf)
			sr := c.Node(0).Isend(1, 0x6200, payload)
			if got, err := rr.Wait(ctx); err != nil || got != n {
				fail <- fmt.Sprintf("recv across failover: n=%d err=%v", got, err)
				return
			}
			sr.RemoteDone().Wait(ctx)
			fail <- ""
		})
		c.Go("conf-fail-chaos", func(ctx multirail.Ctx) {
			// Unplug rail 0 while chunks are in flight (best effort on
			// the wall clock; deterministic in virtual time).
			ctx.Sleep(500 * time.Microsecond)
			c.DisableRail(0)
		})
		c.Run()
		if msg := <-fail; msg != "" {
			t.Fatal(msg)
		}
		if !bytes.Equal(buf, payload) {
			t.Fatal("payload corrupted across the failover")
		}
		if states := c.RailStates(0); states[0] != multirail.RailDown {
			t.Fatalf("unplugged rail is %v, want down", states[0])
		}
		// Replug and prove the lane carries traffic again.
		c.EnableRail(0)
		exchange(t, c, 0, 1, 0x6201, 32<<10, 78)
	})
}

// Telemetry observation: with the adaptive loop on, every backend feeds
// the tracker — transfer measurements arrive and live estimates exist.
func TestConformanceTelemetryObservation(t *testing.T) {
	for _, fab := range conformanceFabrics {
		t.Run(fab.name, func(t *testing.T) {
			cfg := fab.cfg()
			cfg.AdaptiveTelemetry = true
			c, err := multirail.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			exchange(t, c, 0, 1, 0x6300, 1<<20, 13)
			exchange(t, c, 0, 1, 0x6301, 4<<10, 14)
			st := c.EngineStats(0)
			if st.TelemetryObs == 0 {
				t.Fatalf("no telemetry observations after traffic: %+v", st)
			}
			for r := 0; r < c.Rails(); r++ {
				if est := c.LiveEstimate(0, 1, r, 64<<10); est <= 0 {
					t.Fatalf("rail %d (%s) live estimate %v", r, c.RailKind(r), est)
				}
			}
		})
	}
}
