// Package multirail is the public API of the multicore-enabled multirail
// communication engine, a reproduction of Brunet, Trahay and Denis,
// "A multicore-enabled multirail communication engine" (IEEE Cluster
// 2008) — the NewMadeleine/PIOMan/Marcel stack.
//
// A Cluster is a set of nodes joined by several heterogeneous rails
// (NICs). At start-up every rail is sampled at power-of-two sizes; the
// samples feed per-rail transfer-time estimators. Messages submitted with
// Isend are then scheduled by the engine: small ones are aggregated on
// the fastest available rail (or split across idle cores when that is
// predicted to win), large ones handshake and are striped over the rails
// so that every chunk finishes at the same predicted instant.
//
// Two byte-moving substrates are available behind the same engine: the
// deterministic virtual-time simulation of the paper's testbed (default,
// see DESIGN.md) and a live TCP fabric where every rail is its own TCP
// connection moving real bytes on the wall clock (Config.Live or
// Config.Fabric = FabricTCP; see internal/livenet). A live cluster can
// host all nodes in one process (loopback) or one node per process
// (Config.Distributed; see examples/tcp2proc).
//
// Quickstart:
//
//	c, _ := multirail.New(multirail.Config{})      // 2 nodes, Myri-10G + QsNetII
//	c.Go("app", func(ctx multirail.Ctx) {
//	    buf := make([]byte, 1<<20)
//	    recv := c.Node(1).Irecv(0, 42, buf)
//	    c.Node(0).Isend(1, 42, payload)
//	    recv.Wait(ctx)
//	})
//	c.Run()
package multirail

import (
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/livenet"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/rt"
	"repro/internal/sampling"
	"repro/internal/shmnet"
	"repro/internal/simnet"
	"repro/internal/strategy"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Fabric kinds for Config.Fabric.
const (
	// FabricSim is the modeled fabric: analytic NIC profiles, virtual
	// time (or paced wall-clock time when Live is set).
	FabricSim = "sim"
	// FabricTCP is the live fabric: one real TCP connection per
	// (node pair, rail), always on the wall clock. With ShmRails > 0 it
	// becomes the mixed fabric: shared-memory rails first, TCP rails
	// after them — one heterogeneous rail set behind one engine.
	FabricTCP = "tcp"
	// FabricShm is the shared-memory fabric: every rail of every node
	// pair is a pair of lock-free ring buffers moved by plain memory
	// copies (the paper's PIO regime), always on the wall clock.
	FabricShm = "shm"
)

// FabricStats aggregates a rail's fabric-level traffic counters (what
// RailStats returns).
type FabricStats = fabric.Stats

// RailState is the health of one rail: RailUp, RailSuspect (transport
// fault observed, bounded recovery running) or RailDown (dead or
// administratively unplugged). See the "Fault tolerance" section of the
// README for the failover semantics.
type RailState = fabric.RailState

// Rail states (re-exported from the fabric contract).
const (
	RailUp      = fabric.RailUp
	RailSuspect = fabric.RailSuspect
	RailDown    = fabric.RailDown
)

// Re-exported building blocks. Aliases keep the public surface small
// while the implementation lives in internal packages.
type (
	// Profile is the analytic performance model of a NIC technology.
	Profile = model.Profile
	// Ctx is the blocking capability handed to application actors.
	Ctx = rt.Ctx
	// SendRequest tracks an Isend; Wait blocks until the buffer is
	// reusable.
	SendRequest = core.SendRequest
	// RecvRequest tracks an Irecv; Wait blocks until the message landed.
	RecvRequest = core.RecvRequest
	// Splitter decides how large messages are distributed over rails.
	Splitter = strategy.Splitter
	// Chunk is one piece of a split decision (what PlanFor returns).
	Chunk = strategy.Chunk
	// EngineStats counts engine activity on one node.
	EngineStats = core.Stats
	// IOVec is a gather/scatter vector: an ordered list of buffers
	// treated as one logical contiguous payload.
	IOVec = wire.IOVec
	// Tracer receives per-message timeline events.
	Tracer = trace.Tracer
	// TraceEvent is one step of a message's timeline.
	TraceEvent = trace.Event
	// TraceCollector stores timeline events in memory.
	TraceCollector = trace.Collector
	// FlightRecorder is the always-on lock-free ring of recent trace
	// events every cluster carries (see Cluster.Flight).
	FlightRecorder = trace.FlightRecorder
	// TraceSpan is one message's stitched timeline (trace.Stitch).
	TraceSpan = trace.Span
)

// NewTraceCollector returns an in-memory trace sink for Config.Tracer.
func NewTraceCollector() *TraceCollector { return trace.NewCollector() }

// Built-in rail profiles (calibration in DESIGN.md §7).
func Myri10G() *Profile { return model.Myri10G() }
func QsNetII() *Profile { return model.QsNetII() }
func IBVerbs() *Profile { return model.IBVerbs() }
func GigE() *Profile    { return model.GigE() }

// Built-in splitters.
func HeteroSplit() Splitter { return strategy.HeteroSplit{} }
func IsoSplit() Splitter    { return strategy.IsoSplit{} }
func SingleRail() Splitter  { return strategy.SingleRail{} }

// AdaptiveSplitter returns the observed-outcome chooser with explicit
// arms: per size class it picks between `single` (one rail) and `multi`
// (striped) from the measured completion times of previous sends,
// probing the loser periodically. Pass it as Config.Splitter together
// with AdaptiveTelemetry to control the candidate strategies (passing
// the same splitter for both arms pins the mode and leaves only the
// live rail estimates in play). Only meaningful together with
// AdaptiveTelemetry — without it no outcomes are ever observed and the
// chooser degenerates to following the model predictions. Note: a
// caller-supplied chooser is shared by every node this process hosts,
// so their outcome statistics mix; the default (Config.Splitter not an
// adaptive chooser) gives each node its own.
func AdaptiveSplitter(single, multi Splitter) Splitter {
	return &strategy.Adaptive{Single: single, Multi: multi}
}

// Config describes a cluster. The zero value gives the paper's testbed:
// two nodes, four cores each, one Myri-10G rail and one QsNetII rail, on
// the deterministic simulator, with the sampling-based hetero-split
// strategy.
type Config struct {
	// Nodes is the number of nodes (default 2).
	Nodes int
	// Rails lists the rail profiles (default Myri-10G + QsNetII).
	Rails []*Profile
	// CoresPerNode is the per-node core count (default 4, the paper's
	// dual dual-core Opterons).
	CoresPerNode int
	// Live selects wall-clock execution instead of the deterministic
	// virtual-time simulation. Unless Fabric says otherwise, a live
	// cluster runs on the TCP fabric and moves real bytes.
	Live bool
	// Fabric selects the byte-moving substrate: FabricSim or FabricTCP.
	// Empty means FabricSim, or FabricTCP when Live is set. FabricTCP
	// implies Live.
	Fabric string
	// ListenAddr is the TCP fabric's accept address (default
	// "127.0.0.1:0", an ephemeral loopback port).
	ListenAddr string
	// TCPRails is the number of TCP rails joining every node pair
	// (default 2). The TCP fabric ignores the Rails profiles.
	TCPRails int
	// TCPEagerMax caps eager payloads on TCP rails; larger messages take
	// the rendezvous path (default 32 KiB).
	TCPEagerMax int
	// ShmRails is the number of shared-memory rails joining every node
	// pair. With Fabric = FabricShm it is the cluster's whole rail set
	// (default 2); combined with FabricTCP it rides alongside the TCP
	// rails as a mixed heterogeneous fabric — shm rails take indices
	// 0..ShmRails-1, TCP rails follow. Intra-host traffic then has a
	// genuine PIO-regime lane, and the strategies face rails with truly
	// different cost models.
	ShmRails int
	// ShmEagerMax caps eager payloads on shm rails (default 64 KiB —
	// the PIO regime stretches further on a memory path).
	ShmEagerMax int
	// ShmRingBytes is each shm ring direction's payload capacity
	// (default 256 KiB). Larger frames stream through in pieces.
	ShmRingBytes int
	// ShmDir is the directory for the mmap-backed ring files
	// (Distributed mode with shm rails only). Every process of the
	// cluster must run on one host and name the same directory, which
	// must not hold ring files of a previous session.
	ShmDir string
	// Distributed hosts only LocalNode in this process (TCP fabric
	// only): it listens on ListenAddr for connections from higher-id
	// nodes and dials Peers[j] for every lower-id node j. Calls on
	// non-hosted node handles panic.
	Distributed bool
	// LocalNode is the node id this process hosts in Distributed mode.
	LocalNode int
	// Peers maps lower-id node ids to their listen addresses
	// (Distributed mode). Note: without SamplingFrom, a distributed
	// process calibrates its strategies on a loopback twin of the rails,
	// which misstates real cross-host links.
	Peers map[int]string
	// TimeScale multiplies modeled durations (0: 1x in simulation, no
	// pacing live).
	TimeScale float64
	// Splitter overrides the large-message strategy (default
	// HeteroSplit; under AdaptiveTelemetry it becomes the striping arm
	// of the adaptive chooser).
	Splitter Splitter
	// AdaptiveTelemetry turns the online feedback loop on: every
	// completed transfer unit becomes a latency/bandwidth observation,
	// the per-(peer, rail) cost estimates are re-fit when they drift,
	// strategies plan against the live estimates (warming away from the
	// start-up sampling tables, which remain the cold-start prior), an
	// adaptive chooser picks single-rail vs. split vs. parallel-eager
	// per size class from observed outcomes, and rendezvous plans are
	// cached by (dest, size bucket, epoch). Off by default: the paper's
	// figures are reproduced exactly when this is false.
	AdaptiveTelemetry bool
	// TelemetryHalfLife is the decay half-life of telemetry
	// observations (default 250ms of the cluster clock).
	TelemetryHalfLife time.Duration
	// PlanCacheSize bounds the per-node hot plan cache (default 1024
	// entries; used only with AdaptiveTelemetry).
	PlanCacheSize int
	// TelemetryProbeEvery is the probe period of the rendezvous path:
	// each period one plan bypasses the cache to re-try the chooser's
	// currently-losing mode (training it) and one stripes iso over
	// every usable rail (keeping starved rails measured). Default 16;
	// smaller probes more aggressively — faster re-adoption at a larger
	// throughput tax; values below 4 clamp to 4.
	TelemetryProbeEvery int
	// GreedyEager selects the Fig 3 greedy baseline instead of
	// aggregation.
	GreedyEager bool
	// EagerParallel enables multicore parallel submission of medium
	// eager packets (§III-D).
	EagerParallel bool
	// RecvWorkers is the number of progression actors per node (default
	// 1). Two or more let striped chunks be received in parallel on
	// several cores — the multithreaded receive side of the paper's
	// library. On the TCP fabric the progress worker pool (Workers)
	// supersedes this knob.
	RecvWorkers int
	// Workers is the per-node multicore progression worker count
	// (default CoresPerNode): the engine's progress pool that flushes
	// submit queues and — on the TCP fabric — processes deliveries in
	// parallel. More workers help when many concurrent flows contend;
	// one worker serialises the engine (useful for debugging).
	Workers int
	// Shards is the per-node flow-shard count for the engine's
	// matching/pending/unacked tables (default: smallest power of two
	// >= 4*Workers, min 8; rounded up to a power of two). More shards
	// reduce lock contention between flows that hash together.
	Shards int
	// Sampling tunes the start-up sampling range.
	SamplingMin, SamplingMax int
	// SamplingFrom, when non-nil, loads a saved sampling instead of
	// benchmarking at start-up (cmd/nmsample writes such files).
	SamplingFrom io.Reader
	// Tracer, when non-nil, receives every engine's per-message timeline
	// (use NewTraceCollector for an in-memory sink).
	Tracer Tracer
	// MetricsAddr, when non-empty, starts an HTTP exporter on the
	// address serving /metrics (Prometheus text) and /metrics.json (the
	// MetricsSnapshot shape cmd/nmtop consumes). Use "127.0.0.1:0" for
	// an ephemeral port and read it back with Cluster.MetricsAddr. The
	// families exist either way — MetricsSnapshot works without the
	// exporter.
	MetricsAddr string
	// MetricsPprof additionally mounts net/http/pprof under
	// /debug/pprof/ on the metrics exporter.
	MetricsPprof bool
	// OnRailDown, when non-nil, is called (once per hosted node and
	// transition, from a cluster actor) whenever a rail goes Down — a
	// NIC died, its recovery budget ran out, or it was unplugged with
	// DisableRail. The engines have already begun re-planning in-flight
	// work when it fires; the callback is for monitoring and alerting.
	OnRailDown func(node, rail int, reason string)
}

// Cluster is a running multirail communication system.
type Cluster struct {
	cfg      Config
	kind     string
	env      rt.Env
	sim      *rt.SimEnv // nil when live
	live     *rt.LiveEnv
	fab      fabric.Fabric
	tcpFab   *livenet.Fabric // the TCP substrate, when one exists
	shmFab   *shmnet.Fabric  // the shm substrate, when one exists
	kinds    []string        // per-rail kind ("shm", "tcp", or a profile name)
	engines  []*core.Engine  // indexed by node id; nil when not hosted
	profiles []*sampling.RailProfile

	metricsReg  *metrics.Registry     // always built; exporter optional
	metricsSrv  *metrics.Server       // nil unless Config.MetricsAddr set
	traceCounts *trace.Counts         // per-kind event totals, always on
	flight      *trace.FlightRecorder // ring of recent events, always on

	wg       sync.WaitGroup // user actors (live mode)
	nodes    []*Node
	healthQs []rt.Queue // OnRailDown watcher queues (nil-nudged at Close)
}

// New builds, samples and starts a cluster.
func New(cfg Config) (*Cluster, error) {
	if cfg.Nodes == 0 {
		cfg.Nodes = 2
	}
	if len(cfg.Rails) == 0 {
		cfg.Rails = []*Profile{Myri10G(), QsNetII()}
	}
	if cfg.CoresPerNode == 0 {
		cfg.CoresPerNode = 4
	}
	kind := cfg.Fabric
	if kind == "" {
		if cfg.Live {
			kind = FabricTCP
		} else {
			kind = FabricSim
		}
	}
	if kind == FabricTCP || kind == FabricShm {
		cfg.Live = true
	}
	if kind == FabricShm && cfg.ShmRails == 0 {
		cfg.ShmRails = 2
	}
	if cfg.Distributed && kind == FabricSim {
		return nil, fmt.Errorf("multirail: distributed mode requires a live fabric (%q or %q)", FabricTCP, FabricShm)
	}
	if cfg.ShmRails > 0 && kind == FabricSim {
		return nil, fmt.Errorf("multirail: shm rails require a live fabric (%q or %q)", FabricTCP, FabricShm)
	}
	c := &Cluster{
		cfg:         cfg,
		kind:        kind,
		metricsReg:  metrics.NewRegistry(),
		traceCounts: trace.NewCounts(),
		flight:      trace.NewFlightRecorder(0),
	}
	if cfg.Live {
		c.live = rt.NewLive()
		c.env = c.live
	} else {
		c.sim = rt.NewSim()
		c.env = c.sim
	}
	var err error
	switch kind {
	case FabricSim:
		c.fab, err = simnet.New(c.env, simnet.Config{
			Nodes:        cfg.Nodes,
			Rails:        cfg.Rails,
			CoresPerNode: cfg.CoresPerNode,
			TimeScale:    cfg.TimeScale,
		})
		for _, p := range cfg.Rails {
			c.kinds = append(c.kinds, p.Name)
		}
	case FabricTCP, FabricShm:
		// A stalling shm ring is backpressure worth a flight-recorder
		// dump: the ring around the stall shows which messages filled it.
		onStall := func(rail int) {
			c.flight.NoteAnomaly(c.env.Now(), c.Local(),
				"shm ring stall: rail "+strconv.Itoa(rail))
		}
		c.fab, c.shmFab, c.tcpFab, err = buildLiveFabric(c.live, cfg, kind, onStall)
		if err == nil {
			if c.shmFab != nil {
				for r := 0; r < c.shmFab.NumRails(); r++ {
					c.kinds = append(c.kinds, "shm")
				}
			}
			if c.tcpFab != nil {
				for r := 0; r < c.tcpFab.NumRails(); r++ {
					c.kinds = append(c.kinds, "tcp")
				}
			}
		}
	default:
		err = fmt.Errorf("multirail: unknown fabric %q", kind)
	}
	if err != nil {
		return nil, err
	}
	if c.profiles, err = c.sampleProfiles(kind); err != nil {
		c.fab.Close()
		return nil, err
	}
	if len(c.profiles) != c.fab.NumRails() {
		c.fab.Close()
		return nil, fmt.Errorf("multirail: sampling has %d rails, cluster has %d", len(c.profiles), c.fab.NumRails())
	}
	ecfg := core.Config{
		Splitter:      cfg.Splitter,
		EagerParallel: cfg.EagerParallel,
		Workers:       cfg.Workers,
		Shards:        cfg.Shards,
		// Live fabrics (TCP, shm, mixed) feed the engine's per-core
		// workers directly (multicore progression); the modeled fabric
		// keeps the inline progression actor whose CPU charges the model
		// depends on.
		DirectProgress: kind != FabricSim,
		// The per-kind event counter and the flight recorder ride along
		// whatever tracer the caller installed; both are lock-free and
		// allocation-free, so they stay on even with no Config.Tracer.
		Tracer:  trace.Tee(c.traceCounts, c.flight, cfg.Tracer),
		Flight:  c.flight,
		Metrics: c.metricsReg,
	}
	ecfg.Pioman.Workers = cfg.RecvWorkers
	if cfg.GreedyEager {
		ecfg.Eager = core.PolicyGreedy
	}
	for i := 0; i < cfg.Nodes; i++ {
		var eng *core.Engine
		if !cfg.Distributed || i == cfg.LocalNode {
			ncfg := ecfg
			if cfg.AdaptiveTelemetry {
				// Telemetry state is per node: each engine owns its
				// tracker, plan cache and adaptive chooser, so one node's
				// observations never leak into another's decisions.
				priors := make([]strategy.Estimator, len(c.profiles))
				eagerPriors := make([]strategy.Estimator, len(c.profiles))
				rdvPriors := make([]strategy.Estimator, len(c.profiles))
				for r, p := range c.profiles {
					priors[r] = p
					if p.Eager != nil {
						eagerPriors[r] = p.Eager
					}
					rdvPriors[r] = p.Rdv
				}
				tr, terr := telemetry.NewTracker(c.env, telemetry.Config{
					Peers:      cfg.Nodes,
					Rails:      c.fab.NumRails(),
					HalfLife:   cfg.TelemetryHalfLife,
					PathGroup:  c.pathGroups(),
					EagerPrior: eagerPriors,
					RdvPrior:   rdvPriors,
				}, priors)
				if terr != nil {
					c.fab.Close()
					return nil, terr
				}
				ncfg.Telemetry = tr
				ncfg.PlanCache = telemetry.NewCache(cfg.PlanCacheSize)
				ncfg.ProbeEvery = cfg.TelemetryProbeEvery
				// Each engine chains its own tracker's epoch bump onto the
				// chooser's verdict-flip callback (core.NewEngine), so a
				// caller-tuned chooser shared across hosted nodes stales
				// every node's cached plans without wiring here.
				if ad, ok := cfg.Splitter.(*strategy.Adaptive); ok {
					ncfg.Splitter = ad
				} else {
					ncfg.Splitter = &strategy.Adaptive{Multi: cfg.Splitter}
				}
			}
			eng, err = core.NewEngine(c.env, c.fab.Node(i), c.profiles, ncfg)
			if err != nil {
				c.fab.Close()
				return nil, err
			}
		}
		c.engines = append(c.engines, eng)
		c.nodes = append(c.nodes, &Node{cluster: c, id: i})
		if eng != nil {
			c.initClusterMetrics(i)
		}
		if cfg.OnRailDown != nil && (!cfg.Distributed || i == cfg.LocalNode) {
			c.watchRails(i)
		}
	}
	c.initTraceMetrics()
	if cfg.MetricsAddr != "" {
		srv, serr := metrics.Serve(cfg.MetricsAddr, c.metricsReg, cfg.MetricsPprof,
			metrics.Endpoint{Path: "/trace/ring.json", H: trace.RingHandler(c.flight)},
			metrics.Endpoint{Path: "/trace/perfetto", H: trace.PerfettoHandler(c.flight)})
		if serr != nil {
			c.Close()
			return nil, fmt.Errorf("multirail: metrics exporter: %w", serr)
		}
		c.metricsSrv = srv
	}
	return c, nil
}

// buildLiveFabric constructs the wall-clock byte-moving substrate:
// shared-memory rails, TCP rails, or both mixed into one heterogeneous
// rail set (shm rails first). Exactly the sub-fabrics that exist are
// returned alongside the combined one.
func buildLiveFabric(env *rt.LiveEnv, cfg Config, kind string, onStall func(rail int)) (fabric.Fabric, *shmnet.Fabric, *livenet.Fabric, error) {
	var (
		shmF *shmnet.Fabric
		tcpF *livenet.Fabric
		err  error
	)
	if kind == FabricShm || cfg.ShmRails > 0 {
		scfg := shmnet.Config{
			Nodes:        cfg.Nodes,
			Rails:        cfg.ShmRails,
			CoresPerNode: cfg.CoresPerNode,
			EagerMax:     cfg.ShmEagerMax,
			RingBytes:    cfg.ShmRingBytes,
			Dir:          cfg.ShmDir,
			OnStall:      onStall,
		}
		if cfg.Distributed {
			shmF, err = shmnet.NewDistributed(env, cfg.LocalNode, scfg)
		} else {
			shmF, err = shmnet.NewHosted(env, scfg)
		}
		if err != nil {
			return nil, nil, nil, err
		}
	}
	if kind == FabricTCP {
		lcfg := livenet.Config{
			Nodes:        cfg.Nodes,
			Rails:        cfg.TCPRails,
			CoresPerNode: cfg.CoresPerNode,
			EagerMax:     cfg.TCPEagerMax,
			ListenAddr:   cfg.ListenAddr,
			Peers:        cfg.Peers,
		}
		if cfg.Distributed {
			tcpF, err = livenet.NewDistributed(env, cfg.LocalNode, lcfg)
		} else {
			tcpF, err = livenet.NewLoopback(env, lcfg)
		}
		if err != nil {
			if shmF != nil {
				shmF.Close()
			}
			return nil, nil, nil, err
		}
	}
	switch {
	case shmF != nil && tcpF != nil:
		local := -1
		if cfg.Distributed {
			local = cfg.LocalNode
		}
		mixed, merr := fabric.NewMix(local, shmF, tcpF)
		if merr != nil {
			shmF.Close()
			tcpF.Close()
			return nil, nil, nil, merr
		}
		return mixed, shmF, tcpF, nil
	case shmF != nil:
		return shmF, shmF, nil, nil
	default:
		return tcpF, nil, tcpF, nil
	}
}

// pathGroups assigns each rail to a shared host path for the telemetry
// observer's contention attribution: on a loopback (one-process) TCP
// cluster every TCP rail rides the kernel's one loopback queue, so they
// form one group; shm rails have their own rings and stay unshared, as
// do the genuinely separate NICs of a distributed deployment.
func (c *Cluster) pathGroups() []int {
	groups := make([]int, c.fab.NumRails())
	for r := range groups {
		groups[r] = -1
		if !c.cfg.Distributed && c.kinds[r] == "tcp" {
			groups[r] = 0
		}
	}
	return groups
}

// watchRails runs an actor that forwards a hosted node's Down
// transitions to Config.OnRailDown.
func (c *Cluster) watchRails(node int) {
	q := c.fab.Node(node).Health().Subscribe()
	c.healthQs = append(c.healthQs, q)
	c.env.Go(fmt.Sprintf("rail-watch-%d", node), func(ctx rt.Ctx) {
		for {
			item := q.Pop(ctx)
			if item == nil {
				return
			}
			ev := item.(*fabric.RailEvent)
			if ev.State == fabric.RailDown {
				c.cfg.OnRailDown(ev.Node, ev.Rail, ev.Reason)
			}
		}
	})
}

// sampleProfiles obtains the per-rail estimators: from a file, from the
// paper's start-up benchmark on a simulated twin (sim fabric), or from a
// genuine measurement pass over real TCP (tcp fabric).
func (c *Cluster) sampleProfiles(kind string) ([]*sampling.RailProfile, error) {
	if c.cfg.SamplingFrom != nil {
		return sampling.Load(c.cfg.SamplingFrom)
	}
	scfg := sampling.Config{MinSize: c.cfg.SamplingMin, MaxSize: c.cfg.SamplingMax}
	if kind == FabricSim {
		// The paper samples at launch; doing it on a private simulated
		// twin keeps the user cluster's clock at zero.
		return sampling.SampleProfiles(c.cfg.Rails, scfg)
	}
	// Live sampling measures the real rails. Keep the default ladder
	// modest (start-up time is wall-clock) and take the best of a few
	// iterations to reject scheduling noise.
	if scfg.MaxSize == 0 {
		scfg.MaxSize = 4 << 20
	}
	scfg.Iters = 3
	if !c.cfg.Distributed {
		return sampling.SampleLive(c.fab, scfg)
	}
	// A distributed process hosts one node, so it cannot ping-pong with
	// itself: measure a loopback twin of the rails instead — same kinds,
	// same shape, hosted in this process. For shm rails the twin is
	// accurate (the real rails are intra-host memory copies too); for
	// TCP rails on real multi-host deployments the twin's loopback
	// numbers misstate actual latency and bandwidth — supply
	// SamplingFrom (a sampling file measured on the real network, see
	// cmd/nmsample) for accurate thresholds and striping ratios.
	tcfg := c.cfg
	tcfg.Nodes = 2
	tcfg.Distributed = false
	tcfg.Peers = nil
	tcfg.ListenAddr = ""
	tcfg.ShmDir = "" // the hosted twin uses heap rings, not the ring files
	twin, _, _, err := buildLiveFabric(rt.NewLive(), tcfg, kind, nil)
	if err != nil {
		return nil, fmt.Errorf("multirail: sampling twin: %w", err)
	}
	defer twin.Close()
	return sampling.SampleLive(twin, scfg)
}

// Node returns the handle for node i.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// Nodes returns the number of nodes.
func (c *Cluster) Nodes() int { return len(c.nodes) }

// Rails returns the number of rails.
func (c *Cluster) Rails() int { return c.fab.NumRails() }

// Local returns the node id hosted by this process, or -1 when every
// node is hosted (simulation or loopback).
func (c *Cluster) Local() int {
	if c.cfg.Distributed {
		return c.cfg.LocalNode
	}
	return -1
}

// ListenAddr returns the TCP fabric's accept address (useful with the
// default ephemeral port); empty for fabrics without TCP rails.
func (c *Cluster) ListenAddr() string {
	if c.tcpFab != nil {
		return c.tcpFab.LocalAddr()
	}
	return ""
}

// FabricKind returns the resolved substrate — FabricSim, FabricTCP,
// FabricShm, or "shm+tcp" for the mixed heterogeneous fabric.
func (c *Cluster) FabricKind() string {
	if c.shmFab != nil && c.tcpFab != nil {
		return "shm+tcp"
	}
	return c.kind
}

// RailKind returns what rail r is made of: "shm", "tcp", or the modeled
// profile's name on the simulated fabric. On the mixed fabric the shm
// rails come first.
func (c *Cluster) RailKind(rail int) string { return c.kinds[rail] }

// Err returns the first transport error the fabric observed (TCP read
// or write failures, shm attach problems), or nil. The modeled fabric
// never errors. A non-nil Err does not imply data loss: in-flight work
// on a rail that died is re-planned onto the survivors (see README,
// "Fault tolerance") — it is the diagnostic for why a rail went Down.
func (c *Cluster) Err() error {
	if c.tcpFab != nil {
		if err := c.tcpFab.Err(); err != nil {
			return err
		}
	}
	if c.shmFab != nil {
		if err := c.shmFab.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Go spawns an application actor.
func (c *Cluster) Go(name string, fn func(Ctx)) {
	if c.live != nil {
		c.wg.Add(1)
		c.env.Go(name, func(ctx rt.Ctx) {
			defer c.wg.Done()
			fn(ctx)
		})
		return
	}
	c.env.Go(name, func(ctx rt.Ctx) { fn(ctx) })
}

// Run executes the workload: in simulation it drives the virtual clock
// until the system quiesces; live it blocks until every actor spawned
// with Go has returned.
func (c *Cluster) Run() {
	if c.sim != nil {
		c.sim.Run()
		return
	}
	c.wg.Wait()
}

// Close stops the engines, tears down the fabric and, in simulation,
// reclaims every actor.
func (c *Cluster) Close() {
	if c.metricsSrv != nil {
		c.metricsSrv.Close()
		c.metricsSrv = nil
	}
	for _, e := range c.engines {
		if e != nil {
			e.Stop()
		}
	}
	for _, q := range c.healthQs {
		q.Push(nil)
	}
	c.fab.Close()
	if c.sim != nil {
		c.sim.Close()
	}
}

// Now returns the cluster clock (virtual or wall).
func (c *Cluster) Now() time.Duration { return c.env.Now() }

// Estimate returns the sampled one-way transfer estimate for a size on a
// rail — the quantity the strategies minimise.
func (c *Cluster) Estimate(rail, size int) time.Duration {
	return c.profiles[rail].Estimate(size)
}

// Threshold returns the sampled rendezvous threshold of a rail.
func (c *Cluster) Threshold(rail int) int { return c.profiles[rail].Threshold() }

// EagerThreshold returns the size up to which `node` currently prefers
// the eager path for traffic to `peer`: the sampled maximum over its
// usable (Up) rails, or — under AdaptiveTelemetry — the threshold
// derived live from the per-(peer, rail) eager/rendezvous fits. Down
// rails never contribute: a dead rail's profile cannot force rendezvous
// on sizes the survivors would send eagerly.
func (c *Cluster) EagerThreshold(node, peer int) int {
	return c.engine(node).EagerThresholdTo(peer)
}

// SaveSampling writes the start-up sampling in the nmad-go format.
func (c *Cluster) SaveSampling(w io.Writer) error {
	return sampling.Save(w, c.profiles)
}

// EngineStats returns node i's engine counters.
func (c *Cluster) EngineStats(node int) EngineStats { return c.engine(node).Stats() }

// engine returns the engine hosted for a node, panicking with a clear
// message for remote nodes of a distributed cluster.
func (c *Cluster) engine(node int) *core.Engine {
	e := c.engines[node]
	if e == nil {
		panic(fmt.Sprintf("multirail: node %d is not hosted by this process (distributed mode)", node))
	}
	return e
}

// RailIdleAt returns the predicted idle time of a node's rail (Fig 2's
// input).
func (c *Cluster) RailIdleAt(node, rail int) time.Duration {
	return c.fab.Node(node).Rail(rail).IdleAt()
}

// RailStats returns the fabric traffic counters of every rail of a
// node, indexed by rail. The failover tests read it to assert that the
// bytes of a message whose rail died moved to the survivors.
func (c *Cluster) RailStats(node int) []FabricStats {
	n := c.fab.Node(node)
	out := make([]FabricStats, n.NumRails())
	for r := range out {
		out[r] = n.Rail(r).Stats()
	}
	return out
}

// RailStates returns the health of every rail of a node, indexed by
// rail.
func (c *Cluster) RailStates(node int) []RailState {
	return c.fab.Node(node).Health().States()
}

// DisableRail hot-unplugs a rail on every hosted node (planned
// maintenance): the rail goes Down, the strategies stop using it, and
// in-flight transfer units on it are re-planned onto the survivors. In
// distributed mode only the local node's side is disabled — run the
// call in every process for a cluster-wide unplug.
func (c *Cluster) DisableRail(rail int) {
	for i, eng := range c.engines {
		if eng != nil {
			c.fab.Node(i).Health().Disable(rail, "admin: DisableRail")
		}
	}
}

// EnableRail re-plugs a rail disabled with DisableRail on every hosted
// node (and asks the fabric to re-establish dead links, on fabrics that
// can).
func (c *Cluster) EnableRail(rail int) {
	for i, eng := range c.engines {
		if eng != nil {
			c.fab.Node(i).Health().Enable(rail)
		}
	}
}

// ThrottleRail artificially slows rail r by `factor` on every hosted
// node (10 = ten times slower; factor <= 1 removes the throttle). The
// rail stays Up — this is the congestion chaos hook: under
// AdaptiveTelemetry the drift detector notices the slowdown from live
// measurements and new plans migrate off the rail without any health
// transition or restart.
func (c *Cluster) ThrottleRail(rail int, factor float64) {
	if t, ok := c.fab.(fabric.Throttler); ok {
		t.ThrottleRail(rail, factor)
	}
}

// LiveEstimate returns `node`'s current one-way transfer estimate for
// size bytes to `peer` on `rail`: under AdaptiveTelemetry this is the
// live measurement-blended estimate (what the strategies actually plan
// with), otherwise the static sampled one — compare with Estimate,
// which always reads the start-up table.
func (c *Cluster) LiveEstimate(node, peer, rail, size int) time.Duration {
	return c.engine(node).EstimateFor(peer, rail, size)
}

// PlanFor returns the chunk distribution the engine of `node` would
// currently choose for an n-byte rendezvous to `to` — under
// AdaptiveTelemetry this reflects the live estimates, so it shows where
// the next bytes would go right now.
func (c *Cluster) PlanFor(node, to, n int) []strategy.Chunk {
	return c.engine(node).PlanFor(to, n)
}

// DescribePlan formats PlanFor for humans: strategy chunks as
// "rail:bytes" shares (nmping -stats and the adaptive example print it).
func (c *Cluster) DescribePlan(node, to, n int) string {
	chunks := c.PlanFor(node, to, n)
	if len(chunks) == 0 {
		return "(no plan)"
	}
	s := ""
	for i, ch := range chunks {
		if i > 0 {
			s += " + "
		}
		s += fmt.Sprintf("rail%d:%d", ch.Rail, ch.Size)
	}
	return s
}

// Node is the per-node communication handle.
type Node struct {
	cluster *Cluster
	id      int
}

// ID returns the node index.
func (n *Node) ID() int { return n.id }

// Isend submits a message to node `to` under `tag`; it never blocks.
func (n *Node) Isend(to int, tag uint32, data []byte) *SendRequest {
	return n.cluster.engine(n.id).Isend(to, tag, data)
}

// IsendV submits a gather vector (a list of buffers treated as one
// logical payload) without blocking.
func (n *Node) IsendV(to int, tag uint32, v IOVec) *SendRequest {
	return n.cluster.engine(n.id).IsendV(to, tag, v)
}

// Irecv posts a receive for a message from node `from` under `tag`.
func (n *Node) Irecv(from int, tag uint32, buf []byte) *RecvRequest {
	return n.cluster.engine(n.id).Irecv(from, tag, buf)
}

// Send submits and waits for local completion.
func (n *Node) Send(ctx Ctx, to int, tag uint32, data []byte) {
	n.Isend(to, tag, data).Wait(ctx)
}

// Recv posts a receive and waits for the message; it returns the
// received length.
func (n *Node) Recv(ctx Ctx, from int, tag uint32, buf []byte) (int, error) {
	return n.Irecv(from, tag, buf).Wait(ctx)
}
