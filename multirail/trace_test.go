package multirail_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/trace"
	"repro/multirail"
)

// TestFlightRecorderStitchesMixedCluster is the distributed-tracing
// acceptance check: on a live 3-node mixed shm+tcp cluster, one eager
// message and one striped rendezvous must each stitch — from the
// always-on flight recorder alone — into a single cross-node span
// carrying the sender's trace id (origin + message id), with the
// receiver-side events attributed to it and the stages in order:
// Submit first, then the wire events, Delivered on the far node, and
// Completed/Acked closing the sender side.
func TestFlightRecorderStitchesMixedCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock mixed fabric")
	}
	const (
		eagerSize = 1111   // below both eager thresholds
		rdvSize   = 200000 // above both: forced rendezvous
	)
	c, err := multirail.New(multirail.Config{
		Live:        true,
		Nodes:       3,
		ShmRails:    1,
		TCPRails:    1,
		Splitter:    multirail.IsoSplit(), // stripe over both rail kinds
		SamplingMax: 64 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.FabricKind() != "shm+tcp" {
		t.Fatalf("fabric %s, want shm+tcp", c.FabricKind())
	}

	eager := make([]byte, eagerSize)
	rdv := make([]byte, rdvSize)
	bufE := make([]byte, eagerSize)
	bufR := make([]byte, rdvSize)
	c.Go("traced", func(ctx multirail.Ctx) {
		rrE := c.Node(1).Irecv(0, 7, bufE)
		rrR := c.Node(2).Irecv(0, 8, bufR)
		srE := c.Node(0).Isend(1, 7, eager)
		srR := c.Node(0).Isend(2, 8, rdv)
		for _, rr := range []*multirail.RecvRequest{rrE, rrR} {
			if _, err := rr.Wait(ctx); err != nil {
				panic(fmt.Sprintf("recv: %v", err))
			}
		}
		srE.RemoteDone().Wait(ctx)
		srR.RemoteDone().Wait(ctx)
	})
	c.Run()

	// RemoteDone wakes the waiter the instant the last ack lands; the
	// Acked trace event is recorded by the acking goroutine right after.
	// Poll briefly instead of racing it.
	var eagerSpan, rdvSpan *trace.Span
	deadline := time.Now().Add(2 * time.Second)
	for {
		spans := trace.Stitch(c.Flight().Snapshot())
		eagerSpan = findSpanBySize(spans, eagerSize)
		rdvSpan = findSpanBySize(spans, rdvSize)
		if complete(eagerSpan) && complete(rdvSpan) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("spans incomplete after 2s: eager=%v rdv=%v",
				kinds(eagerSpan), kinds(rdvSpan))
		}
		time.Sleep(5 * time.Millisecond)
	}

	checkSpan(t, "eager", eagerSpan, 0, 1)
	if !eagerSpan.Has(trace.EagerSent) {
		t.Errorf("eager span missing EagerSent: %v", kinds(eagerSpan))
	}

	checkSpan(t, "rdv", rdvSpan, 0, 2)
	for _, k := range []trace.Kind{trace.RTSSent, trace.CTSSent, trace.ChunkPosted} {
		if !rdvSpan.Has(k) {
			t.Errorf("rdv span missing %s: %v", k, kinds(rdvSpan))
		}
	}
	if cts, ok := rdvSpan.First(trace.CTSSent); ok && cts.Node != 2 {
		t.Errorf("CTS recorded on node %d, want the receiver (2)", cts.Node)
	}
	rails := map[int]bool{}
	for _, e := range rdvSpan.Events {
		if e.Kind == trace.ChunkPosted {
			rails[e.Rail] = true
		}
	}
	if len(rails) < 2 {
		t.Errorf("iso-split rendezvous used rails %v, want chunks on both", rails)
	}
}

// findSpanBySize returns the span whose Delivered event carried `size`
// bytes — how the test tells its messages apart in the shared ring.
func findSpanBySize(spans []trace.Span, size int) *trace.Span {
	for i := range spans {
		if e, ok := spans[i].First(trace.Delivered); ok && e.Size == size {
			return &spans[i]
		}
	}
	return nil
}

func complete(s *trace.Span) bool {
	return s != nil && s.Has(trace.Submit) && s.Has(trace.Delivered) &&
		s.Has(trace.Completed) && s.Has(trace.Acked)
}

func kinds(s *trace.Span) []string {
	if s == nil {
		return nil
	}
	out := make([]string, len(s.Events))
	for i, e := range s.Events {
		out[i] = fmt.Sprintf("%s@n%d", e.Kind, e.Node)
	}
	return out
}

// checkSpan asserts the cross-node invariants every complete span must
// satisfy: the trace id names the sender, the span opens with Submit on
// the sender, the receiver's Delivered is attributed to the sender's
// trace id, and the sender-side closers are present.
func checkSpan(t *testing.T, name string, s *trace.Span, origin, dest int) {
	t.Helper()
	if s.Key.Origin != origin {
		t.Errorf("%s: span origin %d, want %d", name, s.Key.Origin, origin)
	}
	if s.Events[0].Kind != trace.Submit || s.Events[0].Node != origin {
		t.Errorf("%s: span opens with %s@n%d, want submit@n%d",
			name, s.Events[0].Kind, s.Events[0].Node, origin)
	}
	d, _ := s.First(trace.Delivered)
	if d.Node != dest {
		t.Errorf("%s: Delivered on node %d, want %d", name, d.Node, dest)
	}
	if d.Origin != origin {
		t.Errorf("%s: receiver attributed delivery to origin %d, want %d",
			name, d.Origin, origin)
	}
	for i := 1; i < len(s.Events); i++ {
		if s.Events[i].At < s.Events[i-1].At {
			t.Errorf("%s: events out of order at %d", name, i)
		}
	}
}
