package multirail

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/metrics"
	"repro/internal/rt"
)

// drainRailEvents empties a health subscription queue, counting events
// by the state they announced.
func drainRailEvents(q rt.Queue) map[fabric.RailState]int {
	got := map[fabric.RailState]int{}
	for {
		item, ok := q.TryPop()
		if !ok {
			break
		}
		if ev, ok := item.(*fabric.RailEvent); ok && ev != nil {
			got[ev.State]++
		}
	}
	return got
}

// testHealthTransitionMetrics forces a full Suspect → Down → Enable
// cycle on one rail and checks that the transition counters and the
// state gauge move exactly as the railhealth event feed says.
func testHealthTransitionMetrics(t *testing.T, cfg Config) {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const node, rail = 0, 0
	tracker, local := c.healthTracker(node, rail)
	if tracker == nil {
		t.Fatalf("fabric %q has no railhealth tracker", c.FabricKind())
	}
	q := tracker.Subscribe()

	transitions := func(state string) uint64 {
		m := c.MetricsSnapshot().Find("nm_rail_transitions_total",
			metrics.L("node", "0", "rail", "0", "state", state)...)
		if m == nil {
			t.Fatalf("nm_rail_transitions_total{state=%q} missing", state)
		}
		return uint64(m.Value)
	}
	stateGauge := func() float64 {
		m := c.MetricsSnapshot().Find("nm_rail_state",
			metrics.L("node", "0", "rail", "0")...)
		if m == nil {
			t.Fatal("nm_rail_state missing")
		}
		return m.Value
	}
	base := map[string]uint64{
		"up": transitions("up"), "suspect": transitions("suspect"), "down": transitions("down"),
	}

	// Fault observed → bounded recovery running → recovery exhausted.
	tracker.Report(local, fabric.RailSuspect, "test: transport fault")
	if g := stateGauge(); g != float64(fabric.RailSuspect) {
		t.Fatalf("after Suspect: nm_rail_state = %v, want %d", g, fabric.RailSuspect)
	}
	tracker.Report(local, fabric.RailDown, "test: recovery exhausted")
	if g := stateGauge(); g != float64(fabric.RailDown) {
		t.Fatalf("after Down: nm_rail_state = %v, want %d", g, fabric.RailDown)
	}
	// Repair: the rail returns to Up.
	tracker.Enable(local)
	if g := stateGauge(); g != float64(fabric.RailUp) {
		t.Fatalf("after Enable: nm_rail_state = %v, want %d", g, fabric.RailUp)
	}

	// The events the feed delivered are the ground truth the counters
	// must match (set() bumps the counter and publishes under one
	// critical section, so there is no window where they disagree).
	events := drainRailEvents(q)
	want := map[fabric.RailState]int{
		fabric.RailSuspect: 1, fabric.RailDown: 1, fabric.RailUp: 1,
	}
	for st, n := range want {
		if events[st] != n {
			t.Fatalf("event feed delivered %d %v events, want %d", events[st], st, n)
		}
	}
	for st, name := range railStateNames {
		if got, wantN := transitions(name)-base[name], uint64(events[st]); got != wantN {
			t.Fatalf("nm_rail_transitions_total{state=%q} moved by %d, events say %d", name, got, wantN)
		}
	}
}

func TestHealthTransitionMetricsSim(t *testing.T) {
	testHealthTransitionMetrics(t, Config{})
}

func TestHealthTransitionMetricsTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock fabric")
	}
	testHealthTransitionMetrics(t, Config{
		Fabric: FabricTCP, Nodes: 2, TCPRails: 2, SamplingMax: 64 << 10,
	})
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMetricsExporterMixedCluster is the ISSUE 7 acceptance test: a live
// mixed shm+tcp cluster with the adaptive loop on serves /metrics and
// /metrics.json with the per-rail families populated — traffic counted
// on both substrates, latency histograms filled, plan cache and
// telemetry and trace families present.
func TestMetricsExporterMixedCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock fabric")
	}
	c, err := New(Config{
		Live:              true,
		Nodes:             2,
		ShmRails:          1,
		TCPRails:          1,
		SamplingMax:       64 << 10,
		AdaptiveTelemetry: true,
		MetricsAddr:       "127.0.0.1:0",
		MetricsPprof:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.MetricsAddr() == "" {
		t.Fatal("MetricsAddr empty with exporter configured")
	}

	// Eager and rendezvous traffic so every observation path runs.
	c.Go("traffic", func(ctx rt.Ctx) {
		small := []byte("metrics probe")
		buf := make([]byte, 64)
		for i := uint32(0); i < 20; i++ {
			rr := c.Node(1).Irecv(0, i, buf)
			sr := c.Node(0).Isend(1, i, small)
			sr.Wait(ctx)
			if _, err := rr.Wait(ctx); err != nil {
				t.Error(err)
			}
		}
		big := make([]byte, 1<<20)
		bigBuf := make([]byte, 1<<20)
		rr := c.Node(1).Irecv(0, 999, bigBuf)
		sr := c.Node(0).Isend(1, 999, big)
		sr.Wait(ctx)
		if _, err := rr.Wait(ctx); err != nil {
			t.Error(err)
		}
	})
	c.Run()

	// Acks arrive asynchronously after Wait returns; poll the snapshot
	// until both histograms have observations.
	histCount := func(family string) uint64 {
		m := c.MetricsSnapshot().Find(family, metrics.L("node", "0")...)
		if m == nil {
			return 0
		}
		return m.Count
	}
	waitFor(t, 5*time.Second, "latency histogram observations", func() bool {
		return histCount("nm_eager_latency_seconds") > 0 && histCount("nm_rdv_latency_seconds") > 0
	})

	snap := c.MetricsSnapshot()
	for _, kind := range []string{"shm", "tcp"} {
		m := snap.Find("nm_rail_frames_total", metrics.L("node", "0", "kind", kind)...)
		if m == nil || m.Value == 0 {
			t.Fatalf("nm_rail_frames_total{kind=%q} = %+v, want > 0 (sampling alone crosses every rail)", kind, m)
		}
	}
	if m := snap.Find("nm_engine_events_total", metrics.L("node", "0", "kind", "eager_sent")...); m == nil || m.Value == 0 {
		t.Fatalf("nm_engine_events_total{kind=eager_sent} = %+v, want > 0", m)
	}
	if m := snap.Find("nm_engine_events_total", metrics.L("node", "0", "kind", "rdv_sent")...); m == nil || m.Value == 0 {
		t.Fatalf("nm_engine_events_total{kind=rdv_sent} = %+v, want > 0", m)
	}
	if m := snap.Find("nm_telemetry_observations_total", metrics.L("node", "0")...); m == nil || m.Value == 0 {
		t.Fatalf("nm_telemetry_observations_total = %+v, want > 0", m)
	}
	if m := snap.Find("nm_trace_events_total", metrics.L("kind", "submit")...); m == nil || m.Value == 0 {
		t.Fatalf("nm_trace_events_total{kind=submit} = %+v, want > 0", m)
	}
	if f := snap.Family("nm_plan_cache_hits_total"); f == nil || len(f.Metrics) == 0 {
		t.Fatal("nm_plan_cache_hits_total family missing")
	}

	// The HTTP surface: Prometheus text and the JSON snapshot must agree
	// with the in-process view.
	get := func(path string) string {
		resp, err := http.Get("http://" + c.MetricsAddr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}
	text := get("/metrics")
	for _, want := range []string{
		"# TYPE nm_rail_frames_total counter",
		`nm_rail_frames_total{node="0",rail="0",kind="shm"}`,
		"# TYPE nm_eager_latency_seconds histogram",
		`nm_eager_latency_seconds_bucket{node="0",le=`,
		"nm_rail_state{",
		"nm_rail_transitions_total{",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text[:min(len(text), 2000)])
		}
	}
	var remote metrics.Snapshot
	if err := json.Unmarshal([]byte(get("/metrics.json")), &remote); err != nil {
		t.Fatal(err)
	}
	if m := remote.Find("nm_eager_latency_seconds", metrics.L("node", "0")...); m == nil || m.Count == 0 {
		t.Fatalf("/metrics.json eager histogram = %+v, want observations", m)
	}
	if out := get("/debug/pprof/cmdline"); out == "" {
		t.Fatal("pprof endpoint empty with MetricsPprof set")
	}
}
