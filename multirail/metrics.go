package multirail

import (
	"strconv"

	"repro/internal/fabric"
	"repro/internal/metrics"
	"repro/internal/railhealth"
	"repro/internal/trace"
)

// MetricsSnapshot is a point-in-time copy of every metric family the
// cluster exports (what /metrics.json serves).
type MetricsSnapshot = metrics.Snapshot

// MetricLabel selects metrics inside a snapshot (Snapshot.Find).
type MetricLabel = metrics.Label

// MetricsRegistry returns the cluster's metric registry, for embedding
// the families in an application's own exporter.
func (c *Cluster) MetricsRegistry() *metrics.Registry { return c.metricsReg }

// MetricsSnapshot returns a snapshot of every family — engine counters,
// latency histograms, plan cache, telemetry fits, rail health and
// traffic, trace event counts. cmd/nmbench embeds it in BENCH_*.json.
func (c *Cluster) MetricsSnapshot() MetricsSnapshot { return c.metricsReg.Snapshot() }

// MetricsAddr returns the bound address of the metrics exporter, or ""
// when Config.MetricsAddr was unset. With a ":0" config value this is
// how the chosen port is discovered.
func (c *Cluster) MetricsAddr() string {
	if c.metricsSrv == nil {
		return ""
	}
	return c.metricsSrv.Addr()
}

// TraceCounts returns how many trace events of one kind the cluster's
// engines have emitted (counted even with no Config.Tracer installed).
func (c *Cluster) TraceCounts(k trace.Kind) uint64 { return c.traceCounts.Of(k) }

// Flight returns the cluster's always-on flight recorder: the last few
// thousand trace events of every hosted engine in a lock-free ring,
// with the anomaly dumps the engines captured (rail down, unit replay,
// shm ring stall). The metrics exporter serves it at /trace/ring.json
// and /trace/perfetto; this accessor is the in-process view.
func (c *Cluster) Flight() *FlightRecorder { return c.flight }

// railStateNames maps fabric.RailState to the metric label values of the
// nm_rail_transitions_total family.
var railStateNames = map[fabric.RailState]string{
	fabric.RailUp:      "up",
	fabric.RailSuspect: "suspect",
	fabric.RailDown:    "down",
}

// healthTracker resolves the railhealth tracker owning one (node, rail)
// and the rail's index inside it. On single-substrate fabrics this is
// the node's tracker itself; on the mixed fabric each sub-fabric keeps
// its own tracker and the global rail index is offset (shm rails come
// first). Returns nil for fabrics without a railhealth-backed surface.
func (c *Cluster) healthTracker(node, rail int) (*railhealth.Tracker, int) {
	if c.shmFab != nil && c.tcpFab != nil { // mixed: split by rail range
		if n := c.shmFab.NumRails(); rail < n {
			t, _ := c.shmFab.Node(node).Health().(*railhealth.Tracker)
			return t, rail
		} else {
			t, _ := c.tcpFab.Node(node).Health().(*railhealth.Tracker)
			return t, rail - n
		}
	}
	t, _ := c.fab.Node(node).Health().(*railhealth.Tracker)
	return t, rail
}

// initClusterMetrics registers the cluster-level families for one hosted
// node: per-rail traffic and health, plus (once) the per-kind trace
// event counts. Everything is a func instrument over state the fabrics
// already maintain — scraping reads it, the data paths never see it.
func (c *Cluster) initClusterMetrics(node int) {
	reg := c.metricsReg
	nodeL := strconv.Itoa(node)
	n := c.fab.Node(node)

	for r := 0; r < n.NumRails(); r++ {
		r := r
		rail := n.Rail(r)
		lbl := metrics.L("node", nodeL, "rail", strconv.Itoa(r), "kind", c.kinds[r])
		reg.CounterFunc("nm_rail_frames_total",
			"Wire frames the rail carried.",
			func() uint64 { return rail.Stats().Messages }, lbl...)
		reg.CounterFunc("nm_rail_bytes_total",
			"Wire bytes the rail carried.",
			func() uint64 { return rail.Stats().Bytes }, lbl...)
		reg.CounterFunc("nm_rail_reconnects_total",
			"Link re-establishments (live TCP rails; 0 elsewhere).",
			func() uint64 { return rail.Stats().Reconnects }, lbl...)
		reg.CounterFunc("nm_rail_ring_stalls_total",
			"Ring-full backpressure episodes (shm rails; 0 elsewhere).",
			func() uint64 { return rail.Stats().Stalls }, lbl...)

		stateLbl := metrics.L("node", nodeL, "rail", strconv.Itoa(r))
		health := n.Health()
		reg.GaugeFunc("nm_rail_state",
			"Current rail health: 0 up, 1 suspect, 2 down.",
			func() float64 { return float64(health.State(r)) }, stateLbl...)
		if tracker, local := c.healthTracker(node, r); tracker != nil {
			for st, name := range railStateNames {
				st := st
				reg.CounterFunc("nm_rail_transitions_total",
					"Times the rail entered a health state (initial Up excluded).",
					func() uint64 { return tracker.Transitions(local, st) },
					metrics.L("node", nodeL, "rail", strconv.Itoa(r), "state", name)...)
			}
		}
	}
}

// initTraceMetrics registers the process-wide per-kind trace event
// counts (the Counts tracer is shared by every hosted engine) and the
// flight recorder's own health counters.
func (c *Cluster) initTraceMetrics() {
	for _, k := range trace.Kinds() {
		k := k
		c.metricsReg.CounterFunc("nm_trace_events_total",
			"Engine timeline events by kind, across hosted nodes.",
			func() uint64 { return c.traceCounts.Of(k) },
			metrics.L("kind", k.String())...)
	}
	c.metricsReg.CounterFunc("nm_flight_events_total",
		"Events the flight recorder has seen (ring wrap included).",
		c.flight.TotalRecorded)
	c.metricsReg.CounterFunc("nm_flight_overwritten_total",
		"Flight-recorder events lost to ring wrap.",
		c.flight.Overwritten)
	c.metricsReg.CounterFunc("nm_flight_anomalies_total",
		"Anomaly dumps noted (rail down, unit replay, ring stall).",
		c.flight.AnomalyTotal)
}
