package multirail_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/multirail"
)

// sendOne moves one n-byte message node 0 -> node 1 and waits for both
// local and remote completion, so every transfer unit has produced its
// telemetry observation before the caller inspects plans.
func sendOne(t *testing.T, c *multirail.Cluster, tag uint32, n int) {
	t.Helper()
	payload := make([]byte, n)
	buf := make([]byte, n)
	c.Go("adaptive-send", func(ctx multirail.Ctx) {
		rr := c.Node(1).Irecv(0, tag, buf)
		sr := c.Node(0).Isend(1, tag, payload)
		if _, err := rr.Wait(ctx); err != nil {
			panic(fmt.Sprintf("adaptive send: %v", err))
		}
		sr.RemoteDone().Wait(ctx)
	})
	c.Run()
}

// railShare returns the fraction of plan bytes placed on `rail`.
func railShare(chunks []multirail.Chunk, rail int) float64 {
	total, on := 0, 0
	for _, c := range chunks {
		total += c.Size
		if c.Rail == rail {
			on += c.Size
		}
	}
	if total == 0 {
		return 0
	}
	return float64(on) / float64(total)
}

// driveUntilShare sends size-byte messages until the current plan's
// share of `rail` satisfies ok(), failing the test after maxSends.
// It returns the number of sends it took.
func driveUntilShare(t *testing.T, c *multirail.Cluster, rail, size, maxSends int,
	ok func(float64) bool, what string) int {
	t.Helper()
	var share float64
	for i := 1; i <= maxSends; i++ {
		sendOne(t, c, uint32(0x5A00+i), size)
		share = railShare(c.PlanFor(0, 1, size), rail)
		if ok(share) {
			return i
		}
	}
	t.Fatalf("%s: rail %d share still %.2f after %d transfers (plan %s)",
		what, rail, share, maxSends, c.DescribePlan(0, 1, size))
	return 0
}

// TestAdaptiveReplansOffThrottledRailSim is the deterministic feedback
// regression: with one of three rails artificially slowed 10x, the
// drift detector must re-fit that rail's cost model from live
// observations and new plans must migrate off it — without any health
// transition or restart — then return once the rail recovers.
func TestAdaptiveReplansOffThrottledRailSim(t *testing.T) {
	c, err := multirail.New(multirail.Config{
		Rails:             []*multirail.Profile{multirail.GigE(), multirail.GigE(), multirail.GigE()},
		AdaptiveTelemetry: true,
		// The half-life is measured on the cluster clock, which in
		// simulation advances only by modeled transfer time (~5ms per
		// 1MB message here): 25ms keeps throttle-era observations from
		// outliving the recovery phase. Probing every 6th plan bounds
		// how long a throttle-era mode verdict or starved-rail estimate
		// can persist within this test's transfer budget.
		TelemetryHalfLife:   25 * time.Millisecond,
		TelemetryProbeEvery: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const size = 1 << 20
	// Warm the live estimates up: with three equal rails the plan
	// should stripe roughly evenly.
	for i := 0; i < 8; i++ {
		sendOne(t, c, uint32(0x5100+i), size)
	}
	if share := railShare(c.PlanFor(0, 1, size), 0); share < 0.2 || share > 0.5 {
		t.Fatalf("warm 3-equal-rail plan gives rail 0 share %.2f, want about 1/3 (%s)",
			share, c.DescribePlan(0, 1, size))
	}

	// Congest rail 0: 10x slower, still Up.
	c.ThrottleRail(0, 10)
	migrated := driveUntilShare(t, c, 0, size, 40,
		func(s float64) bool { return s < 0.15 }, "after 10x throttle")
	t.Logf("plans migrated off the throttled rail after %d transfers", migrated)
	if states := c.RailStates(0); states[0] != multirail.RailUp {
		t.Fatalf("throttled rail should stay Up, is %v", states[0])
	}

	// Recovery: the rail speeds back up; its (small) plan share and the
	// periodic iso probes keep feeding observations, so the estimates
	// re-fit and the plans return.
	c.ThrottleRail(0, 1)
	recovered := driveUntilShare(t, c, 0, size, 60,
		func(s float64) bool { return s > 0.22 }, "after recovery")
	t.Logf("plans returned to the recovered rail after %d transfers", recovered)

	st := c.EngineStats(0)
	if st.TelemetryObs == 0 || st.TelemetryRefits == 0 {
		t.Fatalf("telemetry saw obs=%d refits=%d, want both > 0", st.TelemetryObs, st.TelemetryRefits)
	}
}

// TestAdaptiveReplansOffThrottledRailTCP runs the feedback loop over
// real TCP rails on the wall clock: the throttle stretches actual
// socket writes, the telemetry measures them, and the striping plans
// migrate off the slow rail, then return after it recovers. The mode
// dimension of the chooser is pinned (both arms hetero-split) because
// on loopback single-rail can legitimately win — all rails share the
// kernel's loopback path — which would hide the rail-avoidance signal
// this test is about.
func TestAdaptiveReplansOffThrottledRailTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock adaptive loop")
	}
	if runtime.GOMAXPROCS(0) > runtime.NumCPU() {
		// Oversubscribed schedulers make goroutine queueing dominate the
		// measured wall-clock durations, drowning the 10x throttle
		// signal this test watches for. The sim leg covers the feedback
		// loop deterministically on any configuration.
		t.Skip("GOMAXPROCS exceeds physical CPUs: wall-clock telemetry too noisy")
	}
	c, err := multirail.New(multirail.Config{
		Live:              true,
		TCPRails:          3,
		SamplingMax:       256 << 10,
		AdaptiveTelemetry: true,
		TelemetryHalfLife: 100 * time.Millisecond,
		// Probe aggressively: after migration the throttled rail sees
		// almost no traffic, so probes are what lets its recovery be
		// noticed within a bounded number of transfers.
		TelemetryProbeEvery: 4,
		Splitter:            multirail.AdaptiveSplitter(multirail.HeteroSplit(), multirail.HeteroSplit()),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const size = 512 << 10
	for i := 0; i < 8; i++ {
		sendOne(t, c, uint32(0x5200+i), size)
	}

	c.ThrottleRail(0, 10)
	migrated := driveUntilShare(t, c, 0, size, 80,
		func(s float64) bool { return s < 0.18 }, "after 10x throttle (tcp)")
	t.Logf("tcp: plans migrated off the throttled rail after %d transfers", migrated)
	if states := c.RailStates(0); states[0] != multirail.RailUp {
		t.Fatalf("throttled rail should stay Up, is %v", states[0])
	}
	// Let the throttled state settle so the recovery baseline is stable.
	for i := 0; i < 10; i++ {
		sendOne(t, c, uint32(0x5260+i), size)
	}
	estAt := c.LiveEstimate(0, 1, 0, size)
	bytesAt := c.RailStats(0)[0].Bytes

	// Recovery. Loopback rails share one kernel path, so raw per-rail
	// measurements under striping are correlated; the telemetry
	// observer's overlap-aware contention attribution (PathGroup)
	// subtracts the time a transfer spent overlapping its group-mates,
	// which is what lets these bounds be tighter than the plain
	// wall-clock noise would allow: the recovered rail must win back a
	// real plan share (not just a token probe) while its estimate
	// clearly improves from the throttled level. The sim leg asserts
	// the exact 1/3 return.
	c.ThrottleRail(0, 1)
	recovered := 0
	streak := 0
	for i := 1; i <= 120; i++ {
		sendOne(t, c, uint32(0x5280+i), size)
		if c.LiveEstimate(0, 1, 0, size) < estAt*7/10 {
			// The probes alone collapsed the estimate decisively.
			recovered = i
			break
		}
		if c.LiveEstimate(0, 1, 0, size) < estAt*9/10 &&
			railShare(c.PlanFor(0, 1, size), 0) >= 0.08 {
			// Or the plans are already striping real bytes back onto it
			// while the estimate improves.
			streak++
			if streak >= 3 {
				recovered = i
				break
			}
		} else {
			streak = 0
		}
	}
	if recovered == 0 {
		t.Fatalf("rail 0 never recovered: estimate %v (was %v at unthrottle), plan %s",
			c.LiveEstimate(0, 1, 0, size), estAt, c.DescribePlan(0, 1, size))
	}
	if moved := c.RailStats(0)[0].Bytes - bytesAt; moved < 256<<10 {
		t.Fatalf("rail 0 moved only %d fresh bytes through recovery", moved)
	}
	t.Logf("tcp: rail 0 re-adopted after %d transfers (estimate %v -> %v, plan %s)",
		recovered, estAt, c.LiveEstimate(0, 1, 0, size), c.DescribePlan(0, 1, size))

	if err := c.Err(); err != nil {
		t.Fatalf("fabric error during throttled run: %v", err)
	}
}

// TestPlanCacheHitsOnRepeatedSizes is the hot-plan-cache acceptance
// check: a repeated same-size workload must hit the cache (skipping
// re-planning) more often than it misses once estimates settle.
func TestPlanCacheHitsOnRepeatedSizes(t *testing.T) {
	c, err := multirail.New(multirail.Config{AdaptiveTelemetry: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const size = 1 << 20
	for i := 0; i < 30; i++ {
		sendOne(t, c, uint32(0x5300+i), size)
	}
	st := c.EngineStats(0)
	if st.PlanHits == 0 {
		t.Fatalf("plan cache never hit on a repeated-size workload: %d misses, %d entries",
			st.PlanMisses, st.PlanEntries)
	}
	if st.PlanMisses == 0 {
		t.Fatal("plan cache never missed — planning cannot have happened at all")
	}
	t.Logf("plan cache: %d hits / %d misses, %d entries, %d refits",
		st.PlanHits, st.PlanMisses, st.PlanEntries, st.TelemetryRefits)
}

// TestTelemetryOffByDefault guards the paper's figures: without
// AdaptiveTelemetry nothing may be observed, cached or re-fit — the
// static sampling tables alone drive every decision.
func TestTelemetryOffByDefault(t *testing.T) {
	c, err := multirail.New(multirail.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sendOne(t, c, 0x5400, 1<<20)
	st := c.EngineStats(0)
	if st.TelemetryObs != 0 || st.PlanHits+st.PlanMisses != 0 || st.TelemetryRefits != 0 {
		t.Fatalf("telemetry active by default: %+v", st)
	}
}
