package multirail_test

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/multirail"
)

// TestAdaptiveRoutesSmallMessagesOntoShmRail is the heterogeneous-rail
// acceptance check: on a 3-node cluster with 1 shm rail and 2 TCP rails
// and the adaptive loop on, small intra-host messages must concentrate
// on the shared-memory rail — its ring round trip is microseconds while
// loopback TCP pays syscalls both ways, and both the sampled priors and
// the live estimates must see that.
func TestAdaptiveRoutesSmallMessagesOntoShmRail(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock adaptive routing")
	}
	if runtime.GOMAXPROCS(0) > runtime.NumCPU() {
		// An oversubscribed scheduler drowns the µs-class ring latency
		// in goroutine queueing (same guard as the adaptive TCP test).
		t.Skip("GOMAXPROCS exceeds physical CPUs: wall-clock telemetry too noisy")
	}
	c, err := multirail.New(multirail.Config{
		Live:              true,
		Nodes:             3,
		ShmRails:          1,
		TCPRails:          2,
		SamplingMax:       256 << 10,
		AdaptiveTelemetry: true,
		// Probe aggressively: even when a noisy start-up sample or a
		// large-transfer-extrapolated fit starts out disliking the shm
		// rail, the eager rail probes keep measuring it at small sizes
		// and the estimates converge to its real µs-class latency.
		TelemetryProbeEvery: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.RailKind(0) != "shm" || c.RailKind(1) != "tcp" || c.RailKind(2) != "tcp" {
		t.Fatalf("rail kinds %s/%s/%s, want shm/tcp/tcp", c.RailKind(0), c.RailKind(1), c.RailKind(2))
	}

	// Warm the live estimators with striped rendezvous traffic first:
	// chunk acks measure every rail, so even a rail whose start-up
	// sample came out noisy (the eager path alone never explores a rail
	// its prior dislikes) gets measured before small messages route by
	// those estimates.
	for i := 0; i < 8; i++ {
		sendOne(t, c, uint32(0x7000+i), 256<<10)
	}

	// Convergence phase, unasserted: small traffic plus the eager rail
	// probes drive the per-rail small-size estimates to their real
	// values — how many sends that takes depends on where the estimates
	// started (chunk-era extrapolations can favour either kind).
	const size = 2 << 10
	for i := 0; i < 60; i++ {
		sendOne(t, c, uint32(0x7100+i), size)
	}

	// Measured phase: once converged, small intra-host traffic must
	// concentrate on the shm rail.
	base := c.RailStats(0)
	const sends = 30
	for i := 0; i < sends; i++ {
		sendOne(t, c, uint32(0x7180+i), size)
	}

	stats := c.RailStats(0)
	delta := func(r int) uint64 { return stats[r].Messages - base[r].Messages }
	t.Logf("small-message traffic: shm=%d msgs, tcp0=%d, tcp1=%d (plan for %dB: %s)",
		delta(0), delta(1), delta(2), size, c.DescribePlan(0, 1, size))
	for r := 1; r < 3; r++ {
		if delta(0) <= delta(r) {
			t.Fatalf("shm rail carried %d messages, tcp rail %d carried %d — small intra-host traffic not routed onto shm",
				delta(0), r, delta(r))
		}
	}
	// The live estimates must agree with where the bytes went.
	shmEst := c.LiveEstimate(0, 1, 0, size)
	for r := 1; r < 3; r++ {
		if tcpEst := c.LiveEstimate(0, 1, r, size); shmEst >= tcpEst {
			t.Fatalf("live estimate ranks shm (%v) at or above tcp rail %d (%v) for %dB",
				shmEst, r, tcpEst, size)
		}
	}
	if err := c.Err(); err != nil {
		t.Fatalf("fabric error: %v", err)
	}
}

// thresholdSampling writes a deterministic sampling file for two rails
// whose rendezvous thresholds differ by 4x: rail 0 crosses over at
// ~4 KiB, rail 1 at ~16 KiB. The eager curve is ~1 ns/B on both; the
// rendezvous curve is flat at the crossover cost.
func thresholdSampling() *strings.Reader {
	var b strings.Builder
	b.WriteString("# nmad-go sampling v1\n")
	for rail, cross := range []int{4096, 16384} {
		fmt.Fprintf(&b, "rail %d thr-test eagermax 32768\n", rail)
		fmt.Fprintf(&b, "eager 4 4\neager 32768 32768\n")
		fmt.Fprintf(&b, "rdv 4 %d\nrdv 32768 %d\n", cross, cross)
	}
	return strings.NewReader(b.String())
}

// protocolDelta sends one n-byte message 0 -> 1 and reports how many
// eager sends and rendezvous the engine of node 0 added for it.
func protocolDelta(t *testing.T, c *multirail.Cluster, tag uint32, n int) (eager, rdv uint64) {
	t.Helper()
	before := c.EngineStats(0)
	sendOne(t, c, tag, n)
	after := c.EngineStats(0)
	return after.EagerSent - before.EagerSent, after.RdvSent - before.RdvSent
}

// TestEagerThresholdIgnoresDownRails is the regression test for the
// health-blind threshold: with rail 1 (threshold 16 KiB) hot-unplugged,
// an 8 KiB message must follow the surviving rail 0's 4 KiB threshold
// and take the rendezvous path — the dead rail's profile must not keep
// forcing the eager protocol it would have preferred. Run on both the
// modeled and the TCP fabric from one deterministic sampling file.
func TestEagerThresholdIgnoresDownRails(t *testing.T) {
	fabrics := []struct {
		name string
		cfg  func() multirail.Config
	}{
		{"sim", func() multirail.Config {
			return multirail.Config{SamplingFrom: thresholdSampling()}
		}},
		{"tcp", func() multirail.Config {
			return multirail.Config{Live: true, TCPRails: 2, SamplingFrom: thresholdSampling()}
		}},
	}
	for _, fab := range fabrics {
		t.Run(fab.name, func(t *testing.T) {
			c, err := multirail.New(fab.cfg())
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			const size = 8 << 10 // between rail 0's and rail 1's threshold
			if thr := c.EagerThreshold(0, 1); thr < size {
				t.Fatalf("both rails up: threshold %d should admit %d eagerly", thr, size)
			}
			if eager, rdv := protocolDelta(t, c, 0x7200, size); eager != 1 || rdv != 0 {
				t.Fatalf("both rails up: %dB went eager=%d rdv=%d, want 1/0", size, eager, rdv)
			}

			c.DisableRail(1)
			if thr := c.EagerThreshold(0, 1); thr >= size {
				t.Fatalf("rail 1 down: threshold %d still admits %d — the dead rail's profile is deciding", thr, size)
			}
			if eager, rdv := protocolDelta(t, c, 0x7201, size); eager != 0 || rdv != 1 {
				t.Fatalf("rail 1 down: %dB went eager=%d rdv=%d, want 0/1 (surviving rail's threshold)", size, eager, rdv)
			}

			// Replug: the higher threshold governs again.
			c.EnableRail(1)
			if eager, rdv := protocolDelta(t, c, 0x7202, size); eager != 1 || rdv != 0 {
				t.Fatalf("rail 1 replugged: %dB went eager=%d rdv=%d, want 1/0", size, eager, rdv)
			}
		})
	}
}

// TestTelemetryDerivedThresholdTracksWire covers the adaptive half of
// the threshold fix: under AdaptiveTelemetry the eager/rendezvous
// crossover is re-derived per (peer, rail) from the live regime fits.
// When every rail's transfer cost is stretched 10x (congestion) while
// the handshake stays fixed, the crossover must fall — rendezvous
// amortises its handshake much earlier on a slow wire — and the engine
// must start handshaking for sizes it previously sent eagerly. The
// simulator's deterministic costs make the drift exact.
func TestTelemetryDerivedThresholdTracksWire(t *testing.T) {
	c, err := multirail.New(multirail.Config{
		// One rail: the derived threshold is the max over usable rails,
		// and a rail the eager traffic never picks would keep its cold
		// (static) crossover in that max — a second rail would mask the
		// drift this test is about, not cause it.
		Rails:             []*multirail.Profile{multirail.GigE()},
		AdaptiveTelemetry: true,
		// Long half-life: this test drives few transfers and virtual
		// time barely advances; nothing should decay away mid-test.
		TelemetryHalfLife: 10 * time.Second,
		// Pin the rendezvous mode to single-rail so every rendezvous is
		// attributable to one rail and feeds the rdv regime plane.
		Splitter: multirail.SingleRail(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	static := c.EagerThreshold(0, 1)
	if static == 0 {
		t.Fatal("sampled threshold is zero — the test needs an eager regime")
	}
	// Two sizes per regime, in distinct size classes, so the planes fit
	// genuine slopes instead of level-shifting around one point.
	eagerSizes := []int{static / 8, static / 2}
	rdvSizes := []int{2 * static, 8 * static}
	t.Logf("static threshold %d; driving eager at %v, rendezvous at %v", static, eagerSizes, rdvSizes)

	drive := func(base uint32, rounds int) {
		for i := 0; i < rounds; i++ {
			for j, n := range eagerSizes {
				sendOne(t, c, base+uint32(i*4+j), n)
			}
			for j, n := range rdvSizes {
				sendOne(t, c, base+uint32(i*4+2+j), n)
			}
		}
	}
	// Warm both regime planes at the unthrottled costs.
	drive(0x7300, 12)
	warm := c.EagerThreshold(0, 1)
	if warm < static/4 || warm > static*4 {
		t.Fatalf("warm threshold %d drifted far from static %d under unchanged conditions", warm, static)
	}

	// Congest the rail 10x: transfer terms stretch, handshakes do not.
	// The long phase lets throttled observations dominate the decayed
	// cells (virtual time advances too little for the half-life to
	// retire the warm era).
	c.ThrottleRail(0, 10)
	drive(0x7380, 48)
	throttled := c.EagerThreshold(0, 1)
	t.Logf("threshold: static %d, warm %d, throttled %d", static, warm, throttled)
	if throttled >= warm {
		t.Fatalf("10x-throttled threshold %d did not fall below warm %d — the frozen table is still deciding", throttled, warm)
	}
	if throttled > warm/2 {
		t.Fatalf("throttled threshold %d fell only marginally from %d", throttled, warm)
	}
	// Protocol proof: a size the warm threshold sent eagerly now
	// handshakes when the derived threshold excludes it.
	probe := (throttled + warm) / 2
	if eager, rdv := protocolDelta(t, c, 0x7500, probe); rdv != 1 || eager != 0 {
		t.Fatalf("%dB after congestion went eager=%d rdv=%d, want rendezvous (derived threshold %d)",
			probe, eager, rdv, throttled)
	}
}

// heteroEagerSampling crafts two rails where the overall eager decision
// admits 8 KiB (rail 1's threshold is ~30 KiB) but rail 0's own eager
// limit is 4 KiB — and rail 0 nonetheless has the lowest 8 KiB estimate
// (via its rendezvous curve), so a limit-blind argmin would pick it.
func heteroEagerSampling() *strings.Reader {
	var b strings.Builder
	b.WriteString("# nmad-go sampling v1\n")
	b.WriteString("rail 0 small-pio eagermax 4096\n")
	b.WriteString("eager 4 4\neager 4096 4096\n")
	b.WriteString("rdv 4 10000\nrdv 4096 10000\n")
	b.WriteString("rail 1 big-pio eagermax 32768\n")
	b.WriteString("eager 4 8\neager 32768 65536\n")
	b.WriteString("rdv 4 60000\nrdv 32768 60000\n")
	return strings.NewReader(b.String())
}

// TestEagerRailRespectsPerRailEagerMax: on a heterogeneous rail set the
// flush threshold is the max over usable rails, so a payload can be
// eager-eligible overall yet oversized for an individual rail's PIO
// regime. The rail pick must exclude rails whose EagerMax the payload
// exceeds, even when their estimate is lowest.
func TestEagerRailRespectsPerRailEagerMax(t *testing.T) {
	c, err := multirail.New(multirail.Config{SamplingFrom: heteroEagerSampling()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const size = 8 << 10 // above rail 0's EagerMax, below rail 1's threshold
	if eager, rdv := protocolDelta(t, c, 0x7600, size); eager != 1 || rdv != 0 {
		t.Fatalf("%dB went eager=%d rdv=%d, want the eager path", size, eager, rdv)
	}
	stats := c.RailStats(0)
	if stats[0].Messages != 0 {
		t.Fatalf("rail 0 (EagerMax 4096) carried %d messages of an %dB eager send", stats[0].Messages, size)
	}
	if stats[1].Messages == 0 || stats[1].Bytes < size {
		t.Fatalf("rail 1 should have carried the container: %+v", stats[1])
	}
}
