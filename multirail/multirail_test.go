package multirail_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/multirail"
)

func TestDefaultsArePaperTestbed(t *testing.T) {
	c, err := multirail.New(multirail.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Nodes() != 2 || c.Rails() != 2 {
		t.Fatalf("%d nodes, %d rails", c.Nodes(), c.Rails())
	}
	// Thresholds derived from sampling must be positive and below the
	// 32KB eager cap.
	for r := 0; r < c.Rails(); r++ {
		thr := c.Threshold(r)
		if thr <= 0 || thr > 32<<10 {
			t.Fatalf("rail %d threshold %d", r, thr)
		}
	}
}

func TestQuickstartFlow(t *testing.T) {
	c, err := multirail.New(multirail.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	payload := make([]byte, 1<<20)
	rand.New(rand.NewSource(1)).Read(payload)
	buf := make([]byte, len(payload))
	var n int
	c.Go("app", func(ctx multirail.Ctx) {
		recv := c.Node(1).Irecv(0, 42, buf)
		c.Node(0).Isend(1, 42, payload)
		n, _ = recv.Wait(ctx)
	})
	c.Run()
	if n != len(payload) || !bytes.Equal(buf, payload) {
		t.Fatal("quickstart transfer failed")
	}
	st := c.EngineStats(0)
	if st.RdvSent != 1 {
		t.Fatalf("1MB should use rendezvous: %+v", st)
	}
	if rs := c.RailStats(0)[0]; rs.Bytes == 0 {
		t.Fatal("rail 0 carried nothing: hetero-split should use both rails")
	}
	if rs := c.RailStats(0)[1]; rs.Bytes == 0 {
		t.Fatal("rail 1 carried nothing: hetero-split should use both rails")
	}
}

func TestBlockingConvenienceAPI(t *testing.T) {
	c, err := multirail.New(multirail.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var got string
	c.Go("sender", func(ctx multirail.Ctx) {
		c.Node(0).Send(ctx, 1, 1, []byte("ping"))
	})
	c.Go("receiver", func(ctx multirail.Ctx) {
		buf := make([]byte, 8)
		n, err := c.Node(1).Recv(ctx, 0, 1, buf)
		if err != nil {
			t.Error(err)
		}
		got = string(buf[:n])
	})
	c.Run()
	if got != "ping" {
		t.Fatalf("got %q", got)
	}
}

func TestFourNodesThreeRails(t *testing.T) {
	c, err := multirail.New(multirail.Config{
		Nodes: 4,
		Rails: []*multirail.Profile{multirail.Myri10G(), multirail.QsNetII(), multirail.IBVerbs()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Ring exchange: i sends 64KB to (i+1)%4.
	n := 64 << 10
	ok := make([]bool, 4)
	for i := 0; i < 4; i++ {
		i := i
		c.Go("node", func(ctx multirail.Ctx) {
			buf := make([]byte, n)
			prev := (i + 3) % 4
			rr := c.Node(i).Irecv(prev, 1, buf)
			c.Node(i).Isend((i+1)%4, 1, make([]byte, n))
			got, err := rr.Wait(ctx)
			ok[i] = got == n && err == nil
		})
	}
	c.Run()
	for i, v := range ok {
		if !v {
			t.Fatalf("node %d ring exchange failed", i)
		}
	}
}

func TestSamplingSaveAndReload(t *testing.T) {
	c, err := multirail.New(multirail.Config{SamplingMax: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.SaveSampling(&buf); err != nil {
		t.Fatal(err)
	}
	c.Close()
	saved := buf.String()
	if !strings.Contains(saved, "Myri-10G") {
		t.Fatal("sampling file missing rail name")
	}
	c2, err := multirail.New(multirail.Config{SamplingFrom: strings.NewReader(saved)})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Estimate(0, 4096) != c.Estimate(0, 4096) {
		t.Fatal("reloaded sampling differs")
	}
}

func TestSamplingFileRailCountMismatch(t *testing.T) {
	c, err := multirail.New(multirail.Config{SamplingMax: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	c.SaveSampling(&buf)
	c.Close()
	_, err = multirail.New(multirail.Config{
		Rails:        []*multirail.Profile{multirail.Myri10G()},
		SamplingFrom: &buf,
	})
	if err == nil {
		t.Fatal("rail-count mismatch accepted")
	}
}

func TestLiveClusterRuns(t *testing.T) {
	c, err := multirail.New(multirail.Config{Live: true, CoresPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("wall-clock bytes")
	var got []byte
	c.Go("app", func(ctx multirail.Ctx) {
		buf := make([]byte, 64)
		rr := c.Node(1).Irecv(0, 9, buf)
		c.Node(0).Isend(1, 9, payload)
		n, err := rr.Wait(ctx)
		if err != nil {
			t.Error(err)
		}
		got = append([]byte(nil), buf[:n]...)
	})
	done := make(chan struct{})
	go func() { c.Run(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("live run timed out")
	}
	c.Close()
	if string(got) != string(payload) {
		t.Fatalf("got %q", got)
	}
}

func TestIsoSplitterConfigurable(t *testing.T) {
	run := func(s multirail.Splitter) time.Duration {
		c, err := multirail.New(multirail.Config{Splitter: s})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		var done time.Duration
		c.Go("app", func(ctx multirail.Ctx) {
			buf := make([]byte, 4<<20)
			rr := c.Node(1).Irecv(0, 1, buf)
			c.Node(0).Isend(1, 1, make([]byte, 4<<20))
			rr.Wait(ctx)
			done = c.Now()
		})
		c.Run()
		return done
	}
	if hetero, iso := run(multirail.HeteroSplit()), run(multirail.IsoSplit()); hetero >= iso {
		t.Fatalf("hetero %v not faster than iso %v", hetero, iso)
	}
}

func TestDeterministicSimulation(t *testing.T) {
	run := func() time.Duration {
		c, err := multirail.New(multirail.Config{})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		var done time.Duration
		c.Go("app", func(ctx multirail.Ctx) {
			for i := 0; i < 5; i++ {
				buf := make([]byte, 128<<10)
				rr := c.Node(1).Irecv(0, uint32(i), buf)
				c.Node(0).Isend(1, uint32(i), make([]byte, 128<<10))
				rr.Wait(ctx)
			}
			done = c.Now()
		})
		c.Run()
		return done
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("simulation not deterministic: %v vs %v", a, b)
	}
}

func TestIsendVGatherVector(t *testing.T) {
	c, err := multirail.New(multirail.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	v := multirail.IOVec{[]byte("multi"), nil, []byte("rail"), []byte("!")}
	var got []byte
	c.Go("app", func(ctx multirail.Ctx) {
		buf := make([]byte, 32)
		rr := c.Node(1).Irecv(0, 3, buf)
		c.Node(0).IsendV(1, 3, v)
		n, err := rr.Wait(ctx)
		if err != nil {
			t.Error(err)
		}
		got = append([]byte(nil), buf[:n]...)
	})
	c.Run()
	if string(got) != "multirail!" {
		t.Fatalf("got %q", got)
	}
}

func TestIsendVSingleSegmentAndEmpty(t *testing.T) {
	c, err := multirail.New(multirail.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var n1, n2 int
	c.Go("app", func(ctx multirail.Ctx) {
		b1 := make([]byte, 8)
		r1 := c.Node(1).Irecv(0, 1, b1)
		c.Node(0).IsendV(1, 1, multirail.IOVec{[]byte("solo")})
		n1, _ = r1.Wait(ctx)
		r2 := c.Node(1).Irecv(0, 2, nil)
		c.Node(0).IsendV(1, 2, nil)
		n2, _ = r2.Wait(ctx)
	})
	c.Run()
	if n1 != 4 || n2 != 0 {
		t.Fatalf("lengths %d/%d", n1, n2)
	}
}

func TestTracerThroughPublicAPI(t *testing.T) {
	col := multirail.NewTraceCollector()
	c, err := multirail.New(multirail.Config{Tracer: col})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Go("app", func(ctx multirail.Ctx) {
		buf := make([]byte, 4<<20)
		rr := c.Node(1).Irecv(0, 1, buf)
		c.Node(0).Isend(1, 1, make([]byte, 4<<20))
		rr.Wait(ctx)
	})
	c.Run()
	if col.Len() == 0 {
		t.Fatal("no trace events through the public API")
	}
	var b strings.Builder
	col.Dump(&b)
	for _, want := range []string{"submit", "rts", "cts", "chunk", "delivered"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("trace dump missing %q", want)
		}
	}
}

// Planned hot-unplug through the public API: DisableRail takes the rail
// out of every strategy decision (it carries nothing), OnRailDown fires
// for every hosted node, and EnableRail brings the rail back into the
// stripe.
func TestHotUnplugAndReplug(t *testing.T) {
	var mu sync.Mutex
	var downs []string
	c, err := multirail.New(multirail.Config{
		OnRailDown: func(node, rail int, reason string) {
			mu.Lock()
			downs = append(downs, fmt.Sprintf("n%d/r%d", node, rail))
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for node := 0; node < 2; node++ {
		for r, s := range c.RailStates(node) {
			if s != multirail.RailUp {
				t.Fatalf("node %d rail %d starts %v", node, r, s)
			}
		}
	}
	n := 4 << 20
	payload := make([]byte, n)
	rand.New(rand.NewSource(21)).Read(payload)
	buf := make([]byte, n)
	c.Go("app", func(ctx multirail.Ctx) {
		c.DisableRail(1)
		if got := c.RailStates(0)[1]; got != multirail.RailDown {
			t.Errorf("disabled rail state %v", got)
		}
		rr := c.Node(1).Irecv(0, 1, buf)
		c.Node(0).Isend(1, 1, payload)
		if got, err := rr.Wait(ctx); err != nil || got != n {
			t.Errorf("unplugged recv n=%d err=%v", got, err)
		}
		if b := c.RailStats(0)[1].Bytes; b != 0 {
			t.Errorf("disabled rail carried %d bytes", b)
		}
		c.EnableRail(1)
		if got := c.RailStates(0)[1]; got != multirail.RailUp {
			t.Errorf("re-enabled rail state %v", got)
		}
		rr = c.Node(1).Irecv(0, 2, buf)
		c.Node(0).Isend(1, 2, payload)
		if got, err := rr.Wait(ctx); err != nil || got != n {
			t.Errorf("replugged recv n=%d err=%v", got, err)
		}
	})
	c.Run()
	if !bytes.Equal(buf, payload) {
		t.Fatal("payload corrupted")
	}
	if b := c.RailStats(0)[1].Bytes; b == 0 {
		t.Fatal("re-enabled rail carried nothing; striping should resume")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(downs) != 2 {
		t.Fatalf("OnRailDown calls %v, want one per node", downs)
	}
}
