package multirail_test

import (
	"bytes"
	"testing"
	"time"

	"repro/multirail"
)

// Two Distributed clusters in one process: the full two-process protocol
// of examples/tcp2proc, in-process so it runs under -race. Regression
// coverage for two shutdown/startup races of the live multicore path:
// the peer starting to send while this side is still sampling (early
// frames must be drained into the progress workers when the delivery
// sink is installed, not stranded in RecvQ), and a process closing its
// fabric right after local completion (the sender must wait RemoteDone
// before Close — teardown can reset connections and destroy in-flight
// frames, and a dead process cannot fail over).
func TestDistributedPairInProcess(t *testing.T) {
	const (
		big   = 4 << 20
		burst = 8
	)
	addr := "127.0.0.1:9641"
	srvErr := make(chan error, 1)
	go func() {
		c, err := multirail.New(multirail.Config{
			Fabric: multirail.FabricTCP, Distributed: true, Nodes: 2,
			LocalNode: 0, ListenAddr: addr,
		})
		if err != nil {
			srvErr <- err
			return
		}
		me := c.Node(0)
		c.Go("server", func(ctx multirail.Ctx) {
			small := make([]byte, 2<<10)
			for i := 0; i < burst; i++ {
				if _, err := me.Recv(ctx, 1, 100+uint32(i), small); err != nil {
					srvErr <- err
					return
				}
			}
			buf := make([]byte, big)
			if _, err := me.Recv(ctx, 1, 7, buf); err != nil {
				srvErr <- err
				return
			}
			sr := me.Isend(1, 8, buf)
			sr.Wait(ctx)
			sr.RemoteDone().Wait(ctx) // see doc comment: exit only once the peer acked
			srvErr <- nil
		})
		c.Run()
		c.Close()
	}()

	c, err := multirail.New(multirail.Config{
		Fabric: multirail.FabricTCP, Distributed: true, Nodes: 2,
		LocalNode: 1, Peers: map[int]string{0: addr},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	me := c.Node(1)
	done := make(chan error, 1)
	got := make([]byte, big)
	payload := make([]byte, big)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	c.Go("client", func(ctx multirail.Ctx) {
		for i := 0; i < burst; i++ {
			me.Isend(0, 100+uint32(i), make([]byte, 2<<10))
		}
		me.Send(ctx, 0, 7, payload)
		_, err := me.Recv(ctx, 0, 8, got)
		done <- err
	})
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("distributed round trip hung; client stats %+v", c.EngineStats(1))
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("reply payload corrupted")
	}
	select {
	case err := <-srvErr:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("server never finished")
	}
}

// The mixed heterogeneous rail set across two Distributed clusters in
// one process: one mmap-backed shared-memory rail plus two TCP rails,
// exactly the examples/tcp2proc shape with -shm-rails 1. Covers the
// ring-file attach handshake, the distributed sampling twin for mixed
// rail sets, and cross-fabric delivery remapping under -race.
func TestDistributedMixedShmTCPPairInProcess(t *testing.T) {
	const big = 2 << 20
	addr := "127.0.0.1:9643"
	shmDir := t.TempDir()
	mkCfg := func(local int) multirail.Config {
		cfg := multirail.Config{
			Fabric: multirail.FabricTCP, Distributed: true, Nodes: 2,
			TCPRails: 2, ShmRails: 1, ShmDir: shmDir,
			LocalNode:   local,
			SamplingMax: 256 << 10,
		}
		if local == 0 {
			cfg.ListenAddr = addr
		} else {
			cfg.Peers = map[int]string{0: addr}
		}
		return cfg
	}

	srvErr := make(chan error, 1)
	go func() {
		c, err := multirail.New(mkCfg(0))
		if err != nil {
			srvErr <- err
			return
		}
		me := c.Node(0)
		c.Go("server", func(ctx multirail.Ctx) {
			buf := make([]byte, big)
			if _, err := me.Recv(ctx, 1, 7, buf); err != nil {
				srvErr <- err
				return
			}
			sr := me.Isend(1, 8, buf)
			sr.Wait(ctx)
			sr.RemoteDone().Wait(ctx)
			srvErr <- nil
		})
		c.Run()
		c.Close()
	}()

	c, err := multirail.New(mkCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.FabricKind() != "shm+tcp" || c.Rails() != 3 || c.RailKind(0) != "shm" {
		t.Fatalf("fabric %s with %d rails (rail0=%s), want shm+tcp with 3 (shm first)",
			c.FabricKind(), c.Rails(), c.RailKind(0))
	}
	me := c.Node(1)
	done := make(chan error, 1)
	payload := make([]byte, big)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	got := make([]byte, big)
	c.Go("client", func(ctx multirail.Ctx) {
		me.Send(ctx, 0, 7, payload)
		_, err := me.Recv(ctx, 0, 8, got)
		done <- err
	})
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("mixed distributed round trip hung; client stats %+v", c.EngineStats(1))
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("reply payload corrupted")
	}
	select {
	case err := <-srvErr:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("server never finished")
	}
}
