package multirail_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/multirail"
)

// Matching-order semantics under concurrency, on both fabrics: distinct
// (source, tag) pairs are independent flows. They live in separate
// engine shards and progress on separate workers, so (a) every flow's
// messages land in that flow's receives and nowhere else, and (b) a
// flow whose receiver is absent — its messages pile up unexpected —
// must not delay any other flow. Within one (source, tag) pair
// concurrent messages may overtake each other (the documented
// semantics); across pairs there is no coupling at all.
func TestDistinctFlowsCompleteIndependently(t *testing.T) {
	fabrics := []struct {
		name string
		cfg  multirail.Config
	}{
		{"sim", multirail.Config{Nodes: 3}},
		{"tcp", multirail.Config{Nodes: 3, Live: true, SamplingMax: 256 << 10, Workers: 4}},
	}
	for _, fab := range fabrics {
		t.Run(fab.name, func(t *testing.T) {
			c, err := multirail.New(fab.cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			const (
				tags    = 6
				msgs    = 8
				size    = 2 << 10
				stalled = uint32(999) // flow whose receives are posted late
			)
			// Flows: (source 0, tag t) and (source 2, tag t) for each tag,
			// all into node 1. Every message of a flow carries the flow's
			// fingerprint so cross-flow leakage is detectable regardless
			// of intra-flow ordering.
			fingerprint := func(src int, tag uint32) []byte {
				p := make([]byte, size)
				for i := range p {
					p[i] = byte(src*31 + int(tag)*7 + i&0xFF)
				}
				return p
			}
			type flow struct {
				src int
				tag uint32
			}
			var flows []flow
			for tag := uint32(0); tag < tags; tag++ {
				flows = append(flows, flow{0, tag}, flow{2, tag})
			}

			// The stalled flow sends first: its messages sit unexpected at
			// node 1 the whole time and must not block anyone.
			c.Go("stalled-send", func(ctx multirail.Ctx) {
				p := fingerprint(0, stalled)
				for i := 0; i < msgs; i++ {
					c.Node(0).Isend(1, stalled, p)
				}
			})

			errs := make(chan string, len(flows)+1)
			for _, fl := range flows {
				fl := fl
				want := fingerprint(fl.src, fl.tag)
				c.Go(fmt.Sprintf("send-%d-%d", fl.src, fl.tag), func(ctx multirail.Ctx) {
					for i := 0; i < msgs; i++ {
						c.Node(fl.src).Isend(1, fl.tag, want)
					}
				})
				c.Go(fmt.Sprintf("recv-%d-%d", fl.src, fl.tag), func(ctx multirail.Ctx) {
					buf := make([]byte, size)
					for i := 0; i < msgs; i++ {
						n, err := c.Node(1).Irecv(fl.src, fl.tag, buf).Wait(ctx)
						if err != nil || n != size {
							errs <- fmt.Sprintf("flow (%d,%d) msg %d: n=%d err=%v", fl.src, fl.tag, i, n, err)
							return
						}
						if !bytes.Equal(buf, want) {
							errs <- fmt.Sprintf("flow (%d,%d) msg %d: foreign payload leaked in", fl.src, fl.tag, i)
							return
						}
					}
				})
			}
			// Drain the stalled flow only after every other flow finished
			// (Run below joins them all); posting its receives last proves
			// unexpected-queue buildup in one shard never wedged the rest.
			c.Run()
			select {
			case msg := <-errs:
				t.Fatal(msg)
			default:
			}

			// The stalled sends are asynchronous: on the live fabric their
			// frames can still be in flight when Run returns (the other
			// flows' completion does not order them). Wait until they have
			// landed — and been counted unexpected — before posting their
			// receives, or the final assertion races the wire. In
			// simulation Run already quiesced, so this returns at once.
			deadline := time.Now().Add(10 * time.Second)
			for c.EngineStats(1).Unexpected == 0 && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}

			done := make(chan string, 1)
			c.Go("stalled-recv", func(ctx multirail.Ctx) {
				buf := make([]byte, size)
				want := fingerprint(0, stalled)
				for i := 0; i < msgs; i++ {
					n, err := c.Node(1).Irecv(0, stalled, buf).Wait(ctx)
					if err != nil || n != size || !bytes.Equal(buf, want) {
						done <- fmt.Sprintf("stalled flow msg %d: n=%d err=%v", i, n, err)
						return
					}
				}
				done <- ""
			})
			c.Run()
			select {
			case msg := <-done:
				if msg != "" {
					t.Fatal(msg)
				}
			case <-time.After(30 * time.Second):
				t.Fatal("stalled flow never drained")
			}
			if st := c.EngineStats(1); st.Unexpected == 0 {
				t.Fatalf("stalled flow never went unexpected: %+v", st)
			}
		})
	}
}

// Sequential request/wait traffic on one flow keeps FIFO matching under
// the sharded tables: message i lands in receive i on both fabrics.
func TestSequentialFlowKeepsOrder(t *testing.T) {
	fabrics := []struct {
		name string
		cfg  multirail.Config
	}{
		{"sim", multirail.Config{}},
		{"tcp", multirail.Config{Live: true, SamplingMax: 256 << 10}},
	}
	for _, fab := range fabrics {
		t.Run(fab.name, func(t *testing.T) {
			c, err := multirail.New(fab.cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			const msgs = 16
			fail := make(chan string, 1)
			c.Go("seq", func(ctx multirail.Ctx) {
				buf := make([]byte, 8)
				for i := 0; i < msgs; i++ {
					rr := c.Node(1).Irecv(0, 7, buf)
					sr := c.Node(0).Isend(1, 7, []byte(fmt.Sprintf("msg-%03d", i)))
					if _, err := rr.Wait(ctx); err != nil {
						fail <- err.Error()
						return
					}
					if got, want := string(buf[:7]), fmt.Sprintf("msg-%03d", i)[:7]; got != want {
						fail <- fmt.Sprintf("message %d: got %q", i, got)
						return
					}
					sr.Wait(ctx)
				}
				fail <- ""
			})
			c.Run()
			if msg := <-fail; msg != "" {
				t.Fatal(msg)
			}
		})
	}
}
