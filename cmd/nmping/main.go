// Nmping is a ping-pong benchmark over the multirail engine: it prints
// one-way latency and bandwidth for a size sweep under a chosen strategy.
//
// Usage:
//
//	nmping [-strategy hetero|iso|single] [-min 4] [-max 8388608]
//	       [-iters 3] [-live] [-rails 2] [-shm-rails 1] [-sampling FILE]
//	       [-metrics-addr 127.0.0.1:9141] [-metrics-hold 30s]
//
// With -live the sweep runs over the live TCP fabric: every rail is a
// real TCP connection (loopback by default) and the engine moves real
// bytes — eager aggregation below the sampled threshold, rendezvous
// striping above it. Without it the deterministic virtual-time model of
// the paper's testbed is used.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/stats"
	"repro/internal/workload"
	"repro/multirail"
)

// strategies lists the named splitters -strategy accepts. "adaptive"
// additionally turns AdaptiveTelemetry on: the named strategies become
// the candidate arms of the observed-outcome chooser.
var strategies = []struct {
	name, desc string
	splitter   func() multirail.Splitter
}{
	{"hetero", "sampling-based equal-completion split (paper Fig 1c/2)", multirail.HeteroSplit},
	{"iso", "equal chunks on every rail (Fig 1b baseline)", multirail.IsoSplit},
	{"single", "whole message on the best predicted rail (Fig 2)", multirail.SingleRail},
	{"adaptive", "live-telemetry chooser: single vs split from observed outcomes", nil},
}

func main() {
	strategyName := flag.String("strategy", "hetero", "splitter name, or 'list' to enumerate")
	minSize := flag.Int("min", 4, "smallest size")
	maxSize := flag.Int("max", 8<<20, "largest size")
	iters := flag.Int("iters", 3, "iterations per size")
	live := flag.Bool("live", false, "wall-clock execution over real TCP rails")
	rails := flag.Int("rails", 2, "TCP rail count (live mode)")
	shmRails := flag.Int("shm-rails", 0, "shared-memory rail count (live mode; rides alongside the TCP rails as a mixed heterogeneous fabric)")
	samplingFile := flag.String("sampling", "", "load sampling from file (see cmd/nmsample)")
	traceOne := flag.Bool("trace", false, "dump the engine timeline of one max-size transfer")
	showStats := flag.Bool("stats", false, "print per-shard and per-worker engine stats plus the current plan per size after the sweep")
	workers := flag.Int("workers", 0, "progression workers per node (0: one per core)")
	shards := flag.Int("shards", 0, "flow shards per node (0: 4x workers)")
	adaptive := flag.Bool("adaptive", false, "enable online telemetry: live estimates, adaptive strategy selection and the hot plan cache")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics and /metrics.json on this address (e.g. 127.0.0.1:9141; use :0 for an ephemeral port)")
	metricsHold := flag.Duration("metrics-hold", 0, "keep the process (and the metrics endpoint) alive this long after the sweep, so a scraper or nmtop can read the final state")
	flag.Parse()

	if *strategyName == "list" {
		for _, s := range strategies {
			fmt.Printf("%-10s %s\n", s.name, s.desc)
		}
		return
	}
	cfg := multirail.Config{Live: *live, TCPRails: *rails, ShmRails: *shmRails,
		Workers: *workers, Shards: *shards, AdaptiveTelemetry: *adaptive,
		MetricsAddr: *metricsAddr}
	if *shmRails > 0 {
		cfg.Live = true
	}
	var collector *multirail.TraceCollector
	if *traceOne {
		collector = multirail.NewTraceCollector()
		cfg.Tracer = collector
	}
	known := false
	for _, s := range strategies {
		if s.name == *strategyName {
			known = true
			if s.splitter != nil {
				cfg.Splitter = s.splitter()
			} else {
				cfg.AdaptiveTelemetry = true
			}
		}
	}
	if !known {
		fmt.Fprintf(os.Stderr, "unknown strategy %q (try -strategy list)\n", *strategyName)
		os.Exit(2)
	}
	if *samplingFile != "" {
		f, err := os.Open(*samplingFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		cfg.SamplingFrom = f
	}
	c, err := multirail.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer c.Close()

	fmt.Printf("# strategy=%s rails=%d fabric=%s live=%v\n", *strategyName, c.Rails(), c.FabricKind(), *live)
	if addr := c.MetricsAddr(); addr != "" {
		fmt.Printf("# metrics: http://%s/metrics (json: /metrics.json)\n", addr)
	}
	if *traceOne {
		workload.MedianOneWay(c, *maxSize, 1)
		fmt.Printf("# timeline of one %s transfer:\n", stats.SizeLabel(*maxSize))
		collector.Dump(os.Stdout)
		return
	}
	fmt.Printf("%-10s %14s %14s\n", "size", "one-way µs", "MB/s")
	for n := *minSize; n <= *maxSize; n *= 2 {
		oneway := workload.MedianOneWay(c, n, *iters)
		fmt.Printf("%-10s %14.2f %14.0f\n",
			stats.SizeLabel(n), oneway.Seconds()*1e6, workload.Bandwidth(n, oneway))
	}
	fmt.Printf("# rail traffic (node 0):\n")
	states := c.RailStates(0)
	for r, st := range c.RailStats(0) {
		fmt.Printf("#   rail %d (%s) [%s]: %d msgs, %s, busy %v\n",
			r, c.RailKind(r), states[r], st.Messages, stats.SizeLabel(int(st.Bytes)), st.BusyTime.Round(time.Microsecond))
	}
	if *showStats {
		fmt.Printf("# chosen plan per size (node 0 -> 1, current estimates):\n")
		for n := *minSize; n <= *maxSize; n *= 2 {
			fmt.Printf("#   %-10s %s\n", stats.SizeLabel(n), c.DescribePlan(0, 1, n))
		}
		for node := 0; node < c.Nodes(); node++ {
			printEngineStats(node, c.EngineStats(node))
		}
	}
	if *metricsHold > 0 {
		fmt.Printf("# holding %v for scrapers (metrics at http://%s/metrics)\n", *metricsHold, c.MetricsAddr())
		time.Sleep(*metricsHold)
	}
}

// printEngineStats dumps one node's engine counters with the per-worker
// and per-shard breakdown of the multicore progression subsystem, so
// contention (every flow piling on one shard or one worker) is
// observable in the field.
func printEngineStats(node int, st multirail.EngineStats) {
	fmt.Printf("# engine stats (node %d): eager=%d aggregated=%d parallel=%d rdv=%d chunks=%d bytes=%s unexpected=%d failedover=%d\n",
		node, st.EagerSent, st.EagerAggregated, st.EagerParallel, st.RdvSent,
		st.ChunksSent, stats.SizeLabel(int(st.BytesSent)), st.Unexpected, st.FailedOver)
	if st.TelemetryObs > 0 || st.PlanHits+st.PlanMisses > 0 {
		hitRate := 0.0
		if total := st.PlanHits + st.PlanMisses; total > 0 {
			hitRate = float64(st.PlanHits) / float64(total) * 100
		}
		fmt.Printf("#   telemetry: obs=%d refits=%d epoch=%d plan-cache hits=%d misses=%d (%.0f%% hit) entries=%d\n",
			st.TelemetryObs, st.TelemetryRefits, st.TelemetryEpoch,
			st.PlanHits, st.PlanMisses, hitRate, st.PlanEntries)
	}
	for w, ws := range st.Workers {
		fmt.Printf("#   worker %d: %d tasks, busy %v, %d queued\n",
			w, ws.Tasks, ws.BusyTime.Round(time.Microsecond), ws.Queued)
	}
	active := 0
	for s, sh := range st.Shards {
		if sh.Matched == 0 && sh.Unexpected == 0 && sh.Recvs == 0 && sh.Partials == 0 {
			continue
		}
		active++
		fmt.Printf("#   shard %d: matched=%d unexpected=%d posted-recvs=%d partials=%d\n",
			s, sh.Matched, sh.Unexpected, sh.Recvs, sh.Partials)
	}
	fmt.Printf("#   %d/%d shards active\n", active, len(st.Shards))
}
