// Nmtop is a live dashboard over a running cluster's metrics endpoint —
// top(1) for the multirail engine. Point it at a process started with
// Config.MetricsAddr (or nmping -metrics-addr) and it polls
// /metrics.json, rendering per-rail health, traffic rates, latency
// quantiles and plan-cache behaviour in place.
//
// Usage:
//
//	nmtop [-addr 127.0.0.1:9141] [-refresh 1s] [-once]
//
// -once prints a single snapshot and exits (no screen control), which is
// what scripts and the CI smoke test use.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9141", "metrics endpoint host:port (Config.MetricsAddr)")
	refresh := flag.Duration("refresh", time.Second, "poll interval")
	once := flag.Bool("once", false, "print one snapshot and exit (no screen control)")
	flag.Parse()

	url := "http://" + *addr + "/metrics.json"
	var prev *metrics.Snapshot
	var prevAt time.Time
	for {
		snap, err := fetch(url)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nmtop: %v\n", err)
			if *once {
				os.Exit(1) // scripts and CI need the failure to be loud
			}
			// Continuous mode rides out exporter restarts instead of dying.
			time.Sleep(*refresh)
			continue
		}
		now := time.Now()
		var b strings.Builder
		render(&b, *addr, snap, prev, now.Sub(prevAt))
		renderSlowest(&b, *addr)
		if *once {
			os.Stdout.WriteString(b.String())
			return
		}
		// Home the cursor and clear to end of screen: repaint in place
		// without the full-clear flicker.
		fmt.Printf("\x1b[H\x1b[2J%s", b.String())
		prev, prevAt = &snap, now
		time.Sleep(*refresh)
	}
}

func fetch(url string) (metrics.Snapshot, error) {
	var snap metrics.Snapshot
	client := http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	err = json.NewDecoder(resp.Body).Decode(&snap)
	return snap, err
}

// railRow is one (node, rail) line of the dashboard.
type railRow struct {
	node, rail int
}

// railRows enumerates the (node, rail) pairs present in the snapshot, in
// order.
func railRows(s metrics.Snapshot) []railRow {
	var rows []railRow
	if f := s.Family("nm_rail_state"); f != nil {
		for i := range f.Metrics {
			m := &f.Metrics[i]
			node, _ := strconv.Atoi(m.Label("node"))
			rail, _ := strconv.Atoi(m.Label("rail"))
			rows = append(rows, railRow{node, rail})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].node != rows[j].node {
			return rows[i].node < rows[j].node
		}
		return rows[i].rail < rows[j].rail
	})
	return rows
}

var stateNames = [...]string{"up", "SUSPECT", "DOWN"}

// value reads one sample, 0 when absent.
func value(s *metrics.Snapshot, family string, labels ...metrics.Label) float64 {
	if s == nil {
		return 0
	}
	if m := s.Find(family, labels...); m != nil {
		return m.Value
	}
	return 0
}

// rate computes a per-second delta against the previous poll.
func rate(cur, prev *metrics.Snapshot, dt time.Duration, family string, labels ...metrics.Label) float64 {
	if prev == nil || dt <= 0 {
		return 0
	}
	return (value(cur, family, labels...) - value(prev, family, labels...)) / dt.Seconds()
}

// familySum adds up every sample of a family carrying the given labels
// (e.g. the per-shard plan-cache counters of one node).
func familySum(s *metrics.Snapshot, family string, labels ...metrics.Label) float64 {
	f := s.Family(family)
	if f == nil {
		return 0
	}
	total := 0.0
next:
	for i := range f.Metrics {
		m := &f.Metrics[i]
		for _, want := range labels {
			if m.Label(want.Name) != want.Value {
				continue next
			}
		}
		total += m.Value
	}
	return total
}

func render(b *strings.Builder, addr string, cur metrics.Snapshot, prev *metrics.Snapshot, dt time.Duration) {
	fmt.Fprintf(b, "nmtop — %s — %s\n\n", addr, time.Now().Format("15:04:05"))

	rows := railRows(cur)
	fmt.Fprintf(b, "%-5s %-5s %-5s %-8s %12s %12s %10s %7s %7s\n",
		"node", "rail", "kind", "state", "frames/s", "bytes/s", "total", "reconn", "stalls")
	nodes := map[int]bool{}
	for _, r := range rows {
		nodes[r.node] = true
		nodeL, railL := strconv.Itoa(r.node), strconv.Itoa(r.rail)
		sel := metrics.L("node", nodeL, "rail", railL)
		kind := ""
		if m := cur.Find("nm_rail_frames_total", sel...); m != nil {
			kind = m.Label("kind")
		}
		state := "?"
		if st := int(value(&cur, "nm_rail_state", sel...)); st >= 0 && st < len(stateNames) {
			state = stateNames[st]
		}
		fmt.Fprintf(b, "%-5s %-5s %-5s %-8s %12.0f %12s %10s %7.0f %7.0f\n",
			nodeL, railL, kind, state,
			rate(&cur, prev, dt, "nm_rail_frames_total", sel...),
			stats.SizeLabel(int(rate(&cur, prev, dt, "nm_rail_bytes_total", sel...))),
			stats.SizeLabel(int(value(&cur, "nm_rail_bytes_total", sel...))),
			value(&cur, "nm_rail_reconnects_total", sel...),
			value(&cur, "nm_rail_ring_stalls_total", sel...))
	}

	nodeIDs := make([]int, 0, len(nodes))
	for n := range nodes {
		nodeIDs = append(nodeIDs, n)
	}
	sort.Ints(nodeIDs)
	b.WriteString("\n")
	for _, n := range nodeIDs {
		nodeL := strconv.Itoa(n)
		sel := metrics.L("node", nodeL)
		eager := value(&cur, "nm_engine_events_total", metrics.L("node", nodeL, "kind", "eager_sent")...)
		rdv := value(&cur, "nm_engine_events_total", metrics.L("node", nodeL, "kind", "rdv_sent")...)
		fmt.Fprintf(b, "node %s: eager=%.0f rdv=%.0f bytes=%s failovers=%.0f",
			nodeL, eager, rdv,
			stats.SizeLabel(int(value(&cur, "nm_engine_bytes_sent_total", sel...))),
			value(&cur, "nm_engine_events_total", metrics.L("node", nodeL, "kind", "failed_over")...))
		if m := cur.Find("nm_eager_latency_seconds", sel...); m != nil && m.Count > 0 {
			fmt.Fprintf(b, "  eager p50/p99 %s/%s",
				fmtDur(m.Quantile(0.5)), fmtDur(m.Quantile(0.99)))
		}
		if m := cur.Find("nm_rdv_latency_seconds", sel...); m != nil && m.Count > 0 {
			fmt.Fprintf(b, "  rdv p50/p99 %s/%s",
				fmtDur(m.Quantile(0.5)), fmtDur(m.Quantile(0.99)))
		}
		b.WriteString("\n")
		hits := familySum(&cur, "nm_plan_cache_hits_total", sel...)
		misses := familySum(&cur, "nm_plan_cache_misses_total", sel...)
		if total := hits + misses; total > 0 {
			fmt.Fprintf(b, "  plan cache: %.0f%% hit (%.0f/%.0f) evictions=%.0f entries=%.0f  telemetry: obs=%.0f refits=%.0f epoch=%.0f\n",
				hits/total*100, hits, total,
				familySum(&cur, "nm_plan_cache_evictions_total", sel...),
				value(&cur, "nm_plan_cache_entries", sel...),
				value(&cur, "nm_telemetry_observations_total", sel...),
				value(&cur, "nm_telemetry_refits_total", sel...),
				value(&cur, "nm_telemetry_epoch", sel...))
		}
	}

	if f := cur.Family("nm_trace_events_total"); f != nil && len(f.Metrics) > 0 {
		b.WriteString("\ntrace: ")
		for i := range f.Metrics {
			m := &f.Metrics[i]
			if m.Value == 0 {
				continue
			}
			fmt.Fprintf(b, "%s=%.0f ", m.Label("kind"), m.Value)
		}
		b.WriteString("\n")
	}
}

// fmtDur renders seconds with a sensible unit.
func fmtDur(sec float64) string {
	return time.Duration(sec * 1e9).Round(time.Microsecond).String()
}

// renderSlowest appends the "slowest recent messages" panel: the flight
// recorder's ring stitched into spans and ranked by duration. The panel
// is best-effort — an exporter predating /trace/ring.json just doesn't
// get one.
func renderSlowest(b *strings.Builder, addr string) {
	url := "http://" + addr + "/trace/ring.json"
	client := http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	var snap trace.RingSnapshot
	if json.NewDecoder(resp.Body).Decode(&snap) != nil {
		return
	}
	events := make([]trace.Event, 0, len(snap.Events))
	for _, j := range snap.Events {
		events = append(events, j.Event())
	}
	spans := trace.Stitch(events)
	sort.SliceStable(spans, func(i, j int) bool {
		return spans[i].End()-spans[i].Start() > spans[j].End()-spans[j].Start()
	})
	if len(spans) > 5 {
		spans = spans[:5]
	}
	if len(spans) == 0 {
		return
	}
	fmt.Fprintf(b, "\nslowest recent messages (flight recorder, last %d events):\n", len(events))
	fmt.Fprintf(b, "%-14s %10s %8s %6s  %s\n", "msg", "duration", "size", "events", "path")
	for i := range spans {
		s := &spans[i]
		size := 0
		if e, ok := s.First(trace.Delivered); ok {
			size = e.Size
		} else if e, ok := s.First(trace.Submit); ok {
			size = e.Size
		}
		path := ""
		for j, e := range s.Events {
			if j > 0 {
				path += "→"
			}
			path += e.Kind.String()
		}
		fmt.Fprintf(b, "%-14s %10v %8s %6d  %s\n",
			fmt.Sprintf("%d/%d", s.Key.Origin, s.Key.MsgID),
			(s.End() - s.Start()).Round(time.Microsecond),
			stats.SizeLabel(size), len(s.Events), path)
	}
	if len(snap.Anomalies) > 0 {
		fmt.Fprintf(b, "anomalies: %d noted", snap.AnomalyTotal)
		last := snap.Anomalies[len(snap.Anomalies)-1]
		fmt.Fprintf(b, " — last %q on n%d\n", last.Reason, last.Node)
	}
}
