// Figures regenerates the paper's evaluation figures as text tables and
// gnuplot-style .dat files.
//
// Usage:
//
//	figures [-fig fig3|fig8|fig9|fig2|ablations|all] [-out DIR]
//
// Every run is a deterministic simulation of the paper's testbed; see
// EXPERIMENTS.md for the paper-vs-measured record.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/figures"
)

func main() {
	fig := flag.String("fig", "all", "which figure to regenerate (fig2, fig3, fig8, fig9, ablations, all)")
	out := flag.String("out", "", "directory for .dat files (no files if empty)")
	flag.Parse()

	emit := func(t *figures.Table) {
		t.WriteTo(os.Stdout)
		fmt.Println()
		if *out != "" {
			path := filepath.Join(*out, t.Name+".dat")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			t.WriteDat(f)
			f.Close()
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	want := func(name string) bool { return *fig == "all" || *fig == name }
	switch {
	case *fig == "fig2":
		fmt.Print(figures.Fig2Decision())
		return
	case *fig == "ablations":
		emit(figures.AblationFixedRatio())
		emit(figures.AblationOffloadCost())
		return
	}
	ran := false
	if want("fig3") {
		emit(figures.Fig3())
		ran = true
	}
	if want("fig8") {
		emit(figures.Fig8())
		ran = true
	}
	if want("fig9") {
		emit(figures.Fig9())
		ran = true
	}
	if *fig == "all" {
		fmt.Print(figures.Fig2Decision())
		fmt.Println()
		emit(figures.AblationFixedRatio())
		emit(figures.AblationOffloadCost())
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		os.Exit(2)
	}
}
