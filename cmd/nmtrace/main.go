// Nmtrace stitches distributed message traces — the reading side of the
// engine's always-on flight recorder. Point it at one or more metrics
// endpoints (processes started with Config.MetricsAddr or nmping
// -metrics-addr), and it scrapes every node's /trace/ring.json, aligns
// the clocks, groups events by trace id (origin node + message id) into
// cross-node spans, and renders per-message timelines with the duration
// of every stage. With -perfetto it writes the merged trace as Chrome
// trace-event JSON instead, loadable in https://ui.perfetto.dev or
// chrome://tracing.
//
// Usage:
//
//	nmtrace [-addr host:port[,host:port...]] [-top 20] [-slowest]
//	        [-perfetto trace.json]
//
// A distributed cluster has one exporter per process — list them all so
// sender and receiver events of one message land in the same span. Any
// endpoint failing to scrape is fatal (exit 1): a partial trace silently
// missing one node's events reads like a bug in the engine.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/trace"
)

func main() {
	addrs := flag.String("addr", "127.0.0.1:9141", "comma-separated metrics endpoints to scrape")
	top := flag.Int("top", 20, "print at most N spans (0 = all)")
	slowest := flag.Bool("slowest", false, "order spans by duration, slowest first (default: by start time)")
	perfetto := flag.String("perfetto", "", "write merged trace as Chrome trace-event JSON to this file instead of printing")
	flag.Parse()

	var events []trace.Event
	var anomalies []trace.AnomalyJSON
	for _, addr := range strings.Split(*addrs, ",") {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		snap, err := fetchRing(addr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nmtrace: %v\n", err)
			os.Exit(1)
		}
		for _, j := range snap.Events {
			events = append(events, j.Event())
		}
		anomalies = append(anomalies, snap.Anomalies...)
	}

	// Each process stamps events with its own monotonic clock; shift
	// per-node offsets so cross-node causality holds before stitching.
	offsets := trace.AlignClocks(events)
	spans := trace.Stitch(events)

	if *perfetto != "" {
		if err := os.WriteFile(*perfetto, trace.PerfettoJSON(events), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "nmtrace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("nmtrace: wrote %d spans (%d events) to %s\n", len(spans), len(events), *perfetto)
		return
	}

	for node, d := range offsets {
		if d > 0 {
			fmt.Printf("clock: node %d shifted +%v\n", node, d)
		}
	}
	if *slowest {
		sort.SliceStable(spans, func(i, j int) bool {
			return spans[i].End()-spans[i].Start() > spans[j].End()-spans[j].Start()
		})
	}
	shown := spans
	if *top > 0 && len(shown) > *top {
		shown = shown[:*top]
	}
	for i := range shown {
		printSpan(&shown[i])
	}
	if len(shown) < len(spans) {
		fmt.Printf("… %d more spans (-top 0 shows all)\n", len(spans)-len(shown))
	}
	if len(anomalies) > 0 {
		fmt.Println("\nanomalies:")
		for _, a := range anomalies {
			fmt.Printf("  %12v n%d %s (%d events dumped)\n",
				time.Duration(a.AtNs), a.Node, a.Reason, a.Events)
		}
	}
}

func fetchRing(addr string) (trace.RingSnapshot, error) {
	var snap trace.RingSnapshot
	url := "http://" + addr + "/trace/ring.json"
	client := http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	err = json.NewDecoder(resp.Body).Decode(&snap)
	return snap, err
}

// printSpan renders one message's cross-node timeline: a header with
// the trace id and end-to-end figures, then each event with its offset
// from the span start and the gap since the previous event — the
// per-stage durations the engine's nm_stage_latency_seconds histograms
// aggregate, but for one concrete message.
func printSpan(s *trace.Span) {
	total := s.End() - s.Start()
	head := fmt.Sprintf("msg %d/%d  %v", s.Key.Origin, s.Key.MsgID, total.Round(time.Microsecond))
	if e, ok := s.First(trace.Delivered); ok {
		head += fmt.Sprintf("  %dB → n%d", e.Size, e.Node)
	}
	if !s.Has(trace.Completed) {
		head += "  [incomplete]"
	}
	fmt.Println(head)
	prev := s.Start()
	for _, e := range s.Events {
		rail := ""
		if e.Rail >= 0 {
			rail = fmt.Sprintf(" rail=%d", e.Rail)
		}
		note := e.Note
		if note != "" {
			note = "  " + note
		}
		fmt.Printf("  +%-10v %-18s n%d%s size=%d  (Δ %v)%s\n",
			(e.At - s.Start()).Round(time.Nanosecond), e.Kind, e.Node, rail,
			e.Size, (e.At - prev).Round(time.Nanosecond), note)
		prev = e.At
	}
}
