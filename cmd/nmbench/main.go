// Nmbench runs the repository's benchmark workloads and emits the
// results machine-readably, so the performance trajectory across PRs is
// a diffable artifact instead of scrollback. Each row reports the
// operation, host wall time per op (ns_per_op), payload throughput
// (bytes_per_sec, 0 where size has no meaning) and auxiliary metrics
// (virtual_us for simulated results, hit rates, message rates).
//
// Usage:
//
//	nmbench [-out BENCH_4.json] [-iters 5]
//
// CI runs it on every push and uploads the JSON as a build artifact;
// the committed BENCH_<pr>.json files pin the trajectory per PR.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/workload"
	"repro/multirail"
)

// Result is one benchmark row.
type Result struct {
	// Op names the benchmark (fabric/workload/size).
	Op string `json:"op"`
	// NsPerOp is host wall time per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerSec is payload throughput on the wall clock (0 when the
	// op has no meaningful byte count).
	BytesPerSec float64 `json:"bytes_per_sec"`
	// Extra carries op-specific metrics: virtual_us (simulated time per
	// op — the paper's metric), msg_per_sec, plan_hit_rate, ...
	Extra map[string]float64 `json:"extra,omitempty"`
}

func main() {
	out := flag.String("out", "-", "output file (default stdout)")
	iters := flag.Int("iters", 5, "iterations per measurement (fastest run kept)")
	flag.Parse()

	var results []Result
	results = append(results, simOneWay(*iters)...)
	results = append(results, tcpOneWay(*iters)...)
	results = append(results, shmOneWay(*iters)...)
	results = append(results, tcpManyFlows()...)
	results = append(results, simMessageRate()...)
	results = append(results, adaptiveRepeat()...)
	results = append(results, mixedRailKinds()...)

	enc, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d results to %s\n", len(results), *out)
}

// histQuantiles pulls p50/p99 (in µs) of one of node 0's latency
// histograms out of the cluster's metrics snapshot. ok is false when the
// family has no observations (e.g. no rendezvous ran).
func histQuantiles(c *multirail.Cluster, family string) (p50, p99 float64, ok bool) {
	m := c.MetricsSnapshot().Find(family, multirail.MetricLabel{Name: "node", Value: "0"})
	if m == nil || m.Count == 0 {
		return 0, 0, false
	}
	return m.Quantile(0.5) * 1e6, m.Quantile(0.99) * 1e6, true
}

func mustCluster(cfg multirail.Config) *multirail.Cluster {
	c, err := multirail.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return c
}

// timeOp measures fn `iters` times and returns the minimum wall
// duration (the conventional benchmark estimator: least-disturbed run).
func timeOp(iters int, fn func()) time.Duration {
	best := time.Duration(1<<62 - 1)
	for i := 0; i < iters; i++ {
		start := time.Now()
		fn()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// simOneWay reports the harness speed and the modeled (virtual) transfer
// time of the paper's testbed at three rendezvous sizes.
func simOneWay(iters int) []Result {
	var out []Result
	c := mustCluster(multirail.Config{})
	defer c.Close()
	for _, size := range []int{64 << 10, 1 << 20, 8 << 20} {
		var virt time.Duration
		host := timeOp(iters, func() {
			virt = workload.MedianOneWay(c, size, 1)
		})
		out = append(out, Result{
			Op:      fmt.Sprintf("sim/oneway/%dB", size),
			NsPerOp: float64(host.Nanoseconds()),
			Extra:   map[string]float64{"virtual_us": virt.Seconds() * 1e6},
		})
	}
	return out
}

// tcpOneWay reports real one-way time and throughput over loopback TCP.
func tcpOneWay(iters int) []Result {
	var out []Result
	c := mustCluster(multirail.Config{Live: true, SamplingMax: 1 << 20})
	defer c.Close()
	for _, size := range []int{64 << 10, 1 << 20, 4 << 20} {
		workload.MedianOneWay(c, size, 1) // warm-up
		host := timeOp(iters, func() { workload.MedianOneWay(c, size, 1) })
		out = append(out, Result{
			Op:          fmt.Sprintf("tcp/oneway/%dB", size),
			NsPerOp:     float64(host.Nanoseconds()),
			BytesPerSec: float64(size) / host.Seconds(),
		})
	}
	return out
}

// shmOneWay reports real one-way time and throughput over the
// shared-memory ring fabric — the intra-host PIO regime the loopback
// TCP rows are compared against.
func shmOneWay(iters int) []Result {
	var out []Result
	c := mustCluster(multirail.Config{Fabric: multirail.FabricShm, ShmRails: 2, SamplingMax: 1 << 20})
	defer c.Close()
	for _, size := range []int{64 << 10, 1 << 20, 4 << 20} {
		workload.MedianOneWay(c, size, 1) // warm-up
		host := timeOp(iters, func() { workload.MedianOneWay(c, size, 1) })
		out = append(out, Result{
			Op:          fmt.Sprintf("shm/oneway/%dB", size),
			NsPerOp:     float64(host.Nanoseconds()),
			BytesPerSec: float64(size) / host.Seconds(),
		})
	}
	return out
}

// mixedRailKinds runs a mixed small+large workload over the
// heterogeneous 1 shm + 2 TCP fabric with the adaptive loop on, and
// emits one row per rail KIND: how many messages and bytes each kind of
// rail carried (node 0's sent traffic, start-up sampling excluded).
// This is the trajectory metric for the shm rail: small messages should
// concentrate on shm, rendezvous bulk should stripe over everything.
func mixedRailKinds() []Result {
	c := mustCluster(multirail.Config{
		Live: true, ShmRails: 1, TCPRails: 2,
		SamplingMax: 1 << 20, AdaptiveTelemetry: true,
	})
	defer c.Close()
	base := c.RailStats(0)
	const smalls, smallSz, bigs, bigSz = 48, 2 << 10, 8, 1 << 20
	host := timeOp(1, func() {
		workload.MedianOneWay(c, smallSz, smalls)
		workload.MedianOneWay(c, bigSz, bigs)
	})
	after := c.RailStats(0)
	kinds := map[string]*Result{}
	order := []string{}
	var totalBytes float64
	for r := range after {
		kind := c.RailKind(r)
		row := kinds[kind]
		if row == nil {
			row = &Result{
				Op:      fmt.Sprintf("mixed/railkind/%s", kind),
				NsPerOp: float64(host.Nanoseconds()),
				Extra:   map[string]float64{"rails": 0, "messages": 0, "bytes": 0},
			}
			kinds[kind] = row
			order = append(order, kind)
		}
		row.Extra["rails"]++
		row.Extra["messages"] += float64(after[r].Messages - base[r].Messages)
		row.Extra["bytes"] += float64(after[r].Bytes - base[r].Bytes)
		totalBytes += float64(after[r].Bytes - base[r].Bytes)
	}
	var out []Result
	for _, kind := range order {
		row := kinds[kind]
		if totalBytes > 0 {
			row.Extra["byte_share"] = row.Extra["bytes"] / totalBytes
		}
		row.BytesPerSec = row.Extra["bytes"] / host.Seconds()
		out = append(out, *row)
	}
	return out
}

// tcpManyFlows reports the multicore contention workload: 8 concurrent
// tagged flows over real TCP.
func tcpManyFlows() []Result {
	c := mustCluster(multirail.Config{Live: true, SamplingMax: 1 << 20})
	defer c.Close()
	const flows, msgs, size = 8, 24, 8 << 10
	workload.ManyFlows(c, flows, 2, size) // warm-up
	host := timeOp(3, func() { workload.ManyFlows(c, flows, msgs, size) })
	row := Result{
		Op:          fmt.Sprintf("tcp/manyflows/%dx%dx%dB", flows, msgs, size),
		NsPerOp:     float64(host.Nanoseconds()),
		BytesPerSec: float64(flows*msgs*size) / host.Seconds(),
	}
	if p50, p99, ok := histQuantiles(c, "nm_eager_latency_seconds"); ok {
		row.Extra = map[string]float64{"eager_p50_us": p50, "eager_p99_us": p99}
	}
	return []Result{row}
}

// simMessageRate reports the modeled sustained small-message rate under
// eager aggregation.
func simMessageRate() []Result {
	c := mustCluster(multirail.Config{})
	defer c.Close()
	res := workload.MessageRate(c, 512, 200, 8)
	return []Result{{
		Op:      "sim/msgrate/512B",
		NsPerOp: float64(res.Elapsed.Nanoseconds()) / float64(res.Messages),
		Extra:   map[string]float64{"virtual_msg_per_sec": res.PerSecond},
	}}
}

// adaptiveRepeat reports the hot-plan-cache behaviour on the repeated
// same-size workload: wall time per send and the cache hit rate.
func adaptiveRepeat() []Result {
	c := mustCluster(multirail.Config{Live: true, SamplingMax: 1 << 20, AdaptiveTelemetry: true})
	defer c.Close()
	const size = 1 << 20
	workload.MedianOneWay(c, size, 1) // warm-up
	host := timeOp(3, func() { workload.MedianOneWay(c, size, 8) })
	st := c.EngineStats(0)
	hitRate := 0.0
	if total := st.PlanHits + st.PlanMisses; total > 0 {
		hitRate = float64(st.PlanHits) / float64(total)
	}
	row := Result{
		Op:          fmt.Sprintf("tcp/adaptive-repeat/%dB", size),
		NsPerOp:     float64(host.Nanoseconds()) / 8,
		BytesPerSec: float64(8*size) / host.Seconds(),
		Extra: map[string]float64{
			"plan_hit_rate":  hitRate,
			"plan_evictions": float64(st.PlanEvictions),
			"telemetry_obs":  float64(st.TelemetryObs),
			"telemetry_fits": float64(st.TelemetryRefits),
		},
	}
	if p50, p99, ok := histQuantiles(c, "nm_rdv_latency_seconds"); ok {
		row.Extra["rdv_p50_us"] = p50
		row.Extra["rdv_p99_us"] = p99
	}
	return []Result{row}
}
