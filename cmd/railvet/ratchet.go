package main

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"

	"repro/internal/ratchet"
)

// runRatchet re-measures every entry in ratchets.json by running its
// registered test, parses the RATCHET lines the tests log, and lowers
// any ceiling whose measurement improved (ratchets only tighten).
// Returns the process exit code: 0 on success (including "nothing to
// lower"), 1 when a measurement exceeds its committed ceiling, 2 on
// operational failure.
func runRatchet(dry bool) int {
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	path, err := ratchet.Find(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "railvet:", err)
		return 2
	}
	entries, err := ratchet.Load(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "railvet:", err)
		return 2
	}
	if len(entries) == 0 {
		fmt.Println("railvet: no ratchet entries")
		return 0
	}

	// Group entries by package so each test binary runs once, with a
	// -run regexp selecting exactly the anchored tests.
	byPkg := make(map[string][]string)
	for _, e := range entries {
		byPkg[e.Package] = append(byPkg[e.Package], e.Test)
	}
	results := make(map[string]float64)
	pkgs := make([]string, 0, len(byPkg))
	for p := range byPkg {
		pkgs = append(pkgs, p)
	}
	sort.Strings(pkgs)
	for _, p := range pkgs {
		tests := dedup(byPkg[p])
		runRE := "^(" + strings.Join(tests, "|") + ")$"
		cmd := exec.Command("go", "test", "-count=1", "-run", runRE, "-v", p)
		out, err := cmd.CombinedOutput()
		if err != nil {
			// A ratchet test can fail legitimately (regression): its
			// RATCHET line still tells us the measurement. Anything else
			// is an operational failure.
			if !bytes.Contains(out, []byte("RATCHET ")) {
				fmt.Fprintf(os.Stderr, "railvet: go test %s: %v\n%s", p, err, out)
				return 2
			}
		}
		parseRatchetLines(out, results)
	}

	changes := ratchet.Update(entries, results)
	exit := 0
	moved := false
	for _, c := range changes {
		switch {
		case c.NotMeasured:
			fmt.Fprintf(os.Stderr, "railvet: ratchet %s: test logged no RATCHET line — is the test anchor in %s stale?\n", c.Name, ratchet.FileName)
			exit = 2
		case c.Regression:
			fmt.Fprintf(os.Stderr, "railvet: ratchet %s: measured %g exceeds ceiling %g — regression, fix the code (loosening the ceiling is a hand-written diff)\n", c.Name, c.Measured, c.From)
			if exit == 0 {
				exit = 1
			}
		default:
			fmt.Printf("railvet: ratchet %s: ceiling %g -> %g (measured %g)\n", c.Name, c.From, c.To, c.Measured)
			moved = true
		}
	}
	if !moved {
		fmt.Println("railvet: all ratchet ceilings already tight")
	}
	if moved && !dry {
		if err := ratchet.Save(path, entries); err != nil {
			fmt.Fprintln(os.Stderr, "railvet:", err)
			return 2
		}
		fmt.Printf("railvet: wrote %s\n", path)
	} else if moved {
		fmt.Println("railvet: dry run, file unchanged")
	}
	return exit
}

// parseRatchetLines extracts "RATCHET <name> measured=<v> ceiling=<v>"
// lines from test output. go test -v prefixes log lines with
// indentation and file:line, so match on the RATCHET token anywhere in
// the line.
func parseRatchetLines(out []byte, results map[string]float64) {
	sc := bufio.NewScanner(bytes.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		i := strings.Index(line, "RATCHET ")
		if i < 0 {
			continue
		}
		fields := strings.Fields(line[i:])
		// RATCHET <name> measured=<v> ceiling=<v>
		if len(fields) < 3 || !strings.HasPrefix(fields[2], "measured=") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(fields[2], "measured="), 64)
		if err != nil {
			continue
		}
		results[fields[1]] = v
	}
}

func dedup(in []string) []string {
	sort.Strings(in)
	out := in[:0]
	for i, s := range in {
		if i == 0 || s != in[i-1] {
			out = append(out, s)
		}
	}
	return out
}
