// Command railvet runs the project's static analysis suite
// (internal/analyzers) over Go packages: the mechanized form of the
// engine's concurrency and hot-path invariants.
//
// Usage:
//
//	go run ./cmd/railvet ./...            # analyze the module
//	go run ./cmd/railvet -tests ./...     # include test files
//	go run ./cmd/railvet -run nolockio ./internal/core
//	go run ./cmd/railvet -json ./...      # machine-readable findings
//	go run ./cmd/railvet -stale ./...     # also flag dead //railvet:ignore directives
//	go run ./cmd/railvet -ratchet         # re-measure alloc ratchets, lower ceilings
//	go run ./cmd/railvet -hotalloc-write  # regenerate the hot-path escape baseline
//
// The binary also speaks the `go vet -vettool` unitchecker protocol,
// so CI can run it through the build cache:
//
//	go build -o railvet ./cmd/railvet
//	go vet -vettool=$PWD/railvet ./...
//
// In that mode each package's cross-package facts are serialized into
// the .vetx file the go command threads through the build cache, so
// dependency summaries survive between runs; the whole-program hot set,
// which needs dependents as well as dependencies, is only available to
// the standalone driver.
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analyzers"
)

func main() {
	// `go vet -vettool` probes the tool's identity with -V=full before
	// handing it per-package config files.
	if len(os.Args) == 2 && strings.HasPrefix(os.Args[1], "-V") {
		fmt.Printf("railvet version 3\n")
		return
	}
	// The go command also queries the tool's flag surface; railvet
	// exposes none through the vet path.
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}
	if len(os.Args) == 2 && strings.HasSuffix(os.Args[1], ".cfg") {
		os.Exit(unitcheck(os.Args[1]))
	}

	tests := flag.Bool("tests", false, "also analyze test files (in-package and external test packages)")
	run := flag.String("run", "", "comma-separated pass names to run (default: all)")
	list := flag.Bool("list", false, "list the passes and exit")
	jsonOut := flag.Bool("json", false, "emit findings as JSON (file/line/col/pass/message) for tooling")
	stale := flag.Bool("stale", false, "flag //railvet:ignore directives whose pass no longer fires there")
	factsCache := flag.String("factscache", "", "directory for the cross-package facts cache (CI: key it on go.sum + analyzer sources)")
	escapes := flag.Bool("escapes", true, "collect go tool compile -m -m escape data so hotalloc can run")
	baselinePath := flag.String("hotalloc-baseline", "", "hot-path escape baseline file (default: hotalloc_baseline.json at the module root)")
	baselineWrite := flag.Bool("hotalloc-write", false, "regenerate the hot-path escape baseline from current code and exit")
	ratchetMode := flag.Bool("ratchet", false, "re-run the AllocsPerRun ratchet tests and lower ceilings in ratchets.json that improved")
	ratchetDry := flag.Bool("ratchet-dry", false, "with -ratchet: report what would change without rewriting ratchets.json")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: railvet [-tests] [-run pass,pass] [-json] [-stale] [packages]\n       railvet -ratchet [-ratchet-dry]\n       railvet -hotalloc-write [packages]\n\npasses:\n")
		for _, a := range analyzers.All() {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if *list {
		for _, a := range analyzers.All() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *ratchetMode {
		os.Exit(runRatchet(*ratchetDry))
	}
	passes, err := selectPasses(*run)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	pkgs, err := analyzers.Load(wd, patterns, analyzers.LoadOpts{
		Tests:      *tests,
		FactsCache: *factsCache,
		Escapes:    *escapes,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	bp := *baselinePath
	if bp == "" {
		bp = findUp(wd, "hotalloc_baseline.json")
	}
	if *baselineWrite {
		os.Exit(writeBaseline(bp, wd, pkgs))
	}
	baseline, err := loadBaseline(bp)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	findings := analyzers.AnalyzeOpts(pkgs, passes, analyzers.Options{
		Stale:    *stale,
		Baseline: baseline,
	})
	if *jsonOut {
		printJSON(findings)
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "railvet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// jsonFinding is the -json wire shape: stable field names so findings
// can be diffed across PRs and consumed by tooling.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Pass    string `json:"pass"`
	Message string `json:"message"`
}

func printJSON(findings []analyzers.Finding) {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			File: f.Pos.Filename, Line: f.Pos.Line, Col: f.Pos.Column,
			Pass: f.Pass, Message: f.Message,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}

// findUp walks from dir toward the filesystem root looking for name;
// returns the path next to go.mod (creation target) if never found.
func findUp(dir, name string) string {
	d := dir
	for {
		p := filepath.Join(d, name)
		if _, err := os.Stat(p); err == nil {
			return p
		}
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return filepath.Join(d, name) // module root: the canonical location
		}
		parent := filepath.Dir(d)
		if parent == d {
			return filepath.Join(dir, name)
		}
		d = parent
	}
}

func loadBaseline(path string) (map[string]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	baseline := make(map[string]int)
	if err := json.Unmarshal(data, &baseline); err != nil {
		return nil, fmt.Errorf("parsing %s: %v", path, err)
	}
	return baseline, nil
}

// writeBaseline regenerates the hot-path escape baseline from the
// current code: every escape currently inside a hot function becomes
// tolerated. Run it after deliberately accepting an escape — the diff
// is the review artifact.
func writeBaseline(path, wd string, pkgs []*analyzers.Package) int {
	counts := analyzers.HotAllocCounts(pkgs)
	data, err := json.MarshalIndent(counts, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o666); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	rel := path
	if r, err := filepath.Rel(wd, path); err == nil {
		rel = r
	}
	fmt.Printf("railvet: wrote %d hot-path escape baseline entries to %s\n", len(counts), rel)
	return 0
}

func selectPasses(names string) ([]*analyzers.Analyzer, error) {
	if names == "" {
		return analyzers.All(), nil
	}
	var out []*analyzers.Analyzer
	for _, name := range strings.Split(names, ",") {
		a := analyzers.ByName(strings.TrimSpace(name))
		if a == nil {
			return nil, fmt.Errorf("railvet: unknown pass %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}
