// Command railvet runs the project's static analysis suite
// (internal/analyzers) over Go packages: the mechanized form of the
// engine's concurrency and hot-path invariants.
//
// Usage:
//
//	go run ./cmd/railvet ./...          # analyze the module
//	go run ./cmd/railvet -tests ./...   # include test files
//	go run ./cmd/railvet -run nolockio ./internal/core
//
// The binary also speaks the `go vet -vettool` unitchecker protocol,
// so CI can run it through the build cache:
//
//	go build -o railvet ./cmd/railvet
//	go vet -vettool=$PWD/railvet ./...
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"

	"repro/internal/analyzers"
)

func main() {
	// `go vet -vettool` probes the tool's identity with -V=full before
	// handing it per-package config files.
	if len(os.Args) == 2 && strings.HasPrefix(os.Args[1], "-V") {
		fmt.Printf("railvet version 1\n")
		return
	}
	// The go command also queries the tool's flag surface; railvet
	// exposes none through the vet path.
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}
	if len(os.Args) == 2 && strings.HasSuffix(os.Args[1], ".cfg") {
		os.Exit(unitcheck(os.Args[1]))
	}

	tests := flag.Bool("tests", false, "also analyze test files (in-package and external test packages)")
	run := flag.String("run", "", "comma-separated pass names to run (default: all)")
	list := flag.Bool("list", false, "list the passes and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: railvet [-tests] [-run pass,pass] [packages]\n\npasses:\n")
		for _, a := range analyzers.All() {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if *list {
		for _, a := range analyzers.All() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	passes, err := selectPasses(*run)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	pkgs, err := analyzers.Load(wd, patterns, *tests)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	findings := analyzers.Analyze(pkgs, passes)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "railvet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func selectPasses(names string) ([]*analyzers.Analyzer, error) {
	if names == "" {
		return analyzers.All(), nil
	}
	var out []*analyzers.Analyzer
	for _, name := range strings.Split(names, ",") {
		a := analyzers.ByName(strings.TrimSpace(name))
		if a == nil {
			return nil, fmt.Errorf("railvet: unknown pass %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// vetConfig is the per-package JSON config the go command hands a
// -vettool (the x/tools unitchecker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes one package described by a vet config file and
// returns the process exit code: the go command treats a non-zero exit
// as "vet failed" and relays whatever was printed to stderr.
func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "railvet: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// railvet keeps no cross-package facts, but the protocol requires
	// the facts file to exist before this package's dependents run.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		files = append(files, f)
	}
	pkg, info, err := analyzers.TypeCheck(fset, cfg.ImportPath, files, cfg.ImportMap, cfg.PackageFile)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	findings := analyzers.Analyze([]*analyzers.Package{{
		PkgPath: cfg.ImportPath, Fset: fset, Files: files, Pkg: pkg, Info: info,
	}}, analyzers.All())
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}
