package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"

	"repro/internal/analyzers"
)

// vetConfig is the per-package JSON config the go command hands a
// -vettool (the x/tools unitchecker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes one package described by a vet config file and
// returns the process exit code: the go command treats a non-zero exit
// as "vet failed" and relays whatever was printed to stderr.
//
// Cross-package facts ride the protocol's vetx files: each package's
// computed summary is serialized to VetxOutput, and dependents get it
// back through PackageVetx, so nolockio and hotclock follow calls
// across package edges even under `go vet`. The whole-program hot set
// is out of reach here — vet runs bottom-up, so a package never sees
// its dependents' hotpath roots; the standalone driver covers that.
func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "railvet: parsing %s: %v\n", cfgPath, err)
		return 2
	}

	// The standard library is outside the fact universe: the standalone
	// driver cannot source-check it (cgo), so producing facts for it
	// here would make the two gates disagree. Write the (empty) vetx
	// stamp the protocol requires and move on.
	if cfg.Standard[cfg.ImportPath] {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
		}
		return 0
	}

	// Dependency facts from previously-written vetx files. Packages
	// railvet could not summarize (std, cgo) wrote empty files; those
	// decode to nil and simply contribute nothing.
	deps := make(analyzers.FactSet)
	for path, vetx := range cfg.PackageVetx {
		if cfg.Standard[path] {
			continue
		}
		b, err := os.ReadFile(vetx)
		if err != nil {
			continue
		}
		if pf, err := analyzers.DecodeFacts(b); err == nil && pf != nil {
			deps[path] = pf
		}
	}

	fset := token.NewFileSet()
	pkg, bad := parseAndCheck(fset, &cfg)
	if bad && !cfg.SucceedOnTypecheckFailure && !cfg.VetxOnly {
		return 2
	}

	// The protocol requires the facts file to exist before dependents
	// run, even when this package yielded nothing.
	if cfg.VetxOutput != "" {
		var enc []byte
		if pkg != nil {
			pkg.Deps = deps
			pkg.Facts = analyzers.ComputeFacts(pkg, deps)
			if b, err := analyzers.EncodeFacts(pkg.Facts); err == nil {
				enc = b
			}
		}
		if err := os.WriteFile(cfg.VetxOutput, enc, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}
	if cfg.VetxOnly || pkg == nil {
		return 0
	}

	findings := analyzers.Analyze([]*analyzers.Package{pkg}, analyzers.All())
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// parseAndCheck builds the Package for a vet config. bad reports a
// parse or type-check failure; the caller decides whether that is fatal
// (cgo-heavy or generated packages fail here — for VetxOnly dependency
// runs they just produce no facts).
func parseAndCheck(fset *token.FileSet, cfg *vetConfig) (pkg *analyzers.Package, bad bool) {
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if !cfg.VetxOnly && !cfg.SucceedOnTypecheckFailure {
				fmt.Fprintln(os.Stderr, err)
			}
			return nil, true
		}
		files = append(files, f)
	}
	tp, info, err := analyzers.TypeCheck(fset, cfg.ImportPath, files, cfg.ImportMap, cfg.PackageFile)
	if err != nil {
		if !cfg.VetxOnly && !cfg.SucceedOnTypecheckFailure {
			fmt.Fprintln(os.Stderr, err)
		}
		return nil, true
	}
	return &analyzers.Package{
		PkgPath: cfg.ImportPath, Fset: fset, Files: files, Pkg: tp, Info: info,
	}, false
}
