// Nmsample runs the start-up network sampling (paper §III-C) on the
// built-in rail profiles and prints or saves the resulting tables in the
// nmad-go sampling format, which multirail.Config.SamplingFrom and
// cmd/nmping can reload.
//
// Usage:
//
//	nmsample [-rails myri,qsnet,ib,gige] [-min 4] [-max 8388608] [-o FILE]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/model"
	"repro/internal/sampling"
	"repro/internal/stats"
)

func railByName(name string) (*model.Profile, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "myri", "myri-10g", "mx":
		return model.Myri10G(), nil
	case "qsnet", "qsnetii", "quadrics", "elan":
		return model.QsNetII(), nil
	case "ib", "infiniband", "verbs":
		return model.IBVerbs(), nil
	case "gige", "tcp", "ethernet":
		return model.GigE(), nil
	default:
		return nil, fmt.Errorf("unknown rail %q (try myri, qsnet, ib, gige)", name)
	}
}

func main() {
	rails := flag.String("rails", "myri,qsnet", "comma-separated rail list")
	minSize := flag.Int("min", 4, "smallest sampled size")
	maxSize := flag.Int("max", 8<<20, "largest sampled size")
	out := flag.String("o", "", "write the sampling file here")
	flag.Parse()

	var profiles []*model.Profile
	for _, name := range strings.Split(*rails, ",") {
		p, err := railByName(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		profiles = append(profiles, p)
	}
	profs, err := sampling.SampleProfiles(profiles, sampling.Config{MinSize: *minSize, MaxSize: *maxSize})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, p := range profs {
		fmt.Printf("# %s\n", p)
		fmt.Printf("%-10s %14s %14s\n", "size", "eager µs", "rendezvous µs")
		for _, s := range p.Rdv.Samples() {
			eager := "-"
			if p.Eager != nil && (p.EagerMax == 0 || s.Size <= p.EagerMax) {
				eager = fmt.Sprintf("%.2f", p.Eager.Estimate(s.Size).Seconds()*1e6)
			}
			fmt.Printf("%-10s %14s %14.2f\n", stats.SizeLabel(s.Size), eager, s.T.Seconds()*1e6)
		}
		fmt.Println()
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := sampling.Save(f, profs); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
}
