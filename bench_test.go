// Package repro_test is the benchmark harness: one bench per evaluation
// figure of the paper (Fig 2, 3, 8, 9) plus the ablations from DESIGN.md
// and micro-benches of the substrates.
//
// Two kinds of numbers appear in the output:
//
//   - ns/op etc. measure the harness itself (how fast the simulation
//     runs on the host) — they are NOT the paper's metrics.
//   - Custom metrics prefixed "virtual-" report the simulated testbed's
//     deterministic results: virtual-us/op is the modeled transfer time,
//     virtual-MB/s the modeled bandwidth (MiB/s, the paper's plot unit).
//     These are the numbers to compare against the paper, recorded in
//     EXPERIMENTS.md.
package repro_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/des"
	"repro/internal/model"
	"repro/internal/sampling"
	"repro/internal/stats"
	"repro/internal/strategy"
	"repro/internal/wire"
	"repro/internal/workload"
	"repro/mpilite"
	"repro/multirail"
)

func mustCluster(b *testing.B, cfg multirail.Config) *multirail.Cluster {
	b.Helper()
	c, err := multirail.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Close)
	return c
}

func median(ts []time.Duration) time.Duration {
	fs := make([]float64, len(ts))
	for i, t := range ts {
		fs[i] = float64(t)
	}
	return time.Duration(stats.Percentile(fs, 50))
}

// BenchmarkFig3GreedyVsAggregate regenerates Fig 3: two eager segments,
// aggregated over one rail versus dynamically balanced over both.
func BenchmarkFig3GreedyVsAggregate(b *testing.B) {
	variants := []struct {
		name string
		cfg  multirail.Config
	}{
		{"agg-myri", multirail.Config{Rails: []*multirail.Profile{multirail.Myri10G()}}},
		{"agg-quadrics", multirail.Config{Rails: []*multirail.Profile{multirail.QsNetII()}}},
		{"balanced", multirail.Config{GreedyEager: true}},
	}
	for _, v := range variants {
		for _, size := range []int{4, 1 << 10, 16 << 10} {
			b.Run(fmt.Sprintf("%s/%s", v.name, stats.SizeLabel(size)), func(b *testing.B) {
				c := mustCluster(b, v.cfg)
				virt := median(workload.TwoPacketBatch(c, size, 3))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					workload.TwoPacketBatch(c, size, 1)
				}
				b.ReportMetric(virt.Seconds()*1e6, "virtual-us/op")
			})
		}
	}
}

// BenchmarkFig8Bandwidth regenerates Fig 8: ping-pong bandwidth over each
// rail alone, the iso split and the sampling-based hetero split.
func BenchmarkFig8Bandwidth(b *testing.B) {
	variants := []struct {
		name string
		cfg  multirail.Config
	}{
		{"myri", multirail.Config{Rails: []*multirail.Profile{multirail.Myri10G()}}},
		{"quadrics", multirail.Config{Rails: []*multirail.Profile{multirail.QsNetII()}}},
		{"iso", multirail.Config{Splitter: multirail.IsoSplit()}},
		{"hetero", multirail.Config{Splitter: multirail.HeteroSplit()}},
	}
	for _, v := range variants {
		for _, size := range []int{256 << 10, 4 << 20, 8 << 20} {
			b.Run(fmt.Sprintf("%s/%s", v.name, stats.SizeLabel(size)), func(b *testing.B) {
				c := mustCluster(b, v.cfg)
				virt := median(workload.OneWay(c, 0, 1, size, 3))
				b.SetBytes(int64(size))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					workload.OneWay(c, 0, 1, size, 1)
				}
				b.ReportMetric(virt.Seconds()*1e6, "virtual-us/op")
				b.ReportMetric(workload.Bandwidth(size, virt), "virtual-MB/s")
			})
		}
	}
}

// BenchmarkFig9SmallMessages regenerates Fig 9: per-rail latency, the
// equation-(1) estimation and the engine's measured multicore path.
func BenchmarkFig9SmallMessages(b *testing.B) {
	profs, err := sampling.SampleProfiles(model.PaperTestbed(),
		sampling.Config{MinSize: 4, MaxSize: 8 << 20})
	if err != nil {
		b.Fatal(err)
	}
	rails := []strategy.RailView{
		{Index: 0, Est: profs[0], EagerMax: profs[0].EagerMax},
		{Index: 1, Est: profs[1], EagerMax: profs[1].EagerMax},
	}
	sizes := []int{4, 4 << 10, 16 << 10, 64 << 10}
	b.Run("estimation", func(b *testing.B) {
		for _, size := range sizes {
			b.Run(stats.SizeLabel(size), func(b *testing.B) {
				var virt time.Duration
				for i := 0; i < b.N; i++ {
					ratio := strategy.SplitRatioDichotomy(size, 0, rails[0], rails[1], 50)
					na := int(ratio * float64(size))
					ta := rails[0].Est.Estimate(na)
					if tb := rails[1].Est.Estimate(size - na); tb > ta {
						ta = tb
					}
					virt = model.OffloadSyncCost + ta
				}
				b.ReportMetric(virt.Seconds()*1e6, "virtual-us/op")
			})
		}
	})
	b.Run("engine", func(b *testing.B) {
		for _, size := range sizes {
			b.Run(stats.SizeLabel(size), func(b *testing.B) {
				c := mustCluster(b, multirail.Config{EagerParallel: true, RecvWorkers: 2})
				virt := median(workload.OneWay(c, 0, 1, size, 3))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					workload.OneWay(c, 0, 1, size, 1)
				}
				b.ReportMetric(virt.Seconds()*1e6, "virtual-us/op")
			})
		}
	})
}

// BenchmarkFig2NICSelection measures the prediction-driven selection of
// Fig 2: the split decision for a 1MB message while one NIC's busy
// horizon varies. virtual-us/op is the predicted completion of the
// chosen schedule; ns/op is the strategy's own decision cost.
func BenchmarkFig2NICSelection(b *testing.B) {
	profs, err := sampling.SampleProfiles(model.PaperTestbed(),
		sampling.Config{MinSize: 4, MaxSize: 8 << 20})
	if err != nil {
		b.Fatal(err)
	}
	for _, busy := range []time.Duration{0, 500 * time.Microsecond, 5 * time.Millisecond} {
		b.Run(fmt.Sprintf("busy=%v", busy), func(b *testing.B) {
			rails := []strategy.RailView{
				{Index: 0, Est: profs[0], IdleAt: busy, EagerMax: profs[0].EagerMax},
				{Index: 1, Est: profs[1], EagerMax: profs[1].EagerMax},
			}
			h := strategy.HeteroSplit{}
			var pred time.Duration
			for i := 0; i < b.N; i++ {
				chunks := h.Split(1<<20, 0, rails)
				pred = strategy.PredictedCompletion(0, rails, chunks)
			}
			b.ReportMetric(pred.Seconds()*1e6, "virtual-us/op")
		})
	}
}

// BenchmarkAblationFixedRatio quantifies §II-A: the predicted completion
// under a fixed 8MB-derived ratio versus the sampling-based split.
func BenchmarkAblationFixedRatio(b *testing.B) {
	profs, err := sampling.SampleProfiles(model.PaperTestbed(),
		sampling.Config{MinSize: 4, MaxSize: 8 << 20})
	if err != nil {
		b.Fatal(err)
	}
	rails := []strategy.RailView{
		{Index: 0, Est: profs[0], EagerMax: profs[0].EagerMax},
		{Index: 1, Est: profs[1], EagerMax: profs[1].EagerMax},
	}
	fixed := strategy.NewRatioSplit(8<<20, rails)
	hetero := strategy.HeteroSplit{}
	for _, size := range []int{64 << 10, 256 << 10, 8 << 20} {
		b.Run(stats.SizeLabel(size), func(b *testing.B) {
			var penalty float64
			for i := 0; i < b.N; i++ {
				ft := strategy.PredictedCompletion(0, rails, fixed.Split(size, 0, rails))
				ht := strategy.PredictedCompletion(0, rails, hetero.Split(size, 0, rails))
				penalty = (float64(ft)/float64(ht) - 1) * 100
			}
			b.ReportMetric(penalty, "penalty-%")
		})
	}
}

// BenchmarkAblationOffloadCost sweeps T_O through equation (1) at 16KB,
// showing how the paper's 3µs/6µs costs eat into the parallel win.
func BenchmarkAblationOffloadCost(b *testing.B) {
	profs, err := sampling.SampleProfiles(model.PaperTestbed(),
		sampling.Config{MinSize: 4, MaxSize: 8 << 20})
	if err != nil {
		b.Fatal(err)
	}
	rails := []strategy.RailView{
		{Index: 0, Est: profs[0], EagerMax: profs[0].EagerMax},
		{Index: 1, Est: profs[1], EagerMax: profs[1].EagerMax},
	}
	size := 16 << 10
	single := rails[0].Est.Estimate(size)
	if q := rails[1].Est.Estimate(size); q < single {
		single = q
	}
	for _, cost := range []time.Duration{0, model.OffloadSyncCost, model.OffloadPreemptCost} {
		b.Run(fmt.Sprintf("TO=%v", cost), func(b *testing.B) {
			var gain float64
			for i := 0; i < b.N; i++ {
				ratio := strategy.SplitRatioDichotomy(size, 0, rails[0], rails[1], 50)
				na := int(ratio * float64(size))
				ta := rails[0].Est.Estimate(na)
				if tb := rails[1].Est.Estimate(size - na); tb > ta {
					ta = tb
				}
				gain = (1 - float64(cost+ta)/float64(single)) * 100
			}
			b.ReportMetric(gain, "gain-%")
		})
	}
}

// BenchmarkEagerMessageRate measures the engine's sustained small-message
// rate under the aggregation policy (the message-rate motivation of §II).
func BenchmarkEagerMessageRate(b *testing.B) {
	for _, policy := range []string{"aggregate", "greedy"} {
		b.Run(policy, func(b *testing.B) {
			cfg := multirail.Config{GreedyEager: policy == "greedy"}
			c := mustCluster(b, cfg)
			res := workload.MessageRate(c, 512, 200, 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				workload.MessageRate(c, 512, 200, 8)
			}
			b.ReportMetric(res.PerSecond, "virtual-msg/s")
		})
	}
}

// BenchmarkManyFlows is the multicore-progression contention bench: N
// concurrent tagged flows (N goroutines × N tags) hammer one node pair
// on both fabrics. On the live TCP fabric ns/op is wall time, so MB/s
// is real throughput and must scale with GOMAXPROCS (run with
// `-cpu 1,4` to see the sharded engine spread over cores); on the
// simulated fabric ns/op only measures the single-threaded harness.
// Compare against the single-flow pingpong benches for the no-regression
// side of the trade.
func BenchmarkManyFlows(b *testing.B) {
	const flows = 8
	msgs := 48
	if testing.Short() {
		msgs = 8
	}
	fabrics := []struct {
		name string
		cfg  multirail.Config
	}{
		{"sim", multirail.Config{}},
		{"tcp", multirail.Config{Live: true, SamplingMax: 1 << 20}},
	}
	sizes := []struct {
		name string
		n    int
	}{
		{"eager-8KB", 8 << 10},
		{"rdv-256KB", 256 << 10},
	}
	for _, fab := range fabrics {
		for _, sz := range sizes {
			b.Run(fmt.Sprintf("%s/%s", fab.name, sz.name), func(b *testing.B) {
				c := mustCluster(b, fab.cfg)
				workload.ManyFlows(c, flows, 2, sz.n) // warm-up
				b.SetBytes(int64(flows * msgs * sz.n))
				b.ResetTimer()
				var virt time.Duration
				for i := 0; i < b.N; i++ {
					virt = workload.ManyFlows(c, flows, msgs, sz.n)
				}
				b.ReportMetric(virt.Seconds()*1e6, "virtual-us/op")
			})
		}
	}
}

// --- Substrate micro-benches (host performance, no virtual metrics) ---

// BenchmarkDESThroughput measures raw event dispatch.
func BenchmarkDESThroughput(b *testing.B) {
	s := des.New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.After(time.Duration(i), func() {})
		if s.Pending() > 1024 {
			s.Run()
		}
	}
	s.Run()
}

// BenchmarkHeteroSplitDecision measures the strategy's decision cost —
// this is on the engine's critical path at every rendezvous.
func BenchmarkHeteroSplitDecision(b *testing.B) {
	profs, err := sampling.SampleProfiles(model.PaperTestbed(),
		sampling.Config{MinSize: 4, MaxSize: 8 << 20})
	if err != nil {
		b.Fatal(err)
	}
	rails := []strategy.RailView{
		{Index: 0, Est: profs[0], EagerMax: profs[0].EagerMax},
		{Index: 1, Est: profs[1], EagerMax: profs[1].EagerMax},
	}
	h := strategy.HeteroSplit{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Split(4<<20, 0, rails)
	}
}

// BenchmarkWireAggregate measures container encode+decode of 8 packets.
func BenchmarkWireAggregate(b *testing.B) {
	pkts := make([]wire.Packet, 8)
	for i := range pkts {
		pkts[i] = wire.Packet{Tag: uint32(i), MsgID: uint64(i), Payload: make([]byte, 512)}
	}
	b.SetBytes(int64(wire.AggregateSize(pkts)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc := wire.EncodeEager(0, pkts)
		if _, err := wire.DecodeEager(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSamplingEstimate measures the log-indexed interpolation.
func BenchmarkSamplingEstimate(b *testing.B) {
	profs, err := sampling.SampleProfiles(model.PaperTestbed(),
		sampling.Config{MinSize: 4, MaxSize: 8 << 20})
	if err != nil {
		b.Fatal(err)
	}
	p := profs[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Estimate(i % (8 << 20))
	}
}

// BenchmarkSimulatedTransfer measures host time per simulated 4MB
// hetero-split transfer (harness speed).
func BenchmarkSimulatedTransfer(b *testing.B) {
	c := mustCluster(b, multirail.Config{})
	b.SetBytes(4 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		workload.OneWay(c, 0, 1, 4<<20, 1)
	}
}

// BenchmarkAllreduce compares the naive reduce-and-broadcast all-reduce
// with the bandwidth-optimal ring algorithm over the multirail engine
// (both striped across rails by the hetero split).
func BenchmarkAllreduce(b *testing.B) {
	for _, algo := range []string{"naive", "ring"} {
		b.Run(algo, func(b *testing.B) {
			c := mustCluster(b, multirail.Config{Nodes: 4})
			w := mpilite.NewWorld(c)
			run := func() time.Duration {
				var worst time.Duration
				var mu sync.Mutex
				for i := 0; i < 4; i++ {
					r := w.Rank(i)
					c.Go("rank", func(ctx multirail.Ctx) {
						in := make([]float64, 1<<18) // 2 MB vector
						var err error
						if algo == "ring" {
							_, err = r.AllreduceRingSum(ctx, in)
						} else {
							_, err = r.AllreduceSum(ctx, in)
						}
						if err != nil {
							panic(err)
						}
						mu.Lock()
						if ctx.Now() > worst {
							worst = ctx.Now()
						}
						mu.Unlock()
					})
				}
				c.Run()
				return worst
			}
			virt := run()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				run()
			}
			b.ReportMetric(virt.Seconds()*1e6, "virtual-us/op")
		})
	}
}
