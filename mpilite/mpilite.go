// Package mpilite is a minimal MPI-like layer over the multirail engine.
//
// The paper closes by announcing the integration of NewMadeleine into
// the MPICH2-Nemesis stack "so as to use the multirail capabilities and
// the multithreaded communication system within the widespread MPI
// implementation". mpilite implements that step at the API level:
// ranks, tagged point-to-point operations and a few collectives
// (broadcast, barrier, sum all-reduce, gather), all riding the multirail
// engine — every large transfer below is striped across rails by the
// sampling-based strategy.
//
// All ranks of a World must run in their own actor (Cluster.Go) and call
// collectives in the same order, as in MPI.
package mpilite

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"repro/multirail"
)

// Tag layout: user point-to-point tags must stay below 1<<24; collective
// traffic uses the high bits.
const (
	maxUserTag  = 1 << 24
	collBase    = uint32(0xC0000000)
	opBcast     = 1
	opBarrier   = 2
	opAllreduce = 3
	opGather    = 4
	seqShift    = 8
	opShift     = 24
	seqMask     = 0xFFFF
)

// World is an MPI_COMM_WORLD-like communicator spanning every node of a
// cluster.
type World struct {
	c *multirail.Cluster

	mu  sync.Mutex
	seq map[int]uint32 // per-rank collective sequence numbers
}

// NewWorld wraps a cluster.
func NewWorld(c *multirail.Cluster) *World {
	return &World{c: c, seq: make(map[int]uint32)}
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.c.Nodes() }

// Rank returns the handle for rank i.
func (w *World) Rank(i int) *Rank {
	if i < 0 || i >= w.Size() {
		panic(fmt.Sprintf("mpilite: rank %d outside world of %d", i, w.Size()))
	}
	return &Rank{w: w, id: i}
}

// nextSeq returns rank r's next collective sequence number. Ranks call
// collectives in the same order, so equal sequence numbers identify the
// same collective across ranks.
func (w *World) nextSeq(r int) uint32 {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.seq[r]++
	return w.seq[r] & seqMask
}

func collTag(op int, seq uint32, round int) uint32 {
	return collBase | uint32(op)<<opShift&0x3F000000 | seq<<seqShift | uint32(round)&0xFF
}

// Rank is one process of the world.
type Rank struct {
	w  *World
	id int
}

// ID returns the rank number.
func (r *Rank) ID() int { return r.id }

// checkTag guards the user tag space.
func checkTag(tag uint32) {
	if tag >= maxUserTag {
		panic(fmt.Sprintf("mpilite: user tag %d >= %d", tag, maxUserTag))
	}
}

// Send sends data to rank dst and waits for local completion.
func (r *Rank) Send(ctx multirail.Ctx, dst int, tag uint32, data []byte) {
	checkTag(tag)
	r.w.c.Node(r.id).Send(ctx, dst, tag, data)
}

// Isend submits a send without waiting.
func (r *Rank) Isend(dst int, tag uint32, data []byte) *multirail.SendRequest {
	checkTag(tag)
	return r.w.c.Node(r.id).Isend(dst, tag, data)
}

// Recv receives a message from rank src, returning its length.
func (r *Rank) Recv(ctx multirail.Ctx, src int, tag uint32, buf []byte) (int, error) {
	checkTag(tag)
	return r.w.c.Node(r.id).Recv(ctx, src, tag, buf)
}

// Irecv posts a receive without waiting.
func (r *Rank) Irecv(src int, tag uint32, buf []byte) *multirail.RecvRequest {
	checkTag(tag)
	return r.w.c.Node(r.id).Irecv(src, tag, buf)
}

// Sendrecv exchanges messages with two peers without deadlocking.
func (r *Rank) Sendrecv(ctx multirail.Ctx, dst int, sendTag uint32, data []byte,
	src int, recvTag uint32, buf []byte) (int, error) {
	checkTag(sendTag)
	checkTag(recvTag)
	rr := r.w.c.Node(r.id).Irecv(src, recvTag, buf)
	sr := r.w.c.Node(r.id).Isend(dst, sendTag, data)
	sr.Wait(ctx)
	return rr.Wait(ctx)
}

// Bcast broadcasts root's buf to every rank along a binomial tree. All
// ranks pass a buffer of the same length; non-roots receive into it.
func (r *Rank) Bcast(ctx multirail.Ctx, root int, buf []byte) error {
	size := r.w.Size()
	seq := r.w.nextSeq(r.id)
	if size == 1 {
		return nil
	}
	vrank := (r.id - root + size) % size
	// Receive phase: find the round in which this vrank is reached.
	mask := 1
	for mask < size {
		if vrank < 2*mask && vrank >= mask {
			src := (vrank - mask + root) % size
			if _, err := r.w.c.Node(r.id).Recv(ctx, src, collTag(opBcast, seq, log2(mask)), buf); err != nil {
				return err
			}
			break
		}
		mask <<= 1
	}
	// Send phase: forward to the subtree. Restarting from mask=1 is safe
	// for every rank: vrank < mask only holds for masks above the one we
	// received at, and for the root it spans the whole tree.
	for mask = 1; mask < size; mask <<= 1 {
		if vrank < mask && vrank+mask < size {
			dst := (vrank + mask + root) % size
			r.w.c.Node(r.id).Send(ctx, dst, collTag(opBcast, seq, log2(mask)), buf)
		}
	}
	return nil
}

func log2(n int) int {
	k := 0
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}

// Barrier blocks until every rank entered it (dissemination algorithm).
func (r *Rank) Barrier(ctx multirail.Ctx) error {
	size := r.w.Size()
	seq := r.w.nextSeq(r.id)
	// Distinct in/out tokens: the receive may land while the send is
	// still being encoded on a progress worker, so the two concurrent
	// operations must not share a buffer (the usual MPI aliasing rule).
	var tokenIn, tokenOut [1]byte
	for round, dist := 0, 1; dist < size; round, dist = round+1, dist*2 {
		dst := (r.id + dist) % size
		src := (r.id - dist + size) % size
		rr := r.w.c.Node(r.id).Irecv(src, collTag(opBarrier, seq, round), tokenIn[:])
		r.w.c.Node(r.id).Isend(dst, collTag(opBarrier, seq, round), tokenOut[:])
		if _, err := rr.Wait(ctx); err != nil {
			return err
		}
	}
	return nil
}

// AllreduceSum sums the float64 vector across all ranks; every rank
// returns the same result. The reduce phase runs along a binomial tree
// toward rank 0 — log2(P) rounds with partial sums combined on the way
// up, the mirror image of Bcast — so rank 0 is no longer a linear
// O(P) receive bottleneck; the broadcast phase then reuses the same
// collective machinery. Every leg rides the multirail engine.
func (r *Rank) AllreduceSum(ctx multirail.Ctx, in []float64) ([]float64, error) {
	size := r.w.Size()
	seq := r.w.nextSeq(r.id)
	out := append([]float64(nil), in...)
	buf := make([]byte, 8*len(in))
	for mask, round := 1, 0; mask < size; mask, round = mask<<1, round+1 {
		if r.id&mask != 0 {
			// This subtree is fully reduced: hand the partial sum to
			// the parent and leave the reduce phase.
			r.w.c.Node(r.id).Send(ctx, r.id-mask, collTag(opAllreduce, seq, round), encodeFloats(out))
			break
		}
		src := r.id + mask
		if src >= size {
			continue
		}
		if _, err := r.w.c.Node(r.id).Recv(ctx, src, collTag(opAllreduce, seq, round), buf); err != nil {
			return nil, err
		}
		vals, err := decodeFloats(buf, len(in))
		if err != nil {
			return nil, err
		}
		for i, v := range vals {
			out[i] += v
		}
	}
	// Broadcast the reduction with the same collective machinery.
	res := encodeFloats(out)
	vr := Rank{w: r.w, id: r.id}
	if err := vr.bcastRaw(ctx, 0, res, seq); err != nil {
		return nil, err
	}
	return decodeFloats(res, len(in))
}

// bcastRaw is Bcast with a caller-provided sequence (used inside other
// collectives so all ranks agree on tags without a second nextSeq).
func (r *Rank) bcastRaw(ctx multirail.Ctx, root int, buf []byte, seq uint32) error {
	size := r.w.Size()
	if size == 1 {
		return nil
	}
	vrank := (r.id - root + size) % size
	mask := 1
	for mask < size {
		if vrank < 2*mask && vrank >= mask {
			src := (vrank - mask + root) % size
			if _, err := r.w.c.Node(r.id).Recv(ctx, src, collTag(opAllreduce, seq, 8+log2(mask)), buf); err != nil {
				return err
			}
			break
		}
		mask <<= 1
	}
	for mask = 1; mask < size; mask <<= 1 {
		if vrank < mask && vrank+mask < size {
			dst := (vrank + mask + root) % size
			r.w.c.Node(r.id).Send(ctx, dst, collTag(opAllreduce, seq, 8+log2(mask)), buf)
		}
	}
	return nil
}

// Gather collects each rank's data at root; root receives a slice per
// rank (its own included), others receive nil.
func (r *Rank) Gather(ctx multirail.Ctx, root int, data []byte, maxLen int) ([][]byte, error) {
	size := r.w.Size()
	seq := r.w.nextSeq(r.id)
	if r.id != root {
		r.w.c.Node(r.id).Send(ctx, root, collTag(opGather, seq, 0), data)
		return nil, nil
	}
	out := make([][]byte, size)
	out[root] = append([]byte(nil), data...)
	for src := 0; src < size; src++ {
		if src == root {
			continue
		}
		buf := make([]byte, maxLen)
		n, err := r.w.c.Node(root).Recv(ctx, src, collTag(opGather, seq, 0), buf)
		if err != nil {
			return nil, err
		}
		out[src] = buf[:n]
	}
	return out, nil
}

func encodeFloats(v []float64) []byte {
	out := make([]byte, 8*len(v))
	for i, f := range v {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(f))
	}
	return out
}

func decodeFloats(b []byte, n int) ([]float64, error) {
	if len(b) < 8*n {
		return nil, fmt.Errorf("mpilite: short float payload: %d bytes for %d values", len(b), n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out, nil
}
