package mpilite_test

import (
	"bytes"
	"math"
	"sync"
	"testing"
	"time"

	"repro/mpilite"
	"repro/multirail"
)

// world builds an n-rank simulated world and runs body on every rank
// concurrently.
func world(t *testing.T, n int, body func(ctx multirail.Ctx, r *mpilite.Rank)) {
	t.Helper()
	c, err := multirail.New(multirail.Config{Nodes: n, SamplingMax: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	w := mpilite.NewWorld(c)
	if w.Size() != n {
		t.Fatalf("world size %d, want %d", w.Size(), n)
	}
	for i := 0; i < n; i++ {
		r := w.Rank(i)
		c.Go("rank", func(ctx multirail.Ctx) { body(ctx, r) })
	}
	c.Run()
}

func TestPingPong(t *testing.T) {
	var got []byte
	world(t, 2, func(ctx multirail.Ctx, r *mpilite.Rank) {
		switch r.ID() {
		case 0:
			r.Send(ctx, 1, 5, []byte("mpi ping"))
		case 1:
			buf := make([]byte, 16)
			n, err := r.Recv(ctx, 0, 5, buf)
			if err != nil {
				t.Error(err)
			}
			got = buf[:n]
		}
	})
	if string(got) != "mpi ping" {
		t.Fatalf("got %q", got)
	}
}

func TestSendrecvNoDeadlock(t *testing.T) {
	// Every rank exchanges simultaneously with both neighbours in a ring.
	const n = 4
	var mu sync.Mutex
	received := map[int]int{}
	world(t, n, func(ctx multirail.Ctx, r *mpilite.Rank) {
		dst := (r.ID() + 1) % n
		src := (r.ID() + n - 1) % n
		buf := make([]byte, 1)
		if _, err := r.Sendrecv(ctx, dst, 1, []byte{byte(r.ID())}, src, 1, buf); err != nil {
			t.Error(err)
			return
		}
		mu.Lock()
		received[r.ID()] = int(buf[0])
		mu.Unlock()
	})
	for i := 0; i < n; i++ {
		if received[i] != (i+n-1)%n {
			t.Fatalf("rank %d received from %d", i, received[i])
		}
	}
}

func TestBcastFromEveryRoot(t *testing.T) {
	const n = 5
	for root := 0; root < n; root++ {
		root := root
		var mu sync.Mutex
		results := make([][]byte, n)
		world(t, n, func(ctx multirail.Ctx, r *mpilite.Rank) {
			buf := make([]byte, 8)
			if r.ID() == root {
				copy(buf, []byte("rooted00"))
				buf[7] = byte(root)
			}
			if err := r.Bcast(ctx, root, buf); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			results[r.ID()] = buf
			mu.Unlock()
		})
		for i, b := range results {
			if b == nil || b[7] != byte(root) || !bytes.Equal(b[:6], []byte("rooted")) {
				t.Fatalf("root %d: rank %d got %q", root, i, b)
			}
		}
	}
}

func TestBcastLargeUsesMultirail(t *testing.T) {
	payload := make([]byte, 2<<20)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	c, err := multirail.New(multirail.Config{Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	w := mpilite.NewWorld(c)
	var mu sync.Mutex
	oks := 0
	for i := 0; i < 3; i++ {
		r := w.Rank(i)
		c.Go("rank", func(ctx multirail.Ctx) {
			buf := make([]byte, len(payload))
			if r.ID() == 0 {
				copy(buf, payload)
			}
			if err := r.Bcast(ctx, 0, buf); err != nil {
				t.Error(err)
				return
			}
			if bytes.Equal(buf, payload) {
				mu.Lock()
				oks++
				mu.Unlock()
			}
		})
	}
	c.Run()
	if oks != 3 {
		t.Fatalf("%d ranks got the payload", oks)
	}
	// The 2MB legs must have been striped over both rails.
	if c.RailStats(0)[1].Bytes == 0 {
		t.Fatal("bcast did not use the second rail")
	}
}

func TestBarrierSynchronises(t *testing.T) {
	const n = 4
	var mu sync.Mutex
	order := []string{}
	world(t, n, func(ctx multirail.Ctx, r *mpilite.Rank) {
		// Rank 0 dawdles before the barrier; everyone records position
		// after it. If the barrier works, all "after" marks come after
		// rank 0's "before".
		if r.ID() == 0 {
			ctx.Sleep(1e6) // 1ms virtual
			mu.Lock()
			order = append(order, "before0")
			mu.Unlock()
		}
		if err := r.Barrier(ctx); err != nil {
			t.Error(err)
			return
		}
		mu.Lock()
		order = append(order, "after")
		mu.Unlock()
	})
	if len(order) != n+1 || order[0] != "before0" {
		t.Fatalf("barrier order %v", order)
	}
}

func TestAllreduceSum(t *testing.T) {
	const n = 4
	var mu sync.Mutex
	results := make([][]float64, n)
	world(t, n, func(ctx multirail.Ctx, r *mpilite.Rank) {
		in := []float64{float64(r.ID()), 1, float64(r.ID() * r.ID())}
		out, err := r.AllreduceSum(ctx, in)
		if err != nil {
			t.Error(err)
			return
		}
		mu.Lock()
		results[r.ID()] = out
		mu.Unlock()
	})
	want := []float64{0 + 1 + 2 + 3, 4, 0 + 1 + 4 + 9}
	for i, res := range results {
		if res == nil {
			t.Fatalf("rank %d missing", i)
		}
		for j := range want {
			if math.Abs(res[j]-want[j]) > 1e-12 {
				t.Fatalf("rank %d: %v, want %v", i, res, want)
			}
		}
	}
}

func TestGather(t *testing.T) {
	const n = 3
	var got [][]byte
	world(t, n, func(ctx multirail.Ctx, r *mpilite.Rank) {
		data := bytes.Repeat([]byte{byte('a' + r.ID())}, r.ID()+1)
		res, err := r.Gather(ctx, 0, data, 16)
		if err != nil {
			t.Error(err)
			return
		}
		if r.ID() == 0 {
			got = res
		} else if res != nil {
			t.Errorf("non-root rank %d got %v", r.ID(), res)
		}
	})
	want := []string{"a", "bb", "ccc"}
	for i, w := range want {
		if string(got[i]) != w {
			t.Fatalf("gather[%d] = %q, want %q", i, got[i], w)
		}
	}
}

func TestUserTagSpaceGuard(t *testing.T) {
	c, err := multirail.New(multirail.Config{SamplingMax: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	w := mpilite.NewWorld(c)
	defer func() {
		if recover() == nil {
			t.Fatal("collective-space tag accepted")
		}
	}()
	w.Rank(0).Isend(1, 0xC0000001, nil)
}

func TestRankBoundsPanic(t *testing.T) {
	c, err := multirail.New(multirail.Config{SamplingMax: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	w := mpilite.NewWorld(c)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range rank accepted")
		}
	}()
	w.Rank(7)
}

func TestAllreduceRingMatchesNaive(t *testing.T) {
	for _, ranks := range []int{2, 3, 4, 5} {
		ranks := ranks
		for _, vlen := range []int{1, 3, 17, 1024} {
			vlen := vlen
			var mu sync.Mutex
			results := make([][]float64, ranks)
			world(t, ranks, func(ctx multirail.Ctx, r *mpilite.Rank) {
				in := make([]float64, vlen)
				for i := range in {
					in[i] = float64(r.ID()*vlen + i)
				}
				out, err := r.AllreduceRingSum(ctx, in)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				results[r.ID()] = out
				mu.Unlock()
			})
			for rank, res := range results {
				if res == nil {
					t.Fatalf("P=%d len=%d: rank %d missing", ranks, vlen, rank)
				}
				for i := range res {
					want := 0.0
					for p := 0; p < ranks; p++ {
						want += float64(p*vlen + i)
					}
					if math.Abs(res[i]-want) > 1e-9 {
						t.Fatalf("P=%d len=%d rank=%d elem %d: %v, want %v", ranks, vlen, rank, i, res[i], want)
					}
				}
			}
		}
	}
}

func TestAllreduceRingEmptyAndSingleton(t *testing.T) {
	world(t, 3, func(ctx multirail.Ctx, r *mpilite.Rank) {
		out, err := r.AllreduceRingSum(ctx, nil)
		if err != nil || len(out) != 0 {
			t.Errorf("empty vector: %v %v", out, err)
		}
	})
	// Size-1 world returns the input unchanged.
	c, err := multirail.New(multirail.Config{Nodes: 1, SamplingMax: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	w := mpilite.NewWorld(c)
	c.Go("solo", func(ctx multirail.Ctx) {
		out, err := w.Rank(0).AllreduceRingSum(ctx, []float64{42})
		if err != nil || out[0] != 42 {
			t.Errorf("singleton world: %v %v", out, err)
		}
	})
	c.Run()
}

// For large vectors the ring algorithm moves 2(P-1)/P of the data per
// rank instead of broadcasting whole vectors, so it finishes earlier in
// virtual time than the naive reduce-and-broadcast.
func TestAllreduceRingFasterForLargeVectors(t *testing.T) {
	run := func(ring bool) time.Duration {
		c, err := multirail.New(multirail.Config{Nodes: 4})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		w := mpilite.NewWorld(c)
		var worst time.Duration
		var mu sync.Mutex
		for i := 0; i < 4; i++ {
			r := w.Rank(i)
			c.Go("rank", func(ctx multirail.Ctx) {
				in := make([]float64, 1<<20) // 8 MB vector
				var err error
				if ring {
					_, err = r.AllreduceRingSum(ctx, in)
				} else {
					_, err = r.AllreduceSum(ctx, in)
				}
				if err != nil {
					t.Error(err)
				}
				mu.Lock()
				if ctx.Now() > worst {
					worst = ctx.Now()
				}
				mu.Unlock()
			})
		}
		c.Run()
		return worst
	}
	naive := run(false)
	ring := run(true)
	if ring >= naive {
		t.Fatalf("ring %v not faster than naive %v for 8MB vectors", ring, naive)
	}
}
