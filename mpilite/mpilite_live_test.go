package mpilite_test

import (
	"bytes"
	"math"
	"sync"
	"testing"
	"time"

	"repro/mpilite"
	"repro/multirail"
)

// liveWorld builds an n-rank world over the real-TCP loopback fabric
// and runs body on every rank concurrently, bounding the run so a
// wedged collective fails instead of hanging the suite.
func liveWorld(t *testing.T, n int, body func(ctx multirail.Ctx, r *mpilite.Rank)) {
	t.Helper()
	c, err := multirail.New(multirail.Config{
		Nodes:       n,
		Live:        true,
		TCPRails:    2,
		SamplingMax: 256 << 10, // keep the wall-clock sampling pass short
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	w := mpilite.NewWorld(c)
	for i := 0; i < n; i++ {
		r := w.Rank(i)
		c.Go("rank", func(ctx multirail.Ctx) { body(ctx, r) })
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Run()
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatalf("live world wedged (fabric err: %v)", c.Err())
	}
	if err := c.Err(); err != nil {
		t.Fatalf("transport error: %v", err)
	}
}

// The collectives previously ran only on the simulated fabric; this is
// the same battery over real TCP rails, race-checked by CI.
func TestCollectivesOverLiveTCP(t *testing.T) {
	const n = 3
	payload := bytes.Repeat([]byte("multirail!"), 6400) // 64 000 B: striped rendezvous
	var mu sync.Mutex
	bcasts := make([][]byte, n)
	sums := make([][]float64, n)
	var gathered [][]byte
	var barrierLate bool
	var entered int
	liveWorld(t, n, func(ctx multirail.Ctx, r *mpilite.Rank) {
		// Bcast: a large buffer so the legs stripe across the TCP rails.
		buf := append([]byte(nil), payload...)
		if r.ID() != 0 {
			buf = make([]byte, len(payload))
		}
		if err := r.Bcast(ctx, 0, buf); err != nil {
			t.Errorf("rank %d bcast: %v", r.ID(), err)
			return
		}
		mu.Lock()
		bcasts[r.ID()] = buf
		entered++
		mu.Unlock()
		// Barrier: nobody leaves before everyone entered.
		if err := r.Barrier(ctx); err != nil {
			t.Errorf("rank %d barrier: %v", r.ID(), err)
			return
		}
		mu.Lock()
		if entered != n {
			barrierLate = true
		}
		mu.Unlock()
		// AllreduceSum: binomial-tree reduce over the live rails.
		out, err := r.AllreduceSum(ctx, []float64{float64(r.ID()), 2, float64(-r.ID())})
		if err != nil {
			t.Errorf("rank %d allreduce: %v", r.ID(), err)
			return
		}
		mu.Lock()
		sums[r.ID()] = out
		mu.Unlock()
		// Gather at rank 1 (a non-zero root).
		g, err := r.Gather(ctx, 1, []byte{byte('A' + r.ID())}, 4)
		if err != nil {
			t.Errorf("rank %d gather: %v", r.ID(), err)
			return
		}
		if r.ID() == 1 {
			mu.Lock()
			gathered = g
			mu.Unlock()
		}
	})
	for i, b := range bcasts {
		if !bytes.Equal(b, payload) {
			t.Fatalf("rank %d bcast payload corrupted", i)
		}
	}
	if barrierLate {
		t.Fatal("a rank left the barrier before all entered")
	}
	want := []float64{0 + 1 + 2, 6, -(0 + 1 + 2)}
	for i, s := range sums {
		if s == nil {
			t.Fatalf("rank %d allreduce missing", i)
		}
		for j := range want {
			if math.Abs(s[j]-want[j]) > 1e-12 {
				t.Fatalf("rank %d allreduce %v, want %v", i, s, want)
			}
		}
	}
	if len(gathered) != n {
		t.Fatalf("gather returned %d slices", len(gathered))
	}
	for i, g := range gathered {
		if string(g) != string(rune('A'+i)) {
			t.Fatalf("gather[%d] = %q", i, g)
		}
	}
}

// The binomial reduce tree handles non-power-of-two worlds (straggler
// subtrees) — sized to stay cheap on the simulated fabric.
func TestAllreduceSumNonPowerOfTwo(t *testing.T) {
	for _, n := range []int{3, 5, 6, 7} {
		var mu sync.Mutex
		results := make([][]float64, n)
		world(t, n, func(ctx multirail.Ctx, r *mpilite.Rank) {
			out, err := r.AllreduceSum(ctx, []float64{1, float64(r.ID())})
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			results[r.ID()] = out
			mu.Unlock()
		})
		wantSum := float64(n * (n - 1) / 2)
		for i, res := range results {
			if res == nil {
				t.Fatalf("n=%d rank %d missing", n, i)
			}
			if res[0] != float64(n) || res[1] != wantSum {
				t.Fatalf("n=%d rank %d: %v, want [%d %v]", n, i, res, n, wantSum)
			}
		}
	}
}
