package mpilite

import (
	"fmt"

	"repro/multirail"
)

// AllreduceRingSum is the bandwidth-optimal ring all-reduce (reduce-
// scatter followed by all-gather): each rank sends 2·(P−1)/P of the
// vector instead of the whole vector P times, and every leg is a
// point-to-point transfer that the multirail engine stripes across
// rails. Use it for large vectors; AllreduceSum is cheaper for tiny
// ones.
func (r *Rank) AllreduceRingSum(ctx multirail.Ctx, in []float64) ([]float64, error) {
	size := r.w.Size()
	out := append([]float64(nil), in...)
	if size == 1 || len(in) == 0 {
		return out, nil
	}
	seq := r.w.nextSeq(r.id)
	// Partition the vector into P near-equal segments.
	segOff := make([]int, size+1)
	for i := 0; i <= size; i++ {
		segOff[i] = i * len(in) / size
	}
	seg := func(v []float64, i int) []float64 {
		i = ((i % size) + size) % size
		return v[segOff[i]:segOff[i+1]]
	}
	right := (r.id + 1) % size
	left := (r.id + size - 1) % size
	maxSeg := 0
	for i := 0; i < size; i++ {
		if n := segOff[i+1] - segOff[i]; n > maxSeg {
			maxSeg = n
		}
	}
	buf := make([]byte, 8*maxSeg)

	// Phase 1 — reduce-scatter: in step s, send segment (id−s) right and
	// accumulate segment (id−s−1) from the left. After P−1 steps rank i
	// owns the fully reduced segment (i+1).
	for s := 0; s < size-1; s++ {
		sendSeg := seg(out, r.id-s)
		recvIdx := r.id - s - 1
		recvSeg := seg(out, recvIdx)
		rr := r.w.c.Node(r.id).Irecv(left, collTag(opAllreduce, seq, s), buf[:8*len(recvSeg)])
		sr := r.w.c.Node(r.id).Isend(right, collTag(opAllreduce, seq, s), encodeFloats(sendSeg))
		if _, err := rr.Wait(ctx); err != nil {
			return nil, fmt.Errorf("mpilite: ring reduce-scatter step %d: %w", s, err)
		}
		vals, err := decodeFloats(buf, len(recvSeg))
		if err != nil {
			return nil, err
		}
		for i, v := range vals {
			recvSeg[i] += v
		}
		sr.Wait(ctx)
	}

	// Phase 2 — all-gather: circulate the reduced segments. In step s,
	// send segment (id+1−s) right, receive segment (id−s) from the left.
	for s := 0; s < size-1; s++ {
		sendSeg := seg(out, r.id+1-s)
		recvSeg := seg(out, r.id-s)
		rr := r.w.c.Node(r.id).Irecv(left, collTag(opAllreduce, seq, 128+s), buf[:8*len(recvSeg)])
		sr := r.w.c.Node(r.id).Isend(right, collTag(opAllreduce, seq, 128+s), encodeFloats(sendSeg))
		if _, err := rr.Wait(ctx); err != nil {
			return nil, fmt.Errorf("mpilite: ring all-gather step %d: %w", s, err)
		}
		vals, err := decodeFloats(buf, len(recvSeg))
		if err != nil {
			return nil, err
		}
		copy(recvSeg, vals)
		sr.Wait(ctx)
	}
	return out, nil
}
