// Observability: start a live mixed shm+TCP cluster with the metrics
// exporter on, run a small mixed workload, then scrape the cluster's own
// /metrics endpoint over HTTP and print a digest — the full loop a
// production deployment would run with Prometheus and nmtop attached.
//
// The exporter serves five surfaces from one registry:
//
//	/metrics          Prometheus text exposition (scrapers)
//	/metrics.json     the MetricsSnapshot shape (cmd/nmtop)
//	/trace/ring.json  the flight recorder's ring (cmd/nmtrace)
//	/trace/perfetto   the same ring as Chrome trace-event JSON
//	/debug/pprof/     optional, Config.MetricsPprof
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/trace"
	"repro/multirail"
)

func main() {
	c, err := multirail.New(multirail.Config{
		Live:              true,
		Nodes:             2,
		ShmRails:          1,
		TCPRails:          1,
		SamplingMax:       256 << 10,
		AdaptiveTelemetry: true,
		MetricsAddr:       "127.0.0.1:0", // ephemeral; read back below
	})
	if err != nil {
		panic(err)
	}
	defer c.Close()
	fmt.Printf("metrics endpoint: http://%s/metrics\n", c.MetricsAddr())

	// A mixed workload: eager-sized messages (the shm rail's regime)
	// plus one rendezvous transfer striped over the rails.
	c.Go("traffic", func(ctx multirail.Ctx) {
		small := []byte("observability probe")
		buf := make([]byte, 64)
		for i := uint32(0); i < 32; i++ {
			recv := c.Node(1).Irecv(0, i, buf)
			send := c.Node(0).Isend(1, i, small)
			send.Wait(ctx)
			if _, err := recv.Wait(ctx); err != nil {
				panic(err)
			}
		}
		big := make([]byte, 2<<20)
		bigBuf := make([]byte, 2<<20)
		recv := c.Node(1).Irecv(0, 99, bigBuf)
		send := c.Node(0).Isend(1, 99, big)
		send.Wait(ctx)
		if _, err := recv.Wait(ctx); err != nil {
			panic(err)
		}
	})
	c.Run()
	// Acks (which feed the latency histograms) trail the waits briefly.
	time.Sleep(200 * time.Millisecond)

	// Scrape ourselves, exactly as Prometheus would.
	resp, err := http.Get("http://" + c.MetricsAddr() + "/metrics")
	if err != nil {
		panic(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		panic(err)
	}

	// Print a digest: every family name with its sample count, then the
	// node-0 per-rail traffic lines verbatim.
	counts := map[string]int{}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i > 0 {
			name = line[:i]
		}
		counts[name]++
	}
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("\nscraped %d samples across %d series:\n", len(strings.Split(string(body), "\n")), len(names))
	for _, n := range names {
		fmt.Printf("  %-45s %4d samples\n", n, counts[n])
	}
	fmt.Println("\nper-rail traffic (node 0):")
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "nm_rail_frames_total") && strings.Contains(line, `node="0"`) {
			fmt.Println("  " + line)
		}
	}

	// The same data is available in-process without HTTP.
	snap := c.MetricsSnapshot()
	if m := snap.Find("nm_eager_latency_seconds", multirail.MetricLabel{Name: "node", Value: "0"}); m != nil && m.Count > 0 {
		fmt.Printf("\neager latency (node 0): %d obs, p50 %v, p99 %v\n",
			m.Count,
			time.Duration(m.Quantile(0.5)*1e9).Round(time.Microsecond),
			time.Duration(m.Quantile(0.99)*1e9).Round(time.Microsecond))
	}

	// The tracing plane: scrape the always-on flight recorder (what
	// cmd/nmtrace does across every node of a distributed cluster) and
	// stitch the rendezvous message's cross-node span back together by
	// its trace id.
	resp, err = http.Get("http://" + c.MetricsAddr() + "/trace/ring.json")
	if err != nil {
		panic(err)
	}
	var ring trace.RingSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&ring); err != nil {
		panic(err)
	}
	resp.Body.Close()
	events := make([]trace.Event, 0, len(ring.Events))
	for _, j := range ring.Events {
		events = append(events, j.Event())
	}
	spans := trace.Stitch(events)
	fmt.Printf("\nflight recorder: %d events, %d spans stitched\n", len(events), len(spans))
	for i := range spans {
		s := &spans[i]
		if e, ok := s.First(trace.Delivered); !ok || e.Size != 2<<20 {
			continue
		}
		fmt.Printf("rendezvous span msg %d/%d (%v end to end):\n",
			s.Key.Origin, s.Key.MsgID, (s.End() - s.Start()).Round(time.Microsecond))
		for _, e := range s.Events {
			fmt.Printf("  +%-10v %-12s n%d rail=%d size=%d %s\n",
				(e.At - s.Start()).Round(time.Microsecond), e.Kind, e.Node, e.Rail, e.Size, e.Note)
		}
		break
	}
}
