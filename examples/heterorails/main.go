// Heterorails walks through the sampling subsystem and the
// prediction-driven NIC selection of the paper's Fig 2: it samples the
// rails, prints the interpolated estimators, then shows how the split
// decision changes as one NIC's busy horizon grows.
package main

import (
	"fmt"
	"time"

	"repro/internal/figures"
	"repro/internal/model"
	"repro/internal/sampling"
	"repro/internal/stats"
	"repro/internal/strategy"
)

func main() {
	fmt.Println("== Network sampling (paper §III-C) ==")
	profs, err := sampling.SampleProfiles(model.PaperTestbed(),
		sampling.Config{MinSize: 4, MaxSize: 8 << 20})
	if err != nil {
		panic(err)
	}
	for _, p := range profs {
		fmt.Printf("%s\n", p)
	}

	fmt.Println("\nInterpolated one-way estimates (µs):")
	fmt.Printf("%-10s %12s %12s\n", "size", profs[0].Name, profs[1].Name)
	for _, n := range []int{4, 1000, 4096, 30000, 1 << 20, 5 << 20} {
		fmt.Printf("%-10s %12.1f %12.1f\n", stats.SizeLabel(n),
			profs[0].Estimate(n).Seconds()*1e6, profs[1].Estimate(n).Seconds()*1e6)
	}

	fmt.Println("\n== Equal-completion split of 4 MB (paper Fig 1c) ==")
	rails := []strategy.RailView{
		{Index: 0, Est: profs[0], EagerMax: profs[0].EagerMax},
		{Index: 1, Est: profs[1], EagerMax: profs[1].EagerMax},
	}
	for _, c := range (strategy.HeteroSplit{}).Split(4<<20, 0, rails) {
		est := rails[c.Rail].Est.Estimate(c.Size)
		fmt.Printf("  rail %d (%s): %7d KB, predicted %7.0f µs\n",
			c.Rail, profs[c.Rail].Name, c.Size/1000, est.Seconds()*1e6)
	}
	fmt.Println("  (paper: 2437 KB in 1999 µs over Myri-10G, 1757 KB in 2001 µs over Quadrics)")

	fmt.Println("\n== NIC selection under busy horizons (paper Fig 2) ==")
	fmt.Print(figures.Fig2Decision())

	fmt.Println("\n== The two-rail ratio dichotomy (paper §II-B) ==")
	for _, n := range []int{64 << 10, 1 << 20, 8 << 20} {
		r := strategy.SplitRatioDichotomy(n, 0, rails[0], rails[1], 50)
		fmt.Printf("  %-6s ratio to %s: %.4f\n", stats.SizeLabel(n), profs[0].Name, r)
	}
	_ = time.Microsecond
}
