// Adaptive demonstrates the online telemetry feedback loop: three real
// TCP rails carry repeated 1 MB sends while one rail is throttled 10x
// mid-run, and the printed plans show the engine migrating bytes off
// the congested rail from live measurements alone — no restart, no
// health transition — then re-adopting it after it recovers.
//
// Run: go run ./examples/adaptive
package main

import (
	"fmt"
	"os"
	"time"

	"repro/multirail"
)

const size = 1 << 20

func send(c *multirail.Cluster, tag uint32) {
	payload := make([]byte, size)
	buf := make([]byte, size)
	c.Go("send", func(ctx multirail.Ctx) {
		rr := c.Node(1).Irecv(0, tag, buf)
		sr := c.Node(0).Isend(1, tag, payload)
		if _, err := rr.Wait(ctx); err != nil {
			panic(err)
		}
		sr.RemoteDone().Wait(ctx)
	})
	c.Run()
}

func phase(c *multirail.Cluster, name string, sends int, tag0 uint32) {
	for i := 0; i < sends; i++ {
		send(c, tag0+uint32(i))
	}
	st := c.EngineStats(0)
	fmt.Printf("%-22s plan: %-44s  est r0/r1/r2: %v/%v/%v  (epoch %d, %d refits)\n",
		name, c.DescribePlan(0, 1, size),
		c.LiveEstimate(0, 1, 0, size).Round(10*time.Microsecond),
		c.LiveEstimate(0, 1, 1, size).Round(10*time.Microsecond),
		c.LiveEstimate(0, 1, 2, size).Round(10*time.Microsecond),
		st.TelemetryEpoch, st.TelemetryRefits)
}

func main() {
	c, err := multirail.New(multirail.Config{
		Live:                true,
		TCPRails:            3,
		SamplingMax:         256 << 10,
		AdaptiveTelemetry:   true,
		TelemetryHalfLife:   50 * time.Millisecond,
		TelemetryProbeEvery: 4,
		// Pin the chooser to striping so the printed plans show the
		// per-rail shares shifting (on loopback it would otherwise
		// often learn that a single rail wins).
		Splitter: multirail.AdaptiveSplitter(multirail.HeteroSplit(), multirail.HeteroSplit()),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer c.Close()

	fmt.Printf("adaptive telemetry demo: 3 TCP rails, repeated %d-byte sends\n", size)
	phase(c, "warm (all rails fast):", 10, 0x100)

	fmt.Println("\n--- throttling rail 0 by 10x (rail stays Up) ---")
	c.ThrottleRail(0, 10)
	phase(c, "after 10 sends:", 10, 0x200)
	phase(c, "after 20 more:", 20, 0x300)

	fmt.Println("\n--- rail 0 recovers ---")
	c.ThrottleRail(0, 1)
	phase(c, "after 20 sends:", 20, 0x400)
	phase(c, "after 60 more:", 60, 0x500)

	st := c.EngineStats(0)
	hit := 0.0
	if total := st.PlanHits + st.PlanMisses; total > 0 {
		hit = float64(st.PlanHits) / float64(total) * 100
	}
	fmt.Printf("\ntelemetry: %d observations, %d refits, epoch %d; plan cache %.0f%% hit (%d/%d)\n",
		st.TelemetryObs, st.TelemetryRefits, st.TelemetryEpoch,
		hit, st.PlanHits, st.PlanHits+st.PlanMisses)
}
