// Tcp2proc runs the multirail engine across two OS processes joined by
// real TCP rails: each process hosts one node of a two-node cluster, and
// every rail is its own TCP connection. It demonstrates that the paper's
// scheduler — eager aggregation below the rendezvous threshold, striped
// rendezvous above it — drives a genuine transport, not only the
// virtual-time model.
//
// Start the server (node 0), then the client (node 1):
//
//	tcp2proc -role server -listen 127.0.0.1:9500
//	tcp2proc -role client -peer   127.0.0.1:9500
//
// With -shm-rails N (same value and -shm-dir on both sides) the two
// processes additionally share N mmap-backed shared-memory rails: the
// lower-id process creates ring files under -shm-dir, the other
// attaches, and intra-host traffic gets a genuine PIO-regime lane next
// to the TCP ones:
//
//	tcp2proc -role server -listen 127.0.0.1:9500 -shm-rails 1 -shm-dir /tmp/nm2proc
//	tcp2proc -role client -peer   127.0.0.1:9500 -shm-rails 1 -shm-dir /tmp/nm2proc
//
// The client sends a burst of small messages (aggregated into eager
// containers) followed by a large payload (striped over every rail via
// RTS/CTS rendezvous); the server verifies both and answers with its own
// large payload, so data flows in both directions. Both sides print
// per-rail byte counts, showing that every TCP rail carried traffic.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/stats"
	"repro/multirail"
)

const (
	tagSmall = 100 // burst of eager messages: tags 100..100+burst-1
	tagBig   = 7   // client -> server rendezvous payload
	tagReply = 8   // server -> client rendezvous payload
	burst    = 8
	smallSz  = 2 << 10
	bigSz    = 4 << 20
)

func main() {
	role := flag.String("role", "", "server (node 0) or client (node 1)")
	listen := flag.String("listen", "127.0.0.1:9500", "server: address the rails accept on")
	peer := flag.String("peer", "127.0.0.1:9500", "client: server address to dial")
	rails := flag.Int("rails", 2, "number of TCP rails")
	shmRails := flag.Int("shm-rails", 0, "number of mmap-backed shared-memory rails (both processes must run on one host)")
	shmDir := flag.String("shm-dir", "", "directory for the shm ring files (required with -shm-rails; same on both sides)")
	flag.Parse()

	if *shmRails > 0 && *shmDir == "" {
		fmt.Fprintln(os.Stderr, "tcp2proc: -shm-rails needs -shm-dir")
		os.Exit(2)
	}
	cfg := multirail.Config{
		Fabric:      multirail.FabricTCP,
		Distributed: true,
		Nodes:       2,
		TCPRails:    *rails,
		ShmRails:    *shmRails,
		ShmDir:      *shmDir,
	}
	var local, remote int
	switch *role {
	case "server":
		cfg.LocalNode = 0
		cfg.ListenAddr = *listen
		local, remote = 0, 1
	case "client":
		cfg.LocalNode = 1
		cfg.Peers = map[int]string{0: *peer}
		local, remote = 1, 0
	default:
		fmt.Fprintln(os.Stderr, "tcp2proc: -role must be server or client")
		os.Exit(2)
	}
	if *shmRails > 0 {
		fmt.Printf("# %s: node %d, %d TCP + %d shm rails, waiting for peer...\n", *role, local, *rails, *shmRails)
	} else {
		fmt.Printf("# %s: node %d, %d TCP rails, waiting for peer...\n", *role, local, *rails)
	}
	c, err := multirail.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer c.Close()
	fmt.Printf("# connected; rendezvous threshold rail 0: %s\n", stats.SizeLabel(c.Threshold(0)))

	me := c.Node(local)
	rng := rand.New(rand.NewSource(int64(local) + 1))
	big := make([]byte, bigSz)
	rng.Read(big)

	start := time.Now()
	c.Go(*role, func(ctx multirail.Ctx) {
		if local == 1 { // client drives
			for i := 0; i < burst; i++ {
				me.Isend(remote, tagSmall+uint32(i), make([]byte, smallSz))
			}
			me.Send(ctx, remote, tagBig, big)
			buf := make([]byte, bigSz)
			n, err := me.Recv(ctx, remote, tagReply, buf)
			check(err)
			fmt.Printf("# client: got %s reply\n", stats.SizeLabel(n))
		} else { // server answers
			small := make([]byte, smallSz)
			for i := 0; i < burst; i++ {
				n, err := me.Recv(ctx, remote, tagSmall+uint32(i), small)
				check(err)
				if n != smallSz {
					check(fmt.Errorf("eager message %d: %d bytes, want %d", i, n, smallSz))
				}
			}
			buf := make([]byte, bigSz)
			n, err := me.Recv(ctx, remote, tagBig, buf)
			check(err)
			want := make([]byte, bigSz)
			rand.New(rand.NewSource(2)).Read(want) // client seed = 1+1
			if n != bigSz || !bytes.Equal(buf, want) {
				check(fmt.Errorf("rendezvous payload corrupted (%d bytes)", n))
			}
			fmt.Printf("# server: verified %d eager messages and a %s rendezvous\n",
				burst, stats.SizeLabel(bigSz))
			sr := me.Isend(remote, tagReply, big)
			sr.Wait(ctx)
			// Wait for the client to acknowledge every transfer unit
			// before this process exits: local completion only means the
			// bytes reached the kernel, and closing the fabric while the
			// peer is still reading can reset the connections and destroy
			// the reply in flight (the peer would then wait forever — a
			// dead process cannot fail over).
			sr.RemoteDone().Wait(ctx)
		}
	})
	c.Run()

	elapsed := time.Since(start)
	st := c.EngineStats(local)
	fmt.Printf("# %s done in %v: eager=%d (aggregated %d) rdv=%d chunks=%d bytes=%s\n",
		*role, elapsed.Round(time.Millisecond), st.EagerSent, st.EagerAggregated,
		st.RdvSent, st.ChunksSent, stats.SizeLabel(int(st.BytesSent)))
	for r := 0; r < c.Rails(); r++ {
		rs := c.RailStats(local)[r]
		fmt.Printf("#   rail %d (%s): %d msgs, %s sent\n", r, c.RailKind(r), rs.Messages, stats.SizeLabel(int(rs.Bytes)))
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcp2proc:", err)
		os.Exit(1)
	}
}
