// Pingpong prints latency and bandwidth tables across splitting
// strategies and message sizes — the workload behind the paper's Fig 8.
//
// Usage:
//
//	go run ./examples/pingpong [-min 4096] [-max 8388608] [-iters 3] [-live]
//
// -live runs on the wall clock with real goroutines instead of the
// deterministic simulator (numbers then include host scheduling noise).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/stats"
	"repro/internal/workload"
	"repro/multirail"
)

func main() {
	minSize := flag.Int("min", 32<<10, "smallest message size")
	maxSize := flag.Int("max", 8<<20, "largest message size")
	iters := flag.Int("iters", 3, "iterations per point")
	live := flag.Bool("live", false, "wall-clock execution instead of simulation")
	flag.Parse()

	type variant struct {
		name string
		cfg  multirail.Config
	}
	variants := []variant{
		{"Myri-10G", multirail.Config{Rails: []*multirail.Profile{multirail.Myri10G()}}},
		{"Quadrics", multirail.Config{Rails: []*multirail.Profile{multirail.QsNetII()}}},
		{"Iso-split", multirail.Config{Splitter: multirail.IsoSplit()}},
		{"Hetero-split", multirail.Config{Splitter: multirail.HeteroSplit()}},
	}
	fmt.Printf("%-10s", "size")
	for _, v := range variants {
		fmt.Printf(" %14s", v.name)
	}
	fmt.Println("   (one-way µs | MB/s)")
	for n := *minSize; n <= *maxSize; n *= 2 {
		fmt.Printf("%-10s", stats.SizeLabel(n))
		for _, v := range variants {
			cfg := v.cfg
			cfg.Live = *live
			c, err := multirail.New(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			oneway := workload.MedianOneWay(c, n, *iters)
			fmt.Printf(" %7.1f|%6.0f", oneway.Seconds()*1e6, workload.Bandwidth(n, oneway))
			c.Close()
		}
		fmt.Println()
	}
}
