// Quickstart: build the paper's testbed (two nodes, Myri-10G + QsNetII,
// four cores each), send one 4 MB message, and watch the sampling-based
// hetero-split stripe it over both rails so that the chunks finish
// together.
package main

import (
	"fmt"
	"math/rand"

	"repro/multirail"
)

func main() {
	c, err := multirail.New(multirail.Config{}) // defaults = paper testbed
	if err != nil {
		panic(err)
	}
	defer c.Close()

	fmt.Println("multirail quickstart — paper testbed (Myri-10G + QsNetII)")
	for r := 0; r < c.Rails(); r++ {
		fmt.Printf("  rail %d: 4KB est %-10v 1MB est %-12v rendezvous threshold %d bytes\n",
			r, c.Estimate(r, 4<<10), c.Estimate(r, 1<<20), c.Threshold(r))
	}

	const n = 4 << 20
	payload := make([]byte, n)
	rand.New(rand.NewSource(1)).Read(payload)
	buf := make([]byte, n)

	c.Go("app", func(ctx multirail.Ctx) {
		start := ctx.Now()
		recv := c.Node(1).Irecv(0, 42, buf)
		send := c.Node(0).Isend(1, 42, payload)
		if _, err := recv.Wait(ctx); err != nil {
			panic(err)
		}
		send.Wait(ctx)
		fmt.Printf("\n4 MB message delivered in %v (virtual time)\n", ctx.Now()-start)
	})
	c.Run()

	ok := true
	for i := range buf {
		if buf[i] != payload[i] {
			ok = false
			break
		}
	}
	fmt.Printf("payload intact: %v\n", ok)
	for r := 0; r < c.Rails(); r++ {
		st := c.RailStats(0)[r]
		fmt.Printf("  rail %d carried %8d bytes in %d messages (busy %v)\n",
			r, st.Bytes, st.Messages, st.BusyTime)
	}
	st := c.EngineStats(0)
	fmt.Printf("engine: %d rendezvous, %d chunks — the split matches the paper's 2437KB/1757KB at 4MB\n",
		st.RdvSent, st.ChunksSent)
}
