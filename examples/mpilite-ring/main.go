// Mpilite-ring runs an MPI-like program — ring exchange, broadcast,
// barrier and all-reduce — on a four-node simulated multirail cluster.
// Every large transfer underneath is striped across the rails by the
// sampling-based strategy (the paper's announced MPICH2-Nemesis
// integration, reproduced at the API level).
package main

import (
	"fmt"
	"sync"

	"repro/mpilite"
	"repro/multirail"
)

func main() {
	const ranks = 4
	c, err := multirail.New(multirail.Config{Nodes: ranks})
	if err != nil {
		panic(err)
	}
	defer c.Close()
	w := mpilite.NewWorld(c)

	var mu sync.Mutex
	report := func(format string, args ...any) {
		mu.Lock()
		fmt.Printf(format, args...)
		mu.Unlock()
	}

	payload := make([]byte, 2<<20)
	for i := range payload {
		payload[i] = byte(i)
	}

	for i := 0; i < ranks; i++ {
		r := w.Rank(i)
		c.Go("rank", func(ctx multirail.Ctx) {
			// 1. Ring exchange of 2 MB blocks (neighbour sendrecv).
			buf := make([]byte, len(payload))
			dst := (r.ID() + 1) % ranks
			src := (r.ID() + ranks - 1) % ranks
			if _, err := r.Sendrecv(ctx, dst, 1, payload, src, 1, buf); err != nil {
				panic(err)
			}
			report("rank %d: ring block from %d received at %v\n", r.ID(), src, ctx.Now())

			// 2. Broadcast from rank 0.
			bcast := make([]byte, 1<<20)
			if r.ID() == 0 {
				copy(bcast, payload)
			}
			if err := r.Bcast(ctx, 0, bcast); err != nil {
				panic(err)
			}

			// 3. Barrier, then a sum all-reduce.
			if err := r.Barrier(ctx); err != nil {
				panic(err)
			}
			sum, err := r.AllreduceSum(ctx, []float64{float64(r.ID() + 1)})
			if err != nil {
				panic(err)
			}
			report("rank %d: allreduce sum = %.0f (want %d) at %v\n",
				r.ID(), sum[0], ranks*(ranks+1)/2, ctx.Now())
		})
	}
	c.Run()

	fmt.Println("\nrail traffic on node 0:")
	for rail := 0; rail < c.Rails(); rail++ {
		st := c.RailStats(0)[rail]
		fmt.Printf("  rail %d: %9d bytes, %d messages\n", rail, st.Bytes, st.Messages)
	}
}
