// Multiflow exercises many concurrent flows of small messages and
// compares the engine's eager policies: the paper's aggregation versus
// the greedy balancing of Fig 3, and the multicore parallel path for
// medium packets.
package main

import (
	"fmt"

	"repro/internal/workload"
	"repro/multirail"
)

func run(name string, cfg multirail.Config) {
	c, err := multirail.New(cfg)
	if err != nil {
		panic(err)
	}
	defer c.Close()
	rate := workload.MessageRate(c, 512, 400, 8)
	fmt.Printf("%-22s 400x512B over 8 flows: %8.0f msg/s (%v total)\n",
		name, rate.PerSecond, rate.Elapsed)
	st := c.EngineStats(0)
	fmt.Printf("%-22s eager=%d aggregated=%d parallel=%d\n",
		"", st.EagerSent, st.EagerAggregated, st.EagerParallel)
}

func main() {
	fmt.Println("== Eager scheduling policies under multi-flow load ==")
	run("aggregate (paper)", multirail.Config{})
	run("greedy (Fig 3)", multirail.Config{GreedyEager: true})
	run("aggregate+offload", multirail.Config{EagerParallel: true, RecvWorkers: 2})

	fmt.Println("\n== Concurrent flows of mixed sizes ==")
	c, err := multirail.New(multirail.Config{})
	if err != nil {
		panic(err)
	}
	defer c.Close()
	res := workload.MultiFlow(c, []int{1 << 10, 64 << 10, 1 << 20, 4 << 20})
	for _, r := range res {
		fmt.Printf("  flow %d (%7d B) finished at %v\n", r.Flow, r.Size, r.Finished)
	}
	for rail := 0; rail < c.Rails(); rail++ {
		st := c.RailStats(0)[rail]
		fmt.Printf("  rail %d carried %d bytes in %d messages\n", rail, st.Bytes, st.Messages)
	}
}
