// Shmtcp demonstrates the mixed heterogeneous rail set: one
// shared-memory rail (lock-free rings, the paper's PIO regime) riding
// alongside two real TCP rails behind one engine. Start-up sampling
// profiles all three; with adaptive telemetry on, the chooser then
// routes small messages onto the µs-class shm rail while large
// rendezvous transfers stripe over every rail the estimators think can
// contribute — single-vs-split selection with real stakes.
//
// Run it:
//
//	go run ./examples/shmtcp
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/stats"
	"repro/multirail"
)

func main() {
	c, err := multirail.New(multirail.Config{
		Live:              true,
		ShmRails:          1,
		TCPRails:          2,
		SamplingMax:       1 << 20,
		AdaptiveTelemetry: true,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer c.Close()

	fmt.Printf("# mixed fabric %q with %d rails:\n", c.FabricKind(), c.Rails())
	for r := 0; r < c.Rails(); r++ {
		fmt.Printf("#   rail %d (%s): sampled estimate 2KiB=%v 1MiB=%v, threshold %s\n",
			r, c.RailKind(r), c.Estimate(r, 2<<10), c.Estimate(r, 1<<20),
			stats.SizeLabel(c.Threshold(r)))
	}

	base := c.RailStats(0)
	const smalls, smallSz, bigSz = 32, 2 << 10, 4 << 20
	c.Go("app", func(ctx multirail.Ctx) {
		// A burst of small messages: eager path, best rail per message.
		small := make([]byte, smallSz)
		for i := 0; i < smalls; i++ {
			rr := c.Node(1).Irecv(0, uint32(100+i), small)
			sr := c.Node(0).Isend(1, uint32(100+i), make([]byte, smallSz))
			if _, err := rr.Wait(ctx); err != nil {
				panic(err)
			}
			sr.RemoteDone().Wait(ctx)
		}
		// One large rendezvous: striped by the live estimates.
		big := make([]byte, bigSz)
		buf := make([]byte, bigSz)
		rr := c.Node(1).Irecv(0, 7, buf)
		sr := c.Node(0).Isend(1, 7, big)
		if _, err := rr.Wait(ctx); err != nil {
			panic(err)
		}
		sr.RemoteDone().Wait(ctx)
	})
	c.Run()

	fmt.Printf("# traffic (node 0, sampling excluded):\n")
	after := c.RailStats(0)
	for r := range after {
		fmt.Printf("#   rail %d (%s): %d msgs, %s\n", r, c.RailKind(r),
			after[r].Messages-base[r].Messages,
			stats.SizeLabel(int(after[r].Bytes-base[r].Bytes)))
	}
	fmt.Printf("# plan for a %s rendezvous now: %s\n",
		stats.SizeLabel(bigSz), c.DescribePlan(0, 1, bigSz))
	fmt.Printf("# live 2KiB estimates: shm=%v tcp=%v/%v — the chooser sends small intra-host traffic on shm\n",
		c.LiveEstimate(0, 1, 0, smallSz).Round(time.Microsecond/10),
		c.LiveEstimate(0, 1, 1, smallSz).Round(time.Microsecond/10),
		c.LiveEstimate(0, 1, 2, smallSz).Round(time.Microsecond/10))
}
