// Package wire defines the on-the-wire representation used by the engine:
// packet headers, eager aggregation containers (several logical packets
// packed into one network message, as NewMadeleine's optimizer does),
// rendezvous control messages, chunked large-message framing, and the
// reassembly of chunks striped across rails.
//
// Everything is encoded with encoding/binary in little-endian order; the
// formats are self-describing enough for tests to round-trip arbitrary
// inputs (see the property tests).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Kind discriminates the message types exchanged on a rail.
type Kind uint8

const (
	// KindEager carries one or more complete logical packets.
	KindEager Kind = iota + 1
	// KindRTS is a rendezvous request-to-send (sender → receiver).
	KindRTS
	// KindCTS is a rendezvous clear-to-send (receiver → sender).
	KindCTS
	// KindData carries one chunk of a rendezvous transfer.
	KindData
	// KindAck signals completion of a rendezvous transfer.
	KindAck
)

func (k Kind) String() string {
	switch k {
	case KindEager:
		return "eager"
	case KindRTS:
		return "rts"
	case KindCTS:
		return "cts"
	case KindData:
		return "data"
	case KindAck:
		return "ack"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// HeaderSize is the encoded size of a Header in bytes.
const HeaderSize = 1 + 1 + 2 + 4 + 4 + 8 + 8 + 8 + 8

// Header prefixes every network message.
type Header struct {
	Kind Kind
	// Rail is the index of the rail the message was sent on (debugging).
	Rail uint8
	// Count is the number of logical packets in a KindEager container.
	Count uint16
	// Tag is the application-level matching tag (single-packet messages).
	Tag uint32
	// Origin is the node that submitted the message this frame belongs
	// to. Together with MsgID it is the message's trace id: frames
	// about message X carry X's origin — RTS/Data/Eager stamp the
	// sender's own node id, CTS and Ack echo the id of the node the
	// transfer came from — so both endpoints record trace events
	// against one identity and cross-node spans stitch by equality.
	Origin uint32
	// MsgID identifies the logical message across chunks and rails.
	MsgID uint64
	// Offset is the byte offset of a KindData chunk in its message.
	Offset uint64
	// ChunkLen is the payload length of this network message.
	ChunkLen uint64
	// TotalLen is the total length of the logical message.
	TotalLen uint64
}

// ErrShortBuffer reports a truncated encoding.
var ErrShortBuffer = errors.New("wire: short buffer")

// ErrCorrupt reports a structurally invalid message.
var ErrCorrupt = errors.New("wire: corrupt message")

// Encode appends the header to dst and returns the extended slice.
func (h *Header) Encode(dst []byte) []byte {
	var buf [HeaderSize]byte
	buf[0] = byte(h.Kind)
	buf[1] = h.Rail
	binary.LittleEndian.PutUint16(buf[2:], h.Count)
	binary.LittleEndian.PutUint32(buf[4:], h.Tag)
	binary.LittleEndian.PutUint32(buf[8:], h.Origin)
	binary.LittleEndian.PutUint64(buf[12:], h.MsgID)
	binary.LittleEndian.PutUint64(buf[20:], h.Offset)
	binary.LittleEndian.PutUint64(buf[28:], h.ChunkLen)
	binary.LittleEndian.PutUint64(buf[36:], h.TotalLen)
	return append(dst, buf[:]...)
}

// DecodeHeader parses a header from the front of b and returns it together
// with the remaining bytes.
func DecodeHeader(b []byte) (Header, []byte, error) {
	if len(b) < HeaderSize {
		return Header{}, nil, ErrShortBuffer
	}
	h := Header{
		Kind:     Kind(b[0]),
		Rail:     b[1],
		Count:    binary.LittleEndian.Uint16(b[2:]),
		Tag:      binary.LittleEndian.Uint32(b[4:]),
		Origin:   binary.LittleEndian.Uint32(b[8:]),
		MsgID:    binary.LittleEndian.Uint64(b[12:]),
		Offset:   binary.LittleEndian.Uint64(b[20:]),
		ChunkLen: binary.LittleEndian.Uint64(b[28:]),
		TotalLen: binary.LittleEndian.Uint64(b[36:]),
	}
	if h.Kind < KindEager || h.Kind > KindAck {
		return Header{}, nil, fmt.Errorf("%w: kind %d", ErrCorrupt, b[0])
	}
	return h, b[HeaderSize:], nil
}

// Packet is one logical packet inside an eager container.
type Packet struct {
	Tag     uint32
	MsgID   uint64
	Payload []byte
}

// entryHeaderSize is the per-packet framing inside an eager container.
const entryHeaderSize = 4 + 8 + 4

// AggregateSize returns the encoded size of an eager container holding the
// given packets (used by the optimizer to respect the rail's eager limit).
func AggregateSize(pkts []Packet) int {
	n := HeaderSize
	for _, p := range pkts {
		n += entryHeaderSize + len(p.Payload)
	}
	return n
}

// EncodeEager builds an eager container carrying pkts on the given rail.
// The container id defaults to the packet's MsgID for single-packet
// containers; use EncodeEagerID when the container must be individually
// acknowledgeable (failover resend tracking) or trace-attributed
// (origin carried to the receiver).
func EncodeEager(rail uint8, pkts []Packet) []byte {
	var id uint64
	if len(pkts) == 1 {
		id = pkts[0].MsgID
	}
	return EncodeEagerID(0, id, rail, pkts)
}

// EncodeEagerID builds an eager container with an explicit origin node
// and container id carried in the header. The id identifies the
// container — not its packets — so the receiver can acknowledge it as
// one unit. It panics if pkts is empty or exceeds 65535 entries (the
// engine never aggregates that many).
func EncodeEagerID(origin uint32, id uint64, rail uint8, pkts []Packet) []byte {
	if len(pkts) == 0 || len(pkts) > 0xFFFF {
		panic(fmt.Sprintf("wire: invalid eager packet count %d", len(pkts)))
	}
	var total uint64
	for _, p := range pkts {
		total += uint64(len(p.Payload))
	}
	h := Header{Kind: KindEager, Rail: rail, Count: uint16(len(pkts)), TotalLen: total, MsgID: id, Origin: origin}
	if len(pkts) == 1 {
		h.Tag = pkts[0].Tag
	}
	out := h.Encode(make([]byte, 0, AggregateSize(pkts)))
	var entry [entryHeaderSize]byte
	for _, p := range pkts {
		binary.LittleEndian.PutUint32(entry[0:], p.Tag)
		binary.LittleEndian.PutUint64(entry[4:], p.MsgID)
		binary.LittleEndian.PutUint32(entry[12:], uint32(len(p.Payload)))
		out = append(out, entry[:]...)
		out = append(out, p.Payload...)
	}
	return out
}

// DecodeEager parses an eager container produced by EncodeEager.
func DecodeEager(b []byte) ([]Packet, error) {
	h, rest, err := DecodeHeader(b)
	if err != nil {
		return nil, err
	}
	if h.Kind != KindEager {
		return nil, fmt.Errorf("%w: expected eager, got %v", ErrCorrupt, h.Kind)
	}
	pkts := make([]Packet, 0, h.Count)
	for i := 0; i < int(h.Count); i++ {
		if len(rest) < entryHeaderSize {
			return nil, ErrShortBuffer
		}
		tag := binary.LittleEndian.Uint32(rest[0:])
		msgID := binary.LittleEndian.Uint64(rest[4:])
		plen := int(binary.LittleEndian.Uint32(rest[12:]))
		rest = rest[entryHeaderSize:]
		if len(rest) < plen {
			return nil, ErrShortBuffer
		}
		pkts = append(pkts, Packet{Tag: tag, MsgID: msgID, Payload: rest[:plen:plen]})
		rest = rest[plen:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(rest))
	}
	return pkts, nil
}

// EncodeControl builds an RTS/CTS/Ack control message. Origin is the
// trace id's node half: an RTS carries the sender's own id, a CTS
// echoes the id of the node whose RTS it answers.
func EncodeControl(kind Kind, rail uint8, origin, tag uint32, msgID, totalLen uint64) []byte {
	h := Header{Kind: kind, Rail: rail, Origin: origin, Tag: tag, MsgID: msgID, TotalLen: totalLen}
	return h.Encode(nil)
}

// EncodeAck builds the acknowledgement for one transfer unit: an eager
// container (offset 0, msgID = container id) or a rendezvous/parallel
// chunk (msgID, offset). The sender retires the matching outstanding
// unit; unacknowledged units are re-planned when their rail dies.
// Origin echoes the id of the node the unit came from.
func EncodeAck(rail uint8, origin uint32, msgID, offset uint64) []byte {
	h := Header{Kind: KindAck, Rail: rail, Origin: origin, MsgID: msgID, Offset: offset}
	return h.Encode(nil)
}

// EncodeData frames one chunk of a rendezvous transfer. Origin is the
// sending node's id (the transfer's trace id node half).
func EncodeData(rail uint8, origin, tag uint32, msgID uint64, offset int, chunk []byte, totalLen int) []byte {
	h := Header{
		Kind: KindData, Rail: rail, Origin: origin, Tag: tag, MsgID: msgID,
		Offset: uint64(offset), ChunkLen: uint64(len(chunk)), TotalLen: uint64(totalLen),
	}
	out := h.Encode(make([]byte, 0, HeaderSize+len(chunk)))
	return append(out, chunk...)
}

// DecodeData parses a chunk frame and returns its header and payload.
func DecodeData(b []byte) (Header, []byte, error) {
	h, rest, err := DecodeHeader(b)
	if err != nil {
		return Header{}, nil, err
	}
	if h.Kind != KindData {
		return Header{}, nil, fmt.Errorf("%w: expected data, got %v", ErrCorrupt, h.Kind)
	}
	if uint64(len(rest)) != h.ChunkLen {
		return Header{}, nil, fmt.Errorf("%w: chunk len %d != payload %d", ErrCorrupt, h.ChunkLen, len(rest))
	}
	return h, rest, nil
}
