package wire

// IOVec is a gather/scatter vector: an ordered list of buffers treated as
// one logical contiguous payload, as supported by MX and Elan NICs
// (Profile.GatherScatter).
type IOVec [][]byte

// Len returns the total byte length of the vector.
func (v IOVec) Len() int {
	n := 0
	for _, b := range v {
		n += len(b)
	}
	return n
}

// Gather copies the vector into a single contiguous buffer.
func (v IOVec) Gather() []byte {
	out := make([]byte, 0, v.Len())
	for _, b := range v {
		out = append(out, b...)
	}
	return out
}

// Slice returns the logical byte range [off, off+n) of the vector as a new
// IOVec that aliases the underlying buffers (no copy). It panics if the
// range is out of bounds.
func (v IOVec) Slice(off, n int) IOVec {
	if off < 0 || n < 0 || off+n > v.Len() {
		panic("wire: IOVec.Slice out of range")
	}
	var out IOVec
	for _, b := range v {
		if n == 0 {
			break
		}
		if off >= len(b) {
			off -= len(b)
			continue
		}
		take := len(b) - off
		if take > n {
			take = n
		}
		out = append(out, b[off:off+take])
		off = 0
		n -= take
	}
	return out
}

// ScatterInto copies src into the logical byte range starting at off.
// It returns the number of bytes copied (min of len(src) and remaining
// space).
func (v IOVec) ScatterInto(off int, src []byte) int {
	copied := 0
	for _, b := range v {
		if len(src) == 0 {
			break
		}
		if off >= len(b) {
			off -= len(b)
			continue
		}
		n := copy(b[off:], src)
		src = src[n:]
		copied += n
		off = 0
	}
	return copied
}
