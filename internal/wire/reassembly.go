package wire

import "fmt"

// Reassembly collects the chunks of one logical message striped across
// several rails and reports completion. Chunks may arrive in any order and
// on any rail; overlapping or out-of-range chunks are rejected.
type Reassembly struct {
	msgID    uint64
	buf      []byte
	total    int
	received int
	seen     []span
}

type span struct{ off, end int }

// NewReassembly starts reassembling a message of totalLen bytes into buf
// (which must be at least totalLen long).
func NewReassembly(msgID uint64, buf []byte, totalLen int) (*Reassembly, error) {
	if totalLen < 0 || len(buf) < totalLen {
		return nil, fmt.Errorf("wire: reassembly buffer %d < total %d", len(buf), totalLen)
	}
	return &Reassembly{msgID: msgID, buf: buf, total: totalLen}, nil
}

// MsgID returns the message being reassembled.
func (r *Reassembly) MsgID() uint64 { return r.msgID }

// Add copies one chunk into place. It returns true when the message is
// complete. Duplicate or overlapping chunks return an error.
func (r *Reassembly) Add(offset int, chunk []byte) (bool, error) {
	end := offset + len(chunk)
	if offset < 0 || end > r.total {
		return false, fmt.Errorf("wire: chunk [%d,%d) outside message of %d bytes", offset, end, r.total)
	}
	for _, s := range r.seen {
		if offset < s.end && s.off < end {
			return false, fmt.Errorf("wire: chunk [%d,%d) overlaps [%d,%d)", offset, end, s.off, s.end)
		}
	}
	copy(r.buf[offset:end], chunk)
	r.seen = append(r.seen, span{offset, end})
	r.received += len(chunk)
	return r.Done(), nil
}

// Done reports whether every byte has arrived.
func (r *Reassembly) Done() bool { return r.received == r.total }

// Received returns the number of bytes received so far.
func (r *Reassembly) Received() int { return r.received }

// Chunks returns how many chunks have been accepted.
func (r *Reassembly) Chunks() int { return len(r.seen) }
