package wire

import (
	"fmt"
	"sort"
)

// Reassembly collects the chunks of one logical message striped across
// several rails and reports completion. Chunks may arrive in any order
// and on any rail. Overlapping and duplicate chunks are tolerated — the
// failover path re-sends a chunk whose rail died before it was
// acknowledged, so the same byte range can legitimately arrive twice
// (with identical bytes, both copies coming from the sender's buffer);
// only out-of-range chunks are rejected.
type Reassembly struct {
	msgID    uint64
	buf      []byte
	total    int
	received int
	chunks   int
	seen     []span // sorted, non-overlapping, merged
}

type span struct{ off, end int }

// NewReassembly starts reassembling a message of totalLen bytes into buf
// (which must be at least totalLen long).
func NewReassembly(msgID uint64, buf []byte, totalLen int) (*Reassembly, error) {
	if totalLen < 0 || len(buf) < totalLen {
		return nil, fmt.Errorf("wire: reassembly buffer %d < total %d", len(buf), totalLen)
	}
	return &Reassembly{msgID: msgID, buf: buf, total: totalLen}, nil
}

// MsgID returns the message being reassembled.
func (r *Reassembly) MsgID() uint64 { return r.msgID }

// Add copies one chunk into place. It returns true when the message is
// complete. Ranges already covered by earlier chunks count nothing
// toward completion (duplicates are idempotent).
func (r *Reassembly) Add(offset int, chunk []byte) (bool, error) {
	end := offset + len(chunk)
	if offset < 0 || end > r.total {
		return false, fmt.Errorf("wire: chunk [%d,%d) outside message of %d bytes", offset, end, r.total)
	}
	copy(r.buf[offset:end], chunk)
	r.chunks++
	r.merge(span{offset, end})
	return r.Done(), nil
}

// merge folds s into the sorted span set, counting only newly covered
// bytes into received.
func (r *Reassembly) merge(s span) {
	if s.off == s.end {
		return
	}
	// Locate the first existing span that ends after s starts.
	i := sort.Search(len(r.seen), func(i int) bool { return r.seen[i].end >= s.off })
	merged := s
	j := i
	fresh := s.end - s.off
	for ; j < len(r.seen) && r.seen[j].off <= merged.end; j++ {
		fresh -= overlap(s, r.seen[j])
		if r.seen[j].off < merged.off {
			merged.off = r.seen[j].off
		}
		if r.seen[j].end > merged.end {
			merged.end = r.seen[j].end
		}
	}
	out := append(r.seen[:i:i], merged)
	r.seen = append(out, r.seen[j:]...)
	r.received += fresh
}

// overlap returns how many bytes a and b share.
func overlap(a, b span) int {
	off, end := a.off, a.end
	if b.off > off {
		off = b.off
	}
	if b.end < end {
		end = b.end
	}
	if end <= off {
		return 0
	}
	return end - off
}

// Mark records [offset, offset+n) as received without copying: the
// caller has already placed the bytes in the buffer. This is the commit
// half of the engine's parallel striped copy, where the byte copy runs
// outside the lock guarding the Reassembly and Mark runs under it. It
// returns true when the message is complete.
func (r *Reassembly) Mark(offset, n int) (bool, error) {
	end := offset + n
	if offset < 0 || n < 0 || end > r.total {
		return false, fmt.Errorf("wire: chunk [%d,%d) outside message of %d bytes", offset, end, r.total)
	}
	r.chunks++
	r.merge(span{offset, end})
	return r.Done(), nil
}

// Span is one byte range, half-open.
type Span struct{ Off, End int }

// Missing returns the sub-ranges of [offset, offset+n) not yet received,
// in order. A fully fresh range comes back as itself; a fully covered
// (duplicate) range comes back empty. Ranges outside the message are
// clamped.
func (r *Reassembly) Missing(offset, n int) []Span {
	end := offset + n
	if offset < 0 {
		offset = 0
	}
	if end > r.total {
		end = r.total
	}
	if end <= offset {
		return nil
	}
	var out []Span
	at := offset
	i := sort.Search(len(r.seen), func(i int) bool { return r.seen[i].end > offset })
	for ; i < len(r.seen) && r.seen[i].off < end; i++ {
		if r.seen[i].off > at {
			out = append(out, Span{at, r.seen[i].off})
		}
		if r.seen[i].end > at {
			at = r.seen[i].end
		}
	}
	if at < end {
		out = append(out, Span{at, end})
	}
	return out
}

// Total returns the total length of the message being reassembled.
func (r *Reassembly) Total() int { return r.total }

// Done reports whether every byte has arrived.
func (r *Reassembly) Done() bool { return r.received == r.total }

// Received returns the number of distinct bytes received so far.
func (r *Reassembly) Received() int { return r.received }

// Chunks returns how many chunks have been accepted (duplicates
// included).
func (r *Reassembly) Chunks() int { return r.chunks }
