package wire

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{
		Kind: KindData, Rail: 3, Count: 7, Tag: 0xDEADBEEF, Origin: 12,
		MsgID: 1234567890123, Offset: 1 << 40, ChunkLen: 42, TotalLen: 99,
	}
	enc := h.Encode(nil)
	if len(enc) != HeaderSize {
		t.Fatalf("encoded size %d, want %d", len(enc), HeaderSize)
	}
	got, rest, err := DecodeHeader(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip: got %+v, want %+v", got, h)
	}
	if len(rest) != 0 {
		t.Fatalf("rest = %d bytes", len(rest))
	}
}

func TestDecodeHeaderShort(t *testing.T) {
	if _, _, err := DecodeHeader(make([]byte, HeaderSize-1)); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("err = %v, want ErrShortBuffer", err)
	}
}

func TestDecodeHeaderBadKind(t *testing.T) {
	b := make([]byte, HeaderSize)
	b[0] = 200
	if _, _, err := DecodeHeader(b); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindEager: "eager", KindRTS: "rts", KindCTS: "cts",
		KindData: "data", KindAck: "ack", Kind(99): "Kind(99)",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestEagerSinglePacket(t *testing.T) {
	pkts := []Packet{{Tag: 5, MsgID: 77, Payload: []byte("hello")}}
	enc := EncodeEager(2, pkts)
	if len(enc) != AggregateSize(pkts) {
		t.Fatalf("size %d, want %d", len(enc), AggregateSize(pkts))
	}
	h, _, err := DecodeHeader(enc)
	if err != nil {
		t.Fatal(err)
	}
	if h.Tag != 5 || h.MsgID != 77 || h.Count != 1 || h.Rail != 2 {
		t.Fatalf("header %+v", h)
	}
	dec, err := DecodeEager(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 1 || dec[0].Tag != 5 || !bytes.Equal(dec[0].Payload, []byte("hello")) {
		t.Fatalf("decoded %+v", dec)
	}
}

func TestEagerAggregation(t *testing.T) {
	pkts := []Packet{
		{Tag: 1, MsgID: 10, Payload: []byte("aa")},
		{Tag: 2, MsgID: 11, Payload: nil},
		{Tag: 3, MsgID: 12, Payload: bytes.Repeat([]byte{0xAB}, 300)},
	}
	enc := EncodeEager(0, pkts)
	dec, err := DecodeEager(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 3 {
		t.Fatalf("decoded %d packets", len(dec))
	}
	for i := range pkts {
		if dec[i].Tag != pkts[i].Tag || dec[i].MsgID != pkts[i].MsgID ||
			!bytes.Equal(dec[i].Payload, pkts[i].Payload) {
			t.Fatalf("packet %d mismatch: %+v vs %+v", i, dec[i], pkts[i])
		}
	}
}

func TestEncodeEagerPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	EncodeEager(0, nil)
}

func TestDecodeEagerRejectsTruncationAndTrailing(t *testing.T) {
	enc := EncodeEager(0, []Packet{{Tag: 1, Payload: []byte("abcdef")}})
	if _, err := DecodeEager(enc[:len(enc)-2]); err == nil {
		t.Fatal("truncated container accepted")
	}
	if _, err := DecodeEager(append(enc, 0)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	// Wrong kind
	ctl := EncodeControl(KindRTS, 0, 0, 1, 2, 3)
	if _, err := DecodeEager(ctl); err == nil {
		t.Fatal("control message decoded as eager")
	}
}

func TestControlRoundTrip(t *testing.T) {
	enc := EncodeControl(KindCTS, 1, 0, 9, 1000, 4096)
	h, rest, err := DecodeHeader(enc)
	if err != nil || len(rest) != 0 {
		t.Fatal(err)
	}
	if h.Kind != KindCTS || h.Tag != 9 || h.MsgID != 1000 || h.TotalLen != 4096 {
		t.Fatalf("header %+v", h)
	}
}

func TestDataRoundTrip(t *testing.T) {
	payload := bytes.Repeat([]byte{7}, 1000)
	enc := EncodeData(1, 0, 4, 88, 512, payload, 4096)
	h, got, err := DecodeData(enc)
	if err != nil {
		t.Fatal(err)
	}
	if h.Offset != 512 || h.TotalLen != 4096 || h.ChunkLen != 1000 {
		t.Fatalf("header %+v", h)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload mismatch")
	}
}

func TestDecodeDataRejectsLengthMismatch(t *testing.T) {
	enc := EncodeData(0, 0, 0, 1, 0, []byte("abc"), 3)
	if _, _, err := DecodeData(enc[:len(enc)-1]); err == nil {
		t.Fatal("length mismatch accepted")
	}
	ctl := EncodeControl(KindAck, 0, 0, 0, 1, 0)
	if _, _, err := DecodeData(ctl); err == nil {
		t.Fatal("ack decoded as data")
	}
}

func TestIOVecLenAndGather(t *testing.T) {
	v := IOVec{[]byte("abc"), nil, []byte("de")}
	if v.Len() != 5 {
		t.Fatalf("Len = %d", v.Len())
	}
	if string(v.Gather()) != "abcde" {
		t.Fatalf("Gather = %q", v.Gather())
	}
}

func TestIOVecSlice(t *testing.T) {
	v := IOVec{[]byte("abc"), []byte("defg"), []byte("hi")}
	cases := []struct {
		off, n int
		want   string
	}{
		{0, 9, "abcdefghi"},
		{0, 0, ""},
		{1, 3, "bcd"},
		{3, 4, "defg"},
		{2, 6, "cdefgh"},
		{8, 1, "i"},
	}
	for _, c := range cases {
		if got := string(c2str(v.Slice(c.off, c.n))); got != c.want {
			t.Errorf("Slice(%d,%d) = %q, want %q", c.off, c.n, got, c.want)
		}
	}
}

func c2str(v IOVec) []byte { return v.Gather() }

func TestIOVecSlicePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	IOVec{[]byte("ab")}.Slice(1, 5)
}

func TestIOVecSliceAliases(t *testing.T) {
	under := []byte("abcdef")
	v := IOVec{under}
	s := v.Slice(2, 2)
	s[0][0] = 'X'
	if under[2] != 'X' {
		t.Fatal("Slice must alias, not copy")
	}
}

func TestIOVecScatterInto(t *testing.T) {
	v := IOVec{make([]byte, 3), make([]byte, 4)}
	n := v.ScatterInto(2, []byte("XYZ"))
	if n != 3 {
		t.Fatalf("copied %d", n)
	}
	if string(v.Gather()) != "\x00\x00XYZ\x00\x00" {
		t.Fatalf("result %q", v.Gather())
	}
	// Overflow is clipped.
	if n := v.ScatterInto(6, []byte("abc")); n != 1 {
		t.Fatalf("overflow copy = %d, want 1", n)
	}
}

func TestReassemblyInOrder(t *testing.T) {
	buf := make([]byte, 10)
	r, err := NewReassembly(1, buf, 10)
	if err != nil {
		t.Fatal(err)
	}
	done, err := r.Add(0, []byte("hello"))
	if err != nil || done {
		t.Fatalf("first add: done=%v err=%v", done, err)
	}
	done, err = r.Add(5, []byte("world"))
	if err != nil || !done {
		t.Fatalf("second add: done=%v err=%v", done, err)
	}
	if string(buf) != "helloworld" {
		t.Fatalf("buf = %q", buf)
	}
	if r.Chunks() != 2 || r.Received() != 10 {
		t.Fatalf("chunks=%d received=%d", r.Chunks(), r.Received())
	}
}

func TestReassemblyOutOfOrder(t *testing.T) {
	buf := make([]byte, 6)
	r, _ := NewReassembly(2, buf, 6)
	if _, err := r.Add(3, []byte("def")); err != nil {
		t.Fatal(err)
	}
	done, err := r.Add(0, []byte("abc"))
	if err != nil || !done {
		t.Fatal("out-of-order completion failed")
	}
	if string(buf) != "abcdef" {
		t.Fatalf("buf = %q", buf)
	}
}

// Overlapping and duplicate chunks are idempotent — the failover path
// re-sends chunks whose rail died before the ack — while out-of-range
// chunks stay rejected.
func TestReassemblyToleratesOverlapRejectsRange(t *testing.T) {
	buf := make([]byte, 10)
	r, _ := NewReassembly(3, buf, 10)
	r.Add(0, []byte("aaaa"))
	if done, err := r.Add(2, []byte("aabb")); err != nil || done {
		t.Fatalf("overlap: done=%v err=%v", done, err)
	}
	if r.Received() != 6 {
		t.Fatalf("received %d after overlapping add, want 6", r.Received())
	}
	if done, err := r.Add(0, []byte("aaaa")); err != nil || done {
		t.Fatalf("exact duplicate: done=%v err=%v", done, err)
	}
	if r.Received() != 6 {
		t.Fatalf("received %d after duplicate, want 6", r.Received())
	}
	done, err := r.Add(6, []byte("cccc"))
	if err != nil || !done {
		t.Fatalf("final add: done=%v err=%v", done, err)
	}
	if string(buf) != "aaaabbcccc" {
		t.Fatalf("buf %q", buf)
	}
	if _, err := r.Add(8, []byte("ccc")); err == nil {
		t.Fatal("out-of-range accepted")
	}
	if _, err := r.Add(-1, []byte("x")); err == nil {
		t.Fatal("negative offset accepted")
	}
}

// A chunk bridging two disjoint received ranges counts only its fresh
// bytes (the resplit-after-resplit shape of double failover).
func TestReassemblyBridgingChunk(t *testing.T) {
	buf := make([]byte, 12)
	r, _ := NewReassembly(9, buf, 12)
	r.Add(0, []byte("abcd"))
	r.Add(8, []byte("ijkl"))
	if r.Received() != 8 {
		t.Fatalf("received %d", r.Received())
	}
	done, err := r.Add(2, []byte("cdefghij"))
	if err != nil || !done {
		t.Fatalf("bridge: done=%v err=%v", done, err)
	}
	if string(buf) != "abcdefghijkl" {
		t.Fatalf("buf %q", buf)
	}
}

func TestReassemblyBufferTooSmall(t *testing.T) {
	if _, err := NewReassembly(4, make([]byte, 3), 10); err == nil {
		t.Fatal("small buffer accepted")
	}
}

func TestReassemblyZeroLength(t *testing.T) {
	r, err := NewReassembly(5, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Done() {
		t.Fatal("zero-length message should be immediately done")
	}
}

// Property: eager encode/decode round-trips arbitrary packet sets.
func TestPropertyEagerRoundTrip(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(n8%16) + 1
		pkts := make([]Packet, n)
		for i := range pkts {
			payload := make([]byte, rng.Intn(512))
			rng.Read(payload)
			pkts[i] = Packet{Tag: rng.Uint32(), MsgID: rng.Uint64(), Payload: payload}
		}
		dec, err := DecodeEager(EncodeEager(uint8(rng.Intn(4)), pkts))
		if err != nil || len(dec) != n {
			return false
		}
		for i := range pkts {
			if dec[i].Tag != pkts[i].Tag || dec[i].MsgID != pkts[i].MsgID ||
				!bytes.Equal(dec[i].Payload, pkts[i].Payload) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: reassembly from any permutation of any partition reconstructs
// the original buffer.
func TestPropertyReassemblyAnyPermutation(t *testing.T) {
	f := func(seed int64, size16 uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		size := int(size16%4096) + 1
		orig := make([]byte, size)
		rng.Read(orig)
		// Random partition into chunks.
		var offs []int
		for off := 0; off < size; {
			l := rng.Intn(size/2+1) + 1
			if off+l > size {
				l = size - off
			}
			offs = append(offs, off)
			off += l
		}
		type chunk struct {
			off  int
			data []byte
		}
		chunks := make([]chunk, len(offs))
		for i, off := range offs {
			end := size
			if i+1 < len(offs) {
				end = offs[i+1]
			}
			chunks[i] = chunk{off, orig[off:end]}
		}
		rng.Shuffle(len(chunks), func(i, j int) { chunks[i], chunks[j] = chunks[j], chunks[i] })
		buf := make([]byte, size)
		r, err := NewReassembly(9, buf, size)
		if err != nil {
			return false
		}
		var done bool
		for _, c := range chunks {
			done, err = r.Add(c.off, c.data)
			if err != nil {
				return false
			}
		}
		return done && bytes.Equal(buf, orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: IOVec.Slice agrees with slicing the gathered buffer.
func TestPropertyIOVecSliceEquivalence(t *testing.T) {
	f := func(seed int64, off16, n16 uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		var v IOVec
		for i := 0; i < rng.Intn(6)+1; i++ {
			b := make([]byte, rng.Intn(64))
			rng.Read(b)
			v = append(v, b)
		}
		total := v.Len()
		if total == 0 {
			return true
		}
		off := int(off16) % total
		n := int(n16) % (total - off + 1)
		want := v.Gather()[off : off+n]
		got := v.Slice(off, n).Gather()
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Missing reports exactly the uncovered gaps of a queried range, and
// Mark commits externally copied ranges — the two halves of the
// engine's parallel striped copy.
func TestReassemblyMissingAndMark(t *testing.T) {
	re, err := NewReassembly(1, make([]byte, 100), 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := re.Missing(10, 20); len(got) != 1 || got[0] != (Span{10, 30}) {
		t.Fatalf("fresh range Missing = %v", got)
	}
	if done, err := re.Mark(10, 20); err != nil || done {
		t.Fatalf("Mark(10,20) done=%v err=%v", done, err)
	}
	if re.Received() != 20 {
		t.Fatalf("received %d", re.Received())
	}
	// Query overlapping the covered middle: two gaps.
	if got := re.Missing(0, 50); len(got) != 2 || got[0] != (Span{0, 10}) || got[1] != (Span{30, 50}) {
		t.Fatalf("split Missing = %v", got)
	}
	// Fully covered range: no gaps.
	if got := re.Missing(12, 10); got != nil {
		t.Fatalf("covered Missing = %v", got)
	}
	// Out-of-range queries clamp; out-of-range Mark errors.
	if got := re.Missing(90, 20); len(got) != 1 || got[0] != (Span{90, 100}) {
		t.Fatalf("clamped Missing = %v", got)
	}
	if _, err := re.Mark(90, 20); err == nil {
		t.Fatal("oversized Mark accepted")
	}
	if re.Total() != 100 {
		t.Fatalf("total %d", re.Total())
	}
	// Duplicate Mark counts nothing twice.
	re.Mark(10, 20)
	if re.Received() != 20 {
		t.Fatalf("duplicate Mark inflated received to %d", re.Received())
	}
	re.Mark(0, 10)
	re.Mark(30, 70)
	if done := re.Done(); !done {
		t.Fatal("not done after full coverage")
	}
}

// Property: interleaving Add and Mark over random chunks converges to
// done exactly when every byte is covered, with received monotone.
func TestReassemblyMarkAddEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 50; iter++ {
		total := rng.Intn(500) + 1
		ref := make([]byte, total)
		rng.Read(ref)
		buf := make([]byte, total)
		re, _ := NewReassembly(7, buf, total)
		for !re.Done() {
			off := rng.Intn(total)
			n := rng.Intn(total-off) + 1
			if rng.Intn(2) == 0 {
				if _, err := re.Add(off, ref[off:off+n]); err != nil {
					t.Fatal(err)
				}
			} else {
				// Mark path: the caller copies first, as the engine does.
				copy(buf[off:off+n], ref[off:off+n])
				if _, err := re.Mark(off, n); err != nil {
					t.Fatal(err)
				}
			}
		}
		if re.Received() != total {
			t.Fatalf("received %d of %d", re.Received(), total)
		}
		if !bytes.Equal(buf, ref) {
			t.Fatal("payload corrupted")
		}
	}
}
