package telemetry

import (
	"testing"
	"time"

	"repro/internal/rt"
	"repro/internal/strategy"
)

// fakeEnv is a minimal rt.Env with a settable clock: the tracker only
// consumes Now().
type fakeEnv struct {
	now time.Duration
}

func (e *fakeEnv) Now() time.Duration          { return e.now }
func (e *fakeEnv) Go(string, func(rt.Ctx))     { panic("unused") }
func (e *fakeEnv) After(time.Duration, func()) { panic("unused") }
func (e *fakeEnv) NewEvent() rt.Event          { panic("unused") }
func (e *fakeEnv) NewQueue() rt.Queue          { panic("unused") }
func (e *fakeEnv) NewResource(int) rt.Resource { panic("unused") }
func (e *fakeEnv) IsSim() bool                 { return true }

// linEst is a linear prior: alpha + beta*n.
type linEst struct {
	alpha time.Duration
	beta  float64 // ns per byte
}

func (l linEst) Estimate(n int) time.Duration {
	return l.alpha + time.Duration(l.beta*float64(n))
}

func (l linEst) SizeFor(d time.Duration, max int) int {
	if max <= 0 {
		max = 64 << 20
	}
	if d <= l.alpha {
		return 0
	}
	n := int(float64(d-l.alpha) / l.beta)
	if n > max {
		return max
	}
	return n
}

func newTestTracker(t *testing.T, env rt.Env, prior strategy.Estimator) *Tracker {
	t.Helper()
	tr, err := NewTracker(env, Config{Peers: 2, Rails: 2, WarmupObs: 4}, []strategy.Estimator{prior, prior})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestEstimatorColdStartUsesPrior(t *testing.T) {
	prior := linEst{alpha: 10 * time.Microsecond, beta: 1}
	tr := newTestTracker(t, &fakeEnv{}, prior)
	est := tr.Estimator(1, 0, prior)
	for _, n := range []int{4, 1 << 10, 1 << 20} {
		if got, want := est.Estimate(n), prior.Estimate(n); got != want {
			t.Fatalf("cold Estimate(%d) = %v, want prior %v", n, got, want)
		}
	}
	if got, want := est.SizeFor(time.Millisecond, 0), prior.SizeFor(time.Millisecond, 0); got != want {
		t.Fatalf("cold SizeFor = %d, want prior %d", got, want)
	}
}

func TestEstimatorWarmsToObservations(t *testing.T) {
	prior := linEst{alpha: 10 * time.Microsecond, beta: 1}
	env := &fakeEnv{}
	tr := newTestTracker(t, env, prior)
	est := tr.Estimator(1, 0, prior)
	// Observe a rail that is 10x slower than the prior says, across two
	// size classes so the fit has a real slope.
	for i := 0; i < 20; i++ {
		env.now += time.Millisecond
		tr.Observe(1, 0, 1<<10, prior.Estimate(1<<10)*10)
		tr.Observe(1, 0, 1<<16, prior.Estimate(1<<16)*10)
	}
	got := est.Estimate(1 << 16)
	want := prior.Estimate(1<<16) * 10
	if got < want*7/10 || got > want*13/10 {
		t.Fatalf("warm Estimate = %v, want about %v (prior was %v)", got, want, prior.Estimate(1<<16))
	}
	// SizeFor must invert Estimate (monotone).
	d := est.Estimate(32 << 10)
	n := est.SizeFor(d, 1<<20)
	if n < 28<<10 || n > 36<<10 {
		t.Fatalf("SizeFor(Estimate(32KB)) = %d, want about 32768", n)
	}
	if tr.Stats().Observations != 40 {
		t.Fatalf("Observations = %d, want 40", tr.Stats().Observations)
	}
}

func TestDriftRefitBumpsEpoch(t *testing.T) {
	prior := linEst{alpha: 10 * time.Microsecond, beta: 1}
	env := &fakeEnv{}
	tr := newTestTracker(t, env, prior)
	// Establish a stable fit.
	for i := 0; i < 12; i++ {
		env.now += time.Millisecond
		tr.Observe(1, 0, 1<<20, prior.Estimate(1<<20))
	}
	epoch0 := tr.Epoch()
	// The rail slows 10x: the drift detector must refit and publish a
	// new epoch, and with sustained slow observations the estimate must
	// converge on the new level (successive refits fold more slow cells
	// in while the old fast ones decay).
	for i := 0; i < 30; i++ {
		env.now += time.Millisecond
		tr.Observe(1, 0, 1<<20, prior.Estimate(1<<20)*10)
	}
	if tr.Epoch() == epoch0 {
		t.Fatal("epoch never bumped after sustained 10x slowdown")
	}
	if tr.Stats().Refits == 0 {
		t.Fatal("no refit counted")
	}
	// And the estimate must now reflect the slowdown (single size class:
	// level-shift fit with the prior's slope).
	est := tr.Estimator(1, 0, prior)
	got, want := est.Estimate(1<<20), prior.Estimate(1<<20)*10
	if got < want/2 || got > want*2 {
		t.Fatalf("post-drift Estimate = %v, want about %v", got, want)
	}
}

func TestBumpEpochManual(t *testing.T) {
	prior := linEst{alpha: time.Microsecond, beta: 1}
	tr := newTestTracker(t, &fakeEnv{}, prior)
	e0 := tr.Epoch()
	tr.BumpEpoch()
	if tr.Epoch() != e0+1 {
		t.Fatalf("BumpEpoch: %d -> %d", e0, tr.Epoch())
	}
}

func TestObserveIgnoresOutOfRange(t *testing.T) {
	prior := linEst{alpha: time.Microsecond, beta: 1}
	tr := newTestTracker(t, &fakeEnv{}, prior)
	tr.Observe(-1, 0, 10, time.Second)
	tr.Observe(0, 5, 10, time.Second)
	tr.Observe(0, 0, 10, -time.Second)
	if tr.Stats().Observations != 0 {
		t.Fatalf("out-of-range observations counted: %d", tr.Stats().Observations)
	}
}

func TestPlanChunksForCoverAnySize(t *testing.T) {
	chunks := []strategy.Chunk{
		{Rail: 0, Offset: 0, Size: 600},
		{Rail: 2, Offset: 600, Size: 300},
		{Rail: 1, Offset: 900, Size: 100},
	}
	p := NewPlan("hetero-split", chunks, 1000)
	for _, n := range []int{1, 7, 999, 1000, 1001, 1 << 20} {
		got := p.ChunksFor(n)
		if err := strategy.Validate(n, got); err != nil {
			t.Fatalf("ChunksFor(%d): %v", n, err)
		}
	}
	// Shares map back proportionally at scale.
	big := p.ChunksFor(1 << 20)
	if big[0].Rail != 0 || big[0].Size < (1<<20)*55/100 {
		t.Fatalf("scaled first chunk wrong: %+v", big[0])
	}
}

func TestCacheHitMissEvict(t *testing.T) {
	c := NewCache(cacheShards) // one entry per stripe
	k := PlanKey{Dest: 1, Bucket: 20, Epoch: 3}
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	plan := NewPlan("single-rail", []strategy.Chunk{{Rail: 0, Size: 100}}, 100)
	c.Put(k, plan)
	if got, ok := c.Get(k); !ok || got != plan {
		t.Fatal("miss after Put")
	}
	// Filling the same stripe evicts FIFO.
	var sameStripe []PlanKey
	for e := uint64(0); len(sameStripe) < 3; e++ {
		k2 := PlanKey{Dest: 1, Bucket: 20, Epoch: 100 + e}
		if c.shard(k2) == c.shard(k) {
			sameStripe = append(sameStripe, k2)
			c.Put(k2, plan)
		}
	}
	if _, ok := c.Get(k); ok {
		t.Fatal("oldest entry not evicted")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 1 hit / 2 misses", st)
	}
	if st.Entries == 0 {
		t.Fatal("entries not tracked")
	}
}

// Two rails in one path group, transfers overlapping fully: the
// observer must attribute the overlap to contention and record roughly
// the equal-share duration, while an ungrouped tracker records the raw
// inflated one.
func TestContentionAttributionDiscountsOverlap(t *testing.T) {
	prior := linEst{alpha: 10 * time.Microsecond, beta: 1}
	env := &fakeEnv{}
	shared, err := NewTracker(env, Config{Peers: 2, Rails: 2, WarmupObs: 4, PathGroup: []int{0, 0}},
		[]strategy.Estimator{prior, prior})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := NewTracker(env, Config{Peers: 2, Rails: 2, WarmupObs: 4},
		[]strategy.Estimator{prior, prior})
	if err != nil {
		t.Fatal(err)
	}

	// Striping regime: both rails carry a 64 KiB chunk at the same time,
	// each observed at 2ms — twice the uncontended 1ms, because the
	// common path split its bandwidth.
	const bytes = 64 << 10
	const inflated = 2 * time.Millisecond
	for i := 0; i < 8; i++ {
		env.now += 10 * time.Millisecond
		// Rail 0 completes first, rail 1 completes just after; their
		// spans overlap almost entirely.
		shared.ObserveTransfer(1, 0, bytes, inflated)
		raw.ObserveTransfer(1, 0, bytes, inflated)
		env.now += 10 * time.Microsecond
		shared.ObserveTransfer(1, 1, bytes, inflated)
		raw.ObserveTransfer(1, 1, bytes, inflated)
	}
	if shared.ContentionAdjusted() == 0 {
		t.Fatal("no observation was contention-adjusted despite full overlap")
	}

	adjEst := shared.Estimator(1, 1, prior).Estimate(bytes)
	rawEst := raw.Estimator(1, 1, prior).Estimate(bytes)
	if adjEst >= rawEst {
		t.Fatalf("contention attribution did not lower the estimate: adjusted %v, raw %v", adjEst, rawEst)
	}
	// Full overlap with one group-mate halves the attributed duration;
	// allow slack for the blend with the prior and the first round
	// (rail 1's first span has no prior rail-0 span fully inside it).
	if adjEst > rawEst*3/4 {
		t.Fatalf("adjusted estimate %v too close to raw %v, want about half", adjEst, rawEst)
	}

	// Ungrouped rails must never be adjusted.
	if raw.ContentionAdjusted() != 0 {
		t.Fatalf("ungrouped tracker adjusted %d observations", raw.ContentionAdjusted())
	}
}

// The per-path planes are independent of the combined estimate and of
// each other, and reproduce their own priors when cold.
func TestPathPlanesAreIndependent(t *testing.T) {
	eagerPrior := linEst{alpha: 5 * time.Microsecond, beta: 1}
	rdvPrior := linEst{alpha: 50 * time.Microsecond, beta: 0.5}
	combinedPrior := linEst{alpha: 10 * time.Microsecond, beta: 1}
	env := &fakeEnv{}
	tr := newTestTracker(t, env, combinedPrior)

	// Cold: both planes are their priors.
	if got := tr.PathEstimator(PathEager, 1, 0, eagerPrior).Estimate(1 << 10); got != eagerPrior.Estimate(1<<10) {
		t.Fatalf("cold eager plane %v, want prior %v", got, eagerPrior.Estimate(1<<10))
	}
	if got := tr.PathEstimator(PathRdv, 1, 0, rdvPrior).Estimate(1 << 10); got != rdvPrior.Estimate(1<<10) {
		t.Fatalf("cold rdv plane %v, want prior %v", got, rdvPrior.Estimate(1<<10))
	}

	// Warm only the eager plane, 10x the prior's cost.
	for i := 0; i < 8; i++ {
		env.now += time.Millisecond
		tr.ObservePath(PathEager, 1, 0, 1<<10, 10*eagerPrior.Estimate(1<<10))
	}
	warmEager := tr.PathEstimator(PathEager, 1, 0, eagerPrior).Estimate(1 << 10)
	if warmEager < 5*eagerPrior.Estimate(1<<10) {
		t.Fatalf("eager plane did not warm to the observations: %v", warmEager)
	}
	if got := tr.PathEstimator(PathRdv, 1, 0, rdvPrior).Estimate(1 << 10); got != rdvPrior.Estimate(1<<10) {
		t.Fatalf("rdv plane moved (%v) when only the eager plane was fed", got)
	}
	if got := tr.Estimator(1, 0, combinedPrior).Estimate(1 << 10); got != combinedPrior.Estimate(1<<10) {
		t.Fatalf("combined estimate moved (%v) when only a plane was fed", got)
	}
}
