package telemetry

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/strategy"
)

// PlanKey identifies one cached scheduling decision: sends to one
// destination in one size bucket under one estimate epoch. The epoch in
// the key is what keeps the cache coherent without invalidation
// machinery — when estimates are re-fit or the rail set changes, the
// epoch moves and every old entry simply stops being found.
type PlanKey struct {
	// Dest is the destination node.
	Dest int
	// Bucket is the size class (SizeBucket) of the message.
	Bucket int
	// Epoch is the Tracker epoch the plan was computed under.
	Epoch uint64
}

// RailShare is one rail's fraction of a cached plan.
type RailShare struct {
	// Rail is the rail index.
	Rail int
	// Frac is the fraction of the message bytes placed on it.
	Frac float64
}

// Plan is one cached decision: the split expressed as per-rail
// fractions (so it re-scales to any size in the bucket) plus the name
// of the strategy that produced it.
type Plan struct {
	// Mode names the deciding strategy ("hetero-split", "single-rail",
	// ...), surfaced by nmping's plan printing.
	Mode string
	// Shares is the per-rail distribution, in offset order.
	Shares []RailShare
}

// NewPlan captures a split decision as a reusable plan: chunk sizes
// become fractions of n.
func NewPlan(mode string, chunks []strategy.Chunk, n int) *Plan {
	p := &Plan{Mode: mode}
	if n <= 0 {
		return p
	}
	for _, c := range chunks {
		p.Shares = append(p.Shares, RailShare{Rail: c.Rail, Frac: float64(c.Size) / float64(n)})
	}
	return p
}

// ChunksFor scales the plan to an n-byte message, producing contiguous
// chunks that exactly cover [0, n): offsets are cumulative rounded
// fraction boundaries and the last chunk absorbs the remainder.
func (p *Plan) ChunksFor(n int) []strategy.Chunk {
	if n <= 0 || len(p.Shares) == 0 {
		return nil
	}
	chunks := make([]strategy.Chunk, 0, len(p.Shares))
	off := 0
	cum := 0.0
	for i, s := range p.Shares {
		cum += s.Frac
		end := int(math.Round(cum * float64(n)))
		if i == len(p.Shares)-1 || end > n {
			end = n
		}
		if size := end - off; size > 0 {
			chunks = append(chunks, strategy.Chunk{Rail: s.Rail, Offset: off, Size: size})
			off = end
		}
	}
	if off < n {
		if len(chunks) == 0 {
			return []strategy.Chunk{{Rail: p.Shares[0].Rail, Offset: 0, Size: n}}
		}
		chunks[len(chunks)-1].Size += n - off
	}
	return chunks
}

// cacheShards is the stripe count: plenty for one engine's workers to
// hit disjoint locks (the per-core worker count is at most a few dozen).
const cacheShards = 16

// CacheStats is a snapshot of plan-cache activity.
type CacheStats struct {
	// Hits and Misses count lookups; a hit skips re-planning entirely.
	Hits, Misses uint64
	// Evictions counts plans dropped by the FIFO capacity policy —
	// stale-epoch entries age out through here too. The baseline any
	// replacement-policy change (SIEVE, S3-FIFO) must beat.
	Evictions uint64
	// Entries is the current number of cached plans (stale epochs
	// included until evicted).
	Entries int
	// Shards is the per-stripe breakdown, indexed by shard. A single hot
	// stripe (every flow hashing together) reads as one shard absorbing
	// all the traffic here.
	Shards []CacheShardStats
}

// CacheShardStats is one stripe's activity.
type CacheShardStats struct {
	Hits, Misses, Evictions uint64
	Entries                 int
}

// Cache is the lock-striped hot plan cache: the common case — repeated
// sends of similar sizes to the same peer — looks its plan up by
// (dest, bucket, epoch) and skips the strategy entirely. Each stripe is
// an independently locked map with FIFO eviction, so concurrent workers
// planning for different destinations do not contend.
type Cache struct {
	shards  [cacheShards]cacheShard
	perCap  int
	entries atomic.Int64
}

type cacheShard struct {
	// Lookup counters are per stripe (and atomic, updated outside the
	// stripe lock): the metrics plane exports them per shard, so a
	// pathological hash distribution is visible in the field instead of
	// averaged away in a global pair.
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64

	mu    sync.Mutex
	plans map[PlanKey]*Plan
	fifo  []PlanKey
}

// NewCache builds a plan cache bounded to roughly `capacity` entries
// (default 1024, minimum one per stripe).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = 1024
	}
	per := capacity / cacheShards
	if per < 1 {
		per = 1
	}
	c := &Cache{perCap: per}
	for i := range c.shards {
		c.shards[i].plans = make(map[PlanKey]*Plan, per)
	}
	return c
}

func (c *Cache) shard(k PlanKey) *cacheShard {
	h := uint64(2166136261)
	for _, v := range [...]uint64{uint64(k.Dest), uint64(k.Bucket), k.Epoch} {
		h = (h ^ v) * 16777619
	}
	return &c.shards[h%cacheShards]
}

// Get looks a plan up, counting the hit or miss on the key's stripe.
func (c *Cache) Get(k PlanKey) (*Plan, bool) {
	s := c.shard(k)
	s.mu.Lock()
	p, ok := s.plans[k]
	s.mu.Unlock()
	if ok {
		s.hits.Add(1)
		return p, true
	}
	s.misses.Add(1)
	return nil, false
}

// Put stores a plan, evicting the stripe's oldest entry when full.
// Stale-epoch entries age out this way — no sweeper needed.
func (c *Cache) Put(k PlanKey, p *Plan) {
	s := c.shard(k)
	s.mu.Lock()
	if _, exists := s.plans[k]; !exists {
		for len(s.fifo) >= c.perCap {
			old := s.fifo[0]
			s.fifo = s.fifo[1:]
			delete(s.plans, old)
			s.evictions.Add(1)
			c.entries.Add(-1)
		}
		s.fifo = append(s.fifo, k)
		c.entries.Add(1)
	}
	s.plans[k] = p
	s.mu.Unlock()
}

// NumShards returns the stripe count (the metrics plane registers one
// child per stripe).
func (c *Cache) NumShards() int { return cacheShards }

// ShardStats returns one stripe's counters; hot-path cheap enough for
// scrape-time func metrics (three atomic loads plus one short lock).
func (c *Cache) ShardStats(i int) CacheShardStats {
	s := &c.shards[i]
	s.mu.Lock()
	entries := len(s.plans)
	s.mu.Unlock()
	return CacheShardStats{
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Evictions: s.evictions.Load(),
		Entries:   entries,
	}
}

// Stats returns a snapshot of the cache counters, totals plus the
// per-shard breakdown.
func (c *Cache) Stats() CacheStats {
	st := CacheStats{
		Entries: int(c.entries.Load()),
		Shards:  make([]CacheShardStats, cacheShards),
	}
	for i := range c.shards {
		ss := c.ShardStats(i)
		st.Shards[i] = ss
		st.Hits += ss.Hits
		st.Misses += ss.Misses
		st.Evictions += ss.Evictions
	}
	return st
}
