// Package telemetry is the online measurement subsystem of the engine:
// it turns every completed transfer unit into an observation and keeps
// the per-rail cost estimates the strategies plan with *live* instead of
// frozen at start-up.
//
// The paper's splitter decisions (Fig 2, eq. 1) consume per-rail
// latency/bandwidth estimators sampled once at launch. That table goes
// stale the moment a TCP rail congests, a peer moves, or a NIC recovers
// from failover. This package closes the loop:
//
//   - Tracker keeps, per (peer, rail) pair, an exponentially decayed
//     set of size-class cells (weight, mean size, mean duration) — the
//     per-size-class bandwidth/latency EWMAs. Observations arrive from
//     two sources: the fabric's transfer layer (write/occupancy times,
//     via the fabric.Telemetry hook) and the engine's ack path (unit
//     round trips, recorded on the progress workers).
//   - A drift detector compares every observation against the current
//     linear fit (the paper's α+βn cost model) and re-fits by weighted
//     least squares over the cells when observations persistently
//     diverge. Each refit bumps the Tracker epoch.
//   - RailEstimator adapts a (peer, rail) pair to strategy.Estimator,
//     blending the static sampled prior (the cold-start table) with the
//     live fit as observations accumulate — so with no traffic the
//     paper's behaviour is reproduced exactly, and with traffic the
//     estimates track the wire.
//
// Reads on the decision path (Estimate/SizeFor/Epoch) touch only
// atomics; observation writes take one short per-pair mutex and run on
// progress workers or transport goroutines, never on the caller of
// Isend. The plan cache in front of the strategies lives in cache.go.
package telemetry

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rt"
	"repro/internal/strategy"
)

// numClasses bounds the size-class ladder: class(n) = bits.Len(n), so
// class 40 covers messages up to 1 TiB — beyond any wire format here.
const numClasses = 40

// class returns the size class (log2 bucket) of an n-byte transfer.
func class(n int) int {
	c := 0
	for v := uint64(n); v != 0; v >>= 1 {
		c++
	}
	if c >= numClasses {
		c = numClasses - 1
	}
	return c
}

// SizeBucket exposes the size-class mapping for plan-cache keys: sends
// of similar size share a bucket, so a repeated workload re-plans once
// per epoch, not once per message.
func SizeBucket(n int) int { return class(n) }

// Path discriminates the protocol regime an observation measured. The
// combined (path-less) estimate drives the split strategies; the
// per-path planes let the engine re-derive the eager/rendezvous
// threshold from live measurements — the regimes have different cost
// shapes (PIO copy vs. handshake plus DMA), so their crossover moves
// when only one of them degrades.
type Path int

const (
	// PathEager is an eager-container measurement (one-way PIO-regime
	// transfer time, from the container's ack round trip).
	PathEager Path = iota
	// PathRdv is a whole-rendezvous measurement on a single rail:
	// handshake plus transfer plus completion, comparable to what the
	// start-up sampling's rendezvous curve measured.
	PathRdv

	numPaths
)

// Config tunes a Tracker.
type Config struct {
	// Peers and Rails dimension the (peer, rail) pair table.
	Peers, Rails int
	// EagerPrior and RdvPrior, when non-nil, hold each protocol
	// regime's own sampled curve per rail. They are the slope donors
	// when a plane refit has a single populated size class: borrowing
	// the combined (min-envelope) prior's slope there would fit, say,
	// the rendezvous plane with the eager curve's shape and derive a
	// wrong crossover for exactly the repeated-size workloads the live
	// threshold targets. Missing entries fall back to the combined
	// prior. Entries may be nil (a rail without an eager regime).
	EagerPrior, RdvPrior []strategy.Estimator
	// PathGroup assigns each rail to a shared host path (same id = the
	// rails contend on one underlying resource, e.g. every loopback TCP
	// rail rides the kernel's one loopback queue; a shared-memory rail
	// has its own ring). Negative means unshared. When transfers on
	// group-mates overlap in time, the observer attributes the overlap
	// to contention and discounts the observed duration — without this,
	// striping over loopback rails teaches the tracker that every rail
	// is slow exactly when the plans stripe hardest. Nil disables the
	// attribution entirely.
	PathGroup []int
	// HalfLife is the decay half-life of the observation cells: an
	// observation half as old as this counts double. Default 250ms (of
	// the environment clock — virtual on the simulator).
	HalfLife time.Duration
	// WarmupObs is the observation count at which a pair's live fit is
	// fully trusted over the static prior (default 8).
	WarmupObs int
	// DriftThreshold is the relative-error EWMA beyond which the linear
	// fit is declared stale and re-fit (default 0.25).
	DriftThreshold float64
	// MinRefitObs is the minimum number of observations between refits
	// of one pair, bounding refit churn (default 6).
	MinRefitObs int
}

func (c *Config) defaults() {
	if c.HalfLife <= 0 {
		c.HalfLife = 250 * time.Millisecond
	}
	if c.WarmupObs <= 0 {
		c.WarmupObs = 8
	}
	if c.DriftThreshold <= 0 {
		c.DriftThreshold = 0.25
	}
	if c.MinRefitObs <= 0 {
		c.MinRefitObs = 6
	}
}

// cell is one size class of one (peer, rail) pair: exponentially
// decayed sums, so mean size = sizeSum/w and mean duration = durSum/w.
type cell struct {
	w       float64
	sizeSum float64
	durSum  float64 // nanoseconds
	at      time.Duration
}

// pair is the live state of one (peer, rail) pair. The mutex guards the
// cells and fit bookkeeping; the fitted coefficients and warmth are
// atomics so the decision path never locks.
type pair struct {
	mu          sync.Mutex
	cells       [numClasses]cell
	obsSinceFit int
	drift       float64 // EWMA of |observed-fit|/fit
	fitted      bool

	alphaNS atomic.Int64  // fitted latency, nanoseconds
	betaFP  atomic.Uint64 // fitted ns/byte as float64 bits
	warmth  atomic.Uint32 // observations folded in (saturating)
}

// Tracker is one node's telemetry state: a (peer, rail) pair table (plus
// one plane per protocol path), the global epoch, and counters.
type Tracker struct {
	env    rt.Env
	cfg    Config
	priors []strategy.Estimator // per rail: the cold-start sampled table

	pairs  []pair           // peer*Rails + rail: the combined estimate
	planes [numPaths][]pair // per-path regimes (eager threshold derivation)

	groups map[int]*hostPath // shared-path contention bookkeeping

	epoch     atomic.Uint64
	refits    atomic.Uint64
	obs       atomic.Uint64
	contended atomic.Uint64
}

// hostPath tracks the recent transfer spans of one shared host path so
// concurrent-transfer overlap can be attributed to contention.
type hostPath struct {
	mu     sync.Mutex
	recent []transferSpan
	next   int
}

// transferSpan is one observed transfer's time interval on a rail.
type transferSpan struct {
	start, end time.Duration
	rail       int
}

// pathSpans bounds the per-group span memory: overlap only matters
// against transfers recent enough to still be in flight together.
const pathSpans = 64

// Stats is a snapshot of a Tracker's counters.
type Stats struct {
	// Observations is the number of transfer measurements folded in.
	Observations uint64
	// Refits counts linear-model refits triggered by the drift detector.
	Refits uint64
	// Epoch is the current estimate epoch: it bumps on every refit and
	// on every rail-set (health) change, invalidating cached plans.
	Epoch uint64
}

// NewTracker builds a tracker for a node that talks to cfg.Peers peers
// over cfg.Rails rails. priors holds one static estimator per rail (the
// start-up sampling table) used until live observations warm the pair
// up — and as the slope prior when only one size class has been seen.
func NewTracker(env rt.Env, cfg Config, priors []strategy.Estimator) (*Tracker, error) {
	cfg.defaults()
	if cfg.Peers < 1 || cfg.Rails < 1 {
		return nil, fmt.Errorf("telemetry: need peers and rails >= 1, got %d/%d", cfg.Peers, cfg.Rails)
	}
	if len(priors) != cfg.Rails {
		return nil, fmt.Errorf("telemetry: %d priors for %d rails", len(priors), cfg.Rails)
	}
	if cfg.PathGroup != nil && len(cfg.PathGroup) != cfg.Rails {
		return nil, fmt.Errorf("telemetry: %d path groups for %d rails", len(cfg.PathGroup), cfg.Rails)
	}
	t := &Tracker{
		env:    env,
		cfg:    cfg,
		priors: priors,
		pairs:  make([]pair, cfg.Peers*cfg.Rails),
		groups: make(map[int]*hostPath),
	}
	for p := range t.planes {
		t.planes[p] = make([]pair, cfg.Peers*cfg.Rails)
	}
	for _, g := range cfg.PathGroup {
		if g >= 0 && t.groups[g] == nil {
			t.groups[g] = &hostPath{recent: make([]transferSpan, 0, pathSpans)}
		}
	}
	return t, nil
}

// Peers returns the tracked peer count.
func (t *Tracker) Peers() int { return t.cfg.Peers }

// Rails returns the tracked rail count.
func (t *Tracker) Rails() int { return t.cfg.Rails }

// Epoch returns the current estimate epoch.
func (t *Tracker) Epoch() uint64 { return t.epoch.Load() }

// BumpEpoch advances the epoch without a refit — the engine calls it
// when the usable rail set changes (a rail died or recovered), so every
// cached plan from the old rail set goes stale at once.
func (t *Tracker) BumpEpoch() { t.epoch.Add(1) }

// Stats returns a snapshot of the tracker counters.
func (t *Tracker) Stats() Stats {
	return Stats{
		Observations: t.obs.Load(),
		Refits:       t.refits.Load(),
		Epoch:        t.epoch.Load(),
	}
}

// Coeffs is a snapshot of one (peer, rail) pair's fitted cost model
// α + β·n: latency, per-byte cost and how warmed-up the fit is.
type Coeffs struct {
	// Alpha is the fitted fixed latency.
	Alpha time.Duration
	// BetaNSPerByte is the fitted marginal cost in nanoseconds per byte
	// (bandwidth ≈ 1e9/Beta bytes per second when Beta > 0).
	BetaNSPerByte float64
	// Warmth is how many observations the fit has folded in (saturating
	// at the configured warm-up count).
	Warmth int
}

// FittedCoeffs returns the current fitted coefficients for a pair —
// three atomic loads, cheap enough for scrape-time gauge funcs. Zero
// values mean the pair has never been observed.
func (t *Tracker) FittedCoeffs(peer, rail int) Coeffs {
	if peer < 0 || peer >= t.cfg.Peers || rail < 0 || rail >= t.cfg.Rails {
		return Coeffs{}
	}
	p := t.pair(peer, rail)
	return Coeffs{
		Alpha:         time.Duration(p.alphaNS.Load()),
		BetaNSPerByte: math.Float64frombits(p.betaFP.Load()),
		Warmth:        int(p.warmth.Load()),
	}
}

func (t *Tracker) pair(peer, rail int) *pair {
	return &t.pairs[peer*t.cfg.Rails+rail]
}

func (t *Tracker) planePair(path Path, peer, rail int) *pair {
	return &t.planes[path][peer*t.cfg.Rails+rail]
}

// ContentionAdjusted counts fabric observations whose duration was
// discounted for shared-path overlap (diagnostics and tests).
func (t *Tracker) ContentionAdjusted() uint64 { return t.contended.Load() }

// ObserveTransfer implements the fabric.Telemetry hook: the transfer
// layer reports one completed wire transfer (write duration on livenet,
// ring copy time on shmnet, modeled occupancy plus wire latency on
// simnet). When the rail shares a host path with others (PathGroup),
// the duration is first discounted by the time this transfer overlapped
// concurrent transfers on its group-mates: on one-host TCP every rail
// rides the same kernel loopback queue, so under striping each rail's
// raw measurement includes the others' traffic — attributing that
// inflation to the rail itself would teach the tracker that striping
// makes every rail slow, exactly the regime where estimates matter.
func (t *Tracker) ObserveTransfer(peer, rail, bytes int, d time.Duration) {
	if rail >= 0 && rail < len(t.cfg.PathGroup) {
		if g := t.cfg.PathGroup[rail]; g >= 0 {
			d = t.attributeContention(t.groups[g], rail, d)
		}
	}
	t.Observe(peer, rail, bytes, d)
}

// attributeContention discounts a transfer's duration by its overlap
// with concurrent transfers on other rails of the same host path. With
// overlapSum = total concurrent-transfer time from group-mates inside
// [start, end], the adjusted duration is d² / (d + overlapSum): no
// overlap leaves d unchanged, full overlap with k concurrent
// group-mates yields d/(k+1) — the equal-share bandwidth model of a
// saturated common path.
func (t *Tracker) attributeContention(g *hostPath, rail int, d time.Duration) time.Duration {
	if g == nil || d <= 0 {
		return d
	}
	end := t.env.Now()
	start := end - d
	var overlap time.Duration
	g.mu.Lock()
	for _, s := range g.recent {
		if s.rail == rail {
			continue
		}
		lo, hi := max(start, s.start), min(end, s.end)
		if hi > lo {
			overlap += hi - lo
		}
	}
	span := transferSpan{start: start, end: end, rail: rail}
	if len(g.recent) < pathSpans {
		g.recent = append(g.recent, span)
	} else {
		g.recent[g.next] = span
		g.next = (g.next + 1) % pathSpans
	}
	g.mu.Unlock()
	if overlap <= 0 {
		return d
	}
	t.contended.Add(1)
	adj := time.Duration(float64(d) * float64(d) / float64(d+overlap))
	if adj < time.Nanosecond {
		adj = time.Nanosecond
	}
	return adj
}

// pathPrior returns the slope-donor prior of one regime plane: the
// regime's own sampled curve when configured, the combined prior
// otherwise.
func (t *Tracker) pathPrior(path Path, rail int) strategy.Estimator {
	var per []strategy.Estimator
	switch path {
	case PathEager:
		per = t.cfg.EagerPrior
	case PathRdv:
		per = t.cfg.RdvPrior
	}
	if rail < len(per) && per[rail] != nil {
		return per[rail]
	}
	return t.priors[rail]
}

// ObservePath folds one measured transfer into a per-path regime plane
// (and nothing else): the engine feeds eager-container times into
// PathEager and whole single-rail rendezvous times into PathRdv, from
// which the live eager threshold is derived. Same accounting rules as
// Observe.
func (t *Tracker) ObservePath(path Path, peer, rail, bytes int, d time.Duration) {
	if path < 0 || path >= numPaths {
		return
	}
	if peer < 0 || peer >= t.cfg.Peers || rail < 0 || rail >= t.cfg.Rails || bytes < 0 || d <= 0 {
		return
	}
	t.observeInto(t.planePair(path, peer, rail), t.pathPrior(path, rail), bytes, d)
}

// Observe folds one measured transfer into the (peer, rail) pair:
// bytes moved and the one-way duration observed. It runs on progress
// workers and transport goroutines; it never blocks beyond the pair's
// short mutex and never runs on the Isend caller.
func (t *Tracker) Observe(peer, rail, bytes int, d time.Duration) {
	if peer < 0 || peer >= t.cfg.Peers || rail < 0 || rail >= t.cfg.Rails || bytes < 0 || d <= 0 {
		return
	}
	t.observeInto(t.pair(peer, rail), t.priors[rail], bytes, d)
}

// observeInto is the shared accounting: decayed-cell update, drift
// detection, refit, warmth and epoch bookkeeping for one pair (combined
// or plane). prior donates the slope when the pair's data spans a
// single size class.
func (t *Tracker) observeInto(p *pair, prior strategy.Estimator, bytes int, d time.Duration) {
	now := t.env.Now()
	ns := float64(d.Nanoseconds())

	p.mu.Lock()
	c := &p.cells[class(bytes)]
	if c.w > 0 && now > c.at {
		// Exponential time decay: old observations fade with HalfLife.
		decay := math.Exp2(-float64(now-c.at) / float64(t.cfg.HalfLife))
		c.w *= decay
		c.sizeSum *= decay
		c.durSum *= decay
	}
	c.w++
	c.sizeSum += float64(bytes)
	c.durSum += ns
	c.at = now

	refit := false
	if p.fitted {
		pred := float64(p.alphaNS.Load()) + math.Float64frombits(p.betaFP.Load())*float64(bytes)
		if pred < 1 {
			pred = 1
		}
		rel := math.Abs(ns-pred) / pred
		p.drift = 0.75*p.drift + 0.25*rel
		p.obsSinceFit++
		refit = p.drift > t.cfg.DriftThreshold && p.obsSinceFit >= t.cfg.MinRefitObs
	} else {
		refit = true // first observations establish the initial fit
	}
	if refit {
		p.refit(t, prior)
	}
	p.mu.Unlock()

	// Warmth gates the prior-vs-live blend; when it crosses WarmupObs
	// the live fit has fully displaced the cold-start prior, so plans
	// cached against the prior-based estimates must go stale — even if
	// the fit itself never drifted (a *wrong prior* produces no drift:
	// the first fit already matches reality).
	if p.warmth.Add(1) == uint32(t.cfg.WarmupObs) {
		t.epoch.Add(1)
	}
	t.obs.Add(1)
}

// refit recomputes the linear α+βn fit from the decayed cells by
// weighted least squares; with a single populated size class the slope
// is borrowed from the prior so same-size workloads still adapt their
// level. The caller holds p.mu. Every fit — the initial one included —
// bumps the tracker epoch: estimates changed, so cached plans are
// stale (an epoch bump costs one cache miss per hot key; serving plans
// computed against superseded estimates costs real bandwidth).
func (p *pair) refit(t *Tracker, prior strategy.Estimator) {
	var sw, sx, sy, sxx, sxy float64
	populated := 0
	var lone *cell
	for i := range p.cells {
		c := &p.cells[i]
		if c.w <= 1e-9 {
			continue
		}
		populated++
		lone = c
		x := c.sizeSum / c.w
		y := c.durSum / c.w
		sw += c.w
		sx += c.w * x
		sy += c.w * y
		sxx += c.w * x * x
		sxy += c.w * x * y
	}
	if populated == 0 {
		return
	}
	var alpha, beta float64
	if populated == 1 {
		x := lone.sizeSum / lone.w
		y := lone.durSum / lone.w
		beta = priorSlope(prior, x)
		alpha = y - beta*x
	} else {
		den := sw*sxx - sx*sx
		if den <= 1e-9 {
			return
		}
		beta = (sw*sxy - sx*sy) / den
		alpha = (sy - beta*sx) / sw
		if beta < 0 {
			// A negative slope is measurement noise (bigger cannot be
			// faster); fall back to the level-shift fit at the weighted
			// mean point.
			beta = priorSlope(prior, sx/sw)
			alpha = sy/sw - beta*(sx/sw)
		}
	}
	// Guard against degenerate flat fits: noisy observations (e.g. rail
	// attribution under loopback contention) can push all cost into α
	// with β ≈ 0, and a flat estimate loses every SizeFor comparison —
	// HeteroSplit would discard the rail entirely and starve it of the
	// very observations that would rehabilitate it. Require at least
	// half the mean observed cost to be size-proportional, keeping the
	// fit through the weighted mean point.
	if xm, ym := sx/sw, sy/sw; xm > 0 && ym > 0 {
		if minBeta := 0.5 * ym / xm; beta < minBeta {
			beta = minBeta
			alpha = ym - beta*xm
		}
	}
	if alpha < 0 {
		alpha = 0
	}
	if beta < 0 {
		beta = 0
	}
	p.alphaNS.Store(int64(alpha))
	p.betaFP.Store(math.Float64bits(beta))
	p.fitted = true
	p.obsSinceFit = 0
	p.drift = 0
	t.refits.Add(1)
	t.epoch.Add(1)
}

// priorSlope extracts the prior's marginal cost per byte around size x
// (ns/byte), the slope borrowed when live data spans one size class.
func priorSlope(prior strategy.Estimator, x float64) float64 {
	n := int(x)
	if n < 1 {
		n = 1
	}
	d := prior.Estimate(2*n) - prior.Estimate(n)
	if d <= 0 {
		return 0
	}
	return float64(d.Nanoseconds()) / float64(n)
}

// RailEstimator adapts one (peer, rail) pair to strategy.Estimator:
// the static sampled prior warmed away by the live fit.
type RailEstimator struct {
	t     *Tracker
	p     *pair
	prior strategy.Estimator
}

// Estimator returns the live estimator of a (peer, rail) pair, backed
// by the given cold-start prior (the rail's sampled RailProfile).
func (t *Tracker) Estimator(peer, rail int, prior strategy.Estimator) *RailEstimator {
	return &RailEstimator{t: t, p: t.pair(peer, rail), prior: prior}
}

// PathEstimator returns the live estimator of one protocol regime of a
// (peer, rail) pair, backed by the regime's own prior (the sampled
// eager or rendezvous curve). With no plane observations it reproduces
// the prior exactly, so the derived eager threshold starts at the
// start-up table's and moves only as the regime is actually measured.
func (t *Tracker) PathEstimator(path Path, peer, rail int, prior strategy.Estimator) *RailEstimator {
	return &RailEstimator{t: t, p: t.planePair(path, peer, rail), prior: prior}
}

// weight returns how much the live fit is trusted: 0 with no
// observations, 1 from WarmupObs on.
func (e *RailEstimator) weight() float64 {
	w := float64(e.p.warmth.Load()) / float64(e.t.cfg.WarmupObs)
	if w > 1 {
		return 1
	}
	return w
}

// Estimate implements strategy.Estimator: the warmth-blended one-way
// prediction. Lock-free — two atomic loads plus the prior's table
// lookup.
func (e *RailEstimator) Estimate(n int) time.Duration {
	p := e.p
	w := e.weight()
	if w == 0 {
		return e.prior.Estimate(n)
	}
	live := time.Duration(p.alphaNS.Load()) +
		time.Duration(math.Float64frombits(p.betaFP.Load())*float64(n))
	if live < time.Nanosecond {
		live = time.Nanosecond
	}
	if w == 1 {
		return live
	}
	return time.Duration(w*float64(live) + (1-w)*float64(e.prior.Estimate(n)))
}

// SizeFor implements strategy.Estimator by binary search on Estimate,
// which is monotone (both the prior and the clamped linear fit are).
func (e *RailEstimator) SizeFor(d time.Duration, max int) int {
	if e.weight() == 0 {
		return e.prior.SizeFor(d, max)
	}
	cap := max
	if cap <= 0 {
		cap = 64 << 20
	}
	if e.Estimate(cap) <= d {
		return cap
	}
	if e.Estimate(0) > d {
		return 0
	}
	lo, hi := 0, cap
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if e.Estimate(mid) <= d {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
