// Package telemetry is the online measurement subsystem of the engine:
// it turns every completed transfer unit into an observation and keeps
// the per-rail cost estimates the strategies plan with *live* instead of
// frozen at start-up.
//
// The paper's splitter decisions (Fig 2, eq. 1) consume per-rail
// latency/bandwidth estimators sampled once at launch. That table goes
// stale the moment a TCP rail congests, a peer moves, or a NIC recovers
// from failover. This package closes the loop:
//
//   - Tracker keeps, per (peer, rail) pair, an exponentially decayed
//     set of size-class cells (weight, mean size, mean duration) — the
//     per-size-class bandwidth/latency EWMAs. Observations arrive from
//     two sources: the fabric's transfer layer (write/occupancy times,
//     via the fabric.Telemetry hook) and the engine's ack path (unit
//     round trips, recorded on the progress workers).
//   - A drift detector compares every observation against the current
//     linear fit (the paper's α+βn cost model) and re-fits by weighted
//     least squares over the cells when observations persistently
//     diverge. Each refit bumps the Tracker epoch.
//   - RailEstimator adapts a (peer, rail) pair to strategy.Estimator,
//     blending the static sampled prior (the cold-start table) with the
//     live fit as observations accumulate — so with no traffic the
//     paper's behaviour is reproduced exactly, and with traffic the
//     estimates track the wire.
//
// Reads on the decision path (Estimate/SizeFor/Epoch) touch only
// atomics; observation writes take one short per-pair mutex and run on
// progress workers or transport goroutines, never on the caller of
// Isend. The plan cache in front of the strategies lives in cache.go.
package telemetry

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rt"
	"repro/internal/strategy"
)

// numClasses bounds the size-class ladder: class(n) = bits.Len(n), so
// class 40 covers messages up to 1 TiB — beyond any wire format here.
const numClasses = 40

// class returns the size class (log2 bucket) of an n-byte transfer.
func class(n int) int {
	c := 0
	for v := uint64(n); v != 0; v >>= 1 {
		c++
	}
	if c >= numClasses {
		c = numClasses - 1
	}
	return c
}

// SizeBucket exposes the size-class mapping for plan-cache keys: sends
// of similar size share a bucket, so a repeated workload re-plans once
// per epoch, not once per message.
func SizeBucket(n int) int { return class(n) }

// Config tunes a Tracker.
type Config struct {
	// Peers and Rails dimension the (peer, rail) pair table.
	Peers, Rails int
	// HalfLife is the decay half-life of the observation cells: an
	// observation half as old as this counts double. Default 250ms (of
	// the environment clock — virtual on the simulator).
	HalfLife time.Duration
	// WarmupObs is the observation count at which a pair's live fit is
	// fully trusted over the static prior (default 8).
	WarmupObs int
	// DriftThreshold is the relative-error EWMA beyond which the linear
	// fit is declared stale and re-fit (default 0.25).
	DriftThreshold float64
	// MinRefitObs is the minimum number of observations between refits
	// of one pair, bounding refit churn (default 6).
	MinRefitObs int
}

func (c *Config) defaults() {
	if c.HalfLife <= 0 {
		c.HalfLife = 250 * time.Millisecond
	}
	if c.WarmupObs <= 0 {
		c.WarmupObs = 8
	}
	if c.DriftThreshold <= 0 {
		c.DriftThreshold = 0.25
	}
	if c.MinRefitObs <= 0 {
		c.MinRefitObs = 6
	}
}

// cell is one size class of one (peer, rail) pair: exponentially
// decayed sums, so mean size = sizeSum/w and mean duration = durSum/w.
type cell struct {
	w       float64
	sizeSum float64
	durSum  float64 // nanoseconds
	at      time.Duration
}

// pair is the live state of one (peer, rail) pair. The mutex guards the
// cells and fit bookkeeping; the fitted coefficients and warmth are
// atomics so the decision path never locks.
type pair struct {
	mu          sync.Mutex
	cells       [numClasses]cell
	obsSinceFit int
	drift       float64 // EWMA of |observed-fit|/fit
	fitted      bool

	alphaNS atomic.Int64  // fitted latency, nanoseconds
	betaFP  atomic.Uint64 // fitted ns/byte as float64 bits
	warmth  atomic.Uint32 // observations folded in (saturating)
}

// Tracker is one node's telemetry state: a (peer, rail) pair table, the
// global epoch, and counters.
type Tracker struct {
	env    rt.Env
	cfg    Config
	priors []strategy.Estimator // per rail: the cold-start sampled table

	pairs []pair // peer*Rails + rail

	epoch  atomic.Uint64
	refits atomic.Uint64
	obs    atomic.Uint64
}

// Stats is a snapshot of a Tracker's counters.
type Stats struct {
	// Observations is the number of transfer measurements folded in.
	Observations uint64
	// Refits counts linear-model refits triggered by the drift detector.
	Refits uint64
	// Epoch is the current estimate epoch: it bumps on every refit and
	// on every rail-set (health) change, invalidating cached plans.
	Epoch uint64
}

// NewTracker builds a tracker for a node that talks to cfg.Peers peers
// over cfg.Rails rails. priors holds one static estimator per rail (the
// start-up sampling table) used until live observations warm the pair
// up — and as the slope prior when only one size class has been seen.
func NewTracker(env rt.Env, cfg Config, priors []strategy.Estimator) (*Tracker, error) {
	cfg.defaults()
	if cfg.Peers < 1 || cfg.Rails < 1 {
		return nil, fmt.Errorf("telemetry: need peers and rails >= 1, got %d/%d", cfg.Peers, cfg.Rails)
	}
	if len(priors) != cfg.Rails {
		return nil, fmt.Errorf("telemetry: %d priors for %d rails", len(priors), cfg.Rails)
	}
	return &Tracker{
		env:    env,
		cfg:    cfg,
		priors: priors,
		pairs:  make([]pair, cfg.Peers*cfg.Rails),
	}, nil
}

// Peers returns the tracked peer count.
func (t *Tracker) Peers() int { return t.cfg.Peers }

// Rails returns the tracked rail count.
func (t *Tracker) Rails() int { return t.cfg.Rails }

// Epoch returns the current estimate epoch.
func (t *Tracker) Epoch() uint64 { return t.epoch.Load() }

// BumpEpoch advances the epoch without a refit — the engine calls it
// when the usable rail set changes (a rail died or recovered), so every
// cached plan from the old rail set goes stale at once.
func (t *Tracker) BumpEpoch() { t.epoch.Add(1) }

// Stats returns a snapshot of the tracker counters.
func (t *Tracker) Stats() Stats {
	return Stats{
		Observations: t.obs.Load(),
		Refits:       t.refits.Load(),
		Epoch:        t.epoch.Load(),
	}
}

func (t *Tracker) pair(peer, rail int) *pair {
	return &t.pairs[peer*t.cfg.Rails+rail]
}

// ObserveTransfer implements the fabric.Telemetry hook: the transfer
// layer reports one completed wire transfer (write duration on livenet,
// modeled occupancy plus wire latency on simnet). Same accounting as
// Observe.
func (t *Tracker) ObserveTransfer(peer, rail, bytes int, d time.Duration) {
	t.Observe(peer, rail, bytes, d)
}

// Observe folds one measured transfer into the (peer, rail) pair:
// bytes moved and the one-way duration observed. It runs on progress
// workers and transport goroutines; it never blocks beyond the pair's
// short mutex and never runs on the Isend caller.
func (t *Tracker) Observe(peer, rail, bytes int, d time.Duration) {
	if peer < 0 || peer >= t.cfg.Peers || rail < 0 || rail >= t.cfg.Rails || bytes < 0 || d <= 0 {
		return
	}
	p := t.pair(peer, rail)
	now := t.env.Now()
	ns := float64(d.Nanoseconds())

	p.mu.Lock()
	c := &p.cells[class(bytes)]
	if c.w > 0 && now > c.at {
		// Exponential time decay: old observations fade with HalfLife.
		decay := math.Exp2(-float64(now-c.at) / float64(t.cfg.HalfLife))
		c.w *= decay
		c.sizeSum *= decay
		c.durSum *= decay
	}
	c.w++
	c.sizeSum += float64(bytes)
	c.durSum += ns
	c.at = now

	refit := false
	if p.fitted {
		pred := float64(p.alphaNS.Load()) + math.Float64frombits(p.betaFP.Load())*float64(bytes)
		if pred < 1 {
			pred = 1
		}
		rel := math.Abs(ns-pred) / pred
		p.drift = 0.75*p.drift + 0.25*rel
		p.obsSinceFit++
		refit = p.drift > t.cfg.DriftThreshold && p.obsSinceFit >= t.cfg.MinRefitObs
	} else {
		refit = true // first observations establish the initial fit
	}
	if refit {
		p.refit(t, t.priors[rail])
	}
	p.mu.Unlock()

	// Warmth gates the prior-vs-live blend; when it crosses WarmupObs
	// the live fit has fully displaced the cold-start prior, so plans
	// cached against the prior-based estimates must go stale — even if
	// the fit itself never drifted (a *wrong prior* produces no drift:
	// the first fit already matches reality).
	if p.warmth.Add(1) == uint32(t.cfg.WarmupObs) {
		t.epoch.Add(1)
	}
	t.obs.Add(1)
}

// refit recomputes the linear α+βn fit from the decayed cells by
// weighted least squares; with a single populated size class the slope
// is borrowed from the prior so same-size workloads still adapt their
// level. The caller holds p.mu. Every fit — the initial one included —
// bumps the tracker epoch: estimates changed, so cached plans are
// stale (an epoch bump costs one cache miss per hot key; serving plans
// computed against superseded estimates costs real bandwidth).
func (p *pair) refit(t *Tracker, prior strategy.Estimator) {
	var sw, sx, sy, sxx, sxy float64
	populated := 0
	var lone *cell
	for i := range p.cells {
		c := &p.cells[i]
		if c.w <= 1e-9 {
			continue
		}
		populated++
		lone = c
		x := c.sizeSum / c.w
		y := c.durSum / c.w
		sw += c.w
		sx += c.w * x
		sy += c.w * y
		sxx += c.w * x * x
		sxy += c.w * x * y
	}
	if populated == 0 {
		return
	}
	var alpha, beta float64
	if populated == 1 {
		x := lone.sizeSum / lone.w
		y := lone.durSum / lone.w
		beta = priorSlope(prior, x)
		alpha = y - beta*x
	} else {
		den := sw*sxx - sx*sx
		if den <= 1e-9 {
			return
		}
		beta = (sw*sxy - sx*sy) / den
		alpha = (sy - beta*sx) / sw
		if beta < 0 {
			// A negative slope is measurement noise (bigger cannot be
			// faster); fall back to the level-shift fit at the weighted
			// mean point.
			beta = priorSlope(prior, sx/sw)
			alpha = sy/sw - beta*(sx/sw)
		}
	}
	// Guard against degenerate flat fits: noisy observations (e.g. rail
	// attribution under loopback contention) can push all cost into α
	// with β ≈ 0, and a flat estimate loses every SizeFor comparison —
	// HeteroSplit would discard the rail entirely and starve it of the
	// very observations that would rehabilitate it. Require at least
	// half the mean observed cost to be size-proportional, keeping the
	// fit through the weighted mean point.
	if xm, ym := sx/sw, sy/sw; xm > 0 && ym > 0 {
		if minBeta := 0.5 * ym / xm; beta < minBeta {
			beta = minBeta
			alpha = ym - beta*xm
		}
	}
	if alpha < 0 {
		alpha = 0
	}
	if beta < 0 {
		beta = 0
	}
	p.alphaNS.Store(int64(alpha))
	p.betaFP.Store(math.Float64bits(beta))
	p.fitted = true
	p.obsSinceFit = 0
	p.drift = 0
	t.refits.Add(1)
	t.epoch.Add(1)
}

// priorSlope extracts the prior's marginal cost per byte around size x
// (ns/byte), the slope borrowed when live data spans one size class.
func priorSlope(prior strategy.Estimator, x float64) float64 {
	n := int(x)
	if n < 1 {
		n = 1
	}
	d := prior.Estimate(2*n) - prior.Estimate(n)
	if d <= 0 {
		return 0
	}
	return float64(d.Nanoseconds()) / float64(n)
}

// RailEstimator adapts one (peer, rail) pair to strategy.Estimator:
// the static sampled prior warmed away by the live fit.
type RailEstimator struct {
	t          *Tracker
	peer, rail int
	prior      strategy.Estimator
}

// Estimator returns the live estimator of a (peer, rail) pair, backed
// by the given cold-start prior (the rail's sampled RailProfile).
func (t *Tracker) Estimator(peer, rail int, prior strategy.Estimator) *RailEstimator {
	return &RailEstimator{t: t, peer: peer, rail: rail, prior: prior}
}

// weight returns how much the live fit is trusted: 0 with no
// observations, 1 from WarmupObs on.
func (e *RailEstimator) weight() float64 {
	w := float64(e.t.pair(e.peer, e.rail).warmth.Load()) / float64(e.t.cfg.WarmupObs)
	if w > 1 {
		return 1
	}
	return w
}

// Estimate implements strategy.Estimator: the warmth-blended one-way
// prediction. Lock-free — two atomic loads plus the prior's table
// lookup.
func (e *RailEstimator) Estimate(n int) time.Duration {
	p := e.t.pair(e.peer, e.rail)
	w := e.weight()
	if w == 0 {
		return e.prior.Estimate(n)
	}
	live := time.Duration(p.alphaNS.Load()) +
		time.Duration(math.Float64frombits(p.betaFP.Load())*float64(n))
	if live < time.Nanosecond {
		live = time.Nanosecond
	}
	if w == 1 {
		return live
	}
	return time.Duration(w*float64(live) + (1-w)*float64(e.prior.Estimate(n)))
}

// SizeFor implements strategy.Estimator by binary search on Estimate,
// which is monotone (both the prior and the clamped linear fit are).
func (e *RailEstimator) SizeFor(d time.Duration, max int) int {
	if e.weight() == 0 {
		return e.prior.SizeFor(d, max)
	}
	cap := max
	if cap <= 0 {
		cap = 64 << 20
	}
	if e.Estimate(cap) <= d {
		return cap
	}
	if e.Estimate(0) > d {
		return 0
	}
	lo, hi := 0, cap
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if e.Estimate(mid) <= d {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
