package des

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func us(n int) Time { return Time(n) * time.Microsecond }

func TestClockStartsAtZero(t *testing.T) {
	s := New()
	if s.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", s.Now())
	}
}

func TestHandlersRunInTimeOrder(t *testing.T) {
	s := New()
	var got []int
	s.At(us(30), func() { got = append(got, 3) })
	s.At(us(10), func() { got = append(got, 1) })
	s.At(us(20), func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != us(30) {
		t.Fatalf("final clock %v, want %v", s.Now(), us(30))
	}
}

func TestSimultaneousEventsKeepSchedulingOrder(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(us(5), func() { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("FIFO violated at %d: %v", i, got)
		}
	}
}

func TestPastEventsClampToNow(t *testing.T) {
	s := New()
	var at Time = -1
	s.At(us(10), func() {
		s.At(us(1), func() { at = s.Now() }) // in the past
	})
	s.Run()
	if at != us(10) {
		t.Fatalf("past event ran at %v, want clamped to %v", at, us(10))
	}
}

func TestProcSleepAdvancesClock(t *testing.T) {
	s := New()
	var woke Time
	s.Go("sleeper", func(p *Proc) {
		p.Sleep(us(42))
		woke = p.Now()
	})
	s.Run()
	if woke != us(42) {
		t.Fatalf("woke at %v, want %v", woke, us(42))
	}
}

func TestProcSequentialSleeps(t *testing.T) {
	s := New()
	var marks []Time
	s.Go("p", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(us(10))
			marks = append(marks, p.Now())
		}
	})
	s.Run()
	for i, m := range marks {
		if want := us(10 * (i + 1)); m != want {
			t.Fatalf("mark %d = %v, want %v", i, m, want)
		}
	}
}

func TestNegativeSleepIsZero(t *testing.T) {
	s := New()
	s.Go("p", func(p *Proc) {
		p.Sleep(-us(5))
		if p.Now() != 0 {
			t.Errorf("negative sleep moved clock to %v", p.Now())
		}
	})
	s.Run()
}

func TestEventWaitAndFire(t *testing.T) {
	s := New()
	e := s.NewEvent()
	var woke Time = -1
	s.Go("waiter", func(p *Proc) {
		e.Wait(p)
		woke = p.Now()
	})
	s.At(us(100), e.Fire)
	s.Run()
	if woke != us(100) {
		t.Fatalf("waiter woke at %v, want %v", woke, us(100))
	}
	if !e.Fired() {
		t.Fatal("event not marked fired")
	}
}

func TestEventWaitAfterFireReturnsImmediately(t *testing.T) {
	s := New()
	e := s.NewEvent()
	e.Fire()
	ran := false
	s.Go("late", func(p *Proc) {
		e.Wait(p)
		ran = true
	})
	s.Run()
	if !ran {
		t.Fatal("late waiter never returned")
	}
}

func TestEventFireIsIdempotent(t *testing.T) {
	s := New()
	e := s.NewEvent()
	n := 0
	e.OnFire(func() { n++ })
	e.Fire()
	e.Fire()
	s.Run()
	if n != 1 {
		t.Fatalf("callback ran %d times, want 1", n)
	}
}

func TestEventWakesWaitersInOrder(t *testing.T) {
	s := New()
	e := s.NewEvent()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.Go("w", func(p *Proc) {
			e.Wait(p)
			order = append(order, i)
		})
	}
	s.At(us(1), e.Fire)
	s.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("wake order %v, want ascending", order)
		}
	}
}

func TestEventWaitTimeoutExpires(t *testing.T) {
	s := New()
	e := s.NewEvent()
	var fired bool
	var at Time
	s.Go("w", func(p *Proc) {
		fired = e.WaitTimeout(p, us(50))
		at = p.Now()
	})
	s.Run()
	if fired {
		t.Fatal("WaitTimeout reported fired without Fire")
	}
	if at != us(50) {
		t.Fatalf("timeout at %v, want %v", at, us(50))
	}
}

func TestEventWaitTimeoutFiresFirst(t *testing.T) {
	s := New()
	e := s.NewEvent()
	var fired bool
	var at Time
	s.Go("w", func(p *Proc) {
		fired = e.WaitTimeout(p, us(50))
		at = p.Now()
	})
	s.At(us(10), e.Fire)
	s.Run()
	if !fired {
		t.Fatal("WaitTimeout missed Fire")
	}
	if at != us(10) {
		t.Fatalf("woke at %v, want %v", at, us(10))
	}
	// The stale timeout at t=50 must not double-wake anyone; draining the
	// remaining events must not panic.
}

func TestQueuePushPopFIFO(t *testing.T) {
	s := New()
	q := s.NewQueue()
	var got []int
	s.Go("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Pop(p).(int))
		}
	})
	s.At(us(1), func() { q.Push(10) })
	s.At(us(2), func() { q.Push(20) })
	s.At(us(3), func() { q.Push(30) })
	s.Run()
	want := []int{10, 20, 30}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestQueuePopBlocksUntilPush(t *testing.T) {
	s := New()
	q := s.NewQueue()
	var at Time = -1
	s.Go("c", func(p *Proc) {
		q.Pop(p)
		at = p.Now()
	})
	s.At(us(77), func() { q.Push(1) })
	s.Run()
	if at != us(77) {
		t.Fatalf("popped at %v, want %v", at, us(77))
	}
}

func TestQueueTryPop(t *testing.T) {
	s := New()
	q := s.NewQueue()
	if _, ok := q.TryPop(); ok {
		t.Fatal("TryPop on empty queue returned ok")
	}
	q.Push(5)
	v, ok := q.TryPop()
	if !ok || v.(int) != 5 {
		t.Fatalf("TryPop = %v, %v", v, ok)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain", q.Len())
	}
}

func TestResourceSerializesAccess(t *testing.T) {
	s := New()
	r := s.NewResource(1)
	var spans [][2]Time
	for i := 0; i < 3; i++ {
		s.Go("user", func(p *Proc) {
			r.Acquire(p)
			start := p.Now()
			p.Sleep(us(10))
			r.Release()
			spans = append(spans, [2]Time{start, p.Now()})
		})
	}
	s.Run()
	if len(spans) != 3 {
		t.Fatalf("%d spans, want 3", len(spans))
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i][0] < spans[j][0] })
	for i := 1; i < len(spans); i++ {
		if spans[i][0] < spans[i-1][1] {
			t.Fatalf("overlapping critical sections: %v", spans)
		}
	}
	if got := spans[2][1]; got != us(30) {
		t.Fatalf("last release at %v, want %v", got, us(30))
	}
}

func TestResourceCapacityTwoAllowsTwoConcurrent(t *testing.T) {
	s := New()
	r := s.NewResource(2)
	var ends []Time
	for i := 0; i < 4; i++ {
		s.Go("user", func(p *Proc) {
			r.Acquire(p)
			p.Sleep(us(10))
			r.Release()
			ends = append(ends, p.Now())
		})
	}
	s.Run()
	sort.Slice(ends, func(i, j int) bool { return ends[i] < ends[j] })
	// 4 jobs of 10us on 2 servers: completions at 10,10,20,20.
	want := []Time{us(10), us(10), us(20), us(20)}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
}

func TestResourceFIFOHandoff(t *testing.T) {
	s := New()
	r := s.NewResource(1)
	var order []int
	// Holder occupies the resource until t=100.
	s.Go("holder", func(p *Proc) {
		r.Acquire(p)
		p.Sleep(us(100))
		r.Release()
	})
	// Waiters arrive at t=10, 20, 30; they must acquire in arrival order.
	for i := 0; i < 3; i++ {
		i := i
		s.At(us(10*(i+1)), func() {
			s.Go("w", func(p *Proc) {
				r.Acquire(p)
				order = append(order, i)
				r.Release()
			})
		})
	}
	s.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("acquire order %v, want FIFO", order)
		}
	}
}

func TestResourceTryAcquireRespectsWaiters(t *testing.T) {
	s := New()
	r := s.NewResource(1)
	s.Go("holder", func(p *Proc) {
		r.Acquire(p)
		p.Sleep(us(10))
		r.Release()
	})
	s.At(us(1), func() {
		s.Go("w", func(p *Proc) { r.Acquire(p); r.Release() })
	})
	s.At(us(2), func() {
		if r.TryAcquire() {
			t.Error("TryAcquire barged past a queued waiter")
		}
	})
	s.Run()
}

func TestReleaseWithoutAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	s := New()
	s.NewResource(1).Release()
}

func TestGoFromProc(t *testing.T) {
	s := New()
	var childAt Time = -1
	s.Go("parent", func(p *Proc) {
		p.Sleep(us(5))
		s.Go("child", func(c *Proc) {
			c.Sleep(us(5))
			childAt = c.Now()
		})
	})
	s.Run()
	if childAt != us(10) {
		t.Fatalf("child finished at %v, want %v", childAt, us(10))
	}
}

func TestRunUntilAdvancesClockOnly(t *testing.T) {
	s := New()
	ran := false
	s.At(us(100), func() { ran = true })
	s.RunUntil(us(50))
	if ran {
		t.Fatal("future event dispatched early")
	}
	if s.Now() != us(50) {
		t.Fatalf("clock %v, want %v", s.Now(), us(50))
	}
	s.Run()
	if !ran {
		t.Fatal("event lost")
	}
}

func TestStopPausesRun(t *testing.T) {
	s := New()
	n := 0
	s.At(us(1), func() { n++; s.Stop() })
	s.At(us(2), func() { n++ })
	s.Run()
	if n != 1 {
		t.Fatalf("dispatched %d before Stop honored, want 1", n)
	}
	s.Run()
	if n != 2 {
		t.Fatalf("resume dispatched %d total, want 2", n)
	}
}

func TestCloseKillsBlockedProcs(t *testing.T) {
	s := New()
	q := s.NewQueue()
	cleaned := false
	s.Go("stuck", func(p *Proc) {
		defer func() { cleaned = true }()
		q.Pop(p) // never satisfied
	})
	s.RunUntil(us(1))
	s.Close()
	// Give the killed goroutine a moment to unwind; the handshake in Close
	// is synchronous so by now the defer has run.
	if !cleaned {
		t.Fatal("blocked process was not unwound by Close")
	}
	if s.Procs() != 0 {
		t.Fatalf("%d procs alive after Close", s.Procs())
	}
}

func TestCloseIsIdempotentAndDisablesScheduling(t *testing.T) {
	s := New()
	s.Close()
	s.Close()
	s.At(us(1), func() { t.Error("handler ran after Close") })
	s.Run()
}

func TestDispatchedCounter(t *testing.T) {
	s := New()
	for i := 0; i < 7; i++ {
		s.At(us(i), func() {})
	}
	s.Run()
	if s.Dispatched != 7 {
		t.Fatalf("Dispatched = %d, want 7", s.Dispatched)
	}
}

func TestEventLimitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on runaway simulation")
		}
	}()
	s := New()
	s.Limit = 100
	var loop func()
	loop = func() { s.After(us(1), loop) }
	loop()
	s.Run()
}

// Property: for any set of delays, handlers run in nondecreasing time
// order and the final clock equals the max delay.
func TestPropertyTimeOrdering(t *testing.T) {
	f := func(delaysRaw []uint16) bool {
		if len(delaysRaw) == 0 {
			return true
		}
		s := New()
		var fired []Time
		var maxAt Time
		for _, d := range delaysRaw {
			at := Time(d) * time.Microsecond
			if at > maxAt {
				maxAt = at
			}
			s.At(at, func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		if len(fired) != len(delaysRaw) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return s.Now() == maxAt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a FIFO resource with capacity 1 serving jobs of given lengths
// finishes at the sum of all lengths, regardless of arrival pattern
// (work conservation: arrivals all occur at t=0).
func TestPropertyResourceWorkConservation(t *testing.T) {
	f := func(lensRaw []uint8) bool {
		if len(lensRaw) == 0 || len(lensRaw) > 64 {
			return true
		}
		s := New()
		r := s.NewResource(1)
		var total Time
		var last Time
		for _, l := range lensRaw {
			d := Time(l) * time.Microsecond
			total += d
			s.Go("job", func(p *Proc) {
				r.Acquire(p)
				p.Sleep(d)
				r.Release()
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
		s.Run()
		return last == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: queue preserves FIFO order for any push schedule.
func TestPropertyQueueFIFO(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		count := int(n%50) + 1
		rng := rand.New(rand.NewSource(seed))
		s := New()
		q := s.NewQueue()
		var got []int
		s.Go("consumer", func(p *Proc) {
			for i := 0; i < count; i++ {
				got = append(got, q.Pop(p).(int))
			}
		})
		for i := 0; i < count; i++ {
			i := i
			s.At(Time(rng.Intn(1000))*time.Microsecond, func() { q.Push(i) })
		}
		s.Run()
		// Pushes happen at random times but with deterministic tie-break;
		// popping must match the push dispatch order, which is sorted by
		// (time, seq). Reconstruct that order.
		if len(got) != count {
			return false
		}
		seen := make(map[int]bool, count)
		for _, v := range got {
			if seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Determinism: two identical simulations produce identical event traces.
func TestDeterminismSameSeedSameTrace(t *testing.T) {
	run := func() []Time {
		s := New()
		r := s.NewResource(2)
		q := s.NewQueue()
		var trace []Time
		for i := 0; i < 10; i++ {
			d := Time(i*3+1) * time.Microsecond
			s.Go("w", func(p *Proc) {
				r.Acquire(p)
				p.Sleep(d)
				r.Release()
				q.Push(p.Now())
				trace = append(trace, p.Now())
			})
		}
		s.Run()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Fire and timeout landing on the same timestamp must wake the waiter
// exactly once, whichever dispatches first.
func TestWaitTimeoutSimultaneousFire(t *testing.T) {
	for _, fireFirst := range []bool{true, false} {
		s := New()
		e := s.NewEvent()
		wakes := 0
		if fireFirst {
			s.At(us(10), e.Fire)
		}
		s.Go("w", func(p *Proc) {
			e.WaitTimeout(p, us(10))
			wakes++
			p.Sleep(us(100)) // would panic on a double resume
		})
		if !fireFirst {
			s.At(us(10), e.Fire)
		}
		s.Run()
		if wakes != 1 {
			t.Fatalf("fireFirst=%v: woke %d times", fireFirst, wakes)
		}
	}
}

// RunUntil dispatches events exactly at the boundary time.
func TestRunUntilInclusiveBoundary(t *testing.T) {
	s := New()
	ran := false
	s.At(us(50), func() { ran = true })
	s.RunUntil(us(50))
	if !ran {
		t.Fatal("boundary event not dispatched")
	}
}

// A proc killed by Close while holding a resource does not corrupt the
// simulator state for subsequent inspection.
func TestCloseWhileHoldingResource(t *testing.T) {
	s := New()
	r := s.NewResource(1)
	q := s.NewQueue()
	s.Go("holder", func(p *Proc) {
		r.Acquire(p)
		q.Pop(p) // blocks forever
	})
	s.RunUntil(us(1))
	if r.Idle() || r.InUse() != 1 {
		t.Fatalf("holder should hold the slot: idle=%v inUse=%d", r.Idle(), r.InUse())
	}
	s.Close()
	if s.Procs() != 0 {
		t.Fatalf("%d procs alive after Close", s.Procs())
	}
}
