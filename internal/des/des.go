// Package des implements a deterministic, process-based discrete-event
// simulator.
//
// The simulator is the virtual-time substrate on which the whole
// communication stack runs when deterministic reproduction of the paper's
// figures is required. It follows the classic process-interaction style
// (as in SimPy or OMNeT++): each simulated actor is a goroutine that owns
// the unique "run token" while it executes and hands it back to the event
// loop whenever it blocks. Exactly one goroutine runs at any instant, so a
// simulation is deterministic: same inputs, same event order, same clock
// readings — bit for bit.
//
// Primitives:
//
//   - Simulator: the event loop and virtual clock.
//   - Proc: a simulated process (Sleep, park/resume discipline).
//   - Event: a one-shot completion that processes can wait on.
//   - Queue: an unbounded FIFO with blocking Pop.
//   - Resource: a FIFO counted resource (server) with handoff semantics.
//
// Handlers scheduled with At/After run inline in the event loop and must
// not block; only Procs may call blocking primitives.
package des

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is simulated time, expressed as an offset from the simulation
// epoch. Using time.Duration gives nanosecond resolution, convenient
// arithmetic and familiar formatting.
type Time = time.Duration

// End is a time later than any event a simulation will ever schedule.
const End Time = math.MaxInt64 / 4

// event is a scheduled occurrence: either an inline handler (fn) or the
// wake-up of a parked process (p). Events are ordered by (at, seq) so that
// simultaneous events dispatch in scheduling order.
type event struct {
	at  Time
	seq uint64
	fn  func()
	p   *Proc
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)   { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)     { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any       { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() event     { return h[0] }
func (h *eventHeap) popMin() event  { return heap.Pop(h).(event) }
func (h *eventHeap) pushEv(e event) { heap.Push(h, e) }

// Simulator is a discrete-event simulation engine. The zero value is not
// usable; create one with New.
type Simulator struct {
	now     Time
	seq     uint64
	pq      eventHeap
	procs   map[*Proc]struct{}
	closed  bool
	stopped bool

	// Dispatched counts dispatched events; useful for tests and for
	// detecting runaway simulations.
	Dispatched uint64
	// Limit aborts Run with a panic after this many events when non-zero.
	Limit uint64
}

// New returns an empty simulator whose clock reads zero.
func New() *Simulator {
	return &Simulator{procs: make(map[*Proc]struct{})}
}

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// Pending reports the number of scheduled events.
func (s *Simulator) Pending() int { return len(s.pq) }

// Procs reports the number of live (started, not finished) processes.
func (s *Simulator) Procs() int { return len(s.procs) }

func (s *Simulator) schedule(at Time, fn func(), p *Proc) {
	if s.closed {
		return
	}
	if at < s.now {
		at = s.now
	}
	s.seq++
	s.pq.pushEv(event{at: at, seq: s.seq, fn: fn, p: p})
}

// At schedules handler fn to run at absolute simulated time t (clamped to
// now if in the past). Handlers run inline in the event loop and must not
// block.
func (s *Simulator) At(t Time, fn func()) { s.schedule(t, fn, nil) }

// After schedules handler fn to run d from now.
func (s *Simulator) After(d Time, fn func()) { s.schedule(s.now+d, fn, nil) }

// Step dispatches the single next event. It reports false when no events
// remain or the simulator was stopped or closed.
func (s *Simulator) Step() bool {
	if s.closed || s.stopped || len(s.pq) == 0 {
		return false
	}
	ev := s.pq.popMin()
	s.now = ev.at
	s.Dispatched++
	if s.Limit > 0 && s.Dispatched > s.Limit {
		panic(fmt.Sprintf("des: event limit %d exceeded at t=%v", s.Limit, s.now))
	}
	switch {
	case ev.fn != nil:
		ev.fn()
	case ev.p != nil:
		ev.p.run()
	}
	return true
}

// Run dispatches events until none remain (or Stop/Close is called).
func (s *Simulator) Run() {
	s.stopped = false
	for s.Step() {
	}
}

// RunUntil dispatches events with timestamps <= t and then sets the clock
// to t (unless the simulation emptied earlier or was stopped).
func (s *Simulator) RunUntil(t Time) {
	s.stopped = false
	for !s.closed && !s.stopped && len(s.pq) > 0 && s.pq.peek().at <= t {
		s.Step()
	}
	if !s.closed && s.now < t {
		s.now = t
	}
}

// Stop makes the current Run return after the event being dispatched.
// The simulation can be resumed with Run.
func (s *Simulator) Stop() { s.stopped = true }

// Close terminates the simulation: every live process is killed (its
// blocking call panics with a sentinel that is swallowed by the process
// wrapper) and further scheduling becomes a no-op. Close is idempotent.
func (s *Simulator) Close() {
	if s.closed {
		return
	}
	s.closed = true
	for p := range s.procs {
		if p.parkedNow {
			p.killed = true
			p.resume <- struct{}{}
			<-p.parked
		}
	}
	s.pq = nil
}
