package des

// waiter tracks a parked process together with a flag ensuring it is woken
// exactly once even when several wake sources race (e.g. Fire vs timeout).
type waiter struct {
	p     *Proc
	woken bool
}

// Event is a one-shot completion. Processes block on it with Wait;
// handlers observe it with OnFire. Once fired it stays fired.
type Event struct {
	sim     *Simulator
	fired   bool
	waiters []*waiter
	cbs     []func()
}

// NewEvent returns an unfired event.
func (s *Simulator) NewEvent() *Event { return &Event{sim: s} }

// Fired reports whether the event has fired.
func (e *Event) Fired() bool { return e.fired }

// Fire fires the event: every waiting process is scheduled to resume at
// the current time (in wait order) and every callback is scheduled as an
// inline handler. Firing twice is a no-op.
func (e *Event) Fire() {
	if e.fired {
		return
	}
	e.fired = true
	for _, w := range e.waiters {
		if !w.woken {
			w.woken = true
			e.sim.schedule(e.sim.now, nil, w.p)
		}
	}
	e.waiters = nil
	for _, cb := range e.cbs {
		e.sim.At(e.sim.now, cb)
	}
	e.cbs = nil
}

// Wait blocks the calling process until the event fires. Returns
// immediately if it already fired.
func (e *Event) Wait(p *Proc) {
	if e.fired {
		return
	}
	w := &waiter{p: p}
	e.waiters = append(e.waiters, w)
	p.park()
}

// WaitTimeout blocks the calling process until the event fires or d
// elapses, whichever is first, and reports whether the event fired.
func (e *Event) WaitTimeout(p *Proc, d Time) bool {
	if e.fired {
		return true
	}
	w := &waiter{p: p}
	e.waiters = append(e.waiters, w)
	e.sim.After(d, func() {
		if !w.woken {
			w.woken = true
			e.sim.schedule(e.sim.now, nil, w.p)
		}
	})
	p.park()
	return e.fired
}

// OnFire registers cb to run (as an inline handler) when the event fires.
// If the event already fired, cb is scheduled at the current time.
func (e *Event) OnFire(cb func()) {
	if e.fired {
		e.sim.At(e.sim.now, cb)
		return
	}
	e.cbs = append(e.cbs, cb)
}

// Queue is an unbounded FIFO of arbitrary items with blocking Pop.
// Push never blocks and may be called from handlers.
type Queue struct {
	sim     *Simulator
	items   []any
	waiters []*waiter
}

// NewQueue returns an empty queue.
func (s *Simulator) NewQueue() *Queue { return &Queue{sim: s} }

// Len returns the number of queued items.
func (q *Queue) Len() int { return len(q.items) }

// Push appends v and wakes one waiting popper, if any.
func (q *Queue) Push(v any) {
	q.items = append(q.items, v)
	q.wakeOne()
}

func (q *Queue) wakeOne() {
	for len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		if !w.woken {
			w.woken = true
			q.sim.schedule(q.sim.now, nil, w.p)
			return
		}
	}
}

// TryPop removes and returns the head item without blocking.
func (q *Queue) TryPop() (any, bool) {
	if len(q.items) == 0 {
		return nil, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v, true
}

// Pop removes and returns the head item, blocking the calling process
// while the queue is empty. Wake-ups use condition-variable semantics: a
// woken process re-checks emptiness, so ordering among concurrent poppers
// follows the event schedule deterministically.
func (q *Queue) Pop(p *Proc) any {
	for {
		if v, ok := q.TryPop(); ok {
			return v
		}
		w := &waiter{p: p}
		q.waiters = append(q.waiters, w)
		p.park()
	}
}

// Resource is a FIFO counted resource with capacity slots (an FCFS server
// pool). Release hands the slot directly to the oldest waiter, so waiters
// cannot be barged past by late arrivals — acquisition order is strictly
// first-come first-served, which keeps NIC and core scheduling fair and
// deterministic.
type Resource struct {
	sim     *Simulator
	cap     int
	inUse   int
	waiters []*waiter
}

// NewResource returns a resource with the given capacity (at least 1).
func (s *Simulator) NewResource(capacity int) *Resource {
	if capacity < 1 {
		capacity = 1
	}
	return &Resource{sim: s, cap: capacity}
}

// Cap returns the capacity.
func (r *Resource) Cap() int { return r.cap }

// InUse returns the number of held slots.
func (r *Resource) InUse() int { return r.inUse }

// Idle reports whether at least one slot is free.
func (r *Resource) Idle() bool { return r.inUse < r.cap }

// Waiting returns the number of parked acquirers.
func (r *Resource) Waiting() int { return len(r.waiters) }

// TryAcquire takes a slot if one is free and no one is queued before us.
func (r *Resource) TryAcquire() bool {
	if r.inUse < r.cap && len(r.waiters) == 0 {
		r.inUse++
		return true
	}
	return false
}

// Acquire blocks the calling process until a slot is available.
func (r *Resource) Acquire(p *Proc) {
	if r.TryAcquire() {
		return
	}
	w := &waiter{p: p}
	r.waiters = append(r.waiters, w)
	p.park()
	// Ownership was handed to us by Release; inUse already accounts for it.
}

// Release frees a slot or hands it directly to the oldest waiter.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("des: Resource.Release without matching Acquire")
	}
	for len(r.waiters) > 0 {
		w := r.waiters[0]
		r.waiters = r.waiters[1:]
		if !w.woken {
			w.woken = true
			// Handoff: the slot stays accounted in inUse and now belongs
			// to w.p, which resumes inside Acquire.
			r.sim.schedule(r.sim.now, nil, w.p)
			return
		}
	}
	r.inUse--
}
