package des

// killSentinel is the panic value used to unwind a process killed by
// Simulator.Close. It is recovered (and swallowed) by the process wrapper.
type killSentinelType struct{}

var killSentinel = killSentinelType{}

// Proc is a simulated process: a goroutine that runs engine or workload
// code in natural blocking style. A process may call Sleep, Event.Wait,
// Queue.Pop, Resource.Acquire and friends; each such call parks the
// process and hands the run token back to the event loop.
//
// Only the process itself may call its blocking methods; handlers and
// other processes interact with it through Events, Queues and Resources.
type Proc struct {
	sim  *Simulator
	name string

	resume chan struct{}
	parked chan struct{}

	// parkedNow is true while the goroutine is blocked waiting for resume.
	// It is only touched while holding the run token, so no locking is
	// needed.
	parkedNow bool
	killed    bool
	done      bool
}

// Go starts a new process executing fn. The process is scheduled to begin
// at the current simulated time; fn receives the process handle for its
// blocking calls. Go may be called from handlers, from other processes, or
// before Run.
func (s *Simulator) Go(name string, fn func(*Proc)) *Proc {
	p := &Proc{
		sim:    s,
		name:   name,
		resume: make(chan struct{}),
		parked: make(chan struct{}),
	}
	s.procs[p] = struct{}{}
	p.parkedNow = true // waiting for its first resume
	go func() {
		<-p.resume
		defer func() {
			r := recover()
			p.done = true
			delete(s.procs, p)
			if r != nil {
				if _, isKill := r.(killSentinelType); !isKill {
					// A genuine bug in process code: let it crash the
					// program with a stack trace rather than silently
					// wedging the simulation.
					p.parkedNow = true
					panic(r)
				}
			}
			p.parked <- struct{}{}
		}()
		if p.killed {
			panic(killSentinel)
		}
		fn(p)
	}()
	s.schedule(s.now, nil, p)
	return p
}

// run transfers the run token to the process and waits for it to park
// again (or finish). Called only by the event loop.
func (p *Proc) run() {
	if p.done {
		return
	}
	p.parkedNow = false
	p.resume <- struct{}{}
	<-p.parked
}

// park hands the run token back to the event loop and blocks until some
// event resumes this process. The caller must already have arranged for a
// wake-up (a scheduled event, an Event waiter entry, ...).
func (p *Proc) park() {
	p.parkedNow = true
	p.parked <- struct{}{}
	<-p.resume
	p.parkedNow = false
	if p.killed {
		panic(killSentinel)
	}
}

// Name returns the debugging name given to Go.
func (p *Proc) Name() string { return p.name }

// Sim returns the simulator this process belongs to.
func (p *Proc) Sim() *Simulator { return p.sim }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.sim.now }

// Sleep suspends the process for d of simulated time. Negative durations
// sleep zero time (but still yield to simultaneous events).
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	p.sim.schedule(p.sim.now+d, nil, p)
	p.park()
}

// Yield reschedules the process at the current time, letting other
// already-scheduled simultaneous events run first.
func (p *Proc) Yield() { p.Sleep(0) }
