package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicMix rejects mixed atomic/plain access to a field: once any
// code in the package touches a field through sync/atomic functions
// (atomic.AddUint64(&s.n, 1), atomic.LoadInt64(&s.n), ...), every
// plain read or write of that field elsewhere is a data race — one the
// race detector only reports when the schedule happens to interleave.
// The typed atomics (atomic.Uint64 and friends) make this mistake
// unrepresentable; this pass polices the code that hasn't migrated,
// and the migration itself (a half-converted field is exactly a mixed
// access).
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "fields touched via sync/atomic must never be accessed plainly",
	Run:  runAtomicMix,
}

func runAtomicMix(pass *Pass) {
	// Phase 1: fields whose address is taken by a sync/atomic call.
	atomicFields := make(map[*types.Var]token.Pos) // field -> first atomic site
	atomicArgs := make(map[ast.Expr]bool)          // the &f expressions themselves
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			if !isAtomicOpName(fn.Name()) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				if fld := fieldOf(pass.Info, un.X); fld != nil {
					if _, seen := atomicFields[fld]; !seen {
						atomicFields[fld] = call.Pos()
					}
					atomicArgs[ast.Unparen(un.X)] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return
	}

	// Phase 2: any other selection of those fields is a plain access.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if atomicArgs[ast.Expr(sel)] {
				return true
			}
			fld := fieldOf(pass.Info, sel)
			if fld == nil {
				return true
			}
			first, isAtomic := atomicFields[fld]
			if !isAtomic {
				return true
			}
			pass.Reportf(sel.Pos(),
				"plain access to %s, which is managed by sync/atomic (first atomic use at %s) — racy even if it looks read-only; use the atomic accessor",
				types.ExprString(sel), describePos(pass.Fset, first))
			return true
		})
	}
}

// isAtomicOpName matches the sync/atomic function families.
func isAtomicOpName(name string) bool {
	for _, prefix := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// fieldOf resolves expr to a struct field object, or nil.
func fieldOf(info *types.Info, expr ast.Expr) *types.Var {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	obj, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || !obj.IsField() {
		return nil
	}
	return obj
}
