package analyzers

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info
}

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Standard   bool
	Export     string
	DepOnly    bool
	ForTest    string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	ImportMap  map[string]string
	Incomplete bool
	Error      *struct{ Err string }
}

// Load lists patterns with the go tool (compiling export data for
// every dependency — works fully offline) and type-checks each matched
// package from source against that export data. includeTests adds the
// in-package and external test variants.
func Load(dir string, patterns []string, includeTests bool) ([]*Package, error) {
	args := []string{"list", "-export", "-deps", "-json"}
	if includeTests {
		args = append(args, "-test")
	}
	args = append(args, "--")
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listPkg)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		pkgs = append(pkgs, lp)
	}

	exports := make(map[string]string)
	for _, lp := range pkgs {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}

	// Targets: pattern-matched packages. When test variants are listed,
	// the augmented variant ("x [x.test]") subsumes the plain one.
	augmented := make(map[string]bool)
	for _, lp := range pkgs {
		if !lp.DepOnly && lp.ForTest != "" {
			augmented[lp.ForTest] = true
		}
	}
	fset := token.NewFileSet()
	var out2 []*Package
	for _, lp := range pkgs {
		if lp.DepOnly || lp.Standard {
			continue
		}
		if strings.HasSuffix(lp.ImportPath, ".test") {
			continue // synthesized test binary main
		}
		if lp.ForTest == "" && augmented[lp.ImportPath] {
			continue // the test-augmented variant covers these files
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("%s: %s", lp.ImportPath, lp.Error.Err)
		}
		p, err := checkPackage(fset, lp, exports)
		if err != nil {
			return nil, err
		}
		out2 = append(out2, p)
	}
	return out2, nil
}

// checkPackage parses and type-checks one listed package against the
// export data of its dependencies.
func checkPackage(fset *token.FileSet, lp *listPkg, exports map[string]string) (*Package, error) {
	if len(lp.CgoFiles) > 0 {
		return nil, fmt.Errorf("%s: cgo packages are not supported by railvet", lp.ImportPath)
	}
	var files []*ast.File
	for _, name := range lp.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	pkg, info, err := TypeCheck(fset, lp.ImportPath, files, lp.ImportMap, exports)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", lp.ImportPath, err)
	}
	return &Package{PkgPath: lp.ImportPath, Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

// TypeCheck type-checks parsed files as package path, resolving
// imports through export-data files (importMap translates source
// import paths to listed package paths; exports maps those to export
// data produced by `go list -export`).
func TypeCheck(fset *token.FileSet, path string, files []*ast.File, importMap map[string]string, exports map[string]string) (*types.Package, *types.Info, error) {
	lookup := func(p string) (io.ReadCloser, error) {
		if importMap != nil {
			if mapped, ok := importMap[p]; ok {
				p = mapped
			}
		}
		file, ok := exports[p]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", p)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)
	info := NewInfo()
	conf := types.Config{
		Importer: unsafeAware{imp},
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// NewInfo allocates the types.Info maps the passes rely on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// unsafeAware short-circuits the "unsafe" pseudo-package, which has no
// export data.
type unsafeAware struct{ types.Importer }

func (u unsafeAware) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return u.Importer.Import(path)
}
