package analyzers

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info

	// Deps holds exported facts for this package's dependencies (and,
	// in a whole-module load, every module package). Facts is this
	// package's own computed summary; AnalyzeOpts fills it when nil.
	Deps  FactSet
	Facts *PkgFacts
	// Escapes is the package's `go tool compile -m -m` output when the
	// load collected it; nil disables the hotalloc pass.
	Escapes []EscapeSite
}

// LoadOpts tunes Load.
type LoadOpts struct {
	// Tests adds the in-package and external test variants.
	Tests bool
	// FactsCache names a directory for cached per-package facts, keyed
	// on source content and dependency fact hashes; "" disables. A hit
	// skips parsing and type-checking dependency-only packages.
	FactsCache string
	// Escapes runs the compiler's escape analysis (-m -m) over each
	// target package so hotalloc has data.
	Escapes bool
}

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Standard   bool
	Export     string
	DepOnly    bool
	ForTest    string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	ImportMap  map[string]string
	Incomplete bool
	Error      *struct{ Err string }
}

// Load lists patterns with the go tool (compiling export data for
// every dependency — works fully offline) and type-checks each matched
// package from source against that export data. Module-local
// dependency packages outside the pattern are parsed too, facts-only,
// so every analysis sees closed cross-package summaries; go list's
// -deps output is already in dependency order, which AnalyzeOpts
// relies on.
func Load(dir string, patterns []string, opts LoadOpts) ([]*Package, error) {
	args := []string{"list", "-export", "-deps", "-json"}
	if opts.Tests {
		args = append(args, "-test")
	}
	args = append(args, "--")
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listPkg)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		pkgs = append(pkgs, lp)
	}

	exports := make(map[string]string)
	for _, lp := range pkgs {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}

	// Targets: pattern-matched packages. When test variants are listed,
	// the augmented variant ("x [x.test]") subsumes the plain one.
	augmented := make(map[string]bool)
	for _, lp := range pkgs {
		if !lp.DepOnly && lp.ForTest != "" {
			augmented[lp.ForTest] = true
		}
	}
	fset := token.NewFileSet()
	facts := make(FactSet)
	factsHash := make(map[string]string)
	var out2 []*Package
	for _, lp := range pkgs {
		if lp.Standard || strings.HasSuffix(lp.ImportPath, ".test") {
			continue // std deps carry no railvet facts; .test mains are synthesized
		}
		if lp.ForTest == "" && augmented[lp.ImportPath] {
			continue // the test-augmented variant covers these files
		}
		plain := plainPath(lp.ImportPath)
		if lp.Error != nil {
			return nil, fmt.Errorf("%s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.DepOnly {
			pf, hash, err := depFacts(fset, lp, plain, exports, facts, factsHash, opts.FactsCache)
			if err != nil {
				return nil, err
			}
			facts[plain] = pf
			factsHash[plain] = hash
			continue
		}
		p, err := checkPackage(fset, lp, plain, exports)
		if err != nil {
			return nil, err
		}
		p.Facts = ComputeFacts(p, facts)
		facts[plain] = p.Facts
		enc, err := EncodeFacts(p.Facts)
		if err != nil {
			return nil, err
		}
		factsHash[plain] = hashBytes(enc)
		if opts.FactsCache != "" {
			writeFactsCache(opts.FactsCache, lp, plain, factsHash, enc)
		}
		if opts.Escapes && lp.ForTest == "" && len(lp.GoFiles) > 0 {
			esc, err := CompileEscapes(plain, lp.Dir, lp.GoFiles, lp.ImportMap, exports)
			if err != nil {
				return nil, err
			}
			p.Escapes = esc
		}
		p.Deps = facts
		out2 = append(out2, p)
	}
	return out2, nil
}

// plainPath strips go list's test-variant suffix:
// "x [x.test]" -> "x", "x_test [x.test]" -> "x_test".
func plainPath(importPath string) string {
	if i := strings.IndexByte(importPath, ' '); i >= 0 {
		return importPath[:i]
	}
	return importPath
}

// depFacts computes (or loads from cache) the facts of a
// dependency-only package.
func depFacts(fset *token.FileSet, lp *listPkg, plain string, exports map[string]string, deps FactSet, factsHash map[string]string, cacheDir string) (*PkgFacts, string, error) {
	var key string
	if cacheDir != "" {
		key = factsCacheKey(lp, plain, factsHash)
		if key != "" {
			if data, err := os.ReadFile(filepath.Join(cacheDir, key+".json")); err == nil {
				if pf, err := DecodeFacts(data); err == nil && pf != nil {
					return pf, hashBytes(data), nil
				}
			}
		}
	}
	p, err := checkPackage(fset, lp, plain, exports)
	if err != nil {
		return nil, "", err
	}
	pf := ComputeFacts(p, deps)
	enc, err := EncodeFacts(pf)
	if err != nil {
		return nil, "", err
	}
	if cacheDir != "" && key != "" {
		if err := os.MkdirAll(cacheDir, 0o777); err == nil {
			_ = os.WriteFile(filepath.Join(cacheDir, key+".json"), enc, 0o666)
		}
	}
	return pf, hashBytes(enc), nil
}

// factsCacheKey keys a package's facts on its source bytes and the fact
// hashes of its imports, so any change below invalidates everything
// above. Returns "" when a source file cannot be read.
func factsCacheKey(lp *listPkg, plain string, factsHash map[string]string) string {
	h := sha256.New()
	io.WriteString(h, "railvet-facts-v1\n"+plain+"\n")
	for _, name := range lp.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, name)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return ""
		}
		io.WriteString(h, name+"\n")
		h.Write(data)
	}
	imps := append([]string(nil), lp.Imports...)
	sort.Strings(imps)
	for _, imp := range imps {
		mapped := imp
		if m, ok := lp.ImportMap[imp]; ok {
			mapped = m
		}
		if fh := factsHash[plainPath(mapped)]; fh != "" {
			io.WriteString(h, plainPath(mapped)+"="+fh+"\n")
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

func writeFactsCache(cacheDir string, lp *listPkg, plain string, factsHash map[string]string, enc []byte) {
	key := factsCacheKey(lp, plain, factsHash)
	if key == "" {
		return
	}
	if err := os.MkdirAll(cacheDir, 0o777); err != nil {
		return
	}
	_ = os.WriteFile(filepath.Join(cacheDir, key+".json"), enc, 0o666)
}

func hashBytes(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// checkPackage parses and type-checks one listed package against the
// export data of its dependencies. The package is checked under its
// plain import path (test-variant suffix stripped) so function
// identities match what dependents observe through export data.
func checkPackage(fset *token.FileSet, lp *listPkg, plain string, exports map[string]string) (*Package, error) {
	if len(lp.CgoFiles) > 0 {
		return nil, fmt.Errorf("%s: cgo packages are not supported by railvet", lp.ImportPath)
	}
	var files []*ast.File
	for _, name := range lp.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	pkg, info, err := TypeCheck(fset, plain, files, lp.ImportMap, exports)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", lp.ImportPath, err)
	}
	return &Package{PkgPath: plain, Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

// TypeCheck type-checks parsed files as package path, resolving
// imports through export-data files (importMap translates source
// import paths to listed package paths; exports maps those to export
// data produced by `go list -export`).
func TypeCheck(fset *token.FileSet, path string, files []*ast.File, importMap map[string]string, exports map[string]string) (*types.Package, *types.Info, error) {
	return TypeCheckDeps(fset, path, files, importMap, exports, nil)
}

// TypeCheckDeps is TypeCheck with additional in-memory dependency
// packages (multi-package fixtures, where sub-packages import each
// other without export data on disk).
func TypeCheckDeps(fset *token.FileSet, path string, files []*ast.File, importMap map[string]string, exports map[string]string, local map[string]*types.Package) (*types.Package, *types.Info, error) {
	return TypeCheckWith(ExportImporter(fset, importMap, exports), fset, path, files, local)
}

// ExportImporter builds an importer over `go list -export` data. The
// importer caches what it loads, so checking several packages against
// the SAME importer keeps dependency type identities consistent —
// multi-package fixtures must share one, or package a's net.Conn is not
// package b's net.Conn.
func ExportImporter(fset *token.FileSet, importMap map[string]string, exports map[string]string) types.Importer {
	lookup := func(p string) (io.ReadCloser, error) {
		if importMap != nil {
			if mapped, ok := importMap[p]; ok {
				p = mapped
			}
		}
		file, ok := exports[p]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", p)
		}
		return os.Open(file)
	}
	return unsafeAware{importer.ForCompiler(fset, "gc", lookup)}
}

// TypeCheckWith type-checks files as package path against a shared
// importer, serving in-memory local packages first.
func TypeCheckWith(imp types.Importer, fset *token.FileSet, path string, files []*ast.File, local map[string]*types.Package) (*types.Package, *types.Info, error) {
	info := NewInfo()
	conf := types.Config{
		Importer: localFirst{imp, local},
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// NewInfo allocates the types.Info maps the passes rely on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// unsafeAware short-circuits the "unsafe" pseudo-package, which has no
// export data.
type unsafeAware struct{ types.Importer }

func (u unsafeAware) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return u.Importer.Import(path)
}

// localFirst serves in-memory packages before falling back to export
// data.
type localFirst struct {
	types.Importer
	local map[string]*types.Package
}

func (l localFirst) Import(path string) (*types.Package, error) {
	if p, ok := l.local[path]; ok {
		return p, nil
	}
	return l.Importer.Import(path)
}
