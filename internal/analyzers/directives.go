package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// directivePrefix starts every railvet annotation comment.
const directivePrefix = "//railvet:"

// funcFlags records which declared functions carry marker annotations.
type funcFlags struct {
	hot      map[*types.Func]bool
	upfilter map[*types.Func]bool
}

// ignoreRange is one //railvet:ignore directive's suppression scope.
type ignoreRange struct {
	pass      string
	file      string
	fromLine  int
	toLine    int
	pos       token.Pos
	justified bool
	used      bool // suppressed at least one finding this run
}

// directives is the per-package annotation index.
type directives struct {
	flags   *funcFlags
	ignores []ignoreRange
	// errors are malformed annotations, reported unsuppressably under
	// the pass name "railvet".
	errors []Diagnostic
}

// suppressed reports whether a diagnostic at pos is covered by an
// ignore directive for the given pass.
func (d *directives) suppressed(fset *token.FileSet, pass string, pos token.Pos) bool {
	p := fset.Position(pos)
	for i := range d.ignores {
		ig := &d.ignores[i]
		if !ig.justified || ig.pass != pass {
			continue
		}
		if ig.file == p.Filename && ig.fromLine <= p.Line && p.Line <= ig.toLine {
			ig.used = true
			return true
		}
	}
	return false
}

// stale returns a diagnostic for every justified ignore that suppressed
// nothing, restricted to the passes that actually ran (selected minus
// muted): the finding it was written for is gone, so the suppression —
// and its justification — are dead weight that will silently swallow
// the next real finding on that line.
func (d *directives) stale(selected, muted map[string]bool) []Diagnostic {
	var out []Diagnostic
	for i := range d.ignores {
		ig := &d.ignores[i]
		if !ig.justified || ig.used || !selected[ig.pass] || muted[ig.pass] {
			continue
		}
		out = append(out, Diagnostic{
			Pass: "railvet",
			Pos:  ig.pos,
			Message: fmt.Sprintf("stale suppression: railvet:ignore %s covers %s:%d-%d but the pass no longer fires there — delete it (or it will silently swallow the next real finding)",
				ig.pass, shortFile(ig.file), ig.fromLine, ig.toLine),
		})
	}
	return out
}

// shortFile trims a path to its base name for messages.
func shortFile(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// scanDirectives indexes every railvet annotation in the package.
func scanDirectives(fset *token.FileSet, files []*ast.File, info *types.Info, passNames map[string]bool) *directives {
	d := &directives{flags: &funcFlags{
		hot:      make(map[*types.Func]bool),
		upfilter: make(map[*types.Func]bool),
	}}

	// Function-doc annotations: hotpath, upfilter, and whole-function
	// ignores.
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			fn, _ := info.Defs[fd.Name].(*types.Func)
			for _, c := range fd.Doc.List {
				kind, rest, ok := splitDirective(c.Text)
				if !ok {
					continue
				}
				switch kind {
				case "hotpath":
					if fn != nil {
						d.flags.hot[fn] = true
					}
				case "upfilter":
					if fn != nil {
						d.flags.upfilter[fn] = true
					}
				case "ignore":
					d.addIgnore(fset, c, rest, funcLines(fset, fd), passNames)
				default:
					d.errf(c.Pos(), "unknown railvet directive %q", kind)
				}
			}
		}
	}

	// Line-scoped ignores (and misplaced markers) anywhere else.
	seen := make(map[token.Pos]bool)
	for _, f := range files {
		if f.Doc != nil {
			for _, c := range f.Doc.List {
				seen[c.Pos()] = true // package docs may cite the grammar
			}
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
				for _, c := range fd.Doc.List {
					seen[c.Pos()] = true
				}
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if seen[c.Pos()] {
					continue
				}
				kind, rest, ok := splitDirective(c.Text)
				if !ok {
					continue
				}
				switch kind {
				case "ignore":
					line := fset.Position(c.Pos()).Line
					d.addIgnore(fset, c, rest, [2]int{line, line + 1}, passNames)
				case "hotpath", "upfilter":
					d.errf(c.Pos(), "railvet:%s must be in a function's doc comment", kind)
				default:
					d.errf(c.Pos(), "unknown railvet directive %q", kind)
				}
			}
		}
	}
	return d
}

// addIgnore validates and records one ignore directive. Grammar:
// //railvet:ignore <pass> <justification...>
func (d *directives) addIgnore(fset *token.FileSet, c *ast.Comment, rest string, lines [2]int, passNames map[string]bool) {
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		d.errf(c.Pos(), "railvet:ignore needs a pass name and a justification")
		return
	}
	pass := fields[0]
	if !passNames[pass] {
		d.errf(c.Pos(), "railvet:ignore names unknown pass %q", pass)
		return
	}
	if len(fields) < 2 {
		d.errf(c.Pos(), "railvet:ignore %s needs a justification — an unexplained suppression is reviewer folklore again", pass)
		return
	}
	d.ignores = append(d.ignores, ignoreRange{
		pass:      pass,
		file:      fset.Position(c.Pos()).Filename,
		fromLine:  lines[0],
		toLine:    lines[1],
		pos:       c.Pos(),
		justified: true,
	})
}

func (d *directives) errf(pos token.Pos, format string, args ...any) {
	d.errors = append(d.errors, Diagnostic{Pass: "railvet", Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// splitDirective parses "//railvet:<kind> <rest>".
func splitDirective(text string) (kind, rest string, ok bool) {
	if !strings.HasPrefix(text, directivePrefix) {
		return "", "", false
	}
	body := text[len(directivePrefix):]
	if i := strings.IndexAny(body, " \t"); i >= 0 {
		return body[:i], strings.TrimSpace(body[i+1:]), true
	}
	return body, "", true
}

// funcLines returns the first and last source line of a declaration.
func funcLines(fset *token.FileSet, fd *ast.FuncDecl) [2]int {
	return [2]int{fset.Position(fd.Pos()).Line, fset.Position(fd.End()).Line}
}
