package analyzers

import (
	"bytes"
	"fmt"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// HotAlloc is the mechanized front of the zero-copy roadmap item: no
// *new* heap allocations on hot paths. The driver compiles each target
// package with `go tool compile -m -m` (the real escape analysis — not
// a reimplementation), maps every "escapes to heap"/"moved to heap"
// diagnostic into the function that contains it, and reports the ones
// inside hot functions (//railvet:hotpath roots plus everything the
// whole-program call graph reaches from them) that the committed
// baseline does not already account for.
//
// The baseline (hotalloc_baseline.json at the module root) maps funcID
// -> tolerated escape-site count. Pre-existing escapes are baselined so
// CI fails on regressions only; when zero-copy work removes one, run
// `railvet -hotalloc-write` to ratchet the baseline down — raising a
// count by hand is a reviewed diff, exactly like a perf regression.
//
// In `go vet -vettool` mode no escape data is collected (the compiler
// already ran; its -m output is gone) and the pass stays silent.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "no unbaselined heap escapes in //railvet:hotpath functions (go tool compile -m)",
	Run:  runHotAlloc,
}

// EscapeSite is one escape-analysis diagnostic from the compiler.
type EscapeSite struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Msg  string `json:"msg"`
}

func runHotAlloc(pass *Pass) {
	if pass.Escapes == nil {
		return // driver collected no escape data (vettool mode, fixtures without compile)
	}
	decls := declaredFuncs(pass.Files, pass.Info)
	rootOf := pass.hotRootOf()

	// Source ranges of hot declared functions, for site attribution.
	type hotFn struct {
		fn     *types.Func
		file   string
		lo, hi int // line range
	}
	var hots []hotFn
	for fn, fd := range decls {
		if _, ok := rootOf[funcID(fn)]; !ok {
			continue
		}
		start := pass.Fset.Position(fd.Pos())
		end := pass.Fset.Position(fd.End())
		hots = append(hots, hotFn{fn: fn, file: start.Filename, lo: start.Line, hi: end.Line})
	}

	// Group escape sites by enclosing hot function.
	sites := make(map[*types.Func][]EscapeSite)
	for _, s := range pass.Escapes {
		for _, h := range hots {
			if s.File == h.file && h.lo <= s.Line && s.Line <= h.hi {
				sites[h.fn] = append(sites[h.fn], s)
				break
			}
		}
	}

	for fn, ss := range sites {
		allowed := pass.Baseline[funcID(fn)]
		if len(ss) <= allowed {
			continue
		}
		sort.Slice(ss, func(i, j int) bool {
			return ss[i].Line < ss[j].Line || (ss[i].Line == ss[j].Line && ss[i].Col < ss[j].Col)
		})
		for _, s := range ss {
			pass.Reportf(posFor(pass.Fset, s),
				"heap escape on a hot path: %s in %s (root %s; %d site(s), baseline %d) — pool it, stack it, or baseline it via railvet -hotalloc-write",
				s.Msg, fn.Name(), rootName(rootOf[funcID(fn)]), len(ss), allowed)
		}
	}
}

// posFor converts a compiler file:line:col back into a token.Pos inside
// the pass's file set (best effort; NoPos keeps the finding, unanchored).
func posFor(fset *token.FileSet, s EscapeSite) token.Pos {
	var pos token.Pos = token.NoPos
	fset.Iterate(func(f *token.File) bool {
		if f.Name() != s.File {
			return true
		}
		if s.Line >= 1 && s.Line <= f.LineCount() {
			pos = f.LineStart(s.Line)
			if s.Col > 1 {
				pos += token.Pos(s.Col - 1)
			}
		}
		return false
	})
	return pos
}

// CompileEscapes runs the gc compiler's escape analysis over one
// package's files and returns the heap-escape diagnostics. importMap
// and exports come from the same `go list -export` run the loader used,
// so the compile resolves every import offline through export data.
func CompileEscapes(pkgPath, dir string, goFiles []string, importMap map[string]string, exports map[string]string) ([]EscapeSite, error) {
	tmp, err := os.MkdirTemp("", "railvet-hotalloc-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)

	var cfg bytes.Buffer
	fmt.Fprintf(&cfg, "# railvet hotalloc import config\n")
	for from, to := range importMap {
		fmt.Fprintf(&cfg, "importmap %s=%s\n", from, to)
	}
	for path, file := range exports {
		fmt.Fprintf(&cfg, "packagefile %s=%s\n", path, file)
	}
	cfgPath := filepath.Join(tmp, "importcfg")
	if err := os.WriteFile(cfgPath, cfg.Bytes(), 0o666); err != nil {
		return nil, err
	}

	args := []string{"tool", "compile", "-p", pkgPath, "-importcfg", cfgPath,
		"-m", "-m", "-o", filepath.Join(tmp, "out.a")}
	for _, f := range goFiles {
		if !filepath.IsAbs(f) {
			f = filepath.Join(dir, f)
		}
		args = append(args, f)
	}
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go tool compile -m %s: %v\n%s", pkgPath, err, out)
	}
	return ParseEscapes(out), nil
}

// ParseEscapes extracts heap-escape diagnostics from `-m -m` compiler
// output. Only the verdict lines count ("escapes to heap", "moved to
// heap"); the flow-explanation lines -m -m adds, and the "does not
// escape" all-clears, are skipped. -m -m prints each verdict twice
// (once introducing the flow explanation, once bare), so sites are
// deduplicated.
func ParseEscapes(out []byte) []EscapeSite {
	var sites []EscapeSite
	seen := make(map[EscapeSite]bool)
	for _, line := range strings.Split(string(out), "\n") {
		file, rest, ok := strings.Cut(line, ".go:")
		if !ok {
			continue
		}
		parts := strings.SplitN(rest, ":", 3)
		if len(parts) != 3 {
			continue
		}
		lineNo, err1 := strconv.Atoi(parts[0])
		col, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil {
			continue
		}
		msg := strings.TrimSpace(parts[2])
		if strings.HasPrefix(parts[2], "  ") {
			continue // -m -m flow explanation, indented under the verdict
		}
		if !strings.Contains(msg, "escapes to heap") && !strings.HasPrefix(msg, "moved to heap") {
			continue
		}
		msg = strings.TrimSuffix(msg, ":")
		s := EscapeSite{File: file + ".go", Line: lineNo, Col: col, Msg: msg}
		if seen[s] {
			continue
		}
		seen[s] = true
		sites = append(sites, s)
	}
	return sites
}

// CountEscapes tallies hot-function escape sites per funcID — the shape
// the baseline file stores and `railvet -hotalloc-write` regenerates.
func CountEscapes(pkg *Package, rootOf map[string]string) map[string]int {
	if pkg.Escapes == nil {
		return nil
	}
	decls := declaredFuncs(pkg.Files, pkg.Info)
	counts := make(map[string]int)
	for fn, fd := range decls {
		id := funcID(fn)
		if _, hot := rootOf[id]; !hot {
			continue
		}
		start := pkg.Fset.Position(fd.Pos())
		end := pkg.Fset.Position(fd.End())
		for _, s := range pkg.Escapes {
			if s.File == start.Filename && start.Line <= s.Line && s.Line <= end.Line {
				counts[id]++
			}
		}
	}
	return counts
}
