package analyzers

import (
	"fmt"
	"go/token"
	"sort"
)

// Finding is one post-filtering railvet result.
type Finding struct {
	Pass    string
	Pos     token.Position
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Pass, f.Message)
}

// Analyze runs the given passes over every package, applying the
// ignore directives, and returns the surviving findings in positional
// order. Malformed directives surface as findings under the pass name
// "railvet" and cannot be suppressed.
func Analyze(pkgs []*Package, passes []*Analyzer) []Finding {
	names := make(map[string]bool, len(passes))
	for _, a := range passes {
		names[a.Name] = true
	}
	var out []Finding
	for _, pkg := range pkgs {
		dirs := scanDirectives(pkg.Fset, pkg.Files, pkg.Info, names)
		for _, d := range dirs.errors {
			out = append(out, Finding{Pass: d.Pass, Pos: pkg.Fset.Position(d.Pos), Message: d.Message})
		}
		for _, a := range passes {
			p := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Pkg,
				Info:     pkg.Info,
				funcs:    dirs.flags,
			}
			p.report = func(d Diagnostic) {
				if dirs.suppressed(pkg.Fset, d.Pass, d.Pos) {
					return
				}
				out = append(out, Finding{Pass: d.Pass, Pos: pkg.Fset.Position(d.Pos), Message: d.Message})
			}
			a.Run(p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Pass < out[j].Pass
	})
	return out
}
