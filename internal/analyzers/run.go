package analyzers

import (
	"fmt"
	"go/token"
	"sort"
)

// Finding is one post-filtering railvet result.
type Finding struct {
	Pass    string
	Pos     token.Position
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Pass, f.Message)
}

// Options tunes a railvet run beyond pass selection.
type Options struct {
	// Stale turns unused //railvet:ignore directives into findings: a
	// suppression whose pass no longer fires at that line is a lie in
	// the source — the justification outlived the finding.
	Stale bool
	// Baseline is hotalloc's funcID -> tolerated-escape-count map.
	Baseline map[string]int
}

// Analyze runs the given passes over every package with default
// options.
func Analyze(pkgs []*Package, passes []*Analyzer) []Finding {
	return AnalyzeOpts(pkgs, passes, Options{})
}

// prepareFacts assembles the whole-load fact set — driver-provided
// dependency facts first, then each loaded package's own summary in
// dependency order — and derives the global hot set from it.
func prepareFacts(pkgs []*Package) (FactSet, map[string]string) {
	shared := make(FactSet)
	for _, pkg := range pkgs {
		for path, pf := range pkg.Deps {
			if shared[path] == nil {
				shared[path] = pf
			}
		}
	}
	for _, pkg := range pkgs {
		if pkg.Facts == nil {
			pkg.Facts = ComputeFacts(pkg, shared)
		}
		shared[pkg.PkgPath] = pkg.Facts
	}
	return shared, GlobalHot(shared)
}

// HotAllocCounts tallies hot-function escape sites per funcID across a
// load — the content of the hotalloc baseline file, which
// `railvet -hotalloc-write` regenerates.
func HotAllocCounts(pkgs []*Package) map[string]int {
	_, hotRoots := prepareFacts(pkgs)
	counts := make(map[string]int)
	for _, pkg := range pkgs {
		for id, n := range CountEscapes(pkg, hotRoots) {
			counts[id] += n
		}
	}
	return counts
}

// AnalyzeOpts runs the given passes over every package, applying the
// ignore directives, and returns the surviving findings in positional
// order. Packages must arrive in dependency order (dependencies first —
// Load guarantees it): facts are computed front to back, so each
// package's analysis sees the closed summaries of everything it
// imports, and the global hot set spans the whole load. Malformed
// directives surface as findings under the pass name "railvet" and
// cannot be suppressed.
func AnalyzeOpts(pkgs []*Package, passes []*Analyzer, opts Options) []Finding {
	names := make(map[string]bool, len(passes))
	for _, a := range passes {
		names[a.Name] = true
	}

	shared, hotRoots := prepareFacts(pkgs)

	var out []Finding
	for _, pkg := range pkgs {
		// Directives are validated against every registered pass, not
		// just the selected ones: `-run hotalloc` must not flag a valid
		// railvet:ignore for another pass as unknown.
		dirs := scanDirectives(pkg.Fset, pkg.Files, pkg.Info, allPassNames())
		for _, d := range dirs.errors {
			out = append(out, Finding{Pass: d.Pass, Pos: pkg.Fset.Position(d.Pos), Message: d.Message})
		}
		for _, a := range passes {
			p := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Pkg,
				Info:     pkg.Info,
				Facts:    shared,
				HotRoots: hotRoots,
				Escapes:  pkg.Escapes,
				Baseline: opts.Baseline,
				funcs:    dirs.flags,
			}
			p.report = func(d Diagnostic) {
				if dirs.suppressed(pkg.Fset, d.Pass, d.Pos) {
					return
				}
				out = append(out, Finding{Pass: d.Pass, Pos: pkg.Fset.Position(d.Pos), Message: d.Message})
			}
			a.Run(p)
		}
		if opts.Stale {
			// A pass that could not run has no say on staleness:
			// hotalloc without escape data fires nothing by design.
			mute := map[string]bool{}
			if pkg.Escapes == nil {
				mute["hotalloc"] = true
			}
			for _, d := range dirs.stale(names, mute) {
				out = append(out, Finding{Pass: d.Pass, Pos: pkg.Fset.Position(d.Pos), Message: d.Message})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Pass < out[j].Pass
	})
	return out
}
