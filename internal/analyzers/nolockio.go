package analyzers

import (
	"fmt"
	"go/ast"
	"sort"
	"strings"
)

// NoLockIO enforces the PR 3 submitter invariant: no sync.Mutex or
// sync.RWMutex may be held across a call into the transport —
// fabric.Rail.SendEager/SendControl/SendData or a net.Conn write. A
// rail write can block indefinitely (dead peer, full ring, congested
// socket); a lock held across it serialises every flow that hashes to
// the same shard behind one stuck destination, which is exactly the
// contention the sharded engine exists to avoid.
//
// The pass walks each function body in source order, tracking which
// mutexes are held: x.Lock()/x.RLock() acquires, x.Unlock()/x.RUnlock()
// releases, `defer x.Unlock()` holds to the end of the function. A
// transport call while any mutex is held is a finding. Function
// literals are analyzed as independent bodies (they run on their own
// goroutine or after the enclosing frame released its locks); a
// literal that itself locks across a send is still caught.
//
// With the facts layer, "transport call" is transitive: a call into any
// function — same package or a dependency — whose exported facts say it
// reaches a fabric send or net.Conn write on its own goroutine is
// treated exactly like the send itself. The PR 6 pass trusted package
// boundaries; a lock held in internal/core across a helper in
// internal/livenet that writes to a socket now fires here.
var NoLockIO = &Analyzer{
	Name: "nolockio",
	Doc:  "no mutex may be held across fabric sends or net.Conn writes",
	Run:  runNoLockIO,
}

func runNoLockIO(pass *Pass) {
	for _, fb := range funcBodies(pass.Files, true) {
		checkLockIO(pass, fb)
	}
}

func checkLockIO(pass *Pass, fb funcBody) {
	// held maps a lock expression (as printed source) to the operation
	// that acquired it; deferred release keeps it held to the end.
	type acquisition struct {
		op       string
		deferred bool
	}
	held := make(map[string]acquisition)

	walkSkippingFuncLits(fb.body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.DeferStmt:
			if key, op := mutexOp(pass.Info, st.Call); key != "" {
				switch op {
				case "Unlock", "RUnlock":
					if a, ok := held[key]; ok {
						a.deferred = true
						held[key] = a
					}
				}
			}
			return false // the deferred call itself runs at exit
		case *ast.CallExpr:
			if key, op := mutexOp(pass.Info, st); key != "" {
				switch op {
				case "Lock", "RLock":
					held[key] = acquisition{op: op}
				case "Unlock", "RUnlock":
					if a, ok := held[key]; !ok || !a.deferred {
						delete(held, key)
					}
				}
				return true
			}
			direct := isFabricSend(pass.Info, st) || isNetWrite(pass.Info, st)
			via := ""
			if !direct {
				if f := pass.Facts.Func(calleeFunc(pass.Info, st)); f != nil && f.IO != "" {
					via = f.IO
				}
			}
			if direct || via != "" {
				if len(held) > 0 {
					keys := make([]string, 0, len(held))
					for k := range held {
						keys = append(keys, k)
					}
					sort.Strings(keys)
					reach := ""
					if via != "" {
						reach = fmt.Sprintf(" (reaches %s)", via)
					}
					pass.Reportf(st.Pos(),
						"transport call%s with %s held — a blocked rail write wedges every flow behind this lock; release before the send (PR 3 submitter invariant)",
						reach, strings.Join(keys, ", "))
				}
			}
		}
		return true
	})
}
