package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// StatsOrder enforces the PR 5 "eager stats before enqueue" fix as a
// standing rule: in any function that hands a frame to the transport
// (a fabric Rail send, a net.Conn write, or a tasklet submission that
// will perform one), stats counters must be bumped BEFORE the enqueue.
// The moment the frame is enqueued, the receiver can process it and
// its ack can fire RemoteDone on another worker; a counter that lags
// remote completion reads as a lost message to any observer that
// checks stats after waiting for the ack.
//
// A "stats counter" is an atomic Add/Store reached through a selector
// chain that passes a field named "stats" (the engine's convention) or
// a struct type named *Counters. Function literals are independent
// bodies: a closure enqueued to run elsewhere orders its own effects.
var StatsOrder = &Analyzer{
	Name: "statsorder",
	Doc:  "remotely observable stats must be bumped before the transport enqueue",
	Run:  runStatsOrder,
}

func runStatsOrder(pass *Pass) {
	for _, fb := range funcBodies(pass.Files, true) {
		checkStatsOrder(pass, fb)
	}
}

func checkStatsOrder(pass *Pass, fb funcBody) {
	var firstEnqueue *ast.CallExpr
	walkSkippingFuncLits(fb.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isTransportEnqueue(pass.Info, call) {
			if firstEnqueue == nil {
				firstEnqueue = call
			}
			return true
		}
		if firstEnqueue == nil {
			return true
		}
		if statsCounterBump(pass.Info, call) {
			pass.Reportf(call.Pos(),
				"stats counter bumped after the transport enqueue at %s — the receiver's ack can observe the counter before it moves; bump before enqueueing (PR 5 eager-stats bug class)",
				describePos(pass.Fset, firstEnqueue.Pos()))
		}
		return true
	})
}

// statsCounterBump reports whether call mutates a stats counter: a
// typed-atomic Add/Store (or a sync/atomic Add*/Store* by address)
// whose target is reached through a field named "stats" or a struct
// type named *Counters/*counters.
func statsCounterBump(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	// atomic.AddUint64(&e.stats.n, 1) form (package-level functions
	// only: the typed-atomic methods also live in sync/atomic).
	if fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" && recvType(fn) == nil && isAtomicOpName(fn.Name()) {
		if strings.HasPrefix(fn.Name(), "Add") || strings.HasPrefix(fn.Name(), "Store") {
			for _, arg := range call.Args {
				if un, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok {
					if isStatsChain(info, un.X) {
						return true
					}
				}
			}
		}
		return false
	}
	// e.stats.n.Add(1) form: a method on the typed atomics.
	switch fn.Name() {
	case "Add", "Store":
	default:
		return false
	}
	rt := recvType(fn)
	if rt == nil {
		return false
	}
	n := namedOf(rt)
	if n == nil || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != "sync/atomic" {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return isStatsChain(info, sel.X)
}

// isStatsChain reports whether the selector chain of expr passes a
// field named "stats" or a type named like a counters struct.
func isStatsChain(info *types.Info, expr ast.Expr) bool {
	for {
		sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
		if !ok {
			return false
		}
		if sel.Sel.Name == "stats" {
			return true
		}
		if tv, ok := info.Types[sel]; ok {
			if n := namedOf(tv.Type); n != nil {
				name := strings.ToLower(n.Obj().Name())
				if strings.HasSuffix(name, "counters") {
					return true
				}
			}
		}
		expr = sel.X
	}
}
