package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockOrder mechanizes the shard-lock discipline the PR 3 sharded
// rewrite of internal/core made necessary. The engine keeps two sharded
// lock families — flow shards, keyed (peer, tag), and unit shards,
// keyed (peer, unit id) — and a progress worker may need both while
// moving one message. Sharded locks deadlock in two ways annotations
// cannot see:
//
//   - Cross-class inversion: if most paths take a flow-shard lock and
//     then a unit-shard lock, a single path taking them in the opposite
//     order deadlocks the moment two workers meet. The pass *derives*
//     the partial order from the package itself (the dominant observed
//     direction per class pair) and reports the paths that invert it.
//   - Same-class nesting: two locks of the same shard class held at
//     once deadlock when two workers take them in opposite shard
//     index order; there is no safe static order between equals.
//
// It also enforces the shard/submitter boundary: a shard lock must
// never be held across a call into progress.Submitter (the flush
// machinery) — Put takes the submitter's own queue locks and schedules
// flush work, which welds the shard classes to the submit plane's lock
// graph and re-creates the lock-across-I/O shape one level up.
//
// A "shard class" is derived, not annotated: a named struct type that
// both embeds a sync.Mutex/RWMutex and appears in the package as a
// slice element ([]flowShard, []unitShard — a lock array somebody
// indexes by hash). The pass runs only in packages named "core".
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "shard locks in core follow the derived partial order, never nest same-class, never cover Submitter calls",
	Run:  runLockOrder,
}

// lockEvent is one observed "acquired B while A held" edge.
type lockEvent struct {
	held, acq string // class names
	pos       token.Pos
	heldPos   token.Pos
}

func runLockOrder(pass *Pass) {
	if pass.Pkg.Name() != "core" {
		return
	}
	shards := shardClasses(pass)
	if len(shards) == 0 {
		return
	}
	var events []lockEvent
	for _, fb := range funcBodies(pass.Files, true) {
		events = append(events, scanLockOrder(pass, fb, shards)...)
	}

	// Derive the partial order: per unordered class pair, the dominant
	// observed direction is canonical; the minority direction is an
	// inversion. A tie is reported in both directions — the order is
	// then genuinely ambiguous and needs a human.
	count := make(map[[2]string]int)
	for _, e := range events {
		count[[2]string{e.held, e.acq}]++
	}
	for _, e := range events {
		fwd := count[[2]string{e.held, e.acq}]
		rev := count[[2]string{e.acq, e.held}]
		if rev == 0 {
			continue // unopposed direction: this *is* the derived order
		}
		switch {
		case fwd < rev:
			pass.Reportf(e.pos,
				"lock-order inversion: %s lock acquired while %s lock held (held since %s) — the package's dominant order is %s before %s (%d vs %d sites); two workers meeting across these classes deadlock",
				e.acq, e.held, describePos(pass.Fset, e.heldPos), e.acq, e.held, rev, fwd)
		case fwd == rev:
			pass.Reportf(e.pos,
				"ambiguous lock order between %s and %s (%d sites each way): pick one direction and fix the others — a partial order that is not a partial order deadlocks",
				e.held, e.acq, fwd)
		}
	}
}

// scanLockOrder walks one body in source order, tracking held locks
// with their shard classes.
func scanLockOrder(pass *Pass, fb funcBody, shards map[*types.Named]bool) []lockEvent {
	type heldLock struct {
		class    *types.Named // nil for non-shard locks
		pos      token.Pos
		deferred bool
	}
	held := make(map[string]heldLock) // key: printed lock expr
	var events []lockEvent

	shardHeld := func() (string, heldLock, bool) {
		keys := make([]string, 0, len(held))
		for k := range held {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if h := held[k]; h.class != nil && shards[h.class] {
				return k, h, true
			}
		}
		return "", heldLock{}, false
	}

	walkSkippingFuncLits(fb.body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.DeferStmt:
			if key, op := mutexOp(pass.Info, st.Call); key != "" {
				if op == "Unlock" || op == "RUnlock" {
					if h, ok := held[key]; ok {
						h.deferred = true
						held[key] = h
					}
				}
			}
			return false
		case *ast.CallExpr:
			if key, op := mutexOp(pass.Info, st); key != "" {
				switch op {
				case "Lock", "RLock":
					class := lockOwnerClass(pass.Info, st)
					if class != nil && shards[class] {
						for k, h := range held {
							if h.class == nil || !shards[h.class] {
								continue
							}
							if h.class == class {
								pass.Reportf(st.Pos(),
									"two %s locks held at once (%s and %s, first at %s) — same-class shard locks have no safe order; two workers taking them in opposite shard-index order deadlock",
									class.Obj().Name(), k, key, describePos(pass.Fset, h.pos))
							} else {
								events = append(events, lockEvent{
									held:    h.class.Obj().Name(),
									acq:     class.Obj().Name(),
									pos:     st.Pos(),
									heldPos: h.pos,
								})
							}
						}
					}
					held[key] = heldLock{class: class, pos: st.Pos()}
				case "Unlock", "RUnlock":
					if h, ok := held[key]; !ok || !h.deferred {
						delete(held, key)
					}
				}
				return true
			}
			if fn := calleeFunc(pass.Info, st); fn != nil && isSubmitterMethod(fn) {
				if key, h, ok := shardHeld(); ok {
					pass.Reportf(st.Pos(),
						"call into progress.Submitter (%s) with shard lock %s held (%s, acquired at %s) — flushes must be scheduled outside shard locks (%s)",
						fn.Name(), key, h.class.Obj().Name(), describePos(pass.Fset, h.pos),
						"the submit plane has its own lock graph")
				}
			}
		}
		return true
	})
	return events
}

// lockOwnerClass resolves the named type owning the mutex field of a
// lock call `owner.mu.Lock()`, or nil for bare/package-level mutexes.
func lockOwnerClass(info *types.Info, call *ast.CallExpr) *types.Named {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	tv, ok := info.Types[inner.X]
	if !ok {
		return nil
	}
	return namedOf(tv.Type)
}

// shardClasses derives the package's sharded lock classes: named struct
// types with a sync mutex field that some other type or variable in the
// package holds a slice of.
func shardClasses(pass *Pass) map[*types.Named]bool {
	scope := pass.Pkg.Scope()
	hasMutex := func(n *types.Named) bool {
		st, ok := n.Underlying().(*types.Struct)
		if !ok {
			return false
		}
		for i := 0; i < st.NumFields(); i++ {
			fn := namedOf(st.Field(i).Type())
			if fn != nil && fn.Obj().Pkg() != nil && fn.Obj().Pkg().Path() == "sync" {
				switch fn.Obj().Name() {
				case "Mutex", "RWMutex":
					return true
				}
			}
		}
		return false
	}
	candidates := make(map[*types.Named]bool)
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		if n, ok := tn.Type().(*types.Named); ok && hasMutex(n) {
			candidates[n] = true
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	out := make(map[*types.Named]bool)
	markSlices := func(t types.Type) {
		sl, ok := t.Underlying().(*types.Slice)
		if !ok {
			return
		}
		if n := namedOf(sl.Elem()); n != nil && candidates[n] {
			out[n] = true
		}
	}
	for _, name := range scope.Names() {
		switch obj := scope.Lookup(name).(type) {
		case *types.Var:
			markSlices(obj.Type())
		case *types.TypeName:
			if st, ok := obj.Type().Underlying().(*types.Struct); ok {
				for i := 0; i < st.NumFields(); i++ {
					markSlices(st.Field(i).Type())
				}
			}
			markSlices(obj.Type())
		}
	}
	return out
}

// isSubmitterMethod reports whether fn is a method on progress.Submitter
// (the flush machinery the shard locks must never cover).
func isSubmitterMethod(fn *types.Func) bool {
	rt := recvType(fn)
	if rt == nil {
		return false
	}
	n := namedOf(rt)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Name() == "progress" && n.Obj().Name() == "Submitter"
}
