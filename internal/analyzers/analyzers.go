// Package analyzers is railvet: a suite of project-specific static
// analysis passes that mechanize the engine's concurrency and hot-path
// invariants — the bug classes every review round used to catch by
// hand (see CHANGES.md, PR 3/5 review-fix lists).
//
// Passes:
//
//   - nolockio: no sync.Mutex/RWMutex may be held across a call into
//     fabric.Rail.SendEager/SendControl/SendData or a net.Conn write.
//     A rail write can block indefinitely (dead peer, full ring); a
//     lock held across it wedges every flow that hashes to the shard.
//   - hotclock: no time.Now/time.Since/time.Until inside functions
//     marked //railvet:hotpath or reachable from one within the same
//     package. Hot paths use internal/clock (runtime.nanotime) —
//     per-frame wall-clock reads pay for machinery they never use.
//   - railup: inside packages core and strategy, iterating a
//     []strategy.RailView must go through an Up-filtering helper
//     (strategy.Usable or a function marked //railvet:upfilter). A
//     raw range resurrects the PR 5 eagerThreshold bug class: a Down
//     rail deciding where live traffic goes.
//   - atomicmix: a struct field accessed through sync/atomic functions
//     must never be read or written plainly anywhere else in the
//     package; mixed access is a data race the race detector only
//     catches when the schedule cooperates.
//   - statsorder: a stats counter a remote ack can observe must be
//     bumped before the transport enqueue in the same function. After
//     the enqueue, the receiver's ack can fire RemoteDone before the
//     counter moves, and a lagging counter reads as a lost message.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer, Pass, Reportf, testdata fixtures with `// want`
// expectations) but is built on the standard library only: this module
// vendors no dependencies, so the x/tools machinery is rebuilt in
// miniature — a loader over `go list -export`, a runner, and a
// unitchecker-protocol shim in cmd/railvet for `go vet -vettool`.
//
// # Annotation grammar
//
// Three comment directives steer the passes:
//
//	//railvet:hotpath
//	    On a function's doc comment: the function (and everything it
//	    calls in its package) is a hot path; hotclock applies.
//
//	//railvet:upfilter
//	    On a function's doc comment: the function returns rail views
//	    that are safe to schedule on — it filters to Up rails itself,
//	    or provably preserves an already-filtered input. railup
//	    accepts ranges over its results and skips its body.
//
//	//railvet:ignore <pass> <justification>
//	    Suppresses <pass> findings on the same line and the next line;
//	    placed in a function's doc comment it covers the whole
//	    function. The justification is mandatory: a bare ignore is
//	    itself a railvet finding.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one railvet pass.
type Analyzer struct {
	// Name identifies the pass in findings and ignore directives.
	Name string
	// Doc is the one-line contract the pass enforces.
	Doc string
	// Run analyzes one package, reporting through pass.Reportf.
	Run func(*Pass)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// Facts holds the cross-package summaries for this package and
	// everything it depends on (and, in whole-module runs, every other
	// module package). May be nil for bare fixture runs.
	Facts FactSet
	// HotRoots maps funcID -> hotpath-root funcID for every function on
	// a hot path, computed over the whole loaded fact set.
	HotRoots map[string]string
	// Escapes holds the package's escape-analysis diagnostics when the
	// driver collected them (go tool compile -m -m); nil means hotalloc
	// has no data and stays silent.
	Escapes []EscapeSite
	// Baseline maps funcID -> tolerated heap-escape count (hotalloc's
	// committed ratchet: only *new* escapes fail).
	Baseline map[string]int

	funcs  *funcFlags
	report func(Diagnostic)
}

// Diagnostic is one finding, before ignore filtering.
type Diagnostic struct {
	Pass    string
	Pos     token.Pos
	Message string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pass: p.Analyzer.Name, Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// IsHot reports whether fn carries the //railvet:hotpath annotation.
func (p *Pass) IsHot(fn *types.Func) bool { return p.funcs != nil && p.funcs.hot[fn] }

// IsUpfilter reports whether fn carries the //railvet:upfilter
// annotation.
func (p *Pass) IsUpfilter(fn *types.Func) bool { return p.funcs != nil && p.funcs.upfilter[fn] }

// All returns the full railvet suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		NoLockIO,
		HotClock,
		RailUp,
		AtomicMix,
		StatsOrder,
		LockOrder,
		HotAlloc,
	}
}

// ByName resolves one analyzer (cmd/railvet's -run flag).
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// ---- shared type/AST helpers ----

// calleeFunc resolves the static callee of a call, or nil (indirect
// calls through function values, type conversions).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// recvType returns the receiver type of a method, nil for plain
// functions.
func recvType(fn *types.Func) types.Type {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return sig.Recv().Type()
}

// namedOf unwraps pointers and returns the named type, or nil.
func namedOf(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// declaredIn reports whether t (after pointer unwrapping) is a named
// type declared in a package with the given name.
func declaredIn(t types.Type, pkgName string) bool {
	n := namedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Name() == pkgName
}

// fabricSendNames are the Rail methods that hand bytes to a transport.
var fabricSendNames = map[string]bool{
	"SendEager":   true,
	"SendControl": true,
	"SendData":    true,
}

// isFabricSend reports whether call is a transport send: a
// SendEager/SendControl/SendData method on a type declared in (or
// implementing the Rail interface of) a package named "fabric".
func isFabricSend(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || !fabricSendNames[fn.Name()] {
		return false
	}
	rt := recvType(fn)
	if rt == nil {
		return false
	}
	if declaredIn(rt, "fabric") {
		return true
	}
	// Concrete fabric implementations (livenet.Rail, shmnet.Rail, ...):
	// accept any receiver whose package also declares a Rail interface
	// the receiver implements, or — pragmatically — any named type
	// called Rail with the full send-method set.
	if n := namedOf(rt); n != nil && n.Obj().Name() == "Rail" {
		return true
	}
	return false
}

// isNetWrite reports whether call writes to a net.Conn (or net.Buffers):
// the blocking syscall no lock may be held across.
func isNetWrite(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	switch fn.Name() {
	case "Write", "WriteTo", "ReadFrom":
	default:
		return false
	}
	rt := recvType(fn)
	if rt == nil {
		return false
	}
	return declaredIn(rt, "net")
}

// isTransportEnqueue reports whether call hands work to the transport
// or to another core: a fabric send, or a tasklet submission
// (marcel.Scheduler.SubmitIdle) whose closure will perform one.
func isTransportEnqueue(info *types.Info, call *ast.CallExpr) bool {
	if isFabricSend(info, call) || isNetWrite(info, call) {
		return true
	}
	fn := calleeFunc(info, call)
	return fn != nil && fn.Name() == "SubmitIdle" && recvType(fn) != nil
}

// mutexOp classifies a call as a mutex operation on sync.Mutex or
// sync.RWMutex, returning the lock expression's printed form as key.
func mutexOp(info *types.Info, call *ast.CallExpr) (key, op string) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return "", ""
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock":
	default:
		return "", ""
	}
	rt := recvType(fn)
	if rt == nil {
		return "", ""
	}
	n := namedOf(rt)
	if n == nil || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != "sync" {
		return "", ""
	}
	switch n.Obj().Name() {
	case "Mutex", "RWMutex":
	default:
		return "", ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	return types.ExprString(sel.X), fn.Name()
}

// isRailViewSlice reports whether t is []RailView with RailView
// declared in a package named "strategy".
func isRailViewSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	n := namedOf(sl.Elem())
	if n == nil || n.Obj().Name() != "RailView" || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Name() == "strategy"
}

// timeCallNames are the wall-clock reads hotclock rejects.
var timeCallNames = map[string]bool{"Now": true, "Since": true, "Until": true}

// isTimeCall reports whether call reads the wall clock via package time.
func isTimeCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return "", false
	}
	if !timeCallNames[fn.Name()] {
		return "", false
	}
	return "time." + fn.Name(), true
}

// funcBodies yields every function body in the file set: declared
// functions and, when includeLits is set, function literals as
// independent bodies (their enclosing declaration is reported as
// context). Nested literals are not re-visited by the enclosing walk.
type funcBody struct {
	decl *ast.FuncDecl // nil for a literal without an enclosing decl
	body *ast.BlockStmt
	lit  bool
}

func funcBodies(files []*ast.File, separateLits bool) []funcBody {
	var out []funcBody
	for _, f := range files {
		for _, d := range f.Decls {
			switch decl := d.(type) {
			case *ast.FuncDecl:
				if decl.Body == nil {
					continue
				}
				out = append(out, funcBody{decl: decl, body: decl.Body})
				if separateLits {
					ast.Inspect(decl.Body, func(n ast.Node) bool {
						if fl, ok := n.(*ast.FuncLit); ok {
							out = append(out, funcBody{decl: decl, body: fl.Body, lit: true})
						}
						return true
					})
				}
			case *ast.GenDecl:
				// Function literals nested in top-level composite
				// literals (handler tables, `var hooks = []func(){...}`)
				// are bodies too — without this they escaped every
				// body-scoped pass.
				if !separateLits {
					continue
				}
				ast.Inspect(decl, func(n ast.Node) bool {
					if fl, ok := n.(*ast.FuncLit); ok {
						out = append(out, funcBody{body: fl.Body, lit: true})
					}
					return true
				})
			}
		}
	}
	return out
}

// walkSkippingFuncLits walks body in source order, not descending into
// nested function literals.
func walkSkippingFuncLits(body ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if n == body {
			return true
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}

// describePos renders a short file:line for cross-referencing in
// messages.
func describePos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	name := p.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return fmt.Sprintf("%s:%d", name, p.Line)
}
