package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// RailUp enforces the PR 5 eagerThreshold lesson inside the decision
// packages (core and strategy): any iteration over a []RailView must
// flow through an Up-filtering helper — strategy.Usable or a function
// marked //railvet:upfilter — so a Down rail can never decide where
// live traffic goes. The original bug: a dead rail's sampled threshold
// forced rendezvous for sizes every survivor would happily send eagerly.
//
// A range (or a `for i := 0; i < len(rails)` loop) over a []RailView
// is accepted when the iterated value is
//
//   - the direct result of an upfilter call (`range Usable(rails)`),
//   - a variable whose latest assignment in the function was an
//     upfilter call (`rails = Usable(rails)` — the splitters' idiom),
//   - a slice the function is itself building (make/composite
//     literal/append: constructing the unfiltered snapshot is fine,
//     consuming it unfiltered is not), or
//   - inside a function marked //railvet:upfilter (the filter itself
//     must look at every rail to do its job).
//
// Test files are exempt: tests construct deliberate rail states.
var RailUp = &Analyzer{
	Name: "railup",
	Doc:  "[]RailView iteration in core/strategy must flow through an Up filter",
	Run:  runRailUp,
}

func runRailUp(pass *Pass) {
	switch pass.Pkg.Name() {
	case "core", "strategy":
	default:
		return
	}
	for _, f := range pass.Files {
		pos := pass.Fset.Position(f.Pos())
		if strings.HasSuffix(pos.Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok && pass.IsUpfilter(fn) {
				continue
			}
			checkRailUpFunc(pass, fd)
		}
	}
}

func checkRailUpFunc(pass *Pass, fd *ast.FuncDecl) {
	// Linear taint over the body (closures included: they inherit the
	// state at their definition point, which a source-order walk
	// approximates): filtered vars hold Up-only views, builder vars are
	// under construction locally.
	filtered := make(map[types.Object]bool)
	builder := make(map[types.Object]bool)

	objOf := func(e ast.Expr) types.Object {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			return pass.Info.Uses[id]
		}
		return nil
	}
	defObj := func(e ast.Expr) types.Object {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if o := pass.Info.Defs[id]; o != nil {
				return o
			}
			return pass.Info.Uses[id]
		}
		return nil
	}
	isUpfilterCall := func(e ast.Expr) bool {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return false
		}
		fn := calleeFunc(pass.Info, call)
		if fn == nil {
			return false
		}
		if fn.Name() == "Usable" && fn.Pkg() != nil && fn.Pkg().Name() == "strategy" {
			return true
		}
		return pass.IsUpfilter(fn)
	}
	isBuilderExpr := func(e ast.Expr) bool {
		switch v := ast.Unparen(e).(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok {
				if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
					return b.Name() == "make" || b.Name() == "append"
				}
			}
		case *ast.CompositeLit:
			return true
		}
		return false
	}
	// ok reports whether iterating expr is allowed.
	iterOK := func(e ast.Expr) bool {
		e = ast.Unparen(e)
		if isUpfilterCall(e) {
			return true
		}
		if o := objOf(e); o != nil {
			return filtered[o] || builder[o]
		}
		return false
	}
	report := func(n ast.Node, e ast.Expr) {
		pass.Reportf(n.Pos(),
			"iterating %s without an Up filter — pass it through strategy.Usable (or a railvet:upfilter helper) so Down rails cannot steer traffic (PR 5 eagerThreshold bug class)",
			types.ExprString(e))
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) != len(st.Rhs) {
				return true
			}
			for i, lhs := range st.Lhs {
				o := defObj(lhs)
				if o == nil {
					continue
				}
				rhs := st.Rhs[i]
				tv, okT := pass.Info.Types[rhs]
				if !okT || !isRailViewSlice(tv.Type) {
					continue
				}
				switch {
				case isUpfilterCall(rhs):
					filtered[o] = true
					delete(builder, o)
				case isBuilderExpr(rhs):
					// append(x, ...) keeps x's class; a fresh make or
					// literal starts a builder.
					if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
						if id, ok2 := ast.Unparen(call.Fun).(*ast.Ident); ok2 {
							if b, ok3 := pass.Info.Uses[id].(*types.Builtin); ok3 && b.Name() == "append" && len(call.Args) > 0 {
								if src := objOf(call.Args[0]); src != nil && filtered[src] {
									filtered[o] = true
									delete(builder, o)
									continue
								}
							}
						}
					}
					builder[o] = true
					delete(filtered, o)
				case objOf(rhs) != nil && filtered[objOf(rhs)]:
					filtered[o] = true
					delete(builder, o)
				default:
					delete(filtered, o)
					delete(builder, o)
				}
			}
		case *ast.RangeStmt:
			tv, ok := pass.Info.Types[st.X]
			if ok && isRailViewSlice(tv.Type) && !iterOK(st.X) {
				report(st, st.X)
			}
		case *ast.ForStmt:
			// for i := 0; i < len(rails); i++ over a []RailView.
			if st.Cond == nil {
				return true
			}
			bin, ok := st.Cond.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			for _, side := range []ast.Expr{bin.X, bin.Y} {
				call, ok := ast.Unparen(side).(*ast.CallExpr)
				if !ok || len(call.Args) != 1 {
					continue
				}
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
					if b, ok := pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "len" {
						arg := call.Args[0]
						tv, okT := pass.Info.Types[arg]
						if okT && isRailViewSlice(tv.Type) && !iterOK(arg) {
							report(st, arg)
						}
					}
				}
			}
		}
		return true
	})
}
