// Package a holds the hot root and the lock; every violation lives on
// the far side of the import edge, inside package b. This is the seeded
// whole-program case: the PR 6 single-package passes reported nothing
// here.
package a

import (
	"net"
	"sync"

	"fixture/xpkg/b"
)

// Drive is the hot root; b.Stamp transitively reads the wall clock.
//
//railvet:hotpath
func Drive() {
	_ = b.Stamp() // want "reaches a wall-clock read"
}

type gate struct {
	mu sync.Mutex
}

// Locked holds its mutex across b.Flush, which transitively writes to
// the socket.
func (g *gate) Locked(c net.Conn, p []byte) {
	g.mu.Lock()
	b.Flush(c, p) // want "with g.mu held"
	g.mu.Unlock()
}

// Unlocked releases before the transitive transport call: no finding.
func (g *gate) Unlocked(c net.Conn, p []byte) {
	g.mu.Lock()
	g.mu.Unlock()
	b.Flush(c, p)
}
