// Package b is the dependency side of the cross-package fixture. None
// of these functions carries an annotation: their wall-clock reads and
// socket writes are only visible to a dependent package through
// exported facts — a single-package analysis of package a sees nothing.
package b

import (
	"net"
	"time"
)

// Stamp reads the wall clock one call deeper.
func Stamp() int64 { return mark() }

func mark() int64 {
	return time.Now().UnixNano() // want "time.Now on a hot path"
}

// Flush writes to the socket one call deeper.
func Flush(c net.Conn, p []byte) error { return push(c, p) }

func push(c net.Conn, p []byte) error {
	_, err := c.Write(p)
	return err
}
