// Fixture for the statsorder pass: stats counters a remote ack can
// observe must be bumped before the transport enqueue.
package fixture

import "sync/atomic"

type engineStats struct {
	eagerSent atomic.Uint64
	bytes     uint64
}

// Rail mimics a fabric rail; stats hangs off it the way the engine's
// counters hang off the engine.
type Rail struct{ stats engineStats }

func (r *Rail) SendEager(to int, b []byte) error { return nil }

func bumpAfterSend(r *Rail, b []byte) {
	r.SendEager(0, b)
	r.stats.eagerSent.Add(1) // want "stats counter bumped after the transport enqueue"
}

func bumpAfterSendFn(r *Rail, b []byte) {
	r.SendEager(0, b)
	atomic.AddUint64(&r.stats.bytes, uint64(len(b))) // want "stats counter bumped after the transport enqueue"
}

func bumpBeforeSend(r *Rail, b []byte) {
	r.stats.eagerSent.Add(1)
	r.SendEager(0, b)
}

// closureOrdersItself: a literal is an independent body — whoever runs
// it sequences its own effects.
func closureOrdersItself(r *Rail, b []byte) func() {
	r.SendEager(0, b)
	return func() { r.stats.eagerSent.Add(1) }
}

func suppressed(r *Rail, b []byte) {
	r.SendEager(0, b)
	r.stats.eagerSent.Add(1) //railvet:ignore statsorder fixture: counter is process-local debug only, never compared against acks
}
