// Fixture for the hotalloc pass. The test compiles this file with
// `go tool compile -m -m` and feeds the escape diagnostics to the pass:
// escapes inside hot functions are findings unless baselined or
// suppressed; cold escapes and stack-bound values never are.
package fixture

type frame struct {
	buf [64]byte
	n   int
}

var sink *frame

// hotEscape leaks a frame to the heap on the hot path: the true
// positive.
//
//railvet:hotpath
func hotEscape() {
	f := &frame{} // want "heap escape on a hot path"
	sink = f
}

// hotStack keeps its frame on the stack: the compiler proves it does
// not escape, so there is nothing to report.
//
//railvet:hotpath
func hotStack() int {
	var f frame
	f.n = 1
	return f.n
}

// hotWarmup allocates once per epoch before the steady state: the
// audited suppression.
//
//railvet:hotpath
func hotWarmup() {
	//railvet:ignore hotalloc fixture: warm-up frame, allocated once per epoch off the steady-state path
	sink = &frame{}
}

// coldAlloc is not on any hot path: escapes here are fine.
func coldAlloc() *frame { return &frame{} }
