// Fixture for the lockorder pass: the package is named "core" and
// carries two derived shard classes (flowShard and unitShard — named
// mutex-bearing structs the engine keeps slices of). The dominant
// observed order is flow before unit (three sites); the pass must flag
// the minority direction, same-class nesting, and a Submitter call
// under a shard lock.
package core

import (
	"sync"

	"fixture/lockorder/progress"
)

type flowShard struct {
	mu sync.Mutex
	n  int
}

type unitShard struct {
	mu sync.Mutex
	n  int
}

type engine struct {
	flows []flowShard
	units []unitShard
	sub   *progress.Submitter
}

// moveOne, moveTwo and moveThree establish the canonical order:
// flow-shard lock first, unit-shard lock second.
func (e *engine) moveOne(f, u int) {
	e.flows[f].mu.Lock()
	e.units[u].mu.Lock()
	e.units[u].n++
	e.units[u].mu.Unlock()
	e.flows[f].mu.Unlock()
}

func (e *engine) moveTwo(f, u int) {
	e.flows[f].mu.Lock()
	defer e.flows[f].mu.Unlock()
	e.units[u].mu.Lock()
	e.units[u].n--
	e.units[u].mu.Unlock()
}

func (e *engine) moveThree(f, u int) {
	e.flows[f].mu.Lock()
	defer e.flows[f].mu.Unlock()
	e.units[u].mu.Lock()
	defer e.units[u].mu.Unlock()
	e.flows[f].n++
}

// inverted acquires the classes against the dominant direction: two
// workers crossing moveOne and inverted deadlock.
func (e *engine) inverted(f, u int) {
	e.units[u].mu.Lock()
	e.flows[f].mu.Lock() // want "lock-order inversion"
	e.flows[f].n++
	e.flows[f].mu.Unlock()
	e.units[u].mu.Unlock()
}

// sameClass nests two flow-shard locks: there is no safe static order
// between equals.
func (e *engine) sameClass(a, b int) {
	e.flows[a].mu.Lock()
	e.flows[b].mu.Lock() // want "two flowShard locks held at once"
	e.flows[b].n = e.flows[a].n
	e.flows[b].mu.Unlock()
	e.flows[a].mu.Unlock()
}

// flushUnderLock schedules submit-plane work with a shard lock held,
// welding the shard classes to the submitter's own lock graph.
func (e *engine) flushUnderLock(f int, v any) {
	e.flows[f].mu.Lock()
	e.sub.Put(f, v) // want "call into progress.Submitter"
	e.flows[f].mu.Unlock()
}

// sequential holds one class at a time: no finding.
func (e *engine) sequential(f, u int) {
	e.flows[f].mu.Lock()
	e.flows[f].n++
	e.flows[f].mu.Unlock()
	e.units[u].mu.Lock()
	e.units[u].n++
	e.units[u].mu.Unlock()
}

// rebalance is the audited exception: it runs under the engine-wide
// pause, so no worker can hold either class concurrently.
func (e *engine) rebalance(f, u int) {
	e.units[u].mu.Lock()
	e.flows[f].mu.Lock() //railvet:ignore lockorder fixture: rebalance runs under the global pause; no concurrent holder of either class exists
	e.flows[f].n = e.units[u].n
	e.flows[f].mu.Unlock()
	e.units[u].mu.Unlock()
}
