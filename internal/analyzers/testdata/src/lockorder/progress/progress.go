// Package progress mimics internal/progress for the lockorder fixture:
// a Submitter whose methods take their own locks and schedule flush
// work — the machinery a shard lock must never be held across.
package progress

import "sync"

// Submitter stands in for progress.Submitter[T].
type Submitter struct {
	mu sync.Mutex
	q  []any
}

// Put enqueues one item for flushing.
func (s *Submitter) Put(to int, v any) {
	s.mu.Lock()
	s.q = append(s.q, v)
	s.mu.Unlock()
}
