// Fixture for the nolockio pass: no mutex may be held across a fabric
// send or a net.Conn write.
package fixture

import (
	"net"
	"sync"
)

// Rail mimics a fabric rail: any named type Rail with the send-method
// set is treated as a transport by the pass.
type Rail struct{}

func (r *Rail) SendEager(to int, b []byte) error   { return nil }
func (r *Rail) SendControl(to int, b []byte) error { return nil }

type shard struct {
	mu sync.Mutex
	rw sync.RWMutex
}

func heldAcrossSend(s *shard, r *Rail) {
	s.mu.Lock()
	r.SendEager(0, nil) // want "transport call with s.mu held"
	s.mu.Unlock()
}

func heldByDefer(s *shard, r *Rail) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r.SendControl(0, nil) // want "transport call with s.mu held"
}

func readLockAcrossConnWrite(s *shard, c net.Conn, b []byte) {
	s.rw.RLock()
	defer s.rw.RUnlock()
	c.Write(b) // want "transport call with s.rw held"
}

func releasedBeforeSend(s *shard, r *Rail) {
	s.mu.Lock()
	s.mu.Unlock()
	r.SendEager(0, nil)
}

// closureIsIndependent: the literal runs on its own goroutine after the
// enclosing frame released its locks, so it is analyzed as its own body.
func closureIsIndependent(s *shard, r *Rail) func() {
	s.mu.Lock()
	defer s.mu.Unlock()
	return func() { r.SendEager(0, nil) }
}

// handlers nests a function literal inside a top-level composite
// literal: it is a body like any other, and a lock held across a send
// inside it fires.
var handlers = []struct {
	name string
	fn   func(*shard, *Rail)
}{
	{name: "bad", fn: func(s *shard, r *Rail) {
		s.mu.Lock()
		defer s.mu.Unlock()
		r.SendEager(0, nil) // want "transport call with s.mu held"
	}},
	{name: "good", fn: func(s *shard, r *Rail) {
		r.SendEager(0, nil)
	}},
}

func suppressed(s *shard, r *Rail) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r.SendEager(0, nil) //railvet:ignore nolockio fixture: demonstrates an audited suppression with a recorded reason
}
