// Fixture for the hotclock pass: no wall-clock reads in functions
// marked //railvet:hotpath or reachable from one in the same package.
package fixture

import "time"

//railvet:hotpath
func hotLoop() {
	start := time.Now() // want "time.Now in hotLoop"
	_ = start
	helper()
}

// helper is cold by itself but reachable from hotLoop.
func helper() time.Duration {
	var t0 time.Time
	return time.Since(t0) // want "time.Since on a hot path"
}

//railvet:hotpath
func hotWithClosure() {
	tick := func() { _ = time.Now() } // want "time.Now in hotWithClosure"
	tick()
}

// cold is not reachable from any hot root: wall-clock reads are fine.
func cold() time.Time { return time.Now() }

// hotDeferred reads the clock through a deferred call: the call-graph
// walk treats `defer f()` exactly like `f()`.
//
//railvet:hotpath
func hotDeferred() {
	var t0 time.Time
	defer time.Since(t0) // want "time.Since in hotDeferred"
}

type probe struct{}

func (probe) stamp() time.Time {
	return time.Now() // want "time.Now on a hot path"
}

// hotMethodValue never writes `p.stamp()` — it binds the method to a
// variable and calls that. The reference alone is a call-graph edge.
//
//railvet:hotpath
func hotMethodValue(p probe) {
	f := p.stamp
	_ = f()
}

// hotDeferredMethod defers a method call on a hot path.
//
//railvet:hotpath
func hotDeferredMethod(p probe) {
	defer p.stamp()
}

// hotGeneric: the hotpath directive lands on a generic declaration; the
// instantiation seen at call sites must resolve to the same identity.
//
//railvet:hotpath
func hotGeneric[T any](v T) T {
	_ = time.Now() // want "time.Now in hotGeneric"
	return v
}

// genericHelper is cold by itself, hot through the instantiated call in
// hotCallsGeneric.
func genericHelper[T any](v T) T {
	_ = time.Since(time.Time{}) // want "time.Since on a hot path"
	return v
}

//railvet:hotpath
func hotCallsGeneric() {
	_ = genericHelper(1)
}

//railvet:hotpath
func hotShutdown() {
	//railvet:ignore hotclock fixture: deadline computation needs an absolute wall-clock time
	_ = time.Now().Add(time.Second)
}
