// Fixture for the hotclock pass: no wall-clock reads in functions
// marked //railvet:hotpath or reachable from one in the same package.
package fixture

import "time"

//railvet:hotpath
func hotLoop() {
	start := time.Now() // want "time.Now in hotLoop"
	_ = start
	helper()
}

// helper is cold by itself but reachable from hotLoop.
func helper() time.Duration {
	var t0 time.Time
	return time.Since(t0) // want "time.Since on a hot path"
}

//railvet:hotpath
func hotWithClosure() {
	tick := func() { _ = time.Now() } // want "time.Now in hotWithClosure"
	tick()
}

// cold is not reachable from any hot root: wall-clock reads are fine.
func cold() time.Time { return time.Now() }

//railvet:hotpath
func hotShutdown() {
	//railvet:ignore hotclock fixture: deadline computation needs an absolute wall-clock time
	_ = time.Now().Add(time.Second)
}
