// Fixture for the railup pass. The package is named strategy because
// the pass only polices the decision packages (core and strategy) and
// recognises RailView and Usable by their declaring package's name.
package strategy

// RailView mirrors the real strategy.RailView surface the pass keys on.
type RailView struct {
	Index int
	Down  bool
}

// Usable is the canonical Up filter; its own body must look at every
// rail, which is exactly what the annotation permits.
//
//railvet:upfilter
func Usable(rails []RailView) []RailView {
	out := make([]RailView, 0, len(rails))
	for _, r := range rails {
		if !r.Down {
			out = append(out, r)
		}
	}
	return out
}

func rawRange(rails []RailView) int {
	n := 0
	for _, r := range rails { // want "iterating rails without an Up filter"
		n += r.Index
	}
	return n
}

func rawIndexLoop(rails []RailView) int {
	n := 0
	for i := 0; i < len(rails); i++ { // want "iterating rails without an Up filter"
		n += rails[i].Index
	}
	return n
}

func filteredDirect(rails []RailView) int {
	n := 0
	for _, r := range Usable(rails) {
		n += r.Index
	}
	return n
}

func filteredReassigned(rails []RailView) int {
	rails = Usable(rails)
	n := 0
	for _, r := range rails {
		n += r.Index
	}
	return n
}

// builderLoop constructs a slice locally: building the snapshot is
// allowed, only consuming an unfiltered one is not.
func builderLoop(rails []RailView) []RailView {
	out := make([]RailView, 0, len(rails))
	for _, r := range Usable(rails) {
		out = append(out, r)
	}
	for i := 0; i < len(out); i++ {
		out[i].Index++
	}
	return out
}

// suppressed documents a deliberate unfiltered walk.
//
//railvet:ignore railup fixture: read-only scoring sweep, rail selection happens downstream of Usable
func suppressed(rails []RailView) int {
	n := 0
	for _, r := range rails {
		n += r.Index
	}
	return n
}
