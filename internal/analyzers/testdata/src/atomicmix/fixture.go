// Fixture for the atomicmix pass: a field touched through sync/atomic
// functions must never be read or written plainly.
package fixture

import "sync/atomic"

type counters struct {
	hits  uint64
	reads int64
	plain int
}

func bump(c *counters) {
	atomic.AddUint64(&c.hits, 1)
	atomic.StoreInt64(&c.reads, 2)
}

func load(c *counters) uint64 {
	return atomic.LoadUint64(&c.hits)
}

func mixedRead(c *counters) uint64 {
	return c.hits // want "plain access to c.hits"
}

func mixedWrite(c *counters) {
	c.reads = 0 // want "plain access to c.reads"
}

// plain is never touched atomically: ordinary access is fine.
func fine(c *counters) int {
	return c.plain
}

func suppressed(c *counters) uint64 {
	//railvet:ignore atomicmix fixture: single-owner init phase, no concurrent writer exists yet
	return c.hits
}
