package analyzers

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/types"
	"sort"
)

// The facts layer is what makes railvet a *whole-program* checker: each
// package exports a compact summary of its functions — does this
// function (transitively) read the wall clock, does it (transitively)
// perform a blocking transport write, is it a //railvet:hotpath root,
// and what does it statically call — and every dependent package's
// analysis consumes the summaries of its dependencies. PR 6's passes
// stopped at package boundaries and trusted annotations; with facts,
// hotclock follows a hot path from internal/core through
// internal/progress into the fabrics, and nolockio flags a lock held
// across a call into *any* function that eventually writes to a rail.
//
// Facts flow bottom-up (dependencies first), which the two drivers
// realise differently:
//
//   - The standalone driver (cmd/railvet, the CI gate) loads the whole
//     module in dependency order, computes facts for every package —
//     dependency-only packages are parsed and type-checked just for
//     their facts — and then runs a global top-down reachability from
//     every hotpath root over the exported call edges, so a function in
//     pkg B called only from a hot loop in pkg A is analyzed as hot.
//   - The `go vet -vettool` path serializes facts as JSON into the
//     .vetx file the go command already threads through the build
//     cache (PackageVetx in, VetxOutput out). Dependency facts are
//     available there too, but the global hot set degenerates to
//     "annotated roots plus reachability" since a unitchecker never
//     sees its dependents.
//
// Function identity is types.Func.Origin().FullName() — Origin so a
// generic instantiation observed through export data matches the fact
// computed from the generic source declaration.

// FuncFact is one function's exported summary.
type FuncFact struct {
	// Hot marks a //railvet:hotpath annotation on the declaration.
	Hot bool `json:"hot,omitempty"`
	// Time is non-empty when the function transitively reaches a
	// wall-clock read (time.Now/Since/Until); it describes where.
	Time string `json:"time,omitempty"`
	// IO is non-empty when the function transitively performs a
	// blocking transport write (fabric send or net.Conn write) on its
	// own goroutine; it describes where. Function literals are excluded:
	// a closure handed to a scheduler runs on someone else's stack.
	IO string `json:"io,omitempty"`
	// Locks is non-empty when the function acquires a sync mutex
	// somewhere in its body (not transitively) — lockorder uses it to
	// spot shard locks held across calls into other locking subsystems.
	Locks string `json:"locks,omitempty"`
	// Calls lists the function's static callees and referenced
	// functions (method values included) by funcID, restricted to
	// packages with facts — the edges the global hot walk follows.
	Calls []string `json:"calls,omitempty"`
}

// PkgFacts is one package's exported fact set.
type PkgFacts struct {
	Path  string               `json:"path"`
	Funcs map[string]*FuncFact `json:"funcs"`
}

// FactSet maps package import paths to their facts.
type FactSet map[string]*PkgFacts

// funcID returns the stable cross-package identity of a function.
func funcID(fn *types.Func) string { return fn.Origin().FullName() }

// Func resolves a function's fact across the set, or nil.
func (fs FactSet) Func(fn *types.Func) *FuncFact {
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	pf := fs[fn.Pkg().Path()]
	if pf == nil {
		return nil
	}
	return pf.Funcs[funcID(fn)]
}

// EncodeFacts serializes facts for the vetx cache (deterministically:
// map keys sort on marshal).
func EncodeFacts(pf *PkgFacts) ([]byte, error) { return json.Marshal(pf) }

// DecodeFacts parses a vetx facts file; empty input (a pre-facts vetx
// stamp, or another tool's file) yields nil facts without error.
func DecodeFacts(data []byte) (*PkgFacts, error) {
	if len(data) == 0 {
		return nil, nil
	}
	pf := new(PkgFacts)
	if err := json.Unmarshal(data, pf); err != nil {
		return nil, fmt.Errorf("decoding railvet facts: %v", err)
	}
	return pf, nil
}

// ComputeFacts builds pkg's facts given the (already transitively
// closed) facts of its dependencies.
func ComputeFacts(pkg *Package, deps FactSet) *PkgFacts {
	dirs := scanDirectives(pkg.Fset, pkg.Files, pkg.Info, allPassNames())
	pf := &PkgFacts{Path: pkg.PkgPath, Funcs: make(map[string]*FuncFact)}

	decls := declaredFuncs(pkg.Files, pkg.Info)
	ids := make(map[*types.Func]string, len(decls))
	for fn := range decls {
		ids[fn] = funcID(fn)
	}

	// Local call edges, kept per graph flavour: the time graph includes
	// function literals (a closure built on a hot path runs on it) and
	// bare function references (method values: `f := e.now; f()`); the
	// IO graph includes only actual calls outside literals.
	timeEdges := make(map[*types.Func][]*types.Func)
	ioEdges := make(map[*types.Func][]*types.Func)

	for fn, fd := range decls {
		fact := &FuncFact{Hot: dirs.flags.hot[fn]}
		pf.Funcs[ids[fn]] = fact
		callSet := make(map[string]bool)

		// Time graph: every identifier resolving to a function counts as
		// an edge — this is what lets hotclock follow `defer t.stamp()`
		// and method-value references.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			ref, ok := pkg.Info.Uses[id].(*types.Func)
			if !ok {
				return true
			}
			if ref.Pkg() != nil && ref.Pkg().Path() == "time" && timeCallNames[ref.Name()] {
				if fact.Time == "" {
					fact.Time = "time." + ref.Name() + " at " + describePos(pkg.Fset, id.Pos())
				}
				return true
			}
			switch {
			case ref.Pkg() == pkg.Pkg:
				timeEdges[fn] = append(timeEdges[fn], ref)
				callSet[funcID(ref)] = true
			default:
				if f := deps.Func(ref); f != nil {
					if f.Time != "" && fact.Time == "" {
						fact.Time = "via " + funcID(ref) + " (" + f.Time + ")"
					}
					callSet[funcID(ref)] = true
				}
			}
			return true
		})

		// IO graph and direct lock acquisitions: calls only, literals
		// excluded (they execute on whatever goroutine invokes them —
		// nolockio analyzes each literal as its own body).
		walkSkippingFuncLits(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if key, op := mutexOp(pkg.Info, call); key != "" {
				if (op == "Lock" || op == "RLock") && fact.Locks == "" {
					fact.Locks = key + "." + op + " at " + describePos(pkg.Fset, call.Pos())
				}
				return true
			}
			if isFabricSend(pkg.Info, call) || isNetWrite(pkg.Info, call) {
				if fact.IO == "" {
					fact.IO = "transport write at " + describePos(pkg.Fset, call.Pos())
				}
				return true
			}
			callee := calleeFunc(pkg.Info, call)
			if callee == nil {
				return true
			}
			if callee.Pkg() == pkg.Pkg {
				ioEdges[fn] = append(ioEdges[fn], callee)
			} else if f := deps.Func(callee); f != nil && f.IO != "" && fact.IO == "" {
				fact.IO = "via " + funcID(callee) + " (" + f.IO + ")"
			}
			return true
		})

		for id := range callSet {
			fact.Calls = append(fact.Calls, id)
		}
		sort.Strings(fact.Calls)
	}

	// Close Time and IO over the in-package edges (dependency facts are
	// already closed, so one in-package fixpoint finishes the job).
	propagate := func(edges map[*types.Func][]*types.Func, get func(*FuncFact) string, set func(*FuncFact, string)) {
		for changed := true; changed; {
			changed = false
			for fn := range decls {
				fact := pf.Funcs[ids[fn]]
				if get(fact) != "" {
					continue
				}
				for _, callee := range edges[fn] {
					cf := pf.Funcs[ids[callee]]
					if cf == nil || get(cf) == "" {
						continue
					}
					set(fact, "via "+ids[callee]+" ("+get(cf)+")")
					changed = true
					break
				}
			}
		}
	}
	propagate(timeEdges, func(f *FuncFact) string { return f.Time }, func(f *FuncFact, v string) { f.Time = v })
	propagate(ioEdges, func(f *FuncFact) string { return f.IO }, func(f *FuncFact, v string) { f.IO = v })
	return pf
}

// GlobalHot walks the exported call graph top-down from every hotpath
// root in the set and returns funcID -> root funcID for every function
// on a hot path. With the whole module loaded this is the program-wide
// hot set; with only a dependency slice it degenerates gracefully.
func GlobalHot(fs FactSet) map[string]string {
	callees := make(map[string][]string)
	rootOf := make(map[string]string)
	var queue []string
	for _, pf := range fs {
		for id, fact := range pf.Funcs {
			callees[id] = fact.Calls
			if fact.Hot {
				rootOf[id] = id
				queue = append(queue, id)
			}
		}
	}
	sort.Strings(queue) // deterministic root attribution
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		for _, callee := range callees[id] {
			if _, seen := rootOf[callee]; seen {
				continue
			}
			if _, known := callees[callee]; !known {
				continue
			}
			rootOf[callee] = rootOf[id]
			queue = append(queue, callee)
		}
	}
	return rootOf
}

// declaredFuncs maps every declared function with a body to its decl.
func declaredFuncs(files []*ast.File, info *types.Info) map[*types.Func]*ast.FuncDecl {
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	return decls
}

// allPassNames is the registered pass-name set (directive validation
// during fact computation). Spelled as a literal rather than derived
// from All() to avoid an initialization cycle through the analyzer
// vars; TestAllPassNames keeps it in sync.
func allPassNames() map[string]bool {
	return map[string]bool{
		"nolockio":   true,
		"hotclock":   true,
		"railup":     true,
		"atomicmix":  true,
		"statsorder": true,
		"lockorder":  true,
		"hotalloc":   true,
	}
}
