package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// HotClock keeps wall-clock reads out of hot paths. Functions marked
// //railvet:hotpath — per-frame write loops, delivery paths, telemetry
// stamps — and everything they reach must not call time.Now, time.Since
// or time.Until: each such call reads the wall clock *and* the
// monotonic clock and builds a 24-byte time.Time, twice the cost of the
// runtime.nanotime read that internal/clock exposes, multiplied by
// every frame the engine moves.
//
// Since the facts layer landed, reachability is whole-program: the hot
// set is computed over the exported cross-package call graph (direct
// calls, deferred calls, and method-value references — `f := e.now;
// f()` is an edge), and a call from a hot function into another
// package's function whose facts say it reaches a wall-clock read is
// reported at the call site. Only interface dispatch remains invisible.
var HotClock = &Analyzer{
	Name: "hotclock",
	Doc:  "no time.Now/time.Since in //railvet:hotpath functions (use internal/clock)",
	Run:  runHotClock,
}

func runHotClock(pass *Pass) {
	decls := declaredFuncs(pass.Files, pass.Info)
	rootOf := pass.hotRootOf()

	for fn, fd := range decls {
		id := funcID(fn)
		rootID, isHot := rootOf[id]
		if !isHot {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			ident, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			ref, ok := pass.Info.Uses[ident].(*types.Func)
			if !ok || ref.Pkg() == nil {
				return true
			}
			// Direct wall-clock read (called, deferred, or referenced as
			// a method/function value).
			if ref.Pkg().Path() == "time" && timeCallNames[ref.Name()] {
				if rootID == id {
					pass.Reportf(ident.Pos(),
						"time.%s in %s, marked railvet:hotpath — use internal/clock",
						ref.Name(), fn.Name())
				} else {
					pass.Reportf(ident.Pos(),
						"time.%s on a hot path (reachable from %s%s, marked railvet:hotpath) — use internal/clock",
						ref.Name(), rootName(rootID), rootSite(pass, decls, rootID))
				}
				return true
			}
			// Cross-package edge into a function whose facts reach a
			// wall-clock read: report here — the callee's package has no
			// idea it is on our hot path.
			if ref.Pkg() != pass.Pkg {
				if f := pass.Facts.Func(ref); f != nil && f.Time != "" {
					pass.Reportf(ident.Pos(),
						"call to %s on a hot path (root %s) reaches a wall-clock read: %s — use internal/clock",
						funcID(ref), rootName(rootID), f.Time)
				}
			}
			return true
		})
	}
}

// hotRootOf returns the driver-computed whole-program hot attribution,
// or derives it from this package alone (bare fixture runs, the
// unitchecker fallback when no dependency exported facts).
func (p *Pass) hotRootOf() map[string]string {
	if p.HotRoots != nil {
		return p.HotRoots
	}
	fs := make(FactSet, len(p.Facts)+1)
	for k, v := range p.Facts {
		fs[k] = v
	}
	if fs[p.Pkg.Path()] == nil {
		fs[p.Pkg.Path()] = ComputeFacts(&Package{
			PkgPath: p.Pkg.Path(), Fset: p.Fset, Files: p.Files, Pkg: p.Pkg, Info: p.Info,
		}, fs)
	}
	return GlobalHot(fs)
}

// rootName renders a funcID for messages: the bare function name when
// unambiguous, the full ID for methods and cross-package roots.
func rootName(id string) string {
	if id == "" {
		return "a railvet:hotpath root"
	}
	if i := strings.LastIndexByte(id, '.'); i >= 0 && !strings.Contains(id, ")") {
		return id[i+1:]
	}
	return id
}

// rootSite appends " at file:line" when the root is declared in this
// package, anchoring the message for in-package findings.
func rootSite(p *Pass, decls map[*types.Func]*ast.FuncDecl, rootID string) string {
	for fn, fd := range decls {
		if funcID(fn) == rootID {
			return " at " + describePos(p.Fset, fd.Pos())
		}
	}
	return ""
}
