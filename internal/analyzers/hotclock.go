package analyzers

import (
	"go/ast"
	"go/types"
)

// HotClock keeps wall-clock reads out of hot paths. Functions marked
// //railvet:hotpath — per-frame write loops, delivery paths, telemetry
// stamps — and everything they reach within their package must not
// call time.Now, time.Since or time.Until: each such call reads the
// wall clock *and* the monotonic clock and builds a 24-byte time.Time,
// twice the cost of the runtime.nanotime read that internal/clock
// exposes, multiplied by every frame the engine moves. Reachability is
// computed over the package's static call graph (direct calls and
// method calls with a concrete receiver); calls that cross package
// boundaries are trusted to carry their own annotations.
var HotClock = &Analyzer{
	Name: "hotclock",
	Doc:  "no time.Now/time.Since in //railvet:hotpath functions (use internal/clock)",
	Run:  runHotClock,
}

func runHotClock(pass *Pass) {
	// Map declared functions to their bodies.
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}

	// Static same-package call edges. Function literals count as part
	// of the function that contains them: a closure built on a hot path
	// usually runs on it.
	calls := make(map[*types.Func][]*types.Func)
	for fn, fd := range decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(pass.Info, call)
			if callee == nil || callee.Pkg() != pass.Pkg {
				return true
			}
			if _, declared := decls[callee]; declared {
				calls[fn] = append(calls[fn], callee)
			}
			return true
		})
	}

	// Hot set: annotated roots plus same-package closure, remembering
	// one example root for the message.
	rootOf := make(map[*types.Func]*types.Func)
	var queue []*types.Func
	for fn := range decls {
		if pass.IsHot(fn) {
			rootOf[fn] = fn
			queue = append(queue, fn)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, callee := range calls[fn] {
			if _, seen := rootOf[callee]; seen {
				continue
			}
			rootOf[callee] = rootOf[fn]
			queue = append(queue, callee)
		}
	}

	for fn, root := range rootOf {
		fd := decls[fn]
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := isTimeCall(pass.Info, call); ok {
				if root != fn {
					pass.Reportf(call.Pos(),
						"%s on a hot path (reachable from %s, marked railvet:hotpath at %s) — use internal/clock",
						name, root.Name(), describePos(pass.Fset, decls[root].Pos()))
				} else {
					pass.Reportf(call.Pos(),
						"%s in %s, marked railvet:hotpath — use internal/clock",
						name, fn.Name())
				}
			}
			return true
		})
	}
}
