package analyzers

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
)

// The fixture harness mirrors x/tools analysistest: each pass has a
// package under testdata/src/<pass>/ whose source carries
//
//	expr // want "substring"
//
// comments on every line a finding is expected, and demonstrates at
// least one //railvet:ignore suppression (a line that would fire but
// carries no want). Findings and wants must match one-to-one.

// stdExports lists export data for the standard-library packages the
// fixtures import (plus their dependency closure), once per test run.
var stdExports = sync.OnceValues(func() (map[string]string, error) {
	cmd := exec.Command("go", "list", "-export", "-deps", "-json=ImportPath,Export",
		"sync", "sync/atomic", "net", "time", "fmt")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list std: %v\n%s", err, stderr.String())
	}
	exports := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
})

// loadFixture parses and type-checks testdata/src/<name>. A flat
// directory is one package ("fixture/<name>"); sub-directories become
// separate packages ("fixture/<name>/<sub>") that may import each other
// by those paths, type-checked in import order — the shape the
// cross-package fixtures need. Packages are returned in dependency
// order, as Analyze requires.
func loadFixture(t *testing.T, name string) []*Package {
	t.Helper()
	root := filepath.Join("testdata", "src", name)
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	var subs []string
	for _, e := range entries {
		if e.IsDir() {
			subs = append(subs, e.Name())
		}
	}
	exports, err := stdExports()
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()

	parseDir := func(dir string) []*ast.File {
		t.Helper()
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		var files []*ast.File
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil,
				parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				t.Fatal(err)
			}
			files = append(files, f)
		}
		return files
	}

	if len(subs) == 0 {
		path := "fixture/" + name
		files := parseDir(root)
		pkg, info, err := TypeCheck(fset, path, files, nil, exports)
		if err != nil {
			t.Fatalf("type-checking fixture %s: %v", name, err)
		}
		return []*Package{{PkgPath: path, Fset: fset, Files: files, Pkg: pkg, Info: info}}
	}

	// Multi-package fixture: topologically order the sub-packages by
	// their intra-fixture imports, then check each against the already
	// checked ones.
	prefix := "fixture/" + name + "/"
	parsed := make(map[string][]*ast.File, len(subs))
	deps := make(map[string][]string, len(subs))
	for _, sub := range subs {
		files := parseDir(filepath.Join(root, sub))
		parsed[sub] = files
		for _, f := range files {
			for _, imp := range f.Imports {
				p := strings.Trim(imp.Path.Value, `"`)
				if strings.HasPrefix(p, prefix) {
					deps[sub] = append(deps[sub], strings.TrimPrefix(p, prefix))
				}
			}
		}
	}
	sort.Strings(subs)
	imp := ExportImporter(fset, nil, exports)
	local := make(map[string]*types.Package, len(subs))
	var out []*Package
	var visit func(sub string, trail []string)
	visit = func(sub string, trail []string) {
		t.Helper()
		if local[prefix+sub] != nil {
			return
		}
		for _, tr := range trail {
			if tr == sub {
				t.Fatalf("fixture %s: import cycle through %s", name, sub)
			}
		}
		for _, d := range deps[sub] {
			visit(d, append(trail, sub))
		}
		path := prefix + sub
		files := parsed[sub]
		if files == nil {
			t.Fatalf("fixture %s: import of unknown sub-package %q", name, sub)
		}
		pkg, info, err := TypeCheckWith(imp, fset, path, files, local)
		if err != nil {
			t.Fatalf("type-checking fixture %s/%s: %v", name, sub, err)
		}
		local[path] = pkg
		out = append(out, &Package{PkgPath: path, Fset: fset, Files: files, Pkg: pkg, Info: info})
	}
	for _, sub := range subs {
		visit(sub, nil)
	}
	return out
}

var wantRE = regexp.MustCompile(`// want (.*)$`)
var quotedRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// wants collects file:line -> expected message substrings.
func wants(t *testing.T, pkgs []*Package) map[string][]string {
	t.Helper()
	out := make(map[string][]string)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					qs := quotedRE.FindAllStringSubmatch(m[1], -1)
					if len(qs) == 0 {
						t.Fatalf("%s: malformed want comment %q", key, c.Text)
					}
					for _, q := range qs {
						out[key] = append(out[key], q[1])
					}
				}
			}
		}
	}
	return out
}

// runFixture loads a fixture and matches findings against its want
// comments. With no explicit pass names the fixture name doubles as
// the (single) pass to run.
func runFixture(t *testing.T, fixture string, passNames ...string) {
	runFixturePkgs(t, loadFixture(t, fixture), fixture, passNames...)
}

// runFixturePkgs is runFixture over pre-loaded packages (fixtures that
// need extra preparation, like hotalloc's compile step).
func runFixturePkgs(t *testing.T, pkgs []*Package, fixture string, passNames ...string) {
	t.Helper()
	if len(passNames) == 0 {
		passNames = []string{fixture}
	}
	var passes []*Analyzer
	for _, name := range passNames {
		a := ByName(name)
		if a == nil {
			t.Fatalf("no pass named %q", name)
		}
		passes = append(passes, a)
	}
	expected := wants(t, pkgs)
	findings := Analyze(pkgs, passes)

	unmatched := make(map[string][]string, len(expected))
	for k, v := range expected {
		unmatched[k] = append([]string(nil), v...)
	}
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		subs := unmatched[key]
		hit := -1
		for i, sub := range subs {
			if strings.Contains(f.Message, sub) {
				hit = i
				break
			}
		}
		if hit < 0 {
			t.Errorf("unexpected finding: %s", f)
			continue
		}
		unmatched[key] = append(subs[:hit], subs[hit+1:]...)
	}
	var missed []string
	for key, subs := range unmatched {
		for _, sub := range subs {
			missed = append(missed, fmt.Sprintf("%s: no finding matching %q", key, sub))
		}
	}
	sort.Strings(missed)
	for _, m := range missed {
		t.Error(m)
	}
}

// TestDirectiveErrors: malformed annotations are findings themselves,
// reported under the pass name "railvet" and never suppressible.
func TestDirectiveErrors(t *testing.T) {
	const src = `package d

func f() {
	//railvet:ignore nolockio
	_ = 0
	//railvet:ignore nosuchpass because reasons
	_ = 1
	//railvet:hotpath
	_ = 2
	//railvet:bogus whatever
	_ = 3
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "d.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	pkg, info, err := TypeCheck(fset, "fixture/d", []*ast.File{f}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	findings := Analyze([]*Package{{PkgPath: "fixture/d", Fset: fset, Files: []*ast.File{f}, Pkg: pkg, Info: info}}, All())
	want := []string{
		"needs a justification",
		"unknown pass \"nosuchpass\"",
		"must be in a function's doc comment",
		"unknown railvet directive",
	}
	if len(findings) != len(want) {
		t.Fatalf("got %d findings, want %d:\n%v", len(findings), len(want), findings)
	}
	for i, sub := range want {
		if findings[i].Pass != "railvet" {
			t.Errorf("finding %d under pass %q, want railvet", i, findings[i].Pass)
		}
		if !strings.Contains(findings[i].Message, sub) {
			t.Errorf("finding %d = %q, want substring %q", i, findings[i].Message, sub)
		}
	}
}

func TestNoLockIOFixture(t *testing.T)   { runFixture(t, "nolockio") }
func TestHotClockFixture(t *testing.T)   { runFixture(t, "hotclock") }
func TestRailUpFixture(t *testing.T)     { runFixture(t, "railup") }
func TestAtomicMixFixture(t *testing.T)  { runFixture(t, "atomicmix") }
func TestStatsOrderFixture(t *testing.T) { runFixture(t, "statsorder") }
func TestLockOrderFixture(t *testing.T)  { runFixture(t, "lockorder") }

// TestXPkgFixture is the whole-program showcase: the hot root and the
// locks live in sub-package a, every violation lives across the import
// edge in b — the shape the PR 6 single-package suite could not see.
func TestXPkgFixture(t *testing.T) { runFixture(t, "xpkg", "hotclock", "nolockio") }

// compileFixtureEscapes runs the real escape analysis over a fixture
// and rebases the compiler's absolute paths onto the parser's relative
// ones so site attribution lines up.
func compileFixtureEscapes(t *testing.T, name string) []EscapeSite {
	t.Helper()
	exports, err := stdExports()
	if err != nil {
		t.Fatal(err)
	}
	esc, err := CompileEscapes("fixture/"+name, ".",
		[]string{filepath.Join("testdata", "src", name, "fixture.go")}, nil, exports)
	if err != nil {
		t.Fatal(err)
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for i := range esc {
		if rel, err := filepath.Rel(wd, esc[i].File); err == nil {
			esc[i].File = rel
		}
	}
	return esc
}

// TestHotAllocFixture compiles the fixture with the real escape
// analysis (go tool compile -m -m) and checks the pass over its output.
func TestHotAllocFixture(t *testing.T) {
	pkgs := loadFixture(t, "hotalloc")
	esc := compileFixtureEscapes(t, "hotalloc")
	if len(esc) == 0 {
		t.Fatal("escape analysis produced no sites — the fixture should escape")
	}
	pkgs[0].Escapes = esc
	runFixturePkgs(t, pkgs, "hotalloc")
}

// TestHotAllocBaseline: a committed baseline mutes exactly that many
// sites; one more escape in the same function fails again.
func TestHotAllocBaseline(t *testing.T) {
	pkgs := loadFixture(t, "hotalloc")
	pkgs[0].Escapes = compileFixtureEscapes(t, "hotalloc")

	counts := HotAllocCounts(pkgs)
	if len(counts) == 0 {
		t.Fatal("HotAllocCounts found no hot escapes")
	}
	findings := AnalyzeOpts(pkgs, []*Analyzer{HotAlloc}, Options{Baseline: counts})
	for _, f := range findings {
		t.Errorf("finding despite full baseline: %s", f)
	}

	// Tighten the unsuppressed function's entry: the masked escape
	// resurfaces. (hotWarmup's entry would not do — its finding is
	// swallowed by the fixture's justified //railvet:ignore.)
	tightened := false
	for id := range counts {
		if strings.Contains(id, "hotEscape") {
			counts[id]--
			tightened = true
		}
	}
	if !tightened {
		t.Fatalf("no hotEscape entry in baseline counts: %v", counts)
	}
	// Reset cached facts so the re-run recomputes from scratch.
	for _, p := range pkgs {
		p.Facts = nil
	}
	findings = AnalyzeOpts(pkgs, []*Analyzer{HotAlloc}, Options{Baseline: counts})
	if len(findings) == 0 {
		t.Error("no findings after lowering the baseline below the measured count")
	}
}

// TestStaleSuppression: -stale turns an ignore whose pass no longer
// fires into a finding, while a working ignore stays silent.
func TestStaleSuppression(t *testing.T) {
	const src = `package s

import "time"

//railvet:hotpath
func hot() {
	//railvet:ignore hotclock fixture: epoch stamp, not on the frame path
	_ = time.Now()
}

func cold() {
	//railvet:ignore hotclock fixture: the wall-clock read below was removed in a refactor
	_ = 1
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "s.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	exports, err := stdExports()
	if err != nil {
		t.Fatal(err)
	}
	pkg, info, err := TypeCheck(fset, "fixture/s", []*ast.File{f}, nil, exports)
	if err != nil {
		t.Fatal(err)
	}
	pkgs := []*Package{{PkgPath: "fixture/s", Fset: fset, Files: []*ast.File{f}, Pkg: pkg, Info: info}}

	if findings := Analyze(pkgs, All()); len(findings) != 0 {
		t.Fatalf("without -stale: unexpected findings %v", findings)
	}
	pkgs[0].Facts = nil
	findings := AnalyzeOpts(pkgs, All(), Options{Stale: true})
	if len(findings) != 1 {
		t.Fatalf("with -stale: got %d findings, want 1: %v", len(findings), findings)
	}
	if !strings.Contains(findings[0].Message, "stale suppression") || findings[0].Pass != "railvet" {
		t.Fatalf("unexpected stale finding: %v", findings[0])
	}
	if line := findings[0].Pos.Line; line != 12 {
		t.Errorf("stale finding at line %d, want 12 (the cold ignore)", line)
	}
}

// TestAllPassNames keeps the literal pass-name set (which breaks the
// init cycle) in sync with the registry.
func TestAllPassNames(t *testing.T) {
	names := allPassNames()
	if len(names) != len(All()) {
		t.Fatalf("allPassNames has %d entries, All() has %d", len(names), len(All()))
	}
	for _, a := range All() {
		if !names[a.Name] {
			t.Errorf("allPassNames is missing %q", a.Name)
		}
	}
}

// TestSuiteOnSelf is the meta-check: the analyzers package itself (and
// the whole module, in CI via cmd/railvet) stays railvet-clean. Here we
// just assert every pass is registered and named consistently, which
// the -run flag and ignore validation depend on.
func TestSuiteRegistry(t *testing.T) {
	seen := make(map[string]bool)
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Fatalf("incomplete analyzer registration: %+v", a)
		}
		if seen[a.Name] {
			t.Fatalf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if ByName(a.Name) != a {
			t.Fatalf("ByName(%q) does not round-trip", a.Name)
		}
	}
	if ByName("nosuchpass") != nil {
		t.Fatal("ByName invented an analyzer")
	}
}
