package analyzers

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
)

// The fixture harness mirrors x/tools analysistest: each pass has a
// package under testdata/src/<pass>/ whose source carries
//
//	expr // want "substring"
//
// comments on every line a finding is expected, and demonstrates at
// least one //railvet:ignore suppression (a line that would fire but
// carries no want). Findings and wants must match one-to-one.

// stdExports lists export data for the standard-library packages the
// fixtures import (plus their dependency closure), once per test run.
var stdExports = sync.OnceValues(func() (map[string]string, error) {
	cmd := exec.Command("go", "list", "-export", "-deps", "-json=ImportPath,Export",
		"sync", "sync/atomic", "net", "time", "fmt")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list std: %v\n%s", err, stderr.String())
	}
	exports := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
})

// loadFixture parses and type-checks testdata/src/<name> as one package.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	exports, err := stdExports()
	if err != nil {
		t.Fatal(err)
	}
	pkg, info, err := TypeCheck(fset, "fixture/"+name, files, nil, exports)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", name, err)
	}
	return &Package{PkgPath: "fixture/" + name, Fset: fset, Files: files, Pkg: pkg, Info: info}
}

var wantRE = regexp.MustCompile(`// want (.*)$`)
var quotedRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// wants collects file:line -> expected message substrings.
func wants(t *testing.T, pkg *Package) map[string][]string {
	t.Helper()
	out := make(map[string][]string)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				qs := quotedRE.FindAllStringSubmatch(m[1], -1)
				if len(qs) == 0 {
					t.Fatalf("%s: malformed want comment %q", key, c.Text)
				}
				for _, q := range qs {
					out[key] = append(out[key], q[1])
				}
			}
		}
	}
	return out
}

// runFixture runs one pass over its fixture and matches findings
// against the want comments.
func runFixture(t *testing.T, passName string) {
	pkg := loadFixture(t, passName)
	expected := wants(t, pkg)
	findings := Analyze([]*Package{pkg}, []*Analyzer{ByName(passName)})

	unmatched := make(map[string][]string, len(expected))
	for k, v := range expected {
		unmatched[k] = append([]string(nil), v...)
	}
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		subs := unmatched[key]
		hit := -1
		for i, sub := range subs {
			if strings.Contains(f.Message, sub) {
				hit = i
				break
			}
		}
		if hit < 0 {
			t.Errorf("unexpected finding: %s", f)
			continue
		}
		unmatched[key] = append(subs[:hit], subs[hit+1:]...)
	}
	var missed []string
	for key, subs := range unmatched {
		for _, sub := range subs {
			missed = append(missed, fmt.Sprintf("%s: no finding matching %q", key, sub))
		}
	}
	sort.Strings(missed)
	for _, m := range missed {
		t.Error(m)
	}
}

// TestDirectiveErrors: malformed annotations are findings themselves,
// reported under the pass name "railvet" and never suppressible.
func TestDirectiveErrors(t *testing.T) {
	const src = `package d

func f() {
	//railvet:ignore nolockio
	_ = 0
	//railvet:ignore nosuchpass because reasons
	_ = 1
	//railvet:hotpath
	_ = 2
	//railvet:bogus whatever
	_ = 3
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "d.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	pkg, info, err := TypeCheck(fset, "fixture/d", []*ast.File{f}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	findings := Analyze([]*Package{{PkgPath: "fixture/d", Fset: fset, Files: []*ast.File{f}, Pkg: pkg, Info: info}}, All())
	want := []string{
		"needs a justification",
		"unknown pass \"nosuchpass\"",
		"must be in a function's doc comment",
		"unknown railvet directive",
	}
	if len(findings) != len(want) {
		t.Fatalf("got %d findings, want %d:\n%v", len(findings), len(want), findings)
	}
	for i, sub := range want {
		if findings[i].Pass != "railvet" {
			t.Errorf("finding %d under pass %q, want railvet", i, findings[i].Pass)
		}
		if !strings.Contains(findings[i].Message, sub) {
			t.Errorf("finding %d = %q, want substring %q", i, findings[i].Message, sub)
		}
	}
}

func TestNoLockIOFixture(t *testing.T)   { runFixture(t, "nolockio") }
func TestHotClockFixture(t *testing.T)   { runFixture(t, "hotclock") }
func TestRailUpFixture(t *testing.T)     { runFixture(t, "railup") }
func TestAtomicMixFixture(t *testing.T)  { runFixture(t, "atomicmix") }
func TestStatsOrderFixture(t *testing.T) { runFixture(t, "statsorder") }

// TestSuiteOnSelf is the meta-check: the analyzers package itself (and
// the whole module, in CI via cmd/railvet) stays railvet-clean. Here we
// just assert every pass is registered and named consistently, which
// the -run flag and ignore validation depend on.
func TestSuiteRegistry(t *testing.T) {
	seen := make(map[string]bool)
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Fatalf("incomplete analyzer registration: %+v", a)
		}
		if seen[a.Name] {
			t.Fatalf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if ByName(a.Name) != a {
			t.Fatalf("ByName(%q) does not round-trip", a.Name)
		}
	}
	if ByName("nosuchpass") != nil {
		t.Fatal("ByName invented an analyzer")
	}
}
