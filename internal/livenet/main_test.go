package livenet

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestMain enforces the shutdown contract mechanically: no reader,
// writer or health goroutine may survive the last test's Close.
func TestMain(m *testing.M) { leakcheck.Main(m) }
