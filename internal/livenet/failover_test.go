package livenet_test

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/livenet"
	"repro/internal/rt"
)

// waitState polls until the rail reaches the wanted state or the
// deadline passes.
func waitState(t *testing.T, f *livenet.Fabric, node, rail int, want fabric.RailState) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		if got := f.Node(node).Rail(rail).State(); got == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("node %d rail %d never reached %v (now %v)",
				node, rail, want, f.Node(node).Rail(rail).State())
		}
		time.Sleep(time.Millisecond)
	}
}

// The live chaos scenario: one of three TCP rails is hard-killed (no
// goodbye, connections severed) while a large striped rendezvous is in
// flight. The transfer completes byte-identical on the survivors, and
// the rail counters show the remaining traffic moved there.
func TestChaosTCPRailDiesMidTransfer(t *testing.T) {
	env := rt.NewLive()
	f, err := livenet.NewLoopback(env, livenet.Config{Nodes: 2, Rails: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	profs := tcpProfiles(3, 32<<10)
	eng0 := engineOn(t, env, f, 0, profs)
	eng1 := engineOn(t, env, f, 1, profs)

	const victim = 1
	n := 32 << 20
	payload := make([]byte, n)
	rand.New(rand.NewSource(99)).Read(payload)
	buf := make([]byte, n)

	done := make(chan struct{})
	var got int
	var rerr error
	var sr *core.SendRequest
	env.Go("app", func(ctx rt.Ctx) {
		defer close(done)
		rr := eng1.Irecv(0, 21, buf)
		sr = eng0.Isend(1, 21, payload)
		got, rerr = rr.Wait(ctx)
	})

	// Kill the victim rail as soon as the stripe starts moving on it —
	// mid-message, with a chunk queued or on the wire.
	killDeadline := time.Now().Add(15 * time.Second)
	for !f.Node(0).Rail(victim).Busy() {
		if time.Now().After(killDeadline) {
			t.Fatal("victim rail never saw traffic; striping broken?")
		}
		time.Sleep(50 * time.Microsecond)
	}
	f.FailRail(0, victim)

	waitOrFatal(t, "failover transfer", done)
	if rerr != nil || got != n {
		t.Fatalf("recv n=%d err=%v", got, rerr)
	}
	if !bytes.Equal(buf, payload) {
		t.Fatal("payload corrupted across TCP rail failover")
	}
	if st := eng0.Stats(); st.FailedOver == 0 {
		t.Fatalf("no units failed over: %+v", st)
	}
	if f.Node(0).Rail(victim).State() != fabric.RailDown {
		t.Fatalf("victim state %v", f.Node(0).Rail(victim).State())
	}
	// The remaining bytes moved on the survivors.
	var survivors uint64
	for r := 0; r < 3; r++ {
		if r != victim {
			survivors += f.Node(0).Rail(r).Stats().Bytes
		}
	}
	lost := f.Node(0).Rail(victim).Stats().Bytes
	if survivors+lost < uint64(n) {
		t.Fatalf("rails carried %d+%d bytes of a %d-byte message", survivors, lost, n)
	}
	if survivors == 0 {
		t.Fatal("survivors moved no bytes")
	}
	// The dead rail kept none of the message to itself: everything it
	// may have dropped was re-sent, so the sender's remote completion
	// fires and nothing stays outstanding.
	waited := make(chan struct{})
	env.Go("acks", func(ctx rt.Ctx) {
		defer close(waited)
		sr.RemoteDone().Wait(ctx)
	})
	waitOrFatal(t, "remote completion", waited)
	if out := eng0.OutstandingUnits(); out != 0 {
		t.Fatalf("%d units still outstanding", out)
	}
}

// A stream of eager messages survives a rail kill mid-stream: lost
// containers are replayed on survivors and none delivers twice.
func TestChaosTCPRailDiesMidEagerStream(t *testing.T) {
	env := rt.NewLive()
	f, err := livenet.NewLoopback(env, livenet.Config{Nodes: 2, Rails: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	profs := tcpProfiles(2, 32<<10)
	eng0 := engineOn(t, env, f, 0, profs)
	eng1 := engineOn(t, env, f, 1, profs)

	const flows = 64
	payloads := make([][]byte, flows)
	bufs := make([][]byte, flows)
	rng := rand.New(rand.NewSource(5))
	for i := range payloads {
		payloads[i] = make([]byte, 8<<10)
		rng.Read(payloads[i])
		bufs[i] = make([]byte, len(payloads[i]))
	}
	done := make(chan struct{})
	env.Go("app", func(ctx rt.Ctx) {
		defer close(done)
		reqs := make([]*core.RecvRequest, flows)
		for i := range reqs {
			reqs[i] = eng1.Irecv(0, uint32(i), bufs[i])
		}
		for i := range payloads {
			eng0.Isend(1, uint32(i), payloads[i])
			if i == flows/2 {
				f.FailRail(0, 0) // mid-stream
			}
		}
		for i, r := range reqs {
			if n, err := r.Wait(ctx); err != nil || n != len(payloads[i]) {
				t.Errorf("flow %d: n=%d err=%v", i, n, err)
			}
		}
	})
	waitOrFatal(t, "eager stream failover", done)
	for i := range payloads {
		if !bytes.Equal(bufs[i], payloads[i]) {
			t.Fatalf("flow %d corrupted", i)
		}
	}
}

// A severed connection (no kill flag) recovers: the rail turns Suspect,
// the dialing side re-establishes the link within the reconnect budget,
// and the rail comes back Up and carries traffic again.
func TestDroppedLinkReconnects(t *testing.T) {
	env := rt.NewLive()
	f, err := livenet.NewLoopback(env, livenet.Config{
		Nodes: 2, Rails: 2, ReconnectAttempts: 5, ReconnectDelay: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// Sever node 1's rail-1 endpoint: node 1 is the dialing side of the
	// pair, so it re-dials through the persistent accept loop. Wait for
	// the readers to notice (Err turns non-nil) before waiting for Up:
	// polling for Up right away can observe the original Up state before
	// the drop was even detected.
	f.DropLink(1, 0, 1)
	deadline := time.Now().Add(15 * time.Second)
	for f.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("severed connection left no diagnostic in Err")
		}
		time.Sleep(time.Millisecond)
	}
	waitState(t, f, 1, 1, fabric.RailUp)
	// The reconnected rail moves real bytes again.
	payload := []byte("back from the dead")
	done := make(chan struct{})
	var got *fabric.Delivery
	env.Go("recv", func(ctx rt.Ctx) {
		defer close(done)
		got = f.Node(0).RecvQ().Pop(ctx).(*fabric.Delivery)
	})
	env.Go("send", func(ctx rt.Ctx) {
		f.Node(1).Rail(1).SendEager(ctx, 0, payload)
	})
	waitOrFatal(t, "post-reconnect frame", done)
	if got.Rail != 1 || !bytes.Equal(got.Data, payload) {
		t.Fatalf("delivery %+v", got)
	}
}

// Reconnection is bounded: when the peer is gone for good the rail
// passes through Suspect and settles Down.
func TestReconnectExhaustionGoesDown(t *testing.T) {
	env := rt.NewLive()
	f, err := livenet.NewLoopback(env, livenet.Config{
		Nodes: 2, Rails: 2, ReconnectAttempts: 2, ReconnectDelay: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// Node 0 owns the accepting side of the pair: it cannot re-dial, so
	// severing ITS endpoint while suppressing the peer's own recovery
	// (kill flag on node 1 only would heal it; instead sever node 0 and
	// keep node 1 from re-dialing by killing the lane) must end Down.
	f.FailRail(1, 0)
	waitState(t, f, 0, 0, fabric.RailDown)
	waitState(t, f, 1, 0, fabric.RailDown)
}
