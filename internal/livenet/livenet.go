// Package livenet implements the fabric contract over real TCP
// connections: every rail of every node pair is its own TCP connection,
// so a multirail cluster genuinely moves bytes over parallel transport
// lanes (loopback or real hosts) on the wall clock.
//
// Layout: for a system of N nodes with R rails there are C(N,2)*R
// connections; the connection between nodes i and j on rail r carries
// traffic in both directions. Frames from internal/wire travel
// length-prefixed; a reader goroutine per connection decodes them into
// fabric.Delivery items and pushes them to the destination node's
// receive queue, from which the progression engine (internal/pioman)
// raises completion events through rt.LiveEnv.
//
// Two deployment shapes:
//
//   - NewLoopback hosts all N nodes in one process, connected through a
//     real TCP listener (by default on 127.0.0.1). This is what
//     `nmping -live` and the integration tests use: the bytes cross the
//     kernel's loopback path, not a function call.
//   - NewDistributed hosts exactly one node per process. Lower-id nodes
//     listen; higher-id nodes dial (node 1 dials node 0, and so on), so
//     a two-process deployment is just one listener and one dialer. See
//     examples/tcp2proc.
//
// Unlike internal/simnet there are no modeled costs: SendControl's CPU
// charges are ignored, deliveries carry zero receiver cost, and IdleAt
// is estimated from the bytes queued on the rail and a measured
// throughput EWMA — the live analogue of the NIC busy horizon that
// drives the paper's Fig 2 rail selection.
package livenet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fabric"
	"repro/internal/model"
	"repro/internal/rt"
)

// maxFrame bounds a single length-prefixed frame (1 GiB).
const maxFrame = 1 << 30

// goodbye is the length-prefix sentinel a closing fabric writes on each
// connection so the peer can tell a graceful shutdown (no error) from a
// process death (abrupt EOF, recorded in Err).
const goodbye = 0xFFFFFFFF

// helloMagic opens every connection, followed by src, dst (uint16 LE)
// and the rail index (uint8).
var helloMagic = [4]byte{'N', 'M', 'T', 'R'}

const helloSize = 4 + 2 + 2 + 1

// initialRate seeds the per-rail throughput estimate (1 GiB/s) until
// real writes calibrate it.
const initialRate = float64(1 << 30)

// rateCalibMin is the smallest write that updates the throughput EWMA;
// tiny frames measure syscall latency, not bandwidth.
const rateCalibMin = 4 << 10

// Config describes a live TCP fabric.
type Config struct {
	// Nodes is the total number of nodes in the system (default 2).
	Nodes int
	// Rails is the number of parallel TCP rails per node pair (default 2).
	Rails int
	// CoresPerNode is the core count each node reports (default 4).
	CoresPerNode int
	// EagerMax is the largest eager payload a rail accepts; above it the
	// engine must use the rendezvous path (default 32 KiB).
	EagerMax int
	// ListenAddr is the address this process accepts rail connections on
	// (default "127.0.0.1:0", an ephemeral loopback port).
	ListenAddr string
	// Listener, when non-nil, is used instead of binding ListenAddr.
	// This lets a caller pre-bind an ephemeral port and publish its
	// address before the fabric starts accepting; the fabric takes
	// ownership and closes it.
	Listener net.Listener
	// Peers maps lower-id node ids to their listen addresses
	// (distributed mode only; node i dials every j < i).
	Peers map[int]string
	// DialTimeout bounds connection establishment, including retries
	// while a peer's listener is still coming up (default 10s).
	DialTimeout time.Duration
}

func (c *Config) defaults() {
	if c.Nodes == 0 {
		c.Nodes = 2
	}
	if c.Rails == 0 {
		c.Rails = 2
	}
	if c.CoresPerNode == 0 {
		c.CoresPerNode = 4
	}
	if c.EagerMax == 0 {
		c.EagerMax = 32 << 10
	}
	if c.ListenAddr == "" {
		c.ListenAddr = "127.0.0.1:0"
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 10 * time.Second
	}
}

func (c *Config) validate() error {
	if c.Nodes < 2 {
		return fmt.Errorf("livenet: need at least 2 nodes, got %d", c.Nodes)
	}
	if c.Rails < 1 {
		return fmt.Errorf("livenet: need at least 1 rail, got %d", c.Rails)
	}
	if c.Nodes > 1<<16 {
		return fmt.Errorf("livenet: node count %d exceeds the wire format", c.Nodes)
	}
	if c.Rails > 1<<8 {
		return fmt.Errorf("livenet: rail count %d exceeds the wire format", c.Rails)
	}
	return nil
}

// Fabric is a live TCP multirail fabric (implements fabric.Fabric).
type Fabric struct {
	env   *rt.LiveEnv
	cfg   Config
	local int // hosted node id; -1 when all nodes are hosted (loopback)
	nodes []*Node
	ln    net.Listener

	wg       sync.WaitGroup // readers, accept loop
	writers  sync.WaitGroup
	closedCh chan struct{}
	closed   atomic.Bool

	mu       sync.Mutex
	firstErr error
	conns    []net.Conn
}

// NewLoopback builds a fabric hosting all cfg.Nodes in this process,
// joined by real TCP connections through a listener on cfg.ListenAddr.
func NewLoopback(env *rt.LiveEnv, cfg Config) (*Fabric, error) {
	cfg.defaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	f := newFabric(env, cfg, -1)
	if err := f.connectLoopback(); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// NewDistributed builds a fabric hosting only node `local` in this
// process. It listens on cfg.ListenAddr for every higher-id peer and
// dials cfg.Peers[j] for every lower-id peer, blocking until the local
// node's full mesh share is connected.
func NewDistributed(env *rt.LiveEnv, local int, cfg Config) (*Fabric, error) {
	cfg.defaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if local < 0 || local >= cfg.Nodes {
		return nil, fmt.Errorf("livenet: local node %d out of range [0,%d)", local, cfg.Nodes)
	}
	for j := 0; j < local; j++ {
		if cfg.Peers[j] == "" {
			return nil, fmt.Errorf("livenet: no peer address for lower-id node %d", j)
		}
	}
	f := newFabric(env, cfg, local)
	if err := f.connectDistributed(); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

func newFabric(env *rt.LiveEnv, cfg Config, local int) *Fabric {
	f := &Fabric{env: env, cfg: cfg, local: local, closedCh: make(chan struct{})}
	for i := 0; i < cfg.Nodes; i++ {
		hosted := local < 0 || i == local
		n := &Node{f: f, id: i, hosted: hosted}
		if hosted {
			n.recvq = env.NewQueue()
			for r := 0; r < cfg.Rails; r++ {
				n.rails = append(n.rails, &Rail{
					node:  n,
					index: r,
					rate:  initialRate,
					links: make(map[int]*link),
					prof: &model.Profile{
						Name:          fmt.Sprintf("tcp-r%d", r),
						EagerRate:     initialRate,
						RecvCopyRate:  initialRate,
						WireBandwidth: initialRate,
						EagerMax:      cfg.EagerMax,
					},
				})
			}
		}
		f.nodes = append(f.nodes, n)
	}
	return f
}

// Env returns the wall-clock environment.
func (f *Fabric) Env() rt.Env { return f.env }

// NumNodes returns the total node count (hosted or not).
func (f *Fabric) NumNodes() int { return f.cfg.Nodes }

// NumRails returns the rail count.
func (f *Fabric) NumRails() int { return f.cfg.Rails }

// Node returns node i; in distributed mode non-hosted ids yield a stub
// that panics on rail or queue access.
func (f *Fabric) Node(i int) fabric.Node { return f.nodes[i] }

// LocalAddr returns the listener address (useful with the default
// ephemeral port). Empty if this fabric never listened.
func (f *Fabric) LocalAddr() string {
	if f.ln == nil {
		return ""
	}
	return f.ln.Addr().String()
}

// Err returns the first transport error observed, if any.
func (f *Fabric) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.firstErr
}

// Close tears the fabric down: listener and connections close, reader
// and writer goroutines join. Safe to call more than once.
func (f *Fabric) Close() error {
	if !f.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(f.closedCh)
	// A writer stuck mid-frame on a dead or partitioned peer would never
	// observe closedCh (it only checks between frames), so bound every
	// connection's in-flight write before joining the writers.
	f.mu.Lock()
	stuck := append([]net.Conn(nil), f.conns...)
	f.mu.Unlock()
	for _, c := range stuck {
		c.SetWriteDeadline(time.Now().Add(time.Second))
	}
	// Let every writer drain its queue and send the goodbye sentinel
	// before the connections go away, so peers see a graceful shutdown.
	f.writers.Wait()
	if f.ln != nil {
		f.ln.Close()
	}
	f.mu.Lock()
	conns := f.conns
	f.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	f.wg.Wait()
	return f.Err()
}

func (f *Fabric) fail(err error) {
	if err == nil {
		return
	}
	f.mu.Lock()
	if f.firstErr == nil {
		f.firstErr = err
	}
	f.mu.Unlock()
}

func (f *Fabric) track(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	f.mu.Lock()
	f.conns = append(f.conns, c)
	f.mu.Unlock()
}

// listen binds the accept socket (or adopts a pre-bound one).
func (f *Fabric) listen() error {
	if f.cfg.Listener != nil {
		f.ln = f.cfg.Listener
		return nil
	}
	ln, err := net.Listen("tcp", f.cfg.ListenAddr)
	if err != nil {
		return fmt.Errorf("livenet: listen %s: %w", f.cfg.ListenAddr, err)
	}
	f.ln = ln
	return nil
}

// connectLoopback wires the full mesh through one local listener.
func (f *Fabric) connectLoopback() error {
	if err := f.listen(); err != nil {
		return err
	}
	expect := f.cfg.Nodes * (f.cfg.Nodes - 1) / 2 * f.cfg.Rails
	accepted := f.acceptN(expect)
	for i := 1; i < f.cfg.Nodes; i++ {
		for j := 0; j < i; j++ {
			for r := 0; r < f.cfg.Rails; r++ {
				if err := f.dialLink(f.ln.Addr().String(), i, j, r); err != nil {
					return err
				}
			}
		}
	}
	return f.waitAccepts(accepted, expect)
}

// connectDistributed wires this process's share of the mesh: accept from
// higher ids, dial lower ids.
func (f *Fabric) connectDistributed() error {
	expect := (f.cfg.Nodes - 1 - f.local) * f.cfg.Rails
	var accepted chan error
	if expect > 0 {
		if err := f.listen(); err != nil {
			return err
		}
		accepted = f.acceptN(expect)
	}
	for j := 0; j < f.local; j++ {
		for r := 0; r < f.cfg.Rails; r++ {
			if err := f.dialLink(f.cfg.Peers[j], f.local, j, r); err != nil {
				return err
			}
		}
	}
	return f.waitAccepts(accepted, expect)
}

// acceptN accepts and registers n handshaking connections in the
// background, reporting completion (or the first error) on the returned
// channel and closing the listener when done.
func (f *Fabric) acceptN(n int) chan error {
	done := make(chan error, 1)
	if n == 0 {
		done <- nil
		return done
	}
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		defer f.ln.Close()
		for k := 0; k < n; k++ {
			conn, err := f.ln.Accept()
			if err != nil {
				done <- fmt.Errorf("livenet: accept: %w", err)
				return
			}
			if err := f.acceptLink(conn); err != nil {
				conn.Close()
				done <- err
				return
			}
		}
		done <- nil
	}()
	return done
}

func (f *Fabric) waitAccepts(accepted chan error, expect int) error {
	if expect == 0 {
		return nil
	}
	select {
	case err := <-accepted:
		return err
	case <-time.After(f.cfg.DialTimeout):
		return errors.New("livenet: timed out waiting for rail connections")
	}
}

// dialLink connects src's rail r to dst at addr and registers the local
// endpoint on the hosted src node. It retries until DialTimeout so the
// dialer may start before the listener.
func (f *Fabric) dialLink(addr string, src, dst, r int) error {
	deadline := time.Now().Add(f.cfg.DialTimeout)
	var conn net.Conn
	var err error
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			if err == nil {
				err = errors.New("timed out")
			}
			return fmt.Errorf("livenet: dial %s (rail %d to node %d): %w", addr, r, dst, err)
		}
		// remain must stay positive: net.DialTimeout treats a
		// non-positive timeout as "no timeout" and could block for the
		// OS connect limit instead of our deadline.
		conn, err = net.DialTimeout("tcp", addr, remain)
		if err == nil {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	var hello [helloSize]byte
	copy(hello[:], helloMagic[:])
	binary.LittleEndian.PutUint16(hello[4:], uint16(src))
	binary.LittleEndian.PutUint16(hello[6:], uint16(dst))
	hello[8] = uint8(r)
	if _, err := conn.Write(hello[:]); err != nil {
		conn.Close()
		return fmt.Errorf("livenet: hello to %s: %w", addr, err)
	}
	f.register(conn, src, dst, r)
	return nil
}

// acceptLink reads the hello and registers the connection on the hosted
// destination node.
func (f *Fabric) acceptLink(conn net.Conn) error {
	conn.SetReadDeadline(time.Now().Add(f.cfg.DialTimeout))
	var hello [helloSize]byte
	if _, err := io.ReadFull(conn, hello[:]); err != nil {
		return fmt.Errorf("livenet: reading hello: %w", err)
	}
	conn.SetReadDeadline(time.Time{})
	if [4]byte(hello[:4]) != helloMagic {
		return errors.New("livenet: bad hello magic")
	}
	src := int(binary.LittleEndian.Uint16(hello[4:]))
	dst := int(binary.LittleEndian.Uint16(hello[6:]))
	r := int(hello[8])
	if src >= f.cfg.Nodes || dst >= f.cfg.Nodes || r >= f.cfg.Rails {
		return fmt.Errorf("livenet: hello out of range: %d->%d rail %d", src, dst, r)
	}
	if !f.nodes[dst].hosted {
		return fmt.Errorf("livenet: hello for non-hosted node %d", dst)
	}
	f.register(conn, dst, src, r)
	return nil
}

// register installs conn as `owner`'s rail-r link to `peer` and starts
// its writer and reader goroutines.
func (f *Fabric) register(conn net.Conn, owner, peer, r int) {
	f.track(conn)
	node := f.nodes[owner]
	rail := node.rails[r]
	l := &link{conn: conn, out: make(chan outFrame, 64)}
	rail.mu.Lock()
	rail.links[peer] = l
	rail.mu.Unlock()
	f.wg.Add(1)
	f.writers.Add(1)
	go f.writeLoop(l)
	go f.readLoop(conn, node, peer, r)
}

// outFrame is one queued wire frame.
type outFrame struct {
	data []byte
	done rt.Event
	rail *Rail
}

// finish retires the frame: accounting first, then the completion
// event. written is false on the shutdown drop paths, so only frames
// that actually went to the wire count as rail traffic.
func (of outFrame) finish(wrote time.Duration, written bool) {
	of.rail.noteWritten(len(of.data), wrote, written)
	if of.done != nil {
		of.done.Fire()
	}
}

// link is one endpoint of the TCP connection joining a node pair on one
// rail.
type link struct {
	conn net.Conn
	out  chan outFrame
}

// writeLoop drains a link's queue onto its connection. Each frame is a
// uint32 LE length prefix followed by the wire bytes (written with
// writev, no copy). done events fire when the frame has been handed to
// the kernel — the live equivalent of "the DMA drained".
func (f *Fabric) writeLoop(l *link) {
	defer f.writers.Done()
	for {
		select {
		case of := <-l.out:
			var lenbuf [4]byte
			binary.LittleEndian.PutUint32(lenbuf[:], uint32(len(of.data)))
			start := time.Now()
			bufs := net.Buffers{lenbuf[:], of.data}
			_, err := bufs.WriteTo(l.conn)
			of.finish(time.Since(start), true)
			if err != nil {
				// Record the failure and kill the connection so both
				// ends' readers observe it instead of waiting on bytes
				// that will never arrive. In-flight requests are not
				// failed over to other rails: transport loss surfaces
				// through Fabric.Err, not through request errors.
				f.fail(fmt.Errorf("livenet: write: %w", err))
				l.conn.Close()
			}
		case <-f.closedCh:
			// Drain pending frames, firing their events so no sender
			// waits on a dead link. A sender racing Close may still
			// enqueue after this drain sees the channel empty; send()
			// re-drains in that case.
			drainLink(l)
			// Best-effort goodbye so the peer records no error for a
			// graceful shutdown (bounded: the fabric is going away).
			var lenbuf [4]byte
			binary.LittleEndian.PutUint32(lenbuf[:], goodbye)
			l.conn.SetWriteDeadline(time.Now().Add(250 * time.Millisecond))
			l.conn.Write(lenbuf[:])
			return
		}
	}
}

// drainLink empties a dead link's queue, retiring every frame without
// writing it so no completion event is lost at shutdown.
func drainLink(l *link) {
	for {
		select {
		case of := <-l.out:
			of.finish(0, false)
		default:
			return
		}
	}
}

// readLoop decodes length-prefixed frames from conn into deliveries for
// node (which received them from peer on rail r).
func (f *Fabric) readLoop(conn net.Conn, node *Node, peer, r int) {
	defer f.wg.Done()
	var lenbuf [4]byte
	for {
		if _, err := io.ReadFull(conn, lenbuf[:]); err != nil {
			if !f.closed.Load() {
				// A clean FIN (io.EOF) while we are not closing means
				// the peer died — the most common failure; record it so
				// Err explains a hung run instead of returning nil.
				f.fail(fmt.Errorf("livenet: node %d rail %d: connection lost: %w", peer, r, err))
			}
			return
		}
		n := binary.LittleEndian.Uint32(lenbuf[:])
		if n == goodbye {
			return // peer shut down gracefully: not an error
		}
		if n > maxFrame {
			// Kill the connection so the peer's writer fails fast
			// instead of filling a socket nobody drains.
			f.fail(fmt.Errorf("livenet: frame of %d bytes exceeds limit", n))
			conn.Close()
			return
		}
		data := make([]byte, n)
		if _, err := io.ReadFull(conn, data); err != nil {
			if !f.closed.Load() {
				f.fail(fmt.Errorf("livenet: read: %w", err))
			}
			return
		}
		node.recvq.Push(&fabric.Delivery{
			From:   peer,
			Rail:   r,
			Data:   data,
			SentAt: f.env.Now(),
		})
	}
}

// Node is one endpoint of the live fabric.
type Node struct {
	f      *Fabric
	id     int
	hosted bool
	rails  []*Rail
	recvq  rt.Queue
}

// ID returns the node's index.
func (n *Node) ID() int { return n.id }

// NumRails returns the rail count.
func (n *Node) NumRails() int { return n.f.cfg.Rails }

// Rail returns the i-th rail. It panics on a non-hosted (remote) node.
func (n *Node) Rail(i int) fabric.Rail {
	n.mustHost()
	return n.rails[i]
}

// RecvQ returns the delivery queue. It panics on a non-hosted node.
func (n *Node) RecvQ() rt.Queue {
	n.mustHost()
	return n.recvq
}

// Cores returns the configured core count.
func (n *Node) Cores() int { return n.f.cfg.CoresPerNode }

func (n *Node) mustHost() {
	if !n.hosted {
		panic(fmt.Sprintf("livenet: node %d is not hosted by this process", n.id))
	}
}

// Rail is one TCP lane of a node: links to every peer plus traffic
// accounting for the engine's idle-horizon prediction.
type Rail struct {
	node  *Node
	index int
	prof  *model.Profile

	mu      sync.Mutex
	links   map[int]*link
	pending int64   // bytes queued but not yet written
	rate    float64 // EWMA write throughput, bytes/second
	stats   fabric.Stats
}

// Index returns the rail number.
func (r *Rail) Index() int { return r.index }

// Profile returns the rail's synthetic profile: zero modeled costs (real
// costs elapse on the wall clock) with the configured EagerMax.
func (r *Rail) Profile() *model.Profile { return r.prof }

// Stats returns a snapshot of the traffic counters.
func (r *Rail) Stats() fabric.Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// IdleAt predicts when the rail's queued bytes will have been written,
// from the throughput EWMA — the live analogue of the modeled NIC
// busy-until horizon.
func (r *Rail) IdleAt() time.Duration {
	now := r.node.f.env.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.pending <= 0 {
		return now
	}
	return now + time.Duration(float64(r.pending)/r.rate*1e9)
}

// Busy reports whether the rail has queued unwritten bytes.
func (r *Rail) Busy() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pending > 0
}

// SendEager transmits an eager container: the frame is queued on the
// rail's TCP link to `to` (blocking briefly if the link is backed up —
// the live analogue of the PIO copy occupying the core).
func (r *Rail) SendEager(ctx rt.Ctx, to int, data []byte) {
	r.send(to, data, nil)
}

// SendControl transmits a control message. The modeled CPU costs are
// ignored: real costs elapse on their own.
func (r *Rail) SendControl(ctx rt.Ctx, to int, data []byte, cpuCost, recvCost time.Duration) {
	r.send(to, data, nil)
}

// SendData streams a rendezvous chunk; done fires when the frame has
// been written to the socket and the sender may reuse the buffer.
func (r *Rail) SendData(ctx rt.Ctx, to int, data []byte, done rt.Event) {
	r.send(to, data, done)
}

func (r *Rail) send(to int, data []byte, done rt.Event) {
	if len(data) > maxFrame {
		// Refuse at the source: a larger frame would be rejected by the
		// receiver (or wrap the uint32 prefix past 4 GiB and desync the
		// stream). Mirrors simnet's MaxMsg panic.
		panic(fmt.Sprintf("livenet: frame of %d bytes exceeds the %d-byte limit", len(data), maxFrame))
	}
	r.mu.Lock()
	l := r.links[to]
	if l == nil {
		r.mu.Unlock()
		panic(fmt.Sprintf("livenet: node %d has no rail-%d link to node %d", r.node.id, r.index, to))
	}
	// Messages/Bytes are counted when the frame is actually written
	// (noteWritten), so traffic dropped at shutdown is not overstated.
	r.pending += int64(len(data)) + 4
	r.stats.LastStart = r.node.f.env.Now()
	r.mu.Unlock()
	f := r.node.f
	select {
	case l.out <- outFrame{data: data, done: done, rail: r}:
		// If the fabric closed while we enqueued, the writer's final
		// drain may already have run and exited; reclaim anything
		// stranded so completion events still fire.
		if f.closed.Load() {
			drainLink(l)
		}
	case <-f.closedCh:
		outFrame{data: data, done: done, rail: r}.finish(0, false)
	}
}

// noteWritten retires n queued bytes, counts the frame as traffic when
// it actually went to the wire, and folds the observed write duration
// into the throughput estimate.
func (r *Rail) noteWritten(n int, took time.Duration, written bool) {
	r.mu.Lock()
	r.pending -= int64(n) + 4
	if r.pending < 0 {
		r.pending = 0
	}
	if written {
		r.stats.Messages++
		r.stats.Bytes += uint64(n)
	}
	r.stats.BusyTime += took
	if n >= rateCalibMin && took > 0 {
		inst := float64(n) / took.Seconds()
		r.rate = 0.7*r.rate + 0.3*inst
	}
	r.mu.Unlock()
}
