// Package livenet implements the fabric contract over real TCP
// connections: every rail of every node pair is its own TCP connection,
// so a multirail cluster genuinely moves bytes over parallel transport
// lanes (loopback or real hosts) on the wall clock.
//
// Layout: for a system of N nodes with R rails there are C(N,2)*R
// connections; the connection between nodes i and j on rail r carries
// traffic in both directions. Frames from internal/wire travel
// length-prefixed; a reader goroutine per connection decodes them into
// fabric.Delivery items and pushes them to the destination node's
// receive queue, from which the progression engine (internal/pioman)
// raises completion events through rt.LiveEnv.
//
// Two deployment shapes:
//
//   - NewLoopback hosts all N nodes in one process, connected through a
//     real TCP listener (by default on 127.0.0.1). This is what
//     `nmping -live` and the integration tests use: the bytes cross the
//     kernel's loopback path, not a function call.
//   - NewDistributed hosts exactly one node per process. Lower-id nodes
//     listen; higher-id nodes dial (node 1 dials node 0, and so on), so
//     a two-process deployment is just one listener and one dialer. See
//     examples/tcp2proc.
//
// Unlike internal/simnet there are no modeled costs: SendControl's CPU
// charges are ignored, deliveries carry zero receiver cost, and IdleAt
// is estimated from the bytes queued on the rail and a measured
// throughput EWMA — the live analogue of the NIC busy horizon that
// drives the paper's Fig 2 rail selection.
package livenet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/fabric"
	"repro/internal/model"
	"repro/internal/railhealth"
	"repro/internal/rt"
)

// maxFrame bounds a single length-prefixed frame (1 GiB).
const maxFrame = 1 << 30

// goodbye is the length-prefix sentinel a closing fabric writes on each
// connection so the peer can tell a graceful shutdown (no error) from a
// process death (abrupt EOF, recorded in Err).
const goodbye = 0xFFFFFFFF

// helloMagic opens every connection, followed by src, dst (uint16 LE)
// and the rail index (uint8).
var helloMagic = [4]byte{'N', 'M', 'T', 'R'}

const helloSize = 4 + 2 + 2 + 1

// initialRate seeds the per-rail throughput estimate (1 GiB/s) until
// real writes calibrate it.
const initialRate = float64(1 << 30)

// rateCalibMin is the smallest write that updates the throughput EWMA;
// tiny frames measure syscall latency, not bandwidth.
const rateCalibMin = 4 << 10

// throttleQueue is the standing-queue delay ThrottleRail charges per
// frame per unit of slow-down: a congested link delays even small
// frames (bufferbloat), which is what makes the throttle observable at
// every transfer size.
const throttleQueue = 100 * time.Microsecond

// Config describes a live TCP fabric.
type Config struct {
	// Nodes is the total number of nodes in the system (default 2).
	Nodes int
	// Rails is the number of parallel TCP rails per node pair (default 2).
	Rails int
	// CoresPerNode is the core count each node reports (default 4).
	CoresPerNode int
	// EagerMax is the largest eager payload a rail accepts; above it the
	// engine must use the rendezvous path (default 32 KiB).
	EagerMax int
	// ListenAddr is the address this process accepts rail connections on
	// (default "127.0.0.1:0", an ephemeral loopback port).
	ListenAddr string
	// Listener, when non-nil, is used instead of binding ListenAddr.
	// This lets a caller pre-bind an ephemeral port and publish its
	// address before the fabric starts accepting; the fabric takes
	// ownership and closes it.
	Listener net.Listener
	// Peers maps lower-id node ids to their listen addresses
	// (distributed mode only; node i dials every j < i).
	Peers map[int]string
	// DialTimeout bounds connection establishment, including retries
	// while a peer's listener is still coming up (default 10s).
	DialTimeout time.Duration
	// ReconnectAttempts bounds how often a dead link is re-established
	// before its rail is declared Down (default 3; negative disables
	// reconnection entirely). While attempts run the rail is Suspect and
	// receives no new work.
	ReconnectAttempts int
	// ReconnectDelay is the pause before each reconnect attempt
	// (default 100ms).
	ReconnectDelay time.Duration
}

func (c *Config) defaults() {
	if c.Nodes == 0 {
		c.Nodes = 2
	}
	if c.Rails == 0 {
		c.Rails = 2
	}
	if c.CoresPerNode == 0 {
		c.CoresPerNode = 4
	}
	if c.EagerMax == 0 {
		c.EagerMax = 32 << 10
	}
	if c.ListenAddr == "" {
		c.ListenAddr = "127.0.0.1:0"
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 10 * time.Second
	}
	if c.ReconnectAttempts == 0 {
		c.ReconnectAttempts = 3
	}
	if c.ReconnectDelay <= 0 {
		c.ReconnectDelay = 100 * time.Millisecond
	}
}

func (c *Config) validate() error {
	if c.Nodes < 2 {
		return fmt.Errorf("livenet: need at least 2 nodes, got %d", c.Nodes)
	}
	if c.Rails < 1 {
		return fmt.Errorf("livenet: need at least 1 rail, got %d", c.Rails)
	}
	if c.Nodes > 1<<16 {
		return fmt.Errorf("livenet: node count %d exceeds the wire format", c.Nodes)
	}
	if c.Rails > 1<<8 {
		return fmt.Errorf("livenet: rail count %d exceeds the wire format", c.Rails)
	}
	return nil
}

// Fabric is a live TCP multirail fabric (implements fabric.Fabric).
type Fabric struct {
	env   *rt.LiveEnv
	cfg   Config
	local int // hosted node id; -1 when all nodes are hosted (loopback)
	nodes []*Node
	ln    net.Listener

	wg       sync.WaitGroup // readers, accept loop
	writers  sync.WaitGroup
	closedCh chan struct{}
	closed   atomic.Bool

	mu       sync.Mutex
	firstErr error
	conns    []net.Conn
}

// NewLoopback builds a fabric hosting all cfg.Nodes in this process,
// joined by real TCP connections through a listener on cfg.ListenAddr.
func NewLoopback(env *rt.LiveEnv, cfg Config) (*Fabric, error) {
	cfg.defaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	f := newFabric(env, cfg, -1)
	if err := f.connectLoopback(); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// NewDistributed builds a fabric hosting only node `local` in this
// process. It listens on cfg.ListenAddr for every higher-id peer and
// dials cfg.Peers[j] for every lower-id peer, blocking until the local
// node's full mesh share is connected.
func NewDistributed(env *rt.LiveEnv, local int, cfg Config) (*Fabric, error) {
	cfg.defaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if local < 0 || local >= cfg.Nodes {
		return nil, fmt.Errorf("livenet: local node %d out of range [0,%d)", local, cfg.Nodes)
	}
	for j := 0; j < local; j++ {
		if cfg.Peers[j] == "" {
			return nil, fmt.Errorf("livenet: no peer address for lower-id node %d", j)
		}
	}
	f := newFabric(env, cfg, local)
	if err := f.connectDistributed(); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

func newFabric(env *rt.LiveEnv, cfg Config, local int) *Fabric {
	f := &Fabric{env: env, cfg: cfg, local: local, closedCh: make(chan struct{})}
	for i := 0; i < cfg.Nodes; i++ {
		hosted := local < 0 || i == local
		n := &Node{f: f, id: i, hosted: hosted}
		if hosted {
			n.recvq = env.NewQueue()
			n.health = railhealth.New(env, i, cfg.Rails)
			n.killed = make([]bool, cfg.Rails)
			n.health.SetOnEnable(func(rail int) { f.enableRail(n, rail) })
			for r := 0; r < cfg.Rails; r++ {
				n.rails = append(n.rails, &Rail{
					node:  n,
					index: r,
					rate:  initialRate,
					links: make(map[int]*link),
					prof: &model.Profile{
						Name:          fmt.Sprintf("tcp-r%d", r),
						EagerRate:     initialRate,
						RecvCopyRate:  initialRate,
						WireBandwidth: initialRate,
						EagerMax:      cfg.EagerMax,
					},
				})
			}
		}
		f.nodes = append(f.nodes, n)
	}
	return f
}

// Env returns the wall-clock environment.
func (f *Fabric) Env() rt.Env { return f.env }

// NumNodes returns the total node count (hosted or not).
func (f *Fabric) NumNodes() int { return f.cfg.Nodes }

// NumRails returns the rail count.
func (f *Fabric) NumRails() int { return f.cfg.Rails }

// Node returns node i; in distributed mode non-hosted ids yield a stub
// that panics on rail or queue access.
func (f *Fabric) Node(i int) fabric.Node { return f.nodes[i] }

// LocalAddr returns the listener address (useful with the default
// ephemeral port). Empty if this fabric never listened.
func (f *Fabric) LocalAddr() string {
	if f.ln == nil {
		return ""
	}
	return f.ln.Addr().String()
}

// Err returns the first transport error observed, if any.
func (f *Fabric) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.firstErr
}

// Close tears the fabric down: listener and connections close, reader
// and writer goroutines join. Safe to call more than once.
func (f *Fabric) Close() error {
	if !f.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(f.closedCh)
	// A writer stuck mid-frame on a dead or partitioned peer would never
	// observe closedCh (it only checks between frames), so bound every
	// connection's in-flight write before joining the writers.
	f.mu.Lock()
	stuck := append([]net.Conn(nil), f.conns...)
	f.mu.Unlock()
	for _, c := range stuck {
		c.SetWriteDeadline(time.Now().Add(time.Second))
	}
	// Let every writer drain its queue and send the goodbye sentinel
	// before the connections go away, so peers see a graceful shutdown.
	f.writers.Wait()
	if f.ln != nil {
		f.ln.Close()
	}
	f.mu.Lock()
	conns := f.conns
	f.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	f.wg.Wait()
	return f.Err()
}

func (f *Fabric) fail(err error) {
	if err == nil {
		return
	}
	f.mu.Lock()
	if f.firstErr == nil {
		f.firstErr = err
	}
	f.mu.Unlock()
}

// track adopts a connection into the fabric's lifecycle, reserving its
// writer and reader WaitGroup slots. It refuses (returning false and
// closing the socket) when the fabric is closing: Close observes the
// closed flag under f.mu before it waits on the groups, so a racing
// reconnect can never Add after the Waits began — a WaitGroup misuse
// that panics.
func (f *Fabric) track(c net.Conn) bool {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	f.mu.Lock()
	if f.closed.Load() {
		f.mu.Unlock()
		c.Close()
		return false
	}
	f.conns = append(f.conns, c)
	f.wg.Add(1)
	f.writers.Add(1)
	f.mu.Unlock()
	return true
}

// listen binds the accept socket (or adopts a pre-bound one).
func (f *Fabric) listen() error {
	if f.cfg.Listener != nil {
		f.ln = f.cfg.Listener
		return nil
	}
	ln, err := net.Listen("tcp", f.cfg.ListenAddr)
	if err != nil {
		return fmt.Errorf("livenet: listen %s: %w", f.cfg.ListenAddr, err)
	}
	f.ln = ln
	return nil
}

// connectLoopback wires the full mesh through one local listener.
func (f *Fabric) connectLoopback() error {
	if err := f.listen(); err != nil {
		return err
	}
	expect := f.cfg.Nodes * (f.cfg.Nodes - 1) / 2 * f.cfg.Rails
	accepted := f.acceptN(expect)
	for i := 1; i < f.cfg.Nodes; i++ {
		for j := 0; j < i; j++ {
			for r := 0; r < f.cfg.Rails; r++ {
				if err := f.dialLink(f.ln.Addr().String(), i, j, r); err != nil {
					return err
				}
			}
		}
	}
	return f.waitAccepts(accepted, expect)
}

// connectDistributed wires this process's share of the mesh: accept from
// higher ids, dial lower ids.
func (f *Fabric) connectDistributed() error {
	expect := (f.cfg.Nodes - 1 - f.local) * f.cfg.Rails
	var accepted chan error
	if expect > 0 {
		if err := f.listen(); err != nil {
			return err
		}
		accepted = f.acceptN(expect)
	}
	for j := 0; j < f.local; j++ {
		for r := 0; r < f.cfg.Rails; r++ {
			if err := f.dialLink(f.cfg.Peers[j], f.local, j, r); err != nil {
				return err
			}
		}
	}
	return f.waitAccepts(accepted, expect)
}

// acceptN accepts and registers handshaking connections in the
// background, reporting initial-mesh completion (or the first startup
// error) on the returned channel. The loop then keeps accepting until
// the fabric closes, so a dead link's peer can re-dial and replace it —
// the accept half of rail recovery and hot-replug.
func (f *Fabric) acceptN(n int) chan error {
	done := make(chan error, 1)
	if n == 0 {
		done <- nil
	}
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		remaining := n
		for {
			conn, err := f.ln.Accept()
			if err != nil {
				if remaining > 0 {
					done <- fmt.Errorf("livenet: accept: %w", err)
				}
				return // listener closed: fabric shutting down
			}
			if remaining > 0 {
				// Startup: the dialers are our own peers; a serial
				// handshake keeps the mesh bring-up simple.
				if err := f.acceptLink(conn); err != nil {
					conn.Close()
					done <- err
					return
				}
				remaining--
				if remaining == 0 {
					done <- nil
				}
				continue
			}
			// Post-startup (reconnects): handshake concurrently so a
			// stray client stuck in its hello cannot starve a real
			// re-dial past the recovery budget, and drop bad hellos
			// without poisoning Err — any TCP client can reach an open
			// listener, and that is not a fabric fault.
			f.wg.Add(1)
			go func(conn net.Conn) {
				defer f.wg.Done()
				if err := f.acceptLink(conn); err != nil {
					conn.Close()
				}
			}(conn)
		}
	}()
	return done
}

func (f *Fabric) waitAccepts(accepted chan error, expect int) error {
	if expect == 0 {
		return nil
	}
	select {
	case err := <-accepted:
		return err
	case <-time.After(f.cfg.DialTimeout):
		return errors.New("livenet: timed out waiting for rail connections")
	}
}

// dialLink connects src's rail r to dst at addr and registers the local
// endpoint on the hosted src node. It retries until DialTimeout so the
// dialer may start before the listener.
func (f *Fabric) dialLink(addr string, src, dst, r int) error {
	deadline := time.Now().Add(f.cfg.DialTimeout)
	var err error
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			if err == nil {
				err = errors.New("timed out")
			}
			return fmt.Errorf("livenet: dial %s (rail %d to node %d): %w", addr, r, dst, err)
		}
		// remain must stay positive: net.DialTimeout treats a
		// non-positive timeout as "no timeout" and could block for the
		// OS connect limit instead of our deadline.
		if err = f.dialOnce(addr, src, dst, r, remain); err == nil {
			return nil
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// dialOnce makes a single connection attempt and, on success, completes
// the hello handshake and registers the link.
func (f *Fabric) dialOnce(addr string, src, dst, r int, timeout time.Duration) error {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return err
	}
	var hello [helloSize]byte
	copy(hello[:], helloMagic[:])
	binary.LittleEndian.PutUint16(hello[4:], uint16(src))
	binary.LittleEndian.PutUint16(hello[6:], uint16(dst))
	hello[8] = uint8(r)
	if _, err := conn.Write(hello[:]); err != nil {
		conn.Close()
		return fmt.Errorf("livenet: hello to %s: %w", addr, err)
	}
	f.register(conn, src, dst, r)
	return nil
}

// acceptLink reads the hello and registers the connection on the hosted
// destination node.
func (f *Fabric) acceptLink(conn net.Conn) error {
	conn.SetReadDeadline(time.Now().Add(f.cfg.DialTimeout))
	var hello [helloSize]byte
	if _, err := io.ReadFull(conn, hello[:]); err != nil {
		return fmt.Errorf("livenet: reading hello: %w", err)
	}
	conn.SetReadDeadline(time.Time{})
	if [4]byte(hello[:4]) != helloMagic {
		return errors.New("livenet: bad hello magic")
	}
	src := int(binary.LittleEndian.Uint16(hello[4:]))
	dst := int(binary.LittleEndian.Uint16(hello[6:]))
	r := int(hello[8])
	if src >= f.cfg.Nodes || dst >= f.cfg.Nodes || r >= f.cfg.Rails {
		return fmt.Errorf("livenet: hello out of range: %d->%d rail %d", src, dst, r)
	}
	if !f.nodes[dst].hosted {
		return fmt.Errorf("livenet: hello for non-hosted node %d", dst)
	}
	f.register(conn, dst, src, r)
	return nil
}

// register installs conn as `owner`'s rail-r link to `peer` and starts
// its writer and reader goroutines. Replacing a dead link resamples the
// rail (the throughput EWMA restarts from scratch — a reconnected path
// may not perform like the old one) and reports it back Up.
func (f *Fabric) register(conn net.Conn, owner, peer, r int) {
	if !f.track(conn) {
		return // fabric closing: the socket was refused and closed
	}
	node := f.nodes[owner]
	rail := node.rails[r]
	l := &link{conn: conn, out: make(chan outFrame, 64), owner: owner, peer: peer, rail: r}
	rail.mu.Lock()
	prev := rail.links[peer]
	rail.links[peer] = l
	if prev != nil {
		rail.rate = initialRate // resample on the fresh connection
		rail.stats.Reconnects++
	}
	rail.mu.Unlock()
	go f.writeLoop(l)
	go f.readLoop(node, l)
	if prev != nil {
		f.mu.Lock()
		node.killed[r] = false
		f.mu.Unlock()
		node.health.Report(r, fabric.RailUp, "reconnected")
	}
}

// outFrame is one queued wire frame.
type outFrame struct {
	data []byte
	done rt.Event
	rail *Rail
}

// finish retires the frame: accounting first, then the completion
// event. wrote is the frame's full occupancy (throttle delay included);
// calib is the raw write duration the throughput EWMA calibrates on.
// written is false on the shutdown drop paths, so only frames that
// actually went to the wire count as rail traffic.
func (of outFrame) finish(wrote, calib time.Duration, written bool) {
	of.rail.noteWritten(len(of.data), wrote, calib, written)
	if of.done != nil {
		of.done.Fire()
	}
}

// link is one endpoint of the TCP connection joining a node pair on one
// rail.
type link struct {
	conn  net.Conn
	out   chan outFrame
	owner int // hosted node this endpoint belongs to
	peer  int // remote node of the connection
	rail  int
	dead  atomic.Bool // set by the first reader/writer observing death
}

// writeLoop drains a link's queue onto its connection. Each frame is a
// uint32 LE length prefix followed by the wire bytes (written with
// writev, no copy). done events fire when the frame has been handed to
// the kernel — the live equivalent of "the DMA drained". Per-frame
// timestamps use internal/clock: two wall-clock reads per frame would
// be pure overhead on the engine's busiest loop.
//
//railvet:hotpath
func (f *Fabric) writeLoop(l *link) {
	defer f.writers.Done()
	for {
		select {
		case of := <-l.out:
			var lenbuf [4]byte
			binary.LittleEndian.PutUint32(lenbuf[:], uint32(len(of.data)))
			start := clock.Now()
			if th := of.rail.throttleFactor(); th > 1 {
				// Chaos throttle: delay the frame BEFORE it reaches the
				// kernel so delivery itself slows down — the rail behaves
				// (and measures, end to end) like a congested link without
				// dying. The delay is the stretched transmission time plus
				// a standing-queue term (throttleQueue), the bufferbloat a
				// congested link shows even small frames.
				exp := float64(len(of.data)+4)/of.rail.currentRate() + throttleQueue.Seconds()
				time.Sleep(time.Duration(exp * (th - 1) * 1e9))
			}
			writeStart := clock.Now()
			bufs := net.Buffers{lenbuf[:], of.data}
			_, err := bufs.WriteTo(l.conn)
			// The rate EWMA calibrates on the raw write only: folding the
			// throttle sleep in would shrink the rate, stretch the next
			// sleep, and spiral. Occupancy (took) keeps the full delay.
			calib := clock.Since(writeStart)
			took := clock.Since(start)
			// A failed write is not traffic: counting it would credit the
			// rail with bytes that never fully reached the wire, and its
			// near-instant failure duration would calibrate the rate EWMA
			// with a bogus multi-GB/s sample on a dying connection.
			of.finish(took, calib, err == nil)
			if err == nil {
				of.rail.node.observeWrite(l.peer, of.rail.index, len(of.data), took)
			}
			if err != nil {
				// Record the failure and kill the connection so both
				// ends' readers observe it instead of waiting on bytes
				// that will never arrive; then start rail recovery. The
				// engine re-plans the unacknowledged units of this rail
				// onto survivors once it goes Down.
				f.fail(fmt.Errorf("livenet: write: %w", err))
				l.conn.Close()
				f.linkDown(l, fmt.Sprintf("write error: %v", err), true)
			}
		case <-f.closedCh:
			// Drain pending frames, firing their events so no sender
			// waits on a dead link. A sender racing Close may still
			// enqueue after this drain sees the channel empty; send()
			// re-drains in that case.
			drainLink(l)
			// Best-effort goodbye so the peer records no error for a
			// graceful shutdown (bounded: the fabric is going away).
			var lenbuf [4]byte
			binary.LittleEndian.PutUint32(lenbuf[:], goodbye)
			//railvet:ignore hotclock shutdown-only branch; SetWriteDeadline needs an absolute wall-clock time
			l.conn.SetWriteDeadline(time.Now().Add(250 * time.Millisecond))
			//nolint:errcheck // best-effort goodbye on a closing fabric: the deadline bounds it and any error means the peer is gone anyway
			l.conn.Write(lenbuf[:])
			return
		}
	}
}

// drainLink empties a dead link's queue, retiring every frame without
// writing it so no completion event is lost at shutdown.
func drainLink(l *link) {
	for {
		select {
		case of := <-l.out:
			of.finish(0, 0, false)
		default:
			return
		}
	}
}

// readLoop decodes length-prefixed frames from the link's connection
// into deliveries for node (which received them from l.peer on l.rail).
// Any read failure — including a goodbye-less EOF from a dying peer —
// starts rail recovery.
func (f *Fabric) readLoop(node *Node, l *link) {
	defer f.wg.Done()
	conn, peer, r := l.conn, l.peer, l.rail
	var lenbuf [4]byte
	for {
		if _, err := io.ReadFull(conn, lenbuf[:]); err != nil {
			if !f.closed.Load() {
				// A clean FIN (io.EOF) while we are not closing means
				// the peer died — the most common failure; record it so
				// Err explains a hung run instead of returning nil.
				f.fail(fmt.Errorf("livenet: node %d rail %d: connection lost: %w", peer, r, err))
				f.linkDown(l, fmt.Sprintf("connection to node %d lost: %v", peer, err), true)
			}
			return
		}
		n := binary.LittleEndian.Uint32(lenbuf[:])
		if n == goodbye {
			// Peer shut down gracefully: not an error, and not worth
			// reconnect attempts — the rail is gone on purpose.
			f.linkDown(l, fmt.Sprintf("node %d shut down", peer), false)
			return
		}
		if n > maxFrame {
			// Kill the connection so the peer's writer fails fast
			// instead of filling a socket nobody drains.
			f.fail(fmt.Errorf("livenet: frame of %d bytes exceeds limit", n))
			conn.Close()
			f.linkDown(l, "oversized frame", false)
			return
		}
		data := make([]byte, n)
		if _, err := io.ReadFull(conn, data); err != nil {
			if !f.closed.Load() {
				f.fail(fmt.Errorf("livenet: read: %w", err))
				f.linkDown(l, fmt.Sprintf("read error: %v", err), true)
			}
			return
		}
		node.deliver(&fabric.Delivery{
			From:   peer,
			Rail:   r,
			Data:   data,
			SentAt: f.env.Now(),
		})
	}
}

// linkDown reacts (once per link) to a dead connection: the rail turns
// Suspect while bounded reconnect attempts run, then Down if they fail;
// rails killed by FailRail or dead on purpose go straight Down.
func (f *Fabric) linkDown(l *link, reason string, recover bool) {
	if !l.dead.CompareAndSwap(false, true) {
		return
	}
	if f.closed.Load() {
		return
	}
	node := f.nodes[l.owner]
	if !recover || f.cfg.ReconnectAttempts < 0 || f.railKilled(l.owner, l.rail) {
		node.health.Report(l.rail, fabric.RailDown, reason)
		return
	}
	if node.health.Report(l.rail, fabric.RailSuspect, reason) {
		f.goReconnect(node, l, reason)
	}
}

// goReconnect runs the bounded reconnect-and-resample loop for one dead
// link. The dialing side of the pair (higher node id, mirroring the
// initial mesh) re-dials; the accepting side waits for the peer to
// re-dial through the persistent accept loop. Success re-registers the
// link (register reports Up and resets the rate estimate); exhaustion
// reports Down, which triggers the engine's re-planning.
func (f *Fabric) goReconnect(node *Node, l *link, reason string) {
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		rail := node.rails[l.rail]
		addr := f.peerAddr(l.peer)
		for a := 0; a < f.cfg.ReconnectAttempts; a++ {
			select {
			case <-f.closedCh:
				return
			case <-time.After(f.cfg.ReconnectDelay):
			}
			if f.railKilled(node.id, l.rail) {
				return
			}
			if rail.link(l.peer) != l {
				return // accept side already replaced it
			}
			if node.id > l.peer && addr != "" {
				if err := f.dialOnce(addr, node.id, l.peer, l.rail, f.cfg.ReconnectDelay+time.Second); err == nil {
					return
				}
			}
		}
		if rail.link(l.peer) == l {
			node.health.Report(l.rail, fabric.RailDown,
				fmt.Sprintf("%s; %d reconnect attempts failed", reason, f.cfg.ReconnectAttempts))
		}
	}()
}

// peerAddr returns the address to re-dial a peer at, or "" when this
// side cannot dial it (accepting side of a distributed pair).
func (f *Fabric) peerAddr(peer int) string {
	if f.local < 0 {
		if f.ln == nil {
			return ""
		}
		return f.ln.Addr().String() // loopback: everything via our listener
	}
	return f.cfg.Peers[peer]
}

func (f *Fabric) railKilled(node, rail int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.nodes[node].killed[rail]
}

// FailRail hard-kills rail r as a chaos hook: the NIC is declared dead,
// reconnection is suppressed on every hosted endpoint of the lane, and
// the rail's TCP connections are closed abruptly (no goodbye) so peers
// observe a genuine mid-message death.
func (f *Fabric) FailRail(node, rail int) {
	f.mu.Lock()
	for _, n := range f.nodes {
		if n.hosted {
			n.killed[rail] = true
		}
	}
	f.mu.Unlock()
	// Closing any hosted endpoint of the lane kills the TCP connection
	// for both ends; close every hosted one so the kill also works when
	// `node` is a remote id (distributed mode).
	for _, hn := range f.nodes {
		if !hn.hosted {
			continue
		}
		r := hn.rails[rail]
		r.mu.Lock()
		conns := make([]net.Conn, 0, len(r.links))
		for _, l := range r.links {
			conns = append(conns, l.conn)
		}
		r.mu.Unlock()
		for _, c := range conns {
			c.Close()
		}
	}
	reason := fmt.Sprintf("rail %d killed", rail)
	for _, hn := range f.nodes {
		if hn.hosted {
			hn.health.Report(rail, fabric.RailDown, reason)
		}
	}
}

// ThrottleRail artificially slows rail r on every hosted node by
// `factor` (10 = every write takes ten times as long); factor <= 1
// removes the throttle. Unlike FailRail the rail stays Up — this is the
// congestion chaos hook the adaptive-telemetry subsystem is tested
// against: the drift detector must notice the slowdown from live
// measurements and the strategies must migrate work off the rail
// without a health transition. Implements fabric.Throttler.
func (f *Fabric) ThrottleRail(rail int, factor float64) {
	var bits uint64
	if factor > 1 {
		bits = math.Float64bits(factor)
	}
	for _, n := range f.nodes {
		if n.hosted && rail >= 0 && rail < len(n.rails) {
			n.rails[rail].throttle.Store(bits)
		}
	}
}

// DropLink abruptly severs one TCP connection (owner side) without
// suppressing recovery: the transport notices, turns the rail Suspect
// and re-establishes it within the bounded reconnect budget. Test hook
// for the recovery path.
func (f *Fabric) DropLink(node, peer, rail int) {
	n := f.nodes[node]
	if !n.hosted {
		return
	}
	if l := n.rails[rail].link(peer); l != nil {
		l.conn.Close()
	}
}

// enableRail is the tracker's OnEnable hook: clear the kill flag and
// re-establish any dead dialing-side links of the rail.
func (f *Fabric) enableRail(n *Node, rail int) {
	f.mu.Lock()
	n.killed[rail] = false
	f.mu.Unlock()
	r := n.rails[rail]
	r.mu.Lock()
	var deads []*link
	for _, l := range r.links {
		if l.dead.Load() {
			deads = append(deads, l)
		}
	}
	r.mu.Unlock()
	for _, l := range deads {
		f.goReconnect(n, l, "re-enabled")
	}
}

// Node is one endpoint of the live fabric.
type Node struct {
	f      *Fabric
	id     int
	hosted bool
	rails  []*Rail
	recvq  rt.Queue
	health *railhealth.Tracker
	killed []bool // reconnection suppressed (FailRail); guarded by f.mu

	sinkMu sync.RWMutex
	sink   func(*fabric.Delivery)

	teleMu sync.RWMutex
	tele   fabric.Telemetry
}

// SetTelemetry installs (or, with nil, detaches) the node's telemetry
// sink: every sufficiently large frame written to the wire is reported
// with its real write duration, feeding the live per-(peer, rail)
// bandwidth estimates. Small frames are skipped — they measure syscall
// latency, not the rail (the engine's ack path supplies the latency
// observations). Panics on a non-hosted node.
func (n *Node) SetTelemetry(t fabric.Telemetry) {
	n.mustHost()
	n.teleMu.Lock()
	n.tele = t
	n.teleMu.Unlock()
}

// observeWrite reports one completed frame write to the telemetry sink,
// if one is installed and the frame is in the bandwidth regime.
func (n *Node) observeWrite(peer, rail, bytes int, d time.Duration) {
	if bytes < rateCalibMin || d <= 0 {
		return
	}
	n.teleMu.RLock()
	t := n.tele
	n.teleMu.RUnlock()
	if t != nil {
		t.ObserveTransfer(peer, rail, bytes, d)
	}
}

// SetSink installs a direct delivery consumer: subsequent deliveries are
// handed to fn on the connection reader goroutine that decoded them,
// bypassing RecvQ — this is how the multicore progression subsystem has
// livenet feed its worker pool directly. Deliveries already queued in
// RecvQ are drained through fn first, atomically with the handoff: in a
// distributed deployment the peer process can start sending while this
// process is still sampling, and those early frames must not be
// stranded in the queue (nor overtaken by later direct deliveries).
// fn must not block. SetSink(nil) restores queue delivery. Panics on a
// non-hosted node.
func (n *Node) SetSink(fn func(*fabric.Delivery)) {
	n.mustHost()
	n.sinkMu.Lock()
	defer n.sinkMu.Unlock()
	n.sink = fn
	if fn == nil {
		return
	}
	for {
		item, ok := n.recvq.TryPop()
		if !ok {
			return
		}
		if d, isD := item.(*fabric.Delivery); isD && d != nil {
			fn(d)
		}
	}
}

// deliver routes one decoded frame to the sink, or to the receive queue
// when no sink is installed. The queue push happens under the sink read
// lock so it cannot race SetSink's drain and strand a frame.
func (n *Node) deliver(d *fabric.Delivery) {
	n.sinkMu.RLock()
	defer n.sinkMu.RUnlock()
	if n.sink != nil {
		n.sink(d)
		return
	}
	n.recvq.Push(d)
}

// ID returns the node's index.
func (n *Node) ID() int { return n.id }

// NumRails returns the rail count.
func (n *Node) NumRails() int { return n.f.cfg.Rails }

// Rail returns the i-th rail. It panics on a non-hosted (remote) node.
func (n *Node) Rail(i int) fabric.Rail {
	n.mustHost()
	return n.rails[i]
}

// RecvQ returns the delivery queue. It panics on a non-hosted node.
func (n *Node) RecvQ() rt.Queue {
	n.mustHost()
	return n.recvq
}

// Health returns the rail-health tracker. It panics on a non-hosted
// node.
func (n *Node) Health() fabric.Health {
	n.mustHost()
	return n.health
}

// Cores returns the configured core count.
func (n *Node) Cores() int { return n.f.cfg.CoresPerNode }

func (n *Node) mustHost() {
	if !n.hosted {
		panic(fmt.Sprintf("livenet: node %d is not hosted by this process", n.id))
	}
}

// Rail is one TCP lane of a node: links to every peer plus traffic
// accounting for the engine's idle-horizon prediction.
type Rail struct {
	node  *Node
	index int
	prof  *model.Profile

	mu      sync.Mutex
	links   map[int]*link
	pending int64   // bytes queued but not yet written
	rate    float64 // EWMA write throughput, bytes/second
	stats   fabric.Stats

	// throttle > 1 slows the rail artificially (chaos hook): each write
	// is stretched to factor times its real duration. Float64 bits; 0
	// means no throttle.
	throttle atomic.Uint64
}

// currentRate returns the rail's throughput EWMA (bytes/second).
func (r *Rail) currentRate() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rate
}

// throttleFactor returns the active slow-down factor (1 when none).
func (r *Rail) throttleFactor() float64 {
	if bits := r.throttle.Load(); bits != 0 {
		if f := math.Float64frombits(bits); f > 1 {
			return f
		}
	}
	return 1
}

// Index returns the rail number.
func (r *Rail) Index() int { return r.index }

// Profile returns the rail's synthetic profile: zero modeled costs (real
// costs elapse on the wall clock) with the configured EagerMax.
func (r *Rail) Profile() *model.Profile { return r.prof }

// link returns the current link to peer (nil before registration).
func (r *Rail) link(peer int) *link {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.links[peer]
}

// State returns the rail's health state.
func (r *Rail) State() fabric.RailState { return r.node.health.State(r.index) }

// Stats returns a snapshot of the traffic counters.
func (r *Rail) Stats() fabric.Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// IdleAt predicts when the rail's queued bytes will have been written,
// from the throughput EWMA — the live analogue of the modeled NIC
// busy-until horizon.
func (r *Rail) IdleAt() time.Duration {
	now := r.node.f.env.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.pending <= 0 {
		return now
	}
	return now + time.Duration(float64(r.pending)/r.rate*1e9)
}

// Busy reports whether the rail has queued unwritten bytes.
func (r *Rail) Busy() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pending > 0
}

// SendEager transmits an eager container: the frame is queued on the
// rail's TCP link to `to` (blocking briefly if the link is backed up —
// the live analogue of the PIO copy occupying the core).
func (r *Rail) SendEager(ctx rt.Ctx, to int, data []byte) {
	r.send(to, data, nil)
}

// SendControl transmits a control message. The modeled CPU costs are
// ignored: real costs elapse on their own.
func (r *Rail) SendControl(ctx rt.Ctx, to int, data []byte, cpuCost, recvCost time.Duration) {
	r.send(to, data, nil)
}

// SendData streams a rendezvous chunk; done fires when the frame has
// been written to the socket and the sender may reuse the buffer.
func (r *Rail) SendData(ctx rt.Ctx, to int, data []byte, done rt.Event) {
	r.send(to, data, done)
}

func (r *Rail) send(to int, data []byte, done rt.Event) {
	if len(data) > maxFrame {
		// Refuse at the source: a larger frame would be rejected by the
		// receiver (or wrap the uint32 prefix past 4 GiB and desync the
		// stream). Mirrors simnet's MaxMsg panic.
		panic(fmt.Sprintf("livenet: frame of %d bytes exceeds the %d-byte limit", len(data), maxFrame))
	}
	r.mu.Lock()
	l := r.links[to]
	if l == nil {
		r.mu.Unlock()
		panic(fmt.Sprintf("livenet: node %d has no rail-%d link to node %d", r.node.id, r.index, to))
	}
	// Messages/Bytes are counted when the frame is actually written
	// (noteWritten), so traffic dropped at shutdown is not overstated.
	r.pending += int64(len(data)) + 4
	r.stats.LastStart = r.node.f.env.Now()
	r.mu.Unlock()
	f := r.node.f
	select {
	case l.out <- outFrame{data: data, done: done, rail: r}:
		// If the fabric closed while we enqueued, the writer's final
		// drain may already have run and exited; reclaim anything
		// stranded so completion events still fire.
		if f.closed.Load() {
			drainLink(l)
		}
	case <-f.closedCh:
		outFrame{data: data, done: done, rail: r}.finish(0, 0, false)
	}
}

// noteWritten retires n queued bytes, counts the frame as traffic when
// it actually went to the wire, and folds the raw write duration
// (calib) into the throughput estimate. took additionally includes any
// chaos-throttle delay and only feeds the busy-time counter.
func (r *Rail) noteWritten(n int, took, calib time.Duration, written bool) {
	r.mu.Lock()
	r.pending -= int64(n) + 4
	if r.pending < 0 {
		r.pending = 0
	}
	if written {
		r.stats.Messages++
		r.stats.Bytes += uint64(n)
	}
	r.stats.BusyTime += took
	if written && n >= rateCalibMin && calib > 0 {
		inst := float64(n) / calib.Seconds()
		r.rate = 0.7*r.rate + 0.3*inst
	}
	r.mu.Unlock()
}
