package livenet_test

import (
	"bytes"
	"math/rand"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/livenet"
	"repro/internal/rt"
	"repro/internal/sampling"
)

// waitOrFatal bounds a live-mode wait so a wedged transfer fails the test
// instead of hanging it.
func waitOrFatal(t *testing.T, what string, done <-chan struct{}) {
	t.Helper()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("%s timed out", what)
	}
}

// tcpProfiles builds deterministic sampled profiles under which the
// eager path wins for every size the eager cap admits, so sizes at or
// below EagerMax go eager and larger ones go rendezvous.
func tcpProfiles(nrails, eagerMax int) []*sampling.RailProfile {
	eager, err := sampling.NewTable([]sampling.Sample{
		{Size: 4, T: 5 * time.Microsecond},
		{Size: eagerMax, T: 30 * time.Microsecond},
	})
	if err != nil {
		panic(err)
	}
	rdv, err := sampling.NewTable([]sampling.Sample{
		{Size: 4, T: 100 * time.Microsecond},
		{Size: 8 << 20, T: 10 * time.Millisecond},
	})
	if err != nil {
		panic(err)
	}
	out := make([]*sampling.RailProfile, nrails)
	for r := range out {
		out[r] = &sampling.RailProfile{
			Rail: r, Name: "tcp", Eager: eager, Rdv: rdv, EagerMax: eagerMax,
		}
	}
	return out
}

// engineOn builds a core engine for one hosted node of a live fabric.
func engineOn(t *testing.T, env rt.Env, f fabric.Fabric, node int, profs []*sampling.RailProfile) *core.Engine {
	t.Helper()
	// DirectProgress matches what multirail configures on the TCP
	// fabric: deliveries feed the engine's per-core workers straight
	// from the connection readers, so the chaos tests exercise the
	// multicore progression path.
	eng, err := core.NewEngine(env, f.Node(node), profs, core.Config{DirectProgress: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Stop)
	return eng
}

// Raw fabric: a frame pushed on a rail arrives at the peer's receive
// queue with the right origin, rail and bytes.
func TestRawFrameCrossesTCP(t *testing.T) {
	env := rt.NewLive()
	f, err := livenet.NewLoopback(env, livenet.Config{Nodes: 2, Rails: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	payload := []byte("real bytes over real TCP")
	done := make(chan struct{})
	var got *fabric.Delivery
	env.Go("recv", func(ctx rt.Ctx) {
		defer close(done)
		got = f.Node(1).RecvQ().Pop(ctx).(*fabric.Delivery)
	})
	env.Go("send", func(ctx rt.Ctx) {
		f.Node(0).Rail(1).SendEager(ctx, 1, payload)
	})
	waitOrFatal(t, "raw frame", done)
	if got.From != 0 || got.Rail != 1 || !bytes.Equal(got.Data, payload) {
		t.Fatalf("delivery %+v", got)
	}
	st := f.Node(0).Rail(1).Stats()
	if st.Messages != 1 || st.Bytes != uint64(len(payload)) {
		t.Fatalf("sender stats %+v", st)
	}
}

// The eager path: small messages to one destination ride the engine's
// aggregation over the TCP rails and arrive intact.
func TestEngineEagerOverTCP(t *testing.T) {
	env := rt.NewLive()
	f, err := livenet.NewLoopback(env, livenet.Config{Nodes: 2, Rails: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	profs := tcpProfiles(2, 32<<10)
	eng0 := engineOn(t, env, f, 0, profs)
	eng1 := engineOn(t, env, f, 1, profs)

	const flows = 8
	payloads := make([][]byte, flows)
	bufs := make([][]byte, flows)
	rng := rand.New(rand.NewSource(11))
	for i := range payloads {
		payloads[i] = make([]byte, rng.Intn(4<<10)+1)
		rng.Read(payloads[i])
		bufs[i] = make([]byte, len(payloads[i]))
	}
	done := make(chan struct{})
	env.Go("app", func(ctx rt.Ctx) {
		defer close(done)
		reqs := make([]*core.RecvRequest, flows)
		for i := range reqs {
			reqs[i] = eng1.Irecv(0, uint32(i), bufs[i])
		}
		for i := range payloads {
			eng0.Isend(1, uint32(i), payloads[i])
		}
		for i, r := range reqs {
			if n, err := r.Wait(ctx); err != nil || n != len(payloads[i]) {
				t.Errorf("flow %d: n=%d err=%v", i, n, err)
			}
		}
	})
	waitOrFatal(t, "eager flows", done)
	for i := range payloads {
		if !bytes.Equal(bufs[i], payloads[i]) {
			t.Fatalf("flow %d corrupted", i)
		}
	}
	st := eng0.Stats()
	if st.EagerSent != flows || st.RdvSent != 0 {
		t.Fatalf("expected all-eager traffic: %+v", st)
	}
}

// The rendezvous path: a large message handshakes, is striped by the
// splitter, and every configured rail moves real bytes.
func TestEngineRendezvousStripesBothRails(t *testing.T) {
	env := rt.NewLive()
	f, err := livenet.NewLoopback(env, livenet.Config{Nodes: 2, Rails: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	profs := tcpProfiles(2, 32<<10)
	eng0 := engineOn(t, env, f, 0, profs)
	eng1 := engineOn(t, env, f, 1, profs)

	n := 4 << 20
	payload := make([]byte, n)
	rand.New(rand.NewSource(42)).Read(payload)
	buf := make([]byte, n)
	done := make(chan struct{})
	env.Go("app", func(ctx rt.Ctx) {
		defer close(done)
		rr := eng1.Irecv(0, 9, buf)
		sr := eng0.Isend(1, 9, payload)
		if got, err := rr.Wait(ctx); err != nil || got != n {
			t.Errorf("recv n=%d err=%v", got, err)
		}
		sr.Wait(ctx)
	})
	waitOrFatal(t, "rendezvous", done)
	if !bytes.Equal(buf, payload) {
		t.Fatal("payload corrupted across striped TCP rails")
	}
	st := eng0.Stats()
	if st.RdvSent != 1 || st.ChunksSent < 2 {
		t.Fatalf("stats %+v, want 1 rendezvous striped into >=2 chunks", st)
	}
	for r := 0; r < 2; r++ {
		if b := f.Node(0).Rail(r).Stats().Bytes; b == 0 {
			t.Fatalf("rail %d moved no bytes; striping should use both rails", r)
		}
	}
}

// Start-up sampling runs on the live fabric itself and yields usable
// estimator tables measured from genuine TCP transfers.
func TestSampleLiveMeasuresRealRails(t *testing.T) {
	env := rt.NewLive()
	f, err := livenet.NewLoopback(env, livenet.Config{Nodes: 2, Rails: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	profs, err := sampling.SampleLive(f, sampling.Config{MinSize: 64, MaxSize: 64 << 10, Iters: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(profs) != 2 {
		t.Fatalf("%d profiles", len(profs))
	}
	for r, p := range profs {
		if p.EagerMax != 32<<10 {
			t.Fatalf("rail %d EagerMax %d", r, p.EagerMax)
		}
		if est := p.Estimate(4 << 10); est <= 0 {
			t.Fatalf("rail %d estimate %v", r, est)
		}
		if thr := p.Threshold(); thr <= 0 {
			t.Fatalf("rail %d threshold %d", r, thr)
		}
	}
}

// Two fabrics connected like two processes: node 0 listens, node 1
// dials; eager and rendezvous traffic flows both ways.
func TestDistributedPairExchanges(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	env0, env1 := rt.NewLive(), rt.NewLive()
	f0c := make(chan *livenet.Fabric, 1)
	go func() {
		f, err := livenet.NewDistributed(env0, 0, livenet.Config{Nodes: 2, Rails: 2, Listener: ln})
		if err != nil {
			t.Error(err)
			f0c <- nil
			return
		}
		f0c <- f
	}()
	f1, err := livenet.NewDistributed(env1, 1, livenet.Config{
		Nodes: 2, Rails: 2, Peers: map[int]string{0: ln.Addr().String()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f1.Close()
	f0 := <-f0c
	if f0 == nil {
		t.FailNow()
	}
	defer f0.Close()

	profs := tcpProfiles(2, 32<<10)
	eng0 := engineOn(t, env0, f0, 0, profs)
	eng1 := engineOn(t, env1, f1, 1, profs)

	big := make([]byte, 1<<20)
	rand.New(rand.NewSource(3)).Read(big)
	bigBuf := make([]byte, len(big))
	smallBuf := make([]byte, 64)
	done0, done1 := make(chan struct{}), make(chan struct{})
	env0.Go("node0", func(ctx rt.Ctx) {
		defer close(done0)
		rr := eng0.Irecv(1, 2, smallBuf)
		eng0.Isend(1, 1, big)
		if n, err := rr.Wait(ctx); err != nil || n != 5 {
			t.Errorf("node0 recv n=%d err=%v", n, err)
		}
	})
	env1.Go("node1", func(ctx rt.Ctx) {
		defer close(done1)
		rr := eng1.Irecv(0, 1, bigBuf)
		eng1.Isend(0, 2, []byte("hello"))
		if n, err := rr.Wait(ctx); err != nil || n != len(big) {
			t.Errorf("node1 recv n=%d err=%v", n, err)
		}
	})
	waitOrFatal(t, "node0 exchange", done0)
	waitOrFatal(t, "node1 exchange", done1)
	if !bytes.Equal(bigBuf, big) {
		t.Fatal("distributed rendezvous payload corrupted")
	}
	if string(smallBuf[:5]) != "hello" {
		t.Fatalf("distributed eager payload %q", smallBuf[:5])
	}
	// Remote stubs guard against misuse.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("remote node rail access did not panic")
			}
		}()
		f1.Node(0).Rail(0)
	}()
}

// IdleAt reports a horizon while bytes are queued and returns to "now"
// once the writer drains.
func TestIdleAtDrains(t *testing.T) {
	env := rt.NewLive()
	f, err := livenet.NewLoopback(env, livenet.Config{Nodes: 2, Rails: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rail := f.Node(0).Rail(0)
	done := make(chan struct{})
	env.Go("drain", func(ctx rt.Ctx) {
		defer close(done)
		for i := 0; i < 4; i++ {
			f.Node(1).RecvQ().Pop(ctx)
		}
	})
	env.Go("send", func(ctx rt.Ctx) {
		for i := 0; i < 4; i++ {
			rail.SendData(ctx, 1, make([]byte, 1<<20), nil)
		}
	})
	waitOrFatal(t, "drain", done)
	deadline := time.Now().Add(5 * time.Second)
	for rail.Busy() {
		if time.Now().After(deadline) {
			t.Fatal("rail never drained")
		}
		time.Sleep(time.Millisecond)
	}
	if at, now := rail.IdleAt(), env.Now(); at > now+time.Millisecond {
		t.Fatalf("idle rail predicts horizon %v past now %v", at, now)
	}
}

// Close is idempotent and leaves no goroutine blocked on a send.
func TestCloseReleasesSenders(t *testing.T) {
	env := rt.NewLive()
	f, err := livenet.NewLoopback(env, livenet.Config{Nodes: 2, Rails: 1})
	if err != nil {
		t.Fatal(err)
	}
	ev := env.NewEvent()
	done := make(chan struct{})
	env.Go("send", func(ctx rt.Ctx) {
		defer close(done)
		f.Node(0).Rail(0).SendData(ctx, 1, make([]byte, 1024), ev)
		ev.Wait(ctx)
	})
	waitOrFatal(t, "send before close", done)
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// A peer's graceful Close is not a transport error: the goodbye
// sentinel tells the survivor this was a shutdown, not a death.
func TestGracefulPeerCloseIsNotAnError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	f0c := make(chan *livenet.Fabric, 1)
	go func() {
		f, err := livenet.NewDistributed(rt.NewLive(), 0, livenet.Config{Nodes: 2, Rails: 2, Listener: ln})
		if err != nil {
			t.Error(err)
			f0c <- nil
			return
		}
		f0c <- f
	}()
	f1, err := livenet.NewDistributed(rt.NewLive(), 1, livenet.Config{
		Nodes: 2, Rails: 2, Peers: map[int]string{0: ln.Addr().String()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f1.Close()
	f0 := <-f0c
	if f0 == nil {
		t.FailNow()
	}
	f0.Close()
	time.Sleep(200 * time.Millisecond) // let f1's readers observe the goodbye
	if err := f1.Err(); err != nil {
		t.Fatalf("graceful peer close reported as error: %v", err)
	}
}

// A peer dying without the goodbye handshake IS recorded, so a hung run
// has a diagnostic in Err.
func TestPeerDeathRecordsErr(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	f0c := make(chan *livenet.Fabric, 1)
	go func() {
		f, err := livenet.NewDistributed(rt.NewLive(), 0, livenet.Config{Nodes: 2, Rails: 1, Listener: ln})
		if err != nil {
			t.Error(err)
			f0c <- nil
			return
		}
		f0c <- f
	}()
	// A raw "process" that handshakes rail 0 and then dies abruptly.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	hello := []byte{'N', 'M', 'T', 'R', 1, 0, 0, 0, 0}
	if _, err := conn.Write(hello); err != nil {
		t.Fatal(err)
	}
	f0 := <-f0c
	if f0 == nil {
		t.FailNow()
	}
	defer f0.Close()
	conn.Close() // abrupt death: no goodbye
	deadline := time.Now().Add(5 * time.Second)
	for f0.Err() == nil && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if f0.Err() == nil {
		t.Fatal("peer death left Err nil")
	}
}

// Frames above the wire limit are refused at the source instead of
// desyncing the stream.
func TestOversizedFramePanics(t *testing.T) {
	env := rt.NewLive()
	f, err := livenet.NewLoopback(env, livenet.Config{Nodes: 2, Rails: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("oversized frame did not panic")
		}
	}()
	huge := make([]byte, (1<<30)+1)
	f.Node(0).Rail(0).SendData(nil, 1, huge, nil)
}

// SetSink (fabric.DirectNode) hands deliveries to the consumer on the
// reader goroutine, bypassing RecvQ; SetSink(nil) restores queue
// delivery. This is how the engine's progress workers are fed directly.
func TestDirectSinkBypassesRecvQ(t *testing.T) {
	env := rt.NewLive()
	f, err := livenet.NewLoopback(env, livenet.Config{Nodes: 2, Rails: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	dn, ok := f.Node(1).(fabric.DirectNode)
	if !ok {
		t.Fatal("livenet node does not implement fabric.DirectNode")
	}
	got := make(chan *fabric.Delivery, 1)
	dn.SetSink(func(d *fabric.Delivery) { got <- d })
	env.Go("send", func(ctx rt.Ctx) {
		f.Node(0).Rail(0).SendEager(ctx, 1, []byte("direct"))
	})
	select {
	case d := <-got:
		if string(d.Data) != "direct" || d.From != 0 {
			t.Fatalf("sink delivery %+v", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sink never fed")
	}
	if n := f.Node(1).RecvQ().Len(); n != 0 {
		t.Fatalf("%d deliveries leaked into RecvQ while sink installed", n)
	}
	// Restore queue delivery.
	dn.SetSink(nil)
	env.Go("send2", func(ctx rt.Ctx) {
		f.Node(0).Rail(0).SendEager(ctx, 1, []byte("queued"))
	})
	deadline := time.Now().Add(5 * time.Second)
	for f.Node(1).RecvQ().Len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("delivery never reached RecvQ after SetSink(nil)")
		}
		time.Sleep(time.Millisecond)
	}
}
