package pioman

import (
	"testing"
	"time"

	"repro/internal/marcel"
	"repro/internal/model"
	"repro/internal/rt"
	"repro/internal/simnet"
)

func cluster(t *testing.T) (*rt.SimEnv, *simnet.Cluster) {
	t.Helper()
	env := rt.NewSim()
	c, err := simnet.New(env, simnet.Config{
		Nodes: 2, Rails: model.PaperTestbed(), CoresPerNode: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return env, c
}

func TestBlockingDeliveryMatchesModel(t *testing.T) {
	env, c := cluster(t)
	m := New(env, c.Nodes[1], nil, Config{Mode: Blocking})
	var handled time.Duration
	m.Start(func(ctx rt.Ctx, d *simnet.Delivery) { handled = ctx.Now() })
	size := 4096
	env.Go("send", func(ctx rt.Ctx) {
		c.Nodes[0].Rail(0).SendEager(ctx, 1, make([]byte, size))
		ctx.Sleep(time.Millisecond)
		m.Stop()
	})
	env.Run()
	want := c.Nodes[0].Rail(0).Profile().EagerOneWay(size)
	if handled != want {
		t.Fatalf("handler at %v, want %v (zero-added-latency blocking path)", handled, want)
	}
	if st := m.Stats(); st.Delivered != 1 {
		t.Fatalf("delivered = %d", st.Delivered)
	}
}

func TestPollingAddsBoundedLatency(t *testing.T) {
	env, c := cluster(t)
	interval := 10 * time.Microsecond
	m := New(env, c.Nodes[1], nil, Config{Mode: Polling, Interval: interval})
	var handled time.Duration
	m.Start(func(ctx rt.Ctx, d *simnet.Delivery) { handled = ctx.Now() })
	size := 4096
	env.Go("send", func(ctx rt.Ctx) {
		c.Nodes[0].Rail(0).SendEager(ctx, 1, make([]byte, size))
		ctx.Sleep(time.Millisecond)
		m.Stop()
	})
	env.Run()
	base := c.Nodes[0].Rail(0).Profile().EagerOneWay(size)
	if handled < base {
		t.Fatalf("polling handled at %v before possible %v", handled, base)
	}
	if handled > base+interval {
		t.Fatalf("polling latency %v exceeds one interval over %v", handled, base)
	}
	if st := m.Stats(); st.Polls == 0 {
		t.Fatal("no polls counted")
	}
}

func TestAutoUsesPollingWhenCoresIdle(t *testing.T) {
	env, c := cluster(t)
	sched := marcel.New(env, 2)
	m := New(env, c.Nodes[1], sched, Config{Mode: Auto, Interval: 5 * time.Microsecond})
	handled := false
	m.Start(func(ctx rt.Ctx, d *simnet.Delivery) { handled = true })
	env.Go("send", func(ctx rt.Ctx) {
		ctx.Sleep(20 * time.Microsecond) // let the poller spin a few times
		c.Nodes[0].Rail(0).SendEager(ctx, 1, make([]byte, 64))
		ctx.Sleep(time.Millisecond)
		m.Stop()
		sched.Shutdown()
	})
	env.Run()
	if !handled {
		t.Fatal("delivery not handled")
	}
	if st := m.Stats(); st.Polls == 0 {
		t.Fatal("auto mode with idle cores should poll")
	}
}

func TestAutoFallsBackToBlockingWhenBusy(t *testing.T) {
	env, c := cluster(t)
	sched := marcel.New(env, 1)
	m := New(env, c.Nodes[1], sched, Config{Mode: Auto, Interval: 5 * time.Microsecond})
	sched.SetComputing(0, true) // no idle cores -> blocking
	handled := false
	m.Start(func(ctx rt.Ctx, d *simnet.Delivery) { handled = true })
	env.Go("send", func(ctx rt.Ctx) {
		ctx.Sleep(50 * time.Microsecond)
		c.Nodes[0].Rail(0).SendEager(ctx, 1, make([]byte, 64))
		ctx.Sleep(time.Millisecond)
		m.Stop()
		sched.Shutdown()
	})
	env.Run()
	if !handled {
		t.Fatal("delivery not handled")
	}
	if st := m.Stats(); st.Polls != 0 {
		t.Fatalf("auto mode without idle cores polled %d times", st.Polls)
	}
}

func TestOrderingPreserved(t *testing.T) {
	env, c := cluster(t)
	m := New(env, c.Nodes[1], nil, Config{})
	var got []int
	m.Start(func(ctx rt.Ctx, d *simnet.Delivery) { got = append(got, int(d.Data[0])) })
	env.Go("send", func(ctx rt.Ctx) {
		for i := 0; i < 5; i++ {
			c.Nodes[0].Rail(0).SendEager(ctx, 1, []byte{byte(i)})
		}
		ctx.Sleep(time.Millisecond)
		m.Stop()
	})
	env.Run()
	if len(got) != 5 {
		t.Fatalf("handled %d deliveries", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("order %v", got)
		}
	}
}

func TestCopyCPUDelaysNextDelivery(t *testing.T) {
	env, c := cluster(t)
	m := New(env, c.Nodes[1], nil, Config{})
	var times []time.Duration
	m.Start(func(ctx rt.Ctx, d *simnet.Delivery) { times = append(times, ctx.Now()) })
	size := 16384
	env.Go("send0", func(ctx rt.Ctx) {
		c.Nodes[0].Rail(0).SendEager(ctx, 1, make([]byte, size))
	})
	env.Go("send1", func(ctx rt.Ctx) {
		c.Nodes[0].Rail(1).SendEager(ctx, 1, make([]byte, size))
	})
	env.Go("stopper", func(ctx rt.Ctx) {
		ctx.Sleep(10 * time.Millisecond)
		m.Stop()
	})
	env.Run()
	if len(times) != 2 {
		t.Fatalf("handled %d", len(times))
	}
	p := c.Nodes[0].Rail(0).Profile()
	copyCost := time.Duration(float64(size) / p.RecvCopyRate * 1e9)
	if gap := times[1] - times[0]; gap < copyCost {
		t.Fatalf("second delivery after %v, want at least the %v receive copy", gap, copyCost)
	}
}

func TestTwoWorkersProcessInParallel(t *testing.T) {
	env, c := cluster(t)
	m := New(env, c.Nodes[1], nil, Config{Workers: 2})
	var times []time.Duration
	m.Start(func(ctx rt.Ctx, d *simnet.Delivery) { times = append(times, ctx.Now()) })
	size := 16384
	env.Go("send0", func(ctx rt.Ctx) {
		c.Nodes[0].Rail(0).SendEager(ctx, 1, make([]byte, size))
	})
	env.Go("send1", func(ctx rt.Ctx) {
		c.Nodes[0].Rail(1).SendEager(ctx, 1, make([]byte, size))
	})
	env.Go("stopper", func(ctx rt.Ctx) {
		ctx.Sleep(10 * time.Millisecond)
		m.Stop() // one call nudges every worker
	})
	env.Run()
	if len(times) != 2 {
		t.Fatalf("handled %d", len(times))
	}
	p := c.Nodes[0].Rail(0).Profile()
	copyCost := time.Duration(float64(size) / p.RecvCopyRate * 1e9)
	if gap := times[1] - times[0]; gap >= copyCost {
		t.Fatalf("parallel workers still serialized: gap %v", gap)
	}
}

func TestModeString(t *testing.T) {
	if Blocking.String() != "blocking" || Polling.String() != "polling" || Auto.String() != "auto" {
		t.Fatal("mode names")
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode must format")
	}
}

func TestAutoWithoutSchedulerDegradesToBlocking(t *testing.T) {
	env, c := cluster(t)
	m := New(env, c.Nodes[1], nil, Config{Mode: Auto})
	if m.cfg.Mode != Blocking {
		t.Fatal("Auto without scheduler should degrade to Blocking")
	}
	_ = env
}

// Regression: Stop must wake every worker, live — a single nudge used to
// leave Workers-1 actors parked on the queue forever, so WaitIdle hung.
func TestStopWakesAllWorkersLive(t *testing.T) {
	env := rt.NewLive()
	c, err := simnet.New(env, simnet.Config{
		Nodes: 2, Rails: model.PaperTestbed(), CoresPerNode: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := New(env, c.Nodes[1], nil, Config{Workers: 3})
	m.Start(func(ctx rt.Ctx, d *simnet.Delivery) {})
	m.Stop()
	m.Stop() // idempotent: must not enqueue stale nudges
	done := make(chan struct{})
	go func() {
		env.WaitIdle()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("WaitIdle hung: Stop left workers parked on the queue")
	}
	if n := c.Nodes[1].RecvQ().Len(); n != 0 {
		t.Fatalf("%d stale stop nudges left in the queue", n)
	}
}

// Dispatch mode on a fabric without direct feeding: detection actors
// pop the queue and hand deliveries to the dispatcher instead of the
// inline handler, and Stop still reclaims every actor.
func TestDispatchModeFallbackLoop(t *testing.T) {
	env := rt.NewLive()
	c, err := simnet.New(env, simnet.Config{
		Nodes: 2, Rails: model.PaperTestbed(), CoresPerNode: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan int, 4)
	m := New(env, c.Nodes[1], nil, Config{Workers: 2, Dispatch: func(d *simnet.Delivery) {
		got <- d.From
	}})
	m.Start(func(ctx rt.Ctx, d *simnet.Delivery) {
		t.Error("inline handler ran in dispatch mode")
	})
	env.Go("send", func(ctx rt.Ctx) {
		c.Nodes[0].Rail(0).SendEager(ctx, 1, make([]byte, 128))
	})
	select {
	case from := <-got:
		if from != 0 {
			t.Fatalf("dispatched delivery from %d", from)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("delivery never dispatched")
	}
	if st := m.Stats(); st.Delivered != 1 {
		t.Fatalf("delivered = %d", st.Delivered)
	}
	m.Stop()
	done := make(chan struct{})
	go func() {
		env.WaitIdle()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop left dispatch actors parked")
	}
}
