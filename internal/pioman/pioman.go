// Package pioman reproduces the role of the PIOMan I/O manager: it is the
// progression engine that detects communication events and hands them to
// the communication library with a guaranteed level of reactivity.
//
// Like the original, it supports two detection methods and can choose
// between them from the machine context (paper §III-A):
//
//   - Blocking: a progression actor parks on the node's delivery queue
//     and wakes exactly when a message arrives (the interrupt-like path;
//     zero added latency in the model).
//   - Polling: the progression actor peeks the queue every Interval and
//     sleeps in between (the PIO-friendly path; adds up to one interval
//     of latency but represents a core that keeps control). The
//     reactivity ablation bench quantifies this trade-off.
//   - Auto: polling while the node has spare cores, blocking otherwise —
//     mirroring PIOMan's context-driven method selection.
//
// Deliveries are processed in arrival order. For each one the manager
// charges the receiver-side CPU costs from the fabric model, invokes the
// engine handler (which may fire completions), then charges the eager
// receive-copy occupancy.
package pioman

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fabric"
	"repro/internal/marcel"
	"repro/internal/rt"
)

// Mode selects the event-detection method.
type Mode int

const (
	// Blocking parks on the delivery queue (interrupt-like).
	Blocking Mode = iota
	// Polling checks the queue every Interval.
	Polling
	// Auto picks Polling while idle cores exist, else Blocking.
	Auto
)

func (m Mode) String() string {
	switch m {
	case Blocking:
		return "blocking"
	case Polling:
		return "polling"
	case Auto:
		return "auto"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config tunes a Manager.
type Config struct {
	// Mode is the detection method (default Blocking).
	Mode Mode
	// Interval is the polling period (default 1µs of model time).
	Interval time.Duration
	// Workers is the number of progression actors (default 1). More than
	// one lets receive processing proceed in parallel on several cores at
	// the price of per-message ordering.
	Workers int
	// Dispatch, when non-nil, delegates progression to the engine's
	// multicore worker pool (internal/progress): instead of running the
	// handler inline, the manager hands each delivery to Dispatch, which
	// classifies it and enqueues the engine work on a per-core worker.
	// On fabrics whose nodes implement fabric.DirectNode the transport
	// feeds Dispatch directly from its reader goroutines and no
	// detection actor runs at all; otherwise Workers actors pop the
	// receive queue and dispatch. Dispatch must not block. The modeled
	// RecvCPU/CopyCPU charges are skipped in this mode — it is meant for
	// live fabrics, whose deliveries carry no modeled costs.
	Dispatch func(d *fabric.Delivery)
}

// Handler processes one delivery. It runs on a progression actor and may
// block on rt primitives.
type Handler func(ctx rt.Ctx, d *fabric.Delivery)

// Stats counts progression activity.
type Stats struct {
	Delivered uint64
	Polls     uint64
	BusyTime  time.Duration
}

// Manager drives event detection for one node.
type Manager struct {
	env    rt.Env
	node   fabric.Node
	sched  *marcel.Scheduler
	cfg    Config
	direct fabric.DirectNode // non-nil when the transport feeds Dispatch

	// dispatched counts direct-mode deliveries. It is atomic — not under
	// mu — because every reader goroutine of the transport bumps it once
	// per frame, and a shared mutex there would re-serialise exactly the
	// path the multicore dispatch exists to parallelise.
	dispatched atomic.Uint64

	mu      sync.Mutex
	handler Handler
	stats   Stats
	stopped bool
}

// New creates a progression manager for the node, using sched to judge
// core availability in Auto mode (sched may be nil if Mode != Auto).
func New(env rt.Env, node fabric.Node, sched *marcel.Scheduler, cfg Config) *Manager {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Microsecond
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Mode == Auto && sched == nil {
		cfg.Mode = Blocking
	}
	return &Manager{env: env, node: node, sched: sched, cfg: cfg}
}

// Start registers the engine handler and launches event detection: the
// progression actors (inline mode), dispatch actors (Dispatch set), or —
// when the fabric supports direct feeding — no actor at all, the
// transport's own reader goroutines calling the dispatcher.
func (m *Manager) Start(h Handler) {
	m.mu.Lock()
	m.handler = h
	m.mu.Unlock()
	if m.cfg.Dispatch != nil {
		if dn, ok := m.node.(fabric.DirectNode); ok {
			m.direct = dn
			dn.SetSink(m.dispatchOne)
			return
		}
		for i := 0; i < m.cfg.Workers; i++ {
			name := fmt.Sprintf("pioman-n%d-d%d", m.node.ID(), i)
			m.env.Go(name, m.dispatchLoop)
		}
		return
	}
	for i := 0; i < m.cfg.Workers; i++ {
		name := fmt.Sprintf("pioman-n%d-w%d", m.node.ID(), i)
		m.env.Go(name, m.loop)
	}
}

// dispatchOne counts and forwards one delivery to the engine's worker
// pool. It runs on a transport reader goroutine and must not block.
func (m *Manager) dispatchOne(d *fabric.Delivery) {
	m.dispatched.Add(1)
	m.cfg.Dispatch(d)
}

// dispatchLoop is a detection actor for dispatch mode on fabrics
// without direct feeding: it pops deliveries and hands them to the
// dispatcher instead of doing engine work inline.
func (m *Manager) dispatchLoop(ctx rt.Ctx) {
	for {
		item := m.node.RecvQ().Pop(ctx)
		if item == nil { // Stop nudge
			return
		}
		m.dispatchOne(item.(*fabric.Delivery))
	}
}

// Stop makes progression actors exit after their current delivery: one
// nil nudge is pushed per worker and each worker consumes exactly one,
// so no worker stays parked and no stale nudge is left for a later
// queue consumer. Stop is idempotent.
func (m *Manager) Stop() {
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return
	}
	m.stopped = true
	m.mu.Unlock()
	if m.direct != nil {
		m.direct.SetSink(nil) // subsequent deliveries park in RecvQ
		return
	}
	for i := 0; i < m.cfg.Workers; i++ {
		m.node.RecvQ().Push(nil)
	}
}

// Stats returns a snapshot of the counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	st := m.stats
	m.mu.Unlock()
	st.Delivered += m.dispatched.Load()
	return st
}

// pollingNow decides the detection method for the next wait.
func (m *Manager) pollingNow() bool {
	switch m.cfg.Mode {
	case Polling:
		return true
	case Auto:
		return m.sched.NumIdle() > 0
	default:
		return false
	}
}

// loop is one progression actor. Popping the nil stop nudge is the only
// exit, so each worker consumes exactly one of Stop's nudges and none is
// left behind for a later queue consumer.
func (m *Manager) loop(ctx rt.Ctx) {
	for {
		var item any
		if m.pollingNow() {
			var ok bool
			item, ok = m.node.RecvQ().TryPop()
			if !ok {
				m.mu.Lock()
				m.stats.Polls++
				m.mu.Unlock()
				ctx.Sleep(m.cfg.Interval)
				continue
			}
		} else {
			item = m.node.RecvQ().Pop(ctx)
		}
		if item == nil { // Stop nudge
			return
		}
		d := item.(*fabric.Delivery)
		start := ctx.Now()
		if d.RecvCPU > 0 {
			ctx.Sleep(d.RecvCPU)
		}
		m.mu.Lock()
		h := m.handler
		m.mu.Unlock()
		if h != nil {
			h(ctx, d)
		}
		// The receive copy occupies this core after completion fired; its
		// latency share is already in the sender-side calibration.
		if d.CopyCPU > 0 {
			ctx.Sleep(d.CopyCPU)
		}
		m.mu.Lock()
		m.stats.Delivered++
		m.stats.BusyTime += ctx.Now() - start
		m.mu.Unlock()
	}
}
