package core

import (
	"sync"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/model"
	"repro/internal/railhealth"
	"repro/internal/rt"
)

// gateFabric is a minimal in-memory fabric whose rails can be made to
// block mid-write toward chosen destinations — the "slow rail" of the
// flush regression test. Frames are delivered straight to the
// destination node's receive queue.
type gateFabric struct {
	env   rt.Env
	nodes []*gateNode
}

type gateNode struct {
	f      *gateFabric
	id     int
	recvq  rt.Queue
	health *railhealth.Tracker
	rails  []*gateRail
}

type gateRail struct {
	n    *gateNode
	idx  int
	prof *model.Profile

	mu   sync.Mutex
	gate func(to int) // when non-nil, called (and may block) before delivery
}

func newGateFabric(env rt.Env, nodes, rails int) *gateFabric {
	f := &gateFabric{env: env}
	for i := 0; i < nodes; i++ {
		n := &gateNode{f: f, id: i, recvq: env.NewQueue(), health: railhealth.New(env, i, rails)}
		for r := 0; r < rails; r++ {
			n.rails = append(n.rails, &gateRail{n: n, idx: r, prof: model.Myri10G()})
		}
		f.nodes = append(f.nodes, n)
	}
	return f
}

func (f *gateFabric) Env() rt.Env            { return f.env }
func (f *gateFabric) NumNodes() int          { return len(f.nodes) }
func (f *gateFabric) NumRails() int          { return len(f.nodes[0].rails) }
func (f *gateFabric) Node(i int) fabric.Node { return f.nodes[i] }
func (f *gateFabric) Close() error           { return nil }

func (n *gateNode) ID() int                { return n.id }
func (n *gateNode) NumRails() int          { return len(n.rails) }
func (n *gateNode) Rail(i int) fabric.Rail { return n.rails[i] }
func (n *gateNode) RecvQ() rt.Queue        { return n.recvq }
func (n *gateNode) Health() fabric.Health  { return n.health }
func (n *gateNode) Cores() int             { return 2 }

func (r *gateRail) Index() int              { return r.idx }
func (r *gateRail) Profile() *model.Profile { return r.prof }
func (r *gateRail) IdleAt() time.Duration   { return r.n.f.env.Now() }
func (r *gateRail) Busy() bool              { return false }
func (r *gateRail) State() fabric.RailState { return r.n.health.State(r.idx) }
func (r *gateRail) Stats() (s fabric.Stats) { return }
func (r *gateRail) setGate(fn func(to int)) {
	r.mu.Lock()
	r.gate = fn
	r.mu.Unlock()
}

func (r *gateRail) send(to int, data []byte) {
	r.mu.Lock()
	gate := r.gate
	r.mu.Unlock()
	if gate != nil {
		gate(to) // the blocking rail write
	}
	r.n.f.nodes[to].recvq.Push(&fabric.Delivery{From: r.n.id, Rail: r.idx, Data: data})
}

func (r *gateRail) SendEager(ctx rt.Ctx, to int, data []byte) { r.send(to, data) }
func (r *gateRail) SendControl(ctx rt.Ctx, to int, data []byte, cpu, recv time.Duration) {
	r.send(to, data)
}
func (r *gateRail) SendData(ctx rt.Ctx, to int, data []byte, done rt.Event) {
	r.send(to, data)
	if done != nil {
		done.Fire()
	}
}

// A rail write that blocks toward one destination must not stall eager
// flushes to other destinations, and must not block the Isend callers:
// the flush path holds no shard or queue lock across fabric I/O, and
// distinct destinations flush on distinct workers. Regression test for
// the slow-rail serialization of the single-lock engine.
func TestSlowRailDoesNotStallOtherDestinations(t *testing.T) {
	env := rt.NewLive()
	f := newGateFabric(env, 3, 1)
	profs := paperProfiles(t)[:1]
	var eng [3]*Engine
	for i := range eng {
		var err error
		// Workers=2: dest 1 flushes on worker 1, dest 2 on worker 0
		// (DestKey is the identity), so the blocked flush provably sits
		// on a different worker than the probe flush.
		if eng[i], err = NewEngine(env, f.nodes[i], profs, Config{Workers: 2}); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, e := range eng {
			e.Stop()
		}
	})

	release := make(chan struct{})
	blocked := make(chan struct{})
	var once sync.Once
	f.nodes[0].rails[0].setGate(func(to int) {
		if to == 1 {
			once.Do(func() { close(blocked) })
			<-release
		}
	})

	buf1 := make([]byte, 64)
	buf2 := make([]byte, 64)
	rr1 := eng[1].Irecv(0, 1, buf1)
	rr2 := eng[2].Irecv(0, 2, buf2)

	result := make(chan string, 1)
	env.Go("app", func(ctx rt.Ctx) {
		eng[0].Isend(1, 1, []byte("to the slow rail"))
		// Wait until the flush for dest 1 is genuinely stuck inside the
		// rail write before probing dest 2.
		select {
		case <-blocked:
		case <-time.After(5 * time.Second):
			result <- "flush for dest 1 never reached the rail"
			return
		}
		eng[0].Isend(2, 2, []byte("past the slow rail"))
		if !rr2.Done().WaitTimeout(ctx, 5*time.Second) {
			result <- "send to dest 2 stalled behind dest 1's blocked rail write"
			return
		}
		if rr1.Done().Fired() {
			result <- "dest 1 completed while its rail write was blocked"
			return
		}
		close(release)
		if !rr1.Done().WaitTimeout(ctx, 5*time.Second) {
			result <- "dest 1 never completed after the rail unblocked"
			return
		}
		result <- ""
	})
	if msg := <-result; msg != "" {
		t.Fatal(msg)
	}
	if n, err := rr2.Len(), rr2.Err(); err != nil || n != len("past the slow rail") {
		t.Fatalf("dest 2 recv n=%d err=%v", n, err)
	}
}
