package core

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/rt"
	"repro/internal/sampling"
	"repro/internal/simnet"
	"repro/internal/strategy"
)

var (
	profilesOnce sync.Once
	testProfiles []*sampling.RailProfile
)

// paperProfiles samples the paper testbed once for all engine tests.
func paperProfiles(t *testing.T) []*sampling.RailProfile {
	t.Helper()
	profilesOnce.Do(func() {
		var err error
		testProfiles, err = sampling.SampleProfiles(model.PaperTestbed(),
			sampling.Config{MinSize: 4, MaxSize: 8 << 20})
		if err != nil {
			panic(err)
		}
	})
	return testProfiles
}

// pair builds a two-node simulated testbed with one engine per node.
func pair(t *testing.T, cfg Config) (*rt.SimEnv, [2]*Engine) {
	t.Helper()
	env := rt.NewSim()
	c, err := simnet.New(env, simnet.Config{
		Nodes: 2, Rails: model.PaperTestbed(), CoresPerNode: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	profs := paperProfiles(t)
	var engines [2]*Engine
	for i := 0; i < 2; i++ {
		engines[i], err = NewEngine(env, c.Nodes[i], profs, cfg)
		if err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(env.Close)
	return env, engines
}

func TestNewEngineValidatesProfiles(t *testing.T) {
	env := rt.NewSim()
	c, _ := simnet.New(env, simnet.Config{Nodes: 1, Rails: model.PaperTestbed(), CoresPerNode: 1})
	if _, err := NewEngine(env, c.Nodes[0], paperProfiles(t)[:1], Config{}); err == nil {
		t.Fatal("profile count mismatch accepted")
	}
	env.Close()
}

func TestEagerRoundTrip(t *testing.T) {
	env, eng := pair(t, Config{})
	payload := []byte("hello, rails")
	var got []byte
	var n int
	env.Go("app", func(ctx rt.Ctx) {
		buf := make([]byte, 64)
		rr := eng[1].Irecv(0, 7, buf)
		sr := eng[0].Isend(1, 7, payload)
		sr.Wait(ctx)
		var err error
		n, err = rr.Wait(ctx)
		if err != nil {
			t.Error(err)
		}
		got = buf[:n]
	})
	env.Run()
	if !bytes.Equal(got, payload) {
		t.Fatalf("received %q, want %q", got, payload)
	}
	st := eng[0].Stats()
	if st.EagerSent != 1 || st.RdvSent != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// A tiny eager message travels on the low-latency rail (QsNetII) and
// arrives in about its modeled one-way time.
func TestEagerLatencyNearModel(t *testing.T) {
	env, eng := pair(t, Config{})
	var arrived time.Duration
	env.Go("app", func(ctx rt.Ctx) {
		rr := eng[1].Irecv(0, 1, make([]byte, 16))
		eng[0].Isend(1, 1, make([]byte, 4))
		rr.Wait(ctx)
		arrived = ctx.Now()
	})
	env.Run()
	q := model.QsNetII()
	// Framing: container header + one entry descriptor.
	lo := q.EagerOneWay(4)
	hi := q.EagerOneWay(4+128) + 2*time.Microsecond
	if arrived < lo || arrived > hi {
		t.Fatalf("4B one-way %v, want within [%v, %v]", arrived, lo, hi)
	}
	if st := eng[1].Stats(); st.Unexpected != 0 {
		t.Fatalf("posted receive went unexpected: %+v", st)
	}
}

func TestUnexpectedEagerMatchesLateIrecv(t *testing.T) {
	env, eng := pair(t, Config{})
	var got []byte
	env.Go("app", func(ctx rt.Ctx) {
		sr := eng[0].Isend(1, 3, []byte("early"))
		sr.Wait(ctx)
		ctx.Sleep(time.Millisecond) // message arrives, no receive posted
		buf := make([]byte, 16)
		rr := eng[1].Irecv(0, 3, buf)
		n, err := rr.Wait(ctx)
		if err != nil {
			t.Error(err)
		}
		got = buf[:n]
	})
	env.Run()
	if string(got) != "early" {
		t.Fatalf("got %q", got)
	}
	if st := eng[1].Stats(); st.Unexpected != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// The rendezvous path stripes a 4MB message over both rails, hitting the
// paper's hetero-split timing.
func TestRendezvousHeteroSplit4MB(t *testing.T) {
	env, eng := pair(t, Config{})
	n := 4 << 20
	payload := make([]byte, n)
	rand.New(rand.NewSource(42)).Read(payload)
	buf := make([]byte, n)
	var arrived time.Duration
	env.Go("app", func(ctx rt.Ctx) {
		rr := eng[1].Irecv(0, 9, buf)
		sr := eng[0].Isend(1, 9, payload)
		if _, err := rr.Wait(ctx); err != nil {
			t.Error(err)
		}
		arrived = ctx.Now()
		sr.Wait(ctx)
	})
	env.Run()
	if !bytes.Equal(buf, payload) {
		t.Fatal("payload corrupted across striped rails")
	}
	st := eng[0].Stats()
	if st.RdvSent != 1 || st.ChunksSent != 2 {
		t.Fatalf("stats %+v, want 1 rendezvous in 2 chunks", st)
	}
	// Paper checkpoint: both chunks land just after ~2000µs; handshake
	// adds ~8µs.
	us := arrived.Seconds() * 1e6
	if us < 1990 || us > 2030 {
		t.Fatalf("4MB one-way %.1fµs, want ~2000-2020µs (paper hetero-split)", us)
	}
}

func TestRendezvousBeforeIrecvQueuesRTS(t *testing.T) {
	env, eng := pair(t, Config{})
	n := 256 << 10
	payload := make([]byte, n)
	for i := range payload {
		payload[i] = byte(i)
	}
	buf := make([]byte, n)
	env.Go("app", func(ctx rt.Ctx) {
		eng[0].Isend(1, 4, payload)
		ctx.Sleep(time.Millisecond) // RTS arrives and must wait
		rr := eng[1].Irecv(0, 4, buf)
		if _, err := rr.Wait(ctx); err != nil {
			t.Error(err)
		}
	})
	env.Run()
	if !bytes.Equal(buf, payload) {
		t.Fatal("payload corrupted")
	}
}

func TestRecvBufferTooSmallFails(t *testing.T) {
	env, eng := pair(t, Config{})
	var rerr error
	env.Go("app", func(ctx rt.Ctx) {
		rr := eng[1].Irecv(0, 5, make([]byte, 8))
		eng[0].Isend(1, 5, make([]byte, 100<<10)) // rendezvous, too big
		_, rerr = rr.Wait(ctx)
	})
	env.Run()
	if rerr == nil {
		t.Fatal("oversized rendezvous into small buffer did not error")
	}
}

func TestEagerIntoSmallBufferFails(t *testing.T) {
	env, eng := pair(t, Config{})
	var rerr error
	env.Go("app", func(ctx rt.Ctx) {
		rr := eng[1].Irecv(0, 5, make([]byte, 2))
		eng[0].Isend(1, 5, []byte("too big for buffer"))
		_, rerr = rr.Wait(ctx)
	})
	env.Run()
	if rerr == nil {
		t.Fatal("oversized eager into small buffer did not error")
	}
}

func TestZeroLengthMessage(t *testing.T) {
	env, eng := pair(t, Config{})
	ok := false
	env.Go("app", func(ctx rt.Ctx) {
		rr := eng[1].Irecv(0, 6, nil)
		eng[0].Isend(1, 6, nil)
		n, err := rr.Wait(ctx)
		ok = n == 0 && err == nil
	})
	env.Run()
	if !ok {
		t.Fatal("zero-length roundtrip failed")
	}
}

// Two packets submitted back-to-back to one destination share a container
// (the optimizer's aggregation) and both arrive intact.
func TestAggregationPacksPendingPackets(t *testing.T) {
	env, eng := pair(t, Config{})
	var got1, got2 []byte
	env.Go("app", func(ctx rt.Ctx) {
		b1 := make([]byte, 16)
		b2 := make([]byte, 16)
		r1 := eng[1].Irecv(0, 1, b1)
		r2 := eng[1].Irecv(0, 2, b2)
		eng[0].Isend(1, 1, []byte("first"))
		eng[0].Isend(1, 2, []byte("second"))
		n1, _ := r1.Wait(ctx)
		n2, _ := r2.Wait(ctx)
		got1, got2 = b1[:n1], b2[:n2]
	})
	env.Run()
	if string(got1) != "first" || string(got2) != "second" {
		t.Fatalf("got %q, %q", got1, got2)
	}
	st := eng[0].Stats()
	if st.EagerAggregated < 2 {
		t.Fatalf("no aggregation: %+v", st)
	}
}

// The greedy policy spreads packets over rails instead of aggregating —
// and loses, reproducing Fig 3's conclusion.
func TestGreedyPolicySlowerThanAggregate(t *testing.T) {
	run := func(policy EagerPolicy) time.Duration {
		env, eng := pair(t, Config{Eager: policy})
		size := 8 << 10
		var done time.Duration
		env.Go("app", func(ctx rt.Ctx) {
			r1 := eng[1].Irecv(0, 1, make([]byte, size))
			r2 := eng[1].Irecv(0, 2, make([]byte, size))
			eng[0].Isend(1, 1, make([]byte, size))
			eng[0].Isend(1, 2, make([]byte, size))
			r1.Wait(ctx)
			r2.Wait(ctx)
			done = ctx.Now()
		})
		env.Run()
		return done
	}
	greedy := run(PolicyGreedy)
	agg := run(PolicyAggregate)
	if agg >= greedy {
		t.Fatalf("aggregate %v not faster than greedy %v (Fig 3)", agg, greedy)
	}
}

// With EagerParallel and idle cores, a single medium eager packet is
// split and submitted from several cores, beating the single-rail time
// (Fig 7 / Fig 9's estimation made real).
func TestEagerParallelBeatsSingleRail(t *testing.T) {
	run := func(parallel bool) (time.Duration, Stats) {
		env, eng := pair(t, Config{EagerParallel: parallel})
		size := 16 << 10
		var done time.Duration
		env.Go("app", func(ctx rt.Ctx) {
			rr := eng[1].Irecv(0, 1, make([]byte, size))
			eng[0].Isend(1, 1, make([]byte, size))
			rr.Wait(ctx)
			done = ctx.Now()
		})
		env.Run()
		return done, eng[0].Stats()
	}
	single, sst := run(false)
	par, pst := run(true)
	if sst.EagerParallel != 0 {
		t.Fatalf("parallel path used while disabled: %+v", sst)
	}
	if pst.EagerParallel != 1 {
		t.Fatalf("parallel path not used: %+v", pst)
	}
	if par >= single {
		t.Fatalf("parallel %v not faster than single %v", par, single)
	}
	gain := 1 - float64(par)/float64(single)
	if gain < 0.10 || gain > 0.45 {
		t.Fatalf("parallel gain %.0f%%, want 10-45%% (paper: up to 30%%)", gain*100)
	}
}

// Tiny messages must not use the parallel path even when enabled: the
// offload cost dominates (Fig 9 below 4KB).
func TestEagerParallelSkipsTinyMessages(t *testing.T) {
	env, eng := pair(t, Config{EagerParallel: true})
	env.Go("app", func(ctx rt.Ctx) {
		rr := eng[1].Irecv(0, 1, make([]byte, 8))
		eng[0].Isend(1, 1, []byte("tiny"))
		rr.Wait(ctx)
	})
	env.Run()
	if st := eng[0].Stats(); st.EagerParallel != 0 {
		t.Fatalf("tiny message split: %+v", st)
	}
}

func TestBidirectionalTraffic(t *testing.T) {
	env, eng := pair(t, Config{})
	okA, okB := false, false
	env.Go("nodeA", func(ctx rt.Ctx) {
		buf := make([]byte, 1<<20)
		rr := eng[0].Irecv(1, 2, buf)
		eng[0].Isend(1, 1, make([]byte, 1<<20))
		n, err := rr.Wait(ctx)
		okA = n == 1<<20 && err == nil
	})
	env.Go("nodeB", func(ctx rt.Ctx) {
		buf := make([]byte, 1<<20)
		rr := eng[1].Irecv(0, 1, buf)
		eng[1].Isend(0, 2, make([]byte, 1<<20))
		n, err := rr.Wait(ctx)
		okB = n == 1<<20 && err == nil
	})
	env.Run()
	if !okA || !okB {
		t.Fatalf("bidirectional exchange failed: %v %v", okA, okB)
	}
}

func TestManyFlowsIntegrity(t *testing.T) {
	env, eng := pair(t, Config{EagerParallel: true})
	rng := rand.New(rand.NewSource(7))
	const flows = 12
	payloads := make([][]byte, flows)
	bufs := make([][]byte, flows)
	for i := range payloads {
		n := rng.Intn(1<<20) + 1
		payloads[i] = make([]byte, n)
		rng.Read(payloads[i])
		bufs[i] = make([]byte, n)
	}
	failed := -1
	env.Go("recv", func(ctx rt.Ctx) {
		reqs := make([]*RecvRequest, flows)
		for i := 0; i < flows; i++ {
			reqs[i] = eng[1].Irecv(0, uint32(i), bufs[i])
		}
		for i, r := range reqs {
			if n, err := r.Wait(ctx); err != nil || n != len(payloads[i]) {
				failed = i
			}
		}
	})
	env.Go("send", func(ctx rt.Ctx) {
		for i := 0; i < flows; i++ {
			eng[0].Isend(1, uint32(i), payloads[i])
		}
	})
	env.Run()
	if failed >= 0 {
		t.Fatalf("flow %d failed", failed)
	}
	for i := range payloads {
		if !bytes.Equal(bufs[i], payloads[i]) {
			t.Fatalf("flow %d corrupted", i)
		}
	}
}

// The engine also runs over the live environment, moving real bytes with
// real goroutines.
func TestEngineOnLiveEnv(t *testing.T) {
	env := rt.NewLive()
	c, err := simnet.New(env, simnet.Config{Nodes: 2, Rails: model.PaperTestbed(), CoresPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	profs := paperProfiles(t)
	var eng [2]*Engine
	for i := 0; i < 2; i++ {
		if eng[i], err = NewEngine(env, c.Nodes[i], profs, Config{}); err != nil {
			t.Fatal(err)
		}
	}
	payload := make([]byte, 1<<20)
	rand.New(rand.NewSource(3)).Read(payload)
	buf := make([]byte, len(payload))
	done := make(chan error, 1)
	env.Go("app", func(ctx rt.Ctx) {
		rr := eng[1].Irecv(0, 1, buf)
		eng[0].Isend(1, 1, payload)
		_, err := rr.Wait(ctx)
		done <- err
	})
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("live transfer timed out")
	}
	if !bytes.Equal(buf, payload) {
		t.Fatal("live payload corrupted")
	}
	eng[0].Stop()
	eng[1].Stop()
}

// The splitter is pluggable: iso-split shows the Fig 8 gap at 4MB.
func TestPluggableSplitterIsoSlower(t *testing.T) {
	run := func(s strategy.Splitter) time.Duration {
		env, eng := pair(t, Config{Splitter: s})
		n := 4 << 20
		var done time.Duration
		env.Go("app", func(ctx rt.Ctx) {
			rr := eng[1].Irecv(0, 1, make([]byte, n))
			eng[0].Isend(1, 1, make([]byte, n))
			rr.Wait(ctx)
			done = ctx.Now()
		})
		env.Run()
		return done
	}
	iso := run(strategy.IsoSplit{})
	hetero := run(strategy.HeteroSplit{})
	// Paper: 2MB over Quadrics takes 2400µs vs equalised ~2000µs.
	if hetero >= iso {
		t.Fatalf("hetero %v not faster than iso %v", hetero, iso)
	}
	gap := iso - hetero
	if gap < 300*time.Microsecond || gap > 500*time.Microsecond {
		t.Fatalf("iso-hetero gap %v, want ~400µs (paper: 670µs idle gap at 4MB, minus handshake overlap)", gap)
	}
}

func TestEagerPolicyString(t *testing.T) {
	if PolicyAggregate.String() != "aggregate" || PolicyGreedy.String() != "greedy" {
		t.Fatal("policy names")
	}
	if EagerPolicy(9).String() == "" {
		t.Fatal("unknown policy must format")
	}
}
