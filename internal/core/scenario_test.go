package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/model"
	"repro/internal/rt"
	"repro/internal/sampling"
	"repro/internal/simnet"
)

// Fig 2 end-to-end: a message submitted while the fast rail is busy with
// a background transfer shifts its split toward the idle rail; once the
// horizon is long enough, the busy rail is discarded entirely.
func TestFig2EndToEndBusyRailShiftsSplit(t *testing.T) {
	shares := func(background int) (myri, quad uint64) {
		env, eng := pair(t, Config{})
		n := 1 << 20
		env.Go("app", func(ctx rt.Ctx) {
			if background > 0 {
				// Occupy Myri-10G (rail 0) with a raw background DMA the
				// engine can observe through IdleAt.
				rail := eng[0].node.Rail(0)
				rail.SendData(ctx, 1, make([]byte, background), nil)
			}
			before := eng[0].node.Rail(0).Stats()
			rr := eng[1].Irecv(0, 7, make([]byte, n))
			eng[0].Isend(1, 7, make([]byte, n))
			rr.Wait(ctx)
			after := eng[0].node.Rail(0).Stats()
			myri = after.Bytes - before.Bytes
		})
		// Drain the background delivery so the run quiesces.
		env.Run()
		quad = eng[0].node.Rail(1).Stats().Bytes
		return myri, quad
	}
	idleMyri, _ := shares(0)
	busyMyri, busyQuad := shares(8 << 20) // ~6.8ms of background DMA
	if busyMyri != 0 {
		t.Fatalf("busy Myri still carried %d bytes; Fig 2 says discard it", busyMyri)
	}
	if busyQuad == 0 {
		t.Fatal("idle rail carried nothing")
	}
	shortMyri, _ := shares(256 << 10) // ~215µs busy horizon: keep, shrink
	if shortMyri == 0 || shortMyri >= idleMyri {
		t.Fatalf("briefly-busy Myri share %d, want in (0, %d)", shortMyri, idleMyri)
	}
}

// A four-rail heterogeneous cluster (the four networks NewMadeleine
// supports): the hetero split uses every rail for huge messages and
// leaves GigE out of latency-critical medium ones.
func TestFourHeterogeneousRails(t *testing.T) {
	rails := []*model.Profile{model.Myri10G(), model.QsNetII(), model.IBVerbs(), model.GigE()}
	env := rt.NewSim()
	c, err := simnet.New(env, simnet.Config{Nodes: 2, Rails: rails, CoresPerNode: 4})
	if err != nil {
		t.Fatal(err)
	}
	profs, err := sampling.SampleProfiles(rails, sampling.Config{MinSize: 4, MaxSize: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	var eng [2]*Engine
	for i := 0; i < 2; i++ {
		if eng[i], err = NewEngine(env, c.Nodes[i], profs, Config{}); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(env.Close)

	n := 32 << 20
	payload := make([]byte, n)
	rand.New(rand.NewSource(5)).Read(payload)
	buf := make([]byte, n)
	env.Go("app", func(ctx rt.Ctx) {
		rr := eng[1].Irecv(0, 1, buf)
		eng[0].Isend(1, 1, payload)
		if _, err := rr.Wait(ctx); err != nil {
			t.Error(err)
		}
	})
	env.Run()
	if !bytes.Equal(buf, payload) {
		t.Fatal("payload corrupted across 4 rails")
	}
	used := 0
	var gige uint64
	for i := 0; i < 4; i++ {
		b := c.Nodes[0].Rail(i).Stats().Bytes
		if b > 0 {
			used++
		}
		if i == 3 {
			gige = b
		}
	}
	if used != 4 {
		t.Fatalf("32MB used %d rails, want all 4", used)
	}
	// GigE's wire rate is ~7% of IB's: its share must be small but real.
	if gige == 0 || gige > uint64(n/8) {
		t.Fatalf("GigE share %d bytes of %d", gige, n)
	}
	if st := eng[0].Stats(); st.ChunksSent != 4 {
		t.Fatalf("chunks %d, want 4", st.ChunksSent)
	}
}

// Back-to-back rendezvous messages pipeline: the second handshake
// overlaps the first transfer, so two 4MB messages finish in well under
// twice the single-message time plus slack.
func TestPipelinedRendezvous(t *testing.T) {
	env, eng := pair(t, Config{})
	n := 4 << 20
	var done time.Duration
	env.Go("app", func(ctx rt.Ctx) {
		r1 := eng[1].Irecv(0, 1, make([]byte, n))
		r2 := eng[1].Irecv(0, 2, make([]byte, n))
		eng[0].Isend(1, 1, make([]byte, n))
		eng[0].Isend(1, 2, make([]byte, n))
		r1.Wait(ctx)
		r2.Wait(ctx)
		done = ctx.Now()
	})
	env.Run()
	single := 2 * time.Millisecond // one 4MB hetero transfer
	if done > 2*single+100*time.Microsecond {
		t.Fatalf("two pipelined 4MB messages took %v, want <= ~%v", done, 2*single)
	}
	if done < single {
		t.Fatalf("two 4MB messages in %v: faster than the wire allows", done)
	}
}

// Property: any sequence of message sizes round-trips intact through the
// full stack (eager, parallel eager and rendezvous paths mixed).
func TestPropertyEngineIntegrity(t *testing.T) {
	f := func(seed int64, raw []uint32) bool {
		if len(raw) == 0 || len(raw) > 8 {
			return true
		}
		env, eng := pair(t, Config{EagerParallel: true})
		defer env.Close()
		rng := rand.New(rand.NewSource(seed))
		payloads := make([][]byte, len(raw))
		bufs := make([][]byte, len(raw))
		for i, r := range raw {
			n := int(r % (2 << 20))
			payloads[i] = make([]byte, n)
			rng.Read(payloads[i])
			bufs[i] = make([]byte, n)
		}
		ok := true
		env.Go("app", func(ctx rt.Ctx) {
			for i := range payloads {
				rr := eng[1].Irecv(0, uint32(i), bufs[i])
				sr := eng[0].Isend(1, uint32(i), payloads[i])
				if _, err := rr.Wait(ctx); err != nil {
					ok = false
					return
				}
				sr.Wait(ctx)
			}
		})
		env.Run()
		if !ok {
			return false
		}
		for i := range payloads {
			if !bytes.Equal(bufs[i], payloads[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// The engine keeps matching consistent when several receives for the
// same (source, tag) pair are posted before any message arrives.
func TestMultiplePostedRecvsSameKey(t *testing.T) {
	env, eng := pair(t, Config{})
	var n1, n2 int
	env.Go("app", func(ctx rt.Ctx) {
		b1 := make([]byte, 16)
		b2 := make([]byte, 16)
		r1 := eng[1].Irecv(0, 1, b1)
		r2 := eng[1].Irecv(0, 1, b2)
		eng[0].Isend(1, 1, []byte("one"))
		n1, _ = r1.Wait(ctx)
		eng[0].Isend(1, 1, []byte("three"))
		n2, _ = r2.Wait(ctx)
	})
	env.Run()
	if n1 != 3 || n2 != 5 {
		t.Fatalf("lengths %d/%d, want 3/5 (FIFO posted-recv matching)", n1, n2)
	}
}

// Stop drains cleanly: after Stop, pending submissions are simply never
// executed and the simulation still terminates.
func TestStopTerminates(t *testing.T) {
	env, eng := pair(t, Config{})
	env.Go("app", func(ctx rt.Ctx) {
		eng[0].Isend(1, 1, make([]byte, 64))
		ctx.Sleep(time.Millisecond)
		eng[0].Stop()
		eng[1].Stop()
	})
	env.Run() // must not hang
}
