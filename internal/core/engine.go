// Package core implements the paper's primary contribution: the
// NewMadeleine-style multirail communication engine.
//
// Architecture (paper Fig 5/6): the application layer enqueues packets
// into a submit list and returns immediately; the optimizer–scheduler —
// this package — is activated at the paper's three critical moments
// (a NIC becomes idle / a rendezvous arrives / an eager packet is about
// to be emitted) and decides, from the sampled performance profiles and
// the NICs' and cores' activity, the best combination of transfers; the
// transfer layer is the fabric (internal/fabric: simnet or livenet) driven directly or
// through offloaded tasklets (internal/marcel). Event detection is
// delegated to the progression engine (internal/pioman).
//
// Multicore progression (internal/progress): the engine's state is
// sharded by flow so concurrent flows never contend on one lock —
// matching tables (posted receives, unexpected messages, queued RTS,
// reassemblies) shard by (peer, tag) hash, unacked transfer units and
// pending rendezvous shard by (peer, unit id) hash (a container ack
// carries no single tag). A per-core worker pool executes all engine
// work: sends are aggregated off the caller's goroutine through
// per-destination submit queues flushed by workers, and on live fabrics
// deliveries are fed to the workers directly (eager packets and RTS on
// their flow's worker, preserving matching order; chunks of one striped
// message spread across workers, copying into the receive buffer in
// parallel).
//
// Protocols:
//
//   - Eager: payloads up to the sampled rendezvous threshold are sent
//     immediately. Pending packets to the same destination are
//     aggregated into one container on the fastest available rail
//     (the paper's finding that aggregation beats greedy multirail
//     dispatch for eager packets, Fig 3); a single medium-sized packet
//     may instead be split and submitted in parallel from several idle
//     cores, paying the 3 µs offload cost (Fig 7 / equation (1)).
//   - Rendezvous: larger messages handshake (RTS/CTS), then the split
//     strategy distributes chunks over the rails so all DMAs finish
//     together (Fig 1c/2/8).
//
// Matching is by (source, tag) in completion order; concurrent messages
// on one (source, tag) pair may overtake each other — use distinct tags
// for concurrent flows, as the examples do. Distinct (source, tag)
// pairs are independent: they live in separate shards and progress on
// separate workers.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fabric"
	"repro/internal/marcel"
	"repro/internal/metrics"
	"repro/internal/pioman"
	"repro/internal/progress"
	"repro/internal/rt"
	"repro/internal/sampling"
	"repro/internal/strategy"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/wire"
)

// EagerPolicy selects how eager packets are scheduled.
type EagerPolicy int

const (
	// PolicyAggregate is the paper's strategy: aggregate pending packets
	// on the fastest available rail; optionally split single medium
	// packets across rails from parallel cores (see EagerParallel).
	PolicyAggregate EagerPolicy = iota
	// PolicyGreedy is the Fig 3 baseline: every packet goes, whole, to
	// the rail predicted idle first; no aggregation, no offloading.
	PolicyGreedy
)

func (p EagerPolicy) String() string {
	switch p {
	case PolicyAggregate:
		return "aggregate"
	case PolicyGreedy:
		return "greedy"
	default:
		return fmt.Sprintf("EagerPolicy(%d)", int(p))
	}
}

// Config parameterises one engine (one node).
type Config struct {
	// Splitter distributes rendezvous messages (default: HeteroSplit).
	Splitter strategy.Splitter
	// Eager selects the eager scheduling policy (default: aggregate).
	Eager EagerPolicy
	// EagerParallel enables the multicore parallel submission of single
	// eager packets (§III-D). Off by default, matching the paper's
	// preliminary implementation being "still too costly"; the Fig 9
	// bench turns it on to cross-validate the estimation.
	EagerParallel bool
	// Pioman tunes event detection.
	Pioman pioman.Config
	// Cores overrides the number of cores (default: cluster setting).
	Cores int
	// Workers is the progression/submit worker count (default: Cores).
	// Every worker is one actor of the engine's progress pool; flushes
	// and deliveries for distinct flows run on distinct workers.
	Workers int
	// Shards is the flow-shard count for the matching/pending/unacked
	// tables (default: smallest power of two >= 4*Workers, min 8).
	// Rounded up to a power of two.
	Shards int
	// DirectProgress routes deliveries through the progress worker pool
	// instead of handling them inline on the progression actor: the live
	// multicore path. Off for the modeled simulator, whose per-delivery
	// CPU charges belong on the progression actor.
	DirectProgress bool
	// Telemetry, when non-nil, turns the adaptive feedback loop on: the
	// engine records every completed transfer unit into the tracker (on
	// the progress workers — never on the Isend caller), builds its
	// strategy RailViews from the tracker's live per-(peer, rail)
	// estimators instead of the static sampling tables, and bumps the
	// tracker epoch on rail health transitions. Nil reproduces the
	// paper's static behaviour exactly.
	Telemetry *telemetry.Tracker
	// PlanCache, when non-nil (and Telemetry is on), caches rendezvous
	// split decisions by (dest, size bucket, epoch) so repeated sends of
	// similar sizes skip re-planning.
	PlanCache *telemetry.Cache
	// ProbeEvery makes every n-th rendezvous plan bypass the cache and
	// stripe over every usable rail (iso), so rails the current plan
	// starves keep producing observations and can be re-adopted when
	// they recover (default 16; adaptive mode only).
	ProbeEvery int
	// Tracer, when non-nil, receives the per-message timeline (the role
	// FxT tracing plays for the original library).
	Tracer trace.Tracer
	// Flight, when non-nil, receives anomaly auto-dumps: the engine
	// calls NoteAnomaly from its clock when a rail is lost or a unit is
	// replayed, so the recorder snapshots the events leading up to the
	// trouble. Tee the recorder into Tracer as well — Flight alone only
	// wires the dump triggers, not the event stream.
	Flight *trace.FlightRecorder
	// Metrics, when non-nil, is the registry this engine exports into:
	// counter families over the existing atomics (read at scrape time,
	// free on the hot path) plus eager/rendezvous latency histograms
	// (lock-free, allocation-free Observe on the ack paths).
	Metrics *metrics.Registry
}

// Engine is one node's communication engine.
type Engine struct {
	env      rt.Env
	node     fabric.Node
	sched    *marcel.Scheduler
	pm       *pioman.Manager
	profiles []*sampling.RailProfile
	cfg      Config

	healthQ rt.Queue // rail state transitions (nil = stop nudge)

	pool *progress.Pool                    // per-core workers: all engine work
	sub  *progress.Submitter[*SendRequest] // per-destination submit queues
	seen *progress.Dedup                   // receiver-side duplicate window

	// Adaptive telemetry (nil/empty when Config.Telemetry is nil).
	tele       *telemetry.Tracker
	cache      *telemetry.Cache
	est        [][]strategy.Estimator // [peer][rail] live estimators
	adaptive   *strategy.Adaptive     // set when the splitter is the adaptive chooser
	planCount  atomic.Uint64          // rendezvous decisions (rail-probe cadence)
	eagerCount atomic.Uint64          // eager container decisions (eager rail-probe cadence)

	// Eager/rendezvous threshold state. thrStatic caches each rail's
	// sampled threshold (profiles are immutable); the live per-peer
	// derivation (threshold.go) caches into thrLive and tracks the last
	// derived size bucket per (peer, rail) in thrBucket so a crossing
	// can invalidate cached plans.
	thrStatic []int
	thrLive   []atomic.Pointer[thrEntry]
	thrBucket []atomic.Int32

	// Latency histograms (nil when Config.Metrics is nil).
	histEager *metrics.Histogram
	histRdv   *metrics.Histogram
	histStage [numStages]*metrics.Histogram

	nextMsgID atomic.Uint64

	flowMask uint32
	flows    []flowShard // matching state, sharded by (peer, tag) hash
	unitMask uint32
	units    []unitShard // sender state, sharded by (peer, unit id) hash

	stats engineCounters
}

// flowShard holds one shard of the receiver-side matching state. Every
// key (from, tag) hashing to this shard stores all of its queues here,
// so one lock covers one flow's match decision.
type flowShard struct {
	mu        sync.Mutex
	recvs     map[key][]*RecvRequest
	unexpect  map[key][]*message
	rdvQueued map[key][]*queuedRTS // RTS before matching Irecv
	partials  map[pkey]*partial    // in-flight striped messages

	// Per-shard counters (ShardStats).
	matched    uint64
	unexpected uint64
}

// unitShard holds one shard of the sender-side in-flight state.
type unitShard struct {
	mu          sync.Mutex
	rdvOut      map[uint64]*pendingRdv // awaiting CTS
	outstanding map[ackKey]*unit       // sent units awaiting receiver acks
}

// pendingRdv is a rendezvous awaiting its CTS, remembering the rail the
// RTS travelled on so it can be replayed if that rail dies.
type pendingRdv struct {
	req  *SendRequest
	rail int
}

// key identifies a matching queue.
type key struct {
	from int
	tag  uint32
}

// pkey identifies a reassembly: message ids are sender-local, so the
// sender is part of the identity.
type pkey struct {
	from int
	id   uint64
}

// message is a complete unexpected message awaiting a matching Irecv.
// origin is the submitting node from the wire header (trace id).
type message struct {
	msgID  uint64
	origin int
	data   []byte
}

// queuedRTS is a rendezvous announcement waiting for its Irecv.
type queuedRTS struct {
	msgID uint64
	total int
	rail  int
	from  int
}

// engineCounters aggregates engine activity with per-counter atomics so
// concurrent workers never serialise on a stats lock.
type engineCounters struct {
	eagerSent       atomic.Uint64
	eagerAggregated atomic.Uint64
	eagerParallel   atomic.Uint64
	rdvSent         atomic.Uint64
	chunksSent      atomic.Uint64
	bytesSent       atomic.Uint64
	unexpected      atomic.Uint64
	failedOver      atomic.Uint64
}

// Stats counts engine activity (inputs to EXPERIMENTS.md).
type Stats struct {
	EagerSent       uint64
	EagerAggregated uint64 // packets that shared a container
	EagerParallel   uint64 // packets split across cores
	RdvSent         uint64
	ChunksSent      uint64
	BytesSent       uint64
	Unexpected      uint64
	FailedOver      uint64 // transfer units re-planned off dead rails

	// Adaptive telemetry (zero when Config.Telemetry is nil): hot plan
	// cache hits/misses, telemetry observations and drift refits, and
	// the current estimate epoch.
	PlanHits        uint64
	PlanMisses      uint64
	PlanEvictions   uint64
	PlanEntries     int
	TelemetryObs    uint64
	TelemetryRefits uint64
	TelemetryEpoch  uint64

	// Shards reports per flow-shard matching activity — the field view
	// of where contention (or its absence) lives.
	Shards []ShardStats
	// Workers reports per progress-worker activity.
	Workers []progress.WorkerStats
}

// ShardStats counts one flow shard's matching activity.
type ShardStats struct {
	Matched    uint64 // deliveries matched to a posted receive
	Unexpected uint64 // deliveries queued as unexpected
	Recvs      int    // receives currently posted
	Partials   int    // striped messages currently reassembling
}

// NewEngine builds and starts the engine for one node. profiles must
// hold one sampled RailProfile per rail of the node's cluster.
func NewEngine(env rt.Env, node fabric.Node, profiles []*sampling.RailProfile, cfg Config) (*Engine, error) {
	if len(profiles) != node.NumRails() {
		return nil, fmt.Errorf("core: %d profiles for %d rails", len(profiles), node.NumRails())
	}
	if cfg.Splitter == nil {
		cfg.Splitter = strategy.HeteroSplit{}
	}
	cores := cfg.Cores
	if cores <= 0 {
		cores = node.Cores()
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = cores
	}
	shards := progress.Shards(cfg.Shards, max(8, 4*workers))
	e := &Engine{
		env:      env,
		node:     node,
		profiles: profiles,
		cfg:      cfg,
		flowMask: uint32(shards - 1),
		flows:    make([]flowShard, shards),
		unitMask: uint32(shards - 1),
		units:    make([]unitShard, shards),
		seen:     progress.NewDedup(shards, seenCap),
	}
	for i := range e.flows {
		s := &e.flows[i]
		s.recvs = make(map[key][]*RecvRequest)
		s.unexpect = make(map[key][]*message)
		s.rdvQueued = make(map[key][]*queuedRTS)
		s.partials = make(map[pkey]*partial)
	}
	for i := range e.units {
		s := &e.units[i]
		s.rdvOut = make(map[uint64]*pendingRdv)
		s.outstanding = make(map[ackKey]*unit)
	}
	e.thrStatic = make([]int, len(profiles))
	for r, p := range profiles {
		e.thrStatic[r] = p.Threshold()
	}
	if cfg.Telemetry != nil {
		if cfg.Telemetry.Rails() != node.NumRails() {
			return nil, fmt.Errorf("core: telemetry tracks %d rails, node has %d",
				cfg.Telemetry.Rails(), node.NumRails())
		}
		e.tele = cfg.Telemetry
		e.cache = cfg.PlanCache
		e.adaptive, _ = cfg.Splitter.(*strategy.Adaptive)
		if e.adaptive != nil {
			// Plan-cache coherence is the engine's own responsibility:
			// when observed outcomes flip a warm single-vs-split verdict,
			// plans cached under the old verdict must go stale — chain
			// the epoch bump here instead of trusting every caller to
			// wire it.
			e.adaptive.ChainVerdictChange(e.tele.BumpEpoch)
		}
		e.est = make([][]strategy.Estimator, e.tele.Peers())
		for peer := range e.est {
			e.est[peer] = make([]strategy.Estimator, node.NumRails())
			for r := range e.est[peer] {
				e.est[peer][r] = e.tele.Estimator(peer, r, profiles[r])
			}
		}
		e.thrLive = make([]atomic.Pointer[thrEntry], e.tele.Peers())
		e.thrBucket = make([]atomic.Int32, e.tele.Peers()*node.NumRails())
		for i := range e.thrBucket {
			e.thrBucket[i].Store(-1)
		}
		// Have the transfer layer report wire-level measurements too.
		if on, ok := node.(fabric.ObservableNode); ok {
			on.SetTelemetry(e.tele)
		}
	}
	if cfg.Metrics != nil {
		e.initMetrics(cfg.Metrics)
	}
	e.pool = progress.NewPool(env, fmt.Sprintf("nmad-progress-%d", node.ID()), workers)
	e.sub = progress.NewSubmitter[*SendRequest](e.pool, e.flushDest)
	e.sched = marcel.New(env, cores)
	pcfg := cfg.Pioman
	if cfg.DirectProgress {
		pcfg.Dispatch = e.dispatch
	}
	e.pm = pioman.New(env, node, e.sched, pcfg)
	e.pm.Start(e.handle)
	e.healthQ = node.Health().Subscribe()
	env.Go(fmt.Sprintf("nmad-health-%d", node.ID()), e.healthLoop)
	return e, nil
}

// NodeID returns the node this engine serves.
func (e *Engine) NodeID() int { return e.node.ID() }

// Scheduler exposes the core scheduler (tests, examples).
func (e *Engine) Scheduler() *marcel.Scheduler { return e.sched }

// Workers returns the progress-pool worker count.
func (e *Engine) Workers() int { return e.pool.Size() }

// NumShards returns the flow-shard count.
func (e *Engine) NumShards() int { return len(e.flows) }

// flow returns the shard owning a (peer, tag) flow.
func (e *Engine) flow(from int, tag uint32) *flowShard {
	return &e.flows[progress.FlowKey(from, tag)&e.flowMask]
}

// unit returns the shard owning a (peer, unit id) pair.
func (e *Engine) unit(peer int, id uint64) *unitShard {
	return &e.units[progress.UnitKey(peer, id)&e.unitMask]
}

// Stats returns a snapshot of the engine counters, including per-shard
// and per-worker breakdowns.
func (e *Engine) Stats() Stats {
	st := Stats{
		EagerSent:       e.stats.eagerSent.Load(),
		EagerAggregated: e.stats.eagerAggregated.Load(),
		EagerParallel:   e.stats.eagerParallel.Load(),
		RdvSent:         e.stats.rdvSent.Load(),
		ChunksSent:      e.stats.chunksSent.Load(),
		BytesSent:       e.stats.bytesSent.Load(),
		Unexpected:      e.stats.unexpected.Load(),
		FailedOver:      e.stats.failedOver.Load(),
	}
	if e.tele != nil {
		ts := e.tele.Stats()
		st.TelemetryObs = ts.Observations
		st.TelemetryRefits = ts.Refits
		st.TelemetryEpoch = ts.Epoch
	}
	if e.cache != nil {
		cs := e.cache.Stats()
		st.PlanHits = cs.Hits
		st.PlanMisses = cs.Misses
		st.PlanEvictions = cs.Evictions
		st.PlanEntries = cs.Entries
	}
	st.Shards = make([]ShardStats, len(e.flows))
	for i := range e.flows {
		s := &e.flows[i]
		s.mu.Lock()
		recvs := 0
		for _, q := range s.recvs {
			recvs += len(q)
		}
		st.Shards[i] = ShardStats{
			Matched:    s.matched,
			Unexpected: s.unexpected,
			Recvs:      recvs,
			Partials:   len(s.partials),
		}
		s.mu.Unlock()
	}
	st.Workers = e.pool.Stats()
	return st
}

// Stop halts progression and the core workers. In a simulation the
// parked actors are reclaimed when the simulator closes.
func (e *Engine) Stop() {
	if e.tele != nil {
		if on, ok := e.node.(fabric.ObservableNode); ok {
			on.SetTelemetry(nil)
		}
	}
	e.pm.Stop()
	e.sched.Shutdown()
	e.pool.Stop()
	e.healthQ.Push(nil)
}

// newID allocates a fresh message/container id. Container ids share
// the message-id namespace, so an (id, offset) ack key can never name
// both a container and a chunk.
func (e *Engine) newID() uint64 {
	return e.nextMsgID.Add(1)
}

// railViewsFor snapshots the rail views for a decision about one
// destination: with telemetry on, each rail's estimator is the live
// (peer, rail) blend instead of the start-up table — the strategies
// plan against what the wire currently delivers, not what it delivered
// at launch. dest -1 (or telemetry off) keeps the static estimators.
func (e *Engine) railViewsFor(dest int) []strategy.RailView {
	views := make([]strategy.RailView, e.node.NumRails())
	for i := range views {
		est := strategy.Estimator(e.profiles[i])
		if e.est != nil && dest >= 0 && dest < len(e.est) {
			est = e.est[dest][i]
		}
		views[i] = strategy.RailView{
			Index:    i,
			Est:      est,
			IdleAt:   e.node.Rail(i).IdleAt(),
			EagerMax: e.profiles[i].EagerMax,
			Down:     e.node.Rail(i).State() != fabric.RailUp,
		}
	}
	return views
}

// probeEvery returns the probe cadence (0 disables probing). Values
// below 4 clamp to 4: with a mode-probe slot and a rail-probe slot per
// period, anything tighter would turn most traffic into probes.
func (e *Engine) probeEvery() int {
	if e.tele == nil {
		return 0
	}
	pe := e.cfg.ProbeEvery
	if pe <= 0 {
		return 16
	}
	if pe < 4 {
		return 4
	}
	return pe
}

// observeUnit folds one acknowledged transfer unit into the telemetry:
// the one-way estimate is half the measured ack round trip. Eager
// containers additionally feed the eager observation plane with the
// ack-leg-compensated round trip (see ackLeg) — the quantity comparable
// to the sampled eager curve the plane blends with. It runs on the
// progress worker (or progression actor) handling the ack.
func (e *Engine) observeUnit(peer, rail, bytes int, sentAt time.Duration, eager bool) {
	if sentAt <= 0 {
		return
	}
	rtt := e.env.Now() - sentAt
	if rtt <= 0 {
		return
	}
	if eager && e.histEager != nil {
		e.histEager.Observe(rtt) // metrics work without telemetry
	}
	if e.tele == nil {
		return
	}
	e.tele.Observe(peer, rail, bytes, rtt/2)
	if eager {
		e.tele.ObservePath(telemetry.PathEager, peer, rail, bytes, e.lessAckLeg(rail, rtt))
	}
}

// lessAckLeg subtracts the estimated ack return leg from a protocol
// round trip, flooring at half. The threshold planes blend their
// observations with the one-way sampled curves (measureEager,
// measureRdv), which stop the clock at delivery; our measurements stop
// at the ack. Without the compensation a half-warm plane mixes
// RTT-scale samples with one-way priors and the derived crossover dips
// below the sampled one with no real change on the wire. The ack is a
// header-sized control message, so its leg is approximated by the
// rail's sampled estimate at that size.
func (e *Engine) lessAckLeg(rail int, d time.Duration) time.Duration {
	leg := e.profiles[rail].Estimate(wire.HeaderSize)
	if adj := d - leg; adj > d/2 {
		return adj
	}
	return d / 2
}

// observeRdvPath arranges for a single-rail rendezvous to feed the
// telemetry's rendezvous plane: the whole-message time from RTS to the
// last ack (minus the estimated ack leg, see lessAckLeg), on the one
// rail that carried it — comparable to what the start-up sampling's
// rendezvous curve measured, so the live eager threshold can blend the
// two. Striped messages are not attributable to one rail and are
// skipped.
func (e *Engine) observeRdvPath(r *SendRequest, chunks []strategy.Chunk) {
	if e.tele == nil || len(chunks) == 0 || r.rdvStart <= 0 {
		return
	}
	rail := chunks[0].Rail
	for _, c := range chunks[1:] {
		if c.Rail != rail {
			return
		}
	}
	peer, n, start := r.To, len(r.Data), r.rdvStart
	r.acked.OnFire(func() {
		if r.failedOver.Load() {
			// A replayed unit's time includes the failover stall and may
			// have travelled another rail entirely; charging it to the
			// planned rail would poison its regime fit (same exclusion
			// observeUnit applies to replayed units).
			return
		}
		if d := e.env.Now() - start; d > 0 {
			e.tele.ObservePath(telemetry.PathRdv, peer, rail, n, e.lessAckLeg(rail, d))
		}
	})
}

// observeOutcome arranges for the adaptive chooser to learn this
// message's remote-completion time under the mode that scheduled it.
// eager selects the chooser's eager outcome namespace — eager and
// rendezvous completions of one size class are not comparable costs.
func (e *Engine) observeOutcome(r *SendRequest, mode strategy.Mode, eager bool) {
	if e.tele == nil || e.adaptive == nil {
		return
	}
	n := len(r.Data)
	if n == 0 {
		return
	}
	start := e.env.Now()
	obs := e.adaptive
	r.acked.OnFire(func() {
		d := e.env.Now() - start
		if d <= 0 {
			return
		}
		if eager {
			obs.ObserveEagerOutcome(n, mode, d)
		} else {
			obs.ObserveOutcome(n, mode, d)
		}
	})
}

// EstimateFor returns the engine's current one-way estimate for an
// n-byte transfer to `peer` on `rail`: the live warmth-blended estimate
// in adaptive mode, the static sampled one otherwise. Diagnostics and
// tests watch it to see the feedback loop converge.
func (e *Engine) EstimateFor(peer, rail, n int) time.Duration {
	if e.est != nil && peer >= 0 && peer < len(e.est) {
		return e.est[peer][rail].Estimate(n)
	}
	return e.profiles[rail].Estimate(n)
}

// PlanFor previews the split the engine would currently choose for an
// n-byte rendezvous to `to`: live rail views plus the configured
// splitter, bypassing the plan cache and the probe cadence. Tests and
// nmping's -stats mode use it to see where the next bytes would go.
func (e *Engine) PlanFor(to, n int) []strategy.Chunk {
	return e.cfg.Splitter.Split(n, e.env.Now(), e.railViewsFor(to))
}

// planRdv decides the chunk distribution of one rendezvous. In
// adaptive mode the hot plan cache is consulted first — repeated sends
// of similar sizes to the same peer skip the strategy entirely until
// the estimate epoch moves — and every probeEvery-th decision probes
// instead, bypassing the cache (probe results are never cached):
// alternating an iso stripe over all usable rails (estimator
// freshness for starved rails; deliberately degraded, so excluded from
// the chooser's outcome statistics) and, with an adaptive chooser, the
// currently-losing mode's plan (so the loser keeps producing outcomes
// and can win again). outcome is the mode to train the chooser with,
// or nil when the result must not train it.
func (e *Engine) planRdv(to, n int) (chunks []strategy.Chunk, outcome *strategy.Mode) {
	now := e.env.Now()
	modeOf := func(chunks []strategy.Chunk) *strategy.Mode {
		m := strategy.ModeSingle
		if len(chunks) > 1 {
			m = strategy.ModeSplit
		}
		return &m
	}
	if e.tele == nil {
		chunks = e.cfg.Splitter.Split(n, now, e.railViewsFor(to))
		return chunks, modeOf(chunks)
	}
	if pe := e.probeEvery(); pe > 0 {
		slot := e.planCount.Add(1) % uint64(pe)
		if e.adaptive != nil && slot == 0 {
			// Mode probe: the currently-losing mode, trained into the
			// chooser so a stale verdict cannot outlive its regime.
			if chunks, mode := e.adaptive.LoserSplit(n, now, e.railViewsFor(to)); len(chunks) > 0 {
				e.trace(trace.Decision, 0, -1, n, "probe: losing mode "+mode.String())
				return chunks, &mode
			}
		}
		// Rail probe, half a period from the mode probe (or on the period
		// itself when there is no chooser): an iso stripe keeps every
		// usable rail measured even when the plans starve it.
		isoSlot := uint64(pe) / 2
		if e.adaptive == nil {
			isoSlot = 0
		}
		if slot == isoSlot {
			if probe := (strategy.IsoSplit{}).Split(n, now, e.railViewsFor(to)); len(probe) > 0 {
				e.trace(trace.Decision, 0, -1, n, "probe: iso over usable rails")
				return probe, nil
			}
		}
	}
	key := telemetry.PlanKey{Dest: to, Bucket: telemetry.SizeBucket(n), Epoch: e.tele.Epoch()}
	if e.cache != nil {
		if p, ok := e.cache.Get(key); ok {
			if chunks := p.ChunksFor(n); len(chunks) > 0 {
				return chunks, modeOf(chunks)
			}
		}
	}
	chunks = e.cfg.Splitter.Split(n, now, e.railViewsFor(to))
	if e.cache != nil && len(chunks) > 0 {
		e.cache.Put(key, telemetry.NewPlan(e.cfg.Splitter.Name(), chunks, n))
	}
	return chunks, modeOf(chunks)
}

// trace records a timeline event about one of this node's own messages
// when tracing is enabled. rail is -1 for events that are not
// rail-specific.
func (e *Engine) trace(kind trace.Kind, msgID uint64, rail, size int, note string) {
	e.traceFrom(e.node.ID(), kind, msgID, rail, size, note)
}

// traceFrom records a timeline event attributed to a message another
// node submitted: receiver-side events (Delivered, CTSSent, replayed
// deliveries) stamp the origin carried by the wire header, so the
// sender's and receiver's events stitch into one cross-node span.
func (e *Engine) traceFrom(origin int, kind trace.Kind, msgID uint64, rail, size int, note string) {
	if e.cfg.Tracer == nil {
		return
	}
	e.cfg.Tracer.Record(trace.Event{
		At: e.env.Now(), Node: e.node.ID(), MsgID: msgID,
		Kind: kind, Rail: rail, Size: size, Note: note, Origin: origin,
	})
}

// origin is this node's id as carried in wire headers (the node half
// of every locally submitted message's trace id).
func (e *Engine) origin() uint32 { return uint32(e.node.ID()) }

// noteAnomaly triggers a flight-recorder auto-dump (no-op without one).
func (e *Engine) noteAnomaly(reason string) {
	if e.cfg.Flight != nil {
		e.cfg.Flight.NoteAnomaly(e.env.Now(), e.node.ID(), reason)
	}
}

// noteDecision stamps the moment the strategy chose r's schedule and
// feeds the submit→decision stage.
func (e *Engine) noteDecision(r *SendRequest) {
	r.decideAt = e.env.Now()
	e.observeStage(stageSubmitDecision, r.decideAt-r.submitAt)
}

// noteEnqueued feeds the decision→enqueue stage: the time from the
// schedule decision until every frame of r was handed to the transport.
func (e *Engine) noteEnqueued(r *SendRequest) {
	e.observeStage(stageDecisionEnqueue, e.env.Now()-r.decideAt)
}

// noteCompleted records r's local completion (the last chunk left the
// host) — called by the worker whose chunkDone fired Done.
func (e *Engine) noteCompleted(r *SendRequest) {
	e.observeStage(stageSubmitCompleted, e.env.Now()-r.submitAt)
	e.trace(trace.Completed, r.msgID, -1, len(r.Data), "")
}

// noteAcked records r's remote completion (the receiver acknowledged
// its last unit) — called by the ack handler whose ackDone fired
// RemoteDone.
func (e *Engine) noteAcked(r *SendRequest, rail int) {
	e.observeStage(stageSubmitAcked, e.env.Now()-r.submitAt)
	e.trace(trace.Acked, r.msgID, rail, len(r.Data), "")
}

// eagerThreshold returns the size up to which the engine prefers the
// eager path: the largest sampled rendezvous threshold over the USABLE
// rails. Down and Suspect rails are excluded — a dead rail's profile
// must not decide the protocol for traffic the survivors will carry
// (its threshold may be far off theirs on a heterogeneous rail set).
// Rail states are read at every decision, so the answer tracks health
// transitions with no staleness window. When no rail is Up the full
// set decides: the units will park or fail over regardless, and a
// stable answer beats a degenerate zero threshold.
func (e *Engine) eagerThreshold() int {
	thr, usable := 0, false
	for r, t := range e.thrStatic {
		if e.node.Rail(r).State() != fabric.RailUp {
			continue
		}
		usable = true
		if t > thr {
			thr = t
		}
	}
	if !usable {
		for _, t := range e.thrStatic {
			if t > thr {
				thr = t
			}
		}
	}
	return thr
}
