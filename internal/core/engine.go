// Package core implements the paper's primary contribution: the
// NewMadeleine-style multirail communication engine.
//
// Architecture (paper Fig 5/6): the application layer enqueues packets
// into a submit list and returns immediately; the optimizer–scheduler —
// this package — is activated at the paper's three critical moments
// (a NIC becomes idle / a rendezvous arrives / an eager packet is about
// to be emitted) and decides, from the sampled performance profiles and
// the NICs' and cores' activity, the best combination of transfers; the
// transfer layer is the fabric (internal/fabric: simnet or livenet) driven directly or
// through offloaded tasklets (internal/marcel). Event detection is
// delegated to the progression engine (internal/pioman).
//
// Protocols:
//
//   - Eager: payloads up to the sampled rendezvous threshold are sent
//     immediately. Pending packets to the same destination are
//     aggregated into one container on the fastest available rail
//     (the paper's finding that aggregation beats greedy multirail
//     dispatch for eager packets, Fig 3); a single medium-sized packet
//     may instead be split and submitted in parallel from several idle
//     cores, paying the 3 µs offload cost (Fig 7 / equation (1)).
//   - Rendezvous: larger messages handshake (RTS/CTS), then the split
//     strategy distributes chunks over the rails so all DMAs finish
//     together (Fig 1c/2/8).
//
// Matching is by (source, tag) in completion order; concurrent messages
// on one (source, tag) pair may overtake each other — use distinct tags
// for concurrent flows, as the examples do.
package core

import (
	"fmt"
	"sync"

	"repro/internal/fabric"
	"repro/internal/marcel"
	"repro/internal/pioman"
	"repro/internal/rt"
	"repro/internal/sampling"
	"repro/internal/strategy"
	"repro/internal/trace"
)

// EagerPolicy selects how eager packets are scheduled.
type EagerPolicy int

const (
	// PolicyAggregate is the paper's strategy: aggregate pending packets
	// on the fastest available rail; optionally split single medium
	// packets across rails from parallel cores (see EagerParallel).
	PolicyAggregate EagerPolicy = iota
	// PolicyGreedy is the Fig 3 baseline: every packet goes, whole, to
	// the rail predicted idle first; no aggregation, no offloading.
	PolicyGreedy
)

func (p EagerPolicy) String() string {
	switch p {
	case PolicyAggregate:
		return "aggregate"
	case PolicyGreedy:
		return "greedy"
	default:
		return fmt.Sprintf("EagerPolicy(%d)", int(p))
	}
}

// Config parameterises one engine (one node).
type Config struct {
	// Splitter distributes rendezvous messages (default: HeteroSplit).
	Splitter strategy.Splitter
	// Eager selects the eager scheduling policy (default: aggregate).
	Eager EagerPolicy
	// EagerParallel enables the multicore parallel submission of single
	// eager packets (§III-D). Off by default, matching the paper's
	// preliminary implementation being "still too costly"; the Fig 9
	// bench turns it on to cross-validate the estimation.
	EagerParallel bool
	// Pioman tunes event detection.
	Pioman pioman.Config
	// Cores overrides the number of cores (default: cluster setting).
	Cores int
	// Tracer, when non-nil, receives the per-message timeline (the role
	// FxT tracing plays for the original library).
	Tracer trace.Tracer
}

// Engine is one node's communication engine.
type Engine struct {
	env      rt.Env
	node     fabric.Node
	sched    *marcel.Scheduler
	pm       *pioman.Manager
	profiles []*sampling.RailProfile
	cfg      Config

	healthQ rt.Queue // rail state transitions (nil = stop nudge)

	mu          sync.Mutex
	nextMsgID   uint64
	pending     []*SendRequest // submit list (paper: "waiting packs")
	kicks       rt.Queue       // one token per submission
	recvs       map[key][]*RecvRequest
	unexpect    map[key][]*message
	partials    map[uint64]*partial    // in-flight striped messages by id
	rdvOut      map[uint64]*pendingRdv // awaiting CTS
	rdvQueued   map[key][]*queuedRTS   // RTS before matching Irecv
	outstanding map[ackKey]*unit       // sent units awaiting receiver acks
	seen        map[seenKey]struct{}   // receiver-side duplicate window
	seenQ       []seenKey              // eviction order for seen
	stats       Stats
}

// pendingRdv is a rendezvous awaiting its CTS, remembering the rail the
// RTS travelled on so it can be replayed if that rail dies.
type pendingRdv struct {
	req  *SendRequest
	rail int
}

// key identifies a matching queue.
type key struct {
	from int
	tag  uint32
}

// message is a complete unexpected message awaiting a matching Irecv.
type message struct {
	msgID uint64
	data  []byte
}

// queuedRTS is a rendezvous announcement waiting for its Irecv.
type queuedRTS struct {
	msgID uint64
	total int
	rail  int
	from  int
}

// Stats counts engine activity (inputs to EXPERIMENTS.md).
type Stats struct {
	EagerSent       uint64
	EagerAggregated uint64 // packets that shared a container
	EagerParallel   uint64 // packets split across cores
	RdvSent         uint64
	ChunksSent      uint64
	BytesSent       uint64
	Unexpected      uint64
	FailedOver      uint64 // transfer units re-planned off dead rails
}

// NewEngine builds and starts the engine for one node. profiles must
// hold one sampled RailProfile per rail of the node's cluster.
func NewEngine(env rt.Env, node fabric.Node, profiles []*sampling.RailProfile, cfg Config) (*Engine, error) {
	if len(profiles) != node.NumRails() {
		return nil, fmt.Errorf("core: %d profiles for %d rails", len(profiles), node.NumRails())
	}
	if cfg.Splitter == nil {
		cfg.Splitter = strategy.HeteroSplit{}
	}
	cores := cfg.Cores
	if cores <= 0 {
		cores = node.Cores()
	}
	e := &Engine{
		env:         env,
		node:        node,
		profiles:    profiles,
		cfg:         cfg,
		kicks:       env.NewQueue(),
		recvs:       make(map[key][]*RecvRequest),
		unexpect:    make(map[key][]*message),
		partials:    make(map[uint64]*partial),
		rdvOut:      make(map[uint64]*pendingRdv),
		rdvQueued:   make(map[key][]*queuedRTS),
		outstanding: make(map[ackKey]*unit),
		seen:        make(map[seenKey]struct{}),
	}
	e.sched = marcel.New(env, cores)
	e.pm = pioman.New(env, node, e.sched, cfg.Pioman)
	e.pm.Start(e.handle)
	e.healthQ = node.Health().Subscribe()
	env.Go(fmt.Sprintf("nmad-submit-%d", node.ID()), e.submitLoop)
	env.Go(fmt.Sprintf("nmad-health-%d", node.ID()), e.healthLoop)
	return e, nil
}

// NodeID returns the node this engine serves.
func (e *Engine) NodeID() int { return e.node.ID() }

// Scheduler exposes the core scheduler (tests, examples).
func (e *Engine) Scheduler() *marcel.Scheduler { return e.sched }

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Stop halts progression and the core workers. In a simulation the
// submit actor is reclaimed when the simulator closes.
func (e *Engine) Stop() {
	e.pm.Stop()
	e.sched.Shutdown()
	e.kicks.Push(nil)
	e.healthQ.Push(nil)
}

func (e *Engine) msgID() uint64 {
	e.nextMsgID++
	return e.nextMsgID
}

// newID allocates a fresh id outside a held lock. Container ids share
// the message-id namespace, so an (id, offset) ack key can never name
// both a container and a chunk.
func (e *Engine) newID() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.msgID()
}

// railViews snapshots the strategy's view of every rail, marking
// non-Up rails so every splitter excludes them.
func (e *Engine) railViews() []strategy.RailView {
	views := make([]strategy.RailView, e.node.NumRails())
	for i := range views {
		views[i] = strategy.RailView{
			Index:    i,
			Est:      e.profiles[i],
			IdleAt:   e.node.Rail(i).IdleAt(),
			EagerMax: e.profiles[i].EagerMax,
			Down:     e.node.Rail(i).State() != fabric.RailUp,
		}
	}
	return views
}

// trace records a timeline event when tracing is enabled. rail is -1 for
// events that are not rail-specific.
func (e *Engine) trace(kind trace.Kind, msgID uint64, rail, size int, note string) {
	if e.cfg.Tracer == nil {
		return
	}
	e.cfg.Tracer.Record(trace.Event{
		At: e.env.Now(), Node: e.node.ID(), MsgID: msgID,
		Kind: kind, Rail: rail, Size: size, Note: note,
	})
}

// eagerThreshold returns the size up to which the engine prefers the
// eager path: the largest sampled rendezvous threshold over the rails.
func (e *Engine) eagerThreshold() int {
	thr := 0
	for _, p := range e.profiles {
		if t := p.Threshold(); t > thr {
			thr = t
		}
	}
	return thr
}
