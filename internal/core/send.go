package core

import (
	"fmt"
	"time"

	"repro/internal/marcel"
	"repro/internal/model"
	"repro/internal/rt"
	"repro/internal/strategy"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Isend submits a message. It never blocks and does no engine work on
// the caller's goroutine: the request joins its destination's submit
// queue and a progress worker — activated like NewMadeleine's scheduler
// when an eager packet is about to be emitted — plans and executes the
// flush, aggregating whatever accumulated for that destination.
func (e *Engine) Isend(to int, tag uint32, data []byte) *SendRequest {
	req := &SendRequest{To: to, Tag: tag, Data: data, done: e.env.NewEvent(), acked: e.env.NewEvent()}
	req.msgID = e.newID()
	req.submitAt = e.env.Now()
	e.trace(trace.Submit, req.msgID, -1, len(data), "")
	e.sub.Put(to, req)
	return req
}

// IsendV submits a gather vector as one logical message. Single-segment
// vectors pass through zero-copy; multi-segment vectors are gathered at
// submission. (On rails with hardware gather/scatter the copy could be
// elided, but the eager framing of the transfer layer copies payloads
// regardless — the same trade-off the MX driver makes.)
func (e *Engine) IsendV(to int, tag uint32, v wire.IOVec) *SendRequest {
	var data []byte
	switch len(v) {
	case 0:
	case 1:
		data = v[0]
	default:
		data = v.Gather()
	}
	return e.Isend(to, tag, data)
}

// flushDest drains one destination's submit queue on a progress worker:
// eager packets become one aggregation batch, large messages start
// their rendezvous handshakes. It runs with no queue or shard lock held
// — a rail write that blocks inside stalls only this destination's
// worker, never the callers and never other destinations (see the
// slow-rail regression test).
func (e *Engine) flushDest(ctx rt.Ctx, to int, batch []*SendRequest) {
	thr := e.EagerThresholdTo(to)
	var eagers []*SendRequest
	for _, r := range batch {
		if len(r.Data) <= thr {
			eagers = append(eagers, r)
			continue
		}
		e.startRendezvous(ctx, r)
	}
	if len(eagers) > 0 {
		e.sendEagerBatch(ctx, to, eagers)
	}
}

// sendEagerBatch emits a batch of eager packets for one destination
// according to the configured policy.
func (e *Engine) sendEagerBatch(ctx rt.Ctx, to int, batch []*SendRequest) {
	switch e.cfg.Eager {
	case PolicyGreedy:
		e.sendEagerGreedy(ctx, to, batch)
	default:
		e.sendEagerAggregate(ctx, to, batch)
	}
}

// sendEagerGreedy is the Fig 3 baseline: each packet goes, whole, to the
// rail predicted idle first; PIO copies serialise on this core.
func (e *Engine) sendEagerGreedy(ctx rt.Ctx, to int, batch []*SendRequest) {
	sizes := make([]int, len(batch))
	for i, r := range batch {
		sizes[i] = len(r.Data)
	}
	assign := strategy.AssignGreedy(sizes, e.env.Now(), e.railViewsFor(to))
	for i, r := range batch {
		rail := assign[i]
		e.noteDecision(r)
		cid := e.newID()
		frame := wire.EncodeEagerID(e.origin(), cid, uint8(rail), []wire.Packet{{Tag: r.Tag, MsgID: r.msgID, Payload: r.Data}})
		r.addPending(1)
		e.registerContainer(cid, to, rail, frame, []*SendRequest{r})
		e.trace(trace.EagerSent, r.msgID, rail, len(r.Data), "greedy")
		// Stats before the transport enqueue: the receiver's ack can fire
		// RemoteDone before this worker resumes, and a counter that lags
		// remote completion reads as a lost message to an observer.
		e.bumpEager(1, 0, 0, len(r.Data))
		e.node.Rail(rail).SendEager(ctx, to, frame)
		e.noteEnqueued(r)
		if r.chunkDone() {
			e.noteCompleted(r)
		}
	}
}

// sendEagerAggregate is the paper's strategy: pack the batch into
// containers on the fastest available rail; a single medium-sized packet
// may instead be split across rails and submitted from parallel cores.
func (e *Engine) sendEagerAggregate(ctx rt.Ctx, to int, batch []*SendRequest) {
	now := e.env.Now()
	rails := e.railViewsFor(to)
	if len(batch) == 1 && e.cfg.EagerParallel {
		r := batch[0]
		single, parallel := strategy.EagerCandidates(len(r.Data), now, rails, e.sched.NumIdle(), model.OffloadSyncCost)
		usePar := parallel != nil && parallel.Predicted < single.Predicted
		if parallel != nil && e.adaptive != nil {
			// Adaptive mode: the model's verdict is only the prior — the
			// chooser decides from observed outcomes of both modes once
			// they are in, probing the loser periodically (in either
			// direction: it can adopt parallel the model rejects).
			usePar = e.adaptive.PreferParallel(len(r.Data), parallel.Predicted, single.Predicted)
		}
		if usePar {
			e.observeOutcome(r, strategy.ModeParallel, true)
			e.sendEagerParallel(r, to, *parallel)
			return
		}
		e.observeOutcome(r, strategy.ModeSingle, true)
	}
	// Fill containers up to the chosen rail's eager limit, fastest rail
	// first ("aggregate the messages and send them over the fastest
	// available network").
	i := 0
	for i < len(batch) {
		var pkts []wire.Packet
		var group []*SendRequest
		total := 0
		// Pick the rail for the first packet, then fill while it fits.
		// Zero-length packets still travel as (empty) containers, so pick
		// the rail as if they carried one byte.
		first := batch[i]
		pickSize := len(first.Data)
		if pickSize == 0 {
			pickSize = 1
		}
		rail := e.pickEagerRail(pickSize, now, rails)
		limit := e.profiles[rail].EagerMax
		for i < len(batch) {
			r := batch[i]
			sz := wire.AggregateSize(append(pkts, wire.Packet{Payload: r.Data}))
			if limit > 0 && sz > limit && len(pkts) > 0 {
				break
			}
			pkts = append(pkts, wire.Packet{Tag: r.Tag, MsgID: r.msgID, Payload: r.Data})
			group = append(group, r)
			total += len(r.Data)
			i++
		}
		cid := e.newID()
		frame := wire.EncodeEagerID(e.origin(), cid, uint8(rail), pkts)
		for _, r := range group {
			r.addPending(1)
			e.noteDecision(r)
		}
		e.registerContainer(cid, to, rail, frame, group)
		e.trace(trace.EagerSent, group[0].msgID, rail, total, fmt.Sprintf("%d packets aggregated", len(group)))
		agg := 0
		if len(group) > 1 {
			agg = len(group)
		}
		// Stats before the transport enqueue: the receiver's ack can fire
		// RemoteDone before this worker resumes, and a counter that lags
		// remote completion reads as a lost message to an observer.
		e.bumpEager(len(group), agg, 0, total)
		e.node.Rail(rail).SendEager(ctx, to, frame)
		for _, r := range group {
			e.noteEnqueued(r)
			if r.chunkDone() {
				e.noteCompleted(r)
			}
		}
	}
}

// pickEagerRail chooses an eager container's rail: normally the single
// best by current estimate. In adaptive mode every probeEvery()-th
// container instead rotates over the other usable rails — the
// eager-path analogue of the rendezvous iso probe. Without it a wrong
// estimate is self-sustaining: the argmin never places small traffic on
// the rails it dislikes, so they never produce the small-size
// observations that would rehabilitate them (a freshly warmed shm rail
// whose fit was extrapolated from large transfers, say).
//
// Candidates are restricted to rails whose EagerMax admits the payload:
// on a heterogeneous set the flush threshold is the max over usable
// rails, so a size can be eager-eligible overall yet oversized for an
// individual rail's PIO regime — shipping it there would violate that
// rail's contract. If no usable rail admits it (a health transition
// raced the flush decision), the unfiltered pick stands: the container
// is tolerated oversized, exactly as before rails were heterogeneous.
func (e *Engine) pickEagerRail(n int, now time.Duration, rails []strategy.RailView) int {
	fit := make([]strategy.RailView, 0, len(rails))
	anyUp := false
	//railvet:ignore railup size-prefilter only: anyUp tracks health and Split's internal Usable does the Up filtering, with the all-down fallback documented above
	for _, v := range rails {
		if v.EagerMax == 0 || n <= v.EagerMax {
			fit = append(fit, v)
			anyUp = anyUp || !v.Down
		}
	}
	if !anyUp {
		fit = rails
	}
	best := strategy.SingleRail{}.Split(n, now, fit)[0].Rail
	pe := e.probeEvery()
	if pe == 0 {
		return best
	}
	c := e.eagerCount.Add(1)
	if c%uint64(pe) != 0 {
		return best
	}
	usable := strategy.Usable(fit)
	if len(usable) <= 1 {
		return best
	}
	probe := usable[int(c/uint64(pe))%len(usable)].Index
	if probe == best {
		probe = usable[int(c/uint64(pe)+1)%len(usable)].Index
	}
	e.trace(trace.Decision, 0, probe, n, "probe: eager rail")
	return probe
}

// sendEagerParallel executes a parallel eager plan (Fig 7): each chunk is
// registered in the to-be-sent list of a different idle core, which
// performs the PIO copy on its own NIC after the offload synchronisation
// delay. The submitting core returns immediately — "the application can
// then resume its computation".
func (e *Engine) sendEagerParallel(r *SendRequest, to int, plan strategy.EagerPlan) {
	e.noteDecision(r)
	r.addPending(len(plan.Chunks))
	// Register every chunk before the first tasklet can run: a chunk
	// delivered and acked while its siblings are still being encoded
	// must not fire RemoteDone early.
	for _, c := range plan.Chunks {
		e.registerChunk(r, to, c.Rail, c.Offset, c.Size)
	}
	e.trace(trace.Decision, r.msgID, -1, len(r.Data),
		fmt.Sprintf("parallel eager: %d chunks, predicted %v", len(plan.Chunks), plan.Predicted))
	// Stats before the tasklets can run: an offloaded chunk's ack can
	// fire RemoteDone before this worker resumes (same ordering as the
	// greedy and aggregate paths).
	e.bumpEager(1, 0, 1, len(r.Data))
	for _, c := range plan.Chunks {
		c := c
		frame := wire.EncodeData(uint8(c.Rail), e.origin(), r.Tag, r.msgID, c.Offset,
			r.Data[c.Offset:c.Offset+c.Size], len(r.Data))
		e.trace(trace.OffloadStart, r.msgID, c.Rail, c.Size, "")
		e.sched.SubmitIdle(marcel.Tasklet{
			Name: fmt.Sprintf("eager-chunk-%d", r.msgID),
			Run: func(tctx rt.Ctx) {
				e.node.Rail(c.Rail).SendEager(tctx, to, frame)
				if r.chunkDone() {
					e.noteEnqueued(r) // the last offloaded copy was posted
					e.noteCompleted(r)
				}
			},
		})
	}
}

func (e *Engine) bumpEager(sent, agg, par, bytes int) {
	e.stats.eagerSent.Add(uint64(sent))
	e.stats.eagerAggregated.Add(uint64(agg))
	e.stats.eagerParallel.Add(uint64(par))
	e.stats.bytesSent.Add(uint64(bytes))
}

// startRendezvous sends the RTS on the best small-message rail and parks
// the request until the CTS arrives. The rail is remembered so the RTS
// can be replayed if it dies before the CTS comes back.
func (e *Engine) startRendezvous(ctx rt.Ctx, r *SendRequest) {
	rails := e.railViewsFor(r.To)
	pick := strategy.SingleRail{}.Split(wire.HeaderSize, e.env.Now(), rails)
	rail := pick[0].Rail
	e.noteDecision(r)        // protocol decision: rendezvous, RTS on `rail`
	r.rdvStart = e.env.Now() // whole-rendezvous clock (telemetry rdv plane)
	if e.histRdv != nil {
		start := r.rdvStart
		r.acked.OnFire(func() {
			if d := e.env.Now() - start; d > 0 {
				e.histRdv.Observe(d)
			}
		})
	}
	us := e.unit(r.To, r.msgID)
	us.mu.Lock()
	us.rdvOut[r.msgID] = &pendingRdv{req: r, rail: rail}
	us.mu.Unlock()
	e.stats.rdvSent.Add(1)
	prof := e.node.Rail(rail).Profile()
	rts := wire.EncodeControl(wire.KindRTS, uint8(rail), e.origin(), r.Tag, r.msgID, uint64(len(r.Data)))
	e.trace(trace.RTSSent, r.msgID, rail, len(r.Data), "")
	e.node.Rail(rail).SendControl(ctx, r.To, rts, prof.SendOverhead, prof.RecvOverhead)
}

// onCTS resumes a parked rendezvous: the strategy is invoked now — with
// the NICs' current idle horizons — to split the message, and a transfer
// actor posts the chunk DMAs. peer is the node the CTS came from (the
// destination of the send).
func (e *Engine) onCTS(peer int, msgID uint64) {
	us := e.unit(peer, msgID)
	us.mu.Lock()
	p := us.rdvOut[msgID]
	delete(us.rdvOut, msgID)
	us.mu.Unlock()
	if p == nil {
		return
	}
	r := p.req
	chunks, outcome := e.planRdv(r.To, len(r.Data))
	if outcome != nil {
		e.observeOutcome(r, *outcome, false)
	}
	e.observeRdvPath(r, chunks)
	e.stats.chunksSent.Add(uint64(len(chunks)))
	e.stats.bytesSent.Add(uint64(len(r.Data)))
	r.addPending(len(chunks))
	for _, c := range chunks {
		e.registerChunk(r, r.To, c.Rail, c.Offset, c.Size)
	}
	e.trace(trace.Decision, msgID, -1, len(r.Data),
		fmt.Sprintf("%s: %d chunks", e.cfg.Splitter.Name(), len(chunks)))
	e.env.Go(fmt.Sprintf("rdv-send-%d", msgID), func(ctx rt.Ctx) {
		events := make([]rt.Event, 0, len(chunks))
		for _, c := range chunks {
			frame := wire.EncodeData(uint8(c.Rail), e.origin(), r.Tag, r.msgID, c.Offset,
				r.Data[c.Offset:c.Offset+c.Size], len(r.Data))
			done := e.env.NewEvent()
			events = append(events, done)
			e.trace(trace.ChunkPosted, msgID, c.Rail, c.Size, "")
			e.node.Rail(c.Rail).SendData(ctx, r.To, frame, done)
		}
		e.noteEnqueued(r) // every chunk DMA is posted
		for _, ev := range events {
			ev.Wait(ctx)
			if r.chunkDone() {
				e.noteCompleted(r)
			}
		}
	})
}
