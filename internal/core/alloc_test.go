package core

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/ratchet"
	"repro/internal/rt"
	"repro/internal/trace"
)

// TestEagerSendAllocs is a regression ratchet on the eager send path:
// one complete Isend/Irecv round trip of a small message, engine to
// engine over the simulated fabric. The ceiling lives in ratchets.json
// ("core/eager_round_trip") with ~8% slack above the last measurement —
// it exists to catch a new per-message heap escape (a closure capture,
// a slice that stopped being reused, a map rebuilt per send), not to be
// a tight benchmark. When the real cost drops, `railvet -ratchet`
// lowers the ceiling automatically; loosening it is a hand-written,
// reviewed diff.
// The engines run with a metrics registry installed: observability must
// not move the ceiling (the ISSUE 7 acceptance bar). Func instruments
// cost nothing until scraped and histogram Observe is allocation-free,
// so the measured figure should match the bare-engine one.
// They also run with the production tracing stack — Counts teed with a
// FlightRecorder, installed as both Tracer and Flight — so the
// always-on flight recorder is held to the same bar.
func TestEagerSendAllocs(t *testing.T) {
	flight := trace.NewFlightRecorder(0)
	env, eng := pair(t, Config{
		Metrics: metrics.NewRegistry(),
		Tracer:  trace.Tee(trace.NewCounts(), flight),
		Flight:  flight,
	})
	payload := []byte("alloc-guard")
	buf := make([]byte, 64)
	tag := uint32(0)

	roundTrip := func() {
		rr := eng[1].Irecv(0, tag, buf)
		sr := eng[0].Isend(1, tag, payload)
		env.Go("allocprobe", func(ctx rt.Ctx) {
			sr.Wait(ctx)
			if _, err := rr.Wait(ctx); err != nil {
				t.Error(err)
			}
		})
		env.Run()
		tag++
	}
	roundTrip() // warm the plan cache and telemetry before measuring

	allocs := testing.AllocsPerRun(50, roundTrip)
	ratchet.Check(t, "core/eager_round_trip", allocs)
}
