package core

import (
	"time"

	"repro/internal/fabric"
	"repro/internal/rt"
	"repro/internal/strategy"
	"repro/internal/trace"
	"repro/internal/wire"
)

// This file is the engine half of the rail-health subsystem: every
// transfer unit (eager container, rendezvous or parallel-eager chunk)
// stays registered as outstanding until the receiver acknowledges it,
// and when a rail goes Down — a NIC died mid-message — the engine
// re-plans the unacknowledged units of that rail onto the surviving
// rails by re-invoking the strategy with a filtered rail view. The
// receiver tolerates the resulting duplicates: reassembly ignores
// already-covered ranges and a bounded window of recently seen unit ids
// drops whole-unit replays. Outstanding units live in the unit shards
// (keyed by (peer, unit id) hash), so registration and retirement of
// concurrent flows never contend on one lock.

// seenCap bounds the receiver's duplicate-detection window per engine.
// Replays only happen within a failover window (sender resends as soon
// as the rail dies), so a few thousand ids of memory is ample.
const seenCap = 4096

// ackKey identifies one in-flight transfer unit awaiting its ack.
type ackKey struct {
	id     uint64 // container id (eager) or message id (chunks)
	offset uint64 // chunk offset; 0 for containers
}

// unit is one transfer unit retained until acknowledged: an eager
// container (frame kept verbatim — payloads are copied into the
// container at encode time) or a data chunk (resent from the request's
// buffer).
type unit struct {
	key      ackKey
	to       int
	rail     int
	sentAt   time.Duration // post time, for the telemetry ack round trip
	replayed bool          // failed over: its ack may belong to the original send

	frame []byte         // eager container frame; nil marks a chunk
	reqs  []*SendRequest // container: requests riding it

	req       *SendRequest // chunk: owning request
	off, size int          // chunk location in req.Data
}

// bytes returns the unit's wire size (telemetry observation weight).
func (u *unit) bytes() int {
	if u.isChunk() {
		return u.size
	}
	return len(u.frame)
}

func (u *unit) isChunk() bool { return u.frame == nil }

// registerContainer records an eager container as outstanding until its
// ack arrives.
func (e *Engine) registerContainer(id uint64, to, rail int, frame []byte, reqs []*SendRequest) {
	for _, r := range reqs {
		r.addAcks(1)
	}
	us := e.unit(to, id)
	us.mu.Lock()
	us.outstanding[ackKey{id, 0}] = &unit{
		key: ackKey{id, 0}, to: to, rail: rail, sentAt: e.env.Now(),
		frame: frame, reqs: append([]*SendRequest(nil), reqs...),
	}
	us.mu.Unlock()
}

// registerChunk records a data chunk (rendezvous or parallel eager) as
// outstanding until its ack arrives.
func (e *Engine) registerChunk(req *SendRequest, to, rail, off, size int) {
	req.addAcks(1)
	k := ackKey{req.msgID, uint64(off)}
	us := e.unit(to, req.msgID)
	us.mu.Lock()
	us.outstanding[k] = &unit{key: k, to: to, rail: rail, sentAt: e.env.Now(),
		req: req, off: off, size: size}
	us.mu.Unlock()
}

// onAck retires an acknowledged unit and advances the owning requests'
// remote completion. from is the acknowledging node — the unit's
// destination.
func (e *Engine) onAck(from int, h wire.Header) {
	k := ackKey{h.MsgID, h.Offset}
	us := e.unit(from, h.MsgID)
	us.mu.Lock()
	u := us.outstanding[k]
	delete(us.outstanding, k)
	us.mu.Unlock()
	if u == nil {
		return // duplicate ack, or ack for a unit replanned meanwhile
	}
	// The ack round trip is the engine-level transfer measurement: half
	// of it approximates the one-way unit time on the rail it used.
	// Replayed units are excluded: their ack may be the *original*
	// transmission's (which raced the failover), and attributing that to
	// the replacement rail with the resend's timestamp would record a
	// spuriously instant transfer.
	if !u.replayed {
		e.observeUnit(from, u.rail, u.bytes(), u.sentAt, !u.isChunk())
		// The stage plane's wire leg: unit post to ack, per unit.
		e.observeStage(stageWireAcked, e.env.Now()-u.sentAt)
	}
	if u.isChunk() {
		if u.req.ackDone() {
			e.noteAcked(u.req, u.rail)
		}
		return
	}
	for _, r := range u.reqs {
		if r.ackDone() {
			e.noteAcked(r, u.rail)
		}
	}
}

// ackUnit acknowledges one received transfer unit to its sender.
// arrival is the rail the unit came in on: the ack returns on it when
// it is still Up, so the sender's round-trip telemetry measures that
// rail alone — routing every ack over one shared rail would add that
// rail's congestion to every other rail's observations. A non-Up
// arrival rail (it may be the one that just died) falls back to the
// first healthy rail.
func (e *Engine) ackUnit(ctx rt.Ctx, from int, id, offset uint64, arrival int) {
	rail := arrival
	if rail < 0 || rail >= e.node.NumRails() || e.node.Rail(rail).State() != fabric.RailUp {
		rail = e.ackRail()
	}
	e.node.Rail(rail).SendControl(ctx, from, wire.EncodeAck(uint8(rail), uint32(from), id, offset), 0, 0)
}

// ackRail picks the first Up rail (falling back to rail 0 when none is).
func (e *Engine) ackRail() int {
	for i := 0; i < e.node.NumRails(); i++ {
		if e.node.Rail(i).State() == fabric.RailUp {
			return i
		}
	}
	return 0
}

// upViews returns the strategy views of the strictly-Up rails, with
// the static estimators.
//
//railvet:upfilter
func (e *Engine) upViews() []strategy.RailView {
	return e.upViewsFor(-1)
}

// upViewsFor returns the strictly-Up rail views for a decision about
// one destination: in adaptive mode the live (peer, rail) estimators —
// a rail death is exactly when the current estimates matter most.
//
//railvet:upfilter
func (e *Engine) upViewsFor(dest int) []strategy.RailView {
	views := e.railViewsFor(dest)
	up := views[:0]
	for _, v := range views {
		if !v.Down {
			up = append(up, v)
		}
	}
	return up
}

// healthLoop is the engine's rail-health actor: it consumes the node's
// state-transition feed and re-plans in-flight work when rails die (or
// retries stranded work when one comes back).
func (e *Engine) healthLoop(ctx rt.Ctx) {
	for {
		item := e.healthQ.Pop(ctx)
		if item == nil {
			return // Stop
		}
		ev := item.(*fabric.RailEvent)
		if e.tele != nil {
			// The usable rail set changed: invalidate every cached plan
			// at once by moving the estimate epoch.
			e.tele.BumpEpoch()
		}
		switch ev.State {
		case fabric.RailDown:
			e.trace(trace.RailLost, 0, ev.Rail, 0, ev.Reason)
			e.noteAnomaly("rail down")
			e.replan(ctx)
		case fabric.RailSuspect:
			// A suspected rail — livenet lost its link and is holding
			// the rail through a bounded reconnect — must not strand
			// its in-flight units behind that backoff: move them onto
			// the Up rails now, exactly as a Down would. The receiver's
			// dedup window absorbs any original that still lands.
			e.trace(trace.RailLost, 0, ev.Rail, 0, "suspect: "+ev.Reason)
			e.noteAnomaly("rail suspect")
			e.replan(ctx)
		case fabric.RailUp:
			// A recovered rail can carry units stranded while every
			// rail was down.
			e.trace(trace.Reconnect, 0, ev.Rail, 0, ev.Reason)
			e.replan(ctx)
		}
	}
}

// replan moves every outstanding unit, pending RTS and pending CTS that
// sits on a non-Up rail onto surviving rails, sweeping all shards. With
// no survivors the work stays put and is retried on the next RailUp
// transition.
func (e *Engine) replan(ctx rt.Ctx) {
	views := e.upViews()
	if len(views) == 0 {
		return
	}
	alive := make(map[int]bool, len(views))
	for _, v := range views {
		alive[v.Index] = true
	}
	var units []*unit
	type rdvResend struct {
		msgID uint64
		p     *pendingRdv
	}
	var rts []rdvResend
	for i := range e.units {
		us := &e.units[i]
		us.mu.Lock()
		for _, u := range us.outstanding {
			if !alive[u.rail] {
				units = append(units, u)
			}
		}
		for id, p := range us.rdvOut {
			if !alive[p.rail] {
				rts = append(rts, rdvResend{id, p})
			}
		}
		us.mu.Unlock()
	}
	type ctsResend struct {
		pk pkey
		pa *partial
	}
	var cts []ctsResend
	for i := range e.flows {
		s := &e.flows[i]
		s.mu.Lock()
		for pk, pa := range s.partials {
			if pa.rdv && !alive[pa.ctsRail] {
				cts = append(cts, ctsResend{pk, pa})
			}
		}
		s.mu.Unlock()
	}
	// Each resend re-plans with its destination's views so adaptive
	// mode places the replay by the live estimates, not the start-up
	// table. One snapshot per destination: a failover storm re-plans
	// hundreds of chunks of one striped message to the same peer.
	byDest := make(map[int][]strategy.RailView)
	viewsFor := func(dest int) []strategy.RailView {
		v, ok := byDest[dest]
		if !ok {
			v = e.upViewsFor(dest)
			byDest[dest] = v
		}
		return v
	}
	for _, u := range units {
		if u.isChunk() {
			e.resendChunk(ctx, u, viewsFor(u.to))
		} else {
			e.resendContainer(ctx, u, viewsFor(u.to))
		}
	}
	for _, r := range rts {
		e.resendRTS(ctx, r.msgID, r.p, viewsFor(r.p.req.To))
	}
	for _, c := range cts {
		e.resendCTS(ctx, c.pk, c.pa, viewsFor(c.pa.from))
	}
}

// resendContainer replays an eager container on the best surviving rail
// that accepts a frame of its size.
func (e *Engine) resendContainer(ctx rt.Ctx, u *unit, views []strategy.RailView) {
	fit := make([]strategy.RailView, 0, len(views))
	for _, v := range strategy.Usable(views) {
		if m := e.node.Rail(v.Index).Profile().MaxMsg; m > 0 && len(u.frame) > m {
			continue
		}
		fit = append(fit, v)
	}
	if len(fit) == 0 {
		return
	}
	pick := strategy.SingleRail{}.Split(len(u.frame), e.env.Now(), fit)
	rail := pick[0].Rail
	us := e.unit(u.to, u.key.id)
	us.mu.Lock()
	if us.outstanding[u.key] != u {
		us.mu.Unlock()
		return // acked while we were deciding
	}
	u.rail = rail
	u.sentAt = e.env.Now() // the replay's round trip starts now
	u.replayed = true
	us.mu.Unlock()
	for _, r := range u.reqs {
		r.failedOver.Store(true)
	}
	e.stats.failedOver.Add(1)
	// The frame is resent verbatim: its header rail byte still names
	// the dead rail, but that field is diagnostics-only and the slice
	// may alias an in-flight transport write, so it must not be touched.
	e.trace(trace.Resent, u.key.id, rail, len(u.frame), "container failover")
	e.noteAnomaly("unit replay")
	e.node.Rail(rail).SendEager(ctx, u.to, u.frame)
}

// resendChunk re-plans one lost chunk's byte range by re-invoking the
// configured splitter over the surviving rails, registering the
// resulting sub-chunks as fresh outstanding units.
func (e *Engine) resendChunk(ctx rt.Ctx, u *unit, views []strategy.RailView) {
	chunks := e.cfg.Splitter.Split(u.size, e.env.Now(), views)
	if len(chunks) == 0 {
		return
	}
	us := e.unit(u.to, u.key.id)
	us.mu.Lock()
	if us.outstanding[u.key] != u {
		us.mu.Unlock()
		return // acked while we were deciding
	}
	delete(us.outstanding, u.key)
	newUnits := make([]*unit, 0, len(chunks))
	for _, c := range chunks {
		k := ackKey{u.key.id, uint64(u.off + c.Offset)}
		nu := &unit{key: k, to: u.to, rail: c.Rail, sentAt: e.env.Now(), replayed: true,
			req: u.req, off: u.off + c.Offset, size: c.Size}
		us.outstanding[k] = nu
		newUnits = append(newUnits, nu)
	}
	us.mu.Unlock()
	u.req.failedOver.Store(true)
	e.stats.failedOver.Add(1)
	e.noteAnomaly("unit replay")
	// The old unit's ack slot is retired only after the replacements
	// are counted, so the request's remote completion cannot fire early
	// (ackDone cannot hit zero here, but record the stage if it ever did).
	u.req.addAcks(len(newUnits))
	if u.req.ackDone() {
		e.noteAcked(u.req, -1)
	}
	for _, nu := range newUnits {
		frame := wire.EncodeData(uint8(nu.rail), e.origin(), u.req.Tag, u.key.id, nu.off,
			u.req.Data[nu.off:nu.off+nu.size], len(u.req.Data))
		e.trace(trace.Resent, u.key.id, nu.rail, nu.size, "chunk failover")
		e.node.Rail(nu.rail).SendData(ctx, u.to, frame, nil)
	}
}

// resendRTS replays a rendezvous announcement whose rail died before
// the CTS arrived. The receiver answers duplicates idempotently.
func (e *Engine) resendRTS(ctx rt.Ctx, msgID uint64, p *pendingRdv, views []strategy.RailView) {
	pick := strategy.SingleRail{}.Split(wire.HeaderSize, e.env.Now(), views)
	rail := pick[0].Rail
	us := e.unit(p.req.To, msgID)
	us.mu.Lock()
	if us.rdvOut[msgID] != p {
		us.mu.Unlock()
		return // CTS arrived while we were deciding
	}
	p.rail = rail
	us.mu.Unlock()
	p.req.failedOver.Store(true)
	prof := e.node.Rail(rail).Profile()
	rts := wire.EncodeControl(wire.KindRTS, uint8(rail), e.origin(), p.req.Tag, msgID, uint64(len(p.req.Data)))
	e.trace(trace.RTSSent, msgID, rail, len(p.req.Data), "failover")
	e.node.Rail(rail).SendControl(ctx, p.req.To, rts, prof.SendOverhead, prof.RecvOverhead)
}

// resendCTS replays a clear-to-send whose rail died; a duplicate CTS is
// ignored by the sender (rdvOut already cleared).
func (e *Engine) resendCTS(ctx rt.Ctx, pk pkey, pa *partial, views []strategy.RailView) {
	pick := strategy.SingleRail{}.Split(wire.HeaderSize, e.env.Now(), views)
	rail := pick[0].Rail
	s := e.flow(pa.from, pa.tag)
	s.mu.Lock()
	if s.partials[pk] != pa {
		s.mu.Unlock()
		return // completed while we were deciding
	}
	pa.ctsRail = rail
	s.mu.Unlock()
	e.sendCTS(pa.from, rail, pa.tag, pk.id)
}

// OutstandingUnits reports how many transfer units await receiver acks
// (tests and diagnostics).
func (e *Engine) OutstandingUnits() int {
	n := 0
	for i := range e.units {
		us := &e.units[i]
		us.mu.Lock()
		n += len(us.outstanding)
		us.mu.Unlock()
	}
	return n
}
