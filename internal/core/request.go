package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rt"
)

// SendRequest tracks one Isend. Done fires when the payload has left the
// host (every PIO copy posted or every DMA drained) and the buffer is
// reusable.
type SendRequest struct {
	// To, Tag and Data describe the message.
	To   int
	Tag  uint32
	Data []byte

	done  rt.Event
	acked rt.Event
	msgID uint64

	// rdvStart is when the rendezvous handshake began (telemetry's
	// whole-rendezvous clock); zero for eager sends. Written once by the
	// flush worker before the RTS leaves, read by the ack completion.
	rdvStart time.Duration
	// submitAt and decideAt anchor the stage-latency attribution:
	// submitAt is stamped by Isend, decideAt by the flush worker when
	// the strategy picks this message's schedule. Readers (the flush
	// worker, the ack handlers) are downstream of those writes through
	// the submit queue and the transport round trip.
	submitAt time.Duration
	decideAt time.Duration
	// failedOver marks a request some unit of which was replayed onto
	// another rail: its end-to-end time includes the failover stall and
	// must not train the original rail's telemetry.
	failedOver atomic.Bool

	mu         sync.Mutex
	pending    int // outstanding chunks before Done fires
	ackPending int // outstanding unit acks before RemoteDone fires
}

// Done returns the completion event.
func (r *SendRequest) Done() rt.Event { return r.done }

// RemoteDone returns the remote-completion event: it fires when the
// receiver has acknowledged every transfer unit of the message, i.e.
// nothing of it can still be lost to a dying rail. Until then the
// payload buffer must stay untouched — the failover path re-sends lost
// chunks from it.
func (r *SendRequest) RemoteDone() rt.Event { return r.acked }

// Wait blocks the calling actor until the send completes locally.
func (r *SendRequest) Wait(ctx rt.Ctx) { r.done.Wait(ctx) }

// MsgID returns the engine-assigned message id (tracing).
func (r *SendRequest) MsgID() uint64 { return r.msgID }

func (r *SendRequest) addPending(n int) {
	r.mu.Lock()
	r.pending += n
	r.mu.Unlock()
}

// chunkDone decrements the outstanding-chunk count, firing Done at
// zero. It reports whether this call completed the request, so the
// caller can record the completion stage exactly once.
func (r *SendRequest) chunkDone() bool {
	r.mu.Lock()
	r.pending--
	fire := r.pending == 0
	r.mu.Unlock()
	if fire {
		r.done.Fire()
	}
	return fire
}

func (r *SendRequest) addAcks(n int) {
	r.mu.Lock()
	r.ackPending += n
	r.mu.Unlock()
}

// ackDone decrements the outstanding-ack count, firing RemoteDone at
// zero. It reports whether this call fired it, so the caller can
// record the remote-completion stage exactly once.
func (r *SendRequest) ackDone() bool {
	r.mu.Lock()
	r.ackPending--
	fire := r.ackPending == 0
	r.mu.Unlock()
	if fire {
		r.acked.Fire()
	}
	return fire
}

func (r *SendRequest) String() string {
	return fmt.Sprintf("send{to=%d tag=%d n=%d id=%d}", r.To, r.Tag, len(r.Data), r.msgID)
}

// RecvRequest tracks one Irecv. Done fires when a matching message has
// fully arrived in Buf.
type RecvRequest struct {
	// From and Tag select the source and matching tag.
	From int
	Tag  uint32
	// Buf receives the payload; messages longer than Buf are an error
	// (fires Done with Err set).
	Buf []byte

	done rt.Event

	mu  sync.Mutex
	n   int
	err error
}

// Done returns the completion event.
func (r *RecvRequest) Done() rt.Event { return r.done }

// Wait blocks until the message arrived; it returns the received length.
func (r *RecvRequest) Wait(ctx rt.Ctx) (int, error) {
	r.done.Wait(ctx)
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n, r.err
}

// Len returns the received length (valid after Done fires).
func (r *RecvRequest) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Err returns the receive error, if any (valid after Done fires).
func (r *RecvRequest) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

func (r *RecvRequest) complete(n int, err error) {
	r.mu.Lock()
	r.n, r.err = n, err
	r.mu.Unlock()
	r.done.Fire()
}

func (r *RecvRequest) String() string {
	return fmt.Sprintf("recv{from=%d tag=%d cap=%d}", r.From, r.Tag, len(r.Buf))
}
