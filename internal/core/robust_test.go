package core

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/rt"
	"repro/internal/wire"
)

// inject pushes a raw frame into node 1's delivery queue as if it had
// arrived on the given rail.
func inject(eng *Engine, rail int, data []byte) {
	eng.node.RecvQ().Push(&fabric.Delivery{From: 0, Rail: rail, Data: data})
}

// Corrupt frames are dropped; the engine keeps serving.
func TestHandlerDropsCorruptFrames(t *testing.T) {
	env, eng := pair(t, Config{})
	var got int
	env.Go("app", func(ctx rt.Ctx) {
		inject(eng[1], 0, []byte{0xFF, 0xFF, 0xFF})                     // short garbage
		inject(eng[1], 0, make([]byte, wire.HeaderSize))                // kind 0: corrupt
		badEager := wire.EncodeControl(wire.KindEager, 0, 0, 1, 1, 999) // count/payload mismatch
		inject(eng[1], 0, badEager)
		ctx.Sleep(time.Millisecond)
		// Normal traffic still flows.
		rr := eng[1].Irecv(0, 1, make([]byte, 16))
		eng[0].Isend(1, 1, []byte("alive"))
		got, _ = rr.Wait(ctx)
	})
	env.Run()
	if got != 5 {
		t.Fatalf("engine wedged after corrupt frames: got %d", got)
	}
}

// A CTS for an unknown message id (stale or duplicated) is ignored.
func TestStaleCTSIgnored(t *testing.T) {
	env, eng := pair(t, Config{})
	ok := false
	env.Go("app", func(ctx rt.Ctx) {
		inject(eng[0], 0, wire.EncodeControl(wire.KindCTS, 0, 0, 1, 0xDEAD, 0))
		ctx.Sleep(time.Millisecond)
		rr := eng[1].Irecv(0, 1, make([]byte, 256<<10))
		eng[0].Isend(1, 1, make([]byte, 256<<10))
		n, err := rr.Wait(ctx)
		ok = n == 256<<10 && err == nil
	})
	env.Run()
	if !ok {
		t.Fatal("stale CTS disturbed a later rendezvous")
	}
}

// A duplicate chunk (same offset twice) is idempotent: the failover
// path re-sends chunks whose rail died before the ack crossed, so an
// exact replay must neither fail the receive nor complete it early.
func TestDuplicateChunkIsIdempotent(t *testing.T) {
	env, eng := pair(t, Config{})
	var n int
	var rerr error
	buf := make([]byte, 1024)
	env.Go("app", func(ctx rt.Ctx) {
		rr := eng[1].Irecv(0, 1, buf)
		head := wire.EncodeData(0, 0, 1, 0xABC, 0, bytes.Repeat([]byte{'h'}, 512), 1024)
		inject(eng[1], 0, head)
		inject(eng[1], 0, head) // replayed offset 0: ignored
		ctx.Sleep(time.Millisecond)
		if rr.Done().Fired() {
			t.Error("duplicate chunk completed the message early")
		}
		inject(eng[1], 1, wire.EncodeData(1, 0, 1, 0xABC, 512, bytes.Repeat([]byte{'t'}, 512), 1024))
		n, rerr = rr.Wait(ctx)
	})
	env.Run()
	if rerr != nil || n != 1024 {
		t.Fatalf("n=%d err=%v", n, rerr)
	}
	if buf[0] != 'h' || buf[1023] != 't' {
		t.Fatalf("payload corrupted: %q...%q", buf[0], buf[1023])
	}
}

// A chunk replayed after its message completed is dropped instead of
// opening a ghost reassembly that would swallow a later receive.
func TestLateChunkReplayAfterCompletionIgnored(t *testing.T) {
	env, eng := pair(t, Config{})
	env.Go("app", func(ctx rt.Ctx) {
		rr := eng[1].Irecv(0, 1, make([]byte, 8))
		chunk := wire.EncodeData(0, 0, 1, 0x99, 0, []byte("complete"), 8)
		inject(eng[1], 0, chunk)
		if n, err := rr.Wait(ctx); err != nil || n != 8 {
			t.Errorf("first delivery n=%d err=%v", n, err)
		}
		inject(eng[1], 0, chunk) // late replay of the whole unit
		ctx.Sleep(time.Millisecond)
		// A fresh receive must still match fresh traffic, not the ghost.
		rr2 := eng[1].Irecv(0, 1, make([]byte, 16))
		eng[0].Isend(1, 1, []byte("fresh"))
		if n, err := rr2.Wait(ctx); err != nil || n != 5 {
			t.Errorf("post-replay receive n=%d err=%v", n, err)
		}
	})
	env.Run()
	if st := eng[1].Stats(); st.Unexpected != 0 {
		t.Fatalf("replay queued as unexpected: %+v", st)
	}
}

// An unexpected striped message (chunks before any Irecv) reassembles in
// a temporary buffer and matches a late receive.
func TestUnexpectedStripedMessage(t *testing.T) {
	env, eng := pair(t, Config{})
	var got []byte
	env.Go("app", func(ctx rt.Ctx) {
		inject(eng[1], 0, wire.EncodeData(0, 0, 9, 0x77, 4, []byte("tail"), 8))
		inject(eng[1], 1, wire.EncodeData(1, 0, 9, 0x77, 0, []byte("head"), 8))
		ctx.Sleep(time.Millisecond)
		buf := make([]byte, 8)
		rr := eng[1].Irecv(0, 9, buf)
		n, err := rr.Wait(ctx)
		if err != nil {
			t.Error(err)
		}
		got = buf[:n]
	})
	env.Run()
	if string(got) != "headtail" {
		t.Fatalf("got %q", got)
	}
}

// A chunk whose total exceeds the posted buffer errors out cleanly when
// announced via rendezvous.
func TestRdvLargerThanBufferViaRTS(t *testing.T) {
	env, eng := pair(t, Config{})
	var rerr error
	env.Go("app", func(ctx rt.Ctx) {
		rr := eng[1].Irecv(0, 3, make([]byte, 64))
		inject(eng[1], 0, wire.EncodeControl(wire.KindRTS, 0, 0, 3, 0x55, 4096))
		_, rerr = rr.Wait(ctx)
	})
	env.Run()
	if rerr == nil {
		t.Fatal("oversized RTS matched a small buffer without error")
	}
}
