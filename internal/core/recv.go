package core

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/progress"
	"repro/internal/rt"
	"repro/internal/trace"
	"repro/internal/wire"
)

// partial is a striped message being reassembled: either directly into a
// posted receive buffer (rendezvous) or into a temporary buffer
// (unexpected striped eager). It lives in the flow shard of its
// (sender, tag) pair; the shard lock guards everything but the byte
// copies, which claim disjoint ranges and run outside the lock so
// several workers can copy chunks of one large message in parallel.
type partial struct {
	re      *wire.Reassembly
	req     *RecvRequest // nil while unexpected
	from    int
	tag     uint32
	buf     []byte
	rdv     bool // announced via RTS (a CTS was sent)
	ctsRail int  // rail the CTS travelled on (replayed if it dies)

	inflight []wire.Span // ranges being copied outside the shard lock
}

// overlapsInflight reports whether [off, end) touches a range another
// worker is currently copying.
func (pa *partial) overlapsInflight(off, end int) bool {
	for _, r := range pa.inflight {
		if off < r.End && r.Off < end {
			return true
		}
	}
	return false
}

// release removes one claimed range.
func (pa *partial) release(off, end int) {
	for i, r := range pa.inflight {
		if r.Off == off && r.End == end {
			pa.inflight = append(pa.inflight[:i], pa.inflight[i+1:]...)
			return
		}
	}
}

// Irecv posts a receive. It never blocks; matching happens against
// queued unexpected messages first. Only the shard of (from, tag) is
// touched — receives for other flows proceed in parallel.
func (e *Engine) Irecv(from int, tag uint32, buf []byte) *RecvRequest {
	req := &RecvRequest{From: from, Tag: tag, Buf: buf, done: e.env.NewEvent()}
	k := key{from, tag}
	s := e.flow(from, tag)
	s.mu.Lock()
	// 1. A complete unexpected message?
	if q := s.unexpect[k]; len(q) > 0 {
		m := q[0]
		s.unexpect[k] = q[1:]
		s.matched++
		s.mu.Unlock()
		e.deliverTo(req, m.origin, m.msgID, m.data)
		return req
	}
	// 2. A rendezvous waiting for its buffer?
	if q := s.rdvQueued[k]; len(q) > 0 {
		rts := q[0]
		s.rdvQueued[k] = q[1:]
		s.matched++
		empty, err := e.attachRdv(s, req, rts.msgID, rts.total, rts.rail)
		s.mu.Unlock()
		if err != nil {
			req.complete(0, err)
			return req
		}
		if empty {
			req.complete(0, nil)
		}
		e.sendCTS(rts.from, rts.rail, tag, rts.msgID)
		return req
	}
	// 3. Queue the receive.
	s.recvs[k] = append(s.recvs[k], req)
	s.mu.Unlock()
	return req
}

// attachRdv registers a reassembly straight into the posted buffer.
// ctsRail is the rail the CTS will travel on (tracked for replay). The
// caller holds s.mu — the shard owning (req.From, req.Tag) — and must
// complete the request itself when empty is true (zero-length message),
// after releasing the lock.
func (e *Engine) attachRdv(s *flowShard, req *RecvRequest, msgID uint64, total, ctsRail int) (empty bool, err error) {
	if total > len(req.Buf) {
		return false, fmt.Errorf("core: message of %d bytes exceeds receive buffer %d", total, len(req.Buf))
	}
	re, err := wire.NewReassembly(msgID, req.Buf, total)
	if err != nil {
		return false, err
	}
	if total == 0 {
		return true, nil
	}
	s.partials[pkey{req.From, msgID}] = &partial{re: re, req: req, from: req.From, tag: req.Tag,
		buf: req.Buf, rdv: true, ctsRail: ctsRail}
	return false, nil
}

// sendCTS answers a rendezvous on the rail the RTS used. It runs as a
// tasklet-free actor because control sends block briefly. The CTS
// echoes the RTS sender's node id (`to`) as the frame origin — the
// trace id of the message it clears belongs to that node.
func (e *Engine) sendCTS(to, rail int, tag uint32, msgID uint64) {
	prof := e.node.Rail(rail).Profile()
	cts := wire.EncodeControl(wire.KindCTS, uint8(rail), uint32(to), tag, msgID, 0)
	e.traceFrom(to, trace.CTSSent, msgID, rail, 0, "")
	e.env.Go(fmt.Sprintf("cts-%d", msgID), func(ctx rt.Ctx) {
		e.node.Rail(rail).SendControl(ctx, to, cts, prof.RdvHandshakeCPU/2, prof.RdvHandshakeCPU/2)
	})
}

// handle is the inline progression handler (the modeled simulator's
// path): it runs on a pioman actor for every delivery, in arrival
// order. Eager containers and data chunks are acknowledged back to the
// sender — duplicates included, since a replay means the sender never
// saw the first ack — which is what lets the sender retire (or fail
// over) its outstanding units.
func (e *Engine) handle(ctx rt.Ctx, d *fabric.Delivery) {
	h, _, err := wire.DecodeHeader(d.Data)
	if err != nil {
		return // corrupt frame: drop (counted nowhere; cannot happen in-process)
	}
	switch h.Kind {
	case wire.KindEager:
		pkts, err := wire.DecodeEager(d.Data)
		if err != nil {
			return
		}
		// h.MsgID is the container id. A replayed container (its rail
		// died after delivery but before the ack crossed) must not
		// deliver its packets twice.
		if h.MsgID == 0 || e.seen.Mark(d.From, h.MsgID) {
			for _, p := range pkts {
				e.deliverEager(d.From, int(h.Origin), p)
			}
		} else {
			e.traceFrom(int(h.Origin), trace.ReplayedDelivery, h.MsgID, d.Rail,
				int(h.TotalLen), "eager container replay dropped")
		}
		if h.MsgID != 0 {
			e.ackUnit(ctx, d.From, h.MsgID, 0, d.Rail)
		}
	case wire.KindData:
		hdr, payload, err := wire.DecodeData(d.Data)
		if err != nil {
			return
		}
		e.deliverChunk(d.From, hdr, payload)
		e.ackUnit(ctx, d.From, hdr.MsgID, hdr.Offset, d.Rail)
	case wire.KindRTS:
		e.handleRTS(d.From, int(h.Rail), h)
	case wire.KindCTS:
		e.onCTS(d.From, h.MsgID)
	case wire.KindAck:
		e.onAck(d.From, h)
	}
}

// dispatch is the multicore progression path: it classifies one
// delivery and hands the engine work to the progress pool. Eager
// packets and RTS go to their flow's worker — same flow, same worker,
// same order — so matching order is preserved per (source, tag); data
// chunks spread across workers keyed by offset (reassembly accepts any
// order — this is the parallel striped copy); CTS and acks go to the
// owning unit's worker. dispatch runs on the transport's reader
// goroutine (or a pioman detection actor) and never blocks.
func (e *Engine) dispatch(d *fabric.Delivery) {
	h, _, err := wire.DecodeHeader(d.Data)
	if err != nil {
		return
	}
	from := d.From
	switch h.Kind {
	case wire.KindEager:
		pkts, err := wire.DecodeEager(d.Data)
		if err != nil {
			return
		}
		if h.MsgID == 0 || e.seen.Mark(from, h.MsgID) {
			origin := int(h.Origin)
			for _, p := range pkts {
				p := p
				e.pool.Submit(progress.FlowKey(from, p.Tag), progress.Task{
					Name: "eager",
					Run:  func(rt.Ctx) { e.deliverEager(from, origin, p) },
				})
			}
		} else {
			e.traceFrom(int(h.Origin), trace.ReplayedDelivery, h.MsgID, d.Rail,
				int(h.TotalLen), "eager container replay dropped")
		}
		if h.MsgID != 0 {
			// The container is safely in receiver memory (its packets are
			// queued on in-process workers), so it can no longer be lost
			// to a dying rail: ack now, from a worker.
			id, rail := h.MsgID, d.Rail
			e.pool.Submit(progress.UnitKey(from, id), progress.Task{
				Name: "ack",
				Run:  func(ctx rt.Ctx) { e.ackUnit(ctx, from, id, 0, rail) },
			})
		}
	case wire.KindData:
		hdr, payload, err := wire.DecodeData(d.Data)
		if err != nil {
			return
		}
		rail := d.Rail
		e.pool.Submit(progress.ChunkKey(from, hdr.Tag, hdr.Offset), progress.Task{
			Name: "chunk",
			Run: func(ctx rt.Ctx) {
				e.deliverChunk(from, hdr, payload)
				e.ackUnit(ctx, from, hdr.MsgID, hdr.Offset, rail)
			},
		})
	case wire.KindRTS:
		rail := int(h.Rail)
		e.pool.Submit(progress.FlowKey(from, h.Tag), progress.Task{
			Name: "rts",
			Run:  func(rt.Ctx) { e.handleRTS(from, rail, h) },
		})
	case wire.KindCTS:
		e.pool.Submit(progress.UnitKey(from, h.MsgID), progress.Task{
			Name: "cts",
			Run:  func(rt.Ctx) { e.onCTS(from, h.MsgID) },
		})
	case wire.KindAck:
		e.pool.Submit(progress.UnitKey(from, h.MsgID), progress.Task{
			Name: "onack",
			Run:  func(rt.Ctx) { e.onAck(from, h) },
		})
	}
}

// deliverEager matches one complete logical packet under its flow's
// shard lock. origin is the submitting node from the container header
// (the trace id's node half — equal to `from` on today's unrouted
// fabrics, but the header is authoritative).
func (e *Engine) deliverEager(from, origin int, p wire.Packet) {
	k := key{from, p.Tag}
	s := e.flow(from, p.Tag)
	s.mu.Lock()
	if q := s.recvs[k]; len(q) > 0 {
		req := q[0]
		s.recvs[k] = q[1:]
		s.matched++
		s.mu.Unlock()
		e.deliverTo(req, origin, p.MsgID, p.Payload)
		return
	}
	data := append([]byte(nil), p.Payload...) // the container may be reused
	s.unexpect[k] = append(s.unexpect[k], &message{msgID: p.MsgID, origin: origin, data: data})
	s.unexpected++
	s.mu.Unlock()
	e.stats.unexpected.Add(1)
}

// deliverChunk routes a striped chunk into its reassembly, creating an
// unexpected one on first contact if no rendezvous pre-registered it.
//
// The byte copy of a fresh, uncontended range runs OUTSIDE the shard
// lock: the range is claimed (inflight), copied, then committed — so
// chunks of one large message arriving on different rails are copied
// into the receive buffer by several workers at once. Overlapping
// ranges (failover replays, which re-split a lost chunk's range) copy
// only their still-missing, unclaimed bytes under the lock; the
// overlapped bytes are identical on every copy, all originating from
// the sender's one buffer.
func (e *Engine) deliverChunk(from int, h wire.Header, payload []byte) {
	k := key{from, h.Tag}
	pk := pkey{from, h.MsgID}
	s := e.flow(from, h.Tag)
	s.mu.Lock()
	pa := s.partials[pk]
	if pa == nil {
		if e.seen.Seen(from, h.MsgID) {
			// Late replay of a chunk whose message already completed
			// (the ack raced a rail failure): drop it — the handler
			// still re-acks the unit.
			s.mu.Unlock()
			e.traceFrom(int(h.Origin), trace.ReplayedDelivery, h.MsgID, -1,
				len(payload), "chunk replay dropped")
			return
		}
		// Unexpected striped eager message: reassemble into a temporary
		// buffer, matching a posted receive if one exists.
		buf := make([]byte, h.TotalLen)
		re, err := wire.NewReassembly(h.MsgID, buf, int(h.TotalLen))
		if err != nil {
			s.mu.Unlock()
			return
		}
		pa = &partial{re: re, from: from, tag: h.Tag, buf: buf}
		if q := s.recvs[k]; len(q) > 0 {
			pa.req = q[0]
			s.recvs[k] = q[1:]
			s.matched++
		}
		s.partials[pk] = pa
	}
	off, end := int(h.Offset), int(h.Offset)+len(payload)
	if off < 0 || end > pa.re.Total() {
		s.mu.Unlock()
		if pa.req != nil {
			pa.req.complete(0, fmt.Errorf("wire: chunk [%d,%d) outside message of %d bytes", off, end, pa.re.Total()))
		}
		return
	}
	if gaps := pa.re.Missing(off, len(payload)); len(gaps) == 1 &&
		gaps[0] == (wire.Span{Off: off, End: end}) && !pa.overlapsInflight(off, end) {
		// Exclusive fresh range: the parallel striped copy.
		pa.inflight = append(pa.inflight, wire.Span{Off: off, End: end})
		s.mu.Unlock()
		copy(pa.buf[off:end], payload)
		s.mu.Lock()
		pa.release(off, end)
		pa.re.Mark(off, len(payload))
	} else {
		// Duplicate or partially covered range: copy only the missing
		// bytes another worker is not already writing, under the lock.
		for _, g := range gaps {
			if pa.overlapsInflight(g.Off, g.End) {
				continue // identical bytes already being written
			}
			copy(pa.buf[g.Off:g.End], payload[g.Off-off:g.End-off])
			pa.re.Mark(g.Off, g.End-g.Off)
		}
	}
	if !pa.re.Done() {
		s.mu.Unlock()
		return
	}
	delete(s.partials, pk)
	e.seen.Mark(from, h.MsgID)
	req := pa.req
	if req == nil {
		// Completed with no posted receive: queue as unexpected.
		s.unexpect[k] = append(s.unexpect[k], &message{msgID: h.MsgID, origin: int(h.Origin), data: pa.buf})
		s.unexpected++
		s.mu.Unlock()
		e.stats.unexpected.Add(1)
		return
	}
	s.mu.Unlock()
	if req.Buf != nil && len(pa.buf) > 0 && &req.Buf[0] == &pa.buf[0] {
		// Rendezvous path: bytes already in place.
		e.traceFrom(int(h.Origin), trace.Delivered, h.MsgID, -1, pa.re.Received(), "rendezvous")
		req.complete(pa.re.Received(), nil)
		return
	}
	e.deliverTo(req, int(h.Origin), h.MsgID, pa.buf[:pa.re.Received()])
}

// handleRTS matches a rendezvous announcement against posted receives.
// Duplicate announcements — the sender replays its RTS when the rail it
// travelled on dies before the CTS returns — are answered idempotently
// instead of matching a second receive.
func (e *Engine) handleRTS(from, rail int, h wire.Header) {
	k := key{from, h.Tag}
	pk := pkey{from, h.MsgID}
	s := e.flow(from, h.Tag)
	s.mu.Lock()
	if e.seen.Seen(from, h.MsgID) {
		// Replay of an RTS whose message already completed (a delayed
		// duplicate from the failover path): matching it against a
		// fresh receive would hang that receive forever — the sender
		// ignores the CTS of a rendezvous it already finished.
		s.mu.Unlock()
		return
	}
	if pa := s.partials[pk]; pa != nil && pa.rdv {
		// Already matched: the first CTS (or the rail it used) was
		// lost. Answer again on the replay's rail, which the sender
		// chose among its survivors.
		pa.ctsRail = rail
		s.mu.Unlock()
		e.sendCTS(from, rail, h.Tag, h.MsgID)
		return
	}
	for _, qd := range s.rdvQueued[k] {
		if qd.msgID == h.MsgID {
			qd.rail = rail // still unmatched: just note the fresher rail
			s.mu.Unlock()
			return
		}
	}
	if q := s.recvs[k]; len(q) > 0 {
		req := q[0]
		s.recvs[k] = q[1:]
		s.matched++
		empty, err := e.attachRdv(s, req, h.MsgID, int(h.TotalLen), rail)
		s.mu.Unlock()
		if err != nil {
			req.complete(0, err)
			return
		}
		if empty {
			req.complete(0, nil)
		}
		e.sendCTS(from, rail, h.Tag, h.MsgID)
		return
	}
	s.rdvQueued[k] = append(s.rdvQueued[k],
		&queuedRTS{msgID: h.MsgID, total: int(h.TotalLen), rail: rail, from: from})
	s.mu.Unlock()
}

// deliverTo copies a complete payload into the request's buffer and
// completes it. origin attributes the Delivered event to the sender's
// trace id.
func (e *Engine) deliverTo(req *RecvRequest, origin int, msgID uint64, data []byte) {
	if len(data) > len(req.Buf) {
		req.complete(0, fmt.Errorf("core: message of %d bytes exceeds receive buffer %d", len(data), len(req.Buf)))
		return
	}
	copy(req.Buf, data)
	e.traceFrom(origin, trace.Delivered, msgID, -1, len(data), "")
	req.complete(len(data), nil)
}
