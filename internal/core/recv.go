package core

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/rt"
	"repro/internal/trace"
	"repro/internal/wire"
)

// partial is a striped message being reassembled: either directly into a
// posted receive buffer (rendezvous) or into a temporary buffer
// (unexpected striped eager).
type partial struct {
	re      *wire.Reassembly
	req     *RecvRequest // nil while unexpected
	from    int
	tag     uint32
	buf     []byte
	rdv     bool // announced via RTS (a CTS was sent)
	ctsRail int  // rail the CTS travelled on (replayed if it dies)
}

// Irecv posts a receive. It never blocks; matching happens against
// queued unexpected messages first.
func (e *Engine) Irecv(from int, tag uint32, buf []byte) *RecvRequest {
	req := &RecvRequest{From: from, Tag: tag, Buf: buf, done: e.env.NewEvent()}
	k := key{from, tag}
	e.mu.Lock()
	// 1. A complete unexpected message?
	if q := e.unexpect[k]; len(q) > 0 {
		m := q[0]
		e.unexpect[k] = q[1:]
		e.mu.Unlock()
		e.deliverTo(req, m.msgID, m.data)
		return req
	}
	// 2. A rendezvous waiting for its buffer?
	if q := e.rdvQueued[k]; len(q) > 0 {
		rts := q[0]
		e.rdvQueued[k] = q[1:]
		empty, err := e.attachRdv(req, rts.msgID, rts.total, rts.rail)
		e.mu.Unlock()
		if err != nil {
			req.complete(0, err)
			return req
		}
		if empty {
			req.complete(0, nil)
		}
		e.sendCTS(rts.from, rts.rail, tag, rts.msgID)
		return req
	}
	// 3. Queue the receive.
	e.recvs[k] = append(e.recvs[k], req)
	e.mu.Unlock()
	return req
}

// attachRdv registers a reassembly straight into the posted buffer.
// ctsRail is the rail the CTS will travel on (tracked for replay). The
// caller holds e.mu and must complete the request itself when empty is
// true (zero-length message), after releasing the lock.
func (e *Engine) attachRdv(req *RecvRequest, msgID uint64, total, ctsRail int) (empty bool, err error) {
	if total > len(req.Buf) {
		return false, fmt.Errorf("core: message of %d bytes exceeds receive buffer %d", total, len(req.Buf))
	}
	re, err := wire.NewReassembly(msgID, req.Buf, total)
	if err != nil {
		return false, err
	}
	if total == 0 {
		return true, nil
	}
	e.partials[msgID] = &partial{re: re, req: req, from: req.From, tag: req.Tag, buf: req.Buf,
		rdv: true, ctsRail: ctsRail}
	return false, nil
}

// sendCTS answers a rendezvous on the rail the RTS used. It runs as a
// tasklet-free actor because control sends block briefly.
func (e *Engine) sendCTS(to, rail int, tag uint32, msgID uint64) {
	prof := e.node.Rail(rail).Profile()
	cts := wire.EncodeControl(wire.KindCTS, uint8(rail), tag, msgID, 0)
	e.trace(trace.CTSSent, msgID, rail, 0, "")
	e.env.Go(fmt.Sprintf("cts-%d", msgID), func(ctx rt.Ctx) {
		e.node.Rail(rail).SendControl(ctx, to, cts, prof.RdvHandshakeCPU/2, prof.RdvHandshakeCPU/2)
	})
}

// handle is the progression handler: it runs on a pioman actor for every
// delivery, in arrival order. Eager containers and data chunks are
// acknowledged back to the sender — duplicates included, since a replay
// means the sender never saw the first ack — which is what lets the
// sender retire (or fail over) its outstanding units.
func (e *Engine) handle(ctx rt.Ctx, d *fabric.Delivery) {
	h, _, err := wire.DecodeHeader(d.Data)
	if err != nil {
		return // corrupt frame: drop (counted nowhere; cannot happen in-process)
	}
	switch h.Kind {
	case wire.KindEager:
		pkts, err := wire.DecodeEager(d.Data)
		if err != nil {
			return
		}
		// h.MsgID is the container id. A replayed container (its rail
		// died after delivery but before the ack crossed) must not
		// deliver its packets twice.
		if h.MsgID == 0 || e.markSeen(d.From, h.MsgID) {
			for _, p := range pkts {
				e.deliverEager(d.From, p)
			}
		}
		if h.MsgID != 0 {
			e.ackUnit(ctx, d.From, h.MsgID, 0)
		}
	case wire.KindData:
		hdr, payload, err := wire.DecodeData(d.Data)
		if err != nil {
			return
		}
		e.deliverChunk(d.From, hdr, payload)
		e.ackUnit(ctx, d.From, hdr.MsgID, hdr.Offset)
	case wire.KindRTS:
		e.handleRTS(d.From, int(h.Rail), h)
	case wire.KindCTS:
		e.onCTS(h.MsgID)
	case wire.KindAck:
		e.onAck(h)
	}
}

// deliverEager matches one complete logical packet.
func (e *Engine) deliverEager(from int, p wire.Packet) {
	k := key{from, p.Tag}
	e.mu.Lock()
	if q := e.recvs[k]; len(q) > 0 {
		req := q[0]
		e.recvs[k] = q[1:]
		e.mu.Unlock()
		e.deliverTo(req, p.MsgID, p.Payload)
		return
	}
	data := append([]byte(nil), p.Payload...) // the container may be reused
	e.unexpect[k] = append(e.unexpect[k], &message{msgID: p.MsgID, data: data})
	e.stats.Unexpected++
	e.mu.Unlock()
}

// deliverChunk routes a striped chunk into its reassembly, creating an
// unexpected one on first contact if no rendezvous pre-registered it.
func (e *Engine) deliverChunk(from int, h wire.Header, payload []byte) {
	k := key{from, h.Tag}
	e.mu.Lock()
	pa := e.partials[h.MsgID]
	if pa == nil {
		if _, dup := e.seen[seenKey{from, h.MsgID}]; dup {
			// Late replay of a chunk whose message already completed
			// (the ack raced a rail failure): drop it — the handler
			// still re-acks the unit.
			e.mu.Unlock()
			return
		}
		// Unexpected striped eager message: reassemble into a temporary
		// buffer, matching a posted receive if one exists.
		buf := make([]byte, h.TotalLen)
		re, err := wire.NewReassembly(h.MsgID, buf, int(h.TotalLen))
		if err != nil {
			e.mu.Unlock()
			return
		}
		pa = &partial{re: re, from: from, tag: h.Tag, buf: buf}
		if q := e.recvs[k]; len(q) > 0 {
			pa.req = q[0]
			e.recvs[k] = q[1:]
		}
		e.partials[h.MsgID] = pa
	}
	done, err := pa.re.Add(int(h.Offset), payload)
	if err != nil {
		e.mu.Unlock()
		if pa.req != nil {
			pa.req.complete(0, err)
		}
		return
	}
	if !done {
		e.mu.Unlock()
		return
	}
	delete(e.partials, h.MsgID)
	e.seenAddLocked(seenKey{from, h.MsgID})
	req := pa.req
	if req == nil {
		// Completed with no posted receive: queue as unexpected.
		e.unexpect[k] = append(e.unexpect[k], &message{msgID: h.MsgID, data: pa.buf})
		e.stats.Unexpected++
		e.mu.Unlock()
		return
	}
	e.mu.Unlock()
	if req.Buf != nil && len(pa.buf) > 0 && &req.Buf[0] == &pa.buf[0] {
		// Rendezvous path: bytes already in place.
		e.trace(trace.Delivered, h.MsgID, -1, pa.re.Received(), "rendezvous")
		req.complete(pa.re.Received(), nil)
		return
	}
	e.deliverTo(req, h.MsgID, pa.buf[:pa.re.Received()])
}

// handleRTS matches a rendezvous announcement against posted receives.
// Duplicate announcements — the sender replays its RTS when the rail it
// travelled on dies before the CTS returns — are answered idempotently
// instead of matching a second receive.
func (e *Engine) handleRTS(from, rail int, h wire.Header) {
	k := key{from, h.Tag}
	e.mu.Lock()
	if _, dup := e.seen[seenKey{from, h.MsgID}]; dup {
		// Replay of an RTS whose message already completed (a delayed
		// duplicate from the failover path): matching it against a
		// fresh receive would hang that receive forever — the sender
		// ignores the CTS of a rendezvous it already finished.
		e.mu.Unlock()
		return
	}
	if pa := e.partials[h.MsgID]; pa != nil && pa.rdv && pa.from == from {
		// Already matched: the first CTS (or the rail it used) was
		// lost. Answer again on the replay's rail, which the sender
		// chose among its survivors.
		pa.ctsRail = rail
		e.mu.Unlock()
		e.sendCTS(from, rail, h.Tag, h.MsgID)
		return
	}
	for _, qd := range e.rdvQueued[k] {
		if qd.msgID == h.MsgID {
			qd.rail = rail // still unmatched: just note the fresher rail
			e.mu.Unlock()
			return
		}
	}
	if q := e.recvs[k]; len(q) > 0 {
		req := q[0]
		e.recvs[k] = q[1:]
		empty, err := e.attachRdv(req, h.MsgID, int(h.TotalLen), rail)
		e.mu.Unlock()
		if err != nil {
			req.complete(0, err)
			return
		}
		if empty {
			req.complete(0, nil)
		}
		e.sendCTS(from, rail, h.Tag, h.MsgID)
		return
	}
	e.rdvQueued[k] = append(e.rdvQueued[k],
		&queuedRTS{msgID: h.MsgID, total: int(h.TotalLen), rail: rail, from: from})
	e.mu.Unlock()
}

// deliverTo copies a complete payload into the request's buffer and
// completes it.
func (e *Engine) deliverTo(req *RecvRequest, msgID uint64, data []byte) {
	if len(data) > len(req.Buf) {
		req.complete(0, fmt.Errorf("core: message of %d bytes exceeds receive buffer %d", len(data), len(req.Buf)))
		return
	}
	copy(req.Buf, data)
	e.trace(trace.Delivered, msgID, -1, len(data), "")
	req.complete(len(data), nil)
}
