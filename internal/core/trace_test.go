package core

import (
	"testing"

	"repro/internal/rt"
	"repro/internal/trace"
)

// traced builds a two-node pair with tracing enabled.
func traced(t *testing.T, cfg Config) (*rt.SimEnv, [2]*Engine, *trace.Collector) {
	t.Helper()
	col := trace.NewCollector()
	cfg.Tracer = col
	env, eng := pair(t, cfg)
	return env, eng, col
}

// An eager send produces submit → eager-sent → delivered → completed, in
// that time order.
func TestTraceEagerTimeline(t *testing.T) {
	env, eng, col := traced(t, Config{})
	env.Go("app", func(ctx rt.Ctx) {
		rr := eng[1].Irecv(0, 1, make([]byte, 16))
		sr := eng[0].Isend(1, 1, []byte("traced"))
		rr.Wait(ctx)
		sr.Wait(ctx)
	})
	env.Run()
	tl := col.ByMsg(1)
	var kinds []trace.Kind
	for _, e := range tl {
		kinds = append(kinds, e.Kind)
	}
	want := map[trace.Kind]bool{
		trace.Submit: false, trace.EagerSent: false,
		trace.Delivered: false, trace.Completed: false,
	}
	for _, k := range kinds {
		if _, ok := want[k]; ok {
			want[k] = true
		}
	}
	for k, seen := range want {
		if !seen {
			t.Errorf("timeline missing %v: %v", k, kinds)
		}
	}
	// Submission precedes emission precedes delivery.
	at := func(k trace.Kind) int {
		for i, e := range tl {
			if e.Kind == k {
				return i
			}
		}
		return -1
	}
	if !(at(trace.Submit) < at(trace.EagerSent) && at(trace.EagerSent) <= at(trace.Delivered)) {
		t.Fatalf("timeline misordered: %v", tl)
	}
}

// A rendezvous produces the full handshake trail with one chunk per rail.
func TestTraceRendezvousTimeline(t *testing.T) {
	env, eng, col := traced(t, Config{})
	n := 4 << 20
	env.Go("app", func(ctx rt.Ctx) {
		rr := eng[1].Irecv(0, 1, make([]byte, n))
		eng[0].Isend(1, 1, make([]byte, n))
		rr.Wait(ctx)
	})
	env.Run()
	if got := len(col.Of(trace.RTSSent)); got != 1 {
		t.Fatalf("%d RTS events", got)
	}
	if got := len(col.Of(trace.CTSSent)); got != 1 {
		t.Fatalf("%d CTS events", got)
	}
	chunks := col.Of(trace.ChunkPosted)
	if len(chunks) != 2 {
		t.Fatalf("%d chunks traced", len(chunks))
	}
	rails := map[int]bool{}
	total := 0
	for _, c := range chunks {
		rails[c.Rail] = true
		total += c.Size
	}
	if len(rails) != 2 || total != n {
		t.Fatalf("chunk trace inconsistent: rails=%v total=%d", rails, total)
	}
	// The decision event carries the splitter name.
	decs := col.Of(trace.Decision)
	if len(decs) != 1 || decs[0].Note == "" {
		t.Fatalf("decision events: %v", decs)
	}
	// Handshake ordering: RTS before CTS before chunks.
	rts := col.Of(trace.RTSSent)[0].At
	cts := col.Of(trace.CTSSent)[0].At
	if !(rts < cts && cts <= chunks[0].At) {
		t.Fatal("handshake misordered")
	}
}

// The parallel eager path traces one offload event per chunk.
func TestTraceOffloadEvents(t *testing.T) {
	env, eng, col := traced(t, Config{EagerParallel: true})
	env.Go("app", func(ctx rt.Ctx) {
		rr := eng[1].Irecv(0, 1, make([]byte, 16<<10))
		eng[0].Isend(1, 1, make([]byte, 16<<10))
		rr.Wait(ctx)
	})
	env.Run()
	offloads := col.Of(trace.OffloadStart)
	if len(offloads) != 2 {
		t.Fatalf("%d offload events, want 2 (one per rail)", len(offloads))
	}
}

// Tracing off means zero overhead paths: no events, no panics.
func TestNoTracerNoEvents(t *testing.T) {
	env, eng := pair(t, Config{})
	env.Go("app", func(ctx rt.Ctx) {
		rr := eng[1].Irecv(0, 1, make([]byte, 16))
		eng[0].Isend(1, 1, []byte("x"))
		rr.Wait(ctx)
	})
	env.Run()
}
