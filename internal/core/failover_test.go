package core

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/model"
	"repro/internal/rt"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// chaosPair builds a two-node simulated testbed, returning the cluster
// so tests can inject rail faults in virtual time.
func chaosPair(t *testing.T, cfg Config) (*rt.SimEnv, *simnet.Cluster, [2]*Engine) {
	t.Helper()
	env := rt.NewSim()
	c, err := simnet.New(env, simnet.Config{
		Nodes: 2, Rails: model.PaperTestbed(), CoresPerNode: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	profs := paperProfiles(t)
	var engines [2]*Engine
	for i := 0; i < 2; i++ {
		engines[i], err = NewEngine(env, c.Nodes[i], profs, cfg)
		if err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(env.Close)
	return env, c, engines
}

// The chaos scenario of the subsystem: a rail dies in the middle of a
// large striped rendezvous. The chunks lost on the dead rail are
// re-planned onto the survivor and the message completes byte-identical,
// deterministically in virtual time.
func TestChaosRailDiesMidRendezvous(t *testing.T) {
	env, c, eng := chaosPair(t, Config{})
	n := 4 << 20
	payload := make([]byte, n)
	rand.New(rand.NewSource(7)).Read(payload)
	buf := make([]byte, n)
	// A 4 MB hetero-split transfer takes ~2ms of virtual time; kill the
	// fast rail mid-DMA.
	c.FailRail(0, 0, 500*time.Microsecond)
	var got int
	var rerr error
	env.Go("app", func(ctx rt.Ctx) {
		rr := eng[1].Irecv(0, 9, buf)
		sr := eng[0].Isend(1, 9, payload)
		got, rerr = rr.Wait(ctx)
		sr.Wait(ctx)
		sr.RemoteDone().Wait(ctx) // every unit acknowledged despite the loss
	})
	env.Run()
	if rerr != nil || got != n {
		t.Fatalf("recv n=%d err=%v", got, rerr)
	}
	if !bytes.Equal(buf, payload) {
		t.Fatal("payload corrupted across the failover")
	}
	st := eng[0].Stats()
	if st.FailedOver == 0 {
		t.Fatalf("no units failed over: %+v", st)
	}
	if out := eng[0].OutstandingUnits(); out != 0 {
		t.Fatalf("%d units still outstanding after RemoteDone", out)
	}
	if b := c.Nodes[0].Rail(1).Stats().Bytes; b == 0 {
		t.Fatal("surviving rail moved no bytes")
	}
	if c.Nodes[0].Rail(0).State() != fabric.RailDown {
		t.Fatalf("failed rail state %v", c.Nodes[0].Rail(0).State())
	}
}

// An eager container lost on a dying rail is replayed on a survivor:
// the receiver eventually matches it although the original frame never
// arrived.
func TestEagerContainerFailsOver(t *testing.T) {
	env, c, eng := chaosPair(t, Config{})
	req := &SendRequest{To: 1, Tag: 5, Data: []byte("failover"),
		done: env.NewEvent(), acked: env.NewEvent()}
	cid := eng[0].newID()
	frame := wire.EncodeEagerID(0, cid, 0, []wire.Packet{{Tag: 5, MsgID: cid, Payload: req.Data}})
	// The container is registered as in flight on rail 0 but its frame
	// is "lost": the rail dies before it was ever delivered.
	eng[0].registerContainer(cid, 1, 0, frame, []*SendRequest{req})
	c.FailRail(0, 0, 10*time.Microsecond)
	buf := make([]byte, 16)
	var got int
	env.Go("app", func(ctx rt.Ctx) {
		rr := eng[1].Irecv(0, 5, buf)
		got, _ = rr.Wait(ctx)
		req.RemoteDone().Wait(ctx)
	})
	env.Run()
	if got != len(req.Data) || string(buf[:got]) != "failover" {
		t.Fatalf("recv %q (%d bytes)", buf[:got], got)
	}
	if st := eng[0].Stats(); st.FailedOver == 0 {
		t.Fatalf("container not failed over: %+v", st)
	}
}

// A duplicated eager container (rail died after delivery, before the
// ack crossed) delivers its packets exactly once.
func TestDuplicateEagerContainerIgnored(t *testing.T) {
	env, _, eng := chaosPair(t, Config{})
	frame := wire.EncodeEagerID(0, 0xC1D, 0, []wire.Packet{{Tag: 3, MsgID: 0xC1D, Payload: []byte("once")}})
	env.Go("app", func(ctx rt.Ctx) {
		rr := eng[1].Irecv(0, 3, make([]byte, 8))
		eng[1].node.RecvQ().Push(&fabric.Delivery{From: 0, Rail: 0, Data: frame})
		eng[1].node.RecvQ().Push(&fabric.Delivery{From: 0, Rail: 0, Data: frame}) // replay
		if n, err := rr.Wait(ctx); err != nil || n != 4 {
			t.Errorf("first delivery n=%d err=%v", n, err)
		}
		ctx.Sleep(time.Millisecond)
	})
	env.Run()
	if st := eng[1].Stats(); st.Unexpected != 0 {
		t.Fatalf("replayed container delivered twice: %+v", st)
	}
}

// An RTS whose rail dies before the receiver posts its buffer is
// replayed on a survivor; the receiver answers the duplicate
// idempotently and the rendezvous completes over the surviving rail.
func TestRTSReplayedWhenRailDies(t *testing.T) {
	env, c, eng := chaosPair(t, Config{})
	n := 1 << 20
	payload := make([]byte, n)
	rand.New(rand.NewSource(13)).Read(payload)
	buf := make([]byte, n)
	c.FailRail(0, 0, 500*time.Microsecond)
	var got int
	var rerr error
	env.Go("sender", func(ctx rt.Ctx) {
		sr := eng[0].Isend(1, 4, payload)
		sr.Wait(ctx)
	})
	env.Go("receiver", func(ctx rt.Ctx) {
		ctx.Sleep(time.Millisecond) // RTS arrives and parks; then its rail dies
		rr := eng[1].Irecv(0, 4, buf)
		got, rerr = rr.Wait(ctx)
	})
	env.Run()
	if rerr != nil || got != n {
		t.Fatalf("recv n=%d err=%v", got, rerr)
	}
	if !bytes.Equal(buf, payload) {
		t.Fatal("payload corrupted")
	}
}
