package core

import (
	"repro/internal/fabric"
	"repro/internal/telemetry"
)

// This file derives the eager/rendezvous threshold from live telemetry.
//
// Statically the threshold is the crossover of two sampled curves — the
// eager (PIO) regime and the rendezvous (handshake + DMA) regime — and
// it freezes at start-up. Under adaptive telemetry the engine re-derives
// it per (peer, rail) from the per-path observation planes the tracker
// keeps: eager-container times warm the eager curve away from its
// sampled prior, whole single-rail rendezvous times warm the rendezvous
// curve, and the crossover of the two *blended* curves is the live
// threshold. Cold planes reproduce the priors, so with no traffic the
// derived threshold matches the sampled one; when one regime degrades —
// a congested rail stretches copies much more than handshakes — the
// crossover moves and the protocol choice follows the wire, not the
// launch-time table.

// thrEntry caches one peer's derived threshold for an (epoch, rail-set)
// regime; either moving invalidates it.
type thrEntry struct {
	epoch  uint64
	upMask uint64
	thr    int
}

// upMask snapshots which rails are currently Up (bounded at 64 rails —
// far beyond any configuration here; rails past that only invalidate
// slightly more often).
func (e *Engine) upMask() uint64 {
	var m uint64
	for r := 0; r < e.node.NumRails() && r < 64; r++ {
		if e.node.Rail(r).State() == fabric.RailUp {
			m |= 1 << uint(r)
		}
	}
	return m
}

// EagerThresholdTo returns the size up to which the engine prefers the
// eager path for traffic to `peer`: with adaptive telemetry the live
// derived per-(peer, rail) crossover over the usable rails, otherwise
// the static usable-rail maximum. Exported for diagnostics and tests
// (multirail.Cluster.EagerThreshold).
func (e *Engine) EagerThresholdTo(peer int) int {
	if e.tele == nil || peer < 0 || peer >= len(e.thrLive) {
		return e.eagerThreshold()
	}
	epoch, mask := e.tele.Epoch(), e.upMask()
	if ent := e.thrLive[peer].Load(); ent != nil && ent.epoch == epoch && ent.upMask == mask {
		return ent.thr
	}
	thr := e.deriveThreshold(peer, mask)
	// Re-read the epoch: deriveThreshold may have bumped it on a bucket
	// crossing, and caching under the pre-bump epoch would only cost one
	// extra (idempotent) recompute.
	e.thrLive[peer].Store(&thrEntry{epoch: e.tele.Epoch(), upMask: mask, thr: thr})
	return thr
}

// deriveThreshold computes the live threshold towards one peer: the
// maximum over usable rails of the per-(peer, rail) crossover. Whenever
// a rail's derived crossover moves into a different size bucket, the
// telemetry epoch is bumped: cached plans were computed against the old
// eager/rendezvous split of traffic, and must be re-planned (the
// ROADMAP's "telemetry-driven eager threshold" item).
func (e *Engine) deriveThreshold(peer int, mask uint64) int {
	nr := e.node.NumRails()
	thr, usable := 0, false
	for r := 0; r < nr; r++ {
		lt := e.liveThreshold(peer, r)
		slot := &e.thrBucket[peer*nr+r]
		if nb := int32(telemetry.SizeBucket(lt)); slot.Load() != nb {
			if old := slot.Swap(nb); old >= 0 && old != nb {
				e.tele.BumpEpoch()
			}
		}
		if mask&(1<<uint(r)) == 0 {
			continue
		}
		usable = true
		if lt > thr {
			thr = lt
		}
	}
	if !usable {
		return e.eagerThreshold()
	}
	return thr
}

// liveThreshold derives one (peer, rail) eager/rendezvous crossover
// from the blended per-path estimators, mirroring what
// sampling.RailProfile.Threshold does over the static tables: the
// smallest size at which the rendezvous estimate beats the eager one,
// found by a power-of-two scan refined by bisection, capped at the
// rail's eager limit.
func (e *Engine) liveThreshold(peer, rail int) int {
	prof := e.profiles[rail]
	if prof.Eager == nil {
		return 0 // the rail has no eager path at all
	}
	limit := prof.EagerMax
	if limit == 0 {
		limit = prof.Eager.MaxSize()
	}
	if limit < 1 {
		return 0
	}
	eag := e.tele.PathEstimator(telemetry.PathEager, peer, rail, prof.Eager)
	rdv := e.tele.PathEstimator(telemetry.PathRdv, peer, rail, prof.Rdv)
	lo, hi := 0, 0
	for s := 1; ; s *= 2 {
		if s > limit {
			s = limit
		}
		if rdv.Estimate(s) < eag.Estimate(s) {
			hi = s
			break
		}
		if s == limit {
			return limit // eager wins everywhere it is allowed
		}
		lo = s
	}
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if rdv.Estimate(mid) < eag.Estimate(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}
