package core

import (
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Stage-latency attribution: each stage is the duration between two
// adjacent trace events of one message's life on the sender —
// submit→decision (queueing before the strategy ran), decision→enqueue
// (encoding and handing frames to the transport), wire→acked (the ack
// round trip of one transfer unit), and the two end-to-end sums,
// submit→completed (local: buffer reusable) and submit→acked (remote:
// nothing can be lost anymore). The cross-node wire→delivered leg is
// not derivable on one node — cmd/nmtrace computes it from stitched
// spans.
const (
	stageSubmitDecision = iota
	stageDecisionEnqueue
	stageWireAcked
	stageSubmitCompleted
	stageSubmitAcked
	numStages
)

var stageNames = [numStages]string{
	"submit_decision", "decision_enqueue", "wire_acked",
	"submit_completed", "submit_acked",
}

// observeStage feeds one stage histogram (no-op without a registry, or
// for the non-positive durations a zero anchor would produce).
func (e *Engine) observeStage(stage int, d time.Duration) {
	if h := e.histStage[stage]; h != nil && d > 0 {
		h.Observe(d)
	}
}

// initMetrics registers the engine's families with the cluster registry.
// Everything already counted by an existing atomic is exported as a func
// instrument read at scrape time — the hot paths pay nothing for being
// observable. The only owned instruments are the two latency histograms,
// whose Observe calls are lock-free and allocation-free (the metrics
// package's own AllocsPerRun ratchet covers them; the engine's eager
// round-trip alloc ceiling holds with a registry installed — see
// alloc_test.go).
func (e *Engine) initMetrics(reg *metrics.Registry) {
	node := strconv.Itoa(e.node.ID())

	for _, c := range []struct {
		kind string
		v    *atomic.Uint64
	}{
		{"eager_sent", &e.stats.eagerSent},
		{"eager_aggregated", &e.stats.eagerAggregated},
		{"eager_parallel", &e.stats.eagerParallel},
		{"rdv_sent", &e.stats.rdvSent},
		{"chunks_sent", &e.stats.chunksSent},
		{"unexpected", &e.stats.unexpected},
		{"failed_over", &e.stats.failedOver},
	} {
		reg.CounterFunc("nm_engine_events_total",
			"Engine activity by kind (containers, rendezvous, chunks, failovers).",
			c.v.Load, metrics.L("node", node, "kind", c.kind)...)
	}
	reg.CounterFunc("nm_engine_bytes_sent_total",
		"Payload bytes handed to the fabric.",
		e.stats.bytesSent.Load, metrics.L("node", node)...)

	e.histEager = reg.Histogram("nm_eager_latency_seconds",
		"Eager container ack round-trip time.",
		metrics.DefBuckets(), metrics.L("node", node)...)
	e.histRdv = reg.Histogram("nm_rdv_latency_seconds",
		"Whole-rendezvous time, RTS to last ack.",
		metrics.DefBuckets(), metrics.L("node", node)...)
	for s := 0; s < numStages; s++ {
		e.histStage[s] = reg.Histogram("nm_stage_latency_seconds",
			"Per-message stage durations (adjacent trace-event pairs).",
			metrics.DefBuckets(), metrics.L("node", node, "stage", stageNames[s])...)
	}

	if cache := e.cache; cache != nil {
		for i := 0; i < cache.NumShards(); i++ {
			i := i
			shard := strconv.Itoa(i)
			reg.CounterFunc("nm_plan_cache_hits_total",
				"Plan-cache lookups served from the cache, per stripe.",
				func() uint64 { return cache.ShardStats(i).Hits },
				metrics.L("node", node, "shard", shard)...)
			reg.CounterFunc("nm_plan_cache_misses_total",
				"Plan-cache lookups that re-planned, per stripe.",
				func() uint64 { return cache.ShardStats(i).Misses },
				metrics.L("node", node, "shard", shard)...)
			reg.CounterFunc("nm_plan_cache_evictions_total",
				"Plans dropped by the FIFO capacity policy, per stripe.",
				func() uint64 { return cache.ShardStats(i).Evictions },
				metrics.L("node", node, "shard", shard)...)
		}
		reg.GaugeFunc("nm_plan_cache_entries",
			"Cached plans currently held (stale epochs included).",
			func() float64 { return float64(cache.Stats().Entries) },
			metrics.L("node", node)...)
	}

	if tele := e.tele; tele != nil {
		reg.CounterFunc("nm_telemetry_observations_total",
			"Transfer observations folded into the estimators.",
			func() uint64 { return tele.Stats().Observations },
			metrics.L("node", node)...)
		reg.CounterFunc("nm_telemetry_refits_total",
			"Estimator refits triggered by drift or warm-up.",
			func() uint64 { return tele.Stats().Refits },
			metrics.L("node", node)...)
		reg.GaugeFunc("nm_telemetry_epoch",
			"Current estimate epoch (bumps invalidate cached plans).",
			func() float64 { return float64(tele.Epoch()) },
			metrics.L("node", node)...)
		for peer := 0; peer < tele.Peers(); peer++ {
			if peer == e.node.ID() {
				continue
			}
			for rail := 0; rail < tele.Rails(); rail++ {
				peer, rail := peer, rail
				lbl := metrics.L("node", node, "peer", strconv.Itoa(peer), "rail", strconv.Itoa(rail))
				reg.GaugeFunc("nm_rail_est_latency_seconds",
					"Fitted per-transfer latency (alpha of the alpha+beta*n model).",
					func() float64 {
						return tele.FittedCoeffs(peer, rail).Alpha.Seconds()
					}, lbl...)
				reg.GaugeFunc("nm_rail_est_bandwidth_bytes_per_second",
					"Fitted bandwidth (1/beta of the alpha+beta*n model); 0 before warm-up.",
					func() float64 {
						if beta := tele.FittedCoeffs(peer, rail).BetaNSPerByte; beta > 0 {
							return 1e9 / beta
						}
						return 0
					}, lbl...)
			}
		}
	}
}
