// Package figures regenerates every evaluation figure of the paper as a
// data table: Fig 3 (greedy balancing vs aggregation), Fig 8 (message
// splitting bandwidth), Fig 9 (small-message splitting latency,
// estimation per equation (1)), and the Fig 2 NIC-selection decision,
// plus the ablations called out in DESIGN.md. Each generator builds its
// own deterministic simulated testbed, so tables are reproducible
// bit-for-bit.
package figures

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/model"
	"repro/internal/sampling"
	"repro/internal/stats"
	"repro/internal/strategy"
	"repro/internal/workload"
	"repro/multirail"
)

// Table is one regenerated figure: labelled series over a common x axis.
type Table struct {
	Name   string
	Title  string
	XLabel string
	YLabel string
	Series []stats.Series
}

// WriteTo renders an aligned text table (x in the first column).
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s\n", t.Name, t.Title)
	fmt.Fprintf(&b, "%-12s", t.XLabel)
	for _, s := range t.Series {
		fmt.Fprintf(&b, " %24s", s.Name)
	}
	fmt.Fprintf(&b, "    (%s)\n", t.YLabel)
	if len(t.Series) > 0 {
		for i, p := range t.Series[0].Points {
			fmt.Fprintf(&b, "%-12s", stats.SizeLabel(int(p.X)))
			for _, s := range t.Series {
				y := s.Points[i].Y
				fmt.Fprintf(&b, " %24.2f", y)
			}
			b.WriteByte('\n')
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// WriteDat renders gnuplot-style columns (x y1 y2 ...).
func (t *Table) WriteDat(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s\n# x=%s y=%s\n# columns: size", t.Name, t.Title, t.XLabel, t.YLabel)
	for _, s := range t.Series {
		fmt.Fprintf(&b, " %q", s.Name)
	}
	b.WriteByte('\n')
	if len(t.Series) > 0 {
		for i, p := range t.Series[0].Points {
			fmt.Fprintf(&b, "%d", int(p.X))
			for _, s := range t.Series {
				fmt.Fprintf(&b, " %g", s.Points[i].Y)
			}
			b.WriteByte('\n')
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

const iters = 3 // deterministic simulator: a few repetitions suffice

// newCluster builds a deterministic testbed cluster or panics (figure
// generation is all-or-nothing).
func newCluster(cfg multirail.Config) *multirail.Cluster {
	c, err := multirail.New(cfg)
	if err != nil {
		panic(fmt.Sprintf("figures: %v", err))
	}
	return c
}

// med returns the median of a duration series in microseconds.
func med(ts []time.Duration) float64 {
	fs := make([]float64, len(ts))
	for i, t := range ts {
		fs[i] = float64(t)
	}
	return stats.Percentile(fs, 50) / 1e3
}

// Fig3 regenerates "Performance of the greedy balancing strategy":
// transfer time of two eager segments, either aggregated over a single
// network or dynamically balanced over both, for total sizes 4 B–16 KB.
func Fig3() *Table {
	sizes := stats.PowersOfTwo(4, 16<<10)
	t := &Table{
		Name:   "fig3",
		Title:  "Performance of the greedy balancing strategy",
		XLabel: "total size",
		YLabel: "transfer time µs",
		Series: []stats.Series{
			{Name: "agg/Myri-10G"},
			{Name: "agg/Quadrics"},
			{Name: "balanced"},
		},
	}
	myri := newCluster(multirail.Config{Rails: []*multirail.Profile{multirail.Myri10G()}})
	defer myri.Close()
	quad := newCluster(multirail.Config{Rails: []*multirail.Profile{multirail.QsNetII()}})
	defer quad.Close()
	greedy := newCluster(multirail.Config{GreedyEager: true})
	defer greedy.Close()
	for _, n := range sizes {
		t.Series[0].Add(float64(n), med(workload.TwoPacketBatch(myri, n, iters)))
		t.Series[1].Add(float64(n), med(workload.TwoPacketBatch(quad, n, iters)))
		t.Series[2].Add(float64(n), med(workload.TwoPacketBatch(greedy, n, iters)))
	}
	return t
}

// Fig8 regenerates "Message splitting - Bandwidth": ping-pong bandwidth
// for 32 KB–8 MB messages over each rail alone, the iso split and the
// sampling-based hetero split.
func Fig8() *Table {
	sizes := stats.PowersOfTwo(32<<10, 8<<20)
	t := &Table{
		Name:   "fig8",
		Title:  "Message splitting - Bandwidth",
		XLabel: "message size",
		YLabel: "bandwidth MB/s",
		Series: []stats.Series{
			{Name: "Myri-10G"},
			{Name: "Quadrics"},
			{Name: "Iso-split"},
			{Name: "Hetero-split"},
		},
	}
	clusters := []*multirail.Cluster{
		newCluster(multirail.Config{Rails: []*multirail.Profile{multirail.Myri10G()}}),
		newCluster(multirail.Config{Rails: []*multirail.Profile{multirail.QsNetII()}}),
		newCluster(multirail.Config{Splitter: multirail.IsoSplit()}),
		newCluster(multirail.Config{Splitter: multirail.HeteroSplit()}),
	}
	for _, c := range clusters {
		defer c.Close()
	}
	for _, n := range sizes {
		for i, c := range clusters {
			oneway := time.Duration(med(workload.OneWay(c, 0, 1, n, iters)) * 1e3)
			t.Series[i].Add(float64(n), workload.Bandwidth(n, oneway))
		}
	}
	return t
}

// Fig9 regenerates "Splitting small messages - Latency": the measured
// per-rail latencies and the hetero-split estimation of equation (1),
// T(size) = T_O + max(T_D(size·ratio, N1), T_D(size·(1−ratio), N2)),
// with the ratio from the sampling-based dichotomy and T_O = 3 µs. A
// fourth series cross-validates the estimation by actually running the
// engine's multicore parallel path.
func Fig9() *Table {
	sizes := stats.PowersOfTwo(4, 64<<10)
	t := &Table{
		Name:   "fig9",
		Title:  "Splitting small messages - Latency",
		XLabel: "message size",
		YLabel: "latency µs",
		Series: []stats.Series{
			{Name: "Myri-10G"},
			{Name: "Quadrics"},
			{Name: "Hetero-split (estimation)"},
			{Name: "Hetero-split (engine)"},
		},
	}
	myri := newCluster(multirail.Config{Rails: []*multirail.Profile{multirail.Myri10G()}})
	defer myri.Close()
	quad := newCluster(multirail.Config{Rails: []*multirail.Profile{multirail.QsNetII()}})
	defer quad.Close()
	// Two progression workers let the striped chunks be received in
	// parallel — the multithreaded receive side the estimation assumes.
	engine := newCluster(multirail.Config{EagerParallel: true, RecvWorkers: 2})
	defer engine.Close()

	profs, err := sampling.SampleProfiles(model.PaperTestbed(), sampling.Config{MinSize: 4, MaxSize: 8 << 20})
	if err != nil {
		panic(err)
	}
	rails := []strategy.RailView{
		{Index: 0, Est: profs[0], EagerMax: profs[0].EagerMax},
		{Index: 1, Est: profs[1], EagerMax: profs[1].EagerMax},
	}
	for _, n := range sizes {
		t.Series[0].Add(float64(n), med(workload.OneWay(myri, 0, 1, n, iters)))
		t.Series[1].Add(float64(n), med(workload.OneWay(quad, 0, 1, n, iters)))
		t.Series[2].Add(float64(n), equation1(n, rails)/1e3)
		t.Series[3].Add(float64(n), med(workload.OneWay(engine, 0, 1, n, iters)))
	}
	return t
}

// equation1 evaluates the paper's equation (1) in nanoseconds.
func equation1(n int, rails []strategy.RailView) float64 {
	ratio := strategy.SplitRatioDichotomy(n, 0, rails[0], rails[1], 50)
	na := int(ratio * float64(n))
	ta := rails[0].Est.Estimate(na)
	tb := rails[1].Est.Estimate(n - na)
	worst := ta
	if tb > worst {
		worst = tb
	}
	return float64(model.OffloadSyncCost + worst)
}

// Fig2Decision demonstrates the prediction-driven NIC selection of Fig 2:
// with one rail busy, the strategy compares "wait for the busy NIC" with
// "use the idle one" and reports its choices.
func Fig2Decision() string {
	profs, err := sampling.SampleProfiles(model.PaperTestbed(), sampling.Config{MinSize: 4, MaxSize: 8 << 20})
	if err != nil {
		panic(err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# fig2 — Using predictions to select NICs\n")
	fmt.Fprintf(&b, "# message: 1 MB; Myri-10G busy for the stated horizon; QsNetII idle\n")
	fmt.Fprintf(&b, "%-14s %-22s %-14s %-14s %s\n",
		"busy-horizon", "decision", "myri-share", "quad-share", "predicted-µs")
	n := 1 << 20
	for _, busy := range []time.Duration{0, 200 * time.Microsecond, 500 * time.Microsecond,
		800 * time.Microsecond, 1200 * time.Microsecond, 5 * time.Millisecond} {
		rails := []strategy.RailView{
			{Index: 0, Est: profs[0], IdleAt: busy, EagerMax: profs[0].EagerMax},
			{Index: 1, Est: profs[1], IdleAt: 0, EagerMax: profs[1].EagerMax},
		}
		chunks := strategy.HeteroSplit{}.Split(n, 0, rails)
		var m, q int
		for _, c := range chunks {
			if c.Rail == 0 {
				m += c.Size
			} else {
				q += c.Size
			}
		}
		decision := "split both rails"
		switch {
		case m == 0:
			decision = "discard busy Myri"
		case q == 0:
			decision = "wait for busy Myri"
		}
		pred := strategy.PredictedCompletion(0, rails, chunks)
		fmt.Fprintf(&b, "%-14v %-22s %-14d %-14d %.1f\n",
			busy, decision, m, q, pred.Seconds()*1e6)
	}
	return b.String()
}

// AblationFixedRatio reproduces the §II-A criticism of OpenMPI-style
// fixed ratios: a ratio computed at 8 MB applied across sizes versus the
// sampling-based split (predicted completion, µs).
func AblationFixedRatio() *Table {
	profs, err := sampling.SampleProfiles(model.PaperTestbed(), sampling.Config{MinSize: 4, MaxSize: 8 << 20})
	if err != nil {
		panic(err)
	}
	rails := []strategy.RailView{
		{Index: 0, Est: profs[0], EagerMax: profs[0].EagerMax},
		{Index: 1, Est: profs[1], EagerMax: profs[1].EagerMax},
	}
	fixed := strategy.NewRatioSplit(8<<20, rails)
	hetero := strategy.HeteroSplit{}
	t := &Table{
		Name:   "ablation-fixed-ratio",
		Title:  "Fixed 8MB ratio vs sampling-based split (predicted completion)",
		XLabel: "message size",
		YLabel: "predicted µs",
		Series: []stats.Series{{Name: "fixed-ratio@8M"}, {Name: "hetero-split"}, {Name: "penalty %"}},
	}
	for _, n := range stats.PowersOfTwo(32<<10, 8<<20) {
		fc := fixed.Split(n, 0, rails)
		hc := hetero.Split(n, 0, rails)
		ft := strategy.PredictedCompletion(0, rails, fc).Seconds() * 1e6
		ht := strategy.PredictedCompletion(0, rails, hc).Seconds() * 1e6
		t.Series[0].Add(float64(n), ft)
		t.Series[1].Add(float64(n), ht)
		t.Series[2].Add(float64(n), (ft/ht-1)*100)
	}
	return t
}

// AblationOffloadCost sweeps the offload synchronisation cost T_O
// (0/3/6/12 µs) through equation (1) to show how the crossover point of
// Fig 9 moves — the paper's argument that the preliminary implementation
// (6 µs preemptions) must be optimised.
func AblationOffloadCost() *Table {
	profs, err := sampling.SampleProfiles(model.PaperTestbed(), sampling.Config{MinSize: 4, MaxSize: 8 << 20})
	if err != nil {
		panic(err)
	}
	rails := []strategy.RailView{
		{Index: 0, Est: profs[0], EagerMax: profs[0].EagerMax},
		{Index: 1, Est: profs[1], EagerMax: profs[1].EagerMax},
	}
	costs := []time.Duration{0, model.OffloadSyncCost, model.OffloadPreemptCost, 12 * time.Microsecond}
	t := &Table{
		Name:   "ablation-offload-cost",
		Title:  "Equation (1) latency under varying offload cost T_O",
		XLabel: "message size",
		YLabel: "latency µs",
	}
	t.Series = append(t.Series, stats.Series{Name: "best-single"})
	for _, c := range costs {
		t.Series = append(t.Series, stats.Series{Name: fmt.Sprintf("split T_O=%v", c)})
	}
	for _, n := range stats.PowersOfTwo(4, 64<<10) {
		single := rails[0].Est.Estimate(n)
		if q := rails[1].Est.Estimate(n); q < single {
			single = q
		}
		t.Series[0].Add(float64(n), float64(single)/1e3)
		ratio := strategy.SplitRatioDichotomy(n, 0, rails[0], rails[1], 50)
		na := int(ratio * float64(n))
		ta := rails[0].Est.Estimate(na)
		if tb := rails[1].Est.Estimate(n - na); tb > ta {
			ta = tb
		}
		for i, c := range costs {
			t.Series[i+1].Add(float64(n), float64(c+ta)/1e3)
		}
	}
	return t
}

// All returns every regenerable table keyed by name.
func All() map[string]*Table {
	return map[string]*Table{
		"fig3":                 Fig3(),
		"fig8":                 Fig8(),
		"fig9":                 Fig9(),
		"ablation-fixed-ratio": AblationFixedRatio(),
		"ablation-offload":     AblationOffloadCost(),
	}
}
