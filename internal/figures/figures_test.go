package figures

import (
	"bytes"
	"math"
	"repro/internal/stats"
	"strings"
	"sync"
	"testing"
)

// Figures are deterministic but not free; generate each once.
var (
	once sync.Once
	f3   *Table
	f8   *Table
	f9   *Table
)

func gen(t *testing.T) (*Table, *Table, *Table) {
	t.Helper()
	once.Do(func() {
		f3 = Fig3()
		f8 = Fig8()
		f9 = Fig9()
	})
	return f3, f8, f9
}

func seriesByName(t *testing.T, tab *Table, name string) map[float64]float64 {
	t.Helper()
	for _, s := range tab.Series {
		if s.Name == name {
			out := make(map[float64]float64, len(s.Points))
			for _, p := range s.Points {
				out[p.X] = p.Y
			}
			return out
		}
	}
	t.Fatalf("series %q not in %s", name, tab.Name)
	return nil
}

func within(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want)/want > tol {
		t.Errorf("%s = %.1f, paper %.1f (tol ±%.0f%%)", what, got, want, tol*100)
	}
}

// Fig 8 shape: the four series peak where the paper says they peak.
func TestFig8PaperPeaks(t *testing.T) {
	_, f8, _ := gen(t)
	myri := seriesByName(t, f8, "Myri-10G")
	quad := seriesByName(t, f8, "Quadrics")
	iso := seriesByName(t, f8, "Iso-split")
	hetero := seriesByName(t, f8, "Hetero-split")
	x := float64(8 << 20)
	within(t, myri[x], 1170, 0.02, "Fig8 Myri-10G peak")
	within(t, quad[x], 837, 0.02, "Fig8 Quadrics peak")
	within(t, iso[x], 1670, 0.02, "Fig8 Iso-split peak")
	within(t, hetero[x], 1987, 0.025, "Fig8 Hetero-split peak")
}

// Fig 8 ordering: hetero > iso > myri > quadrics at every plotted size.
func TestFig8Ordering(t *testing.T) {
	_, f8, _ := gen(t)
	myri := seriesByName(t, f8, "Myri-10G")
	quad := seriesByName(t, f8, "Quadrics")
	iso := seriesByName(t, f8, "Iso-split")
	hetero := seriesByName(t, f8, "Hetero-split")
	for x := range myri {
		if !(hetero[x] > iso[x] && iso[x] > myri[x] && myri[x] > quad[x]) {
			t.Errorf("ordering broken at %v: hetero %.0f iso %.0f myri %.0f quad %.0f",
				x, hetero[x], iso[x], myri[x], quad[x])
		}
	}
}

// Fig 8: the hetero split approaches the theoretical aggregate (~2 GB/s)
// while iso saturates at twice the slower rail.
func TestFig8AggregateApproach(t *testing.T) {
	_, f8, _ := gen(t)
	hetero := seriesByName(t, f8, "Hetero-split")
	myri := seriesByName(t, f8, "Myri-10G")
	quad := seriesByName(t, f8, "Quadrics")
	x := float64(8 << 20)
	agg := 2007.0 // MiB/s, sum of calibrated wire rates
	if hetero[x] < 0.95*agg {
		t.Errorf("hetero peak %.0f below 95%% of aggregate %.0f", hetero[x], agg)
	}
	if sum := myri[x] + quad[x]; hetero[x] > sum {
		t.Errorf("hetero %.0f exceeds rail sum %.0f", hetero[x], sum)
	}
}

// Fig 3 shape: dynamic balancing of two eager segments never beats the
// better aggregated single-rail run, is ~2x worse at 4 B, and the two
// aggregated curves cross (Quadrics wins small, Myri wins large).
func TestFig3Shape(t *testing.T) {
	f3, _, _ := gen(t)
	aggM := seriesByName(t, f3, "agg/Myri-10G")
	aggQ := seriesByName(t, f3, "agg/Quadrics")
	bal := seriesByName(t, f3, "balanced")
	for x := range aggM {
		best := math.Min(aggM[x], aggQ[x])
		if bal[x] < best*0.999 {
			t.Errorf("balanced wins at %v: %.2f vs best agg %.2f", x, bal[x], best)
		}
	}
	if bal[4] < 1.5*aggQ[4] {
		t.Errorf("at 4B balanced %.2fµs should be >1.5x agg/Quadrics %.2fµs", bal[4], aggQ[4])
	}
	if !(aggQ[4] < aggM[4]) {
		t.Error("Quadrics should win the 4B aggregated case (lower latency)")
	}
	if !(aggM[16<<10] < aggQ[16<<10]) {
		t.Error("Myri-10G should win the 16KB aggregated case (higher rate)")
	}
}

// Fig 9 shape: the equation-(1) estimation is counterproductive for
// small messages and saves roughly 30% at 64 KB.
func TestFig9Shape(t *testing.T) {
	_, _, f9 := gen(t)
	myri := seriesByName(t, f9, "Myri-10G")
	quad := seriesByName(t, f9, "Quadrics")
	est := seriesByName(t, f9, "Hetero-split (estimation)")
	best := func(x float64) float64 { return math.Min(myri[x], quad[x]) }
	// Counterproductive below 4KB.
	for _, x := range []float64{4, 64, 1024} {
		if est[x] <= best(x) {
			t.Errorf("estimation wins at %v B (%.2f <= %.2f); paper: splitting small messages is costly", x, est[x], best(x))
		}
	}
	// Around 30% reduction at 64KB.
	x := float64(64 << 10)
	red := 1 - est[x]/best(x)
	if red < 0.20 || red > 0.40 {
		t.Errorf("64KB reduction %.0f%%, paper: up to 30%%", red*100)
	}
	// Crossover between 2KB and 16KB.
	crossed := false
	for _, x := range []float64{2048, 4096, 8192, 16384} {
		if est[x] < best(x) {
			crossed = true
			break
		}
	}
	if !crossed {
		t.Error("estimation never crosses below the single-rail curves in 2K-16K")
	}
}

// Fig 9 cross-validation: the engine's measured multicore path tracks the
// estimation at medium sizes and never loses to it badly.
func TestFig9EngineTracksEstimation(t *testing.T) {
	_, _, f9 := gen(t)
	est := seriesByName(t, f9, "Hetero-split (estimation)")
	eng := seriesByName(t, f9, "Hetero-split (engine)")
	for _, x := range []float64{8 << 10, 16 << 10} {
		if diff := math.Abs(eng[x]-est[x]) / est[x]; diff > 0.20 {
			t.Errorf("engine %.2fµs vs estimation %.2fµs at %v (%.0f%% apart)", eng[x], est[x], x, diff*100)
		}
	}
	// Where splitting is counterproductive the engine falls back to the
	// best single rail, so it must beat the estimation there.
	if eng[4] >= est[4] {
		t.Errorf("engine at 4B (%.2f) should beat the forced-split estimation (%.2f)", eng[4], est[4])
	}
}

func TestFig2DecisionNarrative(t *testing.T) {
	out := Fig2Decision()
	if !strings.Contains(out, "split both rails") {
		t.Error("no idle-rails split decision")
	}
	if !strings.Contains(out, "discard busy Myri") {
		t.Error("no discard decision for a long-busy NIC")
	}
	if !strings.Contains(out, "fig2") {
		t.Error("missing header")
	}
}

func TestAblationFixedRatioPenalty(t *testing.T) {
	tab := AblationFixedRatio()
	pen := seriesByName(t, tab, "penalty %")
	if pen[float64(8<<20)] > 0.5 {
		t.Errorf("penalty at the reference size should vanish, got %.2f%%", pen[float64(8<<20)])
	}
	worst := 0.0
	for _, p := range pen {
		if p > worst {
			worst = p
		}
		if p < -0.2 {
			t.Errorf("fixed ratio beat the sampling split by %.2f%%", -p)
		}
	}
	if worst <= pen[float64(8<<20)] {
		t.Error("no size shows a mis-fit penalty above the reference size's")
	}
}

func TestAblationOffloadCostMovesCrossover(t *testing.T) {
	tab := AblationOffloadCost()
	single := seriesByName(t, tab, "best-single")
	free := seriesByName(t, tab, "split T_O=0s")
	preempt := seriesByName(t, tab, "split T_O=6µs")
	crossAt := func(s map[float64]float64) float64 {
		for _, x := range []float64{4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536} {
			if s[x] < single[x] {
				return x
			}
		}
		return math.Inf(1)
	}
	if !(crossAt(free) < crossAt(preempt)) {
		t.Errorf("crossover should move right with cost: free %v, preempt %v", crossAt(free), crossAt(preempt))
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		Name: "demo", Title: "Demo", XLabel: "size", YLabel: "µs",
	}
	a := stats.Series{Name: "a"}
	a.Add(4, 1.5)
	b := stats.Series{Name: "b"}
	b.Add(4, 2.5)
	tab.Series = append(tab.Series, a, b)
	var txt, dat bytes.Buffer
	if _, err := tab.WriteTo(&txt); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.WriteDat(&dat); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "demo") || !strings.Contains(txt.String(), "1.50") {
		t.Fatalf("text table: %q", txt.String())
	}
	if !strings.Contains(dat.String(), "4 1.5 2.5") {
		t.Fatalf("dat table: %q", dat.String())
	}
}
