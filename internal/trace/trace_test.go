package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func ev(at int, msg uint64, k Kind) Event {
	return Event{At: time.Duration(at) * time.Microsecond, MsgID: msg, Kind: k, Rail: -1}
}

func TestCollectorStoresAndFilters(t *testing.T) {
	c := NewCollector()
	c.Record(ev(3, 1, Delivered))
	c.Record(ev(1, 1, Submit))
	c.Record(ev(2, 2, Submit))
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
	byMsg := c.ByMsg(1)
	if len(byMsg) != 2 || byMsg[0].Kind != Submit || byMsg[1].Kind != Delivered {
		t.Fatalf("ByMsg(1) = %v", byMsg)
	}
	subs := c.Of(Submit)
	if len(subs) != 2 || subs[0].MsgID != 1 {
		t.Fatalf("Of(Submit) = %v", subs)
	}
}

func TestCollectorSnapshotIsolated(t *testing.T) {
	c := NewCollector()
	c.Record(ev(1, 1, Submit))
	snap := c.Events()
	c.Record(ev(2, 1, Delivered))
	if len(snap) != 1 {
		t.Fatal("snapshot grew with later records")
	}
}

func TestDumpOrdersByTime(t *testing.T) {
	c := NewCollector()
	c.Record(ev(5, 1, Delivered))
	c.Record(ev(1, 1, Submit))
	var b strings.Builder
	c.Dump(&b)
	out := b.String()
	if strings.Index(out, "submit") > strings.Index(out, "delivered") {
		t.Fatalf("dump not time-ordered:\n%s", out)
	}
}

func TestKindStrings(t *testing.T) {
	for k := Submit; k <= Completed; k++ {
		if strings.HasPrefix(k.String(), "Kind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Error("unknown kind formatting")
	}
}

func TestEventStringIncludesRail(t *testing.T) {
	e := Event{At: time.Microsecond, Node: 1, MsgID: 7, Kind: ChunkPosted, Rail: 2, Size: 100}
	if !strings.Contains(e.String(), "rail=2") {
		t.Fatalf("missing rail: %s", e.String())
	}
	e.Rail = -1
	if strings.Contains(e.String(), "rail=") {
		t.Fatalf("unexpected rail: %s", e.String())
	}
}

func TestConcurrentRecord(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Record(ev(j, id, Submit))
			}
		}(uint64(i))
	}
	wg.Wait()
	if c.Len() != 800 {
		t.Fatalf("Len = %d, want 800", c.Len())
	}
}
