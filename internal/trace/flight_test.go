package trace

import (
	"encoding/json"
	"sync"
	"testing"
	"time"

	"repro/internal/ratchet"
)

func fev(at time.Duration, node, origin int, msgID uint64, k Kind) Event {
	return Event{At: at, Node: node, Origin: origin, MsgID: msgID, Kind: k, Rail: 0, Size: 8}
}

func TestFlightRecorderRoundTrip(t *testing.T) {
	f := NewFlightRecorder(8)
	for i := 0; i < 5; i++ {
		f.Record(fev(time.Duration(i)*time.Microsecond, 1, 1, uint64(i+1), EagerSent))
	}
	got := f.Snapshot()
	if len(got) != 5 {
		t.Fatalf("snapshot has %d events, want 5", len(got))
	}
	for i, e := range got {
		if e.MsgID != uint64(i+1) || e.Node != 1 || e.Origin != 1 || e.Kind != EagerSent || e.Size != 8 {
			t.Fatalf("event %d round-tripped wrong: %+v", i, e)
		}
		if e.At != time.Duration(i)*time.Microsecond {
			t.Fatalf("event %d timestamp %v, want %v", i, e.At, time.Duration(i)*time.Microsecond)
		}
	}
	if f.Overwritten() != 0 {
		t.Fatalf("overwritten = %d before wrap", f.Overwritten())
	}
}

func TestFlightRecorderWrap(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		f.Record(fev(time.Duration(i), 0, 0, uint64(i+1), Submit))
	}
	got := f.Snapshot()
	if len(got) != 4 {
		t.Fatalf("snapshot has %d events after wrap, want 4", len(got))
	}
	// Oldest retained generation is 6 → msgID 7.
	for i, e := range got {
		if e.MsgID != uint64(7+i) {
			t.Fatalf("event %d msgID %d, want %d (oldest-first after wrap)", i, e.MsgID, 7+i)
		}
	}
	if f.Overwritten() != 6 {
		t.Fatalf("overwritten = %d, want 6", f.Overwritten())
	}
	if f.TotalRecorded() != 10 {
		t.Fatalf("total = %d, want 10", f.TotalRecorded())
	}
}

func TestFlightRecorderNegativeRail(t *testing.T) {
	f := NewFlightRecorder(4)
	f.Record(Event{At: time.Second, Node: 2, Origin: 2, MsgID: 9, Kind: Decision, Rail: -1, Size: 0})
	got := f.Snapshot()
	if len(got) != 1 || got[0].Rail != -1 {
		t.Fatalf("rail -1 did not survive the meta packing: %+v", got)
	}
}

// TestFlightRecorderRecordAllocs is the ISSUE 9 acceptance ratchet:
// the always-on recorder must cost 0 allocs/op or it cannot be
// installed by default next to Counts.
func TestFlightRecorderRecordAllocs(t *testing.T) {
	f := NewFlightRecorder(0)
	e := fev(time.Millisecond, 1, 1, 42, ChunkPosted)
	allocs := testing.AllocsPerRun(1000, func() { f.Record(e) })
	ratchet.Check(t, "trace/flight_record", allocs)
}

func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				f.Record(fev(time.Duration(i), w, w, uint64(i+1), Delivered))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				f.Snapshot() // must never return garbage or race
			}
		}
	}()
	wg.Wait()
	close(done)
	if f.TotalRecorded() != 2000 {
		t.Fatalf("total = %d, want 2000", f.TotalRecorded())
	}
	for _, e := range f.Snapshot() {
		if e.Kind != Delivered || e.MsgID == 0 || e.MsgID > 500 {
			t.Fatalf("torn event escaped the seq protocol: %+v", e)
		}
	}
}

func TestFlightRecorderAnomalies(t *testing.T) {
	f := NewFlightRecorder(8)
	f.Record(fev(time.Millisecond, 0, 0, 1, Submit))
	f.NoteAnomaly(2*time.Millisecond, 0, "rail down")
	f.NoteAnomaly(3*time.Millisecond, 0, "rail down") // within min gap: suppressed
	f.NoteAnomaly(100*time.Millisecond, 0, "rail down")
	f.NoteAnomaly(100*time.Millisecond, 1, "shm ring stall")
	got := f.Anomalies()
	if len(got) != 3 {
		t.Fatalf("kept %d anomalies, want 3 (one rate-limited away)", len(got))
	}
	if f.AnomalyTotal() != 4 {
		t.Fatalf("anomaly total = %d, want 4", f.AnomalyTotal())
	}
	if got[0].Reason != "rail down" || len(got[0].Events) != 1 {
		t.Fatalf("first dump wrong: %+v", got[0])
	}
	// Overflow: newest maxAnomalies win.
	for i := 0; i < 2*maxAnomalies; i++ {
		f.NoteAnomaly(time.Duration(i)*time.Second, 0, "replay")
	}
	got = f.Anomalies()
	if len(got) != maxAnomalies {
		t.Fatalf("kept %d anomalies after overflow, want %d", len(got), maxAnomalies)
	}
	for i := 1; i < len(got); i++ {
		if got[i].At < got[i-1].At {
			t.Fatalf("anomalies not oldest-first: %v then %v", got[i-1].At, got[i].At)
		}
	}
}

func TestCollectorBounded(t *testing.T) {
	c := NewCollectorCap(3)
	for i := 0; i < 5; i++ {
		c.Record(fev(time.Duration(i), 0, 0, uint64(i+1), Submit))
	}
	if c.Len() != 3 {
		t.Fatalf("len = %d, want 3", c.Len())
	}
	if c.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", c.Dropped())
	}
	// 0 means unlimited.
	u := NewCollectorCap(0)
	for i := 0; i < 5; i++ {
		u.Record(fev(time.Duration(i), 0, 0, uint64(i+1), Submit))
	}
	if u.Len() != 5 || u.Dropped() != 0 {
		t.Fatalf("unlimited collector: len=%d dropped=%d", u.Len(), u.Dropped())
	}
}

func TestStitch(t *testing.T) {
	events := []Event{
		fev(4*time.Microsecond, 1, 0, 7, Delivered),                  // receiver, sender 0's msg 7
		fev(1*time.Microsecond, 0, 0, 7, Submit),                     // sender
		fev(2*time.Microsecond, 0, 0, 7, EagerSent),                  // sender
		fev(3*time.Microsecond, 1, 1, 7, Submit),                     // different origin, same msgID
		{At: 5 * time.Microsecond, Node: 0, Kind: RailLost, Rail: 1}, // MsgID 0: skipped
		fev(6*time.Microsecond, 0, 0, 7, Completed),
	}
	spans := Stitch(events)
	if len(spans) != 2 {
		t.Fatalf("stitched %d spans, want 2 (same msgID, different origins)", len(spans))
	}
	s := spans[0]
	if s.Key != (SpanKey{Origin: 0, MsgID: 7}) {
		t.Fatalf("first span key %+v", s.Key)
	}
	if len(s.Events) != 4 {
		t.Fatalf("span has %d events, want 4", len(s.Events))
	}
	for i := 1; i < len(s.Events); i++ {
		if s.Events[i].At < s.Events[i-1].At {
			t.Fatalf("span not time-ordered at %d", i)
		}
	}
	if d, ok := s.First(Delivered); !ok || d.Node != 1 {
		t.Fatalf("receiver event missing from sender's span: %+v ok=%v", d, ok)
	}
	if s.Start() != 1*time.Microsecond || s.End() != 6*time.Microsecond {
		t.Fatalf("span bounds %v..%v", s.Start(), s.End())
	}
}

func TestAlignClocks(t *testing.T) {
	events := []Event{
		fev(10*time.Microsecond, 0, 0, 1, EagerSent),
		fev(2*time.Microsecond, 1, 0, 1, Delivered), // receiver clock behind: impossible ordering
	}
	off := AlignClocks(events)
	if off[1] != 8*time.Microsecond {
		t.Fatalf("node 1 offset %v, want 8µs", off[1])
	}
	if events[1].At != 10*time.Microsecond {
		t.Fatalf("receiver event not shifted: %v", events[1].At)
	}
	// Shared clock: no shift.
	ok := []Event{
		fev(1*time.Microsecond, 0, 0, 2, EagerSent),
		fev(3*time.Microsecond, 1, 0, 2, Delivered),
	}
	if off := AlignClocks(ok); len(off) != 0 {
		t.Fatalf("shared-clock events got offsets: %v", off)
	}
}

func TestExportRoundTripAndPerfetto(t *testing.T) {
	f := NewFlightRecorder(8)
	f.Record(fev(1*time.Microsecond, 0, 0, 3, Submit))
	f.Record(fev(2*time.Microsecond, 0, 0, 3, EagerSent))
	f.Record(fev(3*time.Microsecond, 1, 0, 3, Delivered))
	f.NoteAnomaly(4*time.Microsecond, 0, "test")
	snap := TakeRingSnapshot(f)
	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back RingSnapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Events) != 3 || back.Total != 3 || len(back.Anomalies) != 1 {
		t.Fatalf("snapshot round trip: %+v", back)
	}
	if got := back.Events[2].Event(); got.Kind != Delivered || got.Origin != 0 || got.Node != 1 {
		t.Fatalf("event round trip: %+v", got)
	}

	p := PerfettoJSON(f.Snapshot())
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(p, &doc); err != nil {
		t.Fatalf("perfetto output is not valid JSON: %v", err)
	}
	// One "X" slice for the span plus one "i" instant per event.
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("perfetto has %d entries, want 4", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0]["ph"] != "X" {
		t.Fatalf("first perfetto entry is %v, want the span slice", doc.TraceEvents[0]["ph"])
	}
}
