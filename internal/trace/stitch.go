package trace

import (
	"sort"
	"time"
)

// SpanKey is the cross-node trace id of one message: the node that
// submitted it plus its sender-assigned message id. The wire headers
// carry both, so events recorded on different nodes stitch by equality.
type SpanKey struct {
	Origin int
	MsgID  uint64
}

// Span is one message's stitched timeline: every event recorded about
// it, on any node, time-ordered.
type Span struct {
	Key    SpanKey
	Events []Event
}

// Start returns the span's earliest timestamp.
func (s *Span) Start() time.Duration {
	if len(s.Events) == 0 {
		return 0
	}
	return s.Events[0].At
}

// End returns the span's latest timestamp.
func (s *Span) End() time.Duration {
	if len(s.Events) == 0 {
		return 0
	}
	return s.Events[len(s.Events)-1].At
}

// First returns the earliest event of the given kind, and whether one
// exists.
func (s *Span) First(k Kind) (Event, bool) {
	for _, e := range s.Events {
		if e.Kind == k {
			return e, true
		}
	}
	return Event{}, false
}

// Has reports whether the span contains an event of the given kind.
func (s *Span) Has(k Kind) bool {
	_, ok := s.First(k)
	return ok
}

// Stitch groups events by trace id into per-message spans, each
// time-ordered, the set ordered by span start. Events with MsgID 0
// (rail-level: RailLost, Reconnect) are not message events and are
// skipped.
func Stitch(events []Event) []Span {
	byKey := make(map[SpanKey][]Event)
	for _, e := range events {
		if e.MsgID == 0 {
			continue
		}
		k := SpanKey{Origin: e.Origin, MsgID: e.MsgID}
		byKey[k] = append(byKey[k], e)
	}
	out := make([]Span, 0, len(byKey))
	for k, evs := range byKey {
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
		out = append(out, Span{Key: k, Events: evs})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.Start() != b.Start() {
			return a.Start() < b.Start()
		}
		if a.Key.Origin != b.Key.Origin {
			return a.Key.Origin < b.Key.Origin
		}
		return a.Key.MsgID < b.Key.MsgID
	})
	return out
}

// AlignClocks shifts each node's timestamps so cross-node causality
// holds: when nodes run separate clocks (distributed scrape), a
// receiver's Delivered can read earlier than the sender's EagerSent.
// For every span the send→deliver pair gives a lower bound on the
// receiver clock's offset; the per-node maximum of those bounds is
// added to that node's events. Nodes sharing a clock (one-process
// clusters, the common test shape) need no shift and get none.
// It returns the per-node offsets applied.
func AlignClocks(events []Event) map[int]time.Duration {
	offset := make(map[int]time.Duration)
	for _, s := range Stitch(events) {
		// Skewed clocks are exactly why the deliver event may sort
		// before the send here — find the send first, then compare.
		var sentAt time.Duration = -1
		for _, e := range s.Events {
			if (e.Kind == EagerSent || e.Kind == ChunkPosted) &&
				e.Node == s.Key.Origin && (sentAt < 0 || e.At < sentAt) {
				sentAt = e.At
			}
		}
		if sentAt < 0 {
			continue
		}
		for _, e := range s.Events {
			if e.Kind == Delivered && e.Node != s.Key.Origin && sentAt-e.At > offset[e.Node] {
				offset[e.Node] = sentAt - e.At
			}
		}
	}
	for i := range events {
		if d, ok := offset[events[i].Node]; ok && d > 0 {
			events[i].At += d
		}
	}
	return offset
}
