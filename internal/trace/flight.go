package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// DefaultFlightSlots is the ring capacity of a NewFlightRecorder(0):
// the last 4Ki events, a few seconds of traffic on a busy engine —
// enough context to explain the anomaly that triggered a dump.
const DefaultFlightSlots = 4096

// maxAnomalies bounds the retained anomaly dumps (newest wins).
const maxAnomalies = 8

// anomalyMinGap rate-limits dumps per reason: a stalling shm ring can
// report thousands of episodes per second, and each dump snapshots the
// whole ring.
const anomalyMinGap = 50 * time.Millisecond

// flightSlot is one ring entry. Every field is atomic: concurrent
// writers a full lap apart may collide on a slot, and Snapshot reads
// race with writers by design — the seq protocol discards torn slots,
// and atomics keep the race detector (and cross-package readers)
// honest. Note strings are not stored: a string field would defeat the
// zero-alloc guarantee, and the flight recorder's job is the shape of
// the timeline, not its prose.
type flightSlot struct {
	// seq is 2*gen+1 while generation gen is being written, 2*gen+2
	// once it is published. Snapshot only trusts a slot whose seq reads
	// 2*gen+2 both before and after the field loads.
	seq   atomic.Uint64
	at    atomic.Int64 // time.Duration
	msgID atomic.Uint64
	meta  atomic.Uint64 // kind | rail<<8 | node<<24 | origin<<40
	size  atomic.Int64
}

func packMeta(e Event) uint64 {
	return uint64(uint8(e.Kind)) |
		uint64(uint16(int16(e.Rail)))<<8 |
		uint64(uint16(e.Node))<<24 |
		uint64(uint16(e.Origin))<<40
}

func unpackMeta(m uint64) (kind Kind, rail, node, origin int) {
	kind = Kind(uint8(m))
	rail = int(int16(uint16(m >> 8)))
	node = int(uint16(m >> 24))
	origin = int(uint16(m >> 40))
	return
}

// Anomaly is one auto-dump: the flight-recorder contents at the moment
// something went wrong (rail down, unit replay, shm ring stall).
type Anomaly struct {
	At     time.Duration
	Node   int
	Reason string
	Events []Event
}

// FlightRecorder is an always-on Tracer: a lock-free fixed-size ring
// of the most recent events, cheap enough (0 allocs/op, ratcheted) to
// stay installed on every production engine next to Counts. Snapshot
// returns the ring on demand; NoteAnomaly captures it automatically
// when the engine detects trouble.
type FlightRecorder struct {
	slots []flightSlot
	mask  uint64
	head  atomic.Uint64

	anomMu    sync.Mutex
	anomalies []Anomaly // newest-wins ring of maxAnomalies
	anomNext  int
	anomTotal uint64
	lastDump  map[string]time.Duration
}

// NewFlightRecorder returns a recorder holding the most recent `size`
// events (rounded up to a power of two; 0 means DefaultFlightSlots).
func NewFlightRecorder(size int) *FlightRecorder {
	if size <= 0 {
		size = DefaultFlightSlots
	}
	n := 1
	for n < size {
		n <<= 1
	}
	return &FlightRecorder{
		slots:    make([]flightSlot, n),
		mask:     uint64(n - 1),
		lastDump: make(map[string]time.Duration),
	}
}

// Record implements Tracer. It claims the next generation with one
// atomic add and publishes the event under the slot's seq protocol —
// no locks, no allocation. Two writers a full ring lap apart can
// collide on a slot; the loser's generation reads torn and Snapshot
// drops it, which is the right trade for a recorder that must never
// slow the hot path.
//
//railvet:hotpath
func (f *FlightRecorder) Record(e Event) {
	gen := f.head.Add(1) - 1
	s := &f.slots[gen&f.mask]
	s.seq.Store(2*gen + 1)
	s.at.Store(int64(e.At))
	s.msgID.Store(e.MsgID)
	s.meta.Store(packMeta(e))
	s.size.Store(int64(e.Size))
	s.seq.Store(2*gen + 2)
}

// Len returns the number of events currently held (≤ ring size).
func (f *FlightRecorder) Len() int {
	h := f.head.Load()
	if h > uint64(len(f.slots)) {
		return len(f.slots)
	}
	return int(h)
}

// TotalRecorded returns the number of events ever recorded.
func (f *FlightRecorder) TotalRecorded() uint64 { return f.head.Load() }

// Overwritten returns how many events have been lost to ring wrap.
func (f *FlightRecorder) Overwritten() uint64 {
	h := f.head.Load()
	if h <= uint64(len(f.slots)) {
		return 0
	}
	return h - uint64(len(f.slots))
}

// Snapshot returns the retained events, oldest first. Slots being
// rewritten while the snapshot runs are skipped (their seq reads
// torn), so a snapshot under full write load returns slightly fewer
// events than Len — never garbage.
func (f *FlightRecorder) Snapshot() []Event {
	h := f.head.Load()
	n := uint64(len(f.slots))
	start := uint64(0)
	if h > n {
		start = h - n
	}
	out := make([]Event, 0, h-start)
	for gen := start; gen < h; gen++ {
		s := &f.slots[gen&f.mask]
		want := 2*gen + 2
		if s.seq.Load() != want {
			continue
		}
		at := s.at.Load()
		msgID := s.msgID.Load()
		meta := s.meta.Load()
		size := s.size.Load()
		if s.seq.Load() != want { // rewritten mid-read: drop it
			continue
		}
		kind, rail, node, origin := unpackMeta(meta)
		out = append(out, Event{
			At: time.Duration(at), Node: node, MsgID: msgID,
			Kind: kind, Rail: rail, Size: int(size), Origin: origin,
		})
	}
	return out
}

// NoteAnomaly records that something went wrong at `at` on `node` and
// snapshots the ring into the anomaly log, rate-limited per reason so
// a storm (a stalling ring, a flapping rail) keeps the first dump of
// each burst instead of thrashing. The clock is the caller's engine
// clock — the recorder itself never reads time.
func (f *FlightRecorder) NoteAnomaly(at time.Duration, node int, reason string) {
	f.anomMu.Lock()
	f.anomTotal++
	if last, ok := f.lastDump[reason]; ok && at-last < anomalyMinGap {
		f.anomMu.Unlock()
		return
	}
	f.lastDump[reason] = at
	a := Anomaly{At: at, Node: node, Reason: reason, Events: f.Snapshot()}
	if len(f.anomalies) < maxAnomalies {
		f.anomalies = append(f.anomalies, a)
	} else {
		f.anomalies[f.anomNext] = a
	}
	f.anomNext = (f.anomNext + 1) % maxAnomalies
	f.anomMu.Unlock()
}

// Anomalies returns the retained anomaly dumps, oldest first.
func (f *FlightRecorder) Anomalies() []Anomaly {
	f.anomMu.Lock()
	defer f.anomMu.Unlock()
	out := make([]Anomaly, 0, len(f.anomalies))
	if len(f.anomalies) == maxAnomalies {
		out = append(out, f.anomalies[f.anomNext:]...)
		out = append(out, f.anomalies[:f.anomNext]...)
	} else {
		out = append(out, f.anomalies...)
	}
	return out
}

// AnomalyTotal returns the number of NoteAnomaly calls, including ones
// the per-reason rate limit suppressed.
func (f *FlightRecorder) AnomalyTotal() uint64 {
	f.anomMu.Lock()
	defer f.anomMu.Unlock()
	return f.anomTotal
}
