// Package trace records per-message timelines of the engine's decisions
// and transfers — the role FxT/Pajé tracing plays for the original
// NewMadeleine. A Tracer receives one Event per step (submission,
// strategy decision, chunk posted, delivery, completion); the Collector
// implementation stores them for inspection by tests, tools and
// examples.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Kind classifies a timeline event.
type Kind int

const (
	// Submit: the application handed the message to the engine.
	Submit Kind = iota + 1
	// Decision: the strategy chose a schedule (Note describes it).
	Decision
	// EagerSent: an eager container left on Rail (Size = payload bytes,
	// Note lists the aggregated packet count).
	EagerSent
	// OffloadStart: a chunk was registered for a remote core (Fig 7).
	OffloadStart
	// RTSSent and CTSSent mark the rendezvous handshake.
	RTSSent
	CTSSent
	// ChunkPosted: a rendezvous chunk DMA was posted on Rail.
	ChunkPosted
	// Delivered: the receiver completed a message (recv side).
	Delivered
	// Completed: the sender's request completed locally.
	Completed
	// RailLost: a rail went Down (Note holds the reason; MsgID is 0).
	RailLost
	// Resent: a transfer unit was re-planned onto a surviving rail.
	Resent
)

var kindNames = map[Kind]string{
	Submit: "submit", Decision: "decision", EagerSent: "eager-sent",
	OffloadStart: "offload", RTSSent: "rts", CTSSent: "cts",
	ChunkPosted: "chunk", Delivered: "delivered", Completed: "completed",
	RailLost: "rail-down", Resent: "resent",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one step of a message's life.
type Event struct {
	At    time.Duration
	Node  int
	MsgID uint64
	Kind  Kind
	Rail  int // -1 when not rail-specific
	Size  int
	Note  string
}

func (e Event) String() string {
	rail := ""
	if e.Rail >= 0 {
		rail = fmt.Sprintf(" rail=%d", e.Rail)
	}
	return fmt.Sprintf("%12v n%d msg=%d %-10s%s size=%d %s",
		e.At, e.Node, e.MsgID, e.Kind, rail, e.Size, e.Note)
}

// Tracer receives events. Implementations must be safe for concurrent
// use (the live environment records from many goroutines).
type Tracer interface {
	Record(Event)
}

// Collector stores events in arrival order.
type Collector struct {
	mu     sync.Mutex
	events []Event
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Record implements Tracer.
func (c *Collector) Record(e Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

// Events returns a snapshot of all recorded events.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// Len returns the number of recorded events.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// ByMsg returns the timeline of one message, time-ordered.
func (c *Collector) ByMsg(msgID uint64) []Event {
	var out []Event
	for _, e := range c.Events() {
		if e.MsgID == msgID {
			out = append(out, e)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Of returns all events of the given kind, time-ordered.
func (c *Collector) Of(kind Kind) []Event {
	var out []Event
	for _, e := range c.Events() {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Dump writes the whole trace, time-ordered, one event per line.
func (c *Collector) Dump(w io.Writer) {
	evs := c.Events()
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	var b strings.Builder
	for _, e := range evs {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	io.WriteString(w, b.String())
}
