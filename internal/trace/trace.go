// Package trace records per-message timelines of the engine's decisions
// and transfers — the role FxT/Pajé tracing plays for the original
// NewMadeleine. A Tracer receives one Event per step (submission,
// strategy decision, chunk posted, delivery, completion); the Collector
// implementation stores them for inspection by tests, tools and
// examples, and Counts keeps per-Kind totals cheap enough to leave on
// in production (the metrics plane's nm_trace_events_total family).
//
// Clock discipline: event timestamps are never taken here — Event.At is
// stamped by the engine from its environment clock (rt.LiveEnv.Now is
// internal/clock-backed, so enabling a Tracer adds no time.Now calls to
// hot paths), and the Record implementations below are //railvet:hotpath
// so the hotclock analyzer rejects any wall-clock read creeping in.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies a timeline event.
type Kind int

const (
	// Submit: the application handed the message to the engine.
	Submit Kind = iota + 1
	// Decision: the strategy chose a schedule (Note describes it).
	Decision
	// EagerSent: an eager container left on Rail (Size = payload bytes,
	// Note lists the aggregated packet count).
	EagerSent
	// OffloadStart: a chunk was registered for a remote core (Fig 7).
	OffloadStart
	// RTSSent and CTSSent mark the rendezvous handshake.
	RTSSent
	CTSSent
	// ChunkPosted: a rendezvous chunk DMA was posted on Rail.
	ChunkPosted
	// Delivered: the receiver completed a message (recv side).
	Delivered
	// Completed: the sender's request completed locally.
	Completed
	// RailLost: a rail went Down (Note holds the reason; MsgID is 0).
	RailLost
	// Resent: a transfer unit was re-planned onto a surviving rail.
	Resent
	// Acked: the last outstanding transfer unit of a message was
	// acknowledged by the receiver (sender side — the point after which
	// failover will never replay any of its frames).
	Acked
	// ReplayedDelivery: the receiver dropped a frame the dedup window
	// recognised as already delivered (a failover replay arriving after
	// the original made it through).
	ReplayedDelivery
	// Reconnect: a rail came back Up after a reconnect (Note holds the
	// health reason; MsgID is 0).
	Reconnect

	// numKinds bounds the Kind enum (for per-kind count arrays).
	numKinds
)

// Kinds returns every event kind, in enum order (metrics iteration).
func Kinds() []Kind {
	out := make([]Kind, 0, int(numKinds)-1)
	for k := Submit; k < numKinds; k++ {
		out = append(out, k)
	}
	return out
}

var kindNames = map[Kind]string{
	Submit: "submit", Decision: "decision", EagerSent: "eager-sent",
	OffloadStart: "offload", RTSSent: "rts", CTSSent: "cts",
	ChunkPosted: "chunk", Delivered: "delivered", Completed: "completed",
	RailLost: "rail-down", Resent: "resent", Acked: "acked",
	ReplayedDelivery: "replayed-delivery", Reconnect: "reconnect",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one step of a message's life.
type Event struct {
	At    time.Duration
	Node  int
	MsgID uint64
	Kind  Kind
	Rail  int // -1 when not rail-specific
	Size  int
	Note  string
	// Origin is the node that submitted the message. Together with
	// MsgID it forms the message's trace id: the wire headers carry it
	// to the far endpoint so receiver-side events land on the same
	// cross-node span as the sender's (see SpanKey). Rail events
	// (RailLost, Reconnect) carry the observing node.
	Origin int
}

func (e Event) String() string {
	rail := ""
	if e.Rail >= 0 {
		rail = fmt.Sprintf(" rail=%d", e.Rail)
	}
	return fmt.Sprintf("%12v n%d msg=%d/%d %-10s%s size=%d %s",
		e.At, e.Node, e.Origin, e.MsgID, e.Kind, rail, e.Size, e.Note)
}

// Tracer receives events. Implementations must be safe for concurrent
// use (the live environment records from many goroutines).
type Tracer interface {
	Record(Event)
}

// Counts is a Tracer that keeps one atomic total per event Kind —
// lock-free, allocation-free, cheap enough to stay installed on every
// engine. The metrics plane exports it as event counts by kind.
type Counts struct {
	counts [numKinds]atomic.Uint64
}

// NewCounts returns a zeroed per-kind counting tracer.
func NewCounts() *Counts { return &Counts{} }

// Record implements Tracer.
//
//railvet:hotpath
func (c *Counts) Record(e Event) {
	if e.Kind > 0 && e.Kind < numKinds {
		c.counts[e.Kind].Add(1)
	}
}

// Of returns the total recorded for one kind.
func (c *Counts) Of(k Kind) uint64 {
	if k <= 0 || k >= numKinds {
		return 0
	}
	return c.counts[k].Load()
}

// Total returns the number of events recorded across all kinds.
func (c *Counts) Total() uint64 {
	var n uint64
	for k := Submit; k < numKinds; k++ {
		n += c.counts[k].Load()
	}
	return n
}

// tee fans one event stream out to several tracers.
type tee struct {
	ts []Tracer
}

// Tee returns a Tracer forwarding every event to each non-nil tracer in
// order. With zero or one non-nil tracers no wrapper is allocated.
func Tee(ts ...Tracer) Tracer {
	live := make([]Tracer, 0, len(ts))
	for _, t := range ts {
		if t != nil {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return &tee{ts: live}
}

// Record implements Tracer.
//
//railvet:hotpath
func (t *tee) Record(e Event) {
	for _, tr := range t.ts {
		tr.Record(e)
	}
}

// DefaultCollectorCap bounds a NewCollector: a long-running cluster
// with a Collector installed must not grow its trace without limit.
// Tests that need every event of an unbounded run use NewCollectorCap
// with an explicit 0 (unlimited).
const DefaultCollectorCap = 1 << 16

// Collector stores events in arrival order, up to a cap; events past
// the cap are counted in Dropped rather than stored.
type Collector struct {
	mu      sync.Mutex
	events  []Event
	cap     int
	dropped uint64
}

// NewCollector returns an empty collector bounded at DefaultCollectorCap.
func NewCollector() *Collector { return &Collector{cap: DefaultCollectorCap} }

// NewCollectorCap returns an empty collector holding at most cap
// events; cap 0 means unlimited (test helpers only — never install an
// unbounded collector on a production cluster).
func NewCollectorCap(cap int) *Collector { return &Collector{cap: cap} }

// Record implements Tracer.
func (c *Collector) Record(e Event) {
	c.mu.Lock()
	if c.cap > 0 && len(c.events) >= c.cap {
		c.dropped++
	} else {
		c.events = append(c.events, e)
	}
	c.mu.Unlock()
}

// Dropped returns the number of events discarded because the collector
// was full.
func (c *Collector) Dropped() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// Events returns a snapshot of all recorded events.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// Len returns the number of recorded events.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// ByMsg returns the timeline of one message, time-ordered.
func (c *Collector) ByMsg(msgID uint64) []Event {
	var out []Event
	for _, e := range c.Events() {
		if e.MsgID == msgID {
			out = append(out, e)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Of returns all events of the given kind, time-ordered.
func (c *Collector) Of(kind Kind) []Event {
	var out []Event
	for _, e := range c.Events() {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Dump writes the whole trace, time-ordered, one event per line.
func (c *Collector) Dump(w io.Writer) {
	evs := c.Events()
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	var b strings.Builder
	for _, e := range evs {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	io.WriteString(w, b.String())
}
