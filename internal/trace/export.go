package trace

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// EventJSON is the wire form of an Event on /trace/ring.json — stable
// field names for cmd/nmtrace and external scrapers. Kind travels both
// as the enum value (for machines) and its name (for eyes).
type EventJSON struct {
	AtNs     int64  `json:"at_ns"`
	Node     int    `json:"node"`
	Origin   int    `json:"origin"`
	MsgID    uint64 `json:"msg_id"`
	Kind     int    `json:"kind"`
	KindName string `json:"kind_name"`
	Rail     int    `json:"rail"`
	Size     int    `json:"size"`
	Note     string `json:"note,omitempty"`
}

// JSONFromEvent converts an Event to its export form.
func JSONFromEvent(e Event) EventJSON {
	return EventJSON{
		AtNs: int64(e.At), Node: e.Node, Origin: e.Origin, MsgID: e.MsgID,
		Kind: int(e.Kind), KindName: e.Kind.String(), Rail: e.Rail,
		Size: e.Size, Note: e.Note,
	}
}

// Event converts back from the export form.
func (j EventJSON) Event() Event {
	return Event{
		At: time.Duration(j.AtNs), Node: j.Node, Origin: j.Origin,
		MsgID: j.MsgID, Kind: Kind(j.Kind), Rail: j.Rail,
		Size: j.Size, Note: j.Note,
	}
}

// AnomalyJSON is the export form of one anomaly dump (events elided —
// the dump's ring contents overlap the live ring; Reason and timing
// are what a scraper needs).
type AnomalyJSON struct {
	AtNs   int64  `json:"at_ns"`
	Node   int    `json:"node"`
	Reason string `json:"reason"`
	Events int    `json:"events"`
}

// RingSnapshot is the body of /trace/ring.json.
type RingSnapshot struct {
	Total        uint64        `json:"total"`
	Overwritten  uint64        `json:"overwritten"`
	AnomalyTotal uint64        `json:"anomaly_total"`
	Events       []EventJSON   `json:"events"`
	Anomalies    []AnomalyJSON `json:"anomalies"`
}

// TakeRingSnapshot captures the recorder's state in export form.
func TakeRingSnapshot(f *FlightRecorder) RingSnapshot {
	evs := f.Snapshot()
	out := RingSnapshot{
		Total:        f.TotalRecorded(),
		Overwritten:  f.Overwritten(),
		AnomalyTotal: f.AnomalyTotal(),
		Events:       make([]EventJSON, 0, len(evs)),
		Anomalies:    []AnomalyJSON{},
	}
	for _, e := range evs {
		out.Events = append(out.Events, JSONFromEvent(e))
	}
	for _, a := range f.Anomalies() {
		out.Anomalies = append(out.Anomalies, AnomalyJSON{
			AtNs: int64(a.At), Node: a.Node, Reason: a.Reason, Events: len(a.Events),
		})
	}
	return out
}

// RingHandler serves the flight recorder as /trace/ring.json.
func RingHandler(f *FlightRecorder) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(TakeRingSnapshot(f))
	}
}

// perfettoEvent is one entry of the Chrome trace-event JSON format
// (the "JSON Array Format" Perfetto and chrome://tracing both load).
type perfettoEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TsUs  float64        `json:"ts"`
	DurUs float64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   uint64         `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// PerfettoJSON renders events as Chrome trace-event JSON: one "X"
// complete slice per message span on its origin node's track, plus an
// "i" instant per event on the node that recorded it — so a mixed
// shm+tcp cluster's sender and receiver activity line up vertically in
// the Perfetto UI. Process id = node, thread id = message id.
func PerfettoJSON(events []Event) []byte {
	spans := Stitch(events)
	out := struct {
		TraceEvents []perfettoEvent `json:"traceEvents"`
	}{TraceEvents: []perfettoEvent{}}
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	for _, s := range spans {
		dur := us(s.End()) - us(s.Start())
		if dur <= 0 {
			dur = 0.001 // zero-width slices vanish in the UI
		}
		out.TraceEvents = append(out.TraceEvents, perfettoEvent{
			Name:  fmt.Sprintf("msg %d/%d", s.Key.Origin, s.Key.MsgID),
			Phase: "X", TsUs: us(s.Start()), DurUs: dur,
			Pid: s.Key.Origin, Tid: s.Key.MsgID,
		})
		for _, e := range s.Events {
			args := map[string]any{"rail": e.Rail, "size": e.Size}
			if e.Note != "" {
				args["note"] = e.Note
			}
			out.TraceEvents = append(out.TraceEvents, perfettoEvent{
				Name: e.Kind.String(), Phase: "i", TsUs: us(e.At),
				Pid: e.Node, Tid: s.Key.MsgID, Args: args,
			})
		}
	}
	b, _ := json.Marshal(out)
	return b
}

// PerfettoHandler serves the flight recorder as /trace/perfetto.
func PerfettoHandler(f *FlightRecorder) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write(PerfettoJSON(f.Snapshot()))
	}
}
