// Package railhealth tracks the health of a node's rails. It is the
// shared implementation of the fabric.Health contract used by both
// fabrics: internal/livenet reports transport faults and reconnections
// into it, internal/simnet drives it from deterministic fault injection
// (FailRail), and internal/core subscribes to its transition feed to
// re-plan in-flight transfers when a rail dies.
//
// State machine per rail:
//
//	Up ──fault──▶ Suspect ──recovery exhausted──▶ Down
//	 ▲               │                              │
//	 └──reconnected──┘              Enable / repair─┘
//
// An administrative Disable (planned hot-unplug) forces Down and pins
// the rail there: transport-level reports cannot resurrect it until
// Enable lifts the pin. All transitions are published, in order, to
// every subscriber queue.
package railhealth

import (
	"fmt"
	"sync"

	"repro/internal/fabric"
	"repro/internal/rt"
)

// Tracker is one node's rail-health state (implements fabric.Health).
type Tracker struct {
	env  rt.Env
	node int

	mu      sync.Mutex
	states  []fabric.RailState
	reasons []string
	admin   []bool // pinned Down by Disable
	// transitions[rail][state] counts how many times the rail *entered*
	// the state. Bumped in set() under mu — synchronous with event
	// publication, so the counts always agree with the transition feed.
	transitions [][numRailStates]uint64
	subs        []rt.Queue
	onEnable    func(rail int)
}

// numRailStates bounds the fabric.RailState enum (Up, Suspect, Down)
// for the per-rail transition-count arrays.
const numRailStates = int(fabric.RailDown) + 1

// New returns a tracker for a node with nrails rails, all Up.
func New(env rt.Env, node, nrails int) *Tracker {
	return &Tracker{
		env:         env,
		node:        node,
		states:      make([]fabric.RailState, nrails),
		reasons:     make([]string, nrails),
		admin:       make([]bool, nrails),
		transitions: make([][numRailStates]uint64, nrails),
	}
}

// SetOnEnable registers a fabric hook invoked (outside the tracker lock)
// after Enable lifts an administrative pin — livenet uses it to kick
// reconnection of links that died while the rail was disabled.
func (t *Tracker) SetOnEnable(fn func(rail int)) {
	t.mu.Lock()
	t.onEnable = fn
	t.mu.Unlock()
}

// State returns the current state of one rail.
func (t *Tracker) State(rail int) fabric.RailState {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.states[rail]
}

// States returns a snapshot of every rail's state.
func (t *Tracker) States() []fabric.RailState {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]fabric.RailState(nil), t.states...)
}

// Reason returns the cause recorded with the rail's last transition.
func (t *Tracker) Reason(rail int) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.reasons[rail]
}

// Subscribe returns a fresh queue receiving a *fabric.RailEvent per
// subsequent transition. The caller is the queue's single consumer.
func (t *Tracker) Subscribe() rt.Queue {
	q := t.env.NewQueue()
	t.mu.Lock()
	t.subs = append(t.subs, q)
	t.mu.Unlock()
	return q
}

// Report records a transport-observed transition (fault, recovery). It
// is a no-op — returning false — when the state is unchanged or the rail
// is administratively pinned Down.
func (t *Tracker) Report(rail int, s fabric.RailState, reason string) bool {
	t.mu.Lock()
	if t.admin[rail] || t.states[rail] == s {
		t.mu.Unlock()
		return false
	}
	t.set(rail, s, reason)
	return true // set released the lock
}

// Disable administratively forces the rail Down and pins it there
// (planned hot-unplug). Idempotent.
func (t *Tracker) Disable(rail int, reason string) {
	if reason == "" {
		reason = "admin"
	}
	t.mu.Lock()
	if t.admin[rail] {
		t.mu.Unlock()
		return
	}
	t.admin[rail] = true
	if t.states[rail] == fabric.RailDown {
		t.reasons[rail] = reason
		t.mu.Unlock()
		return
	}
	t.set(rail, fabric.RailDown, reason)
}

// Enable lifts an administrative pin (or repairs an injected fault) and
// returns the rail to Up, notifying subscribers. The fabric's OnEnable
// hook then runs, so transports can re-establish dead links.
func (t *Tracker) Enable(rail int) {
	t.mu.Lock()
	t.admin[rail] = false
	hook := t.onEnable
	if t.states[rail] == fabric.RailUp {
		t.mu.Unlock()
	} else {
		t.set(rail, fabric.RailUp, "enabled")
	}
	if hook != nil {
		hook(rail)
	}
}

// Transitions returns how many times the rail has entered the given
// state since the tracker was created. The initial all-Up construction
// is not a transition; counts move in lockstep with the Subscribe feed
// (the metrics plane's nm_rail_transitions_total family reads this).
func (t *Tracker) Transitions(rail int, s fabric.RailState) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if rail < 0 || rail >= len(t.transitions) || int(s) >= numRailStates {
		return 0
	}
	return t.transitions[rail][s]
}

// NumRails returns the number of rails the tracker covers.
func (t *Tracker) NumRails() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.states)
}

// AdminDown reports whether the rail is pinned Down by Disable.
func (t *Tracker) AdminDown(rail int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.admin[rail]
}

// set applies a transition and publishes it. Called with t.mu held;
// releases it (events are pushed outside the lock so subscriber queues
// never nest under it).
func (t *Tracker) set(rail int, s fabric.RailState, reason string) {
	t.states[rail] = s
	t.reasons[rail] = reason
	if int(s) < numRailStates {
		t.transitions[rail][s]++
	}
	subs := append([]rt.Queue(nil), t.subs...)
	ev := &fabric.RailEvent{Node: t.node, Rail: rail, State: s, At: t.env.Now(), Reason: reason}
	t.mu.Unlock()
	for _, q := range subs {
		q.Push(ev)
	}
}

// String renders the tracker for diagnostics.
func (t *Tracker) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return fmt.Sprintf("railhealth{node=%d states=%v}", t.node, t.states)
}

var _ fabric.Health = (*Tracker)(nil)
