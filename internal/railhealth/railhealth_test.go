package railhealth

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/rt"
)

func drain(q rt.Queue) []*fabric.RailEvent {
	var out []*fabric.RailEvent
	for {
		v, ok := q.TryPop()
		if !ok {
			return out
		}
		out = append(out, v.(*fabric.RailEvent))
	}
}

func TestInitialStateIsUp(t *testing.T) {
	tr := New(rt.NewLive(), 0, 3)
	for r, s := range tr.States() {
		if s != fabric.RailUp {
			t.Fatalf("rail %d starts %v", r, s)
		}
	}
}

func TestReportPublishesTransitions(t *testing.T) {
	tr := New(rt.NewLive(), 2, 2)
	q := tr.Subscribe()
	if !tr.Report(1, fabric.RailSuspect, "read error") {
		t.Fatal("transition rejected")
	}
	if !tr.Report(1, fabric.RailDown, "reconnect exhausted") {
		t.Fatal("transition rejected")
	}
	evs := drain(q)
	if len(evs) != 2 {
		t.Fatalf("%d events, want 2", len(evs))
	}
	if evs[0].State != fabric.RailSuspect || evs[1].State != fabric.RailDown {
		t.Fatalf("events %v %v", evs[0], evs[1])
	}
	if evs[0].Node != 2 || evs[0].Rail != 1 {
		t.Fatalf("event addressed %d/%d", evs[0].Node, evs[0].Rail)
	}
	if tr.State(1) != fabric.RailDown || tr.Reason(1) != "reconnect exhausted" {
		t.Fatalf("state %v reason %q", tr.State(1), tr.Reason(1))
	}
}

func TestUnchangedReportIsSuppressed(t *testing.T) {
	tr := New(rt.NewLive(), 0, 1)
	q := tr.Subscribe()
	if tr.Report(0, fabric.RailUp, "still up") {
		t.Fatal("no-change transition accepted")
	}
	if len(drain(q)) != 0 {
		t.Fatal("no-change transition published")
	}
}

func TestDisablePinsAgainstTransportReports(t *testing.T) {
	tr := New(rt.NewLive(), 0, 2)
	q := tr.Subscribe()
	tr.Disable(0, "maintenance")
	if tr.State(0) != fabric.RailDown || !tr.AdminDown(0) {
		t.Fatalf("disable: state %v admin %v", tr.State(0), tr.AdminDown(0))
	}
	// A transport "recovery" must not resurrect a disabled rail.
	if tr.Report(0, fabric.RailUp, "reconnected") {
		t.Fatal("report overrode admin pin")
	}
	if tr.State(0) != fabric.RailDown {
		t.Fatalf("pinned rail is %v", tr.State(0))
	}
	tr.Enable(0)
	if tr.State(0) != fabric.RailUp || tr.AdminDown(0) {
		t.Fatalf("enable: state %v admin %v", tr.State(0), tr.AdminDown(0))
	}
	evs := drain(q)
	if len(evs) != 2 || evs[0].State != fabric.RailDown || evs[1].State != fabric.RailUp {
		t.Fatalf("events %v", evs)
	}
}

func TestEnableHookRuns(t *testing.T) {
	tr := New(rt.NewLive(), 0, 1)
	var hooked []int
	tr.SetOnEnable(func(rail int) { hooked = append(hooked, rail) })
	tr.Disable(0, "")
	tr.Enable(0)
	if len(hooked) != 1 || hooked[0] != 0 {
		t.Fatalf("hook calls %v", hooked)
	}
}

// Transitions work identically in virtual time (simnet drives the
// tracker from fault-injection callbacks).
func TestTrackerOnSimEnv(t *testing.T) {
	env := rt.NewSim()
	defer env.Close()
	tr := New(env, 0, 2)
	q := tr.Subscribe()
	env.After(0, func() { tr.Report(1, fabric.RailDown, "fault injection") })
	env.Run()
	evs := drain(q)
	if len(evs) != 1 || evs[0].State != fabric.RailDown {
		t.Fatalf("events %v", evs)
	}
}
