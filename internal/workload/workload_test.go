package workload

import (
	"testing"
	"time"

	"repro/multirail"
)

func cluster(t *testing.T) *multirail.Cluster {
	t.Helper()
	c, err := multirail.New(multirail.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestOneWayDeterministic(t *testing.T) {
	c := cluster(t)
	ts := OneWay(c, 0, 1, 4096, 4)
	if len(ts) != 4 {
		t.Fatalf("%d samples", len(ts))
	}
	for _, d := range ts[1:] {
		if d != ts[0] {
			t.Fatalf("iterations differ: %v", ts)
		}
	}
	if ts[0] <= 0 {
		t.Fatal("non-positive one-way time")
	}
}

func TestPingPongRTTAboutTwiceOneWay(t *testing.T) {
	c := cluster(t)
	one := MedianOneWay(c, 64<<10, 3)
	c2 := cluster(t)
	rtts := PingPongRTT(c2, 64<<10, 3)
	rtt := rtts[len(rtts)/2]
	ratio := float64(rtt) / float64(one)
	if ratio < 1.8 || ratio > 2.3 {
		t.Fatalf("RTT %v vs one-way %v (ratio %.2f), want ~2", rtt, one, ratio)
	}
}

func TestBandwidthUnit(t *testing.T) {
	// 1 MiB per millisecond = 1000 MiB/s.
	if bw := Bandwidth(1<<20, time.Millisecond); bw < 999.9 || bw > 1000.1 {
		t.Fatalf("bw = %v", bw)
	}
	if Bandwidth(1, 0) != 0 {
		t.Fatal("zero duration")
	}
}

func TestTwoPacketBatch(t *testing.T) {
	c := cluster(t)
	ts := TwoPacketBatch(c, 8192, 2)
	if len(ts) != 2 || ts[0] <= 0 {
		t.Fatalf("batch times %v", ts)
	}
}

func TestMessageRate(t *testing.T) {
	c := cluster(t)
	res := MessageRate(c, 64, 100, 4)
	if res.Messages != 100 || res.Elapsed <= 0 || res.PerSecond <= 0 {
		t.Fatalf("rate result %+v", res)
	}
	// 100 eager messages of 64B at ~1µs-scale each: the rate must be
	// far above 10k/s in virtual time.
	if res.PerSecond < 10_000 {
		t.Fatalf("implausible rate %.0f/s", res.PerSecond)
	}
}

func TestMultiFlow(t *testing.T) {
	c := cluster(t)
	res := MultiFlow(c, []int{1 << 10, 256 << 10, 2 << 20})
	if len(res) != 3 {
		t.Fatalf("%d results", len(res))
	}
	for i, r := range res {
		if r.Finished <= 0 {
			t.Fatalf("flow %d never finished: %+v", i, r)
		}
	}
	// The small flow must finish before the big one.
	if res[0].Finished >= res[2].Finished {
		t.Fatalf("1KB flow (%v) not before 2MB flow (%v)", res[0].Finished, res[2].Finished)
	}
}
