// Package workload provides the measurement loops used by the figure
// harness, the benches and the examples: one-way transfer timing,
// classical ping-pong, small-message rate and concurrent multi-flow
// traffic, all over the public multirail API (so they run identically on
// the simulator and on the live environment).
package workload

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/stats"
	"repro/multirail"
)

// cooldown lets receiver-side copy occupancy drain between measurements
// so samples are independent (mirrors the sampling cooldown).
func cooldown(ctx multirail.Ctx, size int) {
	ctx.Sleep(10*time.Microsecond + 2*time.Duration(size))
}

// OneWay measures the one-way completion time of size-byte messages from
// node `from` to node `to`, iters times (node clock difference is exact
// in simulation and irrelevant live since both ends share the process
// clock).
func OneWay(c *multirail.Cluster, from, to, size, iters int) []time.Duration {
	out := make([]time.Duration, 0, iters)
	payload := make([]byte, size)
	buf := make([]byte, size)
	c.Go("oneway", func(ctx multirail.Ctx) {
		for i := 0; i < iters; i++ {
			start := ctx.Now()
			rr := c.Node(to).Irecv(from, 0xBEEF, buf)
			sr := c.Node(from).Isend(to, 0xBEEF, payload)
			if _, err := rr.Wait(ctx); err != nil {
				panic(fmt.Sprintf("workload: one-way recv: %v", err))
			}
			out = append(out, ctx.Now()-start)
			sr.Wait(ctx)
			cooldown(ctx, size)
		}
	})
	c.Run()
	return out
}

// MedianOneWay runs OneWay and returns the median.
func MedianOneWay(c *multirail.Cluster, size, iters int) time.Duration {
	ts := OneWay(c, 0, 1, size, iters)
	fs := make([]float64, len(ts))
	for i, t := range ts {
		fs[i] = float64(t)
	}
	return time.Duration(stats.Percentile(fs, 50))
}

// PingPongRTT measures full round trips between nodes 0 and 1 (the
// paper's "classical ping-pong program"); the conventional one-way
// latency is RTT/2.
func PingPongRTT(c *multirail.Cluster, size, iters int) []time.Duration {
	out := make([]time.Duration, 0, iters)
	done := make(chan struct{})
	c.Go("ponger", func(ctx multirail.Ctx) {
		buf := make([]byte, size)
		for i := 0; i < iters; i++ {
			if _, err := c.Node(1).Recv(ctx, 0, 1, buf); err != nil {
				panic(err)
			}
			c.Node(1).Send(ctx, 0, 2, buf[:size])
		}
	})
	c.Go("pinger", func(ctx multirail.Ctx) {
		defer close(done)
		payload := make([]byte, size)
		buf := make([]byte, size)
		for i := 0; i < iters; i++ {
			start := ctx.Now()
			rr := c.Node(0).Irecv(1, 2, buf)
			c.Node(0).Send(ctx, 1, 1, payload)
			if _, err := rr.Wait(ctx); err != nil {
				panic(err)
			}
			out = append(out, ctx.Now()-start)
			cooldown(ctx, size)
		}
	})
	c.Run()
	<-done
	return out
}

// Bandwidth converts a size and a one-way duration into the paper's plot
// unit, MB/s (MiB per second).
func Bandwidth(size int, oneway time.Duration) float64 {
	if oneway <= 0 {
		return 0
	}
	return float64(size) / oneway.Seconds() / (1 << 20)
}

// TwoPacketBatch submits two packets of size/2 to the same destination in
// one batch (Fig 3's workload: "two segments") and returns the time until
// both have been received, for iters repetitions.
func TwoPacketBatch(c *multirail.Cluster, size, iters int) []time.Duration {
	out := make([]time.Duration, 0, iters)
	half := size / 2
	if half == 0 {
		half = 1
	}
	p1 := make([]byte, half)
	p2 := make([]byte, size-half)
	b1 := make([]byte, half)
	b2 := make([]byte, size-half)
	c.Go("twopkt", func(ctx multirail.Ctx) {
		for i := 0; i < iters; i++ {
			start := ctx.Now()
			r1 := c.Node(1).Irecv(0, 1, b1)
			r2 := c.Node(1).Irecv(0, 2, b2)
			s1 := c.Node(0).Isend(1, 1, p1)
			s2 := c.Node(0).Isend(1, 2, p2)
			r1.Wait(ctx)
			r2.Wait(ctx)
			out = append(out, ctx.Now()-start)
			s1.Wait(ctx)
			s2.Wait(ctx)
			cooldown(ctx, size)
		}
	})
	c.Run()
	return out
}

// RateResult reports a message-rate measurement.
type RateResult struct {
	Messages int
	Elapsed  time.Duration
	// PerSecond is the sustained message rate.
	PerSecond float64
}

// MessageRate pushes count messages of the given size from node 0 to
// node 1 across `flows` tags and measures the sustained rate.
func MessageRate(c *multirail.Cluster, size, count, flows int) RateResult {
	if flows < 1 {
		flows = 1
	}
	var res RateResult
	c.Go("rate-recv", func(ctx multirail.Ctx) {
		reqs := make([]*multirail.RecvRequest, count)
		for i := 0; i < count; i++ {
			reqs[i] = c.Node(1).Irecv(0, uint32(i%flows), make([]byte, size))
		}
		start := ctx.Now()
		for _, r := range reqs {
			r.Wait(ctx)
		}
		res.Elapsed = ctx.Now() - start
	})
	c.Go("rate-send", func(ctx multirail.Ctx) {
		for i := 0; i < count; i++ {
			c.Node(0).Isend(1, uint32(i%flows), make([]byte, size))
		}
	})
	c.Run()
	res.Messages = count
	if res.Elapsed > 0 {
		res.PerSecond = float64(count) / res.Elapsed.Seconds()
	}
	return res
}

// ManyFlows drives `flows` concurrent tagged flows — one sender and one
// receiver actor per flow, all node 0 → node 1 under distinct tags —
// each moving count messages of size bytes. It returns the time until
// the slowest flow finished. This is the contention workload of the
// multicore progression subsystem: with sharded engine state and
// per-core workers, flows must progress independently, so throughput
// scales with cores instead of serialising on one engine lock.
func ManyFlows(c *multirail.Cluster, flows, count, size int) time.Duration {
	var (
		mu    sync.Mutex
		worst time.Duration
	)
	start := c.Now()
	for f := 0; f < flows; f++ {
		tag := uint32(0x4000 + f)
		payload := make([]byte, size)
		c.Go(fmt.Sprintf("mf-send-%d", f), func(ctx multirail.Ctx) {
			for i := 0; i < count; i++ {
				c.Node(0).Isend(1, tag, payload)
			}
		})
		c.Go(fmt.Sprintf("mf-recv-%d", f), func(ctx multirail.Ctx) {
			buf := make([]byte, size)
			for i := 0; i < count; i++ {
				if _, err := c.Node(1).Irecv(0, tag, buf).Wait(ctx); err != nil {
					panic(fmt.Sprintf("workload: many-flows recv: %v", err))
				}
			}
			mu.Lock()
			if now := ctx.Now(); now > worst {
				worst = now
			}
			mu.Unlock()
		})
	}
	c.Run()
	return worst - start
}

// FlowResult reports one flow of a multi-flow run.
type FlowResult struct {
	Flow     int
	Size     int
	Finished time.Duration
}

// MultiFlow starts one concurrent flow per entry of sizes (all node 0 →
// node 1, distinct tags) and reports each flow's completion time.
func MultiFlow(c *multirail.Cluster, sizes []int) []FlowResult {
	results := make([]FlowResult, len(sizes))
	for i, size := range sizes {
		i, size := i, size
		c.Go(fmt.Sprintf("flow-%d", i), func(ctx multirail.Ctx) {
			buf := make([]byte, size)
			rr := c.Node(1).Irecv(0, uint32(100+i), buf)
			c.Node(0).Isend(1, uint32(100+i), make([]byte, size))
			if _, err := rr.Wait(ctx); err != nil {
				panic(err)
			}
			results[i] = FlowResult{Flow: i, Size: size, Finished: ctx.Now()}
		})
	}
	c.Run()
	return results
}
