package progress

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestMain enforces the worker-shutdown contract mechanically: every
// per-core worker and aggregator goroutine must exit with its engine.
func TestMain(m *testing.M) { leakcheck.Main(m) }
