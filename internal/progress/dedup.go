package progress

import "sync"

// Dedup is a bounded window of recently seen (peer, unit id) pairs: the
// receiver-side duplicate filter of the failover protocol. The window is
// lock-striped so that concurrent flows marking units never contend on
// one mutex; each stripe evicts its own oldest entries beyond its share
// of the capacity.
type Dedup struct {
	mask    uint32
	stripes []dedupStripe
}

type dedupKey struct {
	peer int
	id   uint64
}

type dedupStripe struct {
	mu   sync.Mutex
	seen map[dedupKey]struct{}
	q    []dedupKey // eviction order
	cap  int
}

// NewDedup builds a window of ~capacity ids over the given stripe count
// (rounded up to a power of two, min 1).
func NewDedup(stripes, capacity int) *Dedup {
	n := Shards(stripes, 1)
	per := capacity / n
	if per < 1 {
		per = 1
	}
	d := &Dedup{mask: uint32(n - 1), stripes: make([]dedupStripe, n)}
	for i := range d.stripes {
		d.stripes[i].seen = make(map[dedupKey]struct{})
		d.stripes[i].cap = per
	}
	return d
}

func (d *Dedup) stripe(peer int, id uint64) *dedupStripe {
	return &d.stripes[UnitKey(peer, id)&d.mask]
}

// Mark records the pair, evicting the stripe's oldest entry beyond its
// capacity. It reports whether the pair was fresh (false = duplicate).
func (d *Dedup) Mark(peer int, id uint64) bool {
	s := d.stripe(peer, id)
	k := dedupKey{peer, id}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.seen[k]; dup {
		return false
	}
	s.seen[k] = struct{}{}
	s.q = append(s.q, k)
	if len(s.q) > s.cap {
		delete(s.seen, s.q[0])
		s.q = s.q[1:]
	}
	return true
}

// Seen reports whether the pair is in the window, without recording it.
func (d *Dedup) Seen(peer int, id uint64) bool {
	s := d.stripe(peer, id)
	s.mu.Lock()
	defer s.mu.Unlock()
	_, dup := s.seen[dedupKey{peer, id}]
	return dup
}

// Len returns the total number of ids currently held (tests).
func (d *Dedup) Len() int {
	n := 0
	for i := range d.stripes {
		s := &d.stripes[i]
		s.mu.Lock()
		n += len(s.seen)
		s.mu.Unlock()
	}
	return n
}
