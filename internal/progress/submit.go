package progress

import (
	"fmt"
	"sync"

	"repro/internal/rt"
)

// Submitter is the paper's submit list made concurrent: per-destination
// queues whose flushes run on pool workers — "the application layer
// enqueues packets into a submit list and returns immediately; the
// optimizer is activated at critical moments". Put never blocks; the
// flush callback receives everything that accumulated for one
// destination since the last flush (the aggregation window) and runs
// with NO queue lock held, so fabric I/O that blocks inside a flush
// stalls only that destination's worker, never other destinations and
// never the callers.
//
// Flushes for one destination are serialised (same DestKey, same
// worker, FIFO), preserving per-destination submission order.
type Submitter[T any] struct {
	pool  *Pool
	flush func(ctx rt.Ctx, to int, batch []T)

	mu    sync.RWMutex
	dests map[int]*destQueue[T]
}

type destQueue[T any] struct {
	mu        sync.Mutex
	items     []T
	scheduled bool // a flush task is queued and will observe items
}

// NewSubmitter builds a submitter flushing through the pool.
func NewSubmitter[T any](pool *Pool, flush func(ctx rt.Ctx, to int, batch []T)) *Submitter[T] {
	return &Submitter[T]{pool: pool, flush: flush, dests: make(map[int]*destQueue[T])}
}

func (s *Submitter[T]) dest(to int) *destQueue[T] {
	s.mu.RLock()
	d := s.dests[to]
	s.mu.RUnlock()
	if d != nil {
		return d
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if d = s.dests[to]; d == nil {
		d = &destQueue[T]{}
		s.dests[to] = d
	}
	return d
}

// Put appends item to the destination's queue and schedules a flush if
// none is pending. Never blocks.
func (s *Submitter[T]) Put(to int, item T) {
	d := s.dest(to)
	d.mu.Lock()
	d.items = append(d.items, item)
	schedule := !d.scheduled
	d.scheduled = true
	d.mu.Unlock()
	if schedule {
		s.pool.Submit(DestKey(to), Task{
			Name: fmt.Sprintf("flush-%d", to),
			Run:  func(ctx rt.Ctx) { s.runFlush(ctx, to) },
		})
	}
}

// runFlush drains the destination's queue and invokes the flush callback
// outside the queue lock. Items Put while the callback runs schedule a
// fresh flush (on the same worker, after this one).
func (s *Submitter[T]) runFlush(ctx rt.Ctx, to int) {
	d := s.dest(to)
	d.mu.Lock()
	batch := d.items
	d.items = nil
	d.scheduled = false
	d.mu.Unlock()
	if len(batch) > 0 {
		s.flush(ctx, to, batch)
	}
}

// Queued returns the number of items currently waiting for a
// destination (tests, diagnostics).
func (s *Submitter[T]) Queued(to int) int {
	d := s.dest(to)
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.items)
}
