// Package progress is the multicore progression subsystem: the
// machinery that lets one node's communication engine run on all of its
// cores at once instead of funnelling every send, match and completion
// through a single lock.
//
// The paper's engine is "multicore-enabled" in three ways, and this
// package provides the concurrent primitive for each:
//
//   - Pool: a per-core worker pool. Each worker is an actor with its own
//     FIFO queue; work submitted under the same key always lands on the
//     same worker, so per-flow ordering is free while distinct flows
//     progress in parallel. The transfer layer (livenet) feeds deliveries
//     straight into the pool instead of one progression actor doing all
//     engine work inline.
//   - Submitter: the paper's "submit list" made concurrent. Each
//     destination owns a small queue; Isend appends and returns — the
//     optimizer (flush callback) runs on a worker, aggregating whatever
//     accumulated, and never on the caller's goroutine. The flush
//     callback runs with no queue lock held, so a rail write that blocks
//     stalls only its own destination's worker.
//   - Dedup: a striped bounded window of recently seen transfer-unit
//     ids (the receiver-side replay filter of the failover protocol),
//     lock-striped so concurrent flows never contend on one mutex.
//
// Key functions (FlowKey, UnitKey, ChunkKey) hash protocol identities to
// pool/shard keys. The engine (internal/core) shards its matching,
// pending and unacked tables with the same keys, so the worker that
// processes a delivery is usually the only one touching that flow's
// shard.
package progress

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rt"
)

// Task is one unit of engine work executed by a pool worker. Run
// receives the worker's Ctx and may block on rt primitives or fabric
// I/O.
type Task struct {
	// Name labels the task for diagnostics.
	Name string
	// Run does the work.
	Run func(ctx rt.Ctx)
}

// WorkerStats counts one worker's activity.
type WorkerStats struct {
	// Tasks is the number of tasks executed.
	Tasks uint64
	// BusyTime is the total time spent inside tasks.
	BusyTime time.Duration
	// Queued is the instantaneous queue length (snapshot time).
	Queued int
}

// Pool is a fixed set of worker actors, one intended per core. Tasks
// submitted under equal keys execute in submission order on one worker;
// tasks under different keys run concurrently when the keys map to
// different workers.
type Pool struct {
	env     rt.Env
	workers []*worker
	stopped atomic.Bool
}

type worker struct {
	q rt.Queue

	mu    sync.Mutex
	stats WorkerStats
}

// NewPool starts n workers (min 1) named "<name>-w<i>".
func NewPool(env rt.Env, name string, n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{env: env}
	for i := 0; i < n; i++ {
		w := &worker{q: env.NewQueue()}
		p.workers = append(p.workers, w)
		env.Go(fmt.Sprintf("%s-w%d", name, i), w.loop)
	}
	return p
}

func (w *worker) loop(ctx rt.Ctx) {
	for {
		item := w.q.Pop(ctx)
		if item == nil {
			return // Stop sentinel
		}
		t := item.(Task)
		start := ctx.Now()
		t.Run(ctx)
		w.mu.Lock()
		w.stats.Tasks++
		w.stats.BusyTime += ctx.Now() - start
		w.mu.Unlock()
	}
}

// Size returns the worker count.
func (p *Pool) Size() int { return len(p.workers) }

// Worker returns the worker index a key maps to.
func (p *Pool) Worker(key uint32) int { return int(key % uint32(len(p.workers))) }

// Submit queues t on the worker the key maps to. Never blocks.
func (p *Pool) Submit(key uint32, t Task) {
	p.workers[key%uint32(len(p.workers))].q.Push(t)
}

// Stop makes every worker exit after draining the tasks queued before
// the stop. Idempotent. Tasks submitted after Stop are never executed.
func (p *Pool) Stop() {
	if !p.stopped.CompareAndSwap(false, true) {
		return
	}
	for _, w := range p.workers {
		w.q.Push(nil)
	}
}

// Stats snapshots every worker's counters.
func (p *Pool) Stats() []WorkerStats {
	out := make([]WorkerStats, len(p.workers))
	for i, w := range p.workers {
		w.mu.Lock()
		out[i] = w.stats
		w.mu.Unlock()
		out[i].Queued = w.q.Len()
	}
	return out
}

// --- shard/worker keys ---

const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

// fnv64 folds an uint64 into a running FNV-1a hash.
func fnv64(h uint32, v uint64) uint32 {
	for i := 0; i < 8; i++ {
		h ^= uint32(v & 0xFF)
		h *= fnvPrime32
		v >>= 8
	}
	return h
}

// FlowKey hashes a (peer, tag) flow identity: the key for matching
// tables and for deliveries whose per-flow order must be preserved
// (eager packets, RTS).
func FlowKey(peer int, tag uint32) uint32 {
	return fnv64(fnv64(fnvOffset32, uint64(peer)), uint64(tag))
}

// UnitKey hashes a (peer, transfer-unit id) pair: the routing key for
// acks, CTS and the unacked tables. Container acks carry no single tag —
// one container may aggregate packets of many flows — so unit state is
// keyed by id rather than tag.
func UnitKey(peer int, id uint64) uint32 {
	return fnv64(fnv64(fnvOffset32, uint64(peer)), id)
}

// ChunkKey spreads the chunks of one striped message across workers by
// folding the chunk offset into the flow key: reassembly tolerates any
// arrival order, so distinct chunks of one large message may be copied
// into place by different cores in parallel.
func ChunkKey(peer int, tag uint32, offset uint64) uint32 {
	return fnv64(FlowKey(peer, tag), offset)
}

// DestKey maps a destination node id to a pool key. It is intentionally
// the identity, so dest d always flushes on worker d%N — deterministic
// and documented, which the flush tests rely on.
func DestKey(to int) uint32 { return uint32(to) }

// Shards normalises a configured shard count: the smallest power of two
// >= max(n, min), so key&mask indexing works.
func Shards(n, min int) int {
	if n < min {
		n = min
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
