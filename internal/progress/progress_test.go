package progress

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rt"
)

// Tasks submitted under one key run in submission order, even with many
// workers.
func TestPoolSameKeyOrdered(t *testing.T) {
	env := rt.NewLive()
	p := NewPool(env, "test", 4)
	defer p.Stop()
	const n = 200
	var mu sync.Mutex
	var got []int
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		i := i
		p.Submit(7, Task{Name: "seq", Run: func(rt.Ctx) {
			mu.Lock()
			got = append(got, i)
			mu.Unlock()
			if i == n-1 {
				close(done)
			}
		}})
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("tasks did not drain")
	}
	mu.Lock()
	defer mu.Unlock()
	for i, v := range got {
		if v != i {
			t.Fatalf("task %d ran at position %d", v, i)
		}
	}
}

// Tasks under keys mapping to different workers run concurrently: a
// blocked worker does not stall the other key.
func TestPoolDifferentKeysParallel(t *testing.T) {
	env := rt.NewLive()
	p := NewPool(env, "test", 2)
	defer p.Stop()
	release := make(chan struct{})
	blocked := make(chan struct{})
	ran := make(chan struct{})
	p.Submit(0, Task{Name: "block", Run: func(rt.Ctx) {
		close(blocked)
		<-release
	}})
	<-blocked
	p.Submit(1, Task{Name: "free", Run: func(rt.Ctx) { close(ran) }})
	select {
	case <-ran:
	case <-time.After(5 * time.Second):
		t.Fatal("worker 1 stalled behind worker 0's blocked task")
	}
	close(release)
}

func TestPoolStopDrainsQueued(t *testing.T) {
	env := rt.NewLive()
	p := NewPool(env, "test", 1)
	var ran atomic.Int32
	done := make(chan struct{})
	for i := 0; i < 10; i++ {
		i := i
		p.Submit(0, Task{Name: "t", Run: func(rt.Ctx) {
			ran.Add(1)
			if i == 9 {
				close(done)
			}
		}})
	}
	p.Stop()
	p.Stop() // idempotent
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("queued tasks dropped by Stop")
	}
	if got := ran.Load(); got != 10 {
		t.Fatalf("ran %d of 10 queued tasks", got)
	}
	// Post-stop submissions are silently dropped, not executed.
	p.Submit(0, Task{Name: "late", Run: func(rt.Ctx) { t.Error("task ran after Stop") }})
	env.WaitIdle()
}

func TestPoolStats(t *testing.T) {
	env := rt.NewLive()
	p := NewPool(env, "test", 3)
	defer p.Stop()
	done := make(chan struct{})
	p.Submit(1, Task{Name: "t", Run: func(ctx rt.Ctx) { ctx.Sleep(time.Millisecond); close(done) }})
	<-done
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := p.Stats()
		if len(st) == 3 && st[1].Tasks == 1 && st[1].BusyTime > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats never settled: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
}

// Keys distribute: distinct flows should not all pile on one worker.
func TestKeysSpread(t *testing.T) {
	workers := map[uint32]bool{}
	for tag := uint32(0); tag < 64; tag++ {
		workers[FlowKey(1, tag)%8] = true
	}
	if len(workers) < 4 {
		t.Fatalf("64 flows hit only %d of 8 workers", len(workers))
	}
	if FlowKey(1, 5) != FlowKey(1, 5) || FlowKey(1, 5) == FlowKey(2, 5) {
		t.Fatal("FlowKey not stable or not peer-sensitive")
	}
	if ChunkKey(1, 5, 0) == ChunkKey(1, 5, 4096) {
		t.Fatal("ChunkKey ignores offset")
	}
}

func TestShardsPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ n, min, want int }{
		{0, 8, 8}, {8, 8, 8}, {9, 8, 16}, {3, 1, 4}, {1, 1, 1}, {0, 5, 8},
	} {
		if got := Shards(tc.n, tc.min); got != tc.want {
			t.Errorf("Shards(%d,%d) = %d, want %d", tc.n, tc.min, got, tc.want)
		}
	}
}

func TestDedupMarkAndEvict(t *testing.T) {
	d := NewDedup(4, 64)
	if !d.Mark(1, 42) {
		t.Fatal("fresh id reported duplicate")
	}
	if d.Mark(1, 42) {
		t.Fatal("duplicate id reported fresh")
	}
	if !d.Seen(1, 42) || d.Seen(2, 42) {
		t.Fatal("Seen wrong")
	}
	// Flood far past capacity: the window stays bounded and old ids age
	// out of their stripes.
	for id := uint64(100); id < 100+4096; id++ {
		d.Mark(3, id)
	}
	if n := d.Len(); n > 64+4 {
		t.Fatalf("window grew to %d entries (cap 64)", n)
	}
}

// Submitter aggregates: items put while the flush is pending arrive in
// one batch, and the flush never holds the queue lock (a Put during a
// blocked flush returns immediately and triggers a follow-up flush).
func TestSubmitterBatchesAndNeverBlocksPut(t *testing.T) {
	env := rt.NewLive()
	p := NewPool(env, "test", 2)
	defer p.Stop()
	var mu sync.Mutex
	var batches [][]int
	inFlush := make(chan struct{}, 16)
	release := make(chan struct{})
	s := NewSubmitter[int](p, func(ctx rt.Ctx, to int, batch []int) {
		mu.Lock()
		batches = append(batches, append([]int(nil), batch...))
		first := len(batches) == 1
		mu.Unlock()
		inFlush <- struct{}{}
		if first {
			<-release // block the first flush mid-callback
		}
	})
	s.Put(1, 10)
	<-inFlush // first flush running (and blocked) with batch [10]
	// Put while the flush is blocked: must not block, must queue.
	putDone := make(chan struct{})
	go func() {
		s.Put(1, 11)
		s.Put(1, 12)
		close(putDone)
	}()
	select {
	case <-putDone:
	case <-time.After(2 * time.Second):
		t.Fatal("Put blocked behind a blocked flush")
	}
	if q := s.Queued(1); q != 2 {
		t.Fatalf("queued %d, want 2", q)
	}
	close(release)
	select {
	case <-inFlush: // second flush with batch [11 12]
	case <-time.After(5 * time.Second):
		t.Fatal("follow-up flush never ran")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(batches) != 2 || len(batches[0]) != 1 || len(batches[1]) != 2 {
		t.Fatalf("batches %v, want [[10] [11 12]]", batches)
	}
}

// Distinct destinations flush on distinct workers: a blocked flush for
// one destination does not delay another.
func TestSubmitterDestinationsIndependent(t *testing.T) {
	env := rt.NewLive()
	p := NewPool(env, "test", 2)
	defer p.Stop()
	release := make(chan struct{})
	blocked := make(chan struct{})
	flushed2 := make(chan struct{})
	s := NewSubmitter[int](p, func(ctx rt.Ctx, to int, batch []int) {
		switch to {
		case 1:
			close(blocked)
			<-release
		case 2:
			close(flushed2)
		}
	})
	s.Put(1, 1) // dest 1 → worker 1 (DestKey is identity), blocks
	<-blocked
	s.Put(2, 2) // dest 2 → worker 0, must flush despite dest 1 blocking
	select {
	case <-flushed2:
	case <-time.After(5 * time.Second):
		t.Fatal("dest 2 flush stalled behind dest 1's blocked rail write")
	}
	close(release)
}
