package model

import "time"

// Offload cost constants measured by the paper (§III-D): signalling an
// idle core that a request is ready costs 3 µs; preempting a computing
// thread with a signal costs 6 µs.
const (
	// OffloadSyncCost is the core-to-core synchronisation cost between the
	// split-ratio computation and the start of submission on a remote core.
	OffloadSyncCost = 3 * time.Microsecond
	// OffloadPreemptCost replaces OffloadSyncCost when a running thread
	// must be preempted by a signal to free the core.
	OffloadPreemptCost = 6 * time.Microsecond
)

// Myri10G returns the calibrated MX/Myri-10G profile.
//
// Calibration: the paper's 4 MB hetero-split checkpoint (2437 KB chunk in
// 1999 µs) implies a wire rate of ≈1219–1228 MB/s; a 1228e6 B/s wire rate
// together with a 7.9 µs rendezvous setup reproduces the reported
// 1170 MB/s (MiB/s) peak ping-pong bandwidth at 8 MB. The ≈2.9 µs
// small-message latency matches MX/Myri-10G figures of the era.
func Myri10G() *Profile {
	return &Profile{
		Name:            "Myri-10G",
		SendOverhead:    500 * time.Nanosecond,
		RecvOverhead:    400 * time.Nanosecond,
		WireLatency:     2 * time.Microsecond,
		EagerRate:       0.87e9,
		RecvCopyRate:    2.5e9,
		WireBandwidth:   1228e6,
		RdvHandshakeCPU: 3 * time.Microsecond,
		EagerMax:        32 * 1024,
		GatherScatter:   true,
	}
}

// QsNetII returns the calibrated Elan/QsNetII Quadrics profile.
//
// Calibration: the 4 MB iso-split checkpoint (2 MB chunk in ≈2400 µs) and
// the 1757 KB hetero chunk in 2001 µs imply a wire rate of ≈878 MB/s; with
// a 5.6 µs rendezvous setup this reproduces the reported 837 MB/s (MiB/s)
// peak. QsNetII small-message latency (≈1.6 µs) is below Myri-10G's, which
// is why the aggregated-over-Quadrics curve wins at small sizes in Fig 3.
func QsNetII() *Profile {
	return &Profile{
		Name:            "QsNetII",
		SendOverhead:    300 * time.Nanosecond,
		RecvOverhead:    300 * time.Nanosecond,
		WireLatency:     1 * time.Microsecond,
		EagerRate:       0.73e9,
		RecvCopyRate:    2.2e9,
		WireBandwidth:   878e6,
		RdvHandshakeCPU: 3 * time.Microsecond,
		EagerMax:        32 * 1024,
		GatherScatter:   true,
	}
}

// IBVerbs returns an InfiniBand-DDR-like profile (NewMadeleine's
// Verbs/InfiniBand driver; not part of the paper's testbed but listed
// among the supported networks).
func IBVerbs() *Profile {
	return &Profile{
		Name:            "IB-DDR",
		SendOverhead:    400 * time.Nanosecond,
		RecvOverhead:    300 * time.Nanosecond,
		WireLatency:     1300 * time.Nanosecond,
		EagerRate:       1.1e9,
		RecvCopyRate:    2.5e9,
		WireBandwidth:   1800e6,
		RdvHandshakeCPU: 2500 * time.Nanosecond,
		EagerMax:        16 * 1024,
		GatherScatter:   true,
	}
}

// GigE returns a TCP/GigE profile (NewMadeleine's TCP driver). High
// latency, ~118 MB/s wire rate, no gather/scatter.
func GigE() *Profile {
	return &Profile{
		Name:            "GigE-TCP",
		SendOverhead:    4 * time.Microsecond,
		RecvOverhead:    4 * time.Microsecond,
		WireLatency:     25 * time.Microsecond,
		EagerRate:       0.11e9,
		RecvCopyRate:    1.5e9,
		WireBandwidth:   118e6,
		RdvHandshakeCPU: 10 * time.Microsecond,
		EagerMax:        64 * 1024,
		GatherScatter:   false,
	}
}

// Uniform returns a synthetic profile for tests: fixed latency lat, a
// single rate for both regimes, and an eager limit of eagerMax bytes.
func Uniform(name string, lat time.Duration, rate float64, eagerMax int) *Profile {
	return &Profile{
		Name:            name,
		SendOverhead:    lat / 10,
		RecvOverhead:    lat / 10,
		WireLatency:     lat,
		EagerRate:       rate,
		RecvCopyRate:    2 * rate,
		WireBandwidth:   rate,
		RdvHandshakeCPU: lat,
		EagerMax:        eagerMax,
		GatherScatter:   true,
	}
}

// PaperTestbed returns the two rails of the paper's evaluation platform in
// the order (Myri-10G, QsNetII).
func PaperTestbed() []*Profile {
	return []*Profile{Myri10G(), QsNetII()}
}
