// Package model defines analytic performance models of network interface
// cards (NICs).
//
// The paper's evaluation runs on real Myri-10G (MX) and QsNetII (Elan)
// rails; we have neither, so the rails are replaced by calibrated analytic
// profiles (see DESIGN.md §2). A Profile captures the two protocol regimes
// of a high-performance NIC circa 2008:
//
//   - Eager/PIO: the host CPU programs the payload into the NIC; the copy
//     is CPU-bound and serialises on the submitting core. One-way time is
//     SendOverhead + n/EagerRate + WireLatency + RecvOverhead.
//   - Rendezvous/DMA: an RTS/CTS handshake, then the NIC DMAs the payload
//     at wire rate without consuming CPU. One-way time is
//     RdvSetup + n/WireBandwidth.
//
// Calibration (asserted by tests in this package and internal/calib):
// the paper's 4 MB hetero-split checkpoint (2437 KB over Myri-10G in
// 1999 µs, 1757 KB over Quadrics in 2001 µs) pins the wire rates at
// ≈1228 MB/s and ≈878 MB/s; the reported peak ping-pong bandwidths
// (1170 and 837 "MB/s", i.e. MiB/s) pin the rendezvous setup costs.
package model

import (
	"fmt"
	"math"
	"time"
)

// Protocol identifies which transfer regime a message uses.
type Protocol int

const (
	// Eager sends the payload immediately; CPU-bound PIO copy.
	Eager Protocol = iota
	// Rendezvous handshakes first, then DMAs at wire rate.
	Rendezvous
)

func (p Protocol) String() string {
	switch p {
	case Eager:
		return "eager"
	case Rendezvous:
		return "rendezvous"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// Profile is the analytic performance model of one NIC technology.
// All rates are bytes per second; all durations are one-way costs.
type Profile struct {
	// Name identifies the technology ("Myri-10G", "QsNetII", ...).
	Name string

	// SendOverhead is the fixed per-message host cost to post a send.
	SendOverhead time.Duration
	// RecvOverhead is the fixed per-message host cost on the receiver.
	RecvOverhead time.Duration
	// WireLatency is the one-way propagation latency of a minimal packet.
	WireLatency time.Duration

	// EagerRate is the end-to-end per-byte rate of the PIO path. It folds
	// the host-side programmed-I/O copy and the receiver-side copy into a
	// single CPU-bound slope, which is what a ping-pong measures. The
	// submitting core is busy for SendOverhead + n/EagerRate.
	EagerRate float64

	// RecvCopyRate is the receiver-side copy rate for eager packets. The
	// receiving core is busy for RecvOverhead + n/RecvCopyRate; its
	// contribution to one-way latency is already folded into EagerRate.
	RecvCopyRate float64

	// WireBandwidth is the sustained DMA rate of the rendezvous path.
	WireBandwidth float64
	// RdvHandshakeCPU is the extra host cost of the RTS/CTS exchange on
	// top of the two wire latencies and the per-message overheads.
	RdvHandshakeCPU time.Duration

	// EagerMax is the largest payload the eager path accepts. Above it the
	// rendezvous path is mandatory regardless of predicted cost.
	EagerMax int

	// MaxMsg is the largest single message the NIC accepts (0 = unlimited).
	MaxMsg int

	// GatherScatter reports whether the NIC can send from / receive into a
	// vector of buffers without an intermediate copy.
	GatherScatter bool
}

// durPerByte converts a byte count and a rate into a duration.
func durPerByte(n int, rate float64) time.Duration {
	if n <= 0 || rate <= 0 {
		return 0
	}
	return time.Duration(math.Round(float64(n) / rate * 1e9))
}

// SendCPUTime returns how long the submitting core is busy posting an
// n-byte message with the given protocol. Eager sends are copy-bound;
// rendezvous sends only post descriptors.
func (p *Profile) SendCPUTime(proto Protocol, n int) time.Duration {
	if proto == Eager {
		return p.SendOverhead + durPerByte(n, p.EagerRate)
	}
	return p.SendOverhead
}

// RecvCPUTime returns how long the receiving core is busy accepting an
// n-byte message with the given protocol.
func (p *Profile) RecvCPUTime(proto Protocol, n int) time.Duration {
	if proto == Eager {
		return p.RecvOverhead + durPerByte(n, p.RecvCopyRate)
	}
	return p.RecvOverhead
}

// RdvSetup returns the fixed cost of a rendezvous: the RTS post, the
// RTS/CTS round trip, the handshake CPU cost, and the data-descriptor
// post (hence two SendOverheads: one for the RTS, one for the DMA post).
func (p *Profile) RdvSetup() time.Duration {
	return 2*p.SendOverhead + p.RecvOverhead + 2*p.WireLatency + p.RdvHandshakeCPU
}

// EagerOneWay returns the modeled one-way latency of an n-byte eager send.
func (p *Profile) EagerOneWay(n int) time.Duration {
	return p.SendOverhead + durPerByte(n, p.EagerRate) + p.WireLatency + p.RecvOverhead
}

// RdvOneWay returns the modeled one-way latency of an n-byte rendezvous
// send.
func (p *Profile) RdvOneWay(n int) time.Duration {
	return p.RdvSetup() + durPerByte(n, p.WireBandwidth)
}

// OneWay returns the modeled one-way latency with the protocol the driver
// would pick (eager below Threshold, rendezvous above).
func (p *Profile) OneWay(n int) time.Duration {
	if proto := p.Choose(n); proto == Eager {
		return p.EagerOneWay(n)
	}
	return p.RdvOneWay(n)
}

// Choose returns the protocol the driver picks for an n-byte payload:
// whichever is predicted faster, except that payloads above EagerMax must
// use rendezvous.
func (p *Profile) Choose(n int) Protocol {
	if p.EagerMax > 0 && n > p.EagerMax {
		return Rendezvous
	}
	if p.EagerOneWay(n) <= p.RdvOneWay(n) {
		return Eager
	}
	return Rendezvous
}

// Threshold returns the payload size at which the rendezvous path becomes
// faster than the eager path (the model's natural rendezvous threshold),
// capped at EagerMax.
func (p *Profile) Threshold() int {
	// Eager:      a1 + n*s1  with a1 = SendOv+WireLat+RecvOv, s1 = 1/EagerRate
	// Rendezvous: a2 + n*s2  with a2 = RdvSetup,               s2 = 1/WireBandwidth
	a1 := float64(p.SendOverhead + p.WireLatency + p.RecvOverhead)
	a2 := float64(p.RdvSetup())
	s1 := 1e9 / p.EagerRate
	s2 := 1e9 / p.WireBandwidth
	if s1 <= s2 {
		// Eager never loses; threshold is the hard cap.
		return p.EagerMax
	}
	n := int(math.Ceil((a2 - a1) / (s1 - s2)))
	if p.EagerMax > 0 && n > p.EagerMax {
		return p.EagerMax
	}
	if n < 0 {
		n = 0
	}
	return n
}

// Bandwidth returns the modeled ping-pong bandwidth (bytes/second) at
// size n, i.e. n divided by the one-way latency.
func (p *Profile) Bandwidth(n int) float64 {
	t := p.OneWay(n)
	if t <= 0 {
		return 0
	}
	return float64(n) / t.Seconds()
}

// Validate checks the profile for usable values.
func (p *Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("model: profile has no name")
	case p.EagerRate <= 0:
		return fmt.Errorf("model: %s: EagerRate must be positive", p.Name)
	case p.WireBandwidth <= 0:
		return fmt.Errorf("model: %s: WireBandwidth must be positive", p.Name)
	case p.RecvCopyRate <= 0:
		return fmt.Errorf("model: %s: RecvCopyRate must be positive", p.Name)
	case p.WireLatency < 0 || p.SendOverhead < 0 || p.RecvOverhead < 0 || p.RdvHandshakeCPU < 0:
		return fmt.Errorf("model: %s: negative duration", p.Name)
	case p.EagerMax < 0 || p.MaxMsg < 0:
		return fmt.Errorf("model: %s: negative size limit", p.Name)
	}
	return nil
}

func (p *Profile) String() string {
	return fmt.Sprintf("%s{lat=%v eager=%.0fMB/s wire=%.0fMB/s thresh=%d}",
		p.Name, p.WireLatency, p.EagerRate/1e6, p.WireBandwidth/1e6, p.Threshold())
}
