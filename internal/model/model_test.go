package model

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

const (
	kib = 1024
	mib = 1024 * 1024
)

// mibps converts bytes/second to the paper's "MB/s" (MiB/s) plot unit.
func mibps(bps float64) float64 { return bps / (1 << 20) }

func within(t *testing.T, got, want, tolFrac float64, what string) {
	t.Helper()
	if want == 0 {
		t.Fatalf("%s: zero want", what)
	}
	if math.Abs(got-want)/math.Abs(want) > tolFrac {
		t.Fatalf("%s = %.4g, want %.4g (±%.1f%%)", what, got, want, tolFrac*100)
	}
}

func TestValidateAcceptsBuiltins(t *testing.T) {
	for _, p := range []*Profile{Myri10G(), QsNetII(), IBVerbs(), GigE()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	cases := []Profile{
		{},
		{Name: "x"},
		{Name: "x", EagerRate: 1e9},
		{Name: "x", EagerRate: 1e9, WireBandwidth: 1e9},
		{Name: "x", EagerRate: 1e9, WireBandwidth: 1e9, RecvCopyRate: 1e9, WireLatency: -1},
		{Name: "x", EagerRate: 1e9, WireBandwidth: 1e9, RecvCopyRate: 1e9, EagerMax: -1},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, c)
		}
	}
}

// Paper checkpoint (Fig 8): "by sending the whole message through
// Myri-10G, a 1170 MB/s bandwidth is reached whereas sending the message
// through Quadrics permits to reach 837 MB/s."
func TestPaperCheckpointPeakBandwidths(t *testing.T) {
	within(t, mibps(Myri10G().Bandwidth(8*mib)), 1170, 0.01, "Myri-10G peak MB/s at 8MB")
	within(t, mibps(QsNetII().Bandwidth(8*mib)), 837, 0.01, "QsNetII peak MB/s at 8MB")
}

// Paper checkpoint (Fig 8, iso-split): "when the application sends a 4 MB
// message, a 2 MB chunk of message is sent over Myri-10G in approximately
// 1730 µs while another 2 MB chunk is sent through Quadrics in 2400 µs.
// The Myri-10G network is thus unused for 670 µs."
func TestPaperCheckpointIsoSplit4MB(t *testing.T) {
	m, q := Myri10G(), QsNetII()
	tm := m.RdvOneWay(2 * mib)
	tq := q.RdvOneWay(2 * mib)
	within(t, tm.Seconds()*1e6, 1730, 0.02, "Myri 2MB chunk µs")
	within(t, tq.Seconds()*1e6, 2400, 0.02, "Quadrics 2MB chunk µs")
	within(t, (tq-tm).Seconds()*1e6, 670, 0.05, "idle gap µs")
}

// Paper checkpoint (Fig 8, hetero-split): "a 2437 KB chunk of message is
// sent through Myri-10G in 1999 µs whereas a 1757 KB chunk is sent over
// Quadrics in 2001 µs."
func TestPaperCheckpointHeteroSplit4MB(t *testing.T) {
	m, q := Myri10G(), QsNetII()
	// Equal-completion split of 4 MiB between the two rendezvous paths.
	size := 4 * mib
	sm := 1e9 / m.WireBandwidth // ns per byte
	sq := 1e9 / q.WireBandwidth
	am := float64(m.RdvSetup())
	aq := float64(q.RdvSetup())
	// am + r*size*sm = aq + (1-r)*size*sq
	r := (aq - am + float64(size)*sq) / (float64(size) * (sm + sq))
	chunkM := int(math.Round(r * float64(size)))
	chunkQ := size - chunkM
	within(t, float64(chunkM)/1e3, 2437, 0.01, "Myri chunk KB")
	within(t, float64(chunkQ)/1e3, 1757, 0.01, "Quadrics chunk KB")
	within(t, m.RdvOneWay(chunkM).Seconds()*1e6, 1999, 0.01, "Myri chunk µs")
	within(t, q.RdvOneWay(chunkQ).Seconds()*1e6, 2001, 0.01, "Quadrics chunk µs")
}

// Paper checkpoint (Fig 8): iso-split peaks near 1670 MB/s (twice the
// slower rail), and the theoretical aggregate is close to 2 GB/s.
func TestPaperCheckpointIsoAndAggregatePeaks(t *testing.T) {
	m, q := Myri10G(), QsNetII()
	size := 8 * mib
	tIso := m.RdvOneWay(size / 2)
	if tq := q.RdvOneWay(size / 2); tq > tIso {
		tIso = tq
	}
	within(t, mibps(float64(size)/tIso.Seconds()), 1670, 0.01, "iso-split peak MB/s")
	within(t, mibps(m.WireBandwidth+q.WireBandwidth), 2007, 0.02, "aggregate wire MB/s (~2GB/s)")
}

// Paper checkpoint (§IV-B / Fig 9): optimal split with the 3 µs offload
// cost reduces 64 KB latency by roughly 30% versus the best single rail.
func TestPaperCheckpointFig9Reduction(t *testing.T) {
	m, q := Myri10G(), QsNetII()
	size := 64 * kib
	sm := 1e9 / m.WireBandwidth
	sq := 1e9 / q.WireBandwidth
	r := (float64(q.RdvSetup()) - float64(m.RdvSetup()) + float64(size)*sq) /
		(float64(size) * (sm + sq))
	split := OffloadSyncCost + m.RdvOneWay(int(r*float64(size)))
	single := m.OneWay(size)
	if qw := q.OneWay(size); qw < single {
		single = qw
	}
	red := 1 - split.Seconds()/single.Seconds()
	if red < 0.25 || red > 0.40 {
		t.Fatalf("64KB latency reduction = %.1f%%, want ~30%%", red*100)
	}
}

// Paper checkpoint (§IV-B): splitting small messages is counterproductive
// because of the 3 µs offload cost — at 4 B the best split is worse than
// the best single rail.
func TestPaperCheckpointTinySplitCounterproductive(t *testing.T) {
	m, q := Myri10G(), QsNetII()
	best := q.OneWay(4)
	if mw := m.OneWay(4); mw < best {
		best = mw
	}
	// Even a maximally favourable split (everything on the faster rail)
	// still pays the offload sync cost.
	split := OffloadSyncCost + best
	if split <= best {
		t.Fatalf("split %v <= single %v at 4B; offload cost lost", split, best)
	}
	if ratio := float64(split) / float64(best); ratio < 1.5 {
		t.Fatalf("tiny-message split penalty %.2fx, want >=1.5x", ratio)
	}
}

func TestOffloadCostConstants(t *testing.T) {
	if OffloadSyncCost != 3*time.Microsecond {
		t.Errorf("OffloadSyncCost = %v, want 3µs (paper §III-D)", OffloadSyncCost)
	}
	if OffloadPreemptCost != 6*time.Microsecond {
		t.Errorf("OffloadPreemptCost = %v, want 6µs (paper §III-D)", OffloadPreemptCost)
	}
}

func TestQsNetHasLowerSmallMessageLatency(t *testing.T) {
	// Fig 3/9: the Quadrics curve sits below Myri-10G at small sizes.
	if QsNetII().OneWay(4) >= Myri10G().OneWay(4) {
		t.Fatal("QsNetII should beat Myri-10G at 4B")
	}
	// ... and above it at large sizes (bandwidth-bound).
	if QsNetII().OneWay(1*mib) <= Myri10G().OneWay(1*mib) {
		t.Fatal("Myri-10G should beat QsNetII at 1MB")
	}
}

func TestThresholdIsCrossover(t *testing.T) {
	for _, p := range []*Profile{Myri10G(), QsNetII(), IBVerbs()} {
		th := p.Threshold()
		if th <= 0 || th > p.EagerMax {
			t.Fatalf("%s: threshold %d outside (0,%d]", p.Name, th, p.EagerMax)
		}
		if th == p.EagerMax {
			continue // capped; no crossover to check
		}
		if p.EagerOneWay(th-64) > p.RdvOneWay(th-64) {
			t.Errorf("%s: eager should win just below threshold %d", p.Name, th)
		}
		if p.EagerOneWay(th+64) < p.RdvOneWay(th+64) {
			t.Errorf("%s: rendezvous should win just above threshold %d", p.Name, th)
		}
	}
}

func TestChooseRespectsEagerMax(t *testing.T) {
	p := Myri10G()
	if p.Choose(p.EagerMax+1) != Rendezvous {
		t.Fatal("payload above EagerMax must use rendezvous")
	}
}

func TestSendCPUTimeRegimes(t *testing.T) {
	p := Myri10G()
	if got := p.SendCPUTime(Rendezvous, 8*mib); got != p.SendOverhead {
		t.Errorf("rendezvous CPU time = %v, want just overhead %v (DMA frees the core)", got, p.SendOverhead)
	}
	eager := p.SendCPUTime(Eager, 16*kib)
	if eager <= p.SendOverhead {
		t.Error("eager CPU time must include the PIO copy")
	}
	n := 16 * kib
	want := p.SendOverhead + time.Duration(float64(n)/0.87)
	within(t, float64(eager), float64(want), 0.01, "eager CPU time")
}

func TestProtocolString(t *testing.T) {
	if Eager.String() != "eager" || Rendezvous.String() != "rendezvous" {
		t.Fatal("protocol names")
	}
	if Protocol(9).String() == "" {
		t.Fatal("unknown protocol must still format")
	}
}

func TestUniformProfile(t *testing.T) {
	p := Uniform("u", 5*time.Microsecond, 1e9, 8*kib)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Choose(16*kib) != Rendezvous {
		t.Fatal("uniform profile must force rendezvous above eager max")
	}
}

// Property: one-way latency is nondecreasing in message size for every
// built-in profile.
func TestPropertyOneWayMonotone(t *testing.T) {
	profiles := []*Profile{Myri10G(), QsNetII(), IBVerbs(), GigE()}
	f := func(aRaw, bRaw uint32) bool {
		a := int(aRaw % (16 * mib))
		b := int(bRaw % (16 * mib))
		if a > b {
			a, b = b, a
		}
		for _, p := range profiles {
			ta, tb := p.OneWay(a), p.OneWay(b)
			// Allow the protocol switch to produce a tiny non-monotonicity
			// of at most the handshake cost right at the threshold.
			if ta > tb+p.RdvSetup() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Bandwidth(n)*OneWay(n) reconstructs n for positive sizes.
func TestPropertyBandwidthConsistent(t *testing.T) {
	p := Myri10G()
	f := func(raw uint32) bool {
		n := int(raw%(8*mib)) + 1
		back := p.Bandwidth(n) * p.OneWay(n).Seconds()
		return math.Abs(back-float64(n)) < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Choose always picks the regime with the smaller modeled
// one-way time, unless forced by EagerMax.
func TestPropertyChooseOptimal(t *testing.T) {
	profiles := []*Profile{Myri10G(), QsNetII(), IBVerbs(), GigE()}
	f := func(raw uint32, idx uint8) bool {
		p := profiles[int(idx)%len(profiles)]
		n := int(raw % (2 * mib))
		got := p.Choose(n)
		if n > p.EagerMax {
			return got == Rendezvous
		}
		if p.EagerOneWay(n) <= p.RdvOneWay(n) {
			return got == Eager
		}
		return got == Rendezvous
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
