//go:build !unix

package shmnet

import (
	"errors"
	"time"
)

// mapping is unavailable on platforms without mmap support: only the
// hosted (heap-backed) fabric works there.
type mapping struct{}

func (m *mapping) region(off, n int) []byte { return nil }
func (m *mapping) close()                   {}

func attachPair(dir string, lo, hi, rail, ringBytes int, create bool, timeout time.Duration) (*mapping, error) {
	return nil, errors.New("shmnet: distributed (mmap-backed) mode requires a unix platform")
}
