package shmnet_test

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/rt"
	"repro/internal/sampling"
	"repro/internal/shmnet"
)

// waitOrFatal bounds a live-mode wait so a wedged transfer fails the
// test instead of hanging it.
func waitOrFatal(t *testing.T, what string, done <-chan struct{}) {
	t.Helper()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("%s timed out", what)
	}
}

// shmProfiles builds deterministic sampled profiles under which sizes up
// to eagerMax go eager and larger ones go rendezvous.
func shmProfiles(nrails, eagerMax int) []*sampling.RailProfile {
	eager, err := sampling.NewTable([]sampling.Sample{
		{Size: 4, T: 1 * time.Microsecond},
		{Size: eagerMax, T: 10 * time.Microsecond},
	})
	if err != nil {
		panic(err)
	}
	rdv, err := sampling.NewTable([]sampling.Sample{
		{Size: 4, T: 50 * time.Microsecond},
		{Size: 8 << 20, T: 5 * time.Millisecond},
	})
	if err != nil {
		panic(err)
	}
	out := make([]*sampling.RailProfile, nrails)
	for r := range out {
		out[r] = &sampling.RailProfile{
			Rail: r, Name: "shm", Eager: eager, Rdv: rdv, EagerMax: eagerMax,
		}
	}
	return out
}

func engineOn(t *testing.T, env rt.Env, f fabric.Fabric, node int, profs []*sampling.RailProfile) *core.Engine {
	t.Helper()
	eng, err := core.NewEngine(env, f.Node(node), profs, core.Config{DirectProgress: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Stop)
	return eng
}

// Raw fabric: a frame pushed on a rail lands in the peer's receive queue
// with the right origin, rail and bytes — no sockets involved.
func TestRawFrameCrossesRing(t *testing.T) {
	env := rt.NewLive()
	f, err := shmnet.NewHosted(env, shmnet.Config{Nodes: 2, Rails: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	payload := []byte("bytes through a shared-memory ring")
	done := make(chan struct{})
	var got *fabric.Delivery
	env.Go("recv", func(ctx rt.Ctx) {
		defer close(done)
		got = f.Node(1).RecvQ().Pop(ctx).(*fabric.Delivery)
	})
	env.Go("send", func(ctx rt.Ctx) {
		f.Node(0).Rail(1).SendEager(ctx, 1, payload)
	})
	waitOrFatal(t, "raw frame", done)
	if got.From != 0 || got.Rail != 1 || !bytes.Equal(got.Data, payload) {
		t.Fatalf("delivery %+v", got)
	}
	st := f.Node(0).Rail(1).Stats()
	if st.Messages != 1 || st.Bytes != uint64(len(payload)) {
		t.Fatalf("sender stats %+v", st)
	}
}

// A frame larger than the ring streams through in pieces.
func TestFrameLargerThanRingStreams(t *testing.T) {
	env := rt.NewLive()
	f, err := shmnet.NewHosted(env, shmnet.Config{Nodes: 2, Rails: 1, RingBytes: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	payload := make([]byte, 1<<20)
	rand.New(rand.NewSource(7)).Read(payload)
	done := make(chan struct{})
	var got *fabric.Delivery
	env.Go("recv", func(ctx rt.Ctx) {
		defer close(done)
		got = f.Node(1).RecvQ().Pop(ctx).(*fabric.Delivery)
	})
	env.Go("send", func(ctx rt.Ctx) {
		ev := env.NewEvent()
		f.Node(0).Rail(0).SendData(ctx, 1, payload, ev)
		ev.Wait(ctx)
	})
	waitOrFatal(t, "oversized frame", done)
	if !bytes.Equal(got.Data, payload) {
		t.Fatal("payload corrupted while streaming through the ring")
	}
}

// The engine over shm: eager flows and a striped rendezvous arrive
// intact, and every rail moves bytes.
func TestEngineOverShmRails(t *testing.T) {
	env := rt.NewLive()
	f, err := shmnet.NewHosted(env, shmnet.Config{Nodes: 2, Rails: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	profs := shmProfiles(2, 32<<10)
	eng0 := engineOn(t, env, f, 0, profs)
	eng1 := engineOn(t, env, f, 1, profs)

	const flows = 8
	rng := rand.New(rand.NewSource(11))
	payloads := make([][]byte, flows)
	bufs := make([][]byte, flows)
	for i := range payloads {
		payloads[i] = make([]byte, rng.Intn(4<<10)+1)
		rng.Read(payloads[i])
		bufs[i] = make([]byte, len(payloads[i]))
	}
	big := make([]byte, 4<<20)
	rng.Read(big)
	bigBuf := make([]byte, len(big))

	done := make(chan struct{})
	env.Go("app", func(ctx rt.Ctx) {
		defer close(done)
		reqs := make([]*core.RecvRequest, flows)
		for i := range reqs {
			reqs[i] = eng1.Irecv(0, uint32(i), bufs[i])
		}
		bigReq := eng1.Irecv(0, 99, bigBuf)
		for i := range payloads {
			eng0.Isend(1, uint32(i), payloads[i])
		}
		sr := eng0.Isend(1, 99, big)
		for i, r := range reqs {
			if n, err := r.Wait(ctx); err != nil || n != len(payloads[i]) {
				t.Errorf("flow %d: n=%d err=%v", i, n, err)
			}
		}
		if n, err := bigReq.Wait(ctx); err != nil || n != len(big) {
			t.Errorf("big: n=%d err=%v", n, err)
		}
		sr.RemoteDone().Wait(ctx)
	})
	waitOrFatal(t, "shm engine traffic", done)
	for i := range payloads {
		if !bytes.Equal(bufs[i], payloads[i]) {
			t.Fatalf("flow %d corrupted", i)
		}
	}
	if !bytes.Equal(bigBuf, big) {
		t.Fatal("rendezvous payload corrupted")
	}
	st := eng0.Stats()
	if st.EagerSent != flows || st.RdvSent != 1 {
		t.Fatalf("protocol mix: %+v", st)
	}
	moved := 0
	for r := 0; r < 2; r++ {
		if b := f.Node(0).Rail(r).Stats().Bytes; b > 0 {
			moved++
		}
	}
	if moved != 2 {
		t.Fatalf("only %d of 2 shm rails moved bytes", moved)
	}
}

// FailRail mid-rendezvous: the frames in flight on the killed rail are
// lost, the engine fails the unacknowledged chunks over to the surviving
// rail, and the payload still arrives intact. EnableRail then revives
// the lane.
func TestChaosShmRailDiesMidTransfer(t *testing.T) {
	env := rt.NewLive()
	f, err := shmnet.NewHosted(env, shmnet.Config{Nodes: 2, Rails: 2, RingBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	profs := shmProfiles(2, 32<<10)
	eng0 := engineOn(t, env, f, 0, profs)
	eng1 := engineOn(t, env, f, 1, profs)

	payload := make([]byte, 8<<20)
	rand.New(rand.NewSource(3)).Read(payload)
	buf := make([]byte, len(payload))

	done := make(chan struct{})
	var killOnce sync.Once
	env.Go("app", func(ctx rt.Ctx) {
		defer close(done)
		rr := eng1.Irecv(0, 42, buf)
		sr := eng0.Isend(1, 42, payload)
		// Kill rail 0 while chunks are streaming through its small rings.
		go killOnce.Do(func() {
			time.Sleep(2 * time.Millisecond)
			f.FailRail(0, 0)
		})
		if n, err := rr.Wait(ctx); err != nil || n != len(payload) {
			t.Errorf("recv: n=%d err=%v", n, err)
		}
		sr.RemoteDone().Wait(ctx)
	})
	waitOrFatal(t, "chaos transfer", done)
	if !bytes.Equal(buf, payload) {
		t.Fatal("payload corrupted across the failover")
	}
	if st := f.Node(0).Rail(0).State(); st != fabric.RailDown {
		t.Fatalf("killed rail state %v, want down", st)
	}

	// Revive: traffic flows over the lane again.
	f.Node(0).Health().Enable(0)
	f.Node(1).Health().Enable(0)
	done2 := make(chan struct{})
	env.Go("after-revive", func(ctx rt.Ctx) {
		defer close(done2)
		small := []byte("revived lane")
		rr := eng1.Irecv(0, 43, make([]byte, len(small)))
		eng0.Isend(1, 43, small)
		if n, err := rr.Wait(ctx); err != nil || n != len(small) {
			t.Errorf("post-revive recv: n=%d err=%v", n, err)
		}
	})
	waitOrFatal(t, "post-revive traffic", done2)
}

// ThrottleRail slows a lane without killing it: a throttled copy takes
// measurably longer end to end, and removing the throttle restores it.
func TestThrottleRailSlowsLane(t *testing.T) {
	env := rt.NewLive()
	f, err := shmnet.NewHosted(env, shmnet.Config{Nodes: 2, Rails: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	payload := make([]byte, 64<<10)

	oneWay := func() time.Duration {
		done := make(chan struct{})
		var took time.Duration
		start := time.Now()
		env.Go("recv", func(ctx rt.Ctx) {
			defer close(done)
			f.Node(1).RecvQ().Pop(ctx)
			took = time.Since(start)
		})
		env.Go("send", func(ctx rt.Ctx) {
			f.Node(0).Rail(0).SendEager(ctx, 1, payload)
		})
		waitOrFatal(t, "throttled frame", done)
		return took
	}
	base := oneWay()
	f.ThrottleRail(0, 50)
	slow := oneWay()
	f.ThrottleRail(0, 1)
	if slow < base+2*time.Millisecond && slow < 10*base {
		t.Fatalf("throttle 50x: %v -> %v, want a clear slowdown", base, slow)
	}
	if st := f.Node(0).Rail(0).State(); st != fabric.RailUp {
		t.Fatalf("throttled rail state %v, want up", st)
	}
}

// The mmap-backed distributed shape: two fabrics in one test process,
// each hosting one node, joined by ring files — the examples/tcp2proc
// deployment without the second OS process.
func TestDistributedPairOverMmapRings(t *testing.T) {
	dir := t.TempDir()
	cfg := shmnet.Config{Nodes: 2, Rails: 2, Dir: dir, RingBytes: 32 << 10}

	envA := rt.NewLive()
	envB := rt.NewLive()
	var fa, fb *shmnet.Fabric
	var ea, eb error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); fa, ea = shmnet.NewDistributed(envA, 0, cfg) }()
	go func() { defer wg.Done(); fb, eb = shmnet.NewDistributed(envB, 1, cfg) }()
	wg.Wait()
	if ea != nil || eb != nil {
		t.Fatalf("attach: %v / %v", ea, eb)
	}
	defer fa.Close()
	defer fb.Close()

	profs := shmProfiles(2, 32<<10)
	eng0 := engineOn(t, envA, fa, 0, profs)
	eng1 := engineOn(t, envB, fb, 1, profs)

	payload := make([]byte, 1<<20)
	rand.New(rand.NewSource(5)).Read(payload)
	buf := make([]byte, len(payload))
	done := make(chan struct{})
	envB.Go("recv", func(ctx rt.Ctx) {
		defer close(done)
		rr := eng1.Irecv(0, 7, buf)
		if n, err := rr.Wait(ctx); err != nil || n != len(payload) {
			t.Errorf("recv: n=%d err=%v", n, err)
		}
	})
	envA.Go("send", func(ctx rt.Ctx) {
		sr := eng0.Isend(1, 7, payload)
		sr.RemoteDone().Wait(ctx)
	})
	waitOrFatal(t, "cross-fabric transfer", done)
	if !bytes.Equal(buf, payload) {
		t.Fatal("payload corrupted across the mmap rings")
	}
}

// A FailRail in one process must reach the peer process through the
// ring status word: the peer's next send on the lane is dropped AND its
// health tracker reports the rail Down, so its engine replans instead
// of waiting forever for an ack that cannot come.
func TestRemoteFailRailReportsDownOnSender(t *testing.T) {
	dir := t.TempDir()
	cfg := shmnet.Config{Nodes: 2, Rails: 2, Dir: dir, RingBytes: 16 << 10}

	envA := rt.NewLive()
	envB := rt.NewLive()
	var fa, fb *shmnet.Fabric
	var ea, eb error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); fa, ea = shmnet.NewDistributed(envA, 0, cfg) }()
	go func() { defer wg.Done(); fb, eb = shmnet.NewDistributed(envB, 1, cfg) }()
	wg.Wait()
	if ea != nil || eb != nil {
		t.Fatalf("attach: %v / %v", ea, eb)
	}
	defer fa.Close()
	defer fb.Close()

	// Process A kills rail 0. Process B has seen no traffic on it.
	fa.FailRail(0, 0)
	if st := fa.Node(0).Rail(0).State(); st != fabric.RailDown {
		t.Fatalf("killer's rail state %v, want down", st)
	}
	if st := fb.Node(1).Rail(0).State(); st != fabric.RailUp {
		t.Fatalf("peer's rail already %v before touching the lane", st)
	}

	// B's next send on the lane observes the status word.
	done := make(chan struct{})
	envB.Go("send", func(ctx rt.Ctx) {
		defer close(done)
		fb.Node(1).Rail(0).SendEager(ctx, 0, []byte("dropped"))
	})
	waitOrFatal(t, "send on killed lane", done)
	deadline := time.Now().Add(5 * time.Second)
	for fb.Node(1).Rail(0).State() != fabric.RailDown {
		if time.Now().After(deadline) {
			t.Fatalf("peer never reported the remotely killed rail Down (state %v)",
				fb.Node(1).Rail(0).State())
		}
		time.Sleep(time.Millisecond)
	}
	// The surviving rail still works.
	done2 := make(chan struct{})
	var got *fabric.Delivery
	envA.Go("recv", func(ctx rt.Ctx) {
		defer close(done2)
		got = fa.Node(0).RecvQ().Pop(ctx).(*fabric.Delivery)
	})
	envB.Go("send2", func(ctx rt.Ctx) {
		fb.Node(1).Rail(1).SendEager(ctx, 0, []byte("survivor"))
	})
	waitOrFatal(t, "survivor rail", done2)
	if got.Rail != 1 || !bytes.Equal(got.Data, []byte("survivor")) {
		t.Fatalf("survivor delivery %+v", got)
	}

	// Cross-process revive: the killer enables the rail (reopening the
	// rings); the peer — which observed the kill only through its
	// writer — must come back Up when traffic flows to it again.
	fa.Node(0).Health().Enable(0)
	done3 := make(chan struct{})
	envB.Go("recv-revived", func(ctx rt.Ctx) {
		defer close(done3)
		d := fb.Node(1).RecvQ().Pop(ctx).(*fabric.Delivery)
		if d.Rail != 0 || !bytes.Equal(d.Data, []byte("revived")) {
			t.Errorf("revived delivery %+v", d)
		}
	})
	envA.Go("send-revived", func(ctx rt.Ctx) {
		fa.Node(0).Rail(0).SendEager(ctx, 1, []byte("revived"))
	})
	waitOrFatal(t, "revived lane traffic", done3)
	deadline = time.Now().Add(5 * time.Second)
	for fb.Node(1).Rail(0).State() != fabric.RailUp {
		if time.Now().After(deadline) {
			t.Fatalf("peer never reported the revived rail Up (state %v)", fb.Node(1).Rail(0).State())
		}
		time.Sleep(time.Millisecond)
	}
}
