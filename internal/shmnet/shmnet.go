package shmnet

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/fabric"
	"repro/internal/model"
	"repro/internal/railhealth"
	"repro/internal/rt"
)

// maxFrame bounds a single length-prefixed frame (1 GiB), matching
// livenet so a mixed cluster has one limit.
const maxFrame = 1 << 30

// goodbyeFrame is the length-prefix sentinel a closing link writes so
// the peer can tell a graceful shutdown from a stalled producer.
const goodbyeFrame = 0xFFFFFFFF

// initialRate seeds the per-rail copy-throughput estimate (8 GiB/s — a
// memory-bandwidth-class path) until real writes calibrate it.
const initialRate = float64(8 << 30)

// rateCalibMin is the smallest write that updates the throughput EWMA;
// tiny frames measure ring-cursor latency, not copy bandwidth.
const rateCalibMin = 4 << 10

// throttleQueue is the standing-queue delay ThrottleRail charges per
// frame per unit of slow-down, mirroring livenet's bufferbloat model so
// a throttled shm rail is observable at every transfer size.
const throttleQueue = 100 * time.Microsecond

// Config describes a shared-memory fabric.
type Config struct {
	// Nodes is the total number of nodes in the system (default 2).
	Nodes int
	// Rails is the number of parallel shm rails per node pair (default 1).
	Rails int
	// CoresPerNode is the core count each node reports (default 4).
	CoresPerNode int
	// EagerMax is the largest eager payload a rail accepts; above it the
	// engine must use the rendezvous path (default 64 KiB — the PIO
	// regime stretches further on a memory path than on a NIC).
	EagerMax int
	// RingBytes is the payload capacity of each direction's ring
	// (default 256 KiB). Frames larger than the ring still flow — they
	// stream through in pieces.
	RingBytes int
	// Dir is the directory holding the mmap-backed ring files
	// (distributed mode only). Both processes must name the same
	// directory, which must not hold ring files of a previous session.
	Dir string
	// AttachTimeout bounds how long a distributed node waits for its
	// peer's ring files to appear (default 10s).
	AttachTimeout time.Duration
	// OnStall, when set, fires once per ring-full backpressure episode
	// on any of a hosted node's send rings, with the rail index. It is
	// called from the producer goroutine mid-write, so it must be cheap
	// and must not block — multirail wires it to the flight recorder's
	// anomaly dump, which is rate-limited internally.
	OnStall func(rail int)
}

func (c *Config) defaults() {
	if c.Nodes == 0 {
		c.Nodes = 2
	}
	if c.Rails == 0 {
		c.Rails = 1
	}
	if c.CoresPerNode == 0 {
		c.CoresPerNode = 4
	}
	if c.EagerMax == 0 {
		c.EagerMax = 64 << 10
	}
	if c.RingBytes == 0 {
		c.RingBytes = 256 << 10
	}
	// Ring regions are laid out back to back (in the mmap files too), so
	// the payload size must preserve the header atomics' 8-byte alignment.
	c.RingBytes = (c.RingBytes + 7) &^ 7
	if c.AttachTimeout <= 0 {
		c.AttachTimeout = 10 * time.Second
	}
}

func (c *Config) validate() error {
	if c.Nodes < 2 {
		return fmt.Errorf("shmnet: need at least 2 nodes, got %d", c.Nodes)
	}
	if c.Rails < 1 {
		return fmt.Errorf("shmnet: need at least 1 rail, got %d", c.Rails)
	}
	if c.RingBytes < 4<<10 {
		return fmt.Errorf("shmnet: ring of %d bytes is too small (min 4 KiB)", c.RingBytes)
	}
	return nil
}

// Fabric is a shared-memory multirail fabric (implements fabric.Fabric).
type Fabric struct {
	env   *rt.LiveEnv
	cfg   Config
	local int // hosted node id; -1 when all nodes are hosted
	nodes []*Node

	wg       sync.WaitGroup // readers and writers
	closedCh chan struct{}
	closed   atomic.Bool

	mu       sync.Mutex
	firstErr error
	maps     []*mapping // mmap regions to release at Close
}

// NewHosted builds a fabric hosting all cfg.Nodes in this process,
// joined by heap-backed rings — the loopback shape the mixed shm+TCP
// cluster uses.
func NewHosted(env *rt.LiveEnv, cfg Config) (*Fabric, error) {
	cfg.defaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	f := newFabric(env, cfg, -1)
	for i := 1; i < cfg.Nodes; i++ {
		for j := 0; j < i; j++ {
			for r := 0; r < cfg.Rails; r++ {
				// Two heap rings per lane: j->i and i->j, with in-process
				// wakeups so an idle lane answers its first frame fast.
				fwd := newRing(alignedRegion(ringRegionSize(cfg.RingBytes)), true).enableWake()
				rev := newRing(alignedRegion(ringRegionSize(cfg.RingBytes)), true).enableWake()
				f.register(f.nodes[j], i, r, fwd, rev)
				f.register(f.nodes[i], j, r, rev, fwd)
			}
		}
	}
	f.start()
	return f, nil
}

// NewDistributed builds a fabric hosting only node `local` in this
// process, attached to its peers through mmap-backed ring files in
// cfg.Dir (all processes must run on one host). The lower-id side of
// each pair creates the file; the higher-id side attaches, waiting up
// to cfg.AttachTimeout for it to appear.
func NewDistributed(env *rt.LiveEnv, local int, cfg Config) (*Fabric, error) {
	cfg.defaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if local < 0 || local >= cfg.Nodes {
		return nil, fmt.Errorf("shmnet: local node %d out of range [0,%d)", local, cfg.Nodes)
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("shmnet: distributed mode needs Dir for the ring files")
	}
	f := newFabric(env, cfg, local)
	for peer := 0; peer < cfg.Nodes; peer++ {
		if peer == local {
			continue
		}
		for r := 0; r < cfg.Rails; r++ {
			lo, hi := local, peer
			if lo > hi {
				lo, hi = hi, lo
			}
			m, err := attachPair(cfg.Dir, lo, hi, r, cfg.RingBytes, local == lo, cfg.AttachTimeout)
			if err != nil {
				f.Close()
				return nil, err
			}
			f.mu.Lock()
			f.maps = append(f.maps, m)
			f.mu.Unlock()
			// The file lays out the lo->hi ring first, hi->lo second.
			loHi := newRing(m.region(0, ringRegionSize(cfg.RingBytes)), false)
			hiLo := newRing(m.region(ringRegionSize(cfg.RingBytes), ringRegionSize(cfg.RingBytes)), false)
			if local == lo {
				f.register(f.nodes[local], peer, r, loHi, hiLo)
			} else {
				f.register(f.nodes[local], peer, r, hiLo, loHi)
			}
		}
	}
	f.start()
	return f, nil
}

func newFabric(env *rt.LiveEnv, cfg Config, local int) *Fabric {
	f := &Fabric{env: env, cfg: cfg, local: local, closedCh: make(chan struct{})}
	for i := 0; i < cfg.Nodes; i++ {
		hosted := local < 0 || i == local
		n := &Node{f: f, id: i, hosted: hosted}
		if hosted {
			n.recvq = env.NewQueue()
			n.health = railhealth.New(env, i, cfg.Rails)
			n.killed = make([]atomic.Bool, cfg.Rails)
			n.downHint = make([]atomic.Bool, cfg.Rails)
			n.health.SetOnEnable(func(rail int) { f.enableRail(n, rail) })
			for r := 0; r < cfg.Rails; r++ {
				n.rails = append(n.rails, &Rail{
					node:  n,
					index: r,
					rate:  initialRate,
					links: make(map[int]*link),
					prof: &model.Profile{
						Name:          fmt.Sprintf("shm-r%d", r),
						EagerRate:     initialRate,
						RecvCopyRate:  initialRate,
						WireBandwidth: initialRate,
						EagerMax:      cfg.EagerMax,
					},
				})
			}
		}
		f.nodes = append(f.nodes, n)
	}
	return f
}

// register installs a link on a hosted node's rail: sendR carries owner
// -> peer traffic, recvR the reverse.
func (f *Fabric) register(owner *Node, peer, r int, sendR, recvR *ring) {
	l := &link{
		out:   make(chan outFrame, 64),
		peer:  peer,
		rail:  r,
		sendR: sendR,
		recvR: recvR,
	}
	rail := owner.rails[r]
	sendR.stalls = &rail.stalls // owner's writer is sendR's only producer
	if hook := f.cfg.OnStall; hook != nil {
		idx := r
		sendR.onStall = func() { hook(idx) }
	}
	rail.mu.Lock()
	rail.links[peer] = l
	rail.mu.Unlock()
}

// start launches the writer and reader goroutines of every registered
// link. Separate from registration so a partially constructed
// distributed fabric can be torn down without goroutines attached to
// half a mesh.
func (f *Fabric) start() {
	for _, n := range f.nodes {
		if !n.hosted {
			continue
		}
		for _, rail := range n.rails {
			rail.mu.Lock()
			links := make([]*link, 0, len(rail.links))
			for _, l := range rail.links {
				links = append(links, l)
			}
			rail.mu.Unlock()
			for _, l := range links {
				f.wg.Add(2)
				go f.writeLoop(n, l)
				go f.readLoop(n, l)
			}
		}
	}
}

// Env returns the wall-clock environment.
func (f *Fabric) Env() rt.Env { return f.env }

// NumNodes returns the total node count (hosted or not).
func (f *Fabric) NumNodes() int { return f.cfg.Nodes }

// NumRails returns the rail count.
func (f *Fabric) NumRails() int { return f.cfg.Rails }

// Node returns node i; in distributed mode non-hosted ids yield a stub
// that panics on rail or queue access.
func (f *Fabric) Node(i int) fabric.Node { return f.nodes[i] }

// Err returns the first transport error observed, if any. Ring lanes
// cannot lose bytes, so errors are limited to attach/setup problems.
func (f *Fabric) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.firstErr
}

// Close tears the fabric down: writers drain and say goodbye, readers
// join, mappings unmap. Safe to call more than once.
func (f *Fabric) Close() error {
	if !f.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(f.closedCh)
	f.wg.Wait()
	f.mu.Lock()
	maps := f.maps
	f.maps = nil
	f.mu.Unlock()
	for _, m := range maps {
		m.close()
	}
	return f.Err()
}

// outFrame is one queued wire frame.
type outFrame struct {
	data []byte
	done rt.Event
	rail *Rail
}

// finish retires the frame: accounting first, then the completion event.
func (of outFrame) finish(wrote, calib time.Duration, written bool) {
	of.rail.noteWritten(len(of.data), wrote, calib, written)
	if of.done != nil {
		of.done.Fire()
	}
}

// link is one endpoint of the ring pair joining a node pair on one rail.
type link struct {
	out   chan outFrame
	peer  int
	rail  int
	sendR *ring
	recvR *ring
}

// writeLoop drains a link's queue into its send ring. Each frame is a
// uint32 LE length prefix followed by the wire bytes. done events fire
// when the frame is fully in the ring — the shared-memory equivalent of
// "the PIO copy finished". Per-frame timestamps use internal/clock:
// on the intra-host rail a frame IS a memcpy, so two wall-clock reads
// per frame would be a measurable fraction of the frame itself.
//
//railvet:hotpath
func (f *Fabric) writeLoop(n *Node, l *link) {
	defer f.wg.Done()
	abort := func() bool { return f.closed.Load() }
	for {
		select {
		case of := <-l.out:
			if f.railKilled(n.id, l.rail) || l.sendR.status.Load() == ringKilled {
				// Killed rail: the frame is lost, exactly as a dying NIC
				// loses in-flight messages. Report Down (idempotent) —
				// a peer process's FailRail reaches this side only
				// through the ring status word, and without the report
				// the engine would never replan the dropped frames onto
				// a surviving rail. Then the engine's ack-and-replan
				// machinery recovers them.
				n.downHint[l.rail].Store(true)
				n.health.Report(l.rail, fabric.RailDown, fmt.Sprintf("rail %d killed", l.rail))
				of.finish(0, 0, false)
				continue
			}
			var lenbuf [4]byte
			binary.LittleEndian.PutUint32(lenbuf[:], uint32(len(of.data)))
			start := clock.Now()
			if th := of.rail.throttleFactor(); th > 1 {
				// Chaos throttle, mirroring livenet: stretch the frame's
				// transmission before it reaches the ring, plus a
				// standing-queue term so small frames feel it too.
				exp := float64(len(of.data)+4)/of.rail.currentRate() + throttleQueue.Seconds()
				time.Sleep(time.Duration(exp * (th - 1) * 1e9))
			}
			writeStart := clock.Now()
			ok := l.sendR.write(lenbuf[:], abort)
			if ok {
				ok = l.sendR.write(of.data, abort)
			}
			calib := clock.Since(writeStart)
			took := clock.Since(start)
			of.finish(took, calib, ok)
			if ok {
				n.observeWrite(l.peer, of.rail.index, len(of.data), took)
			}
		case <-f.closedCh:
			// Drain pending frames, firing their events so no sender
			// waits on a closing fabric; then say goodbye so the peer's
			// reader (possibly in another process) stops cleanly.
			drainLink(l)
			var lenbuf [4]byte
			binary.LittleEndian.PutUint32(lenbuf[:], goodbyeFrame)
			l.sendR.write(lenbuf[:], func() bool { return true }) // best effort: never blocks
			l.sendR.status.Store(ringGoodbye)
			nudge(l.sendR.dataWake) // a parked reader must see the goodbye
			return
		}
	}
}

// drainLink empties a closing link's queue, retiring every frame without
// writing it so no completion event is lost at shutdown. A sender racing
// Close may still enqueue after this drain sees the channel empty;
// send() re-drains in that case.
func drainLink(l *link) {
	for {
		select {
		case of := <-l.out:
			of.finish(0, 0, false)
		default:
			return
		}
	}
}

// readLoop decodes length-prefixed frames from the link's receive ring
// into deliveries for node n (which received them from l.peer on
// l.rail). Frames read while the rail is killed are discarded — the
// chaos hook's message loss — and the kill/revive transitions are
// reported to the health tracker (the peer process sees them through
// the ring status word).
func (f *Fabric) readLoop(n *Node, l *link) {
	defer f.wg.Done()
	abort := func() bool { return f.closed.Load() }
	var lenbuf [4]byte
	for {
		if !l.recvR.read(lenbuf[:], abort) {
			if !f.closed.Load() {
				// Goodbye: the peer shut down gracefully. Not an error.
				n.health.Report(l.rail, fabric.RailDown, fmt.Sprintf("node %d shut down", l.peer))
			}
			return
		}
		sz := binary.LittleEndian.Uint32(lenbuf[:])
		if sz == goodbyeFrame {
			if !f.closed.Load() {
				n.health.Report(l.rail, fabric.RailDown, fmt.Sprintf("node %d shut down", l.peer))
			}
			return
		}
		if sz > maxFrame {
			f.fail(fmt.Errorf("shmnet: frame of %d bytes exceeds limit", sz))
			n.health.Report(l.rail, fabric.RailDown, "oversized frame")
			return
		}
		data := make([]byte, sz)
		if !l.recvR.read(data, abort) {
			return
		}
		if killed := l.recvR.status.Load() == ringKilled || f.railKilled(n.id, l.rail); killed {
			// Discard: the rail is dead, this frame is the loss. Report
			// Down once per kill episode (a remote FailRail reaches us
			// only through the status word).
			if n.downHint[l.rail].CompareAndSwap(false, true) {
				n.health.Report(l.rail, fabric.RailDown, fmt.Sprintf("rail %d killed", l.rail))
			}
			continue
		}
		if n.downHint[l.rail].Load() && n.downHint[l.rail].CompareAndSwap(true, false) {
			// Traffic flows again on a reopened ring: the lane is alive,
			// whichever side observed the kill (even if only this node's
			// writer did — a peer's EnableRail cannot reach our tracker
			// except through the wire). Admin-pinned rails stay Down
			// (Report respects the pin).
			n.health.Report(l.rail, fabric.RailUp, "rail revived")
		}
		n.deliver(&fabric.Delivery{
			From:   l.peer,
			Rail:   l.rail,
			Data:   data,
			SentAt: f.env.Now(),
		})
	}
}

func (f *Fabric) fail(err error) {
	if err == nil {
		return
	}
	f.mu.Lock()
	if f.firstErr == nil {
		f.firstErr = err
	}
	f.mu.Unlock()
}

// railKilled reports a node's local kill flag. Lock-free: it runs on
// every frame in both the writer and reader loops, and a shared mutex
// there would re-serialise the very lanes the rings decouple.
func (f *Fabric) railKilled(node, rail int) bool {
	n := f.nodes[node]
	if rail < 0 || rail >= len(n.killed) {
		return false
	}
	return n.killed[rail].Load()
}

// FailRail hard-kills rail r as a chaos hook: every hosted endpoint of
// the lane stops carrying frames (in-flight ones are discarded — a
// genuine mid-message loss), and the rail is reported Down. A peer
// process learns of the kill through the ring status word the next
// time it touches the lane (its writer reports Down when it tries to
// send, its reader when a stale frame arrives). EnableRail revives it:
// the rings stay cursor-consistent throughout, so traffic resumes
// where it left off.
func (f *Fabric) FailRail(node, rail int) {
	for _, n := range f.nodes {
		if n.hosted && rail >= 0 && rail < len(n.killed) {
			n.killed[rail].Store(true)
		}
	}
	f.eachRailRing(rail, func(r *ring) { r.status.Store(ringKilled) })
	reason := fmt.Sprintf("rail %d killed", rail)
	for _, n := range f.nodes {
		if n.hosted {
			n.health.Report(rail, fabric.RailDown, reason)
		}
	}
}

// enableRail is the health tracker's OnEnable hook: clear the kill flag,
// reopen the rings and report the rail Up again.
func (f *Fabric) enableRail(n *Node, rail int) {
	if rail >= 0 && rail < len(n.killed) {
		n.killed[rail].Store(false)
	}
	f.eachRailRing(rail, func(r *ring) {
		r.status.CompareAndSwap(ringKilled, ringOpen)
	})
}

// eachRailRing applies fn to both directions of every hosted link of one
// rail.
func (f *Fabric) eachRailRing(rail int, fn func(*ring)) {
	for _, n := range f.nodes {
		if !n.hosted || rail < 0 || rail >= len(n.rails) {
			continue
		}
		r := n.rails[rail]
		r.mu.Lock()
		links := make([]*link, 0, len(r.links))
		for _, l := range r.links {
			links = append(links, l)
		}
		r.mu.Unlock()
		for _, l := range links {
			fn(l.sendR)
			fn(l.recvR)
		}
	}
}

// ThrottleRail artificially slows rail r on every hosted node by
// `factor` (10 = every ring copy takes ten times as long); factor <= 1
// removes the throttle. The rail stays Up — the congestion chaos hook,
// mirroring livenet's. Implements fabric.Throttler.
func (f *Fabric) ThrottleRail(rail int, factor float64) {
	var bits uint64
	if factor > 1 {
		bits = math.Float64bits(factor)
	}
	for _, n := range f.nodes {
		if n.hosted && rail >= 0 && rail < len(n.rails) {
			n.rails[rail].throttle.Store(bits)
		}
	}
}

// Node is one endpoint of the shared-memory fabric.
type Node struct {
	f      *Fabric
	id     int
	hosted bool
	rails  []*Rail
	recvq  rt.Queue
	health *railhealth.Tracker
	killed []atomic.Bool // frames discarded (FailRail); per-rail, lock-free
	// downHint marks a rail this node reported Down after observing a
	// kill (locally or through the ring status word). The reader clears
	// it — reporting the rail back Up — when frames flow again with the
	// ring reopened: arriving traffic is the proof of revival a peer
	// process's EnableRail cannot deliver any other way.
	downHint []atomic.Bool

	sinkMu sync.RWMutex
	sink   func(*fabric.Delivery)

	teleMu sync.RWMutex
	tele   fabric.Telemetry
}

// SetTelemetry installs (or, with nil, detaches) the node's telemetry
// sink: every sufficiently large frame copied into a ring is reported
// with its real copy duration. Panics on a non-hosted node.
func (n *Node) SetTelemetry(t fabric.Telemetry) {
	n.mustHost()
	n.teleMu.Lock()
	n.tele = t
	n.teleMu.Unlock()
}

// observeWrite reports one completed ring write to the telemetry sink,
// if one is installed and the frame is in the bandwidth regime.
func (n *Node) observeWrite(peer, rail, bytes int, d time.Duration) {
	if bytes < rateCalibMin || d <= 0 {
		return
	}
	n.teleMu.RLock()
	t := n.tele
	n.teleMu.RUnlock()
	if t != nil {
		t.ObserveTransfer(peer, rail, bytes, d)
	}
}

// SetSink installs a direct delivery consumer (fabric.DirectNode):
// subsequent deliveries are handed to fn on the ring reader goroutine
// that decoded them, bypassing RecvQ. Deliveries already queued are
// drained through fn first, atomically with the handoff. fn must not
// block. SetSink(nil) restores queue delivery. Panics on a non-hosted
// node.
func (n *Node) SetSink(fn func(*fabric.Delivery)) {
	n.mustHost()
	n.sinkMu.Lock()
	defer n.sinkMu.Unlock()
	n.sink = fn
	if fn == nil {
		return
	}
	for {
		item, ok := n.recvq.TryPop()
		if !ok {
			return
		}
		if d, isD := item.(*fabric.Delivery); isD && d != nil {
			fn(d)
		}
	}
}

// deliver routes one decoded frame to the sink, or to the receive queue
// when no sink is installed. The queue push happens under the sink read
// lock so it cannot race SetSink's drain and strand a frame.
func (n *Node) deliver(d *fabric.Delivery) {
	n.sinkMu.RLock()
	defer n.sinkMu.RUnlock()
	if n.sink != nil {
		n.sink(d)
		return
	}
	n.recvq.Push(d)
}

// ID returns the node's index.
func (n *Node) ID() int { return n.id }

// NumRails returns the rail count.
func (n *Node) NumRails() int { return n.f.cfg.Rails }

// Rail returns the i-th rail. It panics on a non-hosted (remote) node.
func (n *Node) Rail(i int) fabric.Rail {
	n.mustHost()
	return n.rails[i]
}

// RecvQ returns the delivery queue. It panics on a non-hosted node.
func (n *Node) RecvQ() rt.Queue {
	n.mustHost()
	return n.recvq
}

// Health returns the rail-health tracker. It panics on a non-hosted
// node.
func (n *Node) Health() fabric.Health {
	n.mustHost()
	return n.health
}

// Cores returns the configured core count.
func (n *Node) Cores() int { return n.f.cfg.CoresPerNode }

func (n *Node) mustHost() {
	if !n.hosted {
		panic(fmt.Sprintf("shmnet: node %d is not hosted by this process", n.id))
	}
}

// Rail is one shared-memory lane of a node: ring links to every peer
// plus traffic accounting for the engine's idle-horizon prediction.
type Rail struct {
	node  *Node
	index int
	prof  *model.Profile

	mu      sync.Mutex
	links   map[int]*link
	pending int64   // bytes queued but not yet copied into a ring
	rate    float64 // EWMA copy throughput, bytes/second
	stats   fabric.Stats

	// throttle > 1 slows the rail artificially (chaos hook). Float64
	// bits; 0 means no throttle.
	throttle atomic.Uint64

	// stalls counts ring-full backpressure episodes across this rail's
	// send rings (bumped lock-free by the writer inside ring.write).
	stalls atomic.Uint64
}

// currentRate returns the rail's copy-throughput EWMA (bytes/second).
func (r *Rail) currentRate() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rate
}

// throttleFactor returns the active slow-down factor (1 when none).
func (r *Rail) throttleFactor() float64 {
	if bits := r.throttle.Load(); bits != 0 {
		if f := math.Float64frombits(bits); f > 1 {
			return f
		}
	}
	return 1
}

// Index returns the rail number.
func (r *Rail) Index() int { return r.index }

// Profile returns the rail's synthetic profile: zero modeled costs (real
// costs elapse on the wall clock) with the configured EagerMax.
func (r *Rail) Profile() *model.Profile { return r.prof }

// State returns the rail's health state.
func (r *Rail) State() fabric.RailState { return r.node.health.State(r.index) }

// Stats returns a snapshot of the traffic counters.
func (r *Rail) Stats() fabric.Stats {
	r.mu.Lock()
	st := r.stats
	r.mu.Unlock()
	st.Stalls = r.stalls.Load()
	return st
}

// IdleAt predicts when the rail's queued bytes will have been copied,
// from the throughput EWMA — the live analogue of the modeled NIC
// busy-until horizon.
func (r *Rail) IdleAt() time.Duration {
	now := r.node.f.env.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.pending <= 0 {
		return now
	}
	return now + time.Duration(float64(r.pending)/r.rate*1e9)
}

// Busy reports whether the rail has queued uncopied bytes.
func (r *Rail) Busy() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pending > 0
}

// SendEager transmits an eager container through the ring — the genuine
// PIO copy of the paper.
func (r *Rail) SendEager(ctx rt.Ctx, to int, data []byte) {
	r.send(to, data, nil)
}

// SendControl transmits a control message. The modeled CPU costs are
// ignored: real costs elapse on their own.
func (r *Rail) SendControl(ctx rt.Ctx, to int, data []byte, cpuCost, recvCost time.Duration) {
	r.send(to, data, nil)
}

// SendData streams a rendezvous chunk; done fires when the frame is
// fully in the ring and the sender may reuse the buffer.
func (r *Rail) SendData(ctx rt.Ctx, to int, data []byte, done rt.Event) {
	r.send(to, data, done)
}

func (r *Rail) send(to int, data []byte, done rt.Event) {
	if len(data) > maxFrame {
		panic(fmt.Sprintf("shmnet: frame of %d bytes exceeds the %d-byte limit", len(data), maxFrame))
	}
	r.mu.Lock()
	l := r.links[to]
	if l == nil {
		r.mu.Unlock()
		panic(fmt.Sprintf("shmnet: node %d has no rail-%d link to node %d", r.node.id, r.index, to))
	}
	r.pending += int64(len(data)) + 4
	r.stats.LastStart = r.node.f.env.Now()
	r.mu.Unlock()
	f := r.node.f
	select {
	case l.out <- outFrame{data: data, done: done, rail: r}:
		if f.closed.Load() {
			drainLink(l)
		}
	case <-f.closedCh:
		outFrame{data: data, done: done, rail: r}.finish(0, 0, false)
	}
}

// noteWritten retires n queued bytes, counts the frame as traffic when
// it actually reached the ring, and folds the raw copy duration (calib)
// into the throughput estimate. took additionally includes any
// chaos-throttle delay and only feeds the busy-time counter.
func (r *Rail) noteWritten(n int, took, calib time.Duration, written bool) {
	r.mu.Lock()
	r.pending -= int64(n) + 4
	if r.pending < 0 {
		r.pending = 0
	}
	if written {
		r.stats.Messages++
		r.stats.Bytes += uint64(n)
	}
	r.stats.BusyTime += took
	if written && n >= rateCalibMin && calib > 0 {
		inst := float64(n) / calib.Seconds()
		r.rate = 0.7*r.rate + 0.3*inst
	}
	r.mu.Unlock()
}
