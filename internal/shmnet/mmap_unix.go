//go:build unix

package shmnet

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"time"
	"unsafe"
)

// Ring files hold both directions of one (node pair, rail) lane:
//
//	[0,8)   magic (written last by the creator: the readiness signal)
//	[8,12)  ring payload bytes per direction
//	[12,64) reserved
//	[64,..) ring lo->hi, then ring hi->lo
//
// The lower node id creates the file; the higher id attaches, polling
// until the magic appears. The directory must not hold ring files of a
// previous session — a stale file's magic would let the attacher adopt
// garbage cursors.
const fileMagic = 0x31474e5248534d4e // "NMSHRNG1" little-endian

const fileHdrSize = 64

// mapping is one mmap'd ring file.
type mapping struct {
	data    []byte
	file    *os.File
	path    string
	creator bool
}

// region returns the off-th byte range of the payload area (after the
// file header).
func (m *mapping) region(off, n int) []byte {
	return m.data[fileHdrSize+off : fileHdrSize+off+n : fileHdrSize+off+n]
}

// close unmaps and, on the creating side, unlinks the file so a later
// session starts fresh. Best-effort: teardown has no error consumer.
func (m *mapping) close() {
	if m.data != nil {
		_ = syscall.Munmap(m.data)
		m.data = nil
	}
	if m.file != nil {
		_ = m.file.Close()
		m.file = nil
	}
	if m.creator {
		_ = os.Remove(m.path)
	}
}

// pairPath names the ring file of one (node pair, rail) lane.
func pairPath(dir string, lo, hi, rail int) string {
	return filepath.Join(dir, fmt.Sprintf("pair-%d-%d-rail%d.shmring", lo, hi, rail))
}

// attachPair creates (create=true) or attaches to the mmap-backed ring
// file of one lane. The creator sizes and zeroes the file, lays out both
// rings and publishes the magic; the attacher polls for the magic up to
// timeout.
func attachPair(dir string, lo, hi, rail, ringBytes int, create bool, timeout time.Duration) (*mapping, error) {
	path := pairPath(dir, lo, hi, rail)
	total := fileHdrSize + 2*ringRegionSize(ringBytes)
	if create {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("shmnet: ring dir: %w", err)
		}
		// O_TRUNC resets a stale file's magic before anything can map it.
		fd, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
		if err != nil {
			return nil, fmt.Errorf("shmnet: create ring file: %w", err)
		}
		if err := fd.Truncate(int64(total)); err != nil {
			_ = fd.Close()
			return nil, fmt.Errorf("shmnet: size ring file: %w", err)
		}
		m, err := mapFile(fd, path, total, true)
		if err != nil {
			return nil, err
		}
		binary.LittleEndian.PutUint32(m.data[8:], uint32(ringBytes))
		newRing(m.region(0, ringRegionSize(ringBytes)), true)
		newRing(m.region(ringRegionSize(ringBytes), ringRegionSize(ringBytes)), true)
		// Publish: the magic store is the release barrier the attacher
		// acquires through its polling load.
		(*atomic.Uint64)(unsafe.Pointer(&m.data[0])).Store(fileMagic)
		return m, nil
	}
	deadline := time.Now().Add(timeout)
	for {
		m, err := tryAttach(path, total, ringBytes)
		if err == nil {
			return m, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("shmnet: waiting for peer ring file %s: %w", path, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// tryAttach maps an existing ring file if it is fully published.
func tryAttach(path string, total, ringBytes int) (*mapping, error) {
	fd, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	st, err := fd.Stat()
	if err != nil {
		_ = fd.Close()
		return nil, err
	}
	if st.Size() < int64(total) {
		_ = fd.Close()
		return nil, fmt.Errorf("ring file is %d bytes, want %d", st.Size(), total)
	}
	m, err := mapFile(fd, path, total, false)
	if err != nil {
		return nil, err
	}
	if (*atomic.Uint64)(unsafe.Pointer(&m.data[0])).Load() != fileMagic {
		m.close()
		return nil, fmt.Errorf("ring file not yet published")
	}
	if got := int(binary.LittleEndian.Uint32(m.data[8:])); got != ringBytes {
		m.close()
		return nil, fmt.Errorf("ring file has %d-byte rings, this process wants %d", got, ringBytes)
	}
	return m, nil
}

func mapFile(fd *os.File, path string, total int, creator bool) (*mapping, error) {
	data, err := syscall.Mmap(int(fd.Fd()), 0, total, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		_ = fd.Close()
		return nil, fmt.Errorf("shmnet: mmap %s: %w", path, err)
	}
	return &mapping{data: data, file: fd, path: path, creator: creator}, nil
}
