package shmnet

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestMain enforces the shutdown contract mechanically: no ring
// writer, reader or park/wake goroutine may survive the last test's
// Close — a parked reader that misses the goodbye nudge would hang
// here, not in a flaked CI run three weeks later.
func TestMain(m *testing.M) { leakcheck.Main(m) }
