// Package shmnet implements the fabric contract over shared-memory ring
// buffers: the paper's PIO regime made real. Every rail of every node
// pair is a pair of single-producer/single-consumer byte rings (one per
// direction), moved by plain memory copies and polled by a reader
// goroutine — no syscalls, no kernel path, no serialisation beyond the
// ring cursors themselves.
//
// The rings are lock-free: the producer owns the tail cursor, the
// consumer owns the head cursor, and both live *inside* the shared
// region, accessed through atomics. That makes the same ring code work
// over two backings:
//
//   - plain heap slices when all nodes are hosted in one process
//     (NewHosted) — what the mixed shm+TCP cluster and the tests use;
//   - an mmap-backed file per node pair when each node is its own OS
//     process on one host (NewDistributed) — the two-process
//     examples/tcp2proc case.
//
// Frames stream through the ring in pieces (the producer copies as space
// frees, the consumer copies as bytes arrive), so a frame larger than
// the ring still flows — the ring behaves like a socket, not a datagram
// slot, and the engine's rendezvous chunks need no special casing.
package shmnet

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"
	"unsafe"
)

// Ring region layout. The cursors sit on their own cache lines so the
// producer and consumer never false-share, and the whole header is part
// of the shared region so a peer process sees the same state.
const (
	ringHeadOff   = 0   // consumer cursor (uint64, monotonically grows)
	ringTailOff   = 64  // producer cursor (uint64, monotonically grows)
	ringStatusOff = 128 // ring status word (uint32)
	ringHdrSize   = 192 // data starts here
)

// Ring status values. The producer side owns transitions to goodbye;
// either side (or a chaos hook) may set killed; Enable sets open again.
const (
	ringOpen    = 0 // traffic flows
	ringGoodbye = 1 // producer closed gracefully: drain and stop
	ringKilled  = 2 // rail killed (chaos): frames are discarded
)

// ring is one direction of one (node pair, rail) lane. Exactly one
// goroutine writes (the link's writer) and one reads (the link's
// reader); cross-process, each process holds one end.
type ring struct {
	head   *atomic.Uint64
	tail   *atomic.Uint64
	status *atomic.Uint32
	data   []byte
	size   uint64

	region []byte // keeps the backing slice (or mapping) alive

	// In-process wakeups (nil on mmap-backed rings, which can only
	// poll): the producer nudges dataWake after publishing bytes, the
	// consumer nudges spaceWake after freeing space. Buffered at 1 and
	// re-checked after every wake, so the check-then-wait pattern loses
	// no wakeup. Without these, a reader idling in its deep poll
	// backoff charges the first frame of a burst the whole sleep — and
	// a µs-class lane measured with a 200µs wake-up tax would lose to
	// loopback TCP in the very telemetry that should favour it.
	dataWake  chan struct{}
	spaceWake chan struct{}

	// stalls, when installed, counts backpressure episodes: one per
	// write call that found the ring full and had to wait. Process-local
	// (not part of the shared region) — each producer counts the stalls
	// it suffered. Set before the producer goroutine starts.
	stalls *atomic.Uint64
	// onStall, when installed alongside stalls, fires once per episode
	// from the producer goroutine (Config.OnStall, rail-bound).
	onStall func()
}

// ringRegionSize returns the bytes a ring with dataBytes of payload
// space occupies.
func ringRegionSize(dataBytes int) int { return ringHdrSize + dataBytes }

// newRing lays a ring over region, whose first ringHdrSize bytes are the
// header. init zeroes the cursors (the creating side passes true; an
// attaching peer must not reset a live ring). The region must be 8-byte
// aligned — heap slices and mmap'd pages both are.
func newRing(region []byte, init bool) *ring {
	if len(region) <= ringHdrSize {
		panic(fmt.Sprintf("shmnet: ring region of %d bytes is smaller than the header", len(region)))
	}
	if uintptr(unsafe.Pointer(&region[0]))%8 != 0 {
		panic("shmnet: ring region is not 8-byte aligned")
	}
	r := &ring{
		head:   (*atomic.Uint64)(unsafe.Pointer(&region[ringHeadOff])),
		tail:   (*atomic.Uint64)(unsafe.Pointer(&region[ringTailOff])),
		status: (*atomic.Uint32)(unsafe.Pointer(&region[ringStatusOff])),
		data:   region[ringHdrSize:],
		size:   uint64(len(region) - ringHdrSize),
		region: region,
	}
	if init {
		r.head.Store(0)
		r.tail.Store(0)
		r.status.Store(ringOpen)
	}
	return r
}

// enableWake attaches in-process wakeup channels (hosted rings only —
// a peer process cannot receive on our channels, so mmap rings poll).
func (r *ring) enableWake() *ring {
	r.dataWake = make(chan struct{}, 1)
	r.spaceWake = make(chan struct{}, 1)
	return r
}

// backoff is the poll pacing of a ring side waiting for the other: spin
// (yielding) while the wait is fresh — a busy peer answers within
// microseconds, which is the whole point of the PIO regime — then park
// on the wake channel (in-process) or sleep in growing steps (mmap
// rings, which can only poll).
type backoff struct{ spins int }

const (
	backoffSpins    = 256
	backoffMinSleep = 5 * time.Microsecond
	backoffMaxSleep = 200 * time.Microsecond
)

func (b *backoff) wait(wake chan struct{}) {
	b.spins++
	if b.spins <= backoffSpins {
		runtime.Gosched()
		return
	}
	d := backoffMinSleep << uint(min(b.spins-backoffSpins, 6))
	if d > backoffMaxSleep {
		d = backoffMaxSleep
	}
	if wake == nil {
		time.Sleep(d)
		return
	}
	t := time.NewTimer(d)
	select {
	case <-wake:
	case <-t.C:
	}
	t.Stop()
}

func (b *backoff) reset() { b.spins = 0 }

// nudge wakes the other side of an in-process ring (no-op when full or
// cross-process).
func nudge(ch chan struct{}) {
	if ch == nil {
		return
	}
	select {
	case ch <- struct{}{}:
	default:
	}
}

// write copies p into the ring, blocking (polling) while it is full.
// Only the producer goroutine may call it. It returns false when abort
// reports true before the copy completes; bytes already copied stay
// published, so an aborted mid-frame write poisons the stream — callers
// only abort when the lane is being torn down.
func (r *ring) write(p []byte, abort func() bool) bool {
	var b backoff
	stalled := false
	for len(p) > 0 {
		t := r.tail.Load()
		free := r.size - (t - r.head.Load())
		if free == 0 {
			if !stalled { // one episode per write, however long the wait
				stalled = true
				if r.stalls != nil {
					r.stalls.Add(1)
				}
				if r.onStall != nil {
					r.onStall()
				}
			}
			if abort() {
				return false
			}
			b.wait(r.spaceWake)
			continue
		}
		b.reset()
		pos := t % r.size
		n := min(uint64(len(p)), free, r.size-pos)
		copy(r.data[pos:pos+n], p[:n])
		// The store publishes the copied bytes: the consumer loads tail
		// before touching data (Go atomics are sequentially consistent,
		// and compile to the fences cross-process visibility needs).
		r.tail.Store(t + n)
		nudge(r.dataWake)
		p = p[n:]
	}
	return true
}

// read fills p from the ring, blocking (polling) while it is empty. Only
// the consumer goroutine may call it. It returns false when the stream
// ends first: abort reports true, or the ring is empty and the producer
// said goodbye. A killed ring does NOT end the stream — kill discards
// whole frames at the link layer; ending the byte stream mid-frame here
// would desynchronise the framing across a revive.
func (r *ring) read(p []byte, abort func() bool) bool {
	var b backoff
	for len(p) > 0 {
		h := r.head.Load()
		avail := r.tail.Load() - h
		if avail == 0 {
			if abort() || r.status.Load() == ringGoodbye {
				return false
			}
			b.wait(r.dataWake)
			continue
		}
		b.reset()
		pos := h % r.size
		n := min(uint64(len(p)), avail, r.size-pos)
		copy(p[:n], r.data[pos:pos+n])
		r.head.Store(h + n)
		nudge(r.spaceWake)
		p = p[n:]
	}
	return true
}

// alignedRegion allocates a heap-backed ring region with the 8-byte
// alignment the header atomics need.
func alignedRegion(n int) []byte {
	buf := make([]byte, n+8)
	off := 0
	if rem := int(uintptr(unsafe.Pointer(&buf[0])) % 8); rem != 0 {
		off = 8 - rem
	}
	return buf[off : off+n : off+n]
}
