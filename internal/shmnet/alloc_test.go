package shmnet

import (
	"testing"

	"repro/internal/ratchet"
)

// TestRingFrameAllocs pins the shm ring frame path at zero allocations
// per frame: the ring is the PIO lane of the intra-host rail, and an
// allocation per frame would put a GC tax on exactly the path whose
// reason to exist is being a bare memcpy. If this test starts failing,
// something on the write/read path grew a heap escape.
func TestRingFrameAllocs(t *testing.T) {
	region := make([]byte, ringRegionSize(1<<16))
	r := newRing(region, true)
	frame := make([]byte, 4096)
	out := make([]byte, 4096)
	abort := func() bool { return false }

	allocs := testing.AllocsPerRun(200, func() {
		if !r.write(frame, abort) {
			t.Fatal("write aborted")
		}
		if !r.read(out, abort) {
			t.Fatal("read aborted")
		}
	})
	ratchet.Check(t, "shmnet/ring_frame", allocs)
}

// TestRingWrapAllocs exercises the wrap-around split copy, which must
// also stay allocation-free.
func TestRingWrapAllocs(t *testing.T) {
	region := make([]byte, ringRegionSize(1<<12))
	r := newRing(region, true)
	frame := make([]byte, 3000) // ~3/4 of the ring: every other frame wraps
	out := make([]byte, 3000)
	abort := func() bool { return false }

	allocs := testing.AllocsPerRun(200, func() {
		if !r.write(frame, abort) || !r.read(out, abort) {
			t.Fatal("ring aborted")
		}
	})
	ratchet.Check(t, "shmnet/ring_wrap", allocs)
}
