package rt

import (
	"time"

	"repro/internal/des"
)

// SimEnv runs actors on a discrete-event simulator. Create one with
// NewSim, spawn actors, then call Run (or drive the underlying simulator
// directly through Sim()).
type SimEnv struct {
	sim *des.Simulator
}

// NewSim returns an environment backed by a fresh simulator.
func NewSim() *SimEnv { return &SimEnv{sim: des.New()} }

// Sim exposes the underlying simulator (for Run/Close/inspection).
func (e *SimEnv) Sim() *des.Simulator { return e.sim }

// Run dispatches events until the simulation drains.
func (e *SimEnv) Run() { e.sim.Run() }

// RunUntil dispatches events with timestamps <= t.
func (e *SimEnv) RunUntil(t time.Duration) { e.sim.RunUntil(t) }

// Close kills all live actors and stops the simulation.
func (e *SimEnv) Close() { e.sim.Close() }

func (e *SimEnv) Now() time.Duration { return e.sim.Now() }
func (e *SimEnv) IsSim() bool        { return true }

func (e *SimEnv) Go(name string, fn func(Ctx)) {
	e.sim.Go(name, func(p *des.Proc) { fn(simCtx{p}) })
}

func (e *SimEnv) After(d time.Duration, fn func()) { e.sim.After(d, fn) }

func (e *SimEnv) NewEvent() Event { return &simEvent{ev: e.sim.NewEvent()} }
func (e *SimEnv) NewQueue() Queue { return &simQueue{q: e.sim.NewQueue()} }
func (e *SimEnv) NewResource(c int) Resource {
	return &simResource{r: e.sim.NewResource(c)}
}

// simCtx adapts a des.Proc to Ctx.
type simCtx struct{ p *des.Proc }

func (c simCtx) Now() time.Duration    { return c.p.Now() }
func (c simCtx) Sleep(d time.Duration) { c.p.Sleep(d) }

func proc(ctx Ctx) *des.Proc {
	c, ok := ctx.(simCtx)
	if !ok {
		panic("rt: blocking call with a Ctx from a different environment")
	}
	return c.p
}

type simEvent struct{ ev *des.Event }

func (e *simEvent) Fire()       { e.ev.Fire() }
func (e *simEvent) Fired() bool { return e.ev.Fired() }
func (e *simEvent) Wait(ctx Ctx) {
	e.ev.Wait(proc(ctx))
}
func (e *simEvent) WaitTimeout(ctx Ctx, d time.Duration) bool {
	return e.ev.WaitTimeout(proc(ctx), d)
}
func (e *simEvent) OnFire(fn func()) { e.ev.OnFire(fn) }

type simQueue struct{ q *des.Queue }

func (q *simQueue) Push(v any)          { q.q.Push(v) }
func (q *simQueue) Pop(ctx Ctx) any     { return q.q.Pop(proc(ctx)) }
func (q *simQueue) TryPop() (any, bool) { return q.q.TryPop() }
func (q *simQueue) Len() int            { return q.q.Len() }

type simResource struct{ r *des.Resource }

func (r *simResource) Acquire(ctx Ctx)  { r.r.Acquire(proc(ctx)) }
func (r *simResource) TryAcquire() bool { return r.r.TryAcquire() }
func (r *simResource) Release()         { r.r.Release() }
func (r *simResource) Idle() bool       { return r.r.Idle() }
func (r *simResource) Cap() int         { return r.r.Cap() }
func (r *simResource) InUse() int       { return r.r.InUse() }
