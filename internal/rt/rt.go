// Package rt abstracts the execution environment of the communication
// engine so that the same engine code runs on two substrates:
//
//   - SimEnv: virtual time on the internal/des discrete-event simulator.
//     Deterministic; used to regenerate the paper's figures.
//   - LiveEnv: wall-clock time with free-running goroutines; used by the
//     byte-moving livenet fabric, examples and integration tests.
//
// The model mirrors how NewMadeleine/PIOMan is structured: most engine
// logic is reactive (non-blocking handlers triggered when a NIC becomes
// idle, when a rendezvous arrives, ...) and only actors — workloads, NIC
// engines, core workers — block. Blocking calls take a Ctx, which only
// actors own; handlers have no Ctx and therefore cannot block, which the
// type system enforces.
package rt

import "time"

// Ctx is the capability to block. Each actor (spawned with Env.Go) gets
// its own Ctx; handlers run without one.
type Ctx interface {
	// Now returns the current time (virtual or wall-clock) as an offset
	// from the environment's epoch.
	Now() time.Duration
	// Sleep suspends the actor for d.
	Sleep(d time.Duration)
}

// Env is an execution environment.
type Env interface {
	// Now returns the current time as an offset from the epoch.
	Now() time.Duration
	// Go spawns an actor. In a simulation the actor starts at the current
	// virtual time; live it starts immediately.
	Go(name string, fn func(Ctx))
	// After schedules a non-blocking handler to run d from now.
	After(d time.Duration, fn func())
	// NewEvent returns a one-shot completion event.
	NewEvent() Event
	// NewQueue returns an unbounded FIFO with blocking Pop.
	NewQueue() Queue
	// NewResource returns a counted resource with the given capacity.
	NewResource(capacity int) Resource
	// IsSim reports whether time is virtual. Engine code must not branch
	// on this for logic — it exists for reporting and test assertions.
	IsSim() bool
}

// Event is a one-shot completion.
type Event interface {
	// Fire marks the event complete, waking waiters and running
	// callbacks. Firing twice is a no-op.
	Fire()
	// Fired reports whether Fire was called.
	Fired() bool
	// Wait blocks the actor until the event fires.
	Wait(Ctx)
	// WaitTimeout blocks until the event fires or d elapses; reports
	// whether the event fired.
	WaitTimeout(Ctx, time.Duration) bool
	// OnFire registers a non-blocking callback to run once after Fire.
	// If already fired, the callback runs promptly. Callbacks must not
	// block: in a simulation they run in the event loop; live they run on
	// the firing goroutine.
	OnFire(func())
}

// Queue is an unbounded FIFO.
type Queue interface {
	// Push appends an item; never blocks, callable from handlers.
	Push(any)
	// Pop removes the head item, blocking while empty.
	Pop(Ctx) any
	// TryPop removes the head item without blocking.
	TryPop() (any, bool)
	// Len returns the current number of items.
	Len() int
}

// Resource is a counted resource (a pool of identical servers: NIC
// engines, cores, ...).
type Resource interface {
	// Acquire blocks the actor until a slot is free.
	Acquire(Ctx)
	// TryAcquire takes a slot if immediately available.
	TryAcquire() bool
	// Release frees a slot taken by Acquire or TryAcquire.
	Release()
	// Idle reports whether a slot is immediately available.
	Idle() bool
	// Cap returns the capacity.
	Cap() int
	// InUse returns the number of held slots.
	InUse() int
}

// WaitAll blocks the actor until every event has fired.
func WaitAll(ctx Ctx, events ...Event) {
	for _, e := range events {
		e.Wait(ctx)
	}
}

// AfterFunc is a convenience wrapper used by strategies that delay a
// transfer until a predicted NIC-idle time (Fig 2): it runs fn at
// absolute environment time t (or now, if t is in the past).
func AfterFunc(env Env, t time.Duration, fn func()) {
	d := t - env.Now()
	if d < 0 {
		d = 0
	}
	env.After(d, fn)
}
