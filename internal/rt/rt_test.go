package rt

import (
	"sync/atomic"
	"testing"
	"time"
)

// runScenario executes fn under the environment and blocks until all
// simulated/live work completes.
func runSim(fn func(env Env)) {
	e := NewSim()
	fn(e)
	e.Run()
}

func runLive(fn func(env Env)) {
	e := NewLive()
	fn(e)
	e.WaitIdle()
}

// both runs the scenario under both environments. The scenario must use
// only rt primitives for synchronisation.
func both(t *testing.T, fn func(t *testing.T, env Env, settle func())) {
	t.Run("sim", func(t *testing.T) {
		e := NewSim()
		fn(t, e, e.Run)
	})
	t.Run("live", func(t *testing.T) {
		e := NewLive()
		fn(t, e, e.WaitIdle)
	})
}

func TestEventFireWakesWaiter(t *testing.T) {
	both(t, func(t *testing.T, env Env, settle func()) {
		ev := env.NewEvent()
		var woke atomic.Bool
		env.Go("waiter", func(ctx Ctx) {
			ev.Wait(ctx)
			woke.Store(true)
		})
		env.Go("firer", func(ctx Ctx) {
			ctx.Sleep(time.Millisecond)
			ev.Fire()
		})
		settle()
		if !woke.Load() {
			t.Fatal("waiter never woke")
		}
	})
}

func TestEventOnFireRunsOnce(t *testing.T) {
	both(t, func(t *testing.T, env Env, settle func()) {
		ev := env.NewEvent()
		var n atomic.Int32
		ev.OnFire(func() { n.Add(1) })
		env.Go("firer", func(Ctx) {
			ev.Fire()
			ev.Fire()
		})
		settle()
		if n.Load() != 1 {
			t.Fatalf("OnFire ran %d times", n.Load())
		}
	})
}

func TestEventOnFireAfterFired(t *testing.T) {
	both(t, func(t *testing.T, env Env, settle func()) {
		ev := env.NewEvent()
		var ran atomic.Bool
		env.Go("a", func(Ctx) {
			ev.Fire()
			ev.OnFire(func() { ran.Store(true) })
		})
		settle()
		// In live mode the late OnFire runs synchronously; in sim it is
		// scheduled at the current time and dispatched by settle.
		if !ran.Load() {
			t.Fatal("late OnFire never ran")
		}
	})
}

func TestWaitTimeoutBehaviour(t *testing.T) {
	both(t, func(t *testing.T, env Env, settle func()) {
		ev := env.NewEvent()
		var expired, fired atomic.Bool
		env.Go("w1", func(ctx Ctx) {
			if !ev.WaitTimeout(ctx, time.Millisecond) {
				expired.Store(true)
			}
		})
		env.Go("w2", func(ctx Ctx) {
			ctx.Sleep(5 * time.Millisecond)
			ev.Fire()
			if ev.WaitTimeout(ctx, time.Millisecond) {
				fired.Store(true)
			}
		})
		settle()
		if !expired.Load() {
			t.Fatal("timeout did not expire")
		}
		if !fired.Load() {
			t.Fatal("WaitTimeout after Fire should return true")
		}
	})
}

func TestQueueTransfersItems(t *testing.T) {
	both(t, func(t *testing.T, env Env, settle func()) {
		q := env.NewQueue()
		done := env.NewEvent()
		var sum atomic.Int64
		env.Go("consumer", func(ctx Ctx) {
			for i := 0; i < 3; i++ {
				sum.Add(int64(q.Pop(ctx).(int)))
			}
			done.Fire()
		})
		env.Go("producer", func(ctx Ctx) {
			for i := 1; i <= 3; i++ {
				q.Push(i * 10)
				ctx.Sleep(time.Millisecond)
			}
		})
		env.Go("checker", func(ctx Ctx) {
			done.Wait(ctx)
		})
		settle()
		if sum.Load() != 60 {
			t.Fatalf("sum = %d, want 60", sum.Load())
		}
	})
}

func TestResourceMutualExclusion(t *testing.T) {
	both(t, func(t *testing.T, env Env, settle func()) {
		r := env.NewResource(1)
		var inside atomic.Int32
		var maxInside atomic.Int32
		for i := 0; i < 4; i++ {
			env.Go("worker", func(ctx Ctx) {
				r.Acquire(ctx)
				v := inside.Add(1)
				for {
					m := maxInside.Load()
					if v <= m || maxInside.CompareAndSwap(m, v) {
						break
					}
				}
				ctx.Sleep(time.Millisecond)
				inside.Add(-1)
				r.Release()
			})
		}
		settle()
		if maxInside.Load() != 1 {
			t.Fatalf("max concurrent holders = %d, want 1", maxInside.Load())
		}
	})
}

func TestTryAcquireAndIdle(t *testing.T) {
	both(t, func(t *testing.T, env Env, settle func()) {
		r := env.NewResource(2)
		env.Go("a", func(ctx Ctx) {
			if !r.TryAcquire() {
				t.Error("first TryAcquire failed")
			}
			if !r.Idle() {
				t.Error("capacity-2 resource with one holder should be idle")
			}
			if !r.TryAcquire() {
				t.Error("second TryAcquire failed")
			}
			if r.Idle() {
				t.Error("full resource reported idle")
			}
			if r.TryAcquire() {
				t.Error("third TryAcquire succeeded on capacity 2")
			}
			if r.InUse() != 2 || r.Cap() != 2 {
				t.Errorf("InUse=%d Cap=%d", r.InUse(), r.Cap())
			}
			r.Release()
			r.Release()
		})
		settle()
	})
}

func TestAfterRunsLater(t *testing.T) {
	both(t, func(t *testing.T, env Env, settle func()) {
		ev := env.NewEvent()
		env.After(time.Millisecond, ev.Fire)
		env.Go("w", func(ctx Ctx) { ev.Wait(ctx) })
		settle()
		if !ev.Fired() {
			t.Fatal("After handler never ran")
		}
	})
}

func TestAfterFuncAbsoluteTime(t *testing.T) {
	both(t, func(t *testing.T, env Env, settle func()) {
		ev := env.NewEvent()
		AfterFunc(env, env.Now()+2*time.Millisecond, ev.Fire)
		// Past times clamp to "run promptly".
		ev2 := env.NewEvent()
		AfterFunc(env, env.Now()-time.Hour, ev2.Fire)
		env.Go("w", func(ctx Ctx) { ev.Wait(ctx); ev2.Wait(ctx) })
		settle()
	})
}

func TestWaitAll(t *testing.T) {
	both(t, func(t *testing.T, env Env, settle func()) {
		evs := []Event{env.NewEvent(), env.NewEvent(), env.NewEvent()}
		var done atomic.Bool
		env.Go("waiter", func(ctx Ctx) {
			WaitAll(ctx, evs...)
			done.Store(true)
		})
		for i, e := range evs {
			e := e
			env.After(time.Duration(i+1)*time.Millisecond, e.Fire)
		}
		settle()
		if !done.Load() {
			t.Fatal("WaitAll never completed")
		}
	})
}

func TestSimTimeIsVirtual(t *testing.T) {
	e := NewSim()
	var at time.Duration
	e.Go("sleeper", func(ctx Ctx) {
		ctx.Sleep(10 * time.Hour) // virtual: runs instantly
		at = ctx.Now()
	})
	start := time.Now()
	e.Run()
	if at != 10*time.Hour {
		t.Fatalf("virtual clock read %v, want 10h", at)
	}
	if real := time.Since(start); real > time.Second {
		t.Fatalf("simulated 10h took %v of wall time", real)
	}
	if !e.IsSim() {
		t.Fatal("IsSim")
	}
}

func TestLiveNowAdvances(t *testing.T) {
	e := NewLive()
	t0 := e.Now()
	time.Sleep(2 * time.Millisecond)
	if e.Now() <= t0 {
		t.Fatal("live clock did not advance")
	}
	if e.IsSim() {
		t.Fatal("IsSim")
	}
}

func TestMismatchedCtxPanics(t *testing.T) {
	sim := NewSim()
	live := NewLive()
	ev := sim.NewEvent()
	panicked := make(chan bool, 1)
	live.Go("bad", func(ctx Ctx) {
		defer func() { panicked <- recover() != nil }()
		ev.Wait(ctx) // live Ctx on a sim event must panic
	})
	if !<-panicked {
		t.Fatal("cross-environment blocking call did not panic")
	}
	_ = runSim
	_ = runLive
}

func TestLiveReleaseWithoutAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewLive().NewResource(1).Release()
}

// Regression: an immediate After handler (d <= 0) must be tracked by the
// WaitGroup — WaitIdle used to return while such handlers were still
// running, so work they did (like pushing a delivery) could be missed.
func TestLiveWaitIdleCoversImmediateAfter(t *testing.T) {
	for i := 0; i < 50; i++ {
		e := NewLive()
		var ran atomic.Bool
		e.After(0, func() {
			time.Sleep(100 * time.Microsecond)
			ran.Store(true)
		})
		e.WaitIdle()
		if !ran.Load() {
			t.Fatal("WaitIdle returned before an immediate After handler finished")
		}
	}
}

// Immediate After handlers may chain: each link stays tracked.
func TestLiveWaitIdleCoversChainedAfter(t *testing.T) {
	e := NewLive()
	var n atomic.Int32
	e.After(0, func() {
		n.Add(1)
		e.After(-time.Second, func() {
			time.Sleep(50 * time.Microsecond)
			n.Add(1)
		})
	})
	e.WaitIdle()
	if n.Load() != 2 {
		t.Fatalf("chained handlers ran %d times before WaitIdle returned, want 2", n.Load())
	}
}

// Positive-delay After handlers are tracked too: WaitIdle waits for a
// pending timer's handler, not just immediate ones.
func TestLiveWaitIdleCoversTimerAfter(t *testing.T) {
	e := NewLive()
	var ran atomic.Bool
	e.After(2*time.Millisecond, func() { ran.Store(true) })
	e.WaitIdle()
	if !ran.Load() {
		t.Fatal("WaitIdle returned before a timer-scheduled After handler ran")
	}
}
