package rt

import (
	"sync"
	"time"

	"repro/internal/clock"
)

// LiveEnv runs actors as free-running goroutines on the wall clock.
type LiveEnv struct {
	epoch int64 // internal/clock stamp taken at construction
	wg    sync.WaitGroup
}

// NewLive returns a wall-clock environment whose epoch is now.
func NewLive() *LiveEnv { return &LiveEnv{epoch: clock.Now()} }

// WaitIdle blocks until every actor spawned with Go has returned. Useful
// in tests; production code synchronises through Events instead.
func (e *LiveEnv) WaitIdle() { e.wg.Wait() }

// Now is the timestamp every send decision and telemetry sample reads,
// often several times per message; it must stay a bare monotonic-clock
// subtraction.
//
//railvet:hotpath
func (e *LiveEnv) Now() time.Duration { return clock.Since(e.epoch) }

func (e *LiveEnv) IsSim() bool { return false }

func (e *LiveEnv) Go(name string, fn func(Ctx)) {
	_ = name // names are for simulation traces; goroutines are anonymous
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		fn(liveCtx{env: e})
	}()
}

// After schedules fn to run d from now. Every handler — immediate or
// timer-fired — is tracked by the WaitGroup: WaitIdle must not return
// while scheduled handlers are pending or running. (All After users
// schedule bounded, short delays; a long-delay handler would hold
// WaitIdle open, which is the correct reading of "idle".)
func (e *LiveEnv) After(d time.Duration, fn func()) {
	e.wg.Add(1)
	run := func() {
		defer e.wg.Done()
		fn()
	}
	if d <= 0 {
		// Preserve the "runs later, never inline" guarantee of the sim.
		go run()
		return
	}
	time.AfterFunc(d, run)
}

func (e *LiveEnv) NewEvent() Event { return &liveEvent{done: make(chan struct{})} }
func (e *LiveEnv) NewQueue() Queue {
	q := &liveQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}
func (e *LiveEnv) NewResource(c int) Resource {
	if c < 1 {
		c = 1
	}
	r := &liveResource{capacity: c}
	r.cond = sync.NewCond(&r.mu)
	return r
}

type liveCtx struct{ env *LiveEnv }

func (c liveCtx) Now() time.Duration { return c.env.Now() }
func (c liveCtx) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

type liveEvent struct {
	mu    sync.Mutex
	fired bool
	done  chan struct{}
	cbs   []func()
}

func (e *liveEvent) Fire() {
	e.mu.Lock()
	if e.fired {
		e.mu.Unlock()
		return
	}
	e.fired = true
	cbs := e.cbs
	e.cbs = nil
	close(e.done)
	e.mu.Unlock()
	for _, cb := range cbs {
		cb()
	}
}

func (e *liveEvent) Fired() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.fired
}

func (e *liveEvent) Wait(Ctx) { <-e.done }

func (e *liveEvent) WaitTimeout(_ Ctx, d time.Duration) bool {
	if d <= 0 {
		select {
		case <-e.done:
			return true
		default:
			return false
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-e.done:
		return true
	case <-t.C:
		return e.Fired() // may have fired concurrently with the timer
	}
}

func (e *liveEvent) OnFire(cb func()) {
	e.mu.Lock()
	if e.fired {
		e.mu.Unlock()
		cb()
		return
	}
	e.cbs = append(e.cbs, cb)
	e.mu.Unlock()
}

type liveQueue struct {
	mu    sync.Mutex
	cond  *sync.Cond
	items []any
}

func (q *liveQueue) Push(v any) {
	q.mu.Lock()
	q.items = append(q.items, v)
	q.mu.Unlock()
	q.cond.Signal()
}

func (q *liveQueue) Pop(Ctx) any {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 {
		q.cond.Wait()
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v
}

func (q *liveQueue) TryPop() (any, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return nil, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v, true
}

func (q *liveQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

type liveResource struct {
	mu       sync.Mutex
	cond     *sync.Cond
	capacity int
	inUse    int
}

func (r *liveResource) Acquire(Ctx) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.inUse >= r.capacity {
		r.cond.Wait()
	}
	r.inUse++
}

func (r *liveResource) TryAcquire() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.inUse >= r.capacity {
		return false
	}
	r.inUse++
	return true
}

func (r *liveResource) Release() {
	r.mu.Lock()
	if r.inUse <= 0 {
		r.mu.Unlock()
		panic("rt: Resource.Release without matching Acquire")
	}
	r.inUse--
	r.mu.Unlock()
	r.cond.Signal()
}

func (r *liveResource) Idle() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.inUse < r.capacity
}

func (r *liveResource) Cap() int { return r.capacity }

func (r *liveResource) InUse() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.inUse
}
