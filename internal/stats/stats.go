// Package stats provides the small statistical toolbox used by the
// benchmark harness: summaries, percentiles, linear fits and labelled
// (x, y) series for figure regeneration.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Min    float64
	Max    float64
	Median float64
	StdDev float64
}

// Summarize computes descriptive statistics. An empty input yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var sq float64
	for _, x := range xs {
		d := x - s.Mean
		sq += d * d
	}
	if len(xs) > 1 {
		s.StdDev = math.Sqrt(sq / float64(len(xs)-1))
	}
	s.Median = Percentile(xs, 50)
	return s
}

// Percentile returns the p-th percentile (0..100) using linear
// interpolation between closest ranks. The input need not be sorted.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// LinearFit fits y = a + b*x by least squares and returns (a, b, r2).
// It needs at least two distinct x values; otherwise it returns NaNs.
func LinearFit(xs, ys []float64) (a, b, r2 float64) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN(), math.NaN(), math.NaN()
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return math.NaN(), math.NaN(), math.NaN()
	}
	b = (n*sxy - sx*sy) / den
	a = (sy - b*sx) / n
	ssTot := syy - sy*sy/n
	if ssTot == 0 {
		return a, b, 1
	}
	var ssRes float64
	for i := range xs {
		d := ys[i] - (a + b*xs[i])
		ssRes += d * d
	}
	r2 = 1 - ssRes/ssTot
	return a, b, r2
}

// Point is one (x, y) sample of a figure series.
type Point struct {
	X float64
	Y float64
}

// Series is a named sequence of points (one curve of a figure).
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{x, y}) }

// YAt returns the y value at the exact x, or NaN.
func (s *Series) YAt(x float64) float64 {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y
		}
	}
	return math.NaN()
}

// MaxY returns the largest y value in the series, or NaN if empty.
func (s *Series) MaxY() float64 {
	if len(s.Points) == 0 {
		return math.NaN()
	}
	m := s.Points[0].Y
	for _, p := range s.Points {
		if p.Y > m {
			m = p.Y
		}
	}
	return m
}

// MinY returns the smallest y value in the series, or NaN if empty.
func (s *Series) MinY() float64 {
	if len(s.Points) == 0 {
		return math.NaN()
	}
	m := s.Points[0].Y
	for _, p := range s.Points {
		if p.Y < m {
			m = p.Y
		}
	}
	return m
}

// SizeLabel formats a byte count the way the paper's axes do
// (4, 4K, 64K, 1M, 8M...).
func SizeLabel(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// PowersOfTwo returns the inclusive powers-of-two range [from, to].
func PowersOfTwo(from, to int) []int {
	var out []int
	for n := from; n <= to; n *= 2 {
		out = append(out, n)
		if n > math.MaxInt/2 {
			break
		}
	}
	return out
}
