package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("bad summary: %+v", s)
	}
	if math.Abs(s.StdDev-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("stddev = %v", s.StdDev)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
}

func TestSummarizeSingleton(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Median != 7 || s.StdDev != 0 {
		t.Fatalf("singleton summary: %+v", s)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileUnsortedInputUntouched(t *testing.T) {
	xs := []float64{3, 1, 2}
	if got := Percentile(xs, 100); got != 3 {
		t.Fatalf("P100 = %v", got)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestPercentileEmptyIsNaN(t *testing.T) {
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("want NaN")
	}
}

func TestLinearFitExactLine(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 7, 9, 11} // y = 3 + 2x
	a, b, r2 := LinearFit(xs, ys)
	if math.Abs(a-3) > 1e-9 || math.Abs(b-2) > 1e-9 || math.Abs(r2-1) > 1e-9 {
		t.Fatalf("fit = (%v, %v, %v)", a, b, r2)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	a, b, r2 := LinearFit([]float64{1}, []float64{2})
	if !math.IsNaN(a) || !math.IsNaN(b) || !math.IsNaN(r2) {
		t.Fatal("want NaNs for n<2")
	}
	a, _, _ = LinearFit([]float64{2, 2}, []float64{1, 5})
	if !math.IsNaN(a) {
		t.Fatal("want NaN for vertical data")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "curve"
	s.Add(1, 10)
	s.Add(2, 5)
	s.Add(3, 20)
	if s.YAt(2) != 5 {
		t.Fatal("YAt")
	}
	if !math.IsNaN(s.YAt(99)) {
		t.Fatal("YAt missing x should be NaN")
	}
	if s.MaxY() != 20 || s.MinY() != 5 {
		t.Fatalf("MaxY/MinY = %v/%v", s.MaxY(), s.MinY())
	}
}

func TestSeriesEmptyExtremes(t *testing.T) {
	var s Series
	if !math.IsNaN(s.MaxY()) || !math.IsNaN(s.MinY()) {
		t.Fatal("want NaN extremes on empty series")
	}
}

func TestSizeLabel(t *testing.T) {
	cases := map[int]string{
		4:          "4",
		1024:       "1K",
		4096:       "4K",
		65536:      "64K",
		1 << 20:    "1M",
		8 << 20:    "8M",
		3*1024 + 1: "3073",
	}
	for n, want := range cases {
		if got := SizeLabel(n); got != want {
			t.Errorf("SizeLabel(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestPowersOfTwo(t *testing.T) {
	got := PowersOfTwo(4, 64)
	want := []int{4, 8, 16, 32, 64}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// Property: mean lies within [min, max]; median likewise.
func TestPropertySummaryBounds(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9 &&
			s.Median >= s.Min-1e-9 && s.Median <= s.Max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: percentiles are monotone in p.
func TestPropertyPercentileMonotone(t *testing.T) {
	f := func(raw []float64, p1, p2 float64) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p1 = math.Mod(math.Abs(p1), 100)
		p2 = math.Mod(math.Abs(p2), 100)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return Percentile(xs, p1) <= Percentile(xs, p2)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: LinearFit recovers a noiseless line exactly.
func TestPropertyLinearFitRecovers(t *testing.T) {
	f := func(a8, b8 int8, n8 uint8) bool {
		a := float64(a8)
		b := float64(b8)
		n := int(n8%20) + 2
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := 0; i < n; i++ {
			xs[i] = float64(i)
			ys[i] = a + b*float64(i)
		}
		ga, gb, _ := LinearFit(xs, ys)
		return math.Abs(ga-a) < 1e-6 && math.Abs(gb-b) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
