package sampling

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"time"
)

// The sampling file format mirrors NewMadeleine's on-disk samplings: a
// human-readable text file, one header line per rail followed by one line
// per sample point.
//
//	# nmad-go sampling v1
//	rail 0 Myri-10G eagermax 32768
//	eager 4 2905
//	rdv 4 8404
//	...
const fileHeader = "# nmad-go sampling v1"

// Save writes the rail profiles in the sampling file format.
func Save(w io.Writer, profiles []*RailProfile) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, fileHeader)
	for _, p := range profiles {
		name := strings.ReplaceAll(p.Name, " ", "_")
		if name == "" {
			name = "unnamed"
		}
		fmt.Fprintf(bw, "rail %d %s eagermax %d\n", p.Rail, name, p.EagerMax)
		if p.Eager != nil {
			for _, s := range p.Eager.Samples() {
				fmt.Fprintf(bw, "eager %d %d\n", s.Size, s.T.Nanoseconds())
			}
		}
		for _, s := range p.Rdv.Samples() {
			fmt.Fprintf(bw, "rdv %d %d\n", s.Size, s.T.Nanoseconds())
		}
	}
	return bw.Flush()
}

// Load parses a sampling file written by Save.
func Load(r io.Reader) ([]*RailProfile, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineno := 0
	var out []*RailProfile
	var cur *RailProfile
	var eager, rdv []Sample
	flush := func() error {
		if cur == nil {
			return nil
		}
		var err error
		if len(eager) > 0 {
			if len(eager) < 2 {
				return fmt.Errorf("sampling: rail %d has %d eager samples, need >= 2", cur.Rail, len(eager))
			}
			if cur.Eager, err = NewTable(eager); err != nil {
				return err
			}
		}
		if len(rdv) < 2 {
			return fmt.Errorf("sampling: rail %d has %d rdv samples, need >= 2", cur.Rail, len(rdv))
		}
		if cur.Rdv, err = NewTable(rdv); err != nil {
			return err
		}
		out = append(out, cur)
		cur, eager, rdv = nil, nil, nil
		return nil
	}
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "rail":
			if err := flush(); err != nil {
				return nil, err
			}
			if len(fields) != 5 || fields[3] != "eagermax" {
				return nil, fmt.Errorf("sampling: line %d: bad rail header %q", lineno, line)
			}
			cur = &RailProfile{Name: strings.ReplaceAll(fields[2], "_", " ")}
			if _, err := fmt.Sscanf(fields[1], "%d", &cur.Rail); err != nil {
				return nil, fmt.Errorf("sampling: line %d: bad rail index: %v", lineno, err)
			}
			if _, err := fmt.Sscanf(fields[4], "%d", &cur.EagerMax); err != nil {
				return nil, fmt.Errorf("sampling: line %d: bad eagermax: %v", lineno, err)
			}
		case "eager", "rdv":
			if cur == nil {
				return nil, fmt.Errorf("sampling: line %d: sample before rail header", lineno)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("sampling: line %d: bad sample %q", lineno, line)
			}
			var size int
			var ns int64
			if _, err := fmt.Sscanf(fields[1], "%d", &size); err != nil {
				return nil, fmt.Errorf("sampling: line %d: bad size: %v", lineno, err)
			}
			if _, err := fmt.Sscanf(fields[2], "%d", &ns); err != nil {
				return nil, fmt.Errorf("sampling: line %d: bad duration: %v", lineno, err)
			}
			s := Sample{size, time.Duration(ns)}
			if fields[0] == "eager" {
				eager = append(eager, s)
			} else {
				rdv = append(rdv, s)
			}
		default:
			return nil, fmt.Errorf("sampling: line %d: unknown directive %q", lineno, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("sampling: no rails in file")
	}
	return out, nil
}
