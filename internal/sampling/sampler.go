package sampling

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/fabric"
	"repro/internal/model"
	"repro/internal/rt"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// Config tunes a sampling run.
type Config struct {
	// MinSize and MaxSize bound the sampled power-of-two sizes
	// (defaults 4 B and 8 MiB, the paper's plot range).
	MinSize int
	MaxSize int
	// Iters is the number of measurements per point; the minimum is kept
	// (1 is exact on the simulator; use more on a live environment).
	Iters int
}

func (c *Config) defaults() {
	if c.MinSize <= 0 {
		c.MinSize = 4
	}
	if c.MaxSize <= 0 {
		c.MaxSize = 8 << 20
	}
	if c.Iters <= 0 {
		c.Iters = 1
	}
}

// sizes returns the power-of-two ladder [MinSize, MaxSize].
func (c *Config) sizes() []int {
	var out []int
	for n := c.MinSize; n <= c.MaxSize; n *= 2 {
		out = append(out, n)
	}
	return out
}

// SampleProfiles benchmarks each analytic profile on a private two-node
// simulated cluster and returns one RailProfile per rail. This is what
// the engine runs at initialisation when no sampling file is given.
func SampleProfiles(profiles []*model.Profile, cfg Config) ([]*RailProfile, error) {
	env := rt.NewSim()
	defer env.Close()
	c, err := simnet.New(env, simnet.Config{Nodes: 2, Rails: profiles, CoresPerNode: 2})
	if err != nil {
		return nil, err
	}
	var out []*RailProfile
	var rerr error
	env.Go("sampler", func(ctx rt.Ctx) {
		out, rerr = SampleCluster(ctx, c, cfg)
	})
	env.Run()
	if rerr != nil {
		return nil, rerr
	}
	return out, nil
}

// SampleLive benchmarks every rail of a wall-clock fabric from a fresh
// actor and blocks until the measurements complete. Nodes 0 and 1 must
// both be hosted in this process (loopback); distributed deployments
// sample a loopback twin instead.
func SampleLive(f fabric.Fabric, cfg Config) ([]*RailProfile, error) {
	var out []*RailProfile
	var rerr error
	done := make(chan struct{})
	f.Env().Go("sampler", func(ctx rt.Ctx) {
		defer close(done)
		out, rerr = SampleCluster(ctx, f, cfg)
	})
	<-done
	return out, rerr
}

// SampleCluster benchmarks every rail of an existing fabric, measuring
// through the same fabric primitives the engine uses — on the modeled
// fabric this reproduces the paper's start-up sampling; on a live TCP
// fabric it measures genuine transfer times. It must be called from an
// actor of the fabric's environment; it drives nodes 0 and 1.
func SampleCluster(ctx rt.Ctx, f fabric.Fabric, cfg Config) ([]*RailProfile, error) {
	cfg.defaults()
	if f.NumNodes() < 2 {
		return nil, fmt.Errorf("sampling: need 2 nodes, fabric has %d", f.NumNodes())
	}
	srv := newPingServer(f)
	defer srv.stop(ctx)
	var out []*RailProfile
	for i := 0; i < f.NumRails(); i++ {
		rp, err := srv.sampleRail(ctx, i, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, rp)
	}
	return out, nil
}

// pingServer answers the sampling micro-protocol on both nodes: RTS is
// answered with CTS; eager containers and data chunks fire the completion
// event registered under their message id.
type pingServer struct {
	f    fabric.Fabric
	done [2]rt.Event // fired when the matching serve actor returns

	mu      sync.Mutex
	pending map[uint64]rt.Event
	nextID  uint64
}

func newPingServer(f fabric.Fabric) *pingServer {
	s := &pingServer{f: f, pending: make(map[uint64]rt.Event)}
	for _, node := range []int{0, 1} {
		node := node
		s.done[node] = f.Env().NewEvent()
		f.Env().Go(fmt.Sprintf("sampling-srv-%d", node), func(ctx rt.Ctx) {
			defer s.done[node].Fire()
			s.serve(ctx, node)
		})
	}
	return s
}

// stop nudges both serve actors with a nil item and joins them. Joining
// matters: the nodes' receive queues belong to the caller afterwards
// (multirail starts engines on them), so no serve actor may still be
// parked there and the nil sentinels must have been consumed.
func (s *pingServer) stop(ctx rt.Ctx) {
	s.f.Node(0).RecvQ().Push(nil)
	s.f.Node(1).RecvQ().Push(nil)
	s.done[0].Wait(ctx)
	s.done[1].Wait(ctx)
}

func (s *pingServer) register(id uint64) rt.Event {
	ev := s.f.Env().NewEvent()
	s.mu.Lock()
	s.pending[id] = ev
	s.mu.Unlock()
	return ev
}

func (s *pingServer) fire(id uint64) {
	s.mu.Lock()
	ev := s.pending[id]
	delete(s.pending, id)
	s.mu.Unlock()
	if ev != nil {
		ev.Fire()
	}
}

// serve answers the micro-protocol until it pops the nil stop nudge —
// the only exit, so exactly one nil is consumed per server.
func (s *pingServer) serve(ctx rt.Ctx, node int) {
	for {
		item := s.f.Node(node).RecvQ().Pop(ctx)
		if item == nil {
			return
		}
		d := item.(*fabric.Delivery)
		if d.RecvCPU > 0 {
			ctx.Sleep(d.RecvCPU)
		}
		h, _, err := wire.DecodeHeader(d.Data)
		if err != nil {
			continue
		}
		switch h.Kind {
		case wire.KindRTS:
			// Answer with a clear-to-send on the same rail. The CPU cost
			// split mirrors the engine: half the handshake cost on each
			// side.
			prof := s.f.Node(node).Rail(d.Rail).Profile()
			cts := wire.EncodeControl(wire.KindCTS, uint8(d.Rail), h.Origin, h.Tag, h.MsgID, h.TotalLen)
			s.f.Node(node).Rail(d.Rail).SendControl(ctx, d.From, cts,
				prof.RdvHandshakeCPU/2, prof.RdvHandshakeCPU/2)
		case wire.KindCTS, wire.KindEager:
			s.fire(h.MsgID)
		case wire.KindData:
			s.fire(h.MsgID)
		}
		if d.CopyCPU > 0 {
			ctx.Sleep(d.CopyCPU)
		}
	}
}

func (s *pingServer) id() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	return s.nextID
}

// measureEager returns the one-way duration of one eager send of n bytes
// on rail r from node 0 to node 1.
func (s *pingServer) measureEager(ctx rt.Ctx, r, n int) time.Duration {
	id := s.id()
	done := s.register(id)
	payload := wire.EncodeEager(uint8(r), []wire.Packet{{Tag: 0, MsgID: id, Payload: make([]byte, n)}})
	t0 := ctx.Now()
	s.f.Node(0).Rail(r).SendEager(ctx, 1, payload)
	done.Wait(ctx)
	return ctx.Now() - t0
}

// measureRdv returns the one-way duration of one rendezvous send of n
// bytes on rail r: RTS, wait CTS, DMA the payload, completion at
// delivery.
func (s *pingServer) measureRdv(ctx rt.Ctx, r, n int) time.Duration {
	rail := s.f.Node(0).Rail(r)
	prof := rail.Profile()
	ctsID := s.id()
	dataID := s.id()
	cts := s.register(ctsID)
	done := s.register(dataID)
	t0 := ctx.Now()
	rts := wire.EncodeControl(wire.KindRTS, uint8(r), 0, 0, ctsID, uint64(n))
	rail.SendControl(ctx, 1, rts, prof.SendOverhead, prof.RecvOverhead)
	cts.Wait(ctx)
	data := wire.EncodeData(uint8(r), 0, 0, dataID, 0, make([]byte, n), n)
	rail.SendData(ctx, 1, data, nil)
	done.Wait(ctx)
	return ctx.Now() - t0
}

func (s *pingServer) sampleRail(ctx rt.Ctx, r int, cfg Config) (*RailProfile, error) {
	prof := s.f.Node(0).Rail(r).Profile()
	// Cooldown between measurements: the receiver's post-completion eager
	// copy must drain, or it would skew the next point (2 ns/B bounds any
	// realistic copy rate).
	cool := func(n int) { ctx.Sleep(10*time.Microsecond + 2*time.Duration(n)) }
	// Warm the rail up with throwaway round trips before measuring. On a
	// simulated rail this is free (deterministic costs, discarded clock);
	// on a live TCP rail it absorbs the cold-start costs — connection
	// ramp-up, first-touch page faults — that would otherwise inflate the
	// first sampled point and corrupt the derived rendezvous threshold.
	for i := 0; i < 3; i++ {
		s.measureEager(ctx, r, cfg.MinSize)
		cool(cfg.MinSize)
	}
	var eager, rdv []Sample
	for _, n := range cfg.sizes() {
		if prof.EagerMax == 0 || n <= prof.EagerMax {
			best := time.Duration(1<<62 - 1)
			for it := 0; it < cfg.Iters; it++ {
				if d := s.measureEager(ctx, r, n); d < best {
					best = d
				}
				cool(n)
			}
			eager = append(eager, Sample{n, best})
		}
		best := time.Duration(1<<62 - 1)
		for it := 0; it < cfg.Iters; it++ {
			if d := s.measureRdv(ctx, r, n); d < best {
				best = d
			}
			cool(n)
		}
		rdv = append(rdv, Sample{n, best})
	}
	rp := &RailProfile{Rail: r, Name: prof.Name, EagerMax: prof.EagerMax}
	var err error
	if len(eager) >= 2 {
		if rp.Eager, err = NewTable(eager); err != nil {
			return nil, err
		}
	}
	if rp.Rdv, err = NewTable(rdv); err != nil {
		return nil, err
	}
	return rp, nil
}
