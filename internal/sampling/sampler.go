package sampling

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/rt"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// Config tunes a sampling run.
type Config struct {
	// MinSize and MaxSize bound the sampled power-of-two sizes
	// (defaults 4 B and 8 MiB, the paper's plot range).
	MinSize int
	MaxSize int
	// Iters is the number of measurements per point; the minimum is kept
	// (1 is exact on the simulator; use more on a live environment).
	Iters int
}

func (c *Config) defaults() {
	if c.MinSize <= 0 {
		c.MinSize = 4
	}
	if c.MaxSize <= 0 {
		c.MaxSize = 8 << 20
	}
	if c.Iters <= 0 {
		c.Iters = 1
	}
}

// sizes returns the power-of-two ladder [MinSize, MaxSize].
func (c *Config) sizes() []int {
	var out []int
	for n := c.MinSize; n <= c.MaxSize; n *= 2 {
		out = append(out, n)
	}
	return out
}

// SampleProfiles benchmarks each analytic profile on a private two-node
// simulated cluster and returns one RailProfile per rail. This is what
// the engine runs at initialisation when no sampling file is given.
func SampleProfiles(profiles []*model.Profile, cfg Config) ([]*RailProfile, error) {
	env := rt.NewSim()
	defer env.Close()
	c, err := simnet.New(env, simnet.Config{Nodes: 2, Rails: profiles, CoresPerNode: 2})
	if err != nil {
		return nil, err
	}
	var out []*RailProfile
	var rerr error
	env.Go("sampler", func(ctx rt.Ctx) {
		out, rerr = SampleCluster(ctx, c, cfg)
	})
	env.Run()
	if rerr != nil {
		return nil, rerr
	}
	return out, nil
}

// SampleCluster benchmarks every rail of an existing cluster, measuring
// through the same fabric primitives the engine uses. It must be called
// from an actor of the cluster's environment; it drives nodes 0 and 1.
func SampleCluster(ctx rt.Ctx, c *simnet.Cluster, cfg Config) ([]*RailProfile, error) {
	cfg.defaults()
	if len(c.Nodes) < 2 {
		return nil, fmt.Errorf("sampling: need 2 nodes, cluster has %d", len(c.Nodes))
	}
	srv := newPingServer(c)
	defer srv.stop()
	var out []*RailProfile
	for i := 0; i < c.NRails(); i++ {
		rp, err := srv.sampleRail(ctx, i, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, rp)
	}
	return out, nil
}

// pingServer answers the sampling micro-protocol on both nodes: RTS is
// answered with CTS; eager containers and data chunks fire the completion
// event registered under their message id.
type pingServer struct {
	c *simnet.Cluster

	mu      sync.Mutex
	pending map[uint64]rt.Event
	stopped bool
	nextID  uint64
}

func newPingServer(c *simnet.Cluster) *pingServer {
	s := &pingServer{c: c, pending: make(map[uint64]rt.Event)}
	for _, node := range []int{0, 1} {
		node := node
		c.Env.Go(fmt.Sprintf("sampling-srv-%d", node), func(ctx rt.Ctx) {
			s.serve(ctx, node)
		})
	}
	return s
}

func (s *pingServer) stop() {
	s.mu.Lock()
	s.stopped = true
	s.mu.Unlock()
	s.c.Nodes[0].RecvQ.Push(nil)
	s.c.Nodes[1].RecvQ.Push(nil)
}

func (s *pingServer) isStopped() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stopped
}

func (s *pingServer) register(id uint64) rt.Event {
	ev := s.c.Env.NewEvent()
	s.mu.Lock()
	s.pending[id] = ev
	s.mu.Unlock()
	return ev
}

func (s *pingServer) fire(id uint64) {
	s.mu.Lock()
	ev := s.pending[id]
	delete(s.pending, id)
	s.mu.Unlock()
	if ev != nil {
		ev.Fire()
	}
}

func (s *pingServer) serve(ctx rt.Ctx, node int) {
	for !s.isStopped() {
		item := s.c.Nodes[node].RecvQ.Pop(ctx)
		if item == nil {
			return
		}
		d := item.(*simnet.Delivery)
		if d.RecvCPU > 0 {
			ctx.Sleep(d.RecvCPU)
		}
		h, _, err := wire.DecodeHeader(d.Data)
		if err != nil {
			continue
		}
		switch h.Kind {
		case wire.KindRTS:
			// Answer with a clear-to-send on the same rail. The CPU cost
			// split mirrors the engine: half the handshake cost on each
			// side.
			prof := s.c.Nodes[node].Rail(d.Rail).Profile()
			cts := wire.EncodeControl(wire.KindCTS, uint8(d.Rail), h.Tag, h.MsgID, h.TotalLen)
			s.c.Nodes[node].Rail(d.Rail).SendControl(ctx, d.From, cts,
				prof.RdvHandshakeCPU/2, prof.RdvHandshakeCPU/2)
		case wire.KindCTS, wire.KindEager:
			s.fire(h.MsgID)
		case wire.KindData:
			s.fire(h.MsgID)
		}
		if d.CopyCPU > 0 {
			ctx.Sleep(d.CopyCPU)
		}
	}
}

func (s *pingServer) id() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	return s.nextID
}

// measureEager returns the one-way duration of one eager send of n bytes
// on rail r from node 0 to node 1.
func (s *pingServer) measureEager(ctx rt.Ctx, r, n int) time.Duration {
	id := s.id()
	done := s.register(id)
	payload := wire.EncodeEager(uint8(r), []wire.Packet{{Tag: 0, MsgID: id, Payload: make([]byte, n)}})
	t0 := ctx.Now()
	s.c.Nodes[0].Rail(r).SendEager(ctx, 1, payload)
	done.Wait(ctx)
	return ctx.Now() - t0
}

// measureRdv returns the one-way duration of one rendezvous send of n
// bytes on rail r: RTS, wait CTS, DMA the payload, completion at
// delivery.
func (s *pingServer) measureRdv(ctx rt.Ctx, r, n int) time.Duration {
	rail := s.c.Nodes[0].Rail(r)
	prof := rail.Profile()
	ctsID := s.id()
	dataID := s.id()
	cts := s.register(ctsID)
	done := s.register(dataID)
	t0 := ctx.Now()
	rts := wire.EncodeControl(wire.KindRTS, uint8(r), 0, ctsID, uint64(n))
	rail.SendControl(ctx, 1, rts, prof.SendOverhead, prof.RecvOverhead)
	cts.Wait(ctx)
	data := wire.EncodeData(uint8(r), 0, dataID, 0, make([]byte, n), n)
	rail.SendData(ctx, 1, data, nil)
	done.Wait(ctx)
	return ctx.Now() - t0
}

func (s *pingServer) sampleRail(ctx rt.Ctx, r int, cfg Config) (*RailProfile, error) {
	prof := s.c.Nodes[0].Rail(r).Profile()
	// Cooldown between measurements: the receiver's post-completion eager
	// copy must drain, or it would skew the next point (2 ns/B bounds any
	// realistic copy rate).
	cool := func(n int) { ctx.Sleep(10*time.Microsecond + 2*time.Duration(n)) }
	var eager, rdv []Sample
	for _, n := range cfg.sizes() {
		if prof.EagerMax == 0 || n <= prof.EagerMax {
			best := time.Duration(1<<62 - 1)
			for it := 0; it < cfg.Iters; it++ {
				if d := s.measureEager(ctx, r, n); d < best {
					best = d
				}
				cool(n)
			}
			eager = append(eager, Sample{n, best})
		}
		best := time.Duration(1<<62 - 1)
		for it := 0; it < cfg.Iters; it++ {
			if d := s.measureRdv(ctx, r, n); d < best {
				best = d
			}
			cool(n)
		}
		rdv = append(rdv, Sample{n, best})
	}
	rp := &RailProfile{Rail: r, Name: prof.Name, EagerMax: prof.EagerMax}
	var err error
	if len(eager) >= 2 {
		if rp.Eager, err = NewTable(eager); err != nil {
			return nil, err
		}
	}
	if rp.Rdv, err = NewTable(rdv); err != nil {
		return nil, err
	}
	return rp, nil
}
