// Package sampling implements the paper's network-sampling subsystem
// (§III-C): at initialisation each NIC is benchmarked at power-of-two
// sizes; the samples feed per-rail transfer-time estimators used by the
// split strategies.
//
// "First, the strategy accesses the results of the sampling measurements
// through structures initialized at the launch of NewMadeleine. Second,
// the sampled sizes that are the closest to the message size are
// retrieved, for instance using a logarithm in the case of power of 2
// samples. Finally, the estimated transfer time is computed by the mean
// of a linear interpolation."
//
// A Table holds one regime's samples (eager or rendezvous); a Profile
// bundles both regimes for one rail, provides the min-envelope estimate,
// and derives the rendezvous threshold — "sampling measurements can also
// be used to determine other parameters such as rendezvous threshold".
package sampling

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"time"
)

// Sample is one measured point: the one-way transfer duration of a
// Size-byte message.
type Sample struct {
	Size int
	T    time.Duration
}

// Table estimates transfer durations by log-indexed lookup plus linear
// interpolation over sampled sizes.
type Table struct {
	samples []Sample // sorted by Size, unique
	pow2    bool     // all sizes are powers of two (enables O(1) lookup)
}

// NewTable builds a table from samples (any order; duplicates collapse to
// the last value). At least two samples are required.
func NewTable(samples []Sample) (*Table, error) {
	if len(samples) < 2 {
		return nil, fmt.Errorf("sampling: need at least 2 samples, got %d", len(samples))
	}
	bydim := make(map[int]time.Duration, len(samples))
	for _, s := range samples {
		if s.Size <= 0 {
			return nil, fmt.Errorf("sampling: non-positive sampled size %d", s.Size)
		}
		if s.T < 0 {
			return nil, fmt.Errorf("sampling: negative duration at size %d", s.Size)
		}
		bykey := s.Size
		bydim[bykey] = s.T
	}
	t := &Table{pow2: true}
	for size, d := range bydim {
		t.samples = append(t.samples, Sample{size, d})
	}
	sort.Slice(t.samples, func(i, j int) bool { return t.samples[i].Size < t.samples[j].Size })
	for _, s := range t.samples {
		if s.Size&(s.Size-1) != 0 {
			t.pow2 = false
			break
		}
	}
	return t, nil
}

// Samples returns the sorted sample points.
func (t *Table) Samples() []Sample { return t.samples }

// MinSize and MaxSize bound the sampled range.
func (t *Table) MinSize() int { return t.samples[0].Size }
func (t *Table) MaxSize() int { return t.samples[len(t.samples)-1].Size }

// bracket returns the sample indices (i, i+1) surrounding n. For
// power-of-two tables the index is computed with a logarithm, as the
// paper describes; otherwise binary search is used.
func (t *Table) bracket(n int) (int, int) {
	s := t.samples
	if n <= s[0].Size {
		return 0, 1
	}
	if n >= s[len(s)-1].Size {
		return len(s) - 2, len(s) - 1
	}
	if t.pow2 {
		lg := bits.Len(uint(n)) - 1 // floor(log2 n)
		lg0 := bits.Len(uint(s[0].Size)) - 1
		i := lg - lg0
		// Contiguous power-of-two tables land exactly; guard holes.
		if i >= 0 && i+1 < len(s) && s[i].Size <= n && n <= s[i+1].Size {
			return i, i + 1
		}
	}
	i := sort.Search(len(s), func(k int) bool { return s[k].Size >= n }) // first >= n
	return i - 1, i
}

// Estimate predicts the transfer duration of an n-byte message by linear
// interpolation between the two nearest samples. Sizes outside the
// sampled range extrapolate linearly from the nearest segment (clamped to
// be nonnegative).
func (t *Table) Estimate(n int) time.Duration {
	if n < 0 {
		n = 0
	}
	i, j := t.bracket(n)
	a, b := t.samples[i], t.samples[j]
	if a.Size == b.Size {
		return a.T
	}
	frac := float64(n-a.Size) / float64(b.Size-a.Size)
	est := float64(a.T) + frac*float64(b.T-a.T)
	if est < 0 {
		est = 0
	}
	return time.Duration(math.Round(est))
}

// SizeFor inverts Estimate: the largest size whose estimated duration
// does not exceed d. Returns 0 if even the smallest transfers exceed d,
// and caps at max (pass 0 for "no cap" = 8x the sampled maximum).
func (t *Table) SizeFor(d time.Duration, max int) int {
	if max <= 0 {
		max = 8 * t.MaxSize()
	}
	if t.Estimate(max) <= d {
		return max
	}
	lo, hi := 0, max // invariant: Estimate(lo) <= d < Estimate(hi)
	if t.Estimate(0) > d {
		return 0
	}
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if t.Estimate(mid) <= d {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
