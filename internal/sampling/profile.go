package sampling

import (
	"fmt"
	"time"
)

// RailProfile bundles the sampled curves of one rail: the eager (PIO)
// regime and the rendezvous (DMA) regime. The strategy-facing estimate is
// the minimum envelope of the two, respecting the rail's hard eager
// limit.
type RailProfile struct {
	// Rail is the rail index within the cluster.
	Rail int
	// Name is the rail's technology name (for reports).
	Name string
	// Eager is the sampled eager curve (nil if the rail has none).
	Eager *Table
	// Rdv is the sampled rendezvous curve.
	Rdv *Table
	// EagerMax is the largest payload the eager path accepts.
	EagerMax int
}

// Estimate predicts the one-way transfer duration of an n-byte message on
// this rail, picking the faster regime (the driver does the same).
func (p *RailProfile) Estimate(n int) time.Duration {
	rdv := p.Rdv.Estimate(n)
	if p.Eager == nil || (p.EagerMax > 0 && n > p.EagerMax) {
		return rdv
	}
	if e := p.Eager.Estimate(n); e < rdv {
		return e
	}
	return rdv
}

// SizeFor inverts Estimate: the largest message size predicted to finish
// within d (capped at max; 0 means 8x the sampled maximum).
func (p *RailProfile) SizeFor(d time.Duration, max int) int {
	best := p.Rdv.SizeFor(d, max)
	if p.Eager != nil {
		cap := p.EagerMax
		if max > 0 && (cap == 0 || max < cap) {
			cap = max
		}
		if e := p.Eager.SizeFor(d, cap); e > best {
			best = e
		}
	}
	return best
}

// Threshold derives the rendezvous threshold from the samples: the
// smallest sampled size at which the rendezvous estimate beats the eager
// estimate (refined by bisection between the surrounding samples). This
// is the paper's "sampling measurements can also be used to determine
// other parameters such as rendezvous threshold".
func (p *RailProfile) Threshold() int {
	if p.Eager == nil {
		return 0
	}
	limit := p.EagerMax
	if limit == 0 {
		limit = p.Eager.MaxSize()
	}
	// Find the first sampled size where rendezvous wins.
	var lo, hi int
	found := false
	prev := p.Eager.MinSize()
	for _, s := range p.Eager.Samples() {
		if s.Size > limit {
			break
		}
		if p.Rdv.Estimate(s.Size) < s.T {
			lo, hi = prev, s.Size
			found = true
			break
		}
		prev = s.Size
	}
	if !found {
		return limit
	}
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if p.Rdv.Estimate(mid) < p.Eager.Estimate(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

func (p *RailProfile) String() string {
	return fmt.Sprintf("rail %d (%s): eager %d samples, rdv %d samples, threshold %d",
		p.Rail, p.Name, len(p.Eager.Samples()), len(p.Rdv.Samples()), p.Threshold())
}
