package sampling

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/model"
	"repro/internal/wire"
)

func us(n int) time.Duration { return time.Duration(n) * time.Microsecond }

func mustTable(t *testing.T, samples []Sample) *Table {
	t.Helper()
	tab, err := NewTable(samples)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable(nil); err == nil {
		t.Error("empty sample set accepted")
	}
	if _, err := NewTable([]Sample{{4, us(1)}}); err == nil {
		t.Error("single sample accepted")
	}
	if _, err := NewTable([]Sample{{0, us(1)}, {4, us(2)}}); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := NewTable([]Sample{{4, -us(1)}, {8, us(2)}}); err == nil {
		t.Error("negative duration accepted")
	}
}

func TestEstimateExactAtKnots(t *testing.T) {
	tab := mustTable(t, []Sample{{4, us(3)}, {8, us(5)}, {16, us(8)}, {32, us(20)}})
	for _, s := range tab.Samples() {
		if got := tab.Estimate(s.Size); got != s.T {
			t.Errorf("Estimate(%d) = %v, want knot %v", s.Size, got, s.T)
		}
	}
}

func TestEstimateInterpolatesLinearly(t *testing.T) {
	tab := mustTable(t, []Sample{{4, us(4)}, {8, us(8)}})
	if got := tab.Estimate(6); got != us(6) {
		t.Fatalf("Estimate(6) = %v, want 6µs", got)
	}
}

func TestEstimateExtrapolates(t *testing.T) {
	tab := mustTable(t, []Sample{{8, us(8)}, {16, us(12)}})
	// Below range: continues the first segment (slope 0.5µs/byte).
	if got := tab.Estimate(4); got != us(6) {
		t.Fatalf("Estimate(4) = %v, want 6µs", got)
	}
	// Above range: continues the last segment.
	if got := tab.Estimate(32); got != us(20) {
		t.Fatalf("Estimate(32) = %v, want 20µs", got)
	}
	// Never negative even with a steep down-extrapolation.
	tab2 := mustTable(t, []Sample{{1024, us(1)}, {2048, us(100)}})
	if got := tab2.Estimate(4); got != 0 {
		t.Fatalf("clamped Estimate = %v, want 0", got)
	}
}

func TestPow2LookupMatchesSearch(t *testing.T) {
	// The log-indexed fast path and the binary-search path must agree.
	var pow2 []Sample
	for n := 4; n <= 1<<20; n *= 2 {
		pow2 = append(pow2, Sample{n, time.Duration(n) * 3})
	}
	tab := mustTable(t, pow2)
	if !tab.pow2 {
		t.Fatal("pow2 not detected")
	}
	irregular := mustTable(t, append([]Sample{{5, us(1)}}, pow2...))
	if irregular.pow2 {
		t.Fatal("non-pow2 detected as pow2")
	}
	for n := 4; n < 1<<20; n = n*3/2 + 1 {
		if tab.Estimate(n) != mustTable(t, pow2).Estimate(n) {
			t.Fatalf("pow2 path diverges at %d", n)
		}
	}
}

func TestSizeForInvertsEstimate(t *testing.T) {
	tab := mustTable(t, []Sample{{4, us(4)}, {1024, us(1024)}})
	for _, d := range []time.Duration{us(4), us(100), us(777), us(1024)} {
		n := tab.SizeFor(d, 1024)
		if got := tab.Estimate(n); got > d {
			t.Fatalf("SizeFor(%v) = %d but Estimate = %v > budget", d, n, got)
		}
		if n < 1024 {
			if next := tab.Estimate(n + 1); next <= d {
				t.Fatalf("SizeFor(%v) = %d not maximal (size %d still fits)", d, n, n+1)
			}
		}
	}
}

func TestSizeForEdges(t *testing.T) {
	tab := mustTable(t, []Sample{{4, us(10)}, {8, us(20)}})
	if n := tab.SizeFor(us(1), 0); n != 0 {
		t.Fatalf("impossible budget: SizeFor = %d, want 0", n)
	}
	if n := tab.SizeFor(us(1000000), 0); n != 8*tab.MaxSize() {
		t.Fatalf("huge budget: SizeFor = %d, want cap %d", n, 8*tab.MaxSize())
	}
}

func TestSampledCurvesMatchModelClosely(t *testing.T) {
	profs, err := SampleProfiles(model.PaperTestbed(), Config{MinSize: 4, MaxSize: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(profs) != 2 {
		t.Fatalf("%d profiles", len(profs))
	}
	m := model.Myri10G()
	// Sampled times include wire framing (the engine pays it too), so
	// allow the framing bytes' worth of slack.
	framing := wire.HeaderSize + 16
	for _, n := range []int{4, 1024, 65536, 1 << 20, 8 << 20} {
		got := profs[0].Estimate(n)
		want := m.OneWay(n)
		hi := m.OneWay(n + framing)
		lo := want - time.Microsecond
		if got < lo || got > hi+2*time.Microsecond {
			t.Errorf("size %d: sampled %v, model %v", n, got, want)
		}
	}
}

func TestSampledThresholdNearModel(t *testing.T) {
	profs, err := SampleProfiles(model.PaperTestbed(), Config{MinSize: 4, MaxSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for i, mp := range model.PaperTestbed() {
		got := profs[i].Threshold()
		want := mp.Threshold()
		ratio := float64(got) / float64(want)
		if ratio < 0.8 || ratio > 1.25 {
			t.Errorf("%s: sampled threshold %d, model %d", mp.Name, got, want)
		}
	}
}

func TestThresholdWithoutCrossoverIsEagerMax(t *testing.T) {
	// A rail whose eager path never loses keeps eager up to the cap.
	eager := mustTable(t, []Sample{{4, us(1)}, {1024, us(2)}})
	rdv := mustTable(t, []Sample{{4, us(100)}, {1024, us(200)}})
	p := &RailProfile{Eager: eager, Rdv: rdv, EagerMax: 1024}
	if got := p.Threshold(); got != 1024 {
		t.Fatalf("threshold %d, want EagerMax", got)
	}
}

func TestRailProfileEstimateEnvelope(t *testing.T) {
	eager := mustTable(t, []Sample{{4, us(1)}, {4096, us(10)}})
	rdv := mustTable(t, []Sample{{4, us(6)}, {4096, us(7)}})
	p := &RailProfile{Eager: eager, Rdv: rdv, EagerMax: 2048}
	if got := p.Estimate(4); got != us(1) {
		t.Fatalf("small: %v, want eager 1µs", got)
	}
	// Above EagerMax the rdv curve must be used even if eager looks
	// cheaper on paper.
	if got := p.Estimate(4096); got != us(7) {
		t.Fatalf("large: %v, want rdv 7µs", got)
	}
	// Between: min envelope.
	if e, r := eager.Estimate(2000), rdv.Estimate(2000); p.Estimate(2000) != minDur(e, r) {
		t.Fatalf("envelope broken at 2000")
	}
}

func minDur(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

func TestSaveLoadRoundTrip(t *testing.T) {
	profs, err := SampleProfiles(model.PaperTestbed(), Config{MinSize: 4, MaxSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, profs); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(profs) {
		t.Fatalf("%d rails back, want %d", len(back), len(profs))
	}
	for i := range profs {
		if back[i].Name != profs[i].Name || back[i].EagerMax != profs[i].EagerMax {
			t.Fatalf("rail %d header mismatch: %+v vs %+v", i, back[i], profs[i])
		}
		for _, n := range []int{4, 100, 5000, 64 << 10} {
			if back[i].Estimate(n) != profs[i].Estimate(n) {
				t.Fatalf("rail %d: estimate differs at %d after reload", i, n)
			}
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"bogus 1 2\n",
		"rail 0\n",
		"eager 4 100\n",                     // sample before header
		"rail 0 x eagermax 10\neager 4 1\n", // too few samples
		"rail 0 x eagermax 10\nrdv 4 1\n",   // too few rdv
		"rail 0 x eagermax 10\nrdv a 1\nrdv 8 2\n",   // bad size
		"rail 0 x eagermax 10\nrdv 4 b\nrdv 8 2\n",   // bad duration
		"rail z x eagermax 10\nrdv 4 1\nrdv 8 2\n",   // bad index
		"rail 0 x eagermax z\nrdv 4 1\nrdv 8 2\n",    // bad eagermax
		"rail 0 x eagermax 10\nrdv 4 1 5\nrdv 8 2\n", // bad field count
	}
	for i, c := range cases {
		if _, err := Load(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted: %q", i, c)
		}
	}
}

func TestLoadSkipsCommentsAndBlanks(t *testing.T) {
	in := "# comment\n\nrail 0 Myri-10G eagermax 100\n# another\neager 4 10\neager 8 20\nrdv 4 30\nrdv 8 40\n"
	profs, err := Load(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(profs) != 1 || profs[0].Name != "Myri-10G" {
		t.Fatalf("%+v", profs)
	}
}

// Property: estimates are exact at every knot and monotone between knots
// for monotone sample sets.
func TestPropertyInterpolation(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(n8%10) + 2
		samples := make([]Sample, n)
		size := 4
		var d time.Duration
		for i := 0; i < n; i++ {
			d += time.Duration(rng.Intn(1000)+1) * time.Microsecond
			samples[i] = Sample{size, d}
			size *= 2
		}
		tab, err := NewTable(samples)
		if err != nil {
			return false
		}
		for _, s := range samples {
			if tab.Estimate(s.Size) != s.T {
				return false
			}
		}
		// Monotonicity between adjacent knots.
		for i := 1; i < n; i++ {
			a, b := samples[i-1], samples[i]
			mid := (a.Size + b.Size) / 2
			e := tab.Estimate(mid)
			if e < a.T || e > b.T {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: SizeFor(Estimate(n)) >= n for in-range sizes on increasing
// tables.
func TestPropertySizeForGaloisConnection(t *testing.T) {
	f := func(seed int64, raw uint32) bool {
		rng := rand.New(rand.NewSource(seed))
		var samples []Sample
		var d time.Duration
		size := 4
		for size <= 1<<20 {
			d += time.Duration(rng.Intn(5000)+1) * time.Nanosecond
			samples = append(samples, Sample{size, d})
			size *= 2
		}
		tab, err := NewTable(samples)
		if err != nil {
			return false
		}
		n := int(raw%(1<<20)) + 4
		got := tab.SizeFor(tab.Estimate(n), 1<<20)
		return got >= n || got == 1<<20
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
