// Package leakcheck fails a test binary whose goroutines outlive its
// tests. The fabric packages spawn a goroutine per link direction plus
// health actors; a reader or writer that survives Close is exactly the
// bug class PR 2's shutdown work fixed, and this check keeps it fixed
// without vendoring a leak detector.
//
// Usage, once per test package:
//
//	func TestMain(m *testing.M) { leakcheck.Main(m) }
//
// After the tests pass, the checker snapshots all goroutine stacks,
// discards the benign ones (the test runner itself, the runtime's
// helpers), and retries for a grace period so goroutines that are
// mid-exit — a writeLoop draining its last frame after Close returned —
// are not false positives. Anything still alive after the grace period
// is printed in full and fails the binary.
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// grace is how long a goroutine may straggle after the last test
// before it counts as leaked.
const grace = 5 * time.Second

// Main wraps testing.M.Run with the leak check. It does not return.
func Main(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if stale := wait(grace); len(stale) > 0 {
			fmt.Fprintf(os.Stderr, "leakcheck: %d goroutine(s) still running after the last test:\n\n%s\n",
				len(stale), strings.Join(stale, "\n\n"))
			code = 1
		}
	}
	os.Exit(code)
}

// wait polls until no suspect goroutines remain or the grace period
// expires, returning the stacks of the survivors.
func wait(d time.Duration) []string {
	deadline := time.Now().Add(d)
	for {
		stale := suspects()
		if len(stale) == 0 || time.Now().After(deadline) {
			return stale
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// benignMarks identify goroutines that are part of the test harness or
// the runtime rather than code under test.
var benignMarks = []string{
	"testing.Main(",
	"testing.(*M).Run",
	"testing.(*T).Run",
	"testing.tRunner",
	"testing.runTests",
	"runtime.goexit",
	"leakcheck.suspects", // the goroutine taking this snapshot
	"runtime/pprof",      // profiler writers during -cpuprofile runs
	"os/signal.signal_recv",
	"runtime.ReadTrace",
	"runtime.ensureSigM",
}

// suspects returns the stacks of goroutines that look like code under
// test.
func suspects() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var out []string
	for _, g := range strings.Split(string(buf), "\n\n") {
		g = strings.TrimSpace(g)
		if g == "" || isBenign(g) {
			continue
		}
		out = append(out, g)
	}
	return out
}

func isBenign(stack string) bool {
	for _, mark := range benignMarks {
		if strings.Contains(stack, mark) {
			return true
		}
	}
	return false
}
