package leakcheck

import (
	"strings"
	"testing"
	"time"
)

func TestDetectsAndClears(t *testing.T) {
	release := make(chan struct{})
	go leakyWorker(release)

	// The blocked goroutine must show up as a suspect.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if stacksContain(suspects(), "leakyWorker") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("blocked goroutine never reported as a suspect")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Once released, wait() must see it drain within the grace period.
	close(release)
	if stale := wait(2 * time.Second); stacksContain(stale, "leakyWorker") {
		t.Fatalf("released goroutine still reported: %v", stale)
	}
}

func TestBenignFilter(t *testing.T) {
	// The snapshotting goroutine itself (this test, under tRunner) must
	// never be a suspect, or every binary would fail.
	if stacks := suspects(); stacksContain(stacks, "TestBenignFilter") {
		t.Fatalf("the test harness goroutine was reported as a leak:\n%s",
			strings.Join(stacks, "\n\n"))
	}
}

func leakyWorker(release chan struct{}) { <-release }

func stacksContain(stacks []string, substr string) bool {
	for _, s := range stacks {
		if strings.Contains(s, substr) {
			return true
		}
	}
	return false
}
