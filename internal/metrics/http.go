package metrics

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Endpoint is an extra route mounted on the exporter mux — how the
// trace package's ring/Perfetto handlers ride the metrics server
// without this package importing them.
type Endpoint struct {
	Path string
	H    http.HandlerFunc
}

// Handler returns the exporter's HTTP surface:
//
//	/metrics       Prometheus text exposition
//	/metrics.json  Snapshot as JSON (what cmd/nmtop consumes)
//	/debug/pprof/  net/http/pprof, when withPprof is set
//
// plus any extra endpoints the caller mounts (e.g. /trace/ring.json).
// The handlers are mounted on a private mux — importing this package
// never touches http.DefaultServeMux.
func Handler(r *Registry, withPprof bool, extra ...Endpoint) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(r.Snapshot())
	})
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	for _, e := range extra {
		mux.HandleFunc(e.Path, e.H)
	}
	return mux
}

// Server is a running metrics exporter.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the exporter on addr ("host:0" picks an ephemeral
// port — read the result back with Addr). The listener is bound
// synchronously, so a nil error means the endpoint is scrapeable.
func Serve(addr string, r *Registry, withPprof bool, extra ...Endpoint) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: &http.Server{
		Handler:           Handler(r, withPprof, extra...),
		ReadHeaderTimeout: 5 * time.Second,
	}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the exporter's bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the exporter.
func (s *Server) Close() error { return s.srv.Close() }
