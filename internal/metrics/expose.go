package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
)

// Snapshot is a point-in-time copy of every family in a registry, in
// registration order. It is what the JSON endpoint serves and what
// Cluster.MetricsSnapshot returns; cmd/nmtop decodes it back from JSON.
type Snapshot struct {
	Families []FamilySnapshot `json:"families"`
}

// FamilySnapshot is one family's metrics.
type FamilySnapshot struct {
	Name    string           `json:"name"`
	Help    string           `json:"help,omitempty"`
	Kind    Kind             `json:"kind"`
	Metrics []MetricSnapshot `json:"metrics"`
}

// MetricSnapshot is one labelled metric. Counters and gauges carry
// Value; histograms carry Count, Sum (seconds) and the cumulative
// Buckets.
type MetricSnapshot struct {
	Labels  []Label          `json:"labels,omitempty"`
	Value   float64          `json:"value"`
	Count   uint64           `json:"count,omitempty"`
	Sum     float64          `json:"sum,omitempty"`
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
}

// BucketSnapshot is one cumulative histogram bucket: observations at or
// under LE seconds. The final bucket has LE = +Inf, encoded as the JSON
// string "+Inf" (encoding/json refuses infinite floats).
type BucketSnapshot struct {
	LE    float64 `json:"-"`
	Count uint64  `json:"count"`
}

// bucketJSON is the wire form of BucketSnapshot; le is a number or the
// string "+Inf".
type bucketJSON struct {
	LE    any    `json:"le"`
	Count uint64 `json:"count"`
}

// MarshalJSON encodes the +Inf bound as the string "+Inf".
func (b BucketSnapshot) MarshalJSON() ([]byte, error) {
	le := any(b.LE)
	if math.IsInf(b.LE, 1) {
		le = "+Inf"
	}
	return json.Marshal(bucketJSON{LE: le, Count: b.Count})
}

// UnmarshalJSON accepts a numeric or "+Inf" bound.
func (b *BucketSnapshot) UnmarshalJSON(data []byte) error {
	var w bucketJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	b.Count = w.Count
	switch v := w.LE.(type) {
	case float64:
		b.LE = v
	case string:
		b.LE = math.Inf(1)
	}
	return nil
}

// Label returns the metric's value for one label name ("" if unset).
func (m *MetricSnapshot) Label(name string) string {
	for _, l := range m.Labels {
		if l.Name == name {
			return l.Value
		}
	}
	return ""
}

// Quantile estimates the q-quantile (0 < q <= 1) of a histogram metric
// in seconds, interpolating linearly inside the winning bucket. It
// returns 0 with no observations; mass in the +Inf bucket reports the
// highest finite bound (the histogram cannot see further).
func (m *MetricSnapshot) Quantile(q float64) float64 {
	if len(m.Buckets) == 0 || m.Count == 0 {
		return 0
	}
	rank := q * float64(m.Count)
	lowerBound, lowerCount := 0.0, uint64(0)
	for i, b := range m.Buckets {
		if float64(b.Count) >= rank {
			if i == len(m.Buckets)-1 {
				// +Inf bucket: report the last finite edge.
				return lowerBound
			}
			span := float64(b.Count - lowerCount)
			if span <= 0 {
				return b.LE
			}
			frac := (rank - float64(lowerCount)) / span
			return lowerBound + (b.LE-lowerBound)*frac
		}
		lowerBound, lowerCount = b.LE, b.Count
	}
	return lowerBound
}

// Find returns the first metric of the named family whose label set
// includes every given label, or nil. Snapshot consumers (nmtop,
// nmbench, tests) use it instead of hand-rolled loops.
func (s Snapshot) Find(family string, labels ...Label) *MetricSnapshot {
	for fi := range s.Families {
		f := &s.Families[fi]
		if f.Name != family {
			continue
		}
	next:
		for mi := range f.Metrics {
			m := &f.Metrics[mi]
			for _, want := range labels {
				if m.Label(want.Name) != want.Value {
					continue next
				}
			}
			return m
		}
	}
	return nil
}

// Family returns the named family snapshot, or nil.
func (s Snapshot) Family(name string) *FamilySnapshot {
	for i := range s.Families {
		if s.Families[i].Name == name {
			return &s.Families[i]
		}
	}
	return nil
}

// Snapshot captures every family. Func instruments are invoked here, on
// the scraping goroutine — never on a hot path.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, 0, len(names))
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()

	out := Snapshot{Families: make([]FamilySnapshot, 0, len(fams))}
	for _, f := range fams {
		f.mu.Lock()
		keys := append([]string(nil), f.order...)
		ms := make([]*metric, 0, len(keys))
		for _, k := range keys {
			ms = append(ms, f.metrics[k])
		}
		f.mu.Unlock()

		fs := FamilySnapshot{Name: f.name, Help: f.help, Kind: f.kind,
			Metrics: make([]MetricSnapshot, 0, len(ms))}
		for _, m := range ms {
			fs.Metrics = append(fs.Metrics, m.snapshot())
		}
		out.Families = append(out.Families, fs)
	}
	return out
}

// snapshot copies one metric's current values.
func (m *metric) snapshot() MetricSnapshot {
	out := MetricSnapshot{Labels: m.labels}
	switch {
	case m.counter != nil:
		out.Value = float64(m.counter.Value())
	case m.counterFn != nil:
		out.Value = float64(m.counterFn())
	case m.gauge != nil:
		out.Value = float64(m.gauge.Value())
	case m.gaugeFn != nil:
		out.Value = m.gaugeFn()
	case m.hist != nil:
		h := m.hist
		out.Count = h.count.Load()
		out.Sum = float64(h.sumNS.Load()) / 1e9
		out.Value = float64(out.Count)
		out.Buckets = make([]BucketSnapshot, len(h.buckets))
		cum := uint64(0)
		for i := range h.buckets {
			cum += h.buckets[i].Load()
			le := inf
			if i < len(h.boundsNS) {
				le = float64(h.boundsNS[i]) / 1e9
			}
			out.Buckets[i] = BucketSnapshot{LE: le, Count: cum}
		}
	}
	return out
}

var inf = math.Inf(1)

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): HELP/TYPE headers, one line per
// sample, histogram buckets cumulative with le labels in seconds.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, f := range r.Snapshot().Families {
		if f.Help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.Name, escapeHelp(f.Help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.Name, f.Kind)
		for _, m := range f.Metrics {
			if f.Kind == KindHistogram {
				for _, bk := range m.Buckets {
					le := "+Inf"
					if bk.LE != inf {
						le = formatFloat(bk.LE)
					}
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.Name,
						labelString(m.Labels, Label{Name: "le", Value: le}), bk.Count)
				}
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.Name, labelString(m.Labels), formatFloat(m.Sum))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.Name, labelString(m.Labels), m.Count)
				continue
			}
			fmt.Fprintf(&b, "%s%s %s\n", f.Name, labelString(m.Labels), formatFloat(m.Value))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// labelString renders {a="b",c="d"} (empty string for no labels).
func labelString(labels []Label, extra ...Label) string {
	all := labels
	if len(extra) > 0 {
		all = append(append([]Label(nil), labels...), extra...)
	}
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeValue(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// formatFloat renders a sample value: integers without a fraction,
// everything else in compact scientific-capable form.
func formatFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
