package metrics

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/ratchet"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_events_total", "events", L("kind", "a")...)
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	// Re-registering the same name+labels returns the same instrument.
	if again := r.Counter("test_events_total", "events", L("kind", "a")...); again != c {
		t.Fatal("re-registration did not return the existing counter")
	}
	g := r.Gauge("test_level", "level")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
}

func TestFuncInstruments(t *testing.T) {
	r := NewRegistry()
	n := uint64(41)
	r.CounterFunc("test_fn_total", "fn", func() uint64 { return n })
	r.GaugeFunc("test_fn_level", "fn", func() float64 { return 2.5 })
	n++
	s := r.Snapshot()
	if m := s.Find("test_fn_total"); m == nil || m.Value != 42 {
		t.Fatalf("counter func snapshot = %+v, want 42", m)
	}
	if m := s.Find("test_fn_level"); m == nil || m.Value != 2.5 {
		t.Fatalf("gauge func snapshot = %+v, want 2.5", m)
	}
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	r := NewRegistry()
	bounds := []time.Duration{time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond}
	h := r.Histogram("test_latency_seconds", "lat", bounds)
	for i := 0; i < 100; i++ {
		h.Observe(500 * time.Microsecond) // first bucket
	}
	for i := 0; i < 100; i++ {
		h.Observe(5 * time.Millisecond) // second bucket
	}
	h.Observe(time.Second) // +Inf bucket
	if h.Count() != 201 {
		t.Fatalf("count = %d, want 201", h.Count())
	}
	m := r.Snapshot().Find("test_latency_seconds")
	if m == nil {
		t.Fatal("histogram missing from snapshot")
	}
	if len(m.Buckets) != 4 {
		t.Fatalf("got %d buckets, want 4 (3 bounds + Inf)", len(m.Buckets))
	}
	wantCum := []uint64{100, 200, 200, 201}
	for i, b := range m.Buckets {
		if b.Count != wantCum[i] {
			t.Fatalf("bucket %d cumulative = %d, want %d", i, b.Count, wantCum[i])
		}
	}
	if !math.IsInf(m.Buckets[3].LE, 1) {
		t.Fatalf("last bucket LE = %v, want +Inf", m.Buckets[3].LE)
	}
	p50 := m.Quantile(0.5)
	if p50 < 0.0003 || p50 > 0.002 {
		t.Fatalf("p50 = %v s, want ~0.001 s (first two buckets split the mass)", p50)
	}
	p99 := m.Quantile(0.99)
	if p99 < 0.001 || p99 > 0.01 {
		t.Fatalf("p99 = %v s, want inside the second bucket", p99)
	}
	// The +Inf observation pins the max quantile at the last finite edge.
	if q := m.Quantile(1.0); q != 0.1 {
		t.Fatalf("p100 = %v, want 0.1 (highest finite bound)", q)
	}
}

func TestPrometheusText(t *testing.T) {
	r := NewRegistry()
	r.Counter("nm_test_total", "a counter", L("rail", "0", "kind", "shm")...).Add(3)
	r.Gauge("nm_test_level", "a gauge").Set(-2)
	h := r.Histogram("nm_test_seconds", "a histogram", []time.Duration{time.Millisecond})
	h.Observe(2 * time.Millisecond)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE nm_test_total counter",
		`nm_test_total{rail="0",kind="shm"} 3`,
		"# TYPE nm_test_level gauge",
		"nm_test_level -2",
		"# TYPE nm_test_seconds histogram",
		`nm_test_seconds_bucket{le="0.001"} 0`,
		`nm_test_seconds_bucket{le="+Inf"} 1`,
		"nm_test_seconds_sum 0.002",
		"nm_test_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus text missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("nm_rt_total", "c", L("rail", "1")...).Add(9)
	r.Histogram("nm_rt_seconds", "h", nil).Observe(3 * time.Millisecond)
	enc, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(enc, &back); err != nil {
		t.Fatal(err)
	}
	if m := back.Find("nm_rt_total", Label{Name: "rail", Value: "1"}); m == nil || m.Value != 9 {
		t.Fatalf("round-tripped counter = %+v, want 9", m)
	}
	h := back.Find("nm_rt_seconds")
	if h == nil || h.Count != 1 {
		t.Fatalf("round-tripped histogram = %+v, want count 1", h)
	}
	if last := h.Buckets[len(h.Buckets)-1]; !math.IsInf(last.LE, 1) {
		t.Fatalf("round-tripped +Inf bucket LE = %v, want +Inf", last.LE)
	}
	if q := h.Quantile(0.5); q <= 0 {
		t.Fatalf("round-tripped p50 = %v, want > 0", q)
	}
}

// TestIncrementAllocs is the hot-path ratchet of the tentpole: counter,
// gauge and histogram writes must not allocate. It sits beside the shm
// frame and eager round-trip ratchets (internal/shmnet, internal/core)
// as a hard CI failure.
func TestIncrementAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc_total", "c", L("rail", "0")...)
	g := r.Gauge("alloc_level", "g")
	h := r.Histogram("alloc_seconds", "h", nil)
	d := 3 * time.Millisecond
	worst := testing.AllocsPerRun(1000, func() { c.Inc(); c.Add(3) })
	if n := testing.AllocsPerRun(1000, func() { g.Set(4); g.Add(-1) }); n > worst {
		worst = n
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(d) }); n > worst {
		worst = n
	}
	ratchet.Check(t, "metrics/instruments", worst)
}

func TestConcurrentWrites(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "c")
	h := r.Histogram("conc_seconds", "h", nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(time.Duration(j) * time.Microsecond)
			}
		}()
	}
	done := make(chan struct{})
	go func() { // concurrent scrapes must race cleanly with writers
		for {
			select {
			case <-done:
				return
			default:
				r.Snapshot()
			}
		}
	}()
	wg.Wait()
	close(done)
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}

func TestHTTPExporter(t *testing.T) {
	r := NewRegistry()
	r.Counter("nm_http_total", "c").Add(11)
	s, err := Serve("127.0.0.1:0", r, true)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + s.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}
	if out := get("/metrics"); !strings.Contains(out, "nm_http_total 11") {
		t.Fatalf("/metrics missing sample:\n%s", out)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(get("/metrics.json")), &snap); err != nil {
		t.Fatal(err)
	}
	if m := snap.Find("nm_http_total"); m == nil || m.Value != 11 {
		t.Fatalf("/metrics.json counter = %+v, want 11", m)
	}
	if out := get("/debug/pprof/cmdline"); out == "" {
		t.Fatal("pprof endpoint empty")
	}
}
