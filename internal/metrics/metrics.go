// Package metrics is the engine's dependency-free instrumentation
// plane: a registry of counters, gauges and fixed-bucket histograms
// organised into labelled families (peer, rail, kind, size-class), with
// hot-path writes that are lock-free and allocation-free.
//
// Two kinds of instruments exist:
//
//   - Owned instruments (Counter, Gauge, Histogram) hold their own
//     atomics. Handles are resolved once at wiring time — the label
//     lookup, the only allocating step, happens off the hot path — and
//     every subsequent Inc/Add/Observe is a few atomic operations
//     (guarded by an AllocsPerRun ratchet in metrics_test.go).
//   - Func instruments (CounterFunc, GaugeFunc) read an existing value
//     at scrape time. Subsystems that already keep atomic counters
//     (engine stats, plan cache, rail health, fabric rails) export them
//     this way at zero hot-path cost and without double counting.
//
// Durations are stored as nanoseconds internally and rendered as
// seconds in both exposition formats (expose.go), matching Prometheus
// convention. Histogram observations take a time.Duration the caller
// measured with the environment clock (internal/clock on live paths) —
// nothing in this package reads a clock, so the hotclock discipline is
// preserved by construction.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is the exposition type of a family.
type Kind string

const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Label is one name=value pair of a metric's label set.
type Label struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// L builds a label set from alternating name, value strings.
func L(nv ...string) []Label {
	if len(nv)%2 != 0 {
		panic("metrics: L takes alternating name, value pairs")
	}
	out := make([]Label, 0, len(nv)/2)
	for i := 0; i < len(nv); i += 2 {
		out = append(out, Label{Name: nv[i], Value: nv[i+1]})
	}
	return out
}

// Counter is a monotonically increasing uint64.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
//
//railvet:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
//
//railvet:hotpath
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable int64 level.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
//
//railvet:hotpath
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the value by d (negative to decrease).
//
//railvet:hotpath
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket duration histogram: cumulative rendering
// happens at snapshot time, the hot path only bumps one bucket plus the
// count and sum atomics. Bucket bounds are fixed at registration.
type Histogram struct {
	boundsNS []int64         // upper bounds, ascending, nanoseconds
	buckets  []atomic.Uint64 // len(boundsNS)+1; last is +Inf
	count    atomic.Uint64
	sumNS    atomic.Int64
}

// Observe records one duration. The caller supplies a duration it
// measured with the environment clock — Observe itself never reads one.
//
//railvet:hotpath
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	i := 0
	for i < len(h.boundsNS) && ns > h.boundsNS[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNS.Add(ns)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNS.Load()) }

// DefBuckets is the default latency ladder: 1µs to 2.5s, roughly
// logarithmic — wide enough for a shm ring copy and a congested
// cross-host rendezvous on one scale.
func DefBuckets() []time.Duration {
	return []time.Duration{
		1 * time.Microsecond, 2 * time.Microsecond, 5 * time.Microsecond,
		10 * time.Microsecond, 20 * time.Microsecond, 50 * time.Microsecond,
		100 * time.Microsecond, 200 * time.Microsecond, 500 * time.Microsecond,
		1 * time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
		10 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond,
		100 * time.Millisecond, 250 * time.Millisecond, 500 * time.Millisecond,
		1 * time.Second, 2500 * time.Millisecond,
	}
}

// metric is one labelled child of a family.
type metric struct {
	labels []Label

	counter   *Counter
	gauge     *Gauge
	hist      *Histogram
	counterFn func() uint64
	gaugeFn   func() float64
}

// family is one named group of metrics sharing a type and label names.
type family struct {
	name, help string
	kind       Kind
	labelNames []string

	mu      sync.Mutex
	order   []string // child keys in registration order
	metrics map[string]*metric
}

// Registry holds the families. Registration takes locks and allocates;
// the returned instrument handles are what hot paths hold on to.
type Registry struct {
	mu       sync.Mutex
	order    []string
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// childKey joins label values; label names are validated against the
// family, so values alone identify the child.
func childKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(0)
		}
		b.WriteString(l.Value)
	}
	return b.String()
}

// family returns (creating if needed) the named family, enforcing that
// every registration agrees on type and label names. Inconsistent reuse
// of a name is a wiring bug and panics.
func (r *Registry) family(name, help string, kind Kind, labels []Label) *family {
	names := make([]string, len(labels))
	for i, l := range labels {
		names[i] = l.Name
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, labelNames: names,
			metrics: make(map[string]*metric)}
		r.families[name] = f
		r.order = append(r.order, name)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s registered as %s and %s", name, f.kind, kind))
	}
	if len(f.labelNames) != len(names) {
		panic(fmt.Sprintf("metrics: %s label names %v vs %v", name, f.labelNames, names))
	}
	for i := range names {
		if f.labelNames[i] != names[i] {
			panic(fmt.Sprintf("metrics: %s label names %v vs %v", name, f.labelNames, names))
		}
	}
	return f
}

// child returns (creating via mk if needed) the family child for a
// label set.
func (f *family) child(labels []Label, mk func() *metric) *metric {
	k := childKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m := f.metrics[k]; m != nil {
		return m
	}
	m := mk()
	m.labels = append([]Label(nil), labels...)
	f.metrics[k] = m
	f.order = append(f.order, k)
	return m
}

// Counter registers (or returns the existing) counter with the given
// labels.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	f := r.family(name, help, KindCounter, labels)
	m := f.child(labels, func() *metric { return &metric{counter: &Counter{}} })
	if m.counter == nil {
		panic(fmt.Sprintf("metrics: %s%v registered as a func counter", name, labels))
	}
	return m.counter
}

// Gauge registers (or returns the existing) gauge with the given labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	f := r.family(name, help, KindGauge, labels)
	m := f.child(labels, func() *metric { return &metric{gauge: &Gauge{}} })
	if m.gauge == nil {
		panic(fmt.Sprintf("metrics: %s%v registered as a func gauge", name, labels))
	}
	return m.gauge
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the bridge for subsystems that already keep their own atomics.
// fn must be safe to call concurrently and must be monotone.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	f := r.family(name, help, KindCounter, labels)
	f.child(labels, func() *metric { return &metric{counterFn: fn} })
}

// GaugeFunc registers a gauge whose value is read from fn at scrape
// time. fn must be safe to call concurrently.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	f := r.family(name, help, KindGauge, labels)
	f.child(labels, func() *metric { return &metric{gaugeFn: fn} })
}

// Histogram registers (or returns the existing) histogram. buckets are
// the upper bounds, ascending; nil uses DefBuckets. Every child of one
// family must use the family's bucket ladder.
func (r *Registry) Histogram(name, help string, buckets []time.Duration, labels ...Label) *Histogram {
	f := r.family(name, help, KindHistogram, labels)
	if buckets == nil {
		buckets = DefBuckets()
	}
	m := f.child(labels, func() *metric {
		h := &Histogram{boundsNS: make([]int64, len(buckets))}
		for i, b := range buckets {
			h.boundsNS[i] = int64(b)
		}
		if !sort.SliceIsSorted(h.boundsNS, func(i, j int) bool { return h.boundsNS[i] < h.boundsNS[j] }) {
			panic(fmt.Sprintf("metrics: %s bucket bounds not ascending", name))
		}
		h.buckets = make([]atomic.Uint64, len(buckets)+1)
		return &metric{hist: h}
	})
	if m.hist == nil {
		panic(fmt.Sprintf("metrics: %s%v is not a histogram child", name, labels))
	}
	return m.hist
}
