package simnet

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/fabric"
	"repro/internal/model"
	"repro/internal/rt"
)

func twoNodeSim(t *testing.T, rails []*model.Profile) (*rt.SimEnv, *Cluster) {
	t.Helper()
	env := rt.NewSim()
	c, err := New(env, Config{Nodes: 2, Rails: rails, CoresPerNode: 4})
	if err != nil {
		t.Fatal(err)
	}
	return env, c
}

// recvOne pops one delivery, charges its receive cost and returns the
// completion time (what an engine handler would observe).
func recvOne(ctx rt.Ctx, n *Node) (*Delivery, time.Duration) {
	d := n.RecvQ().Pop(ctx).(*Delivery)
	ctx.Sleep(d.RecvCPU)
	return d, ctx.Now()
}

func TestConfigValidation(t *testing.T) {
	env := rt.NewSim()
	cases := []Config{
		{Nodes: 0, Rails: model.PaperTestbed(), CoresPerNode: 1},
		{Nodes: 2, Rails: nil, CoresPerNode: 1},
		{Nodes: 2, Rails: model.PaperTestbed(), CoresPerNode: 0},
		{Nodes: 2, Rails: []*model.Profile{{}}, CoresPerNode: 1},
	}
	for i, cfg := range cases {
		if _, err := New(env, cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestClusterShape(t *testing.T) {
	_, c := twoNodeSim(t, model.PaperTestbed())
	if len(c.Nodes) != 2 || c.NumRails() != 2 || c.Cores() != 4 {
		t.Fatalf("cluster shape: %d nodes, %d rails, %d cores", len(c.Nodes), c.NumRails(), c.Cores())
	}
	if c.Nodes[1].Rail(0).Profile().Name != "Myri-10G" {
		t.Fatal("rail 0 should be Myri-10G")
	}
	if c.Nodes[0].Rails[1].Node().ID() != 0 {
		t.Fatal("rail back-pointer")
	}
}

// The end-to-end eager time over the fabric must equal the analytic model
// exactly: SendOverhead + n/EagerRate + WireLatency + RecvOverhead.
func TestEagerOneWayMatchesModel(t *testing.T) {
	for _, size := range []int{4, 256, 4096, 16384} {
		env, c := twoNodeSim(t, model.PaperTestbed())
		rail := c.Nodes[0].Rail(0)
		var done time.Duration
		env.Go("recv", func(ctx rt.Ctx) {
			_, done = recvOne(ctx, c.Nodes[1])
		})
		env.Go("send", func(ctx rt.Ctx) {
			rail.SendEager(ctx, 1, make([]byte, size))
		})
		env.Run()
		want := rail.Profile().EagerOneWay(size)
		if done != want {
			t.Fatalf("size %d: one-way %v, want %v", size, done, want)
		}
	}
}

// Sender-side eager completion: the core is busy for exactly the modeled
// CPU time.
func TestEagerBlocksCoreForCPUTime(t *testing.T) {
	env, c := twoNodeSim(t, model.PaperTestbed())
	rail := c.Nodes[0].Rail(0)
	var coreFree time.Duration
	env.Go("send", func(ctx rt.Ctx) {
		rail.SendEager(ctx, 1, make([]byte, 8192))
		coreFree = ctx.Now()
	})
	env.Go("drain", func(ctx rt.Ctx) { c.Nodes[1].RecvQ().Pop(ctx) })
	env.Run()
	want := rail.Profile().SendCPUTime(model.Eager, 8192)
	if coreFree != want {
		t.Fatalf("core freed at %v, want %v", coreFree, want)
	}
}

// Two eager sends from one actor (one core) serialise even on different
// rails — the Fig 3/4a phenomenon.
func TestEagerSerializesOnSingleCore(t *testing.T) {
	env, c := twoNodeSim(t, model.PaperTestbed())
	myri, quad := c.Nodes[0].Rail(0), c.Nodes[0].Rail(1)
	size := 8192
	var last time.Duration
	got := 0
	env.Go("recv", func(ctx rt.Ctx) {
		for got < 2 {
			_, at := recvOne(ctx, c.Nodes[1])
			got++
			if at > last {
				last = at
			}
		}
	})
	env.Go("send", func(ctx rt.Ctx) {
		myri.SendEager(ctx, 1, make([]byte, size))
		quad.SendEager(ctx, 1, make([]byte, size))
	})
	env.Run()
	m, q := myri.Profile(), quad.Profile()
	// Second send starts only after the first PIO copy completes.
	want := m.SendCPUTime(model.Eager, size) + q.EagerOneWay(size)
	if last != want {
		t.Fatalf("serialized completion %v, want %v", last, want)
	}
}

// Two eager sends from two actors (two cores) on different rails overlap:
// the Fig 4c/7 offloading benefit.
func TestEagerParallelOnTwoCores(t *testing.T) {
	env, c := twoNodeSim(t, model.PaperTestbed())
	size := 8192
	var last time.Duration
	got := 0
	env.Go("recv", func(ctx rt.Ctx) {
		for got < 2 {
			_, at := recvOne(ctx, c.Nodes[1])
			got++
			if at > last {
				last = at
			}
		}
	})
	for i := 0; i < 2; i++ {
		rail := c.Nodes[0].Rail(i)
		env.Go("send", func(ctx rt.Ctx) {
			rail.SendEager(ctx, 1, make([]byte, size))
		})
	}
	env.Run()
	m, q := c.Nodes[0].Rail(0).Profile(), c.Nodes[0].Rail(1).Profile()
	want := m.EagerOneWay(size)
	if w := q.EagerOneWay(size); w > want {
		want = w
	}
	// Receiver costs serialise on the single recv actor; allow the second
	// RecvOverhead.
	slack := m.RecvOverhead + q.RecvOverhead
	if last > want+slack || last < want {
		t.Fatalf("parallel completion %v, want ~%v", last, want)
	}
}

// Two eager sends on the SAME rail serialise on the NIC engine even from
// different cores.
func TestEagerSerializesOnNICEngine(t *testing.T) {
	env, c := twoNodeSim(t, model.PaperTestbed())
	size := 8192
	rail0 := c.Nodes[0].Rail(0)
	var last time.Duration
	got := 0
	env.Go("recv", func(ctx rt.Ctx) {
		for got < 2 {
			_, at := recvOne(ctx, c.Nodes[1])
			got++
			if at > last {
				last = at
			}
		}
	})
	for i := 0; i < 2; i++ {
		env.Go("send", func(ctx rt.Ctx) {
			rail0.SendEager(ctx, 1, make([]byte, size))
		})
	}
	env.Run()
	p := rail0.Profile()
	want := 2*p.SendCPUTime(model.Eager, size) + p.WireLatency + p.RecvOverhead
	if last != want {
		t.Fatalf("NIC-serialized completion %v, want %v", last, want)
	}
}

// Rendezvous DMA frees the core after the descriptor post and completes
// the transfer at n/WireBandwidth.
func TestDataDMATiming(t *testing.T) {
	env, c := twoNodeSim(t, model.PaperTestbed())
	rail := c.Nodes[0].Rail(0)
	size := 2 << 20
	done := env.NewEvent()
	var coreFree, dmaDone, arrived time.Duration
	env.Go("recv", func(ctx rt.Ctx) {
		c.Nodes[1].RecvQ().Pop(ctx)
		arrived = ctx.Now()
	})
	env.Go("send", func(ctx rt.Ctx) {
		rail.SendData(ctx, 1, make([]byte, size), done)
		coreFree = ctx.Now()
		done.Wait(ctx)
		dmaDone = ctx.Now()
	})
	env.Run()
	p := rail.Profile()
	if coreFree != p.SendOverhead {
		t.Fatalf("core freed at %v, want %v (descriptor post only)", coreFree, p.SendOverhead)
	}
	wantEnd := p.SendOverhead + time.Duration(float64(size)/p.WireBandwidth*1e9)
	if dmaDone != wantEnd {
		t.Fatalf("DMA done at %v, want %v", dmaDone, wantEnd)
	}
	if arrived != wantEnd {
		t.Fatalf("cut-through delivery at %v, want %v", arrived, wantEnd)
	}
}

// Two DMA chunks on the same rail serialise on the NIC engine; on
// different rails they overlap.
func TestDataDMAContention(t *testing.T) {
	env, c := twoNodeSim(t, model.PaperTestbed())
	size := 1 << 20
	d1, d2 := env.NewEvent(), env.NewEvent()
	rail := c.Nodes[0].Rail(0)
	var end time.Duration
	env.Go("recv", func(ctx rt.Ctx) {
		c.Nodes[1].RecvQ().Pop(ctx)
		c.Nodes[1].RecvQ().Pop(ctx)
	})
	env.Go("send", func(ctx rt.Ctx) {
		rail.SendData(ctx, 1, make([]byte, size), d1)
		rail.SendData(ctx, 1, make([]byte, size), d2)
		d1.Wait(ctx)
		d2.Wait(ctx)
		end = ctx.Now()
	})
	env.Run()
	p := rail.Profile()
	dma := time.Duration(float64(size) / p.WireBandwidth * 1e9)
	// The second descriptor post overlaps the first DMA; the DMAs
	// themselves serialise on the NIC engine.
	want := p.SendOverhead + 2*dma
	if end != want {
		t.Fatalf("serialized DMAs end at %v, want %v", end, want)
	}
}

// IdleAt reflects posted work and returns to "now" once drained (Fig 2's
// input).
func TestIdleAtPrediction(t *testing.T) {
	env, c := twoNodeSim(t, model.PaperTestbed())
	rail := c.Nodes[0].Rail(0)
	size := 4 << 20
	p := rail.Profile()
	dma := time.Duration(float64(size) / p.WireBandwidth * 1e9)
	env.Go("recv", func(ctx rt.Ctx) { c.Nodes[1].RecvQ().Pop(ctx) })
	env.Go("send", func(ctx rt.Ctx) {
		if rail.Busy() {
			t.Error("fresh rail busy")
		}
		if rail.IdleAt() != 0 {
			t.Errorf("fresh rail IdleAt = %v", rail.IdleAt())
		}
		rail.SendData(ctx, 1, make([]byte, size), nil)
		// After the descriptor post, the rail must predict the DMA end.
		want := p.SendOverhead + dma
		if got := rail.IdleAt(); got != want {
			t.Errorf("IdleAt = %v, want %v", got, want)
		}
		if !rail.Busy() {
			t.Error("rail with queued DMA not busy")
		}
		ctx.Sleep(dma + dma)
		if rail.Busy() {
			t.Error("rail still busy after drain")
		}
		if got := rail.IdleAt(); got != ctx.Now() {
			t.Errorf("drained IdleAt = %v, want now %v", got, ctx.Now())
		}
	})
	env.Run()
}

func TestControlCosts(t *testing.T) {
	env, c := twoNodeSim(t, model.PaperTestbed())
	rail := c.Nodes[0].Rail(1)
	cpu := 700 * time.Nanosecond
	recv := 900 * time.Nanosecond
	var coreFree, handled time.Duration
	env.Go("recv", func(ctx rt.Ctx) {
		d := c.Nodes[1].RecvQ().Pop(ctx).(*Delivery)
		ctx.Sleep(d.RecvCPU)
		handled = ctx.Now()
		if d.RecvCPU != recv {
			t.Errorf("RecvCPU = %v, want %v", d.RecvCPU, recv)
		}
	})
	env.Go("send", func(ctx rt.Ctx) {
		rail.SendControl(ctx, 1, []byte{1}, cpu, recv)
		coreFree = ctx.Now()
	})
	env.Run()
	if coreFree != cpu {
		t.Fatalf("control core time %v, want %v", coreFree, cpu)
	}
	if want := cpu + rail.Profile().WireLatency + recv; handled != want {
		t.Fatalf("control handled at %v, want %v", handled, want)
	}
}

func TestStatsCounters(t *testing.T) {
	env, c := twoNodeSim(t, model.PaperTestbed())
	rail := c.Nodes[0].Rail(0)
	env.Go("recv", func(ctx rt.Ctx) {
		c.Nodes[1].RecvQ().Pop(ctx)
		c.Nodes[1].RecvQ().Pop(ctx)
	})
	env.Go("send", func(ctx rt.Ctx) {
		rail.SendEager(ctx, 1, make([]byte, 100))
		rail.SendData(ctx, 1, make([]byte, 1000), nil)
	})
	env.Run()
	st := rail.Stats()
	if st.Messages != 2 || st.Bytes != 1100 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BusyTime <= 0 {
		t.Fatal("no busy time recorded")
	}
}

func TestEagerRejectsOversizedMessage(t *testing.T) {
	env := rt.NewSim()
	prof := model.Myri10G()
	prof.MaxMsg = 1024
	c, err := New(env, Config{Nodes: 2, Rails: []*model.Profile{prof}, CoresPerNode: 1})
	if err != nil {
		t.Fatal(err)
	}
	panicked := false
	env.Go("send", func(ctx rt.Ctx) {
		defer func() { panicked = recover() != nil }()
		c.Nodes[0].Rail(0).SendEager(ctx, 1, make([]byte, 2048))
	})
	func() {
		defer func() { recover() }() // the proc panic propagates into Run
		env.Run()
	}()
	if !panicked {
		t.Fatal("oversized eager send did not panic")
	}
}

// The same fabric code runs on a live environment and actually moves the
// bytes.
func TestLiveEnvMovesBytes(t *testing.T) {
	env := rt.NewLive()
	c, err := New(env, Config{Nodes: 2, Rails: model.PaperTestbed(), CoresPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("multirail")
	gotc := make(chan []byte, 1)
	env.Go("recv", func(ctx rt.Ctx) {
		d := c.Nodes[1].RecvQ().Pop(ctx).(*Delivery)
		gotc <- d.Data
	})
	env.Go("send", func(ctx rt.Ctx) {
		c.Nodes[0].Rail(0).SendEager(ctx, 1, payload)
	})
	env.WaitIdle()
	got := <-gotc
	if string(got) != "multirail" {
		t.Fatalf("received %q", got)
	}
}

// TimeScale=0 on a live env disables pacing: a 4MB DMA completes without
// the modeled multi-millisecond sleep.
func TestLiveEnvNoPacingIsFast(t *testing.T) {
	env := rt.NewLive()
	c, err := New(env, Config{Nodes: 2, Rails: model.PaperTestbed(), CoresPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	done := env.NewEvent()
	env.Go("recv", func(ctx rt.Ctx) { c.Nodes[1].RecvQ().Pop(ctx) })
	env.Go("send", func(ctx rt.Ctx) {
		c.Nodes[0].Rail(0).SendData(ctx, 1, make([]byte, 4<<20), done)
		done.Wait(ctx)
	})
	env.WaitIdle()
	if el := time.Since(start); el > time.Second {
		t.Fatalf("unpaced 4MB DMA took %v", el)
	}
}

// TimeScale scales modeled durations on the simulator too (useful for
// what-if experiments).
func TestTimeScaleOnSim(t *testing.T) {
	env := rt.NewSim()
	c, err := New(env, Config{Nodes: 2, Rails: model.PaperTestbed(), CoresPerNode: 1, TimeScale: 2})
	if err != nil {
		t.Fatal(err)
	}
	var done time.Duration
	env.Go("recv", func(ctx rt.Ctx) {
		d := c.Nodes[1].RecvQ().Pop(ctx).(*Delivery)
		ctx.Sleep(d.RecvCPU)
		done = ctx.Now()
	})
	env.Go("send", func(ctx rt.Ctx) {
		c.Nodes[0].Rail(0).SendEager(ctx, 1, make([]byte, 1024))
	})
	env.Run()
	p := c.Nodes[0].Rail(0).Profile()
	// Everything except the receiver's own unscaled RecvCPU sleep doubles;
	// RecvCPU is delivered unscaled, so scale it in the expectation.
	want := 2*(p.SendCPUTime(model.Eager, 1024)+p.WireLatency) + p.RecvOverhead
	if done != want {
		t.Fatalf("scaled one-way %v, want %v", done, want)
	}
}

// Property: after posting any sequence of DMA transfers, IdleAt equals
// the sum of their occupancies (FIFO drain), and after that horizon the
// rail reports idle.
func TestPropertyIdleAtAccumulates(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 || len(raw) > 12 {
			return true
		}
		env, c := func() (*rt.SimEnv, *Cluster) {
			env := rt.NewSim()
			cl, err := New(env, Config{Nodes: 2, Rails: model.PaperTestbed(), CoresPerNode: 2})
			if err != nil {
				t.Fatal(err)
			}
			return env, cl
		}()
		defer env.Close()
		rail := c.Nodes[0].Rail(0)
		p := rail.Profile()
		okc := make(chan bool, 1)
		env.Go("post", func(ctx rt.Ctx) {
			var want time.Duration
			for _, r := range raw {
				n := int(r)%(1<<20) + 1
				rail.SendData(ctx, 1, make([]byte, n), nil)
				want += time.Duration(float64(n+0) / p.WireBandwidth * 1e9)
			}
			got := rail.IdleAt()
			// Posting also slept SendOverhead per message; the horizon is
			// measured from each post, so compare with tolerance of the
			// accumulated overheads.
			lo := want
			hi := want + time.Duration(len(raw))*p.SendOverhead
			okc <- got >= lo && got <= hi
		})
		env.Go("drain", func(ctx rt.Ctx) {
			for range raw {
				c.Nodes[1].RecvQ().Pop(ctx)
			}
		})
		env.Run()
		return <-okc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// FailRail is deterministic in virtual time: a frame in flight on the
// failing rail at the fault instant is lost, frames on the surviving
// rail (and frames that landed before the fault) are not.
func TestFailRailDropsInFlightFrames(t *testing.T) {
	env, c := twoNodeSim(t, model.PaperTestbed())
	// Rail 0 dies 1ns into the run: the eager frame posted at t=0 is
	// still crossing the wire (host copy + latency take microseconds).
	c.FailRail(0, 0, time.Nanosecond)
	var got []*Delivery
	env.Go("recv", func(ctx rt.Ctx) {
		for i := 0; i < 1; i++ {
			d, _ := recvOne(ctx, c.Nodes[1])
			got = append(got, d)
		}
	})
	env.Go("send", func(ctx rt.Ctx) {
		c.Nodes[0].Rails[0].SendEager(ctx, 1, []byte("lost"))
		c.Nodes[0].Rails[1].SendEager(ctx, 1, []byte("kept"))
	})
	env.Run()
	if len(got) != 1 || got[0].Rail != 1 || string(got[0].Data) != "kept" {
		t.Fatalf("deliveries %v", got)
	}
	if st := c.Nodes[0].Rails[0].State(); st != fabric.RailDown {
		t.Fatalf("failed rail state %v", st)
	}
	if st := c.Nodes[1].Rails[0].State(); st != fabric.RailDown {
		t.Fatalf("lane not down on the peer: %v", st)
	}
	if st := c.Nodes[0].Rails[1].State(); st != fabric.RailUp {
		t.Fatalf("surviving rail state %v", st)
	}
}

// Health events flow to subscribers at the fault's virtual time.
func TestFailRailNotifiesSubscribers(t *testing.T) {
	env, c := twoNodeSim(t, model.PaperTestbed())
	q := c.Nodes[0].Health().Subscribe()
	c.FailRail(0, 1, 250*time.Microsecond)
	var ev *fabric.RailEvent
	env.Go("watch", func(ctx rt.Ctx) {
		ev = q.Pop(ctx).(*fabric.RailEvent)
	})
	env.Run()
	if ev == nil || ev.Rail != 1 || ev.State != fabric.RailDown || ev.At != 250*time.Microsecond {
		t.Fatalf("event %+v", ev)
	}
}
