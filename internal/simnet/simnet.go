// Package simnet implements the modeled multirail cluster fabric: nodes
// equipped with several heterogeneous NICs (rails), each governed by an
// analytic performance model (internal/model). It is the fabric.Fabric
// implementation that substitutes for the paper's two dual dual-core
// Opteron nodes with Myri-10G and QsNetII rails (DESIGN.md §2);
// internal/livenet is its real-TCP sibling.
//
// The fabric runs on either rt environment. On rt.SimEnv all costs elapse
// in virtual time and results are deterministic. On rt.LiveEnv the same
// code moves the same bytes between goroutines, optionally paced by
// Config.TimeScale.
//
// Cost semantics (matching internal/model):
//
//   - Eager/PIO sends are CPU-bound: SendEager blocks its calling actor —
//     a core — for SendOverhead + n/EagerRate while holding the NIC send
//     engine, then the message arrives WireLatency later. Two eager sends
//     from one core serialise on the core; two on one rail serialise on
//     the NIC engine. This is the serialisation that makes the paper's
//     greedy balancing lose (Fig 3/4a).
//   - Rendezvous data is DMA: SendData blocks only for the descriptor
//     post, then the NIC engine streams the payload at WireBandwidth
//     without consuming CPU; delivery is cut-through (the last byte lands
//     as DMA completes).
//   - Control messages (RTS/CTS) cost their caller-specified CPU time and
//     arrive WireLatency later.
//
// Every rail maintains a busy-until horizon so that strategies can ask
// "when will this NIC become idle?" — the prediction driving Fig 2.
package simnet

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/fabric"
	"repro/internal/model"
	"repro/internal/railhealth"
	"repro/internal/rt"
)

// Delivery and Stats are the fabric-level types; aliased so existing
// call sites keep reading naturally.
type (
	Delivery = fabric.Delivery
	Stats    = fabric.Stats
)

// Config describes a cluster.
type Config struct {
	// Nodes is the number of nodes (>= 2 for any communication).
	Nodes int
	// Rails lists one profile per rail; every node gets one NIC per rail.
	Rails []*model.Profile
	// CoresPerNode is the number of cores each node exposes to the
	// communication system (the paper's testbed has 4).
	CoresPerNode int
	// TimeScale multiplies every modeled duration before it is slept.
	// Zero means 1.0 in a simulation and "no pacing" (all modeled costs
	// collapse to zero sleep) on a live environment.
	TimeScale float64
}

func (c *Config) validate() error {
	if c.Nodes < 1 {
		return fmt.Errorf("simnet: need at least 1 node, got %d", c.Nodes)
	}
	if len(c.Rails) == 0 {
		return fmt.Errorf("simnet: need at least one rail")
	}
	for _, p := range c.Rails {
		if err := p.Validate(); err != nil {
			return err
		}
	}
	if c.CoresPerNode < 1 {
		return fmt.Errorf("simnet: need at least 1 core per node, got %d", c.CoresPerNode)
	}
	return nil
}

// Cluster is a set of nodes joined by parallel rails.
type Cluster struct {
	Nodes []*Node

	env   rt.Env
	cfg   Config
	scale float64
	pace  bool
}

// New builds a cluster. It returns an error for invalid configurations.
func New(env rt.Env, cfg Config) (*Cluster, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	scale := cfg.TimeScale
	pace := true
	if scale == 0 {
		if env.IsSim() {
			scale = 1
		} else {
			pace = false
		}
	}
	c := &Cluster{env: env, cfg: cfg, scale: scale, pace: pace}
	for i := 0; i < cfg.Nodes; i++ {
		n := &Node{id: i, cluster: c, recvq: env.NewQueue(),
			health: railhealth.New(env, i, len(cfg.Rails))}
		for r, prof := range cfg.Rails {
			n.Rails = append(n.Rails, &Rail{
				node:   n,
				index:  r,
				prof:   prof,
				engine: env.NewResource(1),
			})
		}
		c.Nodes = append(c.Nodes, n)
	}
	return c, nil
}

// Env returns the execution environment the cluster runs on.
func (c *Cluster) Env() rt.Env { return c.env }

// NumNodes returns the number of nodes.
func (c *Cluster) NumNodes() int { return len(c.Nodes) }

// Node returns node i as a fabric endpoint.
func (c *Cluster) Node(i int) fabric.Node { return c.Nodes[i] }

// Cores returns the configured core count per node.
func (c *Cluster) Cores() int { return c.cfg.CoresPerNode }

// NumRails returns the number of rails (fabric.Fabric).
func (c *Cluster) NumRails() int { return len(c.cfg.Rails) }

// Close is a no-op: the modeled fabric holds no transport resources.
func (c *Cluster) Close() error { return nil }

// FailRail injects a deterministic rail fault: at virtual time `at` the
// lane is declared dead cluster-wide — rail r goes Down on every node,
// exactly as every peer of a dying NIC observes its link break — and any
// frame still in flight on that rail at `at` is lost. node names the
// failing NIC's owner (recorded in the event reason); the loss itself is
// pairwise, so all trackers transition. Failover is therefore testable
// in virtual time: schedule the fault mid-transfer and the engines
// re-plan unacknowledged work onto the surviving rails.
func (c *Cluster) FailRail(node, rail int, at time.Duration) {
	reason := fmt.Sprintf("fault injection: NIC %d/%d died", node, rail)
	rt.AfterFunc(c.env, at, func() {
		for _, n := range c.Nodes {
			n.health.Report(rail, fabric.RailDown, reason)
		}
	})
}

// ThrottleRail artificially multiplies rail r's modeled transfer costs
// by `factor` on every node (10 = ten times slower); factor <= 1
// removes the throttle. The rail stays Up: this is the deterministic
// congestion chaos hook mirroring livenet's, for testing the adaptive
// feedback loop in virtual time. Implements fabric.Throttler.
func (c *Cluster) ThrottleRail(rail int, factor float64) {
	if factor <= 1 {
		factor = 0
	}
	for _, n := range c.Nodes {
		if rail >= 0 && rail < len(n.Rails) {
			r := n.Rails[rail]
			r.mu.Lock()
			r.slow = factor
			r.mu.Unlock()
		}
	}
}

// d scales a modeled duration into slept time.
func (c *Cluster) d(t time.Duration) time.Duration {
	if !c.pace {
		return 0
	}
	if c.scale == 1 {
		return t
	}
	return time.Duration(float64(t) * c.scale)
}

// Node is one cluster node: a set of NICs plus a delivery queue that the
// progression engine (internal/pioman) drains.
type Node struct {
	Rails []*Rail

	id      int
	recvq   rt.Queue
	cluster *Cluster
	health  *railhealth.Tracker

	teleMu sync.RWMutex
	tele   fabric.Telemetry
}

// SetTelemetry installs (or, with nil, detaches) the node's telemetry
// sink: every eager and DMA transfer reports its modeled one-way
// duration, so on the simulator the adaptive-telemetry subsystem is fed
// the same deterministic timings the estimates were sampled from — and
// tests of the feedback loop are reproducible.
func (n *Node) SetTelemetry(t fabric.Telemetry) {
	n.teleMu.Lock()
	n.tele = t
	n.teleMu.Unlock()
}

// observe reports one modeled transfer to the telemetry sink, if any.
func (n *Node) observe(peer, rail, bytes int, d time.Duration) {
	n.teleMu.RLock()
	t := n.tele
	n.teleMu.RUnlock()
	if t != nil && d > 0 {
		t.ObserveTransfer(peer, rail, bytes, d)
	}
}

// ID returns the node's index in the cluster.
func (n *Node) ID() int { return n.id }

// NumRails returns the number of NICs of the node.
func (n *Node) NumRails() int { return len(n.Rails) }

// Rail returns the i-th NIC of the node.
func (n *Node) Rail(i int) fabric.Rail { return n.Rails[i] }

// RecvQ returns the queue *Delivery items are pushed to.
func (n *Node) RecvQ() rt.Queue { return n.recvq }

// Health returns the node's rail-health tracker.
func (n *Node) Health() fabric.Health { return n.health }

// Cores returns the node's core count.
func (n *Node) Cores() int { return n.cluster.cfg.CoresPerNode }

// Cluster returns the owning cluster.
func (n *Node) Cluster() *Cluster { return n.cluster }

// Rail is one NIC: a send engine serialised by a capacity-1 resource and
// an analytic cost model.
type Rail struct {
	node   *Node
	index  int
	prof   *model.Profile
	engine rt.Resource

	mu        sync.Mutex
	busyUntil time.Duration
	stats     Stats
	slow      float64 // throttle factor; 0 or 1 = none (chaos hook)
}

// slowFactor returns the active throttle multiplier (1 when none).
func (r *Rail) slowFactor() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.slow > 1 {
		return r.slow
	}
	return 1
}

// Index returns the rail number.
func (r *Rail) Index() int { return r.index }

// Profile returns the rail's performance model.
func (r *Rail) Profile() *model.Profile { return r.prof }

// Node returns the owning node.
func (r *Rail) Node() *Node { return r.node }

// State returns the rail's health state.
func (r *Rail) State() fabric.RailState { return r.node.health.State(r.index) }

// Stats returns a snapshot of the traffic counters.
func (r *Rail) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// IdleAt predicts when the NIC's send engine will have drained all posted
// work: now if idle, otherwise the modeled end of the queued transfers.
// This is the knowledge Fig 2's NIC selection relies on.
func (r *Rail) IdleAt() time.Duration {
	now := r.node.cluster.env.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.busyUntil < now {
		return now
	}
	return r.busyUntil
}

// Busy reports whether the send engine currently has work.
func (r *Rail) Busy() bool {
	return r.IdleAt() > r.node.cluster.env.Now()
}

// note reserves the send engine's model time for a transfer of the given
// occupancy and records counters.
func (r *Rail) note(occupancy time.Duration, bytes int) {
	now := r.node.cluster.env.Now()
	r.mu.Lock()
	if r.busyUntil < now {
		r.busyUntil = now
	}
	r.stats.LastStart = r.busyUntil
	r.busyUntil += occupancy
	r.stats.Messages++
	r.stats.Bytes += uint64(bytes)
	r.stats.BusyTime += occupancy
	r.mu.Unlock()
}

func (r *Rail) deliver(to int, d *Delivery, after time.Duration) {
	c := r.node.cluster
	dst := c.Nodes[to]
	d.SentAt = c.env.Now()
	// The frame lands only if the lane is still alive when the last byte
	// arrives: a NIC that dies (FailRail) or is unplugged mid-flight —
	// on either end — takes the frame with it. This is the loss the
	// engine's ack-and-replan machinery recovers from.
	push := func() {
		if r.State() == fabric.RailDown || dst.health.State(r.index) == fabric.RailDown {
			return
		}
		dst.recvq.Push(d)
	}
	if after <= 0 {
		push()
		return
	}
	c.env.After(after, push)
}

// SendEager transmits an eager (PIO) message. It blocks the calling actor
// — which models the submitting core — for the whole host-side copy, then
// schedules delivery one wire latency later. The payload slice is aliased,
// not copied; callers must not reuse it before completion.
func (r *Rail) SendEager(ctx rt.Ctx, to int, data []byte) {
	c := r.node.cluster
	p := r.prof
	if p.MaxMsg > 0 && len(data) > p.MaxMsg {
		panic(fmt.Sprintf("simnet: eager message of %d bytes exceeds %s MaxMsg %d", len(data), p.Name, p.MaxMsg))
	}
	cpu := time.Duration(float64(p.SendCPUTime(model.Eager, len(data))) * r.slowFactor())
	// Reserve the engine's model time before queueing on it so that
	// IdleAt() sees posted-but-not-yet-started work.
	r.note(cpu, len(data))
	r.engine.Acquire(ctx)
	ctx.Sleep(c.d(cpu))
	r.engine.Release()
	r.deliver(to, &Delivery{
		From:    r.node.id,
		Rail:    r.index,
		Data:    data,
		RecvCPU: p.RecvOverhead,
		CopyCPU: durPerByte(len(data), p.RecvCopyRate),
	}, c.d(p.WireLatency))
	r.node.observe(to, r.index, len(data), c.d(cpu)+c.d(p.WireLatency))
}

// SendControl transmits a small control message (RTS/CTS/Ack). The caller
// is charged cpuCost on its core; the receiver will be charged recvCost
// before its handler runs. Control messages do not occupy the send engine
// measurably (they ride the NIC's command queue).
func (r *Rail) SendControl(ctx rt.Ctx, to int, data []byte, cpuCost, recvCost time.Duration) {
	c := r.node.cluster
	ctx.Sleep(c.d(cpuCost))
	r.deliver(to, &Delivery{
		From:    r.node.id,
		Rail:    r.index,
		Data:    data,
		RecvCPU: recvCost,
	}, c.d(r.prof.WireLatency))
}

// SendData streams a rendezvous chunk via DMA. The calling core is blocked
// only for the descriptor post (SendOverhead); the DMA itself runs as a
// separate actor holding the NIC send engine for n/WireBandwidth. done is
// fired when the DMA drains (the sender may then reuse the buffer);
// delivery is cut-through, so the receiver sees the message at the same
// instant.
func (r *Rail) SendData(ctx rt.Ctx, to int, data []byte, done rt.Event) {
	c := r.node.cluster
	p := r.prof
	ctx.Sleep(c.d(p.SendOverhead))
	dma := time.Duration(float64(durPerByte(len(data), p.WireBandwidth)) * r.slowFactor())
	r.note(dma, len(data))
	c.env.Go(fmt.Sprintf("dma-n%d-r%d", r.node.id, r.index), func(dctx rt.Ctx) {
		r.engine.Acquire(dctx)
		dctx.Sleep(c.d(dma))
		r.engine.Release()
		r.deliver(to, &Delivery{
			From: r.node.id,
			Rail: r.index,
			Data: data,
		}, 0)
		if done != nil {
			done.Fire()
		}
		// One-way cost of the DMA path: descriptor post plus the
		// (cut-through) transfer — matching what the sampled priors
		// measure, and consistent with the eager path's cpu+latency.
		r.node.observe(to, r.index, len(data), c.d(p.SendOverhead)+c.d(dma))
	})
}

func durPerByte(n int, rate float64) time.Duration {
	if n <= 0 || rate <= 0 {
		return 0
	}
	return time.Duration(float64(n) / rate * 1e9)
}
