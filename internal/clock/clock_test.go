package clock

import (
	"testing"
	"time"
)

func TestMonotone(t *testing.T) {
	prev := Now()
	for i := 0; i < 100_000; i++ {
		cur := Now()
		if cur < prev {
			t.Fatalf("clock went backwards: %d after %d", cur, prev)
		}
		prev = cur
	}
}

func TestSinceTracksRealTime(t *testing.T) {
	start := Now()
	wall := time.Now()
	time.Sleep(20 * time.Millisecond)
	got := Since(start)
	want := time.Since(wall)
	// The two clocks are sampled a few instructions apart; allow a loose
	// band — the point is Since measures real elapsed time, not garbage.
	if diff := got - want; diff < -5*time.Millisecond || diff > 5*time.Millisecond {
		t.Fatalf("Since = %v, wall elapsed = %v (diff %v)", got, want, diff)
	}
	if Between(start, Now()) < got {
		t.Fatalf("Between went backwards relative to Since")
	}
}

func TestSinceNonNegative(t *testing.T) {
	for i := 0; i < 10_000; i++ {
		if d := Since(Now()); d < 0 {
			t.Fatalf("Since(Now()) = %v < 0", d)
		}
	}
}

// The reason this package exists: Now must beat time.Now. Run with
// `go test -bench . ./internal/clock`.
func BenchmarkClockNow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Now()
	}
}

func BenchmarkTimeNow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = time.Now()
	}
}
