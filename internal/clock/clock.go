// Package clock is the hot-path time source: a runtime.nanotime-class
// monotonic clock with no wall-clock component.
//
// time.Now() reads both the wall clock and the monotonic clock and
// builds a 24-byte time.Time; per-frame telemetry stamps and per-send
// decision points only ever need durations, so they pay for machinery
// they never use (SNIPPETS' samber/hot devel bench measures exactly
// this tradeoff). Hot paths — anything marked //railvet:hotpath — use
// clock.Now/clock.Since instead; the hotclock analyzer
// (internal/analyzers) rejects time.Now/time.Since there.
//
// Stamps are int64 nanoseconds from an arbitrary, process-local epoch:
// they are meaningless across processes and must never be compared to
// wall-clock time.
package clock

import (
	"time"
	_ "unsafe" // for go:linkname
)

//go:linkname nanotime runtime.nanotime
func nanotime() int64

// Now returns the current monotonic reading in nanoseconds from an
// arbitrary process-local epoch. It never goes backwards and is immune
// to wall-clock steps (NTP, manual adjustment).
func Now() int64 { return nanotime() }

// Since returns the elapsed time since a stamp obtained from Now.
func Since(start int64) time.Duration { return time.Duration(nanotime() - start) }

// Between returns the elapsed time from start to end, both stamps
// obtained from Now.
func Between(start, end int64) time.Duration { return time.Duration(end - start) }
