package ratchet

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestUpdateLowersButNeverRaises(t *testing.T) {
	entries := map[string]*Entry{
		"a/improved":   {Test: "TestA", Package: "./a", Ceiling: 95, Measured: 90},
		"b/regressed":  {Test: "TestB", Package: "./b", Ceiling: 10, Measured: 8},
		"c/steady":     {Test: "TestC", Package: "./c", Ceiling: 80, Measured: 74},
		"d/unmeasured": {Test: "TestD", Package: "./d", Ceiling: 5, Measured: 5},
		"e/zero":       {Test: "TestE", Package: "./e", Ceiling: 0, Measured: 0},
	}
	changes := Update(entries, map[string]float64{
		"a/improved":  74, // ceil(74*1.08) = 80 < 95: lowers
		"b/regressed": 12, // above ceiling: untouched, flagged
		"c/steady":    74, // ceil(74*1.08) = 80 == ceiling: no movement
		"e/zero":      0,  // stays 0
	})

	if e := entries["a/improved"]; e.Ceiling != 80 || e.Measured != 74 {
		t.Errorf("a/improved = ceiling %g measured %g, want 80/74", e.Ceiling, e.Measured)
	}
	if e := entries["b/regressed"]; e.Ceiling != 10 || e.Measured != 8 {
		t.Errorf("b/regressed mutated to ceiling %g measured %g — a regression must not move the ratchet", e.Ceiling, e.Measured)
	}
	if e := entries["c/steady"]; e.Ceiling != 80 {
		t.Errorf("c/steady ceiling moved to %g", e.Ceiling)
	}
	if e := entries["e/zero"]; e.Ceiling != 0 {
		t.Errorf("e/zero ceiling moved to %g", e.Ceiling)
	}

	got := map[string]Change{}
	for _, c := range changes {
		got[c.Name] = c
	}
	if c := got["a/improved"]; c.From != 95 || c.To != 80 {
		t.Errorf("a/improved change = %+v, want 95 -> 80", c)
	}
	if !got["b/regressed"].Regression {
		t.Error("b/regressed not flagged as regression")
	}
	if !got["d/unmeasured"].NotMeasured {
		t.Error("d/unmeasured not flagged as unmeasured")
	}
	if _, ok := got["c/steady"]; ok {
		t.Error("c/steady reported a change despite an already-tight ceiling")
	}
}

// TestRoundTrip is the -ratchet acceptance shape: Save -> Load is
// identity, and a second Update with the same measurements is a no-op,
// so running `railvet -ratchet` twice never produces a diff.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, FileName)
	entries := map[string]*Entry{
		"core/eager_round_trip": {Test: "TestEagerSendAllocs", Package: "./internal/core", Ceiling: 95, Measured: 95},
		"shmnet/ring_frame":     {Test: "TestRingFrameAllocs", Package: "./internal/shmnet", Ceiling: 0, Measured: 0},
	}
	results := map[string]float64{"core/eager_round_trip": 74, "shmnet/ring_frame": 0}

	if n := len(Update(entries, results)); n != 1 {
		t.Fatalf("first update: %d changes, want 1", n)
	}
	if err := Save(path, entries); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded, entries) {
		t.Fatalf("Load(Save(x)) != x:\n%v\n%v", loaded, entries)
	}
	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	if n := len(Update(loaded, results)); n != 0 {
		t.Fatalf("second update with identical measurements: %d changes, want 0", n)
	}
	if err := Save(path, loaded); err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Fatalf("ratchet file not stable across a no-op round trip:\n%s\n%s", first, second)
	}
}

// recorder satisfies TB and captures outcomes.
type recorder struct {
	logs  []string
	fatal string
}

func (r *recorder) Helper() {}
func (r *recorder) Logf(format string, args ...any) {
	r.logs = append(r.logs, fmt.Sprintf(format, args...))
}
func (r *recorder) Fatalf(format string, args ...any) {
	r.fatal = fmt.Sprintf(format, args...)
}

func TestCheck(t *testing.T) {
	dir := t.TempDir()
	if err := Save(filepath.Join(dir, FileName), map[string]*Entry{
		"x/y": {Test: "TestX", Package: "./x", Ceiling: 10, Measured: 8},
	}); err != nil {
		t.Fatal(err)
	}
	sub := filepath.Join(dir, "internal", "x")
	if err := os.MkdirAll(sub, 0o777); err != nil {
		t.Fatal(err)
	}
	t.Chdir(sub) // Check walks up from the package dir to find the file

	var ok recorder
	Check(&ok, "x/y", 9)
	if ok.fatal != "" {
		t.Fatalf("measurement under ceiling failed: %s", ok.fatal)
	}
	if len(ok.logs) != 1 || !strings.Contains(ok.logs[0], "RATCHET x/y measured=9 ceiling=10") {
		t.Fatalf("machine-readable log line missing or wrong: %q", ok.logs)
	}

	var over recorder
	Check(&over, "x/y", 11)
	if !strings.Contains(over.fatal, "exceeds ceiling") {
		t.Fatalf("measurement over ceiling did not fail: %q", over.fatal)
	}

	var missing recorder
	Check(&missing, "x/nope", 1)
	if !strings.Contains(missing.fatal, "no entry") {
		t.Fatalf("unknown name did not fail: %q", missing.fatal)
	}
}
