// Package ratchet keeps the allocation budgets in ratchets.json (at the
// module root) and enforces them from tests.
//
// Each entry is a named measurement — typically testing.AllocsPerRun
// over a hot-path operation — with a hard ceiling. Tests call Check,
// which logs a machine-readable line:
//
//	RATCHET <name> measured=<value> ceiling=<value>
//
// and fails when the measurement exceeds the ceiling. `railvet -ratchet`
// re-runs the registered tests, greps those lines, and lowers any
// ceiling whose measurement has improved (with a slack margin so noisy
// runs don't flap) — the ratchet only ever tightens; loosening a ceiling
// is a hand-written, reviewed diff.
package ratchet

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
)

// FileName is the ratchet database, committed at the module root.
const FileName = "ratchets.json"

// DefaultSlackPct is the margin a lowered ceiling keeps above the
// measurement, in percent.
const DefaultSlackPct = 8

// Entry is one ratcheted measurement.
type Entry struct {
	// Test anchors `railvet -ratchet`: the Go test (run with -run
	// '^Test$') in Package that logs the RATCHET line for this name.
	Test    string `json:"test"`
	Package string `json:"package"`
	// Ceiling is the hard limit Check enforces.
	Ceiling float64 `json:"ceiling"`
	// Measured is the value recorded the last time the ratchet moved —
	// context for reviewers, not enforced.
	Measured float64 `json:"measured"`
	// SlackPct overrides DefaultSlackPct for this entry.
	SlackPct float64 `json:"slack_pct,omitempty"`
}

// TB is the subset of testing.TB that Check needs; keeping the package
// free of a testing import means non-test binaries (railvet) can link
// it.
type TB interface {
	Helper()
	Logf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// Check logs the RATCHET line for name and fails the test when measured
// exceeds the committed ceiling. The ratchet file is found by walking
// up from the test's working directory (the package dir) to the module
// root.
func Check(t TB, name string, measured float64) {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatalf("ratchet: %v", err)
		return
	}
	path, err := Find(wd)
	if err != nil {
		t.Fatalf("ratchet: %v", err)
		return
	}
	entries, err := Load(path)
	if err != nil {
		t.Fatalf("ratchet: %v", err)
		return
	}
	e, ok := entries[name]
	if !ok {
		t.Fatalf("ratchet: no entry %q in %s — add it with its test anchor before checking against it", name, path)
		return
	}
	t.Logf("RATCHET %s measured=%g ceiling=%g", name, measured, e.Ceiling)
	if measured > e.Ceiling {
		t.Fatalf("ratchet %s: measured %g exceeds ceiling %g (last recorded %g) — an allocation regression, not test noise; see %s",
			name, measured, e.Ceiling, e.Measured, FileName)
	}
}

// Find walks from dir toward the filesystem root looking for the
// ratchet file.
func Find(dir string) (string, error) {
	d := dir
	for {
		p := filepath.Join(d, FileName)
		if _, err := os.Stat(p); err == nil {
			return p, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no %s between %s and the filesystem root", FileName, dir)
		}
		d = parent
	}
}

// Load reads the ratchet database.
func Load(path string) (map[string]*Entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	entries := make(map[string]*Entry)
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("parsing %s: %v", path, err)
	}
	return entries, nil
}

// Save writes the ratchet database with stable formatting (sorted keys,
// two-space indent, trailing newline) so -ratchet round-trips without
// diff noise.
func Save(path string, entries map[string]*Entry) error {
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o666)
}

// Change describes one ceiling movement from Update.
type Change struct {
	Name        string
	From, To    float64
	Measured    float64
	Regression  bool // measured exceeds the (unchanged) ceiling
	NotMeasured bool // entry's test produced no RATCHET line
}

// Update applies fresh measurements: any ceiling that can drop (with
// slack) drops, and Measured is recorded alongside. Ceilings never
// rise. Entries with no measurement or with a regression are reported
// but left untouched.
func Update(entries map[string]*Entry, results map[string]float64) []Change {
	var out []Change
	names := make([]string, 0, len(entries))
	for name := range entries {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		e := entries[name]
		m, ok := results[name]
		if !ok {
			out = append(out, Change{Name: name, From: e.Ceiling, To: e.Ceiling, NotMeasured: true})
			continue
		}
		if m > e.Ceiling {
			out = append(out, Change{Name: name, From: e.Ceiling, To: e.Ceiling, Measured: m, Regression: true})
			continue
		}
		slack := e.SlackPct
		if slack == 0 {
			slack = DefaultSlackPct
		}
		proposed := math.Ceil(m * (1 + slack/100))
		if proposed < e.Ceiling {
			out = append(out, Change{Name: name, From: e.Ceiling, To: proposed, Measured: m})
			e.Ceiling = proposed
			e.Measured = m
		}
	}
	return out
}
